package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"mddm/internal/agg"
	"mddm/internal/batch"
	"mddm/internal/query"
	"mddm/internal/serve"
)

// b19 measures shared-scan batching end to end: a batched planner server
// vs an unbatched one over the same MO, driven by concurrent *similar*
// queries (same grouping leg, different WHERE/aggregate — the shapes the
// result cache cannot dedup). Before any timing, a differential oracle
// proves batched ≡ solo ≡ algebra for every registered aggregate, with
// the batch outcome flag asserted so a silent bypass-to-solo cannot pass
// as a win. Hard gates: batched throughput ≥ 1.5× unbatched at 64
// concurrent similar clients, and the member latency tax at 1× load
// (p999) stays within 3× of solo.
func b19(nFacts int) {
	const (
		clients     = 64 // the saturated phase
		lightLoad   = 4  // the 1× phase
		parallelism = 2
	)
	bg := context.Background()
	m := gen(nFacts, false, false)
	qcat := query.Catalog{"patients": m}
	newServer := func(batching batch.Config) *serve.Server {
		cat := serve.NewCatalog()
		if err := cat.Register("patients", m); err != nil {
			fatal(err)
		}
		return serve.NewServer(cat, serve.Limits{
			Planner:     true,
			Parallelism: parallelism,
			Batching:    batching,
		}, ref)
	}
	solo := newServer(batch.Config{})

	// Calibrate: one solo service time sizes the gather window (a fraction
	// of a scan, so the member tax stays bounded) and the load phases.
	const calQ = `SELECT SETCOUNT(*) AS N FROM patients WHERE Age >= 40 GROUP BY Diagnosis."Diagnosis Group"`
	svc := timed(func() {
		if _, err := solo.Query(bg, calQ); err != nil {
			fatal(err)
		}
	})
	window := svc / 4
	if window < 200*time.Microsecond {
		window = 200 * time.Microsecond
	}
	if window > 2*time.Millisecond {
		window = 2 * time.Millisecond
	}
	batched := newServer(batch.Config{
		Enabled:        true,
		GatherWindow:   window,
		MaxBatch:       32,
		MaxParallelism: parallelism,
	})
	fmt.Printf("B19: shared-scan batching (%d facts, %d similar clients, gather window %v)\n",
		nFacts, clients, window)

	// ------------------------------------------------------------------
	// Differential oracle FIRST: nothing is timed until batched answers
	// are proven bit-identical, and the outcome flags prove the batched
	// path actually ran.
	verified := 0
	for _, name := range agg.Names() {
		fn, err := agg.Lookup(name)
		if err != nil {
			fatal(err)
		}
		arg := "(*)"
		if fn.NeedsArg {
			arg = "(Age)"
		}
		batchable := !fn.NeedsProb && fn.NewState != nil
		for _, src := range []string{
			fmt.Sprintf(`SELECT %s%s FROM patients GROUP BY Diagnosis."Diagnosis Group"`, name, arg),
			fmt.Sprintf(`SELECT %s%s FROM patients WHERE Age >= 30 GROUP BY Residence."Region"`, name, arg),
		} {
			ctx, bo := serve.WithBatchOutcome(bg)
			rb, errB := batched.Query(ctx, src)
			rs, errS := solo.Query(bg, src)
			ra, errA := query.Exec(src, qcat, ref)
			if (errB == nil) != (errS == nil) || (errB == nil) != (errA == nil) {
				fatal(fmt.Errorf("B19 oracle %s: errs batched=%v solo=%v algebra=%v", src, errB, errS, errA))
			}
			if errB != nil {
				fatal(fmt.Errorf("B19 oracle %s: %v", src, errB))
			}
			jb, _ := json.Marshal(rb)
			js, _ := json.Marshal(rs)
			ja, _ := json.Marshal(ra)
			if !bytes.Equal(jb, js) || !bytes.Equal(jb, ja) {
				fatal(fmt.Errorf("B19 oracle %s: batched diverged:\n batched: %s\n solo:    %s\n algebra: %s",
					src, jb, js, ja))
			}
			if batchable && bo.Outcome != batch.OutcomeLeader && bo.Outcome != batch.OutcomeMember {
				fatal(fmt.Errorf("B19 oracle %s: outcome %q (reason %q) — the batched path silently bypassed",
					src, bo.Outcome, bo.Reason))
			}
			if !batchable && bo.Outcome != batch.OutcomeSolo {
				fatal(fmt.Errorf("B19 oracle %s: outcome %q, want solo for a non-batchable aggregate",
					src, bo.Outcome))
			}
			verified++
		}
	}
	fmt.Printf("differential oracle: batched ≡ solo ≡ algebra across %d aggregate/query shapes\n", verified)
	benchRows = append(benchRows, benchRow{Exp: curExp, Op: "oracle-shapes-verified", N: nFacts, Value: float64(verified)})

	// The similar-client rotation: one grouping leg, varying WHERE and
	// aggregate — the same query list, in the same hot-first rank order, as
	// internal/traffic/testdata/b19_similar.json. Clients pick from it with
	// the mix file's declared zipf skew (s=1.3, v=1): dashboard-style
	// traffic concentrates on a hot set, which is exactly what the
	// scheduler's member dedup and shared decode amortize. These are
	// nocache-class queries, so the result cache's single-flight never
	// dedups them — only the batcher can.
	similar := []string{
		`SELECT AVG(Age) FROM patients GROUP BY Diagnosis."Diagnosis Group"`,
		`SELECT SUM(Age) FROM patients WHERE Residence = 'R0' GROUP BY Diagnosis."Diagnosis Group"`,
		`SELECT AVG(Age) FROM patients WHERE Residence = 'R1' GROUP BY Diagnosis."Diagnosis Group"`,
		`SELECT SUM(Age) FROM patients WHERE Age < 70 GROUP BY Diagnosis."Diagnosis Group"`,
		`SELECT SETCOUNT(*) FROM patients WHERE Residence = 'R2' GROUP BY Diagnosis."Diagnosis Group"`,
		`SELECT SETCOUNT(*) FROM patients WHERE Age >= 40 GROUP BY Diagnosis."Diagnosis Group"`,
	}
	loadDur := 100 * svc
	if loadDur < 300*time.Millisecond {
		loadDur = 300 * time.Millisecond
	}
	if loadDur > 1500*time.Millisecond {
		loadDur = 1500 * time.Millisecond
	}

	// runLoad drives `workers` closed-loop clients over the rotation and
	// returns every request's latency with its batch outcome.
	type sample struct {
		el      time.Duration
		outcome batch.Outcome
	}
	runLoad := func(srv *serve.Server, workers int) []sample {
		var mu sync.Mutex
		var all []sample
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Per-worker deterministic zipf pick, mirroring the traffic
				// package's picker (seed + worker stride, the mix file's
				// zipf{s:1.3, v:1} over the hot-first query ranks).
				rng := rand.New(rand.NewSource(19 + int64(w)*7919))
				zipf := rand.NewZipf(rng, 1.3, 1, uint64(len(similar)-1))
				var local []sample
				for time.Since(start) < loadDur {
					ctx, bo := serve.WithBatchOutcome(bg)
					t0 := time.Now()
					_, err := srv.Query(ctx, similar[zipf.Uint64()])
					el := time.Since(t0)
					if err != nil {
						fatal(fmt.Errorf("B19 load: %v", err))
					}
					local = append(local, sample{el, bo.Outcome})
				}
				mu.Lock()
				all = append(all, local...)
				mu.Unlock()
			}(w)
		}
		wg.Wait()
		return all
	}
	qps := func(s []sample) float64 { return float64(len(s)) / loadDur.Seconds() }
	latencies := func(s []sample, want batch.Outcome) []time.Duration {
		var ds []time.Duration
		for _, x := range s {
			if want == "" || x.outcome == want {
				ds = append(ds, x.el)
			}
		}
		return ds
	}

	// ------------------------------------------------------------------
	// Saturated phase: 64 concurrent similar clients.
	unbatchedSat := runLoad(solo, clients)
	batchedSat := runLoad(batched, clients)
	uq, bq := qps(unbatchedSat), qps(batchedSat)
	ratio := bq / uq
	st := batched.BatchStats()
	fmt.Printf("%12s %14s %14s %10s\n", "clients", "unbatched", "batched", "ratio")
	fmt.Printf("%12d %12.0f/s %12.0f/s %9.2fx\n", clients, uq, bq, ratio)
	fmt.Printf("scheduler: %d batches, %d members, %d shared-scan savings\n",
		st.Batches, st.Members, st.ScansSaved)
	benchRows = append(benchRows,
		benchRow{Exp: curExp, Op: fmt.Sprintf("unbatched-throughput-%dc", clients), N: nFacts, Value: uq},
		benchRow{Exp: curExp, Op: fmt.Sprintf("batched-throughput-%dc", clients), N: nFacts, Value: bq},
		benchRow{Exp: curExp, Op: "throughput-ratio-batched-vs-unbatched", N: nFacts, Value: ratio},
		benchRow{Exp: curExp, Op: "shared-scan-savings", N: nFacts, Value: float64(st.ScansSaved)},
	)
	if st.ScansSaved == 0 {
		fatal(fmt.Errorf("B19: saturated phase fused nothing — the batcher never batched"))
	}
	if ratio < 1.5 {
		fatal(fmt.Errorf("B19: batched throughput only %.2fx unbatched at %d similar clients, want >= 1.5x", ratio, clients))
	}

	// ------------------------------------------------------------------
	// 1× phase: the member tax. At light load a member pays at most one
	// gather window plus the shared scan; its tail must stay within 3× of
	// an unbatched server under the same load.
	unbatchedLight := runLoad(solo, lightLoad)
	batchedLight := runLoad(batched, lightLoad)
	soloLat := latencies(unbatchedLight, "")
	memberLat := latencies(batchedLight, batch.OutcomeMember)
	if len(memberLat) == 0 {
		fatal(fmt.Errorf("B19: 1x load produced no member outcomes — nothing fused in the light phase"))
	}
	soloP999 := pctlDur(soloLat, 0.999)
	memberP999 := pctlDur(memberLat, 0.999)
	tax := float64(memberP999) / float64(soloP999)
	fmt.Printf("1x load (%d clients): solo p999 %v, member p999 %v (%.2fx, %d members)\n",
		lightLoad, soloP999, memberP999, tax, len(memberLat))
	benchRows = append(benchRows,
		benchRow{Exp: curExp, Op: "solo-p999-1x", N: nFacts,
			NsPerOp: float64(soloP999.Nanoseconds()), Value: float64(len(soloLat))},
		benchRow{Exp: curExp, Op: "member-p999-1x", N: nFacts,
			NsPerOp: float64(memberP999.Nanoseconds()), Value: float64(len(memberLat))},
		benchRow{Exp: curExp, Op: "member-p999-tax-vs-solo", N: nFacts, Value: tax},
	)
	if tax > 3 {
		fatal(fmt.Errorf("B19: member p999 %v is %.2fx solo p999 %v at 1x load, want <= 3x", memberP999, tax, soloP999))
	}
}
