// Command mdbench runs the experiment sweeps of EXPERIMENTS.md and prints
// one table per experiment. Unlike `go test -bench`, mdbench reports the
// *shape* measurements (who wins, by what factor, where behaviour changes)
// that EXPERIMENTS.md records:
//
//	mdbench -exp B1   # pre-aggregation reuse vs recompute-from-base
//	mdbench -exp B2   # bitmap index vs model-layer scan
//	mdbench -exp B3   # strict vs non-strict hierarchy aggregation
//	mdbench -exp B4   # timeslice cost vs history length
//	mdbench -exp B5   # algebra operator scaling
//	mdbench -exp B6   # query end-to-end
//	mdbench -exp B7   # cube materialization: derive vs recompute
//	mdbench -exp B9   # cross tabulation: bitmap vs scan
//	mdbench -exp B10  # incremental index maintenance vs rebuild
//	mdbench -all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mddm/internal/agg"
	"mddm/internal/algebra"
	"mddm/internal/casestudy"
	"mddm/internal/core"
	"mddm/internal/dimension"
	"mddm/internal/query"
	"mddm/internal/storage"
	"mddm/internal/temporal"
)

var ref = temporal.MustDate("01/01/2026")

func ctx() dimension.Context { return dimension.CurrentContext(ref) }

func main() {
	exp := flag.String("exp", "", "experiment id (B1..B10; B8 runs under go test -bench=WideMO)")
	all := flag.Bool("all", false, "run every experiment")
	flag.Parse()
	if !*all && *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	run := func(id string) bool { return *all || *exp == id }
	if run("B1") {
		b1()
	}
	if run("B2") {
		b2()
	}
	if run("B3") {
		b3()
	}
	if run("B4") {
		b4()
	}
	if run("B5") {
		b5()
	}
	if run("B6") {
		b6()
	}
	if run("B7") {
		b7()
	}
	if run("B9") {
		b9()
	}
	if run("B10") {
		b10()
	}
}

// timeIt reports the per-iteration wall time of fn, auto-scaling the
// iteration count to ~50ms.
func timeIt(fn func()) time.Duration {
	fn() // warm up (builds memoized closures etc.)
	n := 1
	for {
		start := time.Now()
		for i := 0; i < n; i++ {
			fn()
		}
		el := time.Since(start)
		if el > 50*time.Millisecond || n >= 1<<20 {
			return el / time.Duration(n)
		}
		n *= 2
	}
}

func gen(patients int, nonStrict, churn bool) *core.MO {
	cfg := casestudy.DefaultGen()
	cfg.Patients = patients
	cfg.NonStrict = nonStrict
	cfg.Churn = churn
	cfg.LowLevel = 140
	return casestudy.MustGenerate(cfg)
}

func b1() {
	fmt.Println("B1: pre-aggregation — combine cached county counts into region counts vs recompute from base")
	fmt.Printf("%10s %14s %14s %14s %10s\n", "patients", "reuse/op", "base-warm/op", "base-cold/op", "cold/reuse")
	for _, n := range []int{1000, 5000, 20000} {
		m := gen(n, false, false)
		e := storage.NewEngine(m, ctx())
		c := storage.NewCache(e)
		if _, err := c.Materialize(casestudy.DimResidence, casestudy.CatCounty, storage.KindCount, ""); err != nil {
			fatal(err)
		}
		reuse := timeIt(func() {
			if _, err := c.RollupFrom(casestudy.DimResidence, casestudy.CatCounty, casestudy.CatRegion, storage.KindCount, ""); err != nil {
				fatal(err)
			}
		})
		warm := timeIt(func() {
			e.CountDistinctBy(casestudy.DimResidence, casestudy.CatRegion)
		})
		cold := timeIt(func() {
			storage.NewEngine(m, ctx()).CountDistinctBy(casestudy.DimResidence, casestudy.CatRegion)
		})
		fmt.Printf("%10d %14v %14v %14v %9.1fx\n", n, reuse, warm, cold, float64(cold)/float64(reuse))
	}
	fmt.Println("guard: on the non-strict diagnosis hierarchy the reuse guard rejects combining and falls back to base:")
	m := gen(2000, true, false)
	c := storage.NewCache(storage.NewEngine(m, ctx()))
	err := c.ReuseGuard(casestudy.DimDiagnosis, casestudy.CatFamily, casestudy.CatGroup, storage.KindCount)
	fmt.Printf("  ReuseGuard(Family→Group) = %v\n\n", err)
}

func b2() {
	fmt.Println("B2: characterization — bitmap closure index vs model-layer scan (count patients per diagnosis group)")
	fmt.Printf("%10s %14s %14s %8s\n", "patients", "bitmap/op", "scan/op", "speedup")
	for _, n := range []int{500, 2000, 8000} {
		m := gen(n, true, false)
		e := storage.NewEngine(m, ctx())
		fast := timeIt(func() { e.CountDistinctBy(casestudy.DimDiagnosis, casestudy.CatGroup) })
		slow := timeIt(func() { e.CountDistinctScan(casestudy.DimDiagnosis, casestudy.CatGroup) })
		fmt.Printf("%10d %14v %14v %7.1fx\n", n, fast, slow, float64(slow)/float64(fast))
	}
	fmt.Println()
}

func b3() {
	fmt.Println("B3: aggregate formation over strict vs non-strict diagnosis hierarchies")
	fmt.Printf("%10s %14s %14s %8s\n", "patients", "strict/op", "nonstrict/op", "ratio")
	for _, n := range []int{500, 2000} {
		strict := gen(n, false, false)
		loose := gen(n, true, false)
		spec := algebra.AggSpec{
			ResultDim: "Count",
			Func:      agg.MustLookup("SETCOUNT"),
			GroupBy:   map[string]string{casestudy.DimDiagnosis: casestudy.CatGroup},
		}
		ts := timeIt(func() {
			if _, err := algebra.Aggregate(strict, spec, ctx()); err != nil {
				fatal(err)
			}
		})
		tn := timeIt(func() {
			if _, err := algebra.Aggregate(loose, spec, ctx()); err != nil {
				fatal(err)
			}
		})
		fmt.Printf("%10d %14v %14v %7.2fx\n", n, ts, tn, float64(tn)/float64(ts))
	}
	fmt.Println()
}

func b4() {
	fmt.Println("B4: valid-timeslice cost vs history length (residence churn)")
	fmt.Printf("%10s %10s %14s\n", "patients", "churn", "slice/op")
	for _, n := range []int{1000, 4000} {
		for _, churn := range []bool{false, true} {
			m := gen(n, false, churn)
			at := temporal.MustDate("01/01/1995")
			d := timeIt(func() {
				if _, err := algebra.ValidTimeslice(m, at, ref); err != nil {
					fatal(err)
				}
			})
			fmt.Printf("%10d %10v %14v\n", n, churn, d)
		}
	}
	fmt.Println()
}

func b5() {
	fmt.Println("B5: algebra operator scaling")
	fmt.Printf("%10s %12s %12s %12s %12s %12s\n", "patients", "select", "project", "union", "difference", "aggregate")
	for _, n := range []int{500, 2000, 8000} {
		m := gen(n, true, false)
		m.SetKind(core.Snapshot)
		sel := timeIt(func() { algebra.Select(m, algebra.NumericCmp(casestudy.DimAge, algebra.GE, 50), ctx()) })
		prj := timeIt(func() {
			if _, err := algebra.Project(m, casestudy.DimDiagnosis); err != nil {
				fatal(err)
			}
		})
		half := algebra.Select(m, algebra.NumericCmp(casestudy.DimAge, algebra.LT, 50), ctx())
		uni := timeIt(func() {
			if _, err := algebra.Union(m, half); err != nil {
				fatal(err)
			}
		})
		dif := timeIt(func() {
			if _, err := algebra.Difference(m, half); err != nil {
				fatal(err)
			}
		})
		aggT := timeIt(func() {
			if _, err := algebra.Aggregate(m, algebra.AggSpec{
				ResultDim: "Count",
				Func:      agg.MustLookup("SETCOUNT"),
				GroupBy:   map[string]string{casestudy.DimResidence: casestudy.CatRegion},
			}, ctx()); err != nil {
				fatal(err)
			}
		})
		fmt.Printf("%10d %12v %12v %12v %12v %12v\n", n, sel, prj, uni, dif, aggT)
	}
	fmt.Println()
}

func b6() {
	fmt.Println("B6: query end-to-end (parse → plan → algebra → rows)")
	qsrc := `SELECT SETCOUNT(*) AS N FROM patients WHERE Age >= 40 GROUP BY Residence."Region"`
	fmt.Printf("%10s %14s\n", "patients", "query/op")
	for _, n := range []int{500, 2000, 8000} {
		cat := query.Catalog{"patients": gen(n, true, false)}
		d := timeIt(func() {
			if _, err := query.Exec(qsrc, cat, ref); err != nil {
				fatal(err)
			}
		})
		fmt.Printf("%10d %14v\n", n, d)
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdbench:", err)
	os.Exit(1)
}

func b7() {
	fmt.Println("B7: cube materialization — guarded derivation vs recompute (warm closure index)")
	m := gen(5000, false, false)
	e := storage.NewEngine(m, ctx())
	e.CountDistinctBy(casestudy.DimResidence, casestudy.CatArea)
	plan, err := storage.NewCache(e).PlanCube(casestudy.DimResidence, storage.KindCount, "")
	if err != nil {
		fatal(err)
	}
	fmt.Print(plan)
	derive := timeIt(func() {
		c := storage.NewCache(e)
		if _, err := c.BuildCube(plan); err != nil {
			fatal(err)
		}
	})
	base := timeIt(func() {
		c := storage.NewCache(e)
		for _, cat := range []string{casestudy.CatArea, casestudy.CatCounty, casestudy.CatRegion} {
			if _, err := c.Materialize(casestudy.DimResidence, cat, storage.KindCount, ""); err != nil {
				fatal(err)
			}
		}
	})
	fmt.Printf("  build-derived %v, build-all-from-base %v\n\n", derive, base)
}

func b9() {
	fmt.Println("B9: cross tabulation — bitmap intersection vs model-layer scan (group × region)")
	fmt.Printf("%10s %14s %14s %8s\n", "patients", "bitmap/op", "scan/op", "speedup")
	for _, n := range []int{500, 2000} {
		m := gen(n, true, false)
		e := storage.NewEngine(m, ctx())
		e.CrossCount(casestudy.DimDiagnosis, casestudy.CatGroup, casestudy.DimResidence, casestudy.CatRegion)
		fast := timeIt(func() {
			e.CrossCount(casestudy.DimDiagnosis, casestudy.CatGroup, casestudy.DimResidence, casestudy.CatRegion)
		})
		slow := timeIt(func() {
			e.CrossCountScan(casestudy.DimDiagnosis, casestudy.CatGroup, casestudy.DimResidence, casestudy.CatRegion)
		})
		fmt.Printf("%10d %14v %14v %7.1fx\n", n, fast, slow, float64(slow)/float64(fast))
	}
	fmt.Println()
}

func b10() {
	fmt.Println("B10: incremental index maintenance vs full rebuild (10000-patient base)")
	base := gen(10000, true, false)
	m := base.Clone()
	e := storage.NewEngine(m, ctx())
	e.CountDistinctBy(casestudy.DimDiagnosis, casestudy.CatGroup)
	i := 0
	appendOne := timeIt(func() {
		id := fmt.Sprintf("bench%d", i)
		i++
		if err := m.Relate(casestudy.DimDiagnosis, id, "L0"); err != nil {
			fatal(err)
		}
		if err := m.Relate(casestudy.DimResidence, id, "A0"); err != nil {
			fatal(err)
		}
		m.Relation(casestudy.DimAge).Add(id, "⊤")
		if err := e.AppendFact(id); err != nil {
			fatal(err)
		}
	})
	rebuild := timeIt(func() {
		storage.NewEngine(base, ctx())
	})
	fmt.Printf("  append-one %v, rebuild %v (%.0fx)\n\n", appendOne, rebuild, float64(rebuild)/float64(appendOne))
}
