// Command mdbench runs the experiment sweeps of EXPERIMENTS.md and prints
// one table per experiment. Unlike `go test -bench`, mdbench reports the
// *shape* measurements (who wins, by what factor, where behaviour changes)
// that EXPERIMENTS.md records:
//
//	mdbench -exp B1   # pre-aggregation reuse vs recompute-from-base
//	mdbench -exp B2   # bitmap index vs model-layer scan
//	mdbench -exp B3   # strict vs non-strict hierarchy aggregation
//	mdbench -exp B4   # timeslice cost vs history length
//	mdbench -exp B5   # algebra operator scaling
//	mdbench -exp B6   # query end-to-end
//	mdbench -exp B7   # cube materialization: derive vs recompute
//	mdbench -exp B9   # cross tabulation: bitmap vs scan
//	mdbench -exp B10  # incremental index maintenance vs rebuild
//	mdbench -exp B11  # partition-parallel vs sequential execution
//	mdbench -exp B12  # observability overhead: obs enabled vs disabled
//	mdbench -exp B13  # column kernel vs bitmap over category cardinality
//	mdbench -exp B14  # result cache hit vs recompute
//	mdbench -exp B15  # overload resilience: admitted p99 + shed latency at 1×/2×/4× load
//	mdbench -exp B16  # persistent segment storage: append, recovery, checkpoint
//	mdbench -exp B17  # columnar planner vs full algebra (differential oracle asserted)
//	mdbench -exp B18  # delta-merge maintenance: upgraded hit vs recompute under appends
//	mdbench -exp B19  # shared-scan batching: throughput + member latency tax (oracle asserted)
//	mdbench -all
//
// With -json, every measurement is also written to BENCH_<exp>.json in the
// working directory as rows of {exp, op, n, ns_per_op, allocs_per_op}, so
// CI can archive machine-readable results next to the human tables.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mddm/internal/admission"
	"mddm/internal/agg"
	"mddm/internal/algebra"
	"mddm/internal/casestudy"
	"mddm/internal/core"
	"mddm/internal/dimension"
	"mddm/internal/exec"
	"mddm/internal/obs"
	"mddm/internal/plan"
	"mddm/internal/query"
	"mddm/internal/segment"
	"mddm/internal/serve"
	"mddm/internal/storage"
	"mddm/internal/temporal"
)

var ref = temporal.MustDate("01/01/2026")

func ctx() dimension.Context { return dimension.CurrentContext(ref) }

var (
	jsonOut *bool // -json: write BENCH_<exp>.json per experiment

	curExp    string // experiment currently running, stamped into rows
	benchRows []benchRow
)

// benchRow is one machine-readable measurement for BENCH_<exp>.json.
type benchRow struct {
	Exp         string  `json:"exp"`
	Op          string  `json:"op"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// OverheadPct is B12's enabled-vs-disabled delta for the op, percent.
	OverheadPct float64 `json:"overhead_pct,omitempty"`
	// Value carries a non-timing measurement (a count, a ratio) for rows
	// whose point is not ns/op — B15's shed counts and p99 ratios.
	Value float64 `json:"value,omitempty"`
}

func main() {
	exp := flag.String("exp", "", "experiment id (B1..B19; B8 runs under go test -bench=WideMO)")
	all := flag.Bool("all", false, "run every experiment")
	nFacts := flag.Int("n", 100000, "synthetic MO size (facts) for B11–B14 and B16–B19")
	jsonOut = flag.Bool("json", false, "also write BENCH_<exp>.json with one row per measurement")
	flag.Parse()
	if !*all && *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	run := func(id string, fn func()) {
		if !*all && *exp != id {
			return
		}
		curExp = id
		benchRows = benchRows[:0]
		fn()
		flushJSON(id)
	}
	run("B1", b1)
	run("B2", b2)
	run("B3", b3)
	run("B4", b4)
	run("B5", b5)
	run("B6", b6)
	run("B7", b7)
	run("B9", b9)
	run("B10", b10)
	run("B11", func() { b11(*nFacts) })
	run("B12", func() { b12(*nFacts) })
	run("B13", func() { b13(*nFacts) })
	run("B14", func() { b14(*nFacts) })
	run("B15", b15)
	run("B16", func() { b16(*nFacts) })
	run("B17", func() { b17(*nFacts) })
	run("B18", func() { b18(*nFacts) })
	run("B19", func() { b19(*nFacts) })
}

// flushJSON writes the experiment's recorded rows to BENCH_<id>.json when
// -json is set.
func flushJSON(id string) {
	if !*jsonOut || len(benchRows) == 0 {
		return
	}
	data, err := json.MarshalIndent(benchRows, "", "  ")
	if err != nil {
		fatal(err)
	}
	name := "BENCH_" + id + ".json"
	if err := os.WriteFile(name, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d rows)\n\n", name, len(benchRows))
}

// measure reports the per-iteration wall time of fn, auto-scaling the
// iteration count to ~50ms, and records an {op, n} row (with allocations
// per op from the runtime's Mallocs counter) for BENCH_<exp>.json.
func measure(op string, n int, fn func()) time.Duration {
	fn() // warm up (builds memoized closures etc.)
	// Collect the garbage of setup and warm-up now: with engines holding
	// hundreds of MB of live bitmaps, a GC mark pass inherited from setup
	// would otherwise land inside the timed window and dominate small ops.
	runtime.GC()
	iters := 1
	for {
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		el := time.Since(start)
		if el > 50*time.Millisecond || iters >= 1<<20 {
			runtime.ReadMemStats(&m1)
			per := el / time.Duration(iters)
			benchRows = append(benchRows, benchRow{
				Exp:         curExp,
				Op:          op,
				N:           n,
				NsPerOp:     float64(per.Nanoseconds()),
				AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(iters),
			})
			return per
		}
		iters *= 2
	}
}

func gen(patients int, nonStrict, churn bool) *core.MO {
	cfg := casestudy.DefaultGen()
	cfg.Patients = patients
	cfg.NonStrict = nonStrict
	cfg.Churn = churn
	cfg.LowLevel = 140
	return casestudy.MustGenerate(cfg)
}

func b1() {
	fmt.Println("B1: pre-aggregation — combine cached county counts into region counts vs recompute from base")
	fmt.Printf("%10s %14s %14s %14s %10s\n", "patients", "reuse/op", "base-warm/op", "base-cold/op", "cold/reuse")
	for _, n := range []int{1000, 5000, 20000} {
		m := gen(n, false, false)
		e := storage.NewEngine(m, ctx())
		c := storage.NewCache(e)
		if _, err := c.Materialize(casestudy.DimResidence, casestudy.CatCounty, storage.KindCount, ""); err != nil {
			fatal(err)
		}
		reuse := measure("reuse", n, func() {
			if _, err := c.RollupFrom(casestudy.DimResidence, casestudy.CatCounty, casestudy.CatRegion, storage.KindCount, ""); err != nil {
				fatal(err)
			}
		})
		warm := measure("base-warm", n, func() {
			e.CountDistinctBy(casestudy.DimResidence, casestudy.CatRegion)
		})
		cold := measure("base-cold", n, func() {
			storage.NewEngine(m, ctx()).CountDistinctBy(casestudy.DimResidence, casestudy.CatRegion)
		})
		fmt.Printf("%10d %14v %14v %14v %9.1fx\n", n, reuse, warm, cold, float64(cold)/float64(reuse))
	}
	fmt.Println("guard: on the non-strict diagnosis hierarchy the reuse guard rejects combining and falls back to base:")
	m := gen(2000, true, false)
	c := storage.NewCache(storage.NewEngine(m, ctx()))
	err := c.ReuseGuard(casestudy.DimDiagnosis, casestudy.CatFamily, casestudy.CatGroup, storage.KindCount)
	fmt.Printf("  ReuseGuard(Family→Group) = %v\n\n", err)
}

func b2() {
	fmt.Println("B2: characterization — bitmap closure index vs model-layer scan (count patients per diagnosis group)")
	fmt.Printf("%10s %14s %14s %8s\n", "patients", "bitmap/op", "scan/op", "speedup")
	for _, n := range []int{500, 2000, 8000} {
		m := gen(n, true, false)
		e := storage.NewEngine(m, ctx())
		fast := measure("bitmap", n, func() { e.CountDistinctBy(casestudy.DimDiagnosis, casestudy.CatGroup) })
		slow := measure("scan", n, func() { e.CountDistinctScan(casestudy.DimDiagnosis, casestudy.CatGroup) })
		fmt.Printf("%10d %14v %14v %7.1fx\n", n, fast, slow, float64(slow)/float64(fast))
	}
	fmt.Println()
}

func b3() {
	fmt.Println("B3: aggregate formation over strict vs non-strict diagnosis hierarchies")
	fmt.Printf("%10s %14s %14s %8s\n", "patients", "strict/op", "nonstrict/op", "ratio")
	for _, n := range []int{500, 2000} {
		strict := gen(n, false, false)
		loose := gen(n, true, false)
		spec := algebra.AggSpec{
			ResultDim: "Count",
			Func:      agg.MustLookup("SETCOUNT"),
			GroupBy:   map[string]string{casestudy.DimDiagnosis: casestudy.CatGroup},
		}
		ts := measure("strict", n, func() {
			if _, err := algebra.Aggregate(strict, spec, ctx()); err != nil {
				fatal(err)
			}
		})
		tn := measure("nonstrict", n, func() {
			if _, err := algebra.Aggregate(loose, spec, ctx()); err != nil {
				fatal(err)
			}
		})
		fmt.Printf("%10d %14v %14v %7.2fx\n", n, ts, tn, float64(tn)/float64(ts))
	}
	fmt.Println()
}

func b4() {
	fmt.Println("B4: valid-timeslice cost vs history length (residence churn)")
	fmt.Printf("%10s %10s %14s\n", "patients", "churn", "slice/op")
	for _, n := range []int{1000, 4000} {
		for _, churn := range []bool{false, true} {
			m := gen(n, false, churn)
			at := temporal.MustDate("01/01/1995")
			d := measure(fmt.Sprintf("slice-churn=%v", churn), n, func() {
				if _, err := algebra.ValidTimeslice(m, at, ref); err != nil {
					fatal(err)
				}
			})
			fmt.Printf("%10d %10v %14v\n", n, churn, d)
		}
	}
	fmt.Println()
}

func b5() {
	fmt.Println("B5: algebra operator scaling")
	fmt.Printf("%10s %12s %12s %12s %12s %12s\n", "patients", "select", "project", "union", "difference", "aggregate")
	for _, n := range []int{500, 2000, 8000} {
		m := gen(n, true, false)
		m.SetKind(core.Snapshot)
		sel := measure("select", n, func() { algebra.Select(m, algebra.NumericCmp(casestudy.DimAge, algebra.GE, 50), ctx()) })
		prj := measure("project", n, func() {
			if _, err := algebra.Project(m, casestudy.DimDiagnosis); err != nil {
				fatal(err)
			}
		})
		half := algebra.Select(m, algebra.NumericCmp(casestudy.DimAge, algebra.LT, 50), ctx())
		uni := measure("union", n, func() {
			if _, err := algebra.Union(m, half); err != nil {
				fatal(err)
			}
		})
		dif := measure("difference", n, func() {
			if _, err := algebra.Difference(m, half); err != nil {
				fatal(err)
			}
		})
		aggT := measure("aggregate", n, func() {
			if _, err := algebra.Aggregate(m, algebra.AggSpec{
				ResultDim: "Count",
				Func:      agg.MustLookup("SETCOUNT"),
				GroupBy:   map[string]string{casestudy.DimResidence: casestudy.CatRegion},
			}, ctx()); err != nil {
				fatal(err)
			}
		})
		fmt.Printf("%10d %12v %12v %12v %12v %12v\n", n, sel, prj, uni, dif, aggT)
	}
	fmt.Println()
}

func b6() {
	fmt.Println("B6: query end-to-end (parse → plan → algebra → rows)")
	qsrc := `SELECT SETCOUNT(*) AS N FROM patients WHERE Age >= 40 GROUP BY Residence."Region"`
	fmt.Printf("%10s %14s\n", "patients", "query/op")
	for _, n := range []int{500, 2000, 8000} {
		cat := query.Catalog{"patients": gen(n, true, false)}
		d := measure("query", n, func() {
			if _, err := query.Exec(qsrc, cat, ref); err != nil {
				fatal(err)
			}
		})
		fmt.Printf("%10d %14v\n", n, d)
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdbench:", err)
	os.Exit(1)
}

func b7() {
	fmt.Println("B7: cube materialization — guarded derivation vs recompute (warm closure index)")
	m := gen(5000, false, false)
	e := storage.NewEngine(m, ctx())
	e.CountDistinctBy(casestudy.DimResidence, casestudy.CatArea)
	plan, err := storage.NewCache(e).PlanCube(casestudy.DimResidence, storage.KindCount, "")
	if err != nil {
		fatal(err)
	}
	fmt.Print(plan)
	derive := measure("build-derived", 5000, func() {
		c := storage.NewCache(e)
		if _, err := c.BuildCube(plan); err != nil {
			fatal(err)
		}
	})
	base := measure("build-all-from-base", 5000, func() {
		c := storage.NewCache(e)
		for _, cat := range []string{casestudy.CatArea, casestudy.CatCounty, casestudy.CatRegion} {
			if _, err := c.Materialize(casestudy.DimResidence, cat, storage.KindCount, ""); err != nil {
				fatal(err)
			}
		}
	})
	fmt.Printf("  build-derived %v, build-all-from-base %v\n\n", derive, base)
}

func b9() {
	fmt.Println("B9: cross tabulation — bitmap intersection vs model-layer scan (group × region)")
	fmt.Printf("%10s %14s %14s %8s\n", "patients", "bitmap/op", "scan/op", "speedup")
	for _, n := range []int{500, 2000} {
		m := gen(n, true, false)
		e := storage.NewEngine(m, ctx())
		e.CrossCount(casestudy.DimDiagnosis, casestudy.CatGroup, casestudy.DimResidence, casestudy.CatRegion)
		fast := measure("bitmap", n, func() {
			e.CrossCount(casestudy.DimDiagnosis, casestudy.CatGroup, casestudy.DimResidence, casestudy.CatRegion)
		})
		slow := measure("scan", n, func() {
			e.CrossCountScan(casestudy.DimDiagnosis, casestudy.CatGroup, casestudy.DimResidence, casestudy.CatRegion)
		})
		fmt.Printf("%10d %14v %14v %7.1fx\n", n, fast, slow, float64(slow)/float64(fast))
	}
	fmt.Println()
}

func b10() {
	fmt.Println("B10: incremental index maintenance vs full rebuild (10000-patient base)")
	base := gen(10000, true, false)
	m := base.Clone()
	e := storage.NewEngine(m, ctx())
	e.CountDistinctBy(casestudy.DimDiagnosis, casestudy.CatGroup)
	i := 0
	appendOne := measure("append-one", 10000, func() {
		id := fmt.Sprintf("bench%d", i)
		i++
		if err := m.Relate(casestudy.DimDiagnosis, id, "L0"); err != nil {
			fatal(err)
		}
		if err := m.Relate(casestudy.DimResidence, id, "A0"); err != nil {
			fatal(err)
		}
		m.Relation(casestudy.DimAge).Add(id, "⊤")
		if err := e.AppendFact(id); err != nil {
			fatal(err)
		}
	})
	rebuild := measure("rebuild", 10000, func() {
		storage.NewEngine(base, ctx())
	})
	fmt.Printf("  append-one %v, rebuild %v (%.0fx)\n\n", appendOne, rebuild, float64(rebuild)/float64(appendOne))
}

// b11 sweeps the partition-parallel storage paths against their sequential
// baselines on one n-fact synthetic MO, and differentially verifies that
// the parallel results are identical before timing anything.
func b11(nFacts int) {
	procs := runtime.GOMAXPROCS(0)
	fmt.Printf("B11: partition-parallel vs sequential execution (%d facts, GOMAXPROCS=%d)\n", nFacts, procs)
	if procs == 1 {
		fmt.Println("  note: GOMAXPROCS=1 — parallel degrees cannot beat sequential on this")
		fmt.Println("  machine; the sweep still verifies result identity and shows the")
		fmt.Println("  scheduling overhead. Run on a multi-core host to see the speedup.")
	}
	cfg := casestudy.DefaultGen()
	cfg.Patients = nFacts
	cfg.NonStrict = false
	cfg.Churn = false
	cfg.LowLevel = 140
	m := casestudy.MustGenerate(cfg)
	e := storage.NewEngine(m, ctx())

	seq := context.Background()
	degCtx := func(d int) context.Context { return exec.WithParallelism(context.Background(), d) }

	ops := []struct {
		name string
		run  func(c context.Context) (any, error)
	}{
		{"countdistinct", func(c context.Context) (any, error) {
			return e.CountDistinctByContext(c, casestudy.DimDiagnosis, casestudy.CatGroup)
		}},
		{"sumby", func(c context.Context) (any, error) {
			return e.SumByContext(c, casestudy.DimResidence, casestudy.CatCounty, casestudy.DimAge)
		}},
		{"crosscount", func(c context.Context) (any, error) {
			return e.CrossCountContext(c, casestudy.DimDiagnosis, casestudy.CatGroup, casestudy.DimResidence, casestudy.CatRegion)
		}},
	}
	degrees := []int{2, 4, 8}

	// Differential verification first: parallel answers must be identical
	// to sequential at every degree before their timings mean anything.
	for _, op := range ops {
		want, err := op.run(seq)
		if err != nil {
			fatal(err)
		}
		for _, d := range degrees {
			got, err := op.run(degCtx(d))
			if err != nil {
				fatal(err)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				fatal(fmt.Errorf("B11: %s at parallelism %d diverged from sequential", op.name, d))
			}
		}
	}
	fmt.Println("  verify: parallel results identical to sequential at degrees 2, 4, 8 ✓")

	fmt.Printf("%14s %14s %14s %14s %14s %10s\n", "op", "seq/op", "par2/op", "par4/op", "par8/op", "seq/par4")
	for _, op := range ops {
		tseq := measure(op.name+"-seq", nFacts, func() {
			if _, err := op.run(seq); err != nil {
				fatal(err)
			}
		})
		var td []time.Duration
		for _, d := range degrees {
			c := degCtx(d)
			td = append(td, measure(fmt.Sprintf("%s-par%d", op.name, d), nFacts, func() {
				if _, err := op.run(c); err != nil {
					fatal(err)
				}
			}))
		}
		fmt.Printf("%14s %14v %14v %14v %14v %9.2fx\n", op.name, tseq, td[0], td[1], td[2], float64(tseq)/float64(td[1]))
	}
	fmt.Println()
}

// b12Rounds is B12's interleaving depth: each op is timed enabled and
// disabled b12Rounds times in alternation, and the minima are compared —
// so thermal or scheduler drift during the sweep hits both sides equally
// instead of masquerading as instrumentation overhead.
const b12Rounds = 11

// b12 measures the observability layer's cost on the B11 workloads plus a
// full serving-layer query: per-op wall time with obs recording enabled
// vs disabled (obs.SetEnabled). The acceptance budget for this repo is
// <2% overhead on every op; BENCH_B12.json records the per-op deltas.
func b12(nFacts int) {
	fmt.Printf("B12: observability overhead — recording enabled vs disabled, interleaved min-of-%d (%d facts)\n", b12Rounds, nFacts)
	cfg := casestudy.DefaultGen()
	cfg.Patients = nFacts
	cfg.NonStrict = false
	cfg.Churn = false
	cfg.LowLevel = 140
	m := casestudy.MustGenerate(cfg)
	e := storage.NewEngine(m, ctx())

	// The serving-layer op uses a smaller MO, for two reasons: a fixed
	// per-query instrumentation cost is most visible on cheap queries (the
	// conservative direction for the budget check), and a query cheap
	// enough for timed() to average several iterations keeps single-run
	// GC/scheduler noise out of the minima.
	const serveN = 2000
	scat := serve.NewCatalog()
	if err := scat.Register("patients", gen(serveN, false, false)); err != nil {
		fatal(err)
	}
	srv := serve.NewServer(scat, serve.Limits{MaxFactsScanned: 10_000_000}, ref)
	qsrc := `SELECT SETCOUNT(*) AS N FROM patients WHERE Age >= 40 GROUP BY Residence."Region"`

	bg := context.Background()
	par4 := exec.WithParallelism(bg, 4)
	ops := []struct {
		name string
		n    int
		fn   func()
	}{
		{"countdistinct-seq", nFacts, func() {
			if _, err := e.CountDistinctByContext(bg, casestudy.DimDiagnosis, casestudy.CatGroup); err != nil {
				fatal(err)
			}
		}},
		{"sumby-seq", nFacts, func() {
			if _, err := e.SumByContext(bg, casestudy.DimResidence, casestudy.CatCounty, casestudy.DimAge); err != nil {
				fatal(err)
			}
		}},
		// The parallel side is measured on the long op: exec.Run's fixed
		// instrumentation (two counters, two histogram observes, per-worker
		// busy clocks) is identical per call, but a µs-scale parallel op is
		// bimodal under goroutine scheduling and would drown the signal.
		{"sumby-par4", nFacts, func() {
			if _, err := e.SumByContext(par4, casestudy.DimResidence, casestudy.CatCounty, casestudy.DimAge); err != nil {
				fatal(err)
			}
		}},
		{"serve-query", serveN, func() {
			if _, err := srv.Query(bg, qsrc); err != nil {
				fatal(err)
			}
		}},
	}

	defer obs.SetEnabled(true)
	fmt.Printf("%20s %14s %14s %10s\n", "op", "enabled/op", "disabled/op", "overhead")
	worst := 0.0
	for _, op := range ops {
		op.fn() // warm up closures and engine caches before either side
		minOn := time.Duration(1<<63 - 1)
		minOff := minOn
		for r := 0; r < b12Rounds; r++ {
			// Alternate which side goes first: the second measurement in a
			// round tends to pay the first one's GC debt, and alternation
			// spreads that bias over both sides.
			sides := []bool{true, false}
			if r%2 == 1 {
				sides[0], sides[1] = false, true
			}
			for _, on := range sides {
				obs.SetEnabled(on)
				t := timed(op.fn)
				if on && t < minOn {
					minOn = t
				}
				if !on && t < minOff {
					minOff = t
				}
			}
		}
		obs.SetEnabled(true)
		pct := (float64(minOn) - float64(minOff)) / float64(minOff) * 100
		if pct > worst {
			worst = pct
		}
		benchRows = append(benchRows,
			benchRow{Exp: curExp, Op: op.name + "-enabled", N: op.n, NsPerOp: float64(minOn.Nanoseconds()), OverheadPct: pct},
			benchRow{Exp: curExp, Op: op.name + "-disabled", N: op.n, NsPerOp: float64(minOff.Nanoseconds())})
		fmt.Printf("%20s %14v %14v %9.2f%%\n", op.name, minOn, minOff, pct)
	}
	fmt.Printf("  worst-case overhead %.2f%% (budget < 2%%)\n\n", worst)
}

// b13 sweeps the column kernels against the bitmap paths over category
// cardinality: the bitmap paths cost one closure scan per category value,
// the column kernels one pass over the facts regardless of cardinality, so
// the crossover (and the kernel-selection threshold's rationale) shows as
// the value count grows. Before timing, every column result is
// differentially verified against the bitmap path at degrees 1, 2, 4 and 8
// — the timings of diverging kernels would be meaningless.
func b13(nFacts int) {
	fmt.Printf("B13: column kernel vs bitmap path over category cardinality (%d facts)\n", nFacts)
	bg := context.Background()
	fmt.Printf("%10s %14s %14s %10s %14s %14s %10s\n",
		"values", "count-bm/op", "count-col/op", "speedup", "sum-bm/op", "sum-col/op", "speedup")
	for _, nv := range []int{10, 100, 1000, 10000} {
		cfg := casestudy.DefaultGen()
		cfg.Patients = nFacts
		cfg.NonStrict = false
		cfg.Churn = false
		cfg.LowLevel = nv
		m := casestudy.MustGenerate(cfg)
		// Two engines: the bitmap side never builds a column, so the
		// automatic kernel selection cannot flip its path mid-sweep.
		bitmapEng := storage.NewEngine(m, ctx())
		colEng := storage.NewEngine(m, ctx())
		if err := colEng.BuildColumn(bg, casestudy.DimDiagnosis, casestudy.CatLowLevel); err != nil {
			fatal(err)
		}

		wantCount, err := bitmapEng.CountDistinctByContext(bg, casestudy.DimDiagnosis, casestudy.CatLowLevel)
		if err != nil {
			fatal(err)
		}
		wantSum, err := bitmapEng.SumByContext(bg, casestudy.DimDiagnosis, casestudy.CatLowLevel, casestudy.DimAge)
		if err != nil {
			fatal(err)
		}
		for _, d := range []int{1, 2, 4, 8} {
			c := bg
			if d > 1 {
				c = exec.WithParallelism(bg, d)
			}
			gotCount, err := colEng.CountByColumn(c, casestudy.DimDiagnosis, casestudy.CatLowLevel)
			if err != nil {
				fatal(err)
			}
			if fmt.Sprint(gotCount) != fmt.Sprint(wantCount) {
				fatal(fmt.Errorf("B13: column count at %d values, degree %d diverged from bitmap", nv, d))
			}
			gotSum, err := colEng.SumByColumn(c, casestudy.DimDiagnosis, casestudy.CatLowLevel, casestudy.DimAge)
			if err != nil {
				fatal(err)
			}
			if fmt.Sprint(gotSum) != fmt.Sprint(wantSum) {
				fatal(fmt.Errorf("B13: column sum at %d values, degree %d diverged from bitmap", nv, d))
			}
		}

		tcb := measure("count-bitmap", nv, func() {
			if _, err := bitmapEng.CountDistinctByContext(bg, casestudy.DimDiagnosis, casestudy.CatLowLevel); err != nil {
				fatal(err)
			}
		})
		tcc := measure("count-column", nv, func() {
			if _, err := colEng.CountByColumn(bg, casestudy.DimDiagnosis, casestudy.CatLowLevel); err != nil {
				fatal(err)
			}
		})
		tsb := measure("sum-bitmap", nv, func() {
			if _, err := bitmapEng.SumByContext(bg, casestudy.DimDiagnosis, casestudy.CatLowLevel, casestudy.DimAge); err != nil {
				fatal(err)
			}
		})
		tsc := measure("sum-column", nv, func() {
			if _, err := colEng.SumByColumn(bg, casestudy.DimDiagnosis, casestudy.CatLowLevel, casestudy.DimAge); err != nil {
				fatal(err)
			}
		})
		fmt.Printf("%10d %14v %14v %9.1fx %14v %14v %9.1fx\n",
			nv, tcb, tcc, float64(tcb)/float64(tcc), tsb, tsc, float64(tsb)/float64(tsc))
	}
	fmt.Println("  verify: column results identical to bitmap at degrees 1, 2, 4, 8 and every cardinality ✓")
	fmt.Println()
}

func b14(nFacts int) {
	fmt.Printf("B14: result cache hit vs recompute (%d facts, 1000 low-level values)\n", nFacts)
	bg := context.Background()
	cfg := casestudy.DefaultGen()
	cfg.Patients = nFacts
	cfg.NonStrict = false
	cfg.Churn = false
	cfg.LowLevel = 1000 // the B13 1k-value workload
	m := casestudy.MustGenerate(cfg)

	scat := serve.NewCatalog()
	if err := scat.Register("patients", m); err != nil {
		fatal(err)
	}
	srv := serve.NewServer(scat, serve.Limits{ResultCacheBytes: 64 << 20}, ref)
	// The column-kernel comparator: the fastest uncached aggregation path
	// the engine offers on this workload (B13's winner).
	colEng := storage.NewEngine(m, ctx())
	if err := colEng.BuildColumn(bg, casestudy.DimDiagnosis, casestudy.CatLowLevel); err != nil {
		fatal(err)
	}

	// The headline query is the Table 1 characterization; the hot-set and
	// eviction sweeps rotate variants of a cheap single-row count so their
	// many cache fills don't dominate the benchmark's wall clock.
	const q = `SELECT SETCOUNT(*) AS N FROM patients GROUP BY Diagnosis."Diagnosis Group"`
	const cheap = `SELECT SETCOUNT(*) FROM patients`

	// Verification before any timing: index-free baseline ≡ uncached serve
	// at degrees 1–8 ≡ a degree-4-filled cache entry served to a degree-1
	// request. A wrong fast path is worthless.
	base, err := query.Exec(q, scat.Snapshot(), ref)
	if err != nil {
		fatal(err)
	}
	fill, hit, err := srv.QueryCached(exec.WithParallelism(bg, 4), q)
	if err != nil {
		fatal(err)
	}
	if hit {
		fatal(fmt.Errorf("B14: first lookup hit an empty cache"))
	}
	if fmt.Sprint(fill.Rows) != fmt.Sprint(base.Rows) {
		fatal(fmt.Errorf("B14: degree-4 fill diverged from the index-free baseline"))
	}
	for _, d := range []int{1, 2, 4, 8} {
		c := bg
		if d > 1 {
			c = exec.WithParallelism(bg, d)
		}
		unc, err := srv.Query(c, q)
		if err != nil {
			fatal(err)
		}
		if fmt.Sprint(unc.Rows) != fmt.Sprint(base.Rows) {
			fatal(fmt.Errorf("B14: uncached serve at degree %d diverged", d))
		}
		res, hit, err := srv.QueryCached(c, q)
		if err != nil {
			fatal(err)
		}
		if !hit {
			fatal(fmt.Errorf("B14: repeat lookup at degree %d missed", d))
		}
		if fmt.Sprint(res.Rows) != fmt.Sprint(base.Rows) {
			fatal(fmt.Errorf("B14: cache hit at degree %d diverged", d))
		}
	}

	tUncached := measure("query-uncached", nFacts, func() {
		if _, err := srv.Query(bg, q); err != nil {
			fatal(err)
		}
	})
	tColumn := measure("count-column", nFacts, func() {
		if _, err := colEng.CountByColumn(bg, casestudy.DimDiagnosis, casestudy.CatLowLevel); err != nil {
			fatal(err)
		}
	})
	tHit := measure("query-hit", nFacts, func() {
		_, hit, err := srv.QueryCached(bg, q)
		if err != nil {
			fatal(err)
		}
		if !hit {
			fatal(fmt.Errorf("B14: hit op missed"))
		}
	})
	// Every miss op iteration presents a never-seen key: the LIMIT varies
	// above the row count, so the computation is identical but the entry
	// is always cold — this is fill cost, parse to Put.
	missSeq := 0
	tMiss := measure("query-miss", nFacts, func() {
		missSeq++
		_, hit, err := srv.QueryCached(bg, fmt.Sprintf("%s LIMIT %d", q, 1_000_000+missSeq))
		if err != nil {
			fatal(err)
		}
		if hit {
			fatal(fmt.Errorf("B14: miss op hit"))
		}
	})
	fmt.Printf("%16s %14s %10s\n", "op", "ns/op", "vs hit")
	for _, r := range []struct {
		op string
		t  time.Duration
	}{{"query-uncached", tUncached}, {"count-column", tColumn}, {"query-miss", tMiss}, {"query-hit", tHit}} {
		fmt.Printf("%16s %14v %9.1fx\n", r.op, r.t, float64(r.t)/float64(tHit))
	}

	// Hot-set sweep: K distinct resident queries served round-robin. The
	// cache holds all of them, so this is pure lookup scaling.
	fmt.Printf("\n%10s %14s\n", "hot-set K", "hit ns/op")
	for _, k := range []int{1, 16, 256} {
		hot := make([]string, k)
		for i := range hot {
			hot[i] = fmt.Sprintf("%s LIMIT %d", cheap, 2_000_000+i)
			if _, _, err := srv.QueryCached(bg, hot[i]); err != nil {
				fatal(err)
			}
		}
		i := 0
		th := measure(fmt.Sprintf("hot-set-%d", k), k, func() {
			_, hit, err := srv.QueryCached(bg, hot[i%k])
			if err != nil {
				fatal(err)
			}
			if !hit {
				fatal(fmt.Errorf("B14: hot-set %d evicted mid-sweep", k))
			}
			i++
		})
		fmt.Printf("%10d %14v\n", k, th)
	}

	// Eviction pressure: a cache two orders of magnitude too small for the
	// working set keeps evicting, so the round-robin never converges to
	// hits — the op price is recompute plus cache churn.
	small := serve.NewServer(scat, serve.Limits{ResultCacheBytes: 16 << 10}, ref)
	const churnSet = 64 // ~3 entries fit per shard: the set is ~4x the capacity
	for i := 0; i < churnSet; i++ {
		if _, _, err := small.QueryCached(bg, fmt.Sprintf("%s LIMIT %d", cheap, 3_000_000+i)); err != nil {
			fatal(err)
		}
	}
	evSeq := 0
	tEv := measure("evict-churn", nFacts, func() {
		evSeq++
		if _, _, err := small.QueryCached(bg, fmt.Sprintf("%s LIMIT %d", cheap, 3_000_000+evSeq%churnSet)); err != nil {
			fatal(err)
		}
	})
	st := small.ResultCacheStats()
	if st.Evictions == 0 {
		fatal(fmt.Errorf("B14: eviction case produced no evictions"))
	}
	fmt.Printf("\n%16s %14v  (evictions %d over %d lookups)\n", "evict-churn", tEv, st.Evictions, st.Hits+st.Misses)
	fmt.Println("  verify: cached ≡ uncached ≡ index-free baseline at degrees 1, 2, 4, 8; degree-4 fill served degree-1 ✓")
	fmt.Println()
}

// b15 measures overload resilience. The admission controller gets a
// fixed concurrency ceiling and a two-slot wait queue, and closed-loop
// worker pools offer 1×, 2×, and 4× the server's capacity. Claims under
// test, all hard-asserted: admitted p99 at 4× stays within 3× of the 1×
// baseline (the queue is short, so waiting is short), shed requests are
// answered in under a millisecond (rejection is held-mutex arithmetic,
// not work), every admitted result is bit-identical to the unthrottled
// query.Exec baseline, and zero deadline-expired requests are ever
// granted a slot — even under a final barrage of doomed tight-deadline
// probes against a saturated server.
func b15() {
	const (
		serveN   = 2000
		ceiling  = 4
		maxQueue = 2
	)
	fmt.Printf("B15: overload resilience (%d facts, concurrency limit %d, queue %d)\n",
		serveN, ceiling, maxQueue)
	bg := context.Background()
	scat := serve.NewCatalog()
	if err := scat.Register("patients", gen(serveN, false, false)); err != nil {
		fatal(err)
	}
	// TargetLatency is deliberately generous: B15 isolates queueing and
	// shedding with the adaptive limit parked at its ceiling; the AIMD
	// control law itself is unit-tested in internal/admission.
	srv := serve.NewServer(scat, serve.Limits{
		Admission: admission.Config{
			MaxConcurrency: ceiling,
			MinConcurrency: 1,
			TargetLatency:  time.Second,
			MaxQueue:       maxQueue,
		},
	}, ref)
	const q = `SELECT SETCOUNT(*) AS N FROM patients WHERE Age >= 40 GROUP BY Residence."Region"`

	// The differential reference every admitted result must match.
	base, err := query.Exec(q, scat.Snapshot(), ref)
	if err != nil {
		fatal(err)
	}
	baseRows := fmt.Sprint(base.Rows)

	// Single-threaded service time calibrates the load phases: a shed
	// worker backs off ~one service time so mult×ceiling workers keep
	// offering ~mult× capacity instead of spinning through their quota.
	svc := timed(func() {
		if _, err := srv.Query(bg, q); err != nil {
			fatal(err)
		}
	})
	loadDur := 200 * svc
	if loadDur < 250*time.Millisecond {
		loadDur = 250 * time.Millisecond
	}
	if loadDur > 1500*time.Millisecond {
		loadDur = 1500 * time.Millisecond
	}

	runLoad := func(mult int) (admitted, shed []time.Duration, other int) {
		var mu sync.Mutex
		var wg sync.WaitGroup
		var mismatch atomic.Int64
		start := time.Now()
		for w := 0; w < ceiling*mult; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var adm, sh []time.Duration
				var oth int
				for time.Since(start) < loadDur {
					cctx, cancel := context.WithTimeout(bg, 5*time.Second)
					t0 := time.Now()
					res, qerr := srv.Query(cctx, q)
					el := time.Since(t0)
					cancel()
					switch {
					case qerr == nil:
						if fmt.Sprint(res.Rows) != baseRows {
							mismatch.Add(1)
						}
						adm = append(adm, el)
					case errors.Is(qerr, serve.ErrOverloaded):
						sh = append(sh, el)
						time.Sleep(svc)
					default:
						oth++
					}
				}
				mu.Lock()
				admitted = append(admitted, adm...)
				shed = append(shed, sh...)
				other += oth
				mu.Unlock()
			}()
		}
		wg.Wait()
		if n := mismatch.Load(); n > 0 {
			fatal(fmt.Errorf("B15: %d admitted results diverged from the unthrottled baseline", n))
		}
		return admitted, shed, other
	}

	fmt.Printf("%6s %10s %12s %12s %12s %8s\n",
		"load", "admitted", "adm p50", "adm p99", "shed p99", "shed")
	p99ByMult := map[int]time.Duration{}
	shedAt4x := 0
	for _, mult := range []int{1, 2, 4} {
		admitted, shed, other := runLoad(mult)
		if other > 0 {
			fatal(fmt.Errorf("B15: %d requests failed with neither success nor overload at %dx", other, mult))
		}
		if len(admitted) == 0 {
			fatal(fmt.Errorf("B15: no requests admitted at %dx load", mult))
		}
		p50 := pctlDur(admitted, 0.50)
		p99 := pctlDur(admitted, 0.99)
		p99ByMult[mult] = p99
		shedP99 := pctlDur(shed, 0.99)
		fmt.Printf("%5dx %10d %12v %12v %12v %8d\n",
			mult, len(admitted), p50, p99, shedP99, len(shed))
		benchRows = append(benchRows,
			benchRow{Exp: curExp, Op: fmt.Sprintf("admitted-p50-%dx", mult), N: serveN,
				NsPerOp: float64(p50.Nanoseconds()), Value: float64(len(admitted))},
			benchRow{Exp: curExp, Op: fmt.Sprintf("admitted-p99-%dx", mult), N: serveN,
				NsPerOp: float64(p99.Nanoseconds()), Value: float64(len(admitted))},
		)
		if len(shed) > 0 {
			benchRows = append(benchRows, benchRow{Exp: curExp,
				Op: fmt.Sprintf("shed-p99-%dx", mult), N: serveN,
				NsPerOp: float64(shedP99.Nanoseconds()), Value: float64(len(shed))})
			if shedP99 >= time.Millisecond {
				fatal(fmt.Errorf("B15: shed p99 %v at %dx — rejection must answer in <1ms", shedP99, mult))
			}
		}
		if mult == 4 {
			shedAt4x = len(shed)
		}
	}
	if shedAt4x == 0 {
		fatal(fmt.Errorf("B15: 4x load produced no sheds — the overload never overloaded"))
	}
	ratio := float64(p99ByMult[4]) / float64(p99ByMult[1])
	if ratio > 3 {
		fatal(fmt.Errorf("B15: admitted p99 grew %.2fx from 1x to 4x load, want <= 3x", ratio))
	}
	benchRows = append(benchRows, benchRow{Exp: curExp, Op: "p99-ratio-4x-vs-1x", N: serveN, Value: ratio})

	// Doomed-probe phase: saturate the server, then fire requests whose
	// deadline is an eighth of a service time. Each one must resolve as an
	// immediate admit (it raced into a free slot), an immediate shed
	// (queue full, or the predicted wait exceeds its remaining deadline),
	// or a deadline expiry — and the controller must never grant a slot to
	// a request whose deadline already passed while it queued.
	stop := make(chan struct{})
	var satWG sync.WaitGroup
	for w := 0; w < 2*ceiling; w++ {
		satWG.Add(1)
		go func() {
			defer satWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				cctx, cancel := context.WithTimeout(bg, 5*time.Second)
				_, _ = srv.Query(cctx, q)
				cancel()
			}
		}()
	}
	tight := svc / 8
	if tight < 50*time.Microsecond {
		tight = 50 * time.Microsecond
	}
	var doomedAdmitted, doomedShed, doomedExpired int
	for i := 0; i < 200; i++ {
		cctx, cancel := context.WithTimeout(bg, tight)
		_, qerr := srv.Query(cctx, q)
		cancel()
		switch {
		case qerr == nil:
			doomedAdmitted++
		case errors.Is(qerr, serve.ErrOverloaded):
			doomedShed++
		default:
			doomedExpired++
		}
	}
	close(stop)
	satWG.Wait()

	st := srv.AdmissionStats()
	if st.GrantedExpired != 0 {
		fatal(fmt.Errorf("B15: %d deadline-expired requests were granted slots, want 0", st.GrantedExpired))
	}
	fmt.Printf("\ndoomed probes (deadline %v): %d admitted, %d shed, %d expired\n",
		tight, doomedAdmitted, doomedShed, doomedExpired)
	fmt.Printf("controller: admitted %d, shed queue-full %d, shed deadline %d, queue-expired %d, granted-expired %d\n",
		st.Admitted, st.ShedQueueFull, st.ShedDeadline, st.QueueExpired, st.GrantedExpired)
	for _, r := range []struct {
		op string
		v  int64
	}{
		{"doomed-admitted", int64(doomedAdmitted)},
		{"doomed-shed", int64(doomedShed)},
		{"doomed-expired", int64(doomedExpired)},
		{"shed-queue-full", st.ShedQueueFull},
		{"shed-deadline", st.ShedDeadline},
		{"queue-expired", st.QueueExpired},
		{"granted-expired", st.GrantedExpired},
	} {
		benchRows = append(benchRows, benchRow{Exp: curExp, Op: r.op, N: serveN, Value: float64(r.v)})
	}
	fmt.Printf("  verify: admitted ≡ unthrottled baseline; shed p99 < 1ms; p99(4x)/p99(1x) = %.2f ≤ 3; granted-expired = 0 ✓\n\n", ratio)
}

// b16Cfg is B16's generator configuration: a skeleton MO carrying the
// dimension hierarchies (1000 low-level diagnoses, the B13 column
// workload) but none of the facts — every fact arrives as a durable
// append, so the segment store is the system of record for the bulk of
// the data.
func b16Cfg() casestudy.GenConfig {
	cfg := casestudy.DefaultGen()
	cfg.Patients = 0
	cfg.NonStrict = false
	cfg.Churn = false
	cfg.LowLevel = 1000
	return cfg
}

// b16Base builds the B16 skeleton: the generated hierarchies plus the
// hundred age values the generator would have minted per patient —
// deterministic, so every cold start re-derives a fingerprint-identical
// base for the store to verify against.
func b16Base() *core.MO {
	m := casestudy.MustGenerate(b16Cfg())
	age := m.Dimension(casestudy.DimAge)
	for a := 0; a < 100; a++ {
		if _, err := casestudy.AddAge(age, a); err != nil {
			fatal(err)
		}
	}
	return m
}

// b16Records derives n deterministic append records from the skeleton's
// dimension values — the "operational source" both sides of the
// comparison ingest: the store once at setup, the rebuild baseline on
// every cold start.
func b16Records(m *core.MO, n int) []segment.FactAppend {
	ectx := ctx()
	lows := m.Dimension(casestudy.DimDiagnosis).CategoryAt(casestudy.CatLowLevel, ectx)
	areas := m.Dimension(casestudy.DimResidence).CategoryAt(casestudy.CatArea, ectx)
	ages := m.Dimension(casestudy.DimAge).CategoryAt(casestudy.CatAge, ectx)
	if len(lows) == 0 || len(areas) == 0 || len(ages) == 0 {
		fatal(errors.New("B16: skeleton dimensions empty"))
	}
	recs := make([]segment.FactAppend, n)
	for i := range recs {
		pairs := []segment.Pair{
			{Dim: casestudy.DimDiagnosis, Value: lows[i%len(lows)], Annot: dimension.Always()},
			{Dim: casestudy.DimResidence, Value: areas[i%len(areas)], Annot: dimension.Always()},
			{Dim: casestudy.DimAge, Value: ages[i%len(ages)], Annot: dimension.Always()},
		}
		if i%3 == 2 {
			pairs = append(pairs, segment.Pair{
				Dim: casestudy.DimDiagnosis, Value: lows[(i+7)%len(lows)], Annot: dimension.Always(),
			})
		}
		recs[i] = segment.FactAppend{FactID: fmt.Sprintf("p%07d", i), Pairs: pairs}
	}
	return recs
}

// b16 measures persistent-storage cold start: opening a folded segment
// store (segments + column checkpoint) against rebuilding the same
// state from the operational source (re-ingest every record, build the
// engine, warm the columns). Before timing, the mmap-backed load is
// differentially verified against the rebuilt engine — the column
// kernels must read identical answers through a mapped checkpoint and
// through RAM.
func b16(nFacts int) {
	fmt.Printf("B16: cold-start segment load vs full rebuild (1000 low-level values)\n")
	bg := context.Background()
	sizes := []int{nFacts / 100, nFacts / 10, nFacts}
	for i := range sizes {
		if sizes[i] < 1000 {
			sizes[i] = 1000
		}
	}

	fmt.Printf("%10s %14s %14s %14s %10s\n", "facts", "rebuild/op", "load/op", "load-mmap/op", "speedup")
	for i, n := range sizes {
		if i > 0 && n == sizes[i-1] {
			continue
		}
		recs := b16Records(b16Base(), n)

		// Setup: ingest once through the durable path, warm the columns so
		// the close-time fold writes a complete checkpoint, and fold.
		dir, err := os.MkdirTemp("", "mddm-b16")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
		st, err := segment.Open(dir, b16Base(), segment.Options{})
		if err != nil {
			fatal(err)
		}
		eng, err := st.Recover(bg, ctx())
		if err != nil {
			fatal(err)
		}
		if err := eng.WarmColumns(bg, 2); err != nil {
			fatal(err)
		}
		for _, rec := range recs {
			if err := st.Append(rec); err != nil {
				fatal(err)
			}
		}
		if err := st.Close(); err != nil {
			fatal(err)
		}

		coldStart := func(opts segment.Options) *segment.Store {
			s, err := segment.Open(dir, b16Base(), opts)
			if err != nil {
				fatal(err)
			}
			e, err := s.Recover(bg, ctx())
			if err != nil {
				fatal(err)
			}
			if err := e.WarmColumns(bg, 2); err != nil {
				fatal(err)
			}
			return s
		}
		rebuild := func() *storage.Engine {
			m := b16Base()
			for _, rec := range recs {
				for _, p := range rec.Pairs {
					if err := m.RelateAnnot(p.Dim, rec.FactID, p.Value, p.Annot); err != nil {
						fatal(err)
					}
				}
			}
			// A from-source ingest closes over ⊤ and validates the model
			// before serving, exactly as casestudy.Generate does; the store
			// did the equivalent work record by record at append time, so
			// the baseline owes it too.
			m.EnsureTotal()
			if err := m.Validate(); err != nil {
				fatal(err)
			}
			e, err := storage.BuildEngine(bg, m, ctx())
			if err != nil {
				fatal(err)
			}
			if err := e.WarmColumns(bg, 2); err != nil {
				fatal(err)
			}
			return e
		}

		// Differential verification: the mmap-backed cold start must answer
		// the column-kernel aggregations identically to the full rebuild.
		want := rebuild()
		ms := coldStart(segment.Options{MMap: true})
		got := ms.Engine()
		if g, w := got.NumFacts(), want.NumFacts(); g != w {
			fatal(fmt.Errorf("B16: loaded %d facts, rebuilt %d", g, w))
		}
		wc, err := want.CountByColumn(bg, casestudy.DimDiagnosis, casestudy.CatLowLevel)
		if err != nil {
			fatal(err)
		}
		gc, err := got.CountByColumn(bg, casestudy.DimDiagnosis, casestudy.CatLowLevel)
		if err != nil {
			fatal(err)
		}
		if fmt.Sprint(gc) != fmt.Sprint(wc) {
			fatal(errors.New("B16: mmap column count diverged from rebuild"))
		}
		ws, err := want.SumByColumn(bg, casestudy.DimDiagnosis, casestudy.CatGroup, casestudy.DimAge)
		if err != nil {
			fatal(err)
		}
		gs, err := got.SumByColumn(bg, casestudy.DimDiagnosis, casestudy.CatGroup, casestudy.DimAge)
		if err != nil {
			fatal(err)
		}
		if fmt.Sprint(gs) != fmt.Sprint(ws) {
			fatal(errors.New("B16: mmap column sum diverged from rebuild"))
		}
		if err := ms.Close(); err != nil {
			fatal(err)
		}

		tRebuild := measure("rebuild", n, func() { rebuild() })
		tLoad := measure("load", n, func() {
			s := coldStart(segment.Options{})
			if err := s.Close(); err != nil {
				fatal(err)
			}
		})
		tMMap := measure("load-mmap", n, func() {
			s := coldStart(segment.Options{MMap: true})
			if err := s.Close(); err != nil {
				fatal(err)
			}
		})
		speedup := float64(tRebuild) / float64(tLoad)
		benchRows = append(benchRows, benchRow{Exp: curExp, Op: "speedup-load-vs-rebuild", N: n, Value: speedup})
		fmt.Printf("%10d %14v %14v %14v %9.1fx\n", n, tRebuild, tLoad, tMMap, speedup)
		if n >= 100_000 && speedup < 5 {
			fatal(fmt.Errorf("B16: cold-start speedup %.1fx at %d facts, want >= 5x", speedup, n))
		}
	}
	fmt.Println("  verify: mmap-backed column kernels identical to the rebuilt in-RAM engine ✓")
	fmt.Println()
}

// pctlDur reports the p-th percentile of ds (sorting it in place).
func pctlDur(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	idx := int(p*float64(len(ds)-1) + 0.5)
	return ds[idx]
}

// timed reports fn's per-iteration wall time, auto-scaling the iteration
// count to ~20ms — measure() without the row recording, so B12 can
// interleave enabled/disabled rounds and take minima before recording.
func timed(fn func()) time.Duration {
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		el := time.Since(start)
		if el > 20*time.Millisecond || iters >= 1<<20 {
			return el / time.Duration(iters)
		}
		iters *= 2
	}
}

// b17 — columnar planner vs full algebra, with the differential oracle
// asserted before any timing: the planned result must be bit-identical
// (JSON bytes) to the algebra result at parallelism degrees 1–8 on every
// timed query shape. The planner's point is skipping the materialized
// result MO; the oracle proves the skip loses nothing.
func b17(nFacts int) {
	fmt.Printf("B17: columnar planner vs full algebra (%d facts, 1000 low-level values)\n", nFacts)
	bg := context.Background()
	cfg := casestudy.DefaultGen()
	cfg.Patients = nFacts
	cfg.NonStrict = false
	cfg.Churn = false
	cfg.LowLevel = 1000 // the B13/B14 workload
	m := casestudy.MustGenerate(cfg)
	cat := query.Catalog{"patients": m}
	engines := plan.NewCatalogEngines(cat, ref)
	eng, err := engines.EngineFor(bg, "patients")
	if err != nil {
		fatal(err)
	}
	// Warm the grouping column so the planned path times the column
	// kernel (the bitmap kernel is the same contract, just slower).
	if err := eng.BuildColumn(bg, casestudy.DimDiagnosis, casestudy.CatGroup); err != nil {
		fatal(err)
	}

	const q = `SELECT SETCOUNT(*) AS N FROM patients GROUP BY Diagnosis."Diagnosis Group"`
	const qWhere = `SELECT SETCOUNT(*) AS N FROM patients WHERE Residence = 'R0' GROUP BY Diagnosis."Diagnosis Group"`
	const qSum = `SELECT SUM(Age) AS S FROM patients GROUP BY Residence."Region"`

	verify := func(src string) {
		base, err := query.Exec(src, cat, ref)
		if err != nil {
			fatal(err)
		}
		want, err := json.Marshal(base)
		if err != nil {
			fatal(err)
		}
		for _, d := range []int{1, 2, 4, 8} {
			c := bg
			if d > 1 {
				c = exec.WithParallelism(bg, d)
			}
			res, err := plan.ExecContext(c, src, cat, ref, engines)
			if err != nil {
				fatal(err)
			}
			got, err := json.Marshal(res)
			if err != nil {
				fatal(err)
			}
			if !bytes.Equal(got, want) {
				fatal(fmt.Errorf("B17: planned result at degree %d diverged from the algebra for %s:\n planned: %s\n algebra: %s", d, src, got, want))
			}
		}
	}
	for _, src := range []string{q, qWhere, qSum} {
		verify(src)
	}
	fmt.Println("differential oracle: planned ≡ algebra (bit-identical JSON) at degrees 1/2/4/8 on all timed shapes")

	tAlgebra := measure("algebra-uncached", nFacts, func() {
		if _, err := query.Exec(q, cat, ref); err != nil {
			fatal(err)
		}
	})
	tPlanned := measure("planner-uncached", nFacts, func() {
		if _, err := plan.ExecContext(bg, q, cat, ref, engines); err != nil {
			fatal(err)
		}
	})
	tWhere := measure("planner-where", nFacts, func() {
		if _, err := plan.ExecContext(bg, qWhere, cat, ref, engines); err != nil {
			fatal(err)
		}
	})
	tSum := measure("planner-sum", nFacts, func() {
		if _, err := plan.ExecContext(bg, qSum, cat, ref, engines); err != nil {
			fatal(err)
		}
	})
	speedup := float64(tAlgebra) / float64(tPlanned)
	benchRows = append(benchRows, benchRow{Exp: curExp, Op: "speedup-planner-vs-algebra", N: nFacts, Value: speedup})
	fmt.Printf("%22s %14v\n", "algebra-uncached/op", tAlgebra)
	fmt.Printf("%22s %14v\n", "planner-uncached/op", tPlanned)
	fmt.Printf("%22s %14v\n", "planner-where/op", tWhere)
	fmt.Printf("%22s %14v\n", "planner-sum/op", tSum)
	fmt.Printf("%22s %13.1fx\n", "speedup", speedup)
	if nFacts >= 100000 && speedup < 100 {
		fatal(fmt.Errorf("B17: planner speedup %.1fx below the 100x acceptance floor at %d facts", speedup, nFacts))
	}
}

// b18 — delta-merge incremental maintenance under a write-heavy append
// stream. The claim under test: with Limits.DeltaMaintenance, a cached
// result made version-stale by appends is repaired by folding only the
// appended facts — µs-class, within 10× of a pure hit's p99 — instead
// of recomputed, and the repair is bit-identical to the recompute.
// Before any timing, the differential oracle runs for every registered
// distributive (mergeable, non-probabilistic) aggregate at parallelism
// degrees 1/2/4/8 under an interleaved append schedule, asserting both
// the equality and that every round actually took the upgrade path — a
// silent fallback to recompute would pass the equality and fake the
// win, so upgrade outcomes and cache upgrade counters are hard-checked.
func b18(nFacts int) {
	fmt.Printf("B18: delta-merge maintenance under appends (%d facts, 1000 low-level values)\n", nFacts)
	bg := context.Background()
	cfg := casestudy.DefaultGen()
	cfg.Patients = nFacts
	cfg.NonStrict = false
	cfg.Churn = false
	cfg.LowLevel = 1000 // the B13/B14/B17 workload
	m := casestudy.MustGenerate(cfg)

	scat := serve.NewCatalog()
	if err := scat.Register("patients", m); err != nil {
		fatal(err)
	}
	srv := serve.NewServer(scat, serve.Limits{
		ResultCacheBytes: 64 << 20,
		Planner:          true,
		DeltaMaintenance: true,
	}, ref)
	// The engine must exist before new facts are related: a later build
	// would index them eagerly and reject the incremental AppendFact.
	eng, err := srv.EngineFor(bg, "patients")
	if err != nil {
		fatal(err)
	}
	lows := m.Dimension(casestudy.DimDiagnosis).Category(casestudy.CatLowLevel)
	appended := 0
	grow := func(n int) {
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("b18f%06d", appended)
			appended++
			if err := m.Relate(casestudy.DimDiagnosis, id, lows[appended%len(lows)]); err != nil {
				fatal(err)
			}
			ageID, err := casestudy.AddAge(m.Dimension(casestudy.DimAge), 20+appended%55)
			if err != nil {
				fatal(err)
			}
			if err := m.Relate(casestudy.DimAge, id, ageID); err != nil {
				fatal(err)
			}
			if err := eng.AppendFact(id); err != nil {
				fatal(err)
			}
		}
	}

	// Phase 1: the differential oracle, appends interleaved with queries.
	names := agg.Names()
	sort.Strings(names)
	verified := 0
	for _, name := range names {
		g, err := agg.Lookup(name)
		if err != nil {
			fatal(err)
		}
		if !g.Mergeable() || g.NeedsProb {
			continue // holistic/probabilistic: no delta contract to verify
		}
		arg := "*"
		if g.NeedsArg {
			arg = "Age"
		}
		src := fmt.Sprintf(`SELECT %s(%s) AS N FROM patients GROUP BY Diagnosis."Diagnosis Group" ORDER BY N DESC`, name, arg)
		if _, out, err := srv.ServeQuery(bg, src); err != nil {
			fatal(err)
		} else if out.CacheHit {
			fatal(fmt.Errorf("B18: %s fill hit an empty cache", name))
		}
		var lastUpgraded []byte
		for _, d := range []int{1, 2, 4, 8} {
			grow(d)
			c := bg
			if d > 1 {
				c = exec.WithParallelism(bg, d)
			}
			got, out, err := srv.ServeQuery(c, src)
			if err != nil {
				fatal(err)
			}
			if !out.Upgraded {
				fatal(fmt.Errorf("B18: %s at degree %d answered without an upgrade (outcome %+v) — silent fallback-to-recompute", name, d, out))
			}
			want, err := srv.Query(c, src)
			if err != nil {
				fatal(err)
			}
			gj, err := json.Marshal(got)
			if err != nil {
				fatal(err)
			}
			wj, err := json.Marshal(want)
			if err != nil {
				fatal(err)
			}
			if !bytes.Equal(gj, wj) {
				fatal(fmt.Errorf("B18: %s delta-merged result at degree %d diverged from recompute:\n merged:    %s\n recompute: %s", name, d, gj, wj))
			}
			lastUpgraded = gj
		}
		// And against the index-free algebra baseline at the final state.
		base, err := query.Exec(src, scat.Snapshot(), ref)
		if err != nil {
			fatal(err)
		}
		bj, err := json.Marshal(base)
		if err != nil {
			fatal(err)
		}
		if !bytes.Equal(lastUpgraded, bj) {
			fatal(fmt.Errorf("B18: %s delta-merged result diverged from the algebra baseline:\n merged:  %s\n algebra: %s", name, lastUpgraded, bj))
		}
		verified++
	}
	fmt.Printf("differential oracle: delta-merged ≡ recompute ≡ algebra (bit-identical JSON) for %d distributive aggregates at degrees 1/2/4/8\n", verified)

	// Phase 2: the write-heavy serving loop on the headline query.
	const q = `SELECT SETCOUNT(*) AS N FROM patients GROUP BY Diagnosis."Diagnosis Group"`
	if _, _, err := srv.ServeQuery(bg, q); err != nil {
		fatal(err)
	}
	const samples = 500

	// Recompute-on-miss: what a stale lookup costs without delta
	// maintenance — the full planned computation through the server.
	tRecompute := measure("recompute-on-miss", nFacts, func() {
		if _, err := srv.Query(bg, q); err != nil {
			fatal(err)
		}
	})

	// The write-heavy loop: one append, then two lookups. The first is
	// version-stale and must be repaired by folding exactly one fact
	// (hit-upgraded); the second finds the repaired entry current
	// (hit-pure). Measuring both inside the same loop is deliberate: the
	// appends churn the allocator, and sampling the pure-hit baseline in
	// a quiescent loop instead would hand it an artificially clean tail —
	// the p99 comparison would then measure GC scheduling, not the fold.
	st0 := srv.ResultCacheStats()
	runtime.GC()
	ups := make([]time.Duration, samples)
	hits := make([]time.Duration, samples)
	var upTotal time.Duration
	for i := range ups {
		grow(1)
		start := time.Now()
		_, out, err := srv.ServeQuery(bg, q)
		ups[i] = time.Since(start)
		if err != nil {
			fatal(err)
		}
		if !out.Upgraded {
			fatal(fmt.Errorf("B18: append %d answered without an upgrade (outcome %+v) — silent fallback-to-recompute", i, out))
		}
		upTotal += ups[i]

		start = time.Now()
		_, out, err = srv.ServeQuery(bg, q)
		hits[i] = time.Since(start)
		if err != nil {
			fatal(err)
		}
		if !out.CacheHit || out.Upgraded {
			fatal(fmt.Errorf("B18: pure-hit op outcome %+v", out))
		}
	}
	if got := srv.ResultCacheStats().Upgrades - st0.Upgrades; got != samples {
		fatal(fmt.Errorf("B18: cache counted %d upgrades over %d upgraded lookups", got, samples))
	}
	hitP50, hitP99 := pctlDur(hits, 0.50), pctlDur(hits, 0.99)
	upMean := upTotal / samples
	upP50, upP99 := pctlDur(ups, 0.50), pctlDur(ups, 0.99)

	speedup := float64(tRecompute) / float64(upMean)
	p99Ratio := float64(upP99) / float64(hitP99)
	for _, r := range []struct {
		op string
		t  time.Duration
	}{
		{"hit-pure-p50", hitP50}, {"hit-pure-p99", hitP99},
		{"hit-upgraded-p50", upP50}, {"hit-upgraded-p99", upP99},
		{"hit-upgraded-mean", upMean},
	} {
		benchRows = append(benchRows, benchRow{Exp: curExp, Op: r.op, N: nFacts, NsPerOp: float64(r.t.Nanoseconds())})
	}
	benchRows = append(benchRows,
		benchRow{Exp: curExp, Op: "speedup-upgrade-vs-recompute", N: nFacts, Value: speedup},
		benchRow{Exp: curExp, Op: "p99-ratio-upgraded-vs-pure-hit", N: nFacts, Value: p99Ratio},
		benchRow{Exp: curExp, Op: "upgrades", N: nFacts, Value: float64(samples)})

	fmt.Printf("%22s %14s\n", "op", "latency")
	fmt.Printf("%22s %14v\n", "hit-pure-p50", hitP50)
	fmt.Printf("%22s %14v\n", "hit-pure-p99", hitP99)
	fmt.Printf("%22s %14v\n", "hit-upgraded-p50", upP50)
	fmt.Printf("%22s %14v\n", "hit-upgraded-p99", upP99)
	fmt.Printf("%22s %14v\n", "hit-upgraded-mean", upMean)
	fmt.Printf("%22s %14v\n", "recompute-on-miss", tRecompute)
	fmt.Printf("%22s %13.1fx\n", "upgrade speedup", speedup)
	fmt.Printf("%22s %13.1fx\n", "p99 vs pure hit", p99Ratio)
	fmt.Printf("  verify: %d/%d upgraded lookups took the delta path (zero silent fallbacks) ✓\n", samples, samples)
	if p99Ratio > 10 {
		fatal(fmt.Errorf("B18: upgraded-hit p99 is %.1fx the pure-hit p99, limit is 10x", p99Ratio))
	}
	if nFacts >= 100000 && speedup < 25 {
		fatal(fmt.Errorf("B18: upgrade speedup %.1fx below the 25x acceptance floor at %d facts", speedup, nFacts))
	}
}
