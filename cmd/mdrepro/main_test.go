package main

import (
	"os"
	"testing"

	"mddm/internal/temporal"
)

// TestMainAll regenerates every paper artifact in one run. main registers
// its flags on the global flag set, so it can run exactly once per test
// process; -all is the invocation that exercises the most of it.
func TestMainAll(t *testing.T) {
	os.Args = []string{"mdrepro", "-all"}
	main()
}

// TestRunCheck runs the requirement probes and Table 2 claims directly.
// On success it returns; a reproduction regression calls os.Exit(1),
// which fails the test run loudly.
func TestRunCheck(t *testing.T) {
	runCheck()
}

func TestRef(t *testing.T) {
	if ref() != temporal.MustDate("01/01/1999") {
		t.Fatal("reference date drifted from the paper era")
	}
	ctx() // the current-context helper must build from ref()
}
