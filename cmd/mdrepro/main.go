// Command mdrepro regenerates every table and figure of Pedersen & Jensen,
// "Multidimensional Data Modeling for Complex Data" (ICDE 1999), from the
// implementation:
//
//	mdrepro -all           # everything
//	mdrepro -table 1       # Table 1 (case-study data)
//	mdrepro -table 2       # Table 2 (model evaluation + executable probes)
//	mdrepro -figure 1      # Figure 1 (ER diagram; -dot for Graphviz)
//	mdrepro -figure 2      # Figure 2 (schema lattices; -dot for Graphviz)
//	mdrepro -figure 3      # Figure 3 (Example 12's aggregate-formation result)
//	mdrepro -examples      # Examples 1–12 walked through on live objects
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"mddm/internal/agg"
	"mddm/internal/algebra"
	"mddm/internal/casestudy"
	"mddm/internal/compare"
	"mddm/internal/dimension"
	"mddm/internal/temporal"
)

func main() {
	table := flag.Int("table", 0, "regenerate Table N (1 or 2)")
	figure := flag.Int("figure", 0, "regenerate Figure N (1, 2 or 3)")
	examples := flag.Bool("examples", false, "walk through Examples 1-12")
	all := flag.Bool("all", false, "regenerate everything")
	dot := flag.Bool("dot", false, "emit Graphviz DOT instead of text (figures 1 and 2)")
	check := flag.Bool("check", false, "run the nine requirement probes and the Table 2 claims; exit non-zero on any failure")
	flag.Parse()

	if *check {
		runCheck()
		return
	}
	if !*all && *table == 0 && *figure == 0 && !*examples {
		flag.Usage()
		os.Exit(2)
	}
	if *all || *table == 1 {
		section("Table 1. Data for the Case Study")
		fmt.Println(casestudy.RenderTable1())
	}
	if *all || *table == 2 {
		section("Table 2. Evaluation of the Data Models")
		probes := compare.ProbeAll()
		fmt.Println(compare.RenderTable2(probes))
		fmt.Println("Probes (this model's row is established by running the code):")
		for _, p := range probes {
			status := "✓ " + p.Evidence
			if p.Err != nil {
				status = "✗ " + p.Err.Error()
			}
			fmt.Printf("  R%d %-55s %s\n", p.Requirement, compare.Requirements[p.Requirement-1]+":", status)
		}
		fmt.Println()
	}
	if *all || *figure == 1 {
		section("Figure 1. Patient Diagnosis Case Study")
		if *dot {
			fmt.Println(casestudy.DOTFigure1())
		} else {
			fmt.Println(casestudy.RenderFigure1())
		}
	}
	if *all || *figure == 2 {
		section("Figure 2. Schema of the Case Study")
		s := casestudy.PatientSchema()
		if *dot {
			fmt.Println(s.DOTSchema())
		} else {
			fmt.Println(s.RenderSchema())
		}
	}
	if *all || *figure == 3 {
		section("Figure 3. Result MO for Aggregate Formation (Example 12)")
		renderFigure3()
	}
	if *all || *examples {
		section("Examples 1-12")
		walkExamples()
	}
}

// runCheck verifies the reproduction mechanically: the Table 2 prose
// claims hold for the embedded matrix and all nine requirement probes pass
// against the live implementation. Exit status 0 means the reproduction is
// intact — usable as a CI gate.
func runCheck() {
	failed := false
	if err := compare.SummaryClaims(); err != nil {
		fmt.Println("✗ Table 2 claims:", err)
		failed = true
	} else {
		fmt.Println("✓ Table 2 matrix matches the paper's prose claims")
	}
	for _, p := range compare.ProbeAll() {
		if p.Err != nil {
			fmt.Printf("✗ R%d %s: %v\n", p.Requirement, compare.Requirements[p.Requirement-1], p.Err)
			failed = true
			continue
		}
		fmt.Printf("✓ R%d %s\n", p.Requirement, compare.Requirements[p.Requirement-1])
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("all checks passed")
}

func section(title string) {
	fmt.Println("=== " + title + " ===")
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdrepro:", err)
	os.Exit(1)
}

func ref() temporal.Chronon { return temporal.MustDate("01/01/1999") }

func ctx() dimension.Context { return dimension.CurrentContext(ref()) }

func renderFigure3() {
	m, err := casestudy.BuildPatientMO(casestudy.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	res, err := algebra.Aggregate(m, algebra.AggSpec{
		ResultDim: "Count",
		Func:      agg.MustLookup("SETCOUNT"),
		GroupBy:   map[string]string{casestudy.DimDiagnosis: casestudy.CatGroup},
		Ranges: []algebra.Range{
			{Label: "0-1", Lo: 0, Hi: 1},
			{Label: ">1", Lo: 2, Hi: math.Inf(1)},
		},
	}, ctx())
	if err != nil {
		fatal(err)
	}
	fmt.Println(res.MO.Render())
	fmt.Println("Result dimension:")
	fmt.Println(res.MO.Dimension("Count").RenderInstance())
	fmt.Println("Diagnosis dimension (cut at Diagnosis Group):")
	fmt.Println(res.MO.Dimension(casestudy.DimDiagnosis).RenderInstance())
	fmt.Printf("Result aggregation type: %v (non-summarizable paths ⇒ c; further SUM is blocked)\n", res.ResultAggType)
	if !res.Report.Summarizable {
		for _, r := range res.Report.Reasons {
			fmt.Println("  reason:", r)
		}
	}
	fmt.Println()
}

func walkExamples() {
	m, err := casestudy.BuildPatientMO(casestudy.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	c := ctx()
	diag := m.Dimension(casestudy.DimDiagnosis)

	fmt.Println("Example 1 — fact type Patient; dimension types:", m.Schema().DimensionNames())
	fmt.Println()

	dt := diag.Type()
	fmt.Println("Example 2 — category order of Diagnosis:", dt.CategoryTypes())
	fmt.Println("            Pred(Low-level Diagnosis) =", dt.Pred(casestudy.CatLowLevel))
	fmt.Println()

	fmt.Printf("Example 3 — Aggtype(Low-level Diagnosis) = %v, Aggtype(Age) = %v, Aggtype(DOB) = %v\n",
		dt.AggTypeOf(casestudy.CatLowLevel),
		m.Schema().DimensionType(casestudy.DimAge).AggTypeOf(casestudy.CatAge),
		m.Schema().DimensionType(casestudy.DimDOB).AggTypeOf(casestudy.CatDay))
	fmt.Println()

	fmt.Println("Example 4 — Diagnosis dimension categories:")
	for _, cat := range dt.CategoryTypes() {
		fmt.Printf("            %s = %v\n", cat, diag.Category(cat))
	}
	fmt.Println()

	sub, err := diag.SubDimension("Diagnosis'", casestudy.CatGroup)
	if err != nil {
		fatal(err)
	}
	fmt.Println("Example 5 — subdimension keeping only Diagnosis Group:", sub.Category(casestudy.CatGroup))
	fmt.Println()

	code := diag.Representation("Code")
	text := diag.Representation("Text")
	cv, _ := code.RepOf("4", c)
	tv, _ := text.RepOf("4", c)
	fmt.Printf("Example 6 — representations: Code(4) = %q, Text(4) = %q\n", cv, tv)
	fmt.Println()

	fmt.Println("Example 7 — fact-dimension relation R (patient ⟶ diagnosis):")
	for _, p := range m.Relation(casestudy.DimDiagnosis).Pairs() {
		fmt.Printf("            (%s, %s) during %v\n", p.FactID, p.ValueID, p.Annot.Time.Valid)
	}
	fmt.Println()

	fmt.Printf("Example 8 — the Patient MO: %d facts, %d dimensions (%v)\n",
		m.Facts().Len(), m.Schema().NumDimensions(), m.Schema().DimensionNames())
	fmt.Println()

	el, _ := diag.LessEqTime("3", "7", c)
	ct, _ := m.CharacterizationTime(casestudy.DimDiagnosis, "2", "3", c)
	fmt.Printf("Example 9 — temporal annotations: (2,3) ∈ R during %v; 3 ⊑ 7 during %v;\n", ct, el)
	fmt.Printf("            10 ∈ Diagnosis Family during %v; Code(8) = \"D1\" during %v\n",
		membershipTime(diag, "10"), code.RepTime("8", "D1"))
	fmt.Println()

	el10, _ := diag.LessEqTime("8", "11", c)
	both, _ := m.CharacterizationTime(casestudy.DimDiagnosis, "2", "11", c)
	fmt.Printf("Example 10 — change link 8 ⊑ 11 during %v; so patient 2 counts under the\n", el10)
	fmt.Printf("             new Diabetes group during %v (old and new classification together)\n", both)
	fmt.Println()

	res := m.Dimension(casestudy.DimResidence)
	fmt.Printf("Example 11 — Residence strict=%v partitioning=%v; Diagnosis strict=%v snapshot-partitioning=%v\n",
		res.IsStrict(), res.IsPartitioning(), diag.IsStrict(), diag.IsSnapshotPartitioning(ref()))
	who, err := casestudy.BuildDiagnosisDimension(casestudy.Options{Ref: ref()})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("             WHO-only sub-hierarchy snapshot-strict=%v snapshot-partitioning=%v\n",
		who.IsSnapshotStrict(ref()), who.IsSnapshotPartitioning(ref()))
	fmt.Println()

	fmt.Println("Example 12 — see -figure 3")
	fmt.Println()
}

func membershipTime(d *dimension.Dimension, id string) temporal.Element {
	a, _ := d.Membership(id)
	return a.Time.Valid
}
