// Command mdserve serves OLAP queries over HTTP with the robustness the
// research pipeline lacks: per-query deadlines and resource limits,
// panic isolation, request timeouts, and graceful shutdown.
//
//	mdserve -addr :8344                 # serve the paper's case study
//	mdserve -gen 10000 -timeout 2s      # synthetic data, 2s per query
//	curl 'localhost:8344/query?q=SELECT+SETCOUNT(*)+FROM+patients'
//
// The catalog contains the patient MO under the name "patients"; NOW
// resolves to -ref.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mddm/internal/casestudy"
	"mddm/internal/core"
	"mddm/internal/serve"
	"mddm/internal/temporal"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	refS := flag.String("ref", "01/01/1999", "reference date resolving NOW")
	gen := flag.Int("gen", 0, "use synthetic data with N patients instead of Table 1")
	seed := flag.Int64("seed", 1, "synthetic data seed")
	timeout := flag.Duration("timeout", 5*time.Second, "per-query deadline (0 disables)")
	maxRows := flag.Int("max-rows", 10000, "per-query result-row limit (0 disables)")
	maxFacts := flag.Int64("max-facts", 10_000_000, "per-query scanned-facts limit (0 disables)")
	parallelism := flag.Int("parallelism", 1, "default partition-parallel degree per query (1 = sequential; ?parallelism= overrides per query)")
	columns := flag.Int("columns", 0, "warm characterization columns for categories with at least N values (0 = bitmap kernels only)")
	resultCache := flag.Int64("result-cache", 0, "result-cache size in bytes (0 disables; ?nocache=1 bypasses per query)")
	shutdownGrace := flag.Duration("shutdown-grace", 5*time.Second, "drain window on SIGINT/SIGTERM")
	metrics := flag.Bool("metrics", false, "expose GET /metrics (Prometheus text format) and GET /debug/queries")
	selfcheck := flag.Bool("selfcheck", false, "start on a loopback port, run one query through HTTP, and exit")
	flag.Parse()

	ref, err := temporal.ParseDate(*refS)
	if err != nil {
		fatal(err)
	}
	mo, err := buildMO(*gen, *seed)
	if err != nil {
		fatal(err)
	}
	cat := serve.NewCatalog()
	if err := cat.Register("patients", mo); err != nil {
		fatal(err)
	}
	srv := serve.NewServer(cat, serve.Limits{
		Timeout:          *timeout,
		MaxResultRows:    *maxRows,
		MaxFactsScanned:  *maxFacts,
		Parallelism:      *parallelism,
		ColumnMinValues:  *columns,
		ResultCacheBytes: *resultCache,
	}, ref)

	handler := srv.Handler()
	if *metrics {
		// The observability surface is opt-in: the default handler set is
		// byte-for-byte what it was before the flag existed.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.Handle("/metrics", srv.MetricsHandler())
		mux.Handle("/debug/queries", srv.ActiveQueriesHandler())
		handler = mux
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	if *selfcheck {
		if err := runSelfcheck(hs, *metrics, *resultCache > 0); err != nil {
			fatal(err)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "mdserve: listening on %s\n", *addr)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "mdserve: shutting down")
	shctx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := hs.Shutdown(shctx); err != nil {
		fatal(err)
	}
}

// buildMO constructs the served MO: the paper's Table 1 case study, or
// synthetic data when n > 0.
func buildMO(n int, seed int64) (*core.MO, error) {
	if n > 0 {
		cfg := casestudy.DefaultGen()
		cfg.Patients = n
		cfg.Seed = seed
		return casestudy.Generate(cfg)
	}
	return casestudy.BuildPatientMO(casestudy.DefaultOptions())
}

// runSelfcheck binds a loopback listener, serves on it, and round-trips
// one query plus the health probe through real HTTP — the smoke test the
// command-line integration tests call. With -metrics it also scrapes
// /metrics and checks the exposition contains the serving-layer series;
// with -result-cache it repeats the query and checks the X-Mddm-Cache
// header walks miss → hit → bypass.
func runSelfcheck(hs *http.Server, metrics, resultCache bool) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("selfcheck: /healthz returned %s", resp.Status)
	}

	q := `SELECT SETCOUNT(*) FROM patients GROUP BY Diagnosis."Diagnosis Group"`
	resp, err = http.Get(base + "/query?q=" + url.QueryEscape(q))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("selfcheck: /query returned %s", resp.Status)
	}
	var out struct {
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&out); err != nil {
		return err
	}
	if len(out.Rows) == 0 {
		return fmt.Errorf("selfcheck: query returned no rows")
	}
	if resultCache {
		if got := resp.Header.Get("X-Mddm-Cache"); got != "miss" {
			return fmt.Errorf("selfcheck: first query X-Mddm-Cache = %q, want \"miss\"", got)
		}
		for _, step := range []struct{ extra, want string }{
			{"", "hit"},
			{"&nocache=1", "bypass"},
		} {
			cresp, err := http.Get(base + "/query?q=" + url.QueryEscape(q) + step.extra)
			if err != nil {
				return err
			}
			cresp.Body.Close()
			if cresp.StatusCode != http.StatusOK {
				return fmt.Errorf("selfcheck: repeat query returned %s", cresp.Status)
			}
			if got := cresp.Header.Get("X-Mddm-Cache"); got != step.want {
				return fmt.Errorf("selfcheck: repeat query X-Mddm-Cache = %q, want %q", got, step.want)
			}
		}
		fmt.Println("selfcheck ok: result cache miss/hit/bypass")
	}
	if metrics {
		mresp, err := http.Get(base + "/metrics")
		if err != nil {
			return err
		}
		body, err := io.ReadAll(io.LimitReader(mresp.Body, 1<<20))
		mresp.Body.Close()
		if err != nil {
			return err
		}
		if mresp.StatusCode != http.StatusOK {
			return fmt.Errorf("selfcheck: /metrics returned %s", mresp.Status)
		}
		for _, want := range []string{
			"mddm_serve_queries_total",
			"mddm_serve_engine_cache_total",
			"mddm_operator_seconds",
		} {
			if !strings.Contains(string(body), want) {
				return fmt.Errorf("selfcheck: /metrics missing %s", want)
			}
		}
		dresp, err := http.Get(base + "/debug/queries")
		if err != nil {
			return err
		}
		dresp.Body.Close()
		if dresp.StatusCode != http.StatusOK {
			return fmt.Errorf("selfcheck: /debug/queries returned %s", dresp.Status)
		}
		fmt.Println("selfcheck ok: metrics surface up")
	}
	fmt.Printf("selfcheck ok: %d rows, columns %v\n", len(out.Rows), out.Columns)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdserve:", err)
	os.Exit(1)
}
