// Command mdserve serves OLAP queries over HTTP with the robustness the
// research pipeline lacks: per-query deadlines and resource limits,
// panic isolation, request timeouts, adaptive admission control with
// graceful load shedding, and graceful shutdown (SIGINT/SIGTERM stops
// admitting, drains in-flight queries, exits 0).
//
//	mdserve -addr :8344                 # serve the paper's case study
//	mdserve -gen 10000 -timeout 2s      # synthetic data, 2s per query
//	mdserve -admission 8 -admit-target 50ms -tenant-rps 100
//	                                    # shed past the knee: 429 + Retry-After
//	mdserve -data /var/lib/mddm         # persistent appends: WAL + segments,
//	                                    # crash-recovered at startup
//	mdserve -planner -batch             # fuse concurrent similar queries
//	                                    # into shared scans (X-Mddm-Batch)
//	curl 'localhost:8344/query?q=SELECT+SETCOUNT(*)+FROM+patients'
//
// The catalog contains the patient MO under the name "patients"; NOW
// resolves to -ref. With -data, facts POSTed to /append are durably
// logged before they become visible and survive restarts (including
// kill -9): startup replays the directory's segments and log tail onto
// the deterministic base and serves bit-identical results.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mddm/internal/admission"
	"mddm/internal/batch"
	"mddm/internal/casestudy"
	"mddm/internal/core"
	"mddm/internal/dimension"
	"mddm/internal/segment"
	"mddm/internal/serve"
	"mddm/internal/temporal"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	refS := flag.String("ref", "01/01/1999", "reference date resolving NOW")
	gen := flag.Int("gen", 0, "use synthetic data with N patients instead of Table 1")
	seed := flag.Int64("seed", 1, "synthetic data seed")
	timeout := flag.Duration("timeout", 5*time.Second, "per-query deadline (0 disables)")
	maxRows := flag.Int("max-rows", 10000, "per-query result-row limit (0 disables)")
	maxFacts := flag.Int64("max-facts", 10_000_000, "per-query scanned-facts limit (0 disables)")
	parallelism := flag.Int("parallelism", 1, "default partition-parallel degree per query (1 = sequential; ?parallelism= overrides per query)")
	columns := flag.Int("columns", 0, "warm characterization columns for categories with at least N values (0 = bitmap kernels only)")
	resultCache := flag.Int64("result-cache", 0, "result-cache size in bytes (0 disables; ?nocache=1 bypasses per query)")
	admit := flag.Int("admission", 0, "admission-control concurrency ceiling (0 disables admission control)")
	admitFloor := flag.Int("admit-floor", 1, "admission-control concurrency floor the adaptive limit never drops below")
	admitTarget := flag.Duration("admit-target", 100*time.Millisecond, "per-query latency target steering the adaptive concurrency limit")
	admitQueue := flag.Int("admit-queue", 0, "admission wait-queue capacity (0 = 2× the ceiling)")
	tenantRPS := flag.Float64("tenant-rps", 0, "per-tenant admissions per second (0 disables tenant quotas; tenant from X-Mddm-Tenant or ?tenant=)")
	tenantBurst := flag.Float64("tenant-burst", 0, "per-tenant quota burst (0 = 2× -tenant-rps)")
	staleOnShed := flag.Duration("stale-on-shed", 0, "serve a result-cache entry this stale (with a warning) instead of shedding a query under overload (0 disables; needs -result-cache)")
	planner := flag.Bool("planner", false, "execute queries through the columnar planner (late materialization; ?plan=1 shows the chosen plan)")
	delta := flag.Bool("delta", false, "delta-merge incremental maintenance: repair version-stale cached results by folding only appended facts (needs -planner and -result-cache)")
	batching := flag.Bool("batch", false, "shared-scan batching: fuse concurrent similar queries into one scan (needs -planner; responses carry X-Mddm-Batch: solo|leader|member)")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "how long a batch leader waits gathering similar queries before scanning")
	batchMax := flag.Int("batch-max", 32, "batch size that launches the fused scan before the gather window expires")
	shutdownGrace := flag.Duration("shutdown-grace", 5*time.Second, "drain window on SIGINT/SIGTERM")
	metrics := flag.Bool("metrics", false, "expose GET /metrics (Prometheus text format) and GET /debug/queries")
	selfcheck := flag.Bool("selfcheck", false, "start on a loopback port, run one query through HTTP, and exit")
	data := flag.String("data", "", "persistent data directory: recover appended facts at startup and durably log POST /append (empty = in-memory only)")
	dataSync := flag.Bool("data-sync", true, "fsync the write-ahead log on every append (off: durability of the newest appends rides on the OS page cache)")
	dataFold := flag.Int("data-fold", 1024, "fold the append log into an immutable segment every N appends (0 = only at shutdown)")
	dataMMap := flag.Bool("data-mmap", false, "serve the persisted column checkpoint via a read-only memory mapping instead of copying it onto the heap")
	flag.Parse()

	if *delta && (!*planner || *resultCache <= 0) {
		fatal(fmt.Errorf("-delta needs -planner and a positive -result-cache: the upgrade path folds through the planner into result-cache entries"))
	}
	if *batching && !*planner {
		fatal(fmt.Errorf("-batch needs -planner: only planned kernel legs can share a scan"))
	}
	ref, err := temporal.ParseDate(*refS)
	if err != nil {
		fatal(err)
	}
	mo, err := buildMO(*gen, *seed)
	if err != nil {
		fatal(err)
	}
	cat := serve.NewCatalog()
	srv := serve.NewServer(cat, serve.Limits{
		Timeout:          *timeout,
		MaxResultRows:    *maxRows,
		MaxFactsScanned:  *maxFacts,
		Parallelism:      *parallelism,
		ColumnMinValues:  *columns,
		ResultCacheBytes: *resultCache,
		StaleOnShed:      *staleOnShed,
		Planner:          *planner,
		DeltaMaintenance: *delta,
		Batching: batch.Config{
			Enabled:        *batching,
			GatherWindow:   *batchWindow,
			MaxBatch:       *batchMax,
			MaxParallelism: *parallelism,
		},
		Admission: admission.Config{
			MaxConcurrency: *admit,
			MinConcurrency: *admitFloor,
			TargetLatency:  *admitTarget,
			MaxQueue:       *admitQueue,
			TenantRate:     *tenantRPS,
			TenantBurst:    *tenantBurst,
		},
	}, ref)

	if *data != "" {
		st, err := segment.Open(*data, mo, segment.Options{
			Sync: *dataSync, MMap: *dataMMap, FoldEvery: *dataFold,
		})
		if err != nil {
			fatal(err)
		}
		baseFacts := mo.Facts().Len()
		eng, err := st.Recover(context.Background(), dimension.CurrentContext(ref))
		if err != nil {
			fatal(err)
		}
		if *columns > 0 {
			// Warm after install: categories the checkpoint carried are
			// free, the rest build once here instead of on the first query.
			if err := eng.WarmColumns(context.Background(), *columns); err != nil {
				fatal(err)
			}
		}
		if err := srv.AttachStore("patients", st); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mdserve: data dir %s: recovered %d appended facts (%d total)\n",
			*data, eng.NumFacts()-baseFacts, eng.NumFacts())
	} else if err := cat.Register("patients", mo); err != nil {
		fatal(err)
	}

	handler := srv.Handler()
	if *metrics {
		// The observability surface is opt-in: the default handler set is
		// byte-for-byte what it was before the flag existed.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.Handle("/metrics", srv.MetricsHandler())
		mux.Handle("/debug/queries", srv.ActiveQueriesHandler())
		handler = mux
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	if *selfcheck {
		var appendBody string
		if *data != "" {
			lows := mo.Dimension(casestudy.DimDiagnosis).Category(casestudy.CatLowLevel)
			if len(lows) == 0 {
				fatal(fmt.Errorf("selfcheck: no low-level diagnoses to append"))
			}
			appendBody = fmt.Sprintf(`{"mo":"patients","fact":"selfcheck-%d","pairs":[{"dim":%q,"value":%q}]}`,
				time.Now().UnixNano(), casestudy.DimDiagnosis, lows[0])
		}
		err := runSelfcheck(hs, *metrics, *resultCache > 0, *admit > 0, *batching, appendBody)
		// Flush before exiting so the appended fact is folded durable —
		// the second -selfcheck run on the same -data dir replays it.
		if cerr := srv.CloseStores(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "mdserve: listening on %s\n", ln.Addr())
	if err := serveUntilShutdown(ctx, hs, ln, srv, *shutdownGrace); err != nil {
		fatal(err)
	}
}

// serveUntilShutdown serves on ln until ctx is done (main arrives here
// with a SIGINT/SIGTERM-bound context), then shuts down gracefully:
// admission stops first (new queries shed with 503 while the server is
// still answerable), in-flight requests drain through http.Server's
// Shutdown within grace, and a clean drain returns nil so the process
// exits 0. A serve error before any shutdown was requested is returned
// as the failure it is.
func serveUntilShutdown(ctx context.Context, hs *http.Server, ln net.Listener, srv *serve.Server, grace time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "mdserve: shutting down")
	srv.Drain()
	shctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := hs.Shutdown(shctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && err != http.ErrServerClosed {
		return err
	}
	// With the listener closed and in-flight requests drained, no more
	// appends can arrive: fold the log tail and close the stores so the
	// next start recovers from segments instead of replaying the WAL.
	if err := srv.CloseStores(); err != nil {
		return fmt.Errorf("closing data stores: %w", err)
	}
	fmt.Fprintln(os.Stderr, "mdserve: drained")
	return nil
}

// buildMO constructs the served MO: the paper's Table 1 case study, or
// synthetic data when n > 0.
func buildMO(n int, seed int64) (*core.MO, error) {
	if n > 0 {
		cfg := casestudy.DefaultGen()
		cfg.Patients = n
		cfg.Seed = seed
		return casestudy.Generate(cfg)
	}
	return casestudy.BuildPatientMO(casestudy.DefaultOptions())
}

// runSelfcheck binds a loopback listener, serves on it, and round-trips
// one query plus the health probe through real HTTP — the smoke test the
// command-line integration tests call. With -metrics it also scrapes
// /metrics and checks the exposition contains the serving-layer series;
// with -result-cache it repeats the query and checks the X-Mddm-Cache
// header walks miss → hit → bypass; with -admission it checks the
// admission gauges are exposed and that every response carries
// X-Mddm-Request-Id; with -data (appendBody non-empty) it POSTs one
// durable append, checks it is immediately visible to FACTS, and checks
// the duplicate is rejected without being logged; with -batch it walks
// the X-Mddm-Batch header through all three outcomes — solo (a
// non-batchable FACTS query), leader (a lone batchable aggregate), and
// member (concurrent similar aggregates fusing into one scan).
func runSelfcheck(hs *http.Server, metrics, resultCache, admissionOn, batchOn bool, appendBody string) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("selfcheck: /healthz returned %s", resp.Status)
	}

	q := `SELECT SETCOUNT(*) FROM patients GROUP BY Diagnosis."Diagnosis Group"`
	resp, err = http.Get(base + "/query?q=" + url.QueryEscape(q))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("selfcheck: /query returned %s", resp.Status)
	}
	if resp.Header.Get("X-Mddm-Request-Id") == "" {
		return fmt.Errorf("selfcheck: /query response has no X-Mddm-Request-Id")
	}
	var out struct {
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&out); err != nil {
		return err
	}
	if len(out.Rows) == 0 {
		return fmt.Errorf("selfcheck: query returned no rows")
	}
	if resultCache {
		if got := resp.Header.Get("X-Mddm-Cache"); got != "miss" {
			return fmt.Errorf("selfcheck: first query X-Mddm-Cache = %q, want \"miss\"", got)
		}
		for _, step := range []struct{ extra, want string }{
			{"", "hit"},
			{"&nocache=1", "bypass"},
		} {
			cresp, err := http.Get(base + "/query?q=" + url.QueryEscape(q) + step.extra)
			if err != nil {
				return err
			}
			cresp.Body.Close()
			if cresp.StatusCode != http.StatusOK {
				return fmt.Errorf("selfcheck: repeat query returned %s", cresp.Status)
			}
			if got := cresp.Header.Get("X-Mddm-Cache"); got != step.want {
				return fmt.Errorf("selfcheck: repeat query X-Mddm-Cache = %q, want %q", got, step.want)
			}
		}
		fmt.Println("selfcheck ok: result cache miss/hit/bypass")
	}
	if metrics {
		mresp, err := http.Get(base + "/metrics")
		if err != nil {
			return err
		}
		body, err := io.ReadAll(io.LimitReader(mresp.Body, 1<<20))
		mresp.Body.Close()
		if err != nil {
			return err
		}
		if mresp.StatusCode != http.StatusOK {
			return fmt.Errorf("selfcheck: /metrics returned %s", mresp.Status)
		}
		wants := []string{
			"mddm_serve_queries_total",
			"mddm_serve_engine_cache_total",
			"mddm_operator_seconds",
		}
		if admissionOn {
			wants = append(wants,
				"mddm_admission_concurrency_limit",
				"mddm_admission_admitted_total",
				"mddm_admission_queue_depth",
			)
		}
		for _, want := range wants {
			if !strings.Contains(string(body), want) {
				return fmt.Errorf("selfcheck: /metrics missing %s", want)
			}
		}
		dresp, err := http.Get(base + "/debug/queries")
		if err != nil {
			return err
		}
		dresp.Body.Close()
		if dresp.StatusCode != http.StatusOK {
			return fmt.Errorf("selfcheck: /debug/queries returned %s", dresp.Status)
		}
		fmt.Println("selfcheck ok: metrics surface up")
	}
	if batchOn {
		if err := selfcheckBatch(base, q); err != nil {
			return err
		}
		fmt.Println("selfcheck ok: batch outcomes solo/leader/member")
	}
	if appendBody != "" {
		aresp, err := http.Post(base+"/append", "application/json", strings.NewReader(appendBody))
		if err != nil {
			return err
		}
		var ack struct {
			Fact string `json:"fact"`
			Seq  uint64 `json:"seq"`
		}
		aerr := json.NewDecoder(io.LimitReader(aresp.Body, 1<<20)).Decode(&ack)
		aresp.Body.Close()
		if aresp.StatusCode != http.StatusOK {
			return fmt.Errorf("selfcheck: /append returned %s", aresp.Status)
		}
		if aerr != nil || ack.Fact == "" {
			return fmt.Errorf("selfcheck: /append ack malformed: %v", aerr)
		}
		// The duplicate must be rejected by validation — before logging.
		dresp, err := http.Post(base+"/append", "application/json", strings.NewReader(appendBody))
		if err != nil {
			return err
		}
		dresp.Body.Close()
		if dresp.StatusCode != http.StatusBadRequest {
			return fmt.Errorf("selfcheck: duplicate /append returned %s, want 400", dresp.Status)
		}
		// The append is visible to queries on the same connection that
		// acknowledged it.
		fq := `SELECT FACTS FROM patients`
		fresp, err := http.Get(base + "/query?q=" + url.QueryEscape(fq) + "&nocache=1")
		if err != nil {
			return err
		}
		fbody, ferr := io.ReadAll(io.LimitReader(fresp.Body, 8<<20))
		fresp.Body.Close()
		if ferr != nil || fresp.StatusCode != http.StatusOK {
			return fmt.Errorf("selfcheck: FACTS after append returned %s (%v)", fresp.Status, ferr)
		}
		if !strings.Contains(string(fbody), ack.Fact) {
			return fmt.Errorf("selfcheck: appended fact %s not visible to FACTS", ack.Fact)
		}
		fmt.Printf("selfcheck ok: durable append %s at seq %d\n", ack.Fact, ack.Seq)
	}
	fmt.Printf("selfcheck ok: %d rows, columns %v\n", len(out.Rows), out.Columns)
	return nil
}

// selfcheckBatch walks X-Mddm-Batch through solo → leader → member.
// nocache=1 keeps a configured result cache from answering before the
// batching path runs.
func selfcheckBatch(base, groupQ string) error {
	get := func(q string) (string, error) {
		resp, err := http.Get(base + "/query?nocache=1&q=" + url.QueryEscape(q))
		if err != nil {
			return "", err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("selfcheck: batch query returned %s", resp.Status)
		}
		return resp.Header.Get("X-Mddm-Batch"), nil
	}

	// A FACTS query has no kernel leg to share: it must bypass as solo.
	got, err := get(`SELECT FACTS FROM patients`)
	if err != nil {
		return err
	}
	if got != "solo" {
		return fmt.Errorf("selfcheck: FACTS X-Mddm-Batch = %q, want \"solo\"", got)
	}

	// A lone batchable aggregate opens (and is) its own batch: leader.
	got, err = get(groupQ)
	if err != nil {
		return err
	}
	if got != "leader" {
		return fmt.Errorf("selfcheck: lone aggregate X-Mddm-Batch = %q, want \"leader\"", got)
	}

	// Concurrent similar aggregates must fuse: at least one response joins
	// an open batch as a member. The gather window is milliseconds, so
	// scheduling jitter can miss the fusion in one round — retry a few.
	similar := []string{
		groupQ,
		`SELECT COUNT(Age) FROM patients GROUP BY Diagnosis."Diagnosis Group"`,
		`SELECT SETCOUNT(*) FROM patients WHERE Age >= 40 GROUP BY Diagnosis."Diagnosis Group"`,
		`SELECT AVG(Age) FROM patients GROUP BY Diagnosis."Diagnosis Group"`,
	}
	for round := 0; round < 20; round++ {
		outcomes := make(chan string, 2*len(similar))
		errc := make(chan error, 2*len(similar))
		for i := 0; i < cap(outcomes); i++ {
			go func(q string) {
				o, err := get(q)
				if err != nil {
					errc <- err
					return
				}
				outcomes <- o
			}(similar[i%len(similar)])
		}
		for i := 0; i < cap(outcomes); i++ {
			select {
			case err := <-errc:
				return err
			case o := <-outcomes:
				if o == "member" {
					return nil
				}
			}
		}
	}
	return fmt.Errorf("selfcheck: no member outcome in 20 rounds of concurrent similar queries")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdserve:", err)
	os.Exit(1)
}
