package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"testing"
	"time"

	"mddm/internal/admission"
	"mddm/internal/casestudy"
	"mddm/internal/serve"
	"mddm/internal/temporal"
)

// TestMainSelfcheck drives the whole command once, end to end, in its
// richest configuration: synthetic data, warmed columns, the metrics
// surface, the result cache, and admission control, verified through
// the -selfcheck HTTP round trip. main parses flags and registers them
// on the global flag set, so it can run exactly once per test process —
// this invocation is chosen to cover the most.
func TestMainSelfcheck(t *testing.T) {
	os.Args = []string{"mdserve",
		"-selfcheck", "-metrics",
		"-gen", "200",
		"-columns", "4",
		"-parallelism", "2",
		"-result-cache", "1048576",
		"-admission", "4",
		"-admit-target", "250ms",
		"-tenant-rps", "1000",
		"-stale-on-shed", "30s",
		"-data", t.TempDir(),
	}
	main()
}

// TestGracefulShutdown drives serveUntilShutdown the way main does, with
// a real SIGTERM: a slow request is in flight when the signal lands; the
// server must stop admitting (new queries shed with ReasonDraining), let
// the slow request finish with its 200, and return nil — the exit-0
// path.
func TestGracefulShutdown(t *testing.T) {
	ref := temporal.MustDate("01/01/1999")
	cat := serve.NewCatalog()
	m, err := casestudy.BuildPatientMO(casestudy.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Register("patients", m); err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(cat, serve.Limits{
		Admission: admission.Config{MaxConcurrency: 4},
	}, ref)

	// /slow parks in the handler until the gate opens — the in-flight
	// request Shutdown must wait for.
	started := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		once.Do(func() { close(started) })
		<-gate
		fmt.Fprintln(w, "slow done")
	})
	hs := &http.Server{Handler: mux}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- serveUntilShutdown(ctx, hs, ln, srv, 10*time.Second) }()

	slowRes := make(chan error, 1)
	go func() {
		resp, err := http.Get(base + "/slow")
		if err != nil {
			slowRes <- err
			return
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err == nil && resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("slow request: status %d (%s)", resp.StatusCode, body)
		}
		slowRes <- err
	}()
	<-started

	// The signal main traps, delivered for real.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// Drain begins: admission rejects new queries with the draining shed
	// while the slow request is still parked in its handler.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, qerr := srv.Query(context.Background(), "SELECT SETCOUNT(*) FROM patients")
		if errors.Is(qerr, serve.ErrOverloaded) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain never started: last query error %v", qerr)
		}
		time.Sleep(5 * time.Millisecond)
	}
	select {
	case err := <-done:
		t.Fatalf("serveUntilShutdown returned %v before in-flight work finished", err)
	default:
	}

	// Open the gate: the in-flight request completes and shutdown
	// finishes cleanly.
	close(gate)
	if err := <-slowRes; err != nil {
		t.Fatalf("in-flight request: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveUntilShutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serveUntilShutdown did not return after drain")
	}
}

func TestBuildMOTable1(t *testing.T) {
	m, err := buildMO(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Facts().Len() == 0 {
		t.Fatal("Table 1 MO has no facts")
	}
}

func TestBuildMOSynthetic(t *testing.T) {
	m, err := buildMO(50, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m.Facts().Len() == 0 {
		t.Fatal("synthetic MO has no facts")
	}
}
