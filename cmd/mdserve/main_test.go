package main

import (
	"os"
	"testing"
)

// TestMainSelfcheck drives the whole command once, end to end, in its
// richest configuration: synthetic data, warmed columns, the metrics
// surface, and the result cache, verified through the -selfcheck HTTP
// round trip. main parses flags and registers them on the global flag
// set, so it can run exactly once per test process — this invocation is
// chosen to cover the most.
func TestMainSelfcheck(t *testing.T) {
	os.Args = []string{"mdserve",
		"-selfcheck", "-metrics",
		"-gen", "200",
		"-columns", "4",
		"-parallelism", "2",
		"-result-cache", "1048576",
	}
	main()
}

func TestBuildMOTable1(t *testing.T) {
	m, err := buildMO(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Facts().Len() == 0 {
		t.Fatal("Table 1 MO has no facts")
	}
}

func TestBuildMOSynthetic(t *testing.T) {
	m, err := buildMO(50, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m.Facts().Len() == 0 {
		t.Fatal("synthetic MO has no facts")
	}
}
