package main

import (
	"os"
	"strings"
	"testing"

	"mddm/internal/casestudy"
	"mddm/internal/query"
	"mddm/internal/temporal"
)

// TestMainOneQuery drives the command end to end on synthetic data. main
// registers its flags on the global flag set, so it can run exactly once
// per test process; the remaining paths are covered through run and
// dimFlags directly.
func TestMainOneQuery(t *testing.T) {
	os.Args = []string{"mdquery", "-gen", "40", "-seed", "3",
		"-q", `SELECT SETCOUNT(*) FROM patients GROUP BY Diagnosis."Diagnosis Group"`}
	main()
}

func testCatalog(t *testing.T) (query.Catalog, temporal.Chronon) {
	t.Helper()
	m, err := casestudy.BuildPatientMO(casestudy.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return query.Catalog{"patients": m}, temporal.MustDate("01/01/1999")
}

func TestRunRendersTable(t *testing.T) {
	cat, ref := testCatalog(t)
	run(`SELECT SETCOUNT(*) FROM patients`, cat, ref)
}

func TestRunCSV(t *testing.T) {
	cat, ref := testCatalog(t)
	*csvOut = true
	defer func() { *csvOut = false }()
	run(`SELECT SETCOUNT(*) FROM patients`, cat, ref)
}

func TestRunReportsError(t *testing.T) {
	cat, ref := testCatalog(t)
	run(`SELECT ((((`, cat, ref) // must print the error, not exit
}

func TestDimFlags(t *testing.T) {
	d := dimFlags{}
	if err := d.Set("Diagnosis=diag.csv"); err != nil {
		t.Fatal(err)
	}
	if d["Diagnosis"] != "diag.csv" {
		t.Fatalf("parsed %v", d)
	}
	if err := d.Set("nonsense"); err == nil {
		t.Fatal("no error for a flag without '='")
	}
	if !strings.Contains(d.String(), "Diagnosis") {
		t.Fatalf("String() = %q", d.String())
	}
}
