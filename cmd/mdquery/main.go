// Command mdquery runs OLAP queries against the paper's clinical case
// study, synthetic data, a saved JSON MO, or CSV star-schema files:
//
//	mdquery -q 'SELECT SETCOUNT(*) FROM patients GROUP BY Diagnosis."Diagnosis Group"'
//	mdquery -gen 1000 -q 'SELECT SUM(Age) FROM patients GROUP BY Residence."Region"'
//	mdquery -load saved.json -csv -q '...'
//	mdquery -dim Diagnosis=diag.csv -dim Residence=area.csv \
//	        -facts facts.csv -id id -q '...'
//	mdquery            # REPL: one query per line, empty line or EOF quits
//
// The catalog always contains the MO under the name "patients". NOW
// resolves to -ref (default 01/01/1999, the paper era).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"mddm/internal/casestudy"
	"mddm/internal/dimension"
	"mddm/internal/lint"
	"mddm/internal/load"
	"mddm/internal/query"
	"mddm/internal/serialize"
	"mddm/internal/temporal"
)

// dimFlags collects repeated -dim name=path flags.
type dimFlags map[string]string

func (d dimFlags) String() string { return fmt.Sprint(map[string]string(d)) }

func (d dimFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want name=path, got %q", v)
	}
	d[name] = path
	return nil
}

var csvOut = flag.Bool("csv", false, "emit results as CSV instead of a table")

func main() {
	q := flag.String("q", "", "query to run (omit for a REPL)")
	refS := flag.String("ref", "01/01/1999", "reference date resolving NOW")
	gen := flag.Int("gen", 0, "use synthetic data with N patients instead of Table 1")
	seed := flag.Int64("seed", 1, "synthetic data seed")
	loadJSON := flag.String("load", "", "load the MO from a JSON file (mddm/1 format)")
	save := flag.String("save", "", "save the MO to a JSON file and exit")
	dims := dimFlags{}
	flag.Var(dims, "dim", "load a dimension hierarchy CSV: name=path (repeatable)")
	factsPath := flag.String("facts", "", "load the fact table CSV (requires -dim flags)")
	idCol := flag.String("id", "", "fact-id column of -facts (auto ids when empty)")
	lintFlag := flag.Bool("lint", false, "lint the MO for modeling smells and exit")
	flag.Parse()

	ref, err := temporal.ParseDate(*refS)
	if err != nil {
		fatal(err)
	}
	cat := query.Catalog{}
	switch {
	case *factsPath != "":
		loaded := map[string]*dimension.Dimension{}
		for name, path := range dims {
			f, err := os.Open(path)
			if err != nil {
				fatal(err)
			}
			d, err := load.Dimension(load.DimensionSpec{Name: name, R: f})
			f.Close()
			if err != nil {
				fatal(err)
			}
			loaded[name] = d
		}
		f, err := os.Open(*factsPath)
		if err != nil {
			fatal(err)
		}
		m, err := load.Facts(load.FactSpec{FactType: "patients", IDColumn: *idCol, Dimensions: loaded, R: f})
		f.Close()
		if err != nil {
			fatal(err)
		}
		cat["patients"] = m
	case *loadJSON != "":
		f, err := os.Open(*loadJSON)
		if err != nil {
			fatal(err)
		}
		m, err := serialize.Decode(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		cat["patients"] = m
	case *gen > 0:
		cfg := casestudy.DefaultGen()
		cfg.Patients = *gen
		cfg.Seed = *seed
		m, err := casestudy.Generate(cfg)
		if err != nil {
			fatal(err)
		}
		cat["patients"] = m
	default:
		m, err := casestudy.BuildPatientMO(casestudy.DefaultOptions())
		if err != nil {
			fatal(err)
		}
		cat["patients"] = m
	}

	if *lintFlag {
		fs := lint.Check(cat["patients"], dimension.CurrentContext(ref))
		if len(fs) == 0 {
			fmt.Println("no findings")
			return
		}
		for _, f := range fs {
			fmt.Println(f)
		}
		return
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if err := serialize.Encode(f, cat["patients"]); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("saved to", *save)
		return
	}

	if *q != "" {
		run(*q, cat, ref)
		return
	}
	fmt.Println("mdquery — one query per line (empty line quits)")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			break
		}
		line := sc.Text()
		if line == "" {
			break
		}
		run(line, cat, ref)
	}
}

func run(src string, cat query.Catalog, ref temporal.Chronon) {
	res, err := query.Exec(src, cat, ref)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return
	}
	if *csvOut {
		if err := serialize.WriteResultCSV(os.Stdout, res); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
		return
	}
	fmt.Print(query.RenderResult(res))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdquery:", err)
	os.Exit(1)
}
