// Package cmd_test builds the command-line tools and exercises their key
// flags end to end — the integration layer the unit tests cannot cover.
package cmd_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "mddm-cmd")
	if err != nil {
		panic(err)
	}
	binDir = dir
	for _, tool := range []string{"mdrepro", "mdquery", "mdbench", "mdserve", "mdload"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(binDir, tool), "mddm/cmd/"+tool)
		cmd.Dir = ".."
		if out, err := cmd.CombinedOutput(); err != nil {
			panic(tool + ": " + err.Error() + "\n" + string(out))
		}
	}
	code := m.Run()
	os.RemoveAll(binDir)
	os.Exit(code)
}

func run(t *testing.T, tool string, args ...string) string {
	t.Helper()
	out, err := exec.Command(filepath.Join(binDir, tool), args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", tool, args, err, out)
	}
	return string(out)
}

func TestMdreproTables(t *testing.T) {
	out := run(t, "mdrepro", "-table", "1")
	for _, want := range []string{"Patient Table", "Jane Doe", "Grouping Table"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 missing %q", want)
		}
	}
	out2 := run(t, "mdrepro", "-table", "2")
	if !strings.Contains(out2, "This model") || strings.Count(out2, "✓") != 9 {
		t.Errorf("table 2 output wrong:\n%s", out2)
	}
}

func TestMdreproFigures(t *testing.T) {
	f3 := run(t, "mdrepro", "-figure", "3")
	for _, want := range []string{"Set-of-Patient", "({1,2}, 11)", "({2}, 12)", "R[Count]"} {
		if !strings.Contains(f3, want) {
			t.Errorf("figure 3 missing %q", want)
		}
	}
	dot := run(t, "mdrepro", "-figure", "2", "-dot")
	if !strings.Contains(dot, "digraph schema") {
		t.Error("figure 2 DOT missing")
	}
	ex := run(t, "mdrepro", "-examples")
	if !strings.Contains(ex, "Example 10") {
		t.Error("examples walk missing")
	}
}

func TestMdreproCheck(t *testing.T) {
	out := run(t, "mdrepro", "-check")
	if !strings.Contains(out, "all checks passed") {
		t.Errorf("check output:\n%s", out)
	}
}

func TestMdqueryEndToEnd(t *testing.T) {
	out := run(t, "mdquery", "-q",
		`SELECT SETCOUNT(*) AS Count FROM patients GROUP BY Diagnosis."Diagnosis Group"`)
	if !strings.Contains(out, "11") || !strings.Contains(out, "not summarizable") {
		t.Errorf("query output:\n%s", out)
	}
	// CSV output.
	csvOut := run(t, "mdquery", "-csv", "-q",
		`SELECT SETCOUNT(*) AS Count FROM patients GROUP BY Diagnosis."Diagnosis Group"`)
	if !strings.HasPrefix(csvOut, "Diagnosis,Count") {
		t.Errorf("csv output:\n%s", csvOut)
	}
	// Save / load round trip.
	path := filepath.Join(binDir, "saved.json")
	run(t, "mdquery", "-save", path)
	loaded := run(t, "mdquery", "-load", path, "-q", `SELECT FACTS FROM patients`)
	if !strings.Contains(loaded, "1") || !strings.Contains(loaded, "2") {
		t.Errorf("load output:\n%s", loaded)
	}
	// Synthetic data.
	gen := run(t, "mdquery", "-gen", "50", "-q", `SELECT SETCOUNT(*) AS N FROM patients GROUP BY Residence."Region"`)
	if !strings.Contains(gen, "R0") {
		t.Errorf("gen output:\n%s", gen)
	}
	// DESCRIBE.
	desc := run(t, "mdquery", "-q", `DESCRIBE patients Diagnosis`)
	if !strings.Contains(desc, "Low-level Diagnosis") {
		t.Errorf("describe output:\n%s", desc)
	}
}

func TestMdqueryCSVLoading(t *testing.T) {
	dimCSV := filepath.Join(binDir, "diag.csv")
	factCSV := filepath.Join(binDir, "facts.csv")
	if err := os.WriteFile(dimCSV, []byte("low,family\nL1,F1\nL2,F1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(factCSV, []byte("id,Diagnosis\np1,L1\np2,L2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := run(t, "mdquery",
		"-dim", "Diagnosis="+dimCSV,
		"-facts", factCSV, "-id", "id",
		"-q", `SELECT SETCOUNT(*) AS N FROM patients GROUP BY Diagnosis."family"`)
	if !strings.Contains(out, "F1") || !strings.Contains(out, "2") {
		t.Errorf("csv-load output:\n%s", out)
	}
}

func TestMdbenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench sweep is slow")
	}
	out := run(t, "mdbench", "-exp", "B2")
	if !strings.Contains(out, "bitmap/op") {
		t.Errorf("bench output:\n%s", out)
	}
}

func TestMdserveSelfcheck(t *testing.T) {
	out := run(t, "mdserve", "-selfcheck")
	if !strings.Contains(out, "selfcheck ok") {
		t.Fatalf("selfcheck output wrong:\n%s", out)
	}
}

// TestMdservePersistenceAcrossRestart runs mdserve -selfcheck twice on
// the same -data directory in separate processes: the first run's
// durable append must be recovered — from folded segments, not a
// warm process — by the second.
func TestMdservePersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	first := run(t, "mdserve", "-selfcheck", "-data", dir)
	if !strings.Contains(first, "selfcheck ok: durable append") {
		t.Fatalf("first run did not append:\n%s", first)
	}
	second := run(t, "mdserve", "-selfcheck", "-data", dir)
	if !strings.Contains(second, "recovered 1 appended facts") {
		t.Fatalf("second run did not recover the first run's append:\n%s", second)
	}
	if !strings.Contains(second, "selfcheck ok: durable append") {
		t.Fatalf("second run did not append:\n%s", second)
	}
	third := run(t, "mdserve", "-selfcheck", "-data", dir, "-data-mmap", "-columns", "4")
	if !strings.Contains(third, "recovered 2 appended facts") {
		t.Fatalf("third run did not recover both appends:\n%s", third)
	}
}

func TestMdserveSelfcheckAdmission(t *testing.T) {
	out := run(t, "mdserve", "-selfcheck", "-metrics",
		"-admission", "4", "-tenant-rps", "1000",
		"-result-cache", "1048576", "-stale-on-shed", "30s")
	if !strings.Contains(out, "selfcheck ok: metrics surface up") {
		t.Fatalf("selfcheck output wrong:\n%s", out)
	}
}

// TestMdserveSelfcheckBatch walks the shared-scan batching surface end
// to end: the selfcheck must observe all three X-Mddm-Batch outcomes
// (solo, leader, member) through real HTTP.
func TestMdserveSelfcheckBatch(t *testing.T) {
	out := run(t, "mdserve", "-selfcheck", "-planner", "-batch",
		"-parallelism", "2", "-result-cache", "1048576")
	if !strings.Contains(out, "selfcheck ok: batch outcomes solo/leader/member") {
		t.Fatalf("selfcheck output wrong:\n%s", out)
	}
}

// TestMdserveBatchNeedsPlanner: -batch without -planner must refuse to
// start — there is no algebra-path batching to silently fall back to.
func TestMdserveBatchNeedsPlanner(t *testing.T) {
	out, err := exec.Command(filepath.Join(binDir, "mdserve"), "-batch", "-selfcheck").CombinedOutput()
	if err == nil {
		t.Fatalf("mdserve -batch without -planner started:\n%s", out)
	}
	if !strings.Contains(string(out), "-batch needs -planner") {
		t.Fatalf("rejection message wrong:\n%s", out)
	}
}

// TestMdloadEndToEnd starts a batching mdserve for real, drives the
// committed B19 mix (request-bounded) at it with mdload, and checks the
// JSON report: clean requests, batch outcomes tallied, sane latency.
func TestMdloadEndToEnd(t *testing.T) {
	srv := exec.Command(filepath.Join(binDir, "mdserve"),
		"-addr", "127.0.0.1:0", "-planner", "-batch", "-result-cache", "1048576")
	stderr, err := srv.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Signal(os.Interrupt)
		srv.Wait()
	}()
	// mdserve prints "listening on <addr>" once the socket is bound.
	var addr string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		if _, err := fmt.Sscanf(sc.Text(), "mdserve: listening on %s", &addr); err == nil {
			break
		}
	}
	if addr == "" {
		t.Fatalf("mdserve never reported its address (scan err %v)", sc.Err())
	}
	go io.Copy(io.Discard, stderr) // keep the pipe drained

	mix := filepath.Join("..", "internal", "traffic", "testdata", "b19_similar.json")
	reportPath := filepath.Join(binDir, "mdload_report.json")
	// The committed mix is wall-clock-bounded (2s); bound this run by
	// count instead so the report is exact: stretch the duration, cap the
	// requests.
	run(t, "mdload",
		"-url", "http://"+addr, "-mix", mix,
		"-duration", "60s", "-requests", "64", "-concurrency", "8",
		"-out", reportPath)

	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Requests int64 `json:"requests"`
		Errors   int64 `json:"errors"`
		Classes  map[string]struct {
			Latency struct {
				P50  float64 `json:"p50"`
				P999 float64 `json:"p999"`
			} `json:"latency_ms"`
			Batch map[string]int64 `json:"batch"`
		} `json:"classes"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, data)
	}
	if rep.Requests != 64 || rep.Errors != 0 {
		t.Fatalf("report: %d requests, %d errors; want 64 clean\n%s", rep.Requests, rep.Errors, data)
	}
	cs, ok := rep.Classes["similar-groupby"]
	if !ok {
		t.Fatalf("report classes missing similar-groupby:\n%s", data)
	}
	var batched int64
	for _, n := range cs.Batch {
		batched += n
	}
	if batched != 64 || cs.Batch["leader"] == 0 {
		t.Fatalf("batch tallies %v; want 64 outcomes with leaders", cs.Batch)
	}
	if !(cs.Latency.P50 > 0 && cs.Latency.P50 <= cs.Latency.P999) {
		t.Fatalf("latency percentiles out of order: %+v", cs.Latency)
	}
}

// TestMdloadRejectsBadMix: a malformed mix must fail fast, before any
// traffic is sent.
func TestMdloadRejectsBadMix(t *testing.T) {
	bad := filepath.Join(binDir, "bad_mix.json")
	if err := os.WriteFile(bad, []byte(`{"mode":"sideways"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(filepath.Join(binDir, "mdload"), "-mix", bad).CombinedOutput()
	if err == nil {
		t.Fatalf("mdload ran a malformed mix:\n%s", out)
	}
	if !strings.Contains(string(out), "mode") {
		t.Fatalf("rejection message wrong:\n%s", out)
	}
}
