// benchguard is the CI bench-trend gate: it parses the committed
// BENCH_*.json artifacts in -current against the same files from the
// base revision in -baseline and fails when a headline number regressed
// by more than -tolerance (default 20%).
//
//	git show "$BASE:BENCH_B14.json" > baseline/BENCH_B14.json
//	benchguard -baseline baseline -current .
//
// The guard compares committed runs against committed runs — never a CI
// smoke against a dev-machine run — so machine speed largely cancels
// out of the ratio-type metrics and stays comparable for the
// size-independent ones. A missing baseline file (benchmark introduced
// by this very change) or a changed fact count (a deliberate
// re-baselining, visible in review) skips that guard with a notice
// rather than failing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
)

type benchRow struct {
	Exp   string  `json:"exp"`
	Op    string  `json:"op"`
	N     int     `json:"n"`
	NsOp  int64   `json:"ns_per_op"`
	Value float64 `json:"value,omitempty"`
}

// guard names one headline metric and which direction is better.
type guard struct {
	file, op string
	// metric extracts the guarded number from a row.
	metric func(benchRow) float64
	// higherIsBetter: speedup ratios regress by falling, latencies by
	// rising.
	higherIsBetter bool
	label          string
}

var guards = []guard{
	{
		file: "BENCH_B14.json", op: "query-hit",
		metric: func(r benchRow) float64 { return float64(r.NsOp) },
		label:  "B14 cache-hit latency (ns/op)",
	},
	{
		file: "BENCH_B17.json", op: "speedup-planner-vs-algebra",
		metric:         func(r benchRow) float64 { return r.Value },
		higherIsBetter: true,
		label:          "B17 planner speedup vs algebra",
	},
	{
		file: "BENCH_B18.json", op: "speedup-upgrade-vs-recompute",
		metric:         func(r benchRow) float64 { return r.Value },
		higherIsBetter: true,
		label:          "B18 delta-upgrade speedup vs recompute",
	},
	{
		file: "BENCH_B19.json", op: "throughput-ratio-batched-vs-unbatched",
		metric:         func(r benchRow) float64 { return r.Value },
		higherIsBetter: true,
		label:          "B19 batched throughput ratio vs unbatched",
	},
}

func main() {
	baseline := flag.String("baseline", "", "directory holding the base revision's BENCH_*.json files")
	current := flag.String("current", ".", "directory holding the candidate BENCH_*.json files")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional regression before failing")
	flag.Parse()
	if *baseline == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -baseline is required")
		os.Exit(2)
	}

	failed := false
	for _, g := range guards {
		base, ok := loadRow(filepath.Join(*baseline, g.file), g.op)
		if !ok {
			fmt.Printf("skip %s: no committed baseline for %s/%s\n", g.label, g.file, g.op)
			continue
		}
		cur, ok := loadRow(filepath.Join(*current, g.file), g.op)
		if !ok {
			fmt.Printf("FAIL %s: %s/%s present in baseline but missing from this revision\n", g.label, g.file, g.op)
			failed = true
			continue
		}
		if base.N != cur.N {
			fmt.Printf("skip %s: fact count changed %d -> %d (re-baselined)\n", g.label, base.N, cur.N)
			continue
		}
		b, c := g.metric(base), g.metric(cur)
		if b <= 0 {
			fmt.Printf("skip %s: non-positive baseline %v\n", g.label, b)
			continue
		}
		regression := (c - b) / b // latency: up is worse
		if g.higherIsBetter {
			regression = (b - c) / b
		}
		verdict := "ok  "
		if regression > *tolerance {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("%s %s: baseline %.4g, current %.4g (regression %+.1f%%, tolerance %.0f%%)\n",
			verdict, g.label, b, c, regression*100, *tolerance*100)
	}
	if failed {
		fmt.Println("bench-trend guard failed: a committed headline number regressed past tolerance")
		os.Exit(1)
	}
}

// loadRow reads a bench JSON file and returns the row for op; ok is
// false when the file is absent or holds no such row (both are "no
// baseline", not errors — the guard's caller decides what that means).
func loadRow(path, op string) (benchRow, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return benchRow{}, false
	}
	var rows []benchRow
	if err := json.Unmarshal(data, &rows); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %s: %v\n", path, err)
		return benchRow{}, false
	}
	for _, r := range rows {
		if r.Op == op {
			return r, true
		}
	}
	return benchRow{}, false
}
