package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeBench(t *testing.T, dir, name, body string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRow(t *testing.T) {
	dir := t.TempDir()
	writeBench(t, dir, "BENCH_B14.json", `[
		{"exp":"B14","op":"query-hit","n":100000,"ns_per_op":3355},
		{"exp":"B14","op":"query-miss","n":100000,"ns_per_op":7288821967}
	]`)
	r, ok := loadRow(filepath.Join(dir, "BENCH_B14.json"), "query-hit")
	if !ok || r.NsOp != 3355 || r.N != 100000 {
		t.Fatalf("loadRow = %+v, %v", r, ok)
	}
	if _, ok := loadRow(filepath.Join(dir, "BENCH_B14.json"), "nope"); ok {
		t.Fatal("row for absent op")
	}
	if _, ok := loadRow(filepath.Join(dir, "absent.json"), "query-hit"); ok {
		t.Fatal("row from absent file")
	}
	writeBench(t, dir, "garbage.json", "{not json")
	if _, ok := loadRow(filepath.Join(dir, "garbage.json"), "query-hit"); ok {
		t.Fatal("row from malformed file")
	}
}

// TestGuardDirections pins the regression arithmetic both ways: a
// latency regresses by rising, a speedup by falling, and both pass
// within tolerance.
func TestGuardDirections(t *testing.T) {
	lat := guards[0] // B14 hit latency, lower is better
	spd := guards[1] // B17 speedup, higher is better
	if lat.higherIsBetter || !spd.higherIsBetter {
		t.Fatal("guard directions miswired")
	}
	cases := []struct {
		g          guard
		base, cur  float64
		regression float64
	}{
		{lat, 1000, 1100, 0.10}, // 10% slower hit: within tolerance
		{lat, 1000, 1300, 0.30}, // 30% slower hit: past tolerance
		{spd, 400, 380, 0.05},   // speedup dipped 5%: fine
		{spd, 400, 280, 0.30},   // speedup lost 30%: fail
		{spd, 400, 500, -0.25},  // improvement is a negative regression
	}
	for _, c := range cases {
		reg := (c.cur - c.base) / c.base
		if c.g.higherIsBetter {
			reg = (c.base - c.cur) / c.base
		}
		if diff := reg - c.regression; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s base=%v cur=%v: regression %v, want %v", c.g.label, c.base, c.cur, reg, c.regression)
		}
	}
}
