// Command mdload drives a declarative traffic mix against a running
// mdserve instance and reports the latency distribution per query class
// — the workload front-end for the batching and caching experiments
// (docs/TRAFFIC.md).
//
//	mdload -url http://127.0.0.1:8344 -mix mix.json
//	mdload -mix mix.json -duration 10s -out report.json
//
// The mix file (see internal/traffic) declares closed- or open-loop
// traffic: weighted query classes, zipf hot-set skew, tenant spread, and
// an optional append interleave. The report carries per-class
// p50/p90/p99/p999 latency (milliseconds), error counts, and tallies of
// the X-Mddm-Batch and X-Mddm-Cache response headers, so one run shows
// both how fast the server answered and how it answered.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"mddm/internal/traffic"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8344", "base URL of the mdserve instance")
	mixPath := flag.String("mix", "", "traffic mix JSON file (required; see internal/traffic)")
	duration := flag.Duration("duration", 0, "override the mix duration")
	concurrency := flag.Int("concurrency", 0, "override the closed-loop worker count")
	rate := flag.Float64("rate", 0, "override the open-loop arrival rate (requests/sec)")
	requests := flag.Int64("requests", 0, "override the request-count bound")
	seed := flag.Int64("seed", 0, "override the mix seed")
	out := flag.String("out", "", "write the JSON report to this file (default: stdout)")
	flag.Parse()

	if *mixPath == "" {
		fatal(fmt.Errorf("-mix is required"))
	}
	data, err := os.ReadFile(*mixPath)
	if err != nil {
		fatal(err)
	}
	m, err := traffic.ParseMix(data)
	if err != nil {
		fatal(err)
	}
	// Overrides are re-validated by the runner, so a bad combination
	// (e.g. -duration 0 on a mix with no request bound) still fails fast.
	if *duration != 0 {
		m.Duration = duration.String()
	}
	if *concurrency != 0 {
		m.Concurrency = *concurrency
	}
	if *rate != 0 {
		m.RatePerSec = *rate
	}
	if *requests != 0 {
		m.Requests = *requests
	}
	if *seed != 0 {
		m.Seed = *seed
	}

	// SIGINT/SIGTERM stops the run early; the partial report still prints.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	rep, err := (&traffic.Runner{BaseURL: *url}).Run(ctx, m)
	if err != nil {
		fatal(err)
	}
	summarize(rep, time.Since(start))

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

// summarize prints the human-readable run summary to stderr, keeping
// stdout clean for the JSON report.
func summarize(rep *traffic.Report, wall time.Duration) {
	fmt.Fprintf(os.Stderr, "mdload: mix %q (%s) ran %s: %d requests, %d errors, %.1f req/s\n",
		rep.Mix, rep.Mode, wall.Round(time.Millisecond), rep.Requests, rep.Errors, rep.Throughput)
	names := make([]string, 0, len(rep.Classes))
	for name := range rep.Classes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cs := rep.Classes[name]
		fmt.Fprintf(os.Stderr, "mdload:   %-20s %6d reqs %4d errs  p50 %7.2fms  p99 %7.2fms  p999 %7.2fms",
			name, cs.Requests, cs.Errors, cs.Latency.P50, cs.Latency.P99, cs.Latency.P999)
		if len(cs.Batch) > 0 {
			fmt.Fprintf(os.Stderr, "  batch %v", cs.Batch)
		}
		if len(cs.Cache) > 0 {
			fmt.Fprintf(os.Stderr, "  cache %v", cs.Cache)
		}
		fmt.Fprintln(os.Stderr)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdload:", err)
	os.Exit(1)
}
