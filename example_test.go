package mddm_test

import (
	"fmt"
	"log"

	"mddm"
)

// ExampleAggregate reproduces the paper's Example 12: the number of
// patients in each diagnosis group, with patients counted once per group
// despite multiple diagnoses.
func ExampleAggregate() {
	ctx := mddm.CurrentContext(mddm.MustDate("01/01/1999"))
	mo := mddm.MustPatientMO()
	res, err := mddm.Aggregate(mo, mddm.AggSpec{
		ResultDim: "Count",
		Func:      mddm.MustAggFunc("SETCOUNT"),
		GroupBy:   map[string]string{"Diagnosis": "Diagnosis Group"},
	}, ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range res.MO.Relation("Count").Pairs() {
		fmt.Printf("%s patients: %s\n", p.FactID, p.ValueID)
	}
	fmt.Println("summarizable:", res.Report.Summarizable)
	// Output:
	// {1,2} patients: 2
	// {2} patients: 1
	// summarizable: false
}

// ExampleExecQuery shows the query language over the case study.
func ExampleExecQuery() {
	cat := mddm.QueryCatalog{"patients": mddm.MustPatientMO()}
	res, err := mddm.ExecQuery(
		`SELECT SETCOUNT(*) AS N FROM patients GROUP BY Diagnosis."Diagnosis Group" ORDER BY N DESC`,
		cat, mddm.MustDate("01/01/1999"))
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Println(row[0], row[1])
	}
	// Output:
	// 11 2
	// 12 1
}

// ExampleValidTimeslice views the case study as the world was in 1975:
// the 1980 classification does not exist yet.
func ExampleValidTimeslice() {
	mo := mddm.MustPatientMO()
	slice, err := mddm.ValidTimeslice(mo, mddm.MustDate("15/06/1975"), mddm.MustDate("01/01/1999"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("kind:", slice.Kind())
	fmt.Println("diagnoses:", slice.Dimension("Diagnosis").Values())
	// Output:
	// kind: snapshot
	// diagnoses: [3 7 8 ⊤]
}

// ExampleSelect filters patients by a diagnosis code through a
// representation — surrogates stay internal, codes are the user-facing
// names.
func ExampleSelect() {
	ctx := mddm.CurrentContext(mddm.MustDate("01/01/1999"))
	mo := mddm.MustPatientMO()
	sel := mddm.Select(mo, mddm.CharacterizedRep("Diagnosis", "Code", "E10"), ctx)
	fmt.Println("patients with E10:", sel.Facts().IDs())
	// Output:
	// patients with E10: [1 2]
}

// ExampleYearlyCounts tracks a diagnosis group across the 1980
// reclassification: the change link counts the old Diabetes diagnosis with
// the new one.
func ExampleYearlyCounts() {
	ctx := mddm.CurrentContext(mddm.MustDate("01/01/1999"))
	mo := mddm.MustPatientMO()
	pts, err := mddm.YearlyCounts(mo, "Diagnosis", "11", 1979, 1990, ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pts {
		y, _, _, _ := p.At.Date()
		if y%5 == 0 || y == 1979 {
			fmt.Printf("%d: %d\n", y, p.Count)
		}
	}
	// Output:
	// 1979: 0
	// 1980: 1
	// 1985: 1
	// 1990: 2
}
