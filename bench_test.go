// Benchmarks regenerating the experiments of EXPERIMENTS.md. The paper
// itself reports no performance numbers (it is a data-model paper); the
// measurable artifacts are Tables 1–2 and Figures 1–3 — regenerated and
// pinned by tests — plus the design-choice ablations its future-work
// section motivates (B1–B6), benchmarked here.
package mddm_test

import (
	"context"
	"fmt"
	"testing"

	"mddm"
)

var benchRef = mddm.MustDate("01/01/2026")

func benchCtx() mddm.Context { return mddm.CurrentContext(benchRef) }

func genMO(b *testing.B, patients int, nonStrict, churn bool) *mddm.MO {
	b.Helper()
	cfg := mddm.DefaultGen()
	cfg.Patients = patients
	cfg.NonStrict = nonStrict
	cfg.Churn = churn
	m, err := mddm.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// --- T1/T2/F1/F2/F3: table and figure regeneration --------------------------

func BenchmarkTable1Render(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if mddm.RenderTable1() == "" {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFigure3Example12(b *testing.B) {
	m := mddm.MustPatientMO()
	ctx := mddm.CurrentContext(mddm.MustDate("01/01/1999"))
	spec := mddm.AggSpec{
		ResultDim: "Count",
		Func:      mddm.MustAggFunc("SETCOUNT"),
		GroupBy:   map[string]string{"Diagnosis": "Diagnosis Group"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mddm.Aggregate(m, spec, ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// --- B1: pre-aggregation reuse vs recompute ---------------------------------

func BenchmarkPreAggregation(b *testing.B) {
	for _, n := range []int{1000, 5000, 20000} {
		m := genMO(b, n, false, false)
		e := mddm.NewEngine(m, benchCtx())
		cache := mddm.NewPreAggCache(e)
		if _, err := cache.Materialize("Residence", "County", mddm.PreAggCount, ""); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("reuse/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cache.RollupFrom("Residence", "County", "Region", mddm.PreAggCount, ""); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("base-warm/n=%d", n), func(b *testing.B) {
			// Warm: the engine's closure bitmaps are already memoized.
			for i := 0; i < b.N; i++ {
				e.CountDistinctBy("Residence", "Region")
			}
		})
		b.Run(fmt.Sprintf("base-cold/n=%d", n), func(b *testing.B) {
			// Cold: recomputing from base data includes touching the base
			// relation — the work pre-aggregation exists to avoid.
			for i := 0; i < b.N; i++ {
				cold := mddm.NewEngine(m, benchCtx())
				cold.CountDistinctBy("Residence", "Region")
			}
		})
	}
}

// --- B2: bitmap index vs model-layer scan -----------------------------------

func BenchmarkCharacterization(b *testing.B) {
	for _, n := range []int{500, 2000, 8000} {
		m := genMO(b, n, true, false)
		e := mddm.NewEngine(m, benchCtx())
		e.CountDistinctBy("Diagnosis", "Diagnosis Group") // build closures
		b.Run(fmt.Sprintf("bitmap/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.CountDistinctBy("Diagnosis", "Diagnosis Group")
			}
		})
		b.Run(fmt.Sprintf("scan/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.CountDistinctScan("Diagnosis", "Diagnosis Group")
			}
		})
	}
}

// --- B3: strict vs non-strict hierarchy aggregation --------------------------

func BenchmarkHierarchy(b *testing.B) {
	spec := mddm.AggSpec{
		ResultDim: "Count",
		Func:      mddm.MustAggFunc("SETCOUNT"),
		GroupBy:   map[string]string{"Diagnosis": "Diagnosis Group"},
	}
	for _, n := range []int{500, 2000} {
		for _, variant := range []struct {
			name      string
			nonStrict bool
		}{{"strict", false}, {"nonstrict", true}} {
			m := genMO(b, n, variant.nonStrict, false)
			b.Run(fmt.Sprintf("%s/n=%d", variant.name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := mddm.Aggregate(m, spec, benchCtx()); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- B4: timeslice cost vs history length ------------------------------------

func BenchmarkTimeslice(b *testing.B) {
	at := mddm.MustDate("01/01/1995")
	for _, n := range []int{1000, 4000} {
		for _, churn := range []bool{false, true} {
			m := genMO(b, n, false, churn)
			b.Run(fmt.Sprintf("churn=%v/n=%d", churn, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := mddm.ValidTimeslice(m, at, benchRef); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- B5: algebra operator scaling ---------------------------------------------

func BenchmarkOperators(b *testing.B) {
	for _, n := range []int{500, 2000, 8000} {
		m := genMO(b, n, true, false)
		m.SetKind(mddm.Snapshot)
		half := mddm.Select(m, mddm.NumericCmp("Age", mddm.LT, 50), benchCtx())
		b.Run(fmt.Sprintf("select/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mddm.Select(m, mddm.NumericCmp("Age", mddm.GE, 50), benchCtx())
			}
		})
		b.Run(fmt.Sprintf("project/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mddm.Project(m, "Diagnosis"); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("union/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mddm.Union(m, half); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("difference/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mddm.Difference(m, half); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("aggregate/n=%d", n), func(b *testing.B) {
			spec := mddm.AggSpec{
				ResultDim: "Count",
				Func:      mddm.MustAggFunc("SETCOUNT"),
				GroupBy:   map[string]string{"Residence": "Region"},
			}
			for i := 0; i < b.N; i++ {
				if _, err := mddm.Aggregate(m, spec, benchCtx()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- B6: query end-to-end -------------------------------------------------------

func BenchmarkQuery(b *testing.B) {
	const q = `SELECT SETCOUNT(*) AS N FROM patients WHERE Age >= 40 GROUP BY Residence."Region"`
	for _, n := range []int{500, 2000, 8000} {
		cat := mddm.QueryCatalog{"patients": genMO(b, n, true, false)}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mddm.ExecQuery(q, cat, benchRef); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("parse-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mddm.ParseQuery(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Engine build cost (ablation: index construction amortization) -----------

func BenchmarkEngineBuild(b *testing.B) {
	for _, n := range []int{1000, 8000} {
		m := genMO(b, n, true, false)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mddm.NewEngine(m, benchCtx())
			}
		})
	}
}

// --- Generator throughput (harness overhead reference) ------------------------

func BenchmarkGenerate(b *testing.B) {
	cfg := mddm.DefaultGen()
	cfg.Patients = 1000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mddm.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- B7: cube materialization — derive-from-lower vs all-from-base -----------

func BenchmarkCubeMaterialization(b *testing.B) {
	cfg := mddm.DefaultGen()
	cfg.Patients = 5000
	cfg.NonStrict = false
	cfg.Churn = false
	m, err := mddm.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	// The plan (with its summarizability guard) is computed once — it
	// depends only on the hierarchy, not on when the cube is built.
	plan, err := mddm.NewPreAggCache(mddm.NewEngine(m, benchCtx())).PlanCube("Residence", mddm.PreAggCount, "")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("plan-once", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := mddm.NewPreAggCache(mddm.NewEngine(m, benchCtx()))
			if _, err := c.PlanCube("Residence", mddm.PreAggCount, ""); err != nil {
				b.Fatal(err)
			}
		}
	})
	e := mddm.NewEngine(m, benchCtx())
	e.CountDistinctBy("Residence", "Area") // warm the closure index
	b.Run("build-derived", func(b *testing.B) {
		// Higher levels derive from the Area materialization by combining
		// rows through the hierarchy.
		for i := 0; i < b.N; i++ {
			c := mddm.NewPreAggCache(e)
			if _, err := c.BuildCube(plan); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("build-all-from-base", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := mddm.NewPreAggCache(e)
			for _, cat := range []string{"Area", "County", "Region"} {
				if _, err := c.Materialize("Residence", cat, mddm.PreAggCount, ""); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// --- B8: width scaling (the paper's hundreds-of-dimensions future work) -------

func BenchmarkWideMO(b *testing.B) {
	for _, nDims := range []int{50, 200} {
		types := make([]*mddm.DimensionType, nDims)
		for i := range types {
			types[i] = mddm.MustDimensionType(fmt.Sprintf("D%03d", i), mddm.Sum, mddm.KindInt, "V")
		}
		s, err := mddm.NewSchema("Wide", types...)
		if err != nil {
			b.Fatal(err)
		}
		m := mddm.NewMO(s)
		for i := 0; i < nDims; i++ {
			d := m.Dimension(fmt.Sprintf("D%03d", i))
			for v := 0; v < 4; v++ {
				if err := d.AddValue("V", fmt.Sprintf("%d", v)); err != nil {
					b.Fatal(err)
				}
			}
		}
		for f := 0; f < 100; f++ {
			id := fmt.Sprintf("f%d", f)
			for i := 0; i < nDims; i++ {
				if err := m.Relate(fmt.Sprintf("D%03d", i), id, fmt.Sprintf("%d", (f+i)%4)); err != nil {
					b.Fatal(err)
				}
			}
		}
		spec := mddm.AggSpec{
			ResultDim: "Sum",
			Func:      mddm.MustAggFunc("SUM"),
			ArgDims:   []string{"D001"},
			GroupBy:   map[string]string{"D000": "V"},
		}
		b.Run(fmt.Sprintf("aggregate/dims=%d", nDims), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mddm.Aggregate(m, spec, benchCtx()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- B9: cross tabulation — bitmap intersection vs model-layer scan ----------

func BenchmarkCrossTab(b *testing.B) {
	for _, n := range []int{500, 2000} {
		m := genMO(b, n, true, false)
		e := mddm.NewEngine(m, benchCtx())
		e.CrossCount("Diagnosis", "Diagnosis Group", "Residence", "Region") // warm closures
		b.Run(fmt.Sprintf("bitmap/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.CrossCount("Diagnosis", "Diagnosis Group", "Residence", "Region")
			}
		})
		b.Run(fmt.Sprintf("scan/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.CrossCountScan("Diagnosis", "Diagnosis Group", "Residence", "Region")
			}
		})
	}
}

// --- B10: incremental index maintenance vs full rebuild -----------------------

func BenchmarkIncrementalAppend(b *testing.B) {
	cfg := mddm.DefaultGen()
	cfg.Patients = 10000
	base, err := mddm.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("append-one", func(b *testing.B) {
		m := base.Clone()
		e := mddm.NewEngine(m, benchCtx())
		e.CountDistinctBy("Diagnosis", "Diagnosis Group") // warm
		for i := 0; i < b.N; i++ {
			id := fmt.Sprintf("bench%d", i)
			if err := m.Relate("Diagnosis", id, "L0"); err != nil {
				b.Fatal(err)
			}
			if err := m.Relate("Residence", id, "A0"); err != nil {
				b.Fatal(err)
			}
			m.Relation("Age").Add(id, "⊤")
			if err := e.AppendFact(id); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mddm.NewEngine(base, benchCtx())
		}
	})
}

// --- B13 companions: bitmap iteration and column-kernel allocation profiles ---

func BenchmarkIterate(b *testing.B) {
	m := genMO(b, 8000, true, false)
	e := mddm.NewEngine(m, benchCtx())
	bm := e.Characterizing("Diagnosis", "⊤")
	if bm.IsEmpty() {
		b.Fatal("empty universe bitmap")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := 0
		bm.Iterate(func(j int) bool { s += j; return true })
		if s == 0 {
			b.Fatal("no bits visited")
		}
	}
}

func BenchmarkColumnKernels(b *testing.B) {
	for _, n := range []int{2000, 8000} {
		m := genMO(b, n, true, false)
		bitmapEng := mddm.NewEngine(m, benchCtx())
		bitmapEng.CountDistinctBy("Diagnosis", "Low-level Diagnosis") // warm closures
		colEng := mddm.NewEngine(m, benchCtx())
		if err := colEng.WarmColumns(context.Background(), 1); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("count-bitmap/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bitmapEng.CountDistinctBy("Diagnosis", "Low-level Diagnosis")
			}
		})
		b.Run(fmt.Sprintf("count-column/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := colEng.CountByColumn(context.Background(), "Diagnosis", "Low-level Diagnosis"); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("sum-bitmap/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bitmapEng.SumBy("Diagnosis", "Low-level Diagnosis", "Age")
			}
		})
		b.Run(fmt.Sprintf("sum-column/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := colEng.SumByColumn(context.Background(), "Diagnosis", "Low-level Diagnosis", "Age"); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("cross-bitmap/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bitmapEng.CrossCount("Diagnosis", "Diagnosis Family", "Residence", "Area")
			}
		})
		b.Run(fmt.Sprintf("cross-column/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := colEng.CrossCountByColumn(context.Background(), "Diagnosis", "Diagnosis Family", "Residence", "Area"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
