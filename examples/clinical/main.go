// Clinical: the paper's case study end to end — does some diagnosis group
// occur more often in some areas than in others? Reproduces Examples 8–12
// on the Table 1 data and runs the area/diagnosis analysis the case study
// §2.1 motivates.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"mddm"
)

func main() {
	ref := mddm.MustDate("01/01/1999")
	ctx := mddm.CurrentContext(ref)
	mo := mddm.MustPatientMO()

	fmt.Println("The paper's Patient MO (Example 8):")
	fmt.Print(mo.Render())
	fmt.Println()

	// Example 12 / Figure 3: number of patients per diagnosis group,
	// counts bucketed into "0-1" and ">1".
	res, err := mddm.Aggregate(mo, mddm.AggSpec{
		ResultDim: "Count",
		Func:      mddm.MustAggFunc("SETCOUNT"),
		GroupBy:   map[string]string{"Diagnosis": "Diagnosis Group"},
		Ranges: []mddm.Range{
			{Label: "0-1", Lo: 0, Hi: 1},
			{Label: ">1", Lo: 2, Hi: math.Inf(1)},
		},
	}, ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Patients per diagnosis group (Example 12, Figure 3):")
	fmt.Print(res.MO.Render())
	fmt.Printf("result aggregation type: %v — the diagnosis hierarchy is non-strict,\n", res.ResultAggType)
	fmt.Println("so these counts must not be added together (the model blocks it).")
	fmt.Println()

	// The case study's question: do diagnoses cluster by area? Cross
	// tabulate diagnosis groups with regions through the query language.
	cat := mddm.QueryCatalog{"patients": mo}
	q := `SELECT SETCOUNT(*) AS Patients FROM patients GROUP BY Diagnosis."Diagnosis Group", Residence."Area"`
	qr, err := mddm.ExecQuery(q, cat, ref)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Diagnosis group × area (the environmental-factor analysis):")
	fmt.Print(mddm.RenderQueryResult(qr))
	fmt.Println()

	// Mixed granularity at work (Example 7 / requirement 9): patient 1 is
	// diagnosed directly at family level (value 9, code E10).
	qr2, err := mddm.ExecQuery(`SELECT FACTS FROM patients WHERE Diagnosis = 'E10'`, cat, ref)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Patients with insulin-dependent diabetes (code E10), any granularity:")
	fmt.Print(mddm.RenderQueryResult(qr2))
	fmt.Println()

	// Example 10: analysis across the 1980 reclassification. The old
	// "Diabetes" family (8, code D1) is linked into the new group (11,
	// code E1), so counting patients under E1 includes pre-1980 cases.
	el, _ := mo.CharacterizationTime("Diagnosis", "2", "11", ctx)
	fmt.Printf("Patient 2 counts under the new Diabetes group during %v\n", el)
	fmt.Println("(her 1970s diagnosis participates through the change link 8 ⊑ 11).")
	fmt.Println()

	// The trend across the change: diabetes-group patients per year.
	pts, err := mddm.YearlyCounts(mo, "Diagnosis", "11", 1978, 1992, ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Patients under the Diabetes group per year (across the 1980 change):")
	for _, p := range pts {
		y, _, _, _ := p.At.Date()
		fmt.Printf("  %d %s\n", y, strings.Repeat("█", p.Count))
	}
	fmt.Println()

	// Drill-across: a second MO (admissions) shares the residence
	// dimension; align patients and admissions per region.
	adm := mddm.NewMO(mddm.MustSchema("Admission",
		mo.Schema().DimensionType("Residence").Clone("Residence")))
	if err := adm.SetDimension("Residence", mo.Dimension("Residence")); err != nil {
		log.Fatal(err)
	}
	for i, area := range []string{"A1", "A1", "A2", "A2", "A2"} {
		if err := adm.Relate("Residence", fmt.Sprintf("adm%d", i), area); err != nil {
			log.Fatal(err)
		}
	}
	rows, err := mddm.DrillAcross(mo, adm, "Residence", "Residence", "County",
		mddm.AggSpec{ResultDim: "Patients", Func: mddm.MustAggFunc("SETCOUNT")},
		mddm.AggSpec{ResultDim: "Admissions", Func: mddm.MustAggFunc("SETCOUNT")},
		ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Drill-across patients/admissions per county (shared dimension):")
	fmt.Printf("  %-8s %-10s %-10s\n", "County", "Patients", "Admissions")
	for _, r := range rows {
		fmt.Printf("  %-8s %-10s %-10s\n", r.Value, r.Left, r.Right)
	}
}
