// Temporal: valid time, transaction time, timeslices, and analysis across
// change — the 1980 diagnosis reclassification of the case study.
package main

import (
	"fmt"
	"log"

	"mddm"
)

func main() {
	ref := mddm.MustDate("01/01/1999")
	mo := mddm.MustPatientMO()
	cat := mddm.QueryCatalog{"patients": mo}

	// The world as of 1975: only the old classification exists; patient 1
	// has no diagnosis yet.
	fmt.Println("Patients per diagnosis family, as the world was on 15/06/1975:")
	q75 := `SELECT SETCOUNT(*) AS N FROM patients GROUP BY Diagnosis."Diagnosis Family" ASOF VALID '15/06/1975'`
	r75, err := mddm.ExecQuery(q75, cat, ref)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(mddm.RenderQueryResult(r75))
	fmt.Println()

	// The world as of 1999: the new classification, both patients.
	fmt.Println("Patients per diagnosis group, as the world was on 01/01/1995:")
	r95, err := mddm.ExecQuery(
		`SELECT SETCOUNT(*) AS N FROM patients GROUP BY Diagnosis."Diagnosis Group" ASOF VALID '01/01/1995'`, cat, ref)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(mddm.RenderQueryResult(r95))
	fmt.Println()

	// Timeslice as an algebra operator: the temporal type changes
	// valid-time → snapshot.
	slice, err := mddm.ValidTimeslice(mo, mddm.MustDate("15/06/1975"), ref)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ValidTimeslice(patients, 1975): kind %v, diagnosis values %v\n",
		slice.Kind(), slice.Dimension("Diagnosis").Values())
	fmt.Println()

	// Bitemporal data: record *when the database knew* a diagnosis. The
	// diagnosis is valid from 1982 but was only entered in 1990.
	bi := mo.Clone()
	bi.SetKind(mddm.Bitemporal)
	annot := mddm.Annot{
		Time: mddm.BitemporalElement{
			Valid: mddm.Span("01/01/1982", "NOW"),
			Trans: mddm.Span("01/01/1990", "NOW"),
		},
		Prob: 1,
	}
	if err := bi.RelateAnnot("Diagnosis", "1", "10", annot); err != nil {
		log.Fatal(err)
	}
	for _, at := range []string{"01/01/1985", "01/01/1995"} {
		tt, err := mddm.TransactionTimeslice(bi, mddm.MustDate(at), ref)
		if err != nil {
			log.Fatal(err)
		}
		known := tt.Relation("Diagnosis").Has("1", "10")
		fmt.Printf("Did the database know about patient 1's second diagnosis on %s?  %v\n", at, known)
	}
	fmt.Println()

	// Coalescing: the model never stores value-equivalent data — adjacent
	// periods merge into one maximal chronon set.
	e := mddm.Span("01/01/1980", "31/12/1984").Union(mddm.Span("01/01/1985", "NOW"))
	fmt.Printf("Span(80-84) ∪ Span(85-NOW) coalesces to %v (%d interval)\n", e, e.NumIntervals())
}
