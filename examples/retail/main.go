// Retail: the scenario the paper's introduction motivates — products sold
// to customers at certain times in certain amounts at certain prices —
// showing MO families with shared subdimensions, drill-down/roll-up, and
// the summarizability-guarded pre-aggregation engine at scale.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mddm"
)

func main() {
	ref := mddm.MustDate("01/01/1999")
	ctx := mddm.CurrentContext(ref)

	// Schema: purchases characterized by product, store, and amount.
	product := mddm.MustDimensionType("Product", mddm.Constant, mddm.KindString,
		"SKU", "Brand", "Category")
	store := mddm.MustDimensionType("Store", mddm.Constant, mddm.KindString,
		"Store", "City", "Country")
	amount := mddm.MustDimensionType("Amount", mddm.Sum, mddm.KindInt, "Units")
	purchases := mddm.NewMO(mddm.MustSchema("Purchase", product, store, amount))

	// Populate the dimensions.
	p := purchases.Dimension("Product")
	cats := []string{"Beverages", "Snacks"}
	for _, c := range cats {
		must(p.AddValue("Category", c))
	}
	brands := []string{"AcmeCola", "SpringWater", "CrispyChips", "NuttyMix"}
	for i, b := range brands {
		must(p.AddValue("Brand", b))
		must(p.AddEdge(b, cats[i/2]))
	}
	nSKU := 40
	for i := 0; i < nSKU; i++ {
		sku := fmt.Sprintf("sku-%02d", i)
		must(p.AddValue("SKU", sku))
		must(p.AddEdge(sku, brands[i%len(brands)]))
	}

	s := purchases.Dimension("Store")
	must(s.AddValue("Country", "Denmark"))
	for _, city := range []string{"Aalborg", "Århus", "Copenhagen"} {
		must(s.AddValue("City", city))
		must(s.AddEdge(city, "Denmark"))
	}
	for i := 0; i < 9; i++ {
		id := fmt.Sprintf("store-%d", i)
		must(s.AddValue("Store", id))
		must(s.AddEdge(id, []string{"Aalborg", "Århus", "Copenhagen"}[i%3]))
	}

	units := purchases.Dimension("Amount")
	for u := 1; u <= 10; u++ {
		must(units.AddValue("Units", fmt.Sprintf("%d", u)))
	}

	// Synthetic purchases.
	r := rand.New(rand.NewSource(7))
	for t := 0; t < 5000; t++ {
		id := fmt.Sprintf("t%d", t)
		must(purchases.Relate("Product", id, fmt.Sprintf("sku-%02d", r.Intn(nSKU))))
		must(purchases.Relate("Store", id, fmt.Sprintf("store-%d", r.Intn(9))))
		must(purchases.Relate("Amount", id, fmt.Sprintf("%d", 1+r.Intn(10))))
	}
	must(purchases.Validate())

	// Units sold per category × city via the algebra.
	rows, res, err := mddm.SQLAggregate(purchases, mddm.AggSpec{
		ResultDim: "Units",
		Func:      mddm.MustAggFunc("SUM"),
		ArgDims:   []string{"Amount"},
		GroupBy:   map[string]string{"Product": "Category", "Store": "City"},
	}, ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Units sold per category × city (summarizable:", res.Report.Summarizable, "):")
	for _, row := range rows {
		fmt.Printf("  %-10s %-12s %s\n", row.Group[0], row.Group[1], row.Value)
	}
	fmt.Println()

	// Drill down: the same aggregation one level finer on the store
	// hierarchy.
	spec := mddm.AggSpec{
		ResultDim: "Units",
		Func:      mddm.MustAggFunc("SUM"),
		ArgDims:   []string{"Amount"},
		GroupBy:   map[string]string{"Store": "Country"},
	}
	down, err := mddm.DrillDown(purchases, spec, "Store", "City", ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Drill-down country → city, units per city:")
	for _, pr := range down.MO.Relation("Units").Pairs() {
		city := down.MO.Relation("Store").ValuesOf(pr.FactID)
		fmt.Printf("  %-12v %s\n", city, pr.ValueID)
	}
	fmt.Println()

	// The pre-aggregation engine: store-level sums combine into city- and
	// country-level sums because the store hierarchy is strict and
	// covering.
	engine := mddm.NewEngine(purchases, ctx)
	cache := mddm.NewPreAggCache(engine)
	if _, err := cache.Materialize("Store", "Store", mddm.PreAggSum, "Amount"); err != nil {
		log.Fatal(err)
	}
	byCity, err := cache.RollupFrom("Store", "Store", "City", mddm.PreAggSum, "Amount")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pre-aggregated store sums reused for city totals (cache hits=%d misses=%d):\n",
		cache.Hits, cache.Misses)
	for _, city := range []string{"Aalborg", "Copenhagen", "Århus"} {
		fmt.Printf("  %-12s %.0f\n", city, byCity[city])
	}

	// An MO family sharing the product dimension with a returns MO: a
	// change to the shared dimension is visible to both.
	family := mddm.NewFamily()
	must(family.Add("purchases", purchases))
	returns := mddm.NewMO(mddm.MustSchema("Return", product.Clone("Product")))
	must(family.Add("returns", returns))
	must(family.Share("product", purchases.Dimension("Product"), map[string]string{
		"purchases": "Product",
		"returns":   "Product",
	}))
	must(returns.Relate("Product", "r1", "sku-00"))
	fmt.Printf("\nMO family: returns MO shares the product dimension (%d values).\n",
		returns.Dimension("Product").NumValues())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
