// Quickstart: build a tiny multidimensional object from scratch with the
// public mddm API, aggregate it, and print the result.
package main

import (
	"fmt"
	"log"
	"math"

	"mddm"
)

func main() {
	ref := mddm.MustDate("01/01/1999")
	ctx := mddm.CurrentContext(ref)

	// A product dimension with an explicit hierarchy and a price
	// "measure" dimension — the model treats both symmetrically.
	product := mddm.MustDimensionType("Product", mddm.Constant, mddm.KindString,
		"SKU", "Brand", "Category")
	price := mddm.MustDimensionType("Price", mddm.Sum, mddm.KindFloat, "Amount")
	schema := mddm.MustSchema("Purchase", product, price)
	mo := mddm.NewMO(schema)

	p := mo.Dimension("Product")
	for _, v := range []struct{ cat, id string }{
		{"Category", "Beverages"},
		{"Brand", "AcmeCola"}, {"Brand", "SpringWater"},
		{"SKU", "cola-330"}, {"SKU", "cola-1000"}, {"SKU", "water-500"},
	} {
		must(p.AddValue(v.cat, v.id))
	}
	must(p.AddEdge("AcmeCola", "Beverages"))
	must(p.AddEdge("SpringWater", "Beverages"))
	must(p.AddEdge("cola-330", "AcmeCola"))
	must(p.AddEdge("cola-1000", "AcmeCola"))
	must(p.AddEdge("water-500", "SpringWater"))

	amounts := mo.Dimension("Price")
	for _, purchase := range []struct {
		id, sku string
		price   string
	}{
		{"t1", "cola-330", "1.5"}, {"t2", "cola-1000", "3"},
		{"t3", "water-500", "1"}, {"t4", "cola-330", "1.5"},
	} {
		if !amounts.Has(purchase.price) {
			must(amounts.AddValue("Amount", purchase.price))
		}
		must(mo.Relate("Product", purchase.id, purchase.sku))
		must(mo.Relate("Price", purchase.id, purchase.price))
	}
	must(mo.Validate())

	// Revenue per brand: SUM over the Price dimension grouped at Brand.
	rows, res, err := mddm.SQLAggregate(mo, mddm.AggSpec{
		ResultDim: "Revenue",
		Func:      mddm.MustAggFunc("SUM"),
		ArgDims:   []string{"Price"},
		GroupBy:   map[string]string{"Product": "Brand"},
	}, ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Revenue per brand:")
	for _, r := range rows {
		fmt.Printf("  %-12s %s\n", r.Group[0], r.Value)
	}
	fmt.Printf("summarizable: %v (counts may be pre-aggregated and reused)\n\n", res.Report.Summarizable)

	// Count purchases per category, bucketed like the paper's Figure 3.
	cnt, err := mddm.Aggregate(mo, mddm.AggSpec{
		ResultDim: "Count",
		Func:      mddm.MustAggFunc("SETCOUNT"),
		GroupBy:   map[string]string{"Product": "Category"},
		Ranges: []mddm.Range{
			{Label: "0-1", Lo: 0, Hi: 1},
			{Label: ">1", Lo: 2, Hi: math.Inf(1)},
		},
	}, ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Result MO (purchases per category):")
	fmt.Print(cnt.MO.Render())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
