// Uncertainty: probabilities on diagnoses (§3.3) — a physician 90%
// certain, probability thresholds, and probabilistic containment in the
// dimension hierarchy.
package main

import (
	"fmt"
	"log"

	"mddm"
)

func main() {
	ref := mddm.MustDate("01/01/1999")
	ctx := mddm.CurrentContext(ref)
	mo := mddm.MustPatientMO()

	// The physician is only 90% certain that patient 1 has non-insulin-
	// dependent diabetes (10), and 40% that it is gestational (5).
	must(mo.RelateAnnot("Diagnosis", "1", "10", mddm.Always().WithProb(0.9)))
	must(mo.RelateAnnot("Diagnosis", "1", "5", mddm.Always().WithProb(0.4)))

	for _, minProb := range []float64{0, 0.5, 0.95} {
		n := 0
		for _, f := range mo.Facts().IDs() {
			if ok, _ := mo.CharacterizedBy("Diagnosis", f, "10", ctx.WithMinProb(minProb)); ok {
				n++
			}
		}
		fmt.Printf("patients with diagnosis 10 at probability ≥ %.2f: %d\n", minProb, n)
	}
	fmt.Println()

	// Probabilities propagate along the dimension hierarchy: the pair
	// probability multiplies with the order probabilities along the best
	// path.
	ok, p := mo.CharacterizedBy("Diagnosis", "1", "11", ctx)
	fmt.Printf("patient 1 ⤳ Diabetes group (11): %v with probability %.2f (certain via 9 ⊑ 11)\n", ok, p)
	ok4, p4 := mo.CharacterizedBy("Diagnosis", "1", "4", ctx)
	fmt.Printf("patient 1 ⤳ pregnancy-diabetes family (4): %v with probability %.2f (only via the 40%% diagnosis)\n", ok4, p4)
	fmt.Println()

	// ProbThreshold is the algebra-level filter: drop uncertain pairs,
	// keeping the MO well formed.
	sure, err := mddm.ProbThreshold(mo, 0.8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after ProbThreshold(0.8): patient 1's diagnoses = %v\n",
		sure.Relation("Diagnosis").ValuesOf("1"))

	// The query language exposes the same filter.
	cat := mddm.QueryCatalog{"patients": mo}
	res, err := mddm.ExecQuery(`SELECT FACTS FROM patients WHERE Diagnosis = '5' WITH PROB >= 0.5`, cat, ref)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("patients with diagnosis 5 at ≥ 0.5: %d row(s)\n", len(res.Rows))
	fmt.Println()

	// Probabilistic aggregation: expected, minimum, and maximum patient
	// counts per diagnosis group under uncertainty.
	for _, fn := range []string{"EXPECTED", "MINCOUNT", "MAXCOUNT"} {
		q := fmt.Sprintf(`SELECT %s(*) AS N FROM patients GROUP BY Diagnosis."Diagnosis Group"`, fn)
		r, err := mddm.ExecQuery(q, cat, ref)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s per diagnosis group:\n%s", fn, mddm.RenderQueryResult(r))
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
