package main

import "testing"

// TestExampleRuns executes the example end to end: examples are part of
// the published API surface, so they must keep building AND running.
func TestExampleRuns(t *testing.T) {
	main()
}
