// Engine: the storage layer at scale — bitmap characterization indexes,
// the summarizability-guarded pre-aggregate cache, cube materialization
// plans, cross tabulation, and JSON persistence of the MO.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"mddm"
)

func main() {
	ref := mddm.MustDate("01/01/2026")
	ctx := mddm.CurrentContext(ref)

	cfg := mddm.DefaultGen()
	cfg.Patients = 20000
	cfg.LowLevel = 700
	mo := mddm.MustGenerate(cfg)
	fmt.Printf("synthetic clinical MO: %d patients, %d diagnosis values, non-strict hierarchy\n",
		mo.Facts().Len(), mo.Dimension("Diagnosis").NumValues())

	start := time.Now()
	engine := mddm.NewEngine(mo, ctx)
	fmt.Printf("engine (bitmap indexes) built in %v\n\n", time.Since(start))

	// Distinct patients per diagnosis group — microseconds via the closure
	// bitmaps, regardless of how many diagnoses each patient carries.
	start = time.Now()
	counts := engine.CountDistinctBy("Diagnosis", "Diagnosis Group")
	first := time.Since(start)
	start = time.Now()
	engine.CountDistinctBy("Diagnosis", "Diagnosis Group")
	warm := time.Since(start)
	fmt.Printf("patients per diagnosis group: %d groups (first %v, warm %v)\n", len(counts), first, warm)

	// Cross tabulation: diagnosis group × region by bitmap intersection.
	cells := engine.CrossCount("Diagnosis", "Diagnosis Group", "Residence", "Region")
	fmt.Printf("diagnosis group × region: %d non-empty cells\n\n", len(cells))

	// The pre-aggregation cache with its summarizability guard.
	cache := mddm.NewPreAggCache(engine)
	plan, err := cache.PlanCube("Residence", mddm.PreAggCount, "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan)
	planD, err := cache.PlanCube("Diagnosis", mddm.PreAggCount, "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(planD)
	fmt.Println()

	// Persist the MO and load it back — the JSON round trip is exact.
	path := filepath.Join(os.TempDir(), "mddm-engine-example.json")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := mddm.EncodeMO(f, mo); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	g, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	back, err := mddm.DecodeMO(g)
	g.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("persisted %d facts to %s (%d KiB) and reloaded: equal=%v\n",
		back.Facts().Len(), path, info.Size()/1024, mo.Equal(back))
	os.Remove(path)
}
