package mddm_test

import (
	"math"
	"strings"
	"testing"

	"mddm"
)

// TestPublicAPIQuickstart exercises the facade end to end the way the
// package documentation advertises.
func TestPublicAPIQuickstart(t *testing.T) {
	ref := mddm.MustDate("01/01/1999")
	ctx := mddm.CurrentContext(ref)

	diag := mddm.MustDimensionType("Diagnosis", mddm.Constant, mddm.KindString,
		"Low-level", "Family", "Group")
	age := mddm.MustDimensionType("Age", mddm.Sum, mddm.KindInt, "Age")
	schema := mddm.MustSchema("Patient", diag, age)
	mo := mddm.NewMO(schema)

	d := mo.Dimension("Diagnosis")
	for _, v := range []struct{ cat, id string }{
		{"Group", "E1"}, {"Family", "E10"}, {"Low-level", "E10.1"},
	} {
		if err := d.AddValue(v.cat, v.id); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.AddEdge("E10", "E1"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge("E10.1", "E10"); err != nil {
		t.Fatal(err)
	}
	if err := mo.Dimension("Age").AddValue("Age", "42"); err != nil {
		t.Fatal(err)
	}
	if err := mo.Relate("Diagnosis", "p1", "E10.1"); err != nil {
		t.Fatal(err)
	}
	if err := mo.Relate("Age", "p1", "42"); err != nil {
		t.Fatal(err)
	}
	mo.EnsureTotal()
	if err := mo.Validate(); err != nil {
		t.Fatal(err)
	}

	res, err := mddm.Aggregate(mo, mddm.AggSpec{
		ResultDim: "Count",
		Func:      mddm.MustAggFunc("SETCOUNT"),
		GroupBy:   map[string]string{"Diagnosis": "Group"},
		Ranges:    []mddm.Range{{Label: "any", Lo: 0, Hi: math.Inf(1)}},
	}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !res.MO.Relation("Count").Has("{p1}", "1") {
		t.Errorf("count result missing: %v", res.MO.Relation("Count").Pairs())
	}
}

func TestPublicAPICaseStudyAndQuery(t *testing.T) {
	ref := mddm.MustDate("01/01/1999")
	mo := mddm.MustPatientMO()
	cat := mddm.QueryCatalog{"patients": mo}
	res, err := mddm.ExecQuery(
		`SELECT SETCOUNT(*) AS Count FROM patients GROUP BY Diagnosis."Diagnosis Group"`, cat, ref)
	if err != nil {
		t.Fatal(err)
	}
	out := mddm.RenderQueryResult(res)
	if !strings.Contains(out, "11") || !strings.Contains(out, "2") {
		t.Errorf("query render:\n%s", out)
	}

	// Storage engine path agrees.
	eng := mddm.NewEngine(mo, mddm.CurrentContext(ref))
	counts := eng.CountDistinctBy("Diagnosis", "Diagnosis Group")
	if counts["11"] != 2 || counts["12"] != 1 {
		t.Errorf("engine counts = %v", counts)
	}

	// Timeslice through the facade.
	s, err := mddm.ValidTimeslice(mo, mddm.MustDate("15/06/75"), ref)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind() != mddm.Snapshot {
		t.Errorf("kind = %v", s.Kind())
	}

	// Table 1 and Figure 1 renders are reachable.
	if !strings.Contains(mddm.RenderTable1(), "Patient Table") {
		t.Error("Table 1 render missing")
	}
	if !strings.Contains(mddm.RenderFigure1(), "Entities") {
		t.Error("Figure 1 render missing")
	}
}

func TestPublicAPIGenerator(t *testing.T) {
	cfg := mddm.DefaultGen()
	cfg.Patients = 20
	mo := mddm.MustGenerate(cfg)
	if mo.Facts().Len() != 20 {
		t.Errorf("facts = %d", mo.Facts().Len())
	}
	cache := mddm.NewPreAggCache(mddm.NewEngine(mo, mddm.CurrentContext(mddm.MustDate("01/01/2026"))))
	if _, err := cache.Materialize("Residence", "County", mddm.PreAggCount, ""); err != nil {
		t.Fatal(err)
	}
}
