module mddm

go 1.22
