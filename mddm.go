// Package mddm is an implementation of the extended multidimensional data
// model and algebra of Pedersen & Jensen, "Multidimensional Data Modeling
// for Complex Data" (ICDE 1999).
//
// The model supports the paper's nine requirements for complex OLAP data:
// explicit, multiple and non-strict hierarchies in dimensions; symmetric
// treatment of dimensions and measures; correct aggregation guarded by
// summarizability; many-to-many fact–dimension relationships; built-in
// valid and transaction time; probabilities on data; and mixed
// granularities. The algebra is closed and at least as powerful as
// relational algebra with aggregation.
//
// # Quick start
//
//	diag := mddm.MustDimensionType("Diagnosis", mddm.Constant, mddm.KindString,
//	    "Low-level", "Family", "Group")
//	schema := mddm.MustSchema("Patient", diag)
//	mo := mddm.NewMO(schema)
//	_ = mo.Dimension("Diagnosis").AddValue("Group", "E1")
//	_ = mo.Relate("Diagnosis", "patient-1", "E1")
//
//	res, _ := mddm.Aggregate(mo, mddm.AggSpec{
//	    ResultDim: "Count",
//	    Func:      mddm.MustAggFunc("SETCOUNT"),
//	    GroupBy:   map[string]string{"Diagnosis": "Group"},
//	}, mddm.CurrentContext(mddm.MustDate("01/01/1999")))
//
// The sub-packages are re-exported here so downstream users need only this
// import; examples/ and cmd/ show larger end-to-end uses, and the paper's
// clinical case study ships in ready-to-run form (PatientMO, Generate).
package mddm

import (
	"mddm/internal/agg"
	"mddm/internal/algebra"
	"mddm/internal/casestudy"
	"mddm/internal/core"
	"mddm/internal/dimension"
	"mddm/internal/lint"
	"mddm/internal/load"
	"mddm/internal/query"
	"mddm/internal/serialize"
	"mddm/internal/serve"
	"mddm/internal/storage"
	"mddm/internal/temporal"
)

// --- Time (package temporal) ----------------------------------------------

// Chronon is a day-granule time value; NOW is the growing current time.
type Chronon = temporal.Chronon

// Interval is a closed interval of chronons.
type Interval = temporal.Interval

// Element is a coalesced temporal element (set of chronons).
type Element = temporal.Element

// BitemporalElement pairs valid time with transaction time.
type BitemporalElement = temporal.Bitemporal

// Now is the special continuously growing chronon.
const Now = temporal.Now

// Time construction helpers.
var (
	ParseDate     = temporal.ParseDate
	MustDate      = temporal.MustDate
	MustInterval  = temporal.MustInterval
	MustElement   = temporal.MustElement
	Span          = temporal.Span
	NewElement    = temporal.NewElement
	NewInterval   = temporal.NewInterval
	AlwaysElement = temporal.AlwaysElement
	FromDate      = temporal.FromDate
)

// --- Dimensions (package dimension) ----------------------------------------

// AggType classifies what aggregate functions data admits (c ⊑ φ ⊑ Σ).
type AggType = dimension.AggType

// Aggregation types.
const (
	Constant = dimension.Constant
	Average  = dimension.Average
	Sum      = dimension.Sum
)

// ValueKind is the numeric interpretation of a category's values.
type ValueKind = dimension.ValueKind

// Value kinds.
const (
	KindString = dimension.KindString
	KindInt    = dimension.KindInt
	KindFloat  = dimension.KindFloat
	KindDate   = dimension.KindDate
)

// DimensionType is a lattice of category types with ⊤ and ⊥.
type DimensionType = dimension.DimensionType

// Dimension is a dimension instance: categories of values under an
// annotated partial order, with representations.
type Dimension = dimension.Dimension

// Representation is a bijective, temporally varying alternate key for a
// category's values.
type Representation = dimension.Representation

// Annot carries the bitemporal element and probability of a statement.
type Annot = dimension.Annot

// Context parameterizes temporal and probabilistic evaluation.
type Context = dimension.Context

// TopName and TopValue are the reserved ⊤ category and value.
const (
	TopName  = dimension.TopName
	TopValue = dimension.TopValue
)

// Dimension construction helpers.
var (
	NewDimensionType  = dimension.NewDimensionType
	MustDimensionType = dimension.MustDimensionType
	NewDimension      = dimension.New
	Always            = dimension.Always
	ValidDuring       = dimension.ValidDuring
	CurrentContext    = dimension.CurrentContext
)

// --- The model (package core) ----------------------------------------------

// Schema is an n-dimensional fact schema.
type Schema = core.Schema

// MO is a multidimensional object (S, F, D, R).
type MO = core.MO

// Family is an MO family with shared subdimensions.
type Family = core.Family

// TemporalKind classifies an MO as snapshot, valid-time, transaction-time,
// or bitemporal.
type TemporalKind = core.TemporalKind

// Temporal kinds.
const (
	Snapshot        = core.Snapshot
	ValidTime       = core.ValidTime
	TransactionTime = core.TransactionTime
	Bitemporal      = core.Bitemporal
)

// Model construction helpers.
var (
	NewSchema  = core.NewSchema
	MustSchema = core.MustSchema
	NewMO      = core.NewMO
	NewFamily  = core.NewFamily
)

// --- Aggregation (package agg) ----------------------------------------------

// AggFunc is an aggregate function of the paper's function family.
type AggFunc = agg.Func

// SummarizabilityReport explains whether an aggregation is summarizable.
type SummarizabilityReport = agg.Report

// Aggregate-function helpers.
var (
	AggLookup         = agg.Lookup
	MustAggFunc       = agg.MustLookup
	RegisterAggFunc   = agg.Register
	CheckSummarizable = agg.CheckSummarizable
)

// --- The algebra (package algebra) -------------------------------------------

// Predicate selects facts.
type Predicate = algebra.Predicate

// CmpOp is a comparison operator for numeric predicates.
type CmpOp = algebra.CmpOp

// Comparison operators.
const (
	EQ = algebra.EQ
	NE = algebra.NE
	LT = algebra.LT
	LE = algebra.LE
	GT = algebra.GT
	GE = algebra.GE
)

// JoinPred decides whether two facts join.
type JoinPred = algebra.JoinPred

// AggSpec parameterizes aggregate formation.
type AggSpec = algebra.AggSpec

// AggResult is an aggregate formation outcome.
type AggResult = algebra.AggResult

// Range buckets result values (Figure 3's "0-1" and ">1").
type Range = algebra.Range

// Row is one SQL-style aggregation row.
type Row = algebra.Row

// StarJoinFilter is one leg of a star-join.
type StarJoinFilter = algebra.StarJoinFilter

// The fundamental and derived operators of §4.
var (
	Select               = algebra.Select
	Project              = algebra.Project
	Rename               = algebra.Rename
	Union                = algebra.Union
	Difference           = algebra.Difference
	Join                 = algebra.Join
	Aggregate            = algebra.Aggregate
	RollUp               = algebra.RollUp
	DrillDown            = algebra.DrillDown
	SQLAggregate         = algebra.SQLAggregate
	ValueJoin            = algebra.ValueJoin
	DuplicateRemoval     = algebra.DuplicateRemoval
	StarJoin             = algebra.StarJoin
	ValidTimeslice       = algebra.ValidTimeslice
	TransactionTimeslice = algebra.TransactionTimeslice
	ProbThreshold        = algebra.ProbThreshold

	// Predicate combinators.
	TruePred         = algebra.Predicate(algebra.TruePred)
	Characterized    = algebra.Characterized
	CharacterizedRep = algebra.CharacterizedRep
	NumericCmp       = algebra.NumericCmp
	PredAnd          = algebra.And
	PredOr           = algebra.Or
	PredNot          = algebra.Not

	// Join predicates.
	EqJoin    = algebra.EqJoin
	NeqJoin   = algebra.NeqJoin
	CrossJoin = algebra.CrossJoin
)

// --- Storage engine (package storage) ----------------------------------------

// Engine is a bitmap-indexed read snapshot of an MO.
type Engine = storage.Engine

// PreAggCache is a summarizability-guarded pre-aggregate cache.
type PreAggCache = storage.Cache

// Bitmap is an uncompressed fact bitmap.
type Bitmap = storage.Bitmap

// Storage helpers.
var (
	NewEngine      = storage.NewEngine
	NewPreAggCache = storage.NewCache
)

// Pre-aggregate kinds.
const (
	PreAggCount = storage.KindCount
	PreAggSum   = storage.KindSum
)

// --- Query language (package query) -------------------------------------------

// QueryCatalog names the MOs a query may address.
type QueryCatalog = query.Catalog

// QueryResult is a query outcome.
type QueryResult = query.Result

// Query helpers.
var (
	ExecQuery         = query.Exec
	ExecQueryContext  = query.ExecContext
	ParseQuery        = query.Parse
	RenderQueryResult = query.RenderResult
)

// --- Serving (package serve) ---------------------------------------------------

// ServeCatalog is a concurrency-safe copy-on-write MO registry.
type ServeCatalog = serve.Catalog

// ServeServer executes queries and pre-aggregate requests under resource
// limits with panic isolation and stale-while-revalidate engine caching.
type ServeServer = serve.Server

// ServeLimits bounds a query's deadline, result size, and fact scans.
type ServeLimits = serve.Limits

// Serving helpers and typed error sentinels.
var (
	NewServeCatalog      = serve.NewCatalog
	NewServeServer       = serve.NewServer
	ErrQueryCanceled     = serve.ErrCanceled
	ErrResourceExhausted = serve.ErrResourceExhausted
	ErrServeInternal     = serve.ErrInternal
)

// --- The paper's case study (package casestudy) ---------------------------------

// CaseStudyOptions controls the case-study builders.
type CaseStudyOptions = casestudy.Options

// GenConfig parameterizes the synthetic clinical data generator.
type GenConfig = casestudy.GenConfig

// Case-study helpers: Table 1 data, the Example 8 "Patient" MO, and the
// scalable synthetic generator.
var (
	PatientMO         = casestudy.BuildPatientMO
	MustPatientMO     = casestudy.MustPatientMO
	PatientSchema     = casestudy.PatientSchema
	CaseStudyDefaults = casestudy.DefaultOptions
	Generate          = casestudy.Generate
	MustGenerate      = casestudy.MustGenerate
	DefaultGen        = casestudy.DefaultGen
	RenderTable1      = casestudy.RenderTable1
	RenderFigure1     = casestudy.RenderFigure1
)

// --- Persistence (package serialize) ------------------------------------------

// MO persistence and result export.
var (
	EncodeMO       = serialize.Encode
	DecodeMO       = serialize.Decode
	WriteResultCSV = serialize.WriteResultCSV
	ReadRowsCSV    = serialize.ReadRowsCSV
)

// CubePlan is a per-dimension materialization plan: which categories are
// safely derivable from lower materializations and which must be computed
// from base data.
type CubePlan = storage.CubePlan

// CrossCell is one cell of a two-dimensional cross tabulation computed by
// the engine's bitmap indexes.
type CrossCell = storage.CrossCell

// DrillAcrossRow is one aligned row of a drill-across over a shared
// dimension.
type DrillAcrossRow = algebra.DrillAcrossRow

// DrillAcross combines two MOs of a family through a shared dimension.
var DrillAcross = algebra.DrillAcross

// TimePoint is one instant of a temporal series.
type TimePoint = algebra.TimePoint

// Temporal series helpers.
var (
	CountOverTime = algebra.CountOverTime
	YearlyCounts  = algebra.YearlyCounts
)

// --- CSV loading (package load) -------------------------------------------------

// LoadDimensionSpec describes one dimension hierarchy CSV to load.
type LoadDimensionSpec = load.DimensionSpec

// LoadFactSpec describes a fact-table CSV to load.
type LoadFactSpec = load.FactSpec

// CSV star-schema loaders.
var (
	LoadDimension = load.Dimension
	LoadFacts     = load.Facts
)

// Interval-scoped characterization predicates.
var (
	CharacterizedDuring     = algebra.CharacterizedDuring
	CharacterizedThroughout = algebra.CharacterizedThroughout
)

// --- Linter (package lint) --------------------------------------------------------

// LintFinding is one modeling-smell finding.
type LintFinding = lint.Finding

// Lint severities.
const (
	LintInfo = lint.Info
	LintWarn = lint.Warn
)

// Lint inspects an MO for modeling smells (non-covering rollups, empty
// categories, unreachable values) and pre-aggregation blockers (non-strict
// mappings).
var Lint = lint.Check
