// Package compare reproduces Table 2 of Pedersen & Jensen (ICDE 1999): the
// evaluation of eight previously proposed multidimensional data models
// against the paper's nine requirements, extended with a row for this
// implementation whose support levels are established by *executable
// probes* — each requirement is demonstrated by running the model code
// rather than by assertion.
package compare

import (
	"fmt"
	"strings"
)

// Support is a cell of Table 2.
type Support int

const (
	// None is "-": no support.
	None Support = iota
	// Partial is "p": partial support.
	Partial
	// Full is "√": full support.
	Full
)

// String renders the paper's symbols.
func (s Support) String() string {
	switch s {
	case Full:
		return "√"
	case Partial:
		return "p"
	default:
		return "-"
	}
}

// NumRequirements is the number of requirements in §2.2.
const NumRequirements = 9

// Requirements lists the paper's nine requirements, 1-indexed by position.
var Requirements = [NumRequirements]string{
	"explicit hierarchies in dimensions",
	"symmetric treatment of dimensions and measures",
	"multiple hierarchies in a dimension",
	"correct aggregation of data (summarizability)",
	"non-strict hierarchies",
	"many-to-many relationships between facts and dimensions",
	"handling change and time",
	"handling uncertainty",
	"different levels of granularity",
}

// Model is one surveyed data model with its support row.
type Model struct {
	Name string
	Ref  string
	Row  [NumRequirements]Support
}

// Surveyed is the eight-model matrix exactly as printed in Table 2.
var Surveyed = []Model{
	{"Rafanelli", "[6]", [NumRequirements]Support{Full, None, None, Full, Partial, None, None, None, None}},
	{"Agrawal", "[5]", [NumRequirements]Support{Partial, Full, Partial, None, Partial, None, None, None, None}},
	{"Gray", "[2]", [NumRequirements]Support{None, Full, Partial, Partial, None, None, None, None, None}},
	{"Kimball", "[3]", [NumRequirements]Support{None, None, Full, Partial, None, None, Partial, None, None}},
	{"Li", "[10]", [NumRequirements]Support{Partial, None, Full, Partial, None, None, None, None, None}},
	{"Gyssens", "[9]", [NumRequirements]Support{None, Full, Partial, Partial, None, None, None, None, None}},
	{"Datta", "[13]", [NumRequirements]Support{None, Full, Partial, None, Partial, None, None, None, None}},
	{"Lehner", "[11]", [NumRequirements]Support{Full, None, None, Full, None, None, None, None, None}},
}

// ProbeResult is the outcome of probing one requirement against this
// implementation.
type ProbeResult struct {
	Requirement int // 1-based
	Support     Support
	Evidence    string
	Err         error
}

// RenderTable2 prints the matrix (surveyed models plus, when probes are
// supplied, the "This model" row).
func RenderTable2(probes []ProbeResult) string {
	var b strings.Builder
	b.WriteString("Table 2. Evaluation of the Data Models\n")
	fmt.Fprintf(&b, "%-14s", "")
	for i := 1; i <= NumRequirements; i++ {
		fmt.Fprintf(&b, "%3d", i)
	}
	b.WriteString("\n")
	for _, m := range Surveyed {
		fmt.Fprintf(&b, "%-14s", m.Name+" "+m.Ref)
		for _, s := range m.Row {
			fmt.Fprintf(&b, "%3s", s)
		}
		b.WriteString("\n")
	}
	if len(probes) == NumRequirements {
		fmt.Fprintf(&b, "%-14s", "This model")
		for _, p := range probes {
			fmt.Fprintf(&b, "%3s", p.Support)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// SummaryClaims checks the paper's prose claims about Table 2 against the
// matrix (used by the tests that pin the matrix to the paper).
func SummaryClaims() error {
	// "Requirement 5 … partially supported by three of the models."
	n5 := 0
	for _, m := range Surveyed {
		if m.Row[4] == Partial {
			n5++
		}
	}
	if n5 != 3 {
		return fmt.Errorf("compare: requirement 5 partial count = %d, want 3", n5)
	}
	// "Requirement 7 … only partially supported by Kimball."
	for _, m := range Surveyed {
		want := None
		if m.Name == "Kimball" {
			want = Partial
		}
		if m.Row[6] != want {
			return fmt.Errorf("compare: requirement 7 for %s = %v", m.Name, m.Row[6])
		}
	}
	// "Requirements 6, 8, and 9 are not supported by any of the models."
	for _, m := range Surveyed {
		for _, i := range []int{5, 7, 8} {
			if m.Row[i] != None {
				return fmt.Errorf("compare: requirement %d for %s = %v, want -", i+1, m.Name, m.Row[i])
			}
		}
	}
	return nil
}
