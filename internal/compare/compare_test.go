package compare

import (
	"strings"
	"testing"
)

func TestTable2Matrix(t *testing.T) {
	// The matrix must match the paper's Table 2 cell for cell.
	want := map[string]string{
		"Rafanelli": "√--√p----",
		"Agrawal":   "p√p-p----",
		"Gray":      "-√pp-----",
		"Kimball":   "--√p--p--",
		"Li":        "p-√p-----",
		"Gyssens":   "-√pp-----",
		"Datta":     "-√p-p----",
		"Lehner":    "√--√-----",
	}
	if len(Surveyed) != 8 {
		t.Fatalf("models = %d", len(Surveyed))
	}
	for _, m := range Surveyed {
		var row strings.Builder
		for _, s := range m.Row {
			row.WriteString(s.String())
		}
		if row.String() != want[m.Name] {
			t.Errorf("%s: %s, want %s", m.Name, row.String(), want[m.Name])
		}
	}
	if err := SummaryClaims(); err != nil {
		t.Errorf("paper prose claims violated: %v", err)
	}
}

func TestProbesAllFull(t *testing.T) {
	// The paper's model — this implementation — supports all nine
	// requirements; each probe demonstrates one by running the code.
	probes := ProbeAll()
	if len(probes) != NumRequirements {
		t.Fatalf("probes = %d", len(probes))
	}
	for _, p := range probes {
		if p.Err != nil {
			t.Errorf("requirement %d (%s): %v", p.Requirement, Requirements[p.Requirement-1], p.Err)
			continue
		}
		if p.Support != Full {
			t.Errorf("requirement %d: support %v", p.Requirement, p.Support)
		}
		if p.Evidence == "" {
			t.Errorf("requirement %d: no evidence", p.Requirement)
		}
	}
}

func TestRenderTable2(t *testing.T) {
	out := RenderTable2(ProbeAll())
	for _, want := range []string{"Table 2", "Rafanelli [6]", "Lehner [11]", "This model"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Our row is all √.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	if strings.Count(last, "√") != NumRequirements {
		t.Errorf("our row must be nine √: %q", last)
	}
	// Without probes, no "This model" row.
	if strings.Contains(RenderTable2(nil), "This model") {
		t.Error("row must require probes")
	}
}

func TestSupportString(t *testing.T) {
	if Full.String() != "√" || Partial.String() != "p" || None.String() != "-" {
		t.Error("symbols wrong")
	}
}
