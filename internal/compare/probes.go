package compare

import (
	"fmt"
	"math"

	"mddm/internal/agg"
	"mddm/internal/algebra"
	"mddm/internal/casestudy"
	"mddm/internal/dimension"
	"mddm/internal/temporal"
)

// ProbeAll runs the nine requirement probes against this implementation on
// the case-study data and returns one result per requirement, in order. A
// probe only reports Full when the demonstrating code actually ran and
// produced the expected observable behaviour.
func ProbeAll() []ProbeResult {
	ref := temporal.MustDate("01/01/1999")
	ctx := dimension.CurrentContext(ref)
	probes := []func() (string, error){
		// R1: explicit hierarchies in dimensions.
		func() (string, error) {
			m := casestudy.MustPatientMO()
			d := m.Dimension(casestudy.DimResidence)
			anc := d.AncestorsIn(casestudy.CatRegion, "A1", ctx)
			if len(anc) != 1 || anc[0] != "R1" {
				return "", fmt.Errorf("area A1 does not roll up to region R1: %v", anc)
			}
			return "area < county < region captured; A1 rolls up to R1 by navigation", nil
		},
		// R2: symmetric treatment of dimensions and measures.
		func() (string, error) {
			m := casestudy.MustPatientMO()
			// Age used as a measure (AVG)…
			res, err := algebra.Aggregate(m, algebra.AggSpec{
				ResultDim: "AvgAge", Func: agg.MustLookup("AVG"), ArgDims: []string{casestudy.DimAge},
			}, ctx)
			if err != nil {
				return "", err
			}
			if v := res.MO.Relation("AvgAge").ValuesOf("{1,2}"); len(v) != 1 {
				return "", fmt.Errorf("no average age")
			}
			// …and as a grouping dimension.
			res2, err := algebra.Aggregate(m, algebra.AggSpec{
				ResultDim: "N", Func: agg.MustLookup("SETCOUNT"),
				GroupBy: map[string]string{casestudy.DimAge: casestudy.CatTenYear},
			}, ctx)
			if err != nil {
				return "", err
			}
			if res2.MO.Facts().Len() != 2 {
				return "", fmt.Errorf("age grouping failed")
			}
			return "Age used both for AVG computation and for defining age groups", nil
		},
		// R3: multiple hierarchies in a dimension.
		func() (string, error) {
			dt := casestudy.DOBType()
			preds := dt.Pred(casestudy.CatDay)
			if len(preds) != 2 {
				return "", fmt.Errorf("Day has %d immediate containments, want 2", len(preds))
			}
			return "days roll up into weeks or months (two aggregation paths in DOB)", nil
		},
		// R4: correct aggregation / summarizability.
		func() (string, error) {
			m := casestudy.MustPatientMO()
			res, err := algebra.Aggregate(m, algebra.AggSpec{
				ResultDim: "Count", Func: agg.MustLookup("SETCOUNT"),
				GroupBy: map[string]string{casestudy.DimDiagnosis: casestudy.CatGroup},
			}, ctx)
			if err != nil {
				return "", err
			}
			// Patient 2 has several diagnoses in group 11 but is counted
			// once.
			if v := res.MO.Relation("Count").ValuesOf("{1,2}"); len(v) != 1 || v[0] != "2" {
				return "", fmt.Errorf("double counting: %v", v)
			}
			// The unsafe result is typed c, and re-aggregation is blocked.
			if res.ResultAggType != dimension.Constant {
				return "", fmt.Errorf("unsafe result not flagged")
			}
			if _, err := algebra.Aggregate(res.MO, algebra.AggSpec{
				ResultDim: "Total", Func: agg.MustLookup("SUM"), ArgDims: []string{"Count"},
			}, ctx); err == nil {
				return "", fmt.Errorf("re-aggregation of unsafe data not blocked")
			}
			return "patients counted once per group; unsafe results typed c and blocked from SUM", nil
		},
		// R5: non-strict hierarchies.
		func() (string, error) {
			d, err := casestudy.BuildDiagnosisDimension(casestudy.DefaultOptions())
			if err != nil {
				return "", err
			}
			fams := d.AncestorsIn(casestudy.CatFamily, "5", ctx)
			if len(fams) != 2 {
				return "", fmt.Errorf("diagnosis 5 in %d families, want 2", len(fams))
			}
			if d.IsStrict() {
				return "", fmt.Errorf("hierarchy reported strict")
			}
			return "low-level diagnosis 5 belongs to families 4 and 9 (user-defined hierarchy)", nil
		},
		// R6: many-to-many fact–dimension relationships.
		func() (string, error) {
			m := casestudy.MustPatientMO()
			vals := m.Relation(casestudy.DimDiagnosis).ValuesOf("2")
			if len(vals) != 4 {
				return "", fmt.Errorf("patient 2 has %d diagnoses, want 4", len(vals))
			}
			return "patient 2 carries four diagnoses in one fact–dimension relation", nil
		},
		// R7: handling change and time.
		func() (string, error) {
			m := casestudy.MustPatientMO()
			// Timeslice to 1975: the old classification only.
			s, err := algebra.ValidTimeslice(m, temporal.MustDate("15/06/75"), ref)
			if err != nil {
				return "", err
			}
			if s.Dimension(casestudy.DimDiagnosis).Has("11") {
				return "", fmt.Errorf("1975 slice contains 1980 classification")
			}
			// Example 10: counting across the 1980 change finds both
			// patients under the new Diabetes group.
			el, _ := m.CharacterizationTime(casestudy.DimDiagnosis, "2", "11", ctx)
			if want := "[01/01/1980 - NOW]"; el.String() != want {
				return "", fmt.Errorf("analysis across change: %v", el)
			}
			return "timeslices view data as of any instant; Example 10's link counts old Diabetes with new", nil
		},
		// R8: handling uncertainty.
		func() (string, error) {
			m := casestudy.MustPatientMO()
			// A physician 90% certain of a diagnosis.
			if err := m.RelateAnnot(casestudy.DimDiagnosis, "1", "10", dimension.Always().WithProb(0.9)); err != nil {
				return "", err
			}
			ok9, p := m.CharacterizedBy(casestudy.DimDiagnosis, "1", "10", ctx)
			if !ok9 || p != 0.9 {
				return "", fmt.Errorf("probability not carried: %v %v", ok9, p)
			}
			if ok, _ := m.CharacterizedBy(casestudy.DimDiagnosis, "1", "10", ctx.WithMinProb(0.95)); ok {
				return "", fmt.Errorf("threshold not applied")
			}
			return "90%-certain diagnosis carried through f ⤳ e and filtered by probability thresholds", nil
		},
		// R9: different levels of granularity.
		func() (string, error) {
			m := casestudy.MustPatientMO()
			d := m.Dimension(casestudy.DimDiagnosis)
			cat, _ := d.CategoryOf("9")
			if cat != casestudy.CatFamily {
				return "", fmt.Errorf("diagnosis 9 in %q", cat)
			}
			if !m.Relation(casestudy.DimDiagnosis).Has("1", "9") {
				return "", fmt.Errorf("fact 1 not related at family granularity")
			}
			res, err := algebra.Aggregate(m, algebra.AggSpec{
				ResultDim: "Count", Func: agg.MustLookup("SETCOUNT"),
				GroupBy: map[string]string{casestudy.DimDiagnosis: casestudy.CatGroup},
				Ranges:  []algebra.Range{{Label: "any", Lo: 0, Hi: math.Inf(1)}},
			}, ctx)
			if err != nil {
				return "", err
			}
			if !res.MO.Relation(casestudy.DimDiagnosis).Has("{1,2}", "11") {
				return "", fmt.Errorf("mixed-granularity fact lost in aggregation")
			}
			return "patient 1 diagnosed at family granularity (value 9) and still aggregates into groups", nil
		},
	}

	out := make([]ProbeResult, NumRequirements)
	for i, probe := range probes {
		evidence, err := probe()
		r := ProbeResult{Requirement: i + 1, Evidence: evidence, Err: err}
		if err == nil {
			r.Support = Full
		}
		out[i] = r
	}
	return out
}
