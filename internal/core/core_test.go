package core_test

import (
	"strings"
	"testing"

	"mddm/internal/casestudy"
	"mddm/internal/core"
	"mddm/internal/dimension"
	"mddm/internal/fact"
	"mddm/internal/temporal"
)

func factOf(id string) fact.Fact { return fact.NewFact(id) }

var ref = temporal.MustDate("01/01/1999")

func ctx() dimension.Context { return dimension.CurrentContext(ref) }

func patientMO(t *testing.T) *core.MO {
	t.Helper()
	m, err := casestudy.BuildPatientMO(casestudy.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestExample8PatientMO(t *testing.T) {
	m := patientMO(t)
	if got := m.Schema().FactType(); got != "Patient" {
		t.Errorf("fact type = %q", got)
	}
	if n := m.Schema().NumDimensions(); n != 6 {
		t.Errorf("dimensions = %d, want 6", n)
	}
	if got := m.Facts().IDs(); strings.Join(got, ",") != "1,2" {
		t.Errorf("F = %v, want {1,2}", got)
	}
	if m.Kind() != core.ValidTime {
		t.Errorf("kind = %v", m.Kind())
	}
	if err := m.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestExample7FactDimensionRelation(t *testing.T) {
	m := patientMO(t)
	r := m.Relation(casestudy.DimDiagnosis)
	// R = {(1,9), (2,3), (2,5), (2,8), (2,9)} — note fact 1 is related to
	// value 9 in the Diagnosis Family category (mixed granularity).
	wantPairs := [][2]string{{"1", "9"}, {"2", "3"}, {"2", "5"}, {"2", "8"}, {"2", "9"}}
	ps := r.Pairs()
	if len(ps) != len(wantPairs) {
		t.Fatalf("pairs = %v", ps)
	}
	for i, w := range wantPairs {
		if ps[i].FactID != w[0] || ps[i].ValueID != w[1] {
			t.Errorf("pair %d = (%s,%s), want (%s,%s)", i, ps[i].FactID, ps[i].ValueID, w[0], w[1])
		}
	}
	d := m.Dimension(casestudy.DimDiagnosis)
	if cat, _ := d.CategoryOf("9"); cat != casestudy.CatFamily {
		t.Errorf("9 is in %q, want Diagnosis Family", cat)
	}
}

func TestCharacterizedBy(t *testing.T) {
	m := patientMO(t)
	c := ctx()
	// Patient 1 has diagnosis 9 (family), so 1 ⤳ 11 (group) via 9 ⊑ 11.
	if ok, _ := m.CharacterizedBy(casestudy.DimDiagnosis, "1", "11", c); !ok {
		t.Error("1 ⤳ 11 must hold")
	}
	// Patient 1 is not characterized by group 12.
	if ok, _ := m.CharacterizedBy(casestudy.DimDiagnosis, "1", "12", c); ok {
		t.Error("1 ⤳ 12 must not hold")
	}
	// Patient 2 had old low-level 3 ⊑ 7 ⊑ … — 2 ⤳ 7 via 3.
	if ok, _ := m.CharacterizedBy(casestudy.DimDiagnosis, "2", "7", c); !ok {
		t.Error("2 ⤳ 7 must hold")
	}
	// Everything is characterized by ⊤.
	if ok, _ := m.CharacterizedBy(casestudy.DimDiagnosis, "1", dimension.TopValue, c); !ok {
		t.Error("1 ⤳ ⊤ must hold")
	}
	// Unknown dimension.
	if ok, _ := m.CharacterizedBy("Nope", "1", "11", c); ok {
		t.Error("unknown dimension must not characterize")
	}
}

func TestCharacterizationTime(t *testing.T) {
	m := patientMO(t)
	// Patient 2 ⤳ 11 (new Diabetes group): via (2,8) ∈[01/01/70-31/12/81]
	// and 8 ⊑[80-NOW] 11 → [80-81]; via (2,5) ∈[01/01/82-30/09/82] and
	// 5 ⊑ 9 ⊑ 11 → [01/01/82-30/09/82]; via (2,9) ∈[82-NOW] and 9 ⊑ 11 →
	// [82-NOW]. Union: [01/01/80 - NOW].
	el, _ := m.CharacterizationTime(casestudy.DimDiagnosis, "2", "11", ctx())
	if want := "[01/01/1980 - NOW]"; el.String() != want {
		t.Errorf("2 ⤳ 11 during %v, want %v", el, want)
	}
	// Patient 1 ⤳ 11 only from 1989 (diagnosis made then).
	el1, _ := m.CharacterizationTime(casestudy.DimDiagnosis, "1", "11", ctx())
	if want := "[01/01/1989 - NOW]"; el1.String() != want {
		t.Errorf("1 ⤳ 11 during %v, want %v", el1, want)
	}
}

func TestEnsureTotalAndValidate(t *testing.T) {
	s := core.MustSchema("F", dimension.MustDimensionType("D", dimension.Constant, dimension.KindString, "Bottom"))
	m := core.NewMO(s)
	m.AddFact(factOf("f1"))
	if err := m.Validate(); err == nil {
		t.Error("missing characterization must fail validation")
	}
	m.EnsureTotal()
	if err := m.Validate(); err != nil {
		t.Errorf("after EnsureTotal: %v", err)
	}
	// f1 is characterized by ⊤ now.
	if ok, _ := m.CharacterizedBy("D", "f1", dimension.TopValue, ctx()); !ok {
		t.Error("f1 ⤳ ⊤ must hold after EnsureTotal")
	}
}

func TestRelateValidation(t *testing.T) {
	s := core.MustSchema("F", dimension.MustDimensionType("D", dimension.Constant, dimension.KindString, "Bottom"))
	m := core.NewMO(s)
	if err := m.Relate("Nope", "f", "v"); err == nil {
		t.Error("unknown dimension must be rejected")
	}
	if err := m.Relate("D", "f", "missing"); err == nil {
		t.Error("unknown value must be rejected")
	}
	if err := m.Dimension("D").AddValue("Bottom", "v"); err != nil {
		t.Fatal(err)
	}
	if err := m.Relate("D", "f", "v"); err != nil {
		t.Fatal(err)
	}
	if !m.Facts().Has("f") {
		t.Error("Relate must add new facts")
	}
}

func TestMOCloneEqual(t *testing.T) {
	m := patientMO(t)
	c := m.Clone()
	if !m.Equal(c) {
		t.Error("clone must equal original")
	}
	c.AddFact(factOf("3"))
	if m.Equal(c) {
		t.Error("mutated clone must differ")
	}
	sh := m.ShallowCloneSharing()
	if !m.Equal(sh) {
		t.Error("sharing clone must equal original")
	}
	if sh.Dimension(casestudy.DimDiagnosis) != m.Dimension(casestudy.DimDiagnosis) {
		t.Error("sharing clone must share dimension pointers")
	}
}

func TestSchemaOps(t *testing.T) {
	s := casestudy.PatientSchema()
	names := s.DimensionNames()
	if strings.Join(names, ",") != "Diagnosis,DOB,Residence,Name,SSN,Age" {
		t.Errorf("names = %v", names)
	}
	p, err := s.Project("Diagnosis", "Age")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumDimensions() != 2 || p.FactType() != "Patient" {
		t.Error("projection wrong")
	}
	if _, err := s.Project("Nope"); err == nil {
		t.Error("unknown dimension must be rejected")
	}
	if !s.Equal(casestudy.PatientSchema()) {
		t.Error("identically built schemas must be equal")
	}
	if s.Equal(p) {
		t.Error("projected schema must differ")
	}
	if !s.Isomorphic(casestudy.PatientSchema()) {
		t.Error("isomorphism must hold")
	}
	if s.DimensionType("Age") == nil {
		t.Error("DimensionType lookup failed")
	}
	sorted := s.SortedDimensionNames()
	if sorted[0] != "Age" {
		t.Errorf("sorted = %v", sorted)
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := core.NewSchema(""); err == nil {
		t.Error("empty fact type must be rejected")
	}
	d := dimension.MustDimensionType("D", dimension.Constant, dimension.KindString, "B")
	if _, err := core.NewSchema("F", d, d); err == nil {
		t.Error("duplicate dimension type must be rejected")
	}
	unfinished := dimension.NewDimensionType("U")
	if err := unfinished.AddCategoryType("B", dimension.Constant, dimension.KindString); err != nil {
		t.Fatal(err)
	}
	if _, err := core.NewSchema("F", unfinished); err == nil {
		t.Error("unfinalized dimension type must be rejected")
	}
}

func TestFamilyShared(t *testing.T) {
	fam := core.NewFamily()
	m1 := patientMO(t)
	m2 := core.NewMO(casestudy.PatientSchema())
	if err := fam.Add("patients", m1); err != nil {
		t.Fatal(err)
	}
	if err := fam.Add("admissions", m2); err != nil {
		t.Fatal(err)
	}
	if err := fam.Add("patients", m1); err == nil {
		t.Error("duplicate MO name must be rejected")
	}
	shared := m1.Dimension(casestudy.DimDiagnosis)
	err := fam.Share("diagnosis", shared, map[string]string{
		"patients":   casestudy.DimDiagnosis,
		"admissions": casestudy.DimDiagnosis,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Dimension(casestudy.DimDiagnosis) != shared {
		t.Error("shared dimension must be the same pointer")
	}
	// A change through one MO is visible through the other.
	if err := shared.AddValue(casestudy.CatGroup, "99"); err != nil {
		t.Fatal(err)
	}
	if !m2.Dimension(casestudy.DimDiagnosis).Has("99") {
		t.Error("shared update must be visible")
	}
	if fam.Shared("diagnosis") != shared {
		t.Error("Shared lookup failed")
	}
	if got := fam.Names(); strings.Join(got, ",") != "admissions,patients" {
		t.Errorf("Names = %v", got)
	}
	if got := fam.SharedNames(); strings.Join(got, ",") != "diagnosis" {
		t.Errorf("SharedNames = %v", got)
	}
}

func TestRenderMOAndSchema(t *testing.T) {
	m := patientMO(t)
	out := m.Render()
	for _, want := range []string{"fact type Patient", "F = {1, 2}", "R[Diagnosis]", "(2, 9)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	schema := m.Schema().RenderSchema()
	for _, want := range []string{"Fact type: Patient", "Low-level Diagnosis = ⊥", "Day = ⊥"} {
		if !strings.Contains(schema, want) {
			t.Errorf("schema render missing %q", want)
		}
	}
	dot := m.Schema().DOTSchema()
	if !strings.Contains(dot, "digraph schema") || !strings.Contains(dot, "cluster_") {
		t.Error("DOT schema malformed")
	}
}

func TestTemporalKindString(t *testing.T) {
	kinds := map[core.TemporalKind]string{
		core.Snapshot: "snapshot", core.ValidTime: "valid-time",
		core.TransactionTime: "transaction-time", core.Bitemporal: "bitemporal",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d = %q", k, k.String())
		}
	}
	if !strings.Contains(core.TemporalKind(42).String(), "42") {
		t.Error("unknown kind must render number")
	}
}

func TestFamilyMOAndSetRelation(t *testing.T) {
	fam := core.NewFamily()
	m := patientMO(t)
	if err := fam.Add("p", m); err != nil {
		t.Fatal(err)
	}
	if fam.MO("p") != m || fam.MO("missing") != nil {
		t.Error("MO lookup wrong")
	}
	if err := fam.Add("", m); err == nil {
		t.Error("empty name must be rejected")
	}
	// SetRelation validation.
	r := fact.NewRelation()
	r.Add("1", "9")
	if err := m.SetRelation(casestudy.DimDiagnosis, r); err != nil {
		t.Fatal(err)
	}
	if m.Relation(casestudy.DimDiagnosis).Len() != 1 {
		t.Error("SetRelation must replace")
	}
	if err := m.SetRelation("Nope", r); err == nil {
		t.Error("unknown dimension must be rejected")
	}
	if err := m.SetDimension("Nope", m.Dimension(casestudy.DimAge)); err == nil {
		t.Error("unknown dimension must be rejected in SetDimension")
	}
	if err := m.SetDimension(casestudy.DimAge, m.Dimension(casestudy.DimDiagnosis)); err == nil {
		t.Error("incompatible dimension type must be rejected")
	}
	// Sharing by unknown MO.
	if err := fam.Share("x", m.Dimension(casestudy.DimAge), map[string]string{"ghost": "Age"}); err == nil {
		t.Error("unknown MO in Share must be rejected")
	}
	if err := fam.Share("y", m.Dimension(casestudy.DimAge), map[string]string{"p": casestudy.DimAge}); err != nil {
		t.Fatal(err)
	}
	if err := fam.Share("y", m.Dimension(casestudy.DimAge), nil); err == nil {
		t.Error("duplicate shared name must be rejected")
	}
}
