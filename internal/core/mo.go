package core

import (
	"fmt"

	"mddm/internal/dimension"
	"mddm/internal/fact"
	"mddm/internal/temporal"
)

// TemporalKind classifies an MO by the time attached to it (§3.2): a
// snapshot MO has no time, a valid-time MO records when statements hold in
// reality, a transaction-time MO records when they are current in the
// database, and a bitemporal MO records both.
type TemporalKind int

const (
	// Snapshot MOs carry no time.
	Snapshot TemporalKind = iota
	// ValidTime MOs carry valid time.
	ValidTime
	// TransactionTime MOs carry transaction time.
	TransactionTime
	// Bitemporal MOs carry both valid and transaction time.
	Bitemporal
)

// String names the temporal kind.
func (k TemporalKind) String() string {
	switch k {
	case Snapshot:
		return "snapshot"
	case ValidTime:
		return "valid-time"
	case TransactionTime:
		return "transaction-time"
	case Bitemporal:
		return "bitemporal"
	default:
		return fmt.Sprintf("TemporalKind(%d)", int(k))
	}
}

// MO is a multidimensional object: a four-tuple (S, F, D, R) of a fact
// schema, a set of facts, one dimension per dimension type, and one
// fact–dimension relation per dimension. Dimensions may be shared between
// MOs of a family (the *dimension.Dimension values are pointers).
type MO struct {
	schema *Schema
	facts  *fact.Set
	dims   map[string]*dimension.Dimension
	rels   map[string]*fact.Relation
	kind   TemporalKind
}

// NewMO creates an empty MO of the given schema with empty dimensions and
// relations. The temporal kind defaults to Snapshot; builders that attach
// time set it with SetKind.
func NewMO(s *Schema) *MO {
	m := &MO{
		schema: s,
		facts:  fact.NewSet(),
		dims:   map[string]*dimension.Dimension{},
		rels:   map[string]*fact.Relation{},
	}
	for _, name := range s.DimensionNames() {
		m.dims[name] = dimension.New(s.DimensionType(name))
		m.rels[name] = fact.NewRelation()
	}
	return m
}

// Schema returns the MO's fact schema.
func (m *MO) Schema() *Schema { return m.schema }

// Kind returns the MO's temporal kind.
func (m *MO) Kind() TemporalKind { return m.kind }

// SetKind sets the MO's temporal kind.
func (m *MO) SetKind(k TemporalKind) { m.kind = k }

// Facts returns the MO's fact set (live; mutate with care).
func (m *MO) Facts() *fact.Set { return m.facts }

// Dimension returns the named dimension instance, or nil.
func (m *MO) Dimension(name string) *dimension.Dimension { return m.dims[name] }

// SetDimension replaces the named dimension instance; the instance's type
// must be the schema's type for that name (pointer-shared dimensions of an
// MO family are installed this way).
func (m *MO) SetDimension(name string, d *dimension.Dimension) error {
	want := m.schema.DimensionType(name)
	if want == nil {
		return fmt.Errorf("core: unknown dimension %q", name)
	}
	if !want.Isomorphic(d.Type()) {
		return fmt.Errorf("core: dimension %q has incompatible type %q", name, d.Type().Name())
	}
	m.dims[name] = d
	return nil
}

// Relation returns the fact–dimension relation of the named dimension, or
// nil.
func (m *MO) Relation(name string) *fact.Relation { return m.rels[name] }

// SetRelation replaces the named relation.
func (m *MO) SetRelation(name string, r *fact.Relation) error {
	if m.schema.DimensionType(name) == nil {
		return fmt.Errorf("core: unknown dimension %q", name)
	}
	m.rels[name] = r
	return nil
}

// AddFact inserts a fact into F.
func (m *MO) AddFact(f fact.Fact) { m.facts.Add(f) }

// Relate records (f, e) ∈ R_i for the named dimension with an Always
// annotation, adding the fact to F if new.
func (m *MO) Relate(dim, factID, valueID string) error {
	return m.RelateAnnot(dim, factID, valueID, dimension.Always())
}

// RelateAnnot records (f, e) ∈Tv R_i with the given annotation. The value
// must exist in the dimension (at any category — granularities mix freely).
func (m *MO) RelateAnnot(dim, factID, valueID string, a dimension.Annot) error {
	d, ok := m.dims[dim]
	if !ok {
		return fmt.Errorf("core: unknown dimension %q", dim)
	}
	if !d.Has(valueID) {
		return fmt.Errorf("core: dimension %q has no value %q", dim, valueID)
	}
	if !m.facts.Has(factID) {
		m.facts.Add(fact.NewFact(factID))
	}
	m.rels[dim].AddAnnot(factID, valueID, a)
	return nil
}

// EnsureTotal adds the pair (f, ⊤) to every relation in which a fact of F
// does not yet appear — the model disallows missing values; an unknown
// characterization is represented by ⊤ (§3.1).
func (m *MO) EnsureTotal() {
	for _, name := range m.schema.DimensionNames() {
		r := m.rels[name]
		for _, id := range m.facts.IDs() {
			if len(r.ValuesOf(id)) == 0 {
				r.Add(id, dimension.TopValue)
			}
		}
	}
}

// Validate checks the MO's integrity: every relation pair references an
// existing fact and an existing dimension value, and every fact is
// characterized in every dimension (no missing values).
func (m *MO) Validate() error {
	for _, name := range m.schema.DimensionNames() {
		d := m.dims[name]
		r := m.rels[name]
		if d == nil || r == nil {
			return fmt.Errorf("core: dimension %q missing instance or relation", name)
		}
		for _, p := range r.Pairs() {
			if !m.facts.Has(p.FactID) {
				return fmt.Errorf("core: relation %q references unknown fact %q", name, p.FactID)
			}
			if !d.Has(p.ValueID) {
				return fmt.Errorf("core: relation %q references unknown value %q", name, p.ValueID)
			}
		}
		for _, id := range m.facts.IDs() {
			if len(r.ValuesOf(id)) == 0 {
				return fmt.Errorf("core: fact %q has no value in dimension %q (add (f,⊤) for unknown)", id, name)
			}
		}
	}
	return nil
}

// CharacterizedBy reports whether f ⤳ e in the named dimension under the
// context: some pair (f, e1) ∈ R with e1 ⊑ e, both admitted by the context.
// The returned probability is the maximum over witnesses e1 of
// P((f,e1)) · P(e1 ⊑ e).
func (m *MO) CharacterizedBy(dim, factID, valueID string, ctx dimension.Context) (bool, float64) {
	d, ok := m.dims[dim]
	if !ok {
		return false, 0
	}
	r := m.rels[dim]
	best := 0.0
	for _, e1 := range r.ValuesOf(factID) {
		a, _ := r.Annot(factID, e1)
		if !ctx.Admits(a) {
			continue
		}
		ok2, p2 := d.LessEq(e1, valueID, ctx)
		if !ok2 {
			continue
		}
		if p := a.Prob * p2; p > best {
			best = p
		}
	}
	return best >= ctx.MinProb && best > 0, best
}

// CharacterizationTime returns the valid-time element during which f ⤳Tv e
// holds: the union over witnesses e1 of the intersection of the pair's
// chronon set with the order's chronon set (§3.2), with the maximum
// admitted probability.
func (m *MO) CharacterizationTime(dim, factID, valueID string, ctx dimension.Context) (temporal.Element, float64) {
	d, ok := m.dims[dim]
	if !ok {
		return temporal.Empty(), 0
	}
	r := m.rels[dim]
	out := temporal.Empty()
	best := 0.0
	for _, e1 := range r.ValuesOf(factID) {
		a, _ := r.Annot(factID, e1)
		if ctx.Trans != nil && !a.Time.Trans.Contains(*ctx.Trans, ctx.Ref) {
			continue
		}
		ot, op := d.LessEqTime(e1, valueID, ctx)
		p := a.Prob * op
		if p < ctx.MinProb || p <= 0 {
			continue
		}
		t := a.Time.Valid.Intersect(ot)
		if t.IsEmpty() {
			continue
		}
		out = out.Union(t)
		if p > best {
			best = p
		}
	}
	return out, best
}

// Clone returns a deep copy of the MO. Dimensions are cloned too, so the
// copy shares nothing with the original.
func (m *MO) Clone() *MO {
	n := &MO{
		schema: m.schema,
		facts:  m.facts.Clone(),
		dims:   map[string]*dimension.Dimension{},
		rels:   map[string]*fact.Relation{},
		kind:   m.kind,
	}
	for name, d := range m.dims {
		n.dims[name] = d.Clone()
	}
	for name, r := range m.rels {
		n.rels[name] = r.Clone()
	}
	return n
}

// ShallowCloneSharing returns a copy of the MO that shares the dimension
// instances (for operators that do not modify dimensions) but deep-copies
// facts and relations.
func (m *MO) ShallowCloneSharing() *MO {
	n := &MO{
		schema: m.schema,
		facts:  m.facts.Clone(),
		dims:   map[string]*dimension.Dimension{},
		rels:   map[string]*fact.Relation{},
		kind:   m.kind,
	}
	for name, d := range m.dims {
		n.dims[name] = d
	}
	for name, r := range m.rels {
		n.rels[name] = r.Clone()
	}
	return n
}

// Equal reports whether two MOs have equal schemas, facts, dimensions, and
// relations (annotation-exact; used by tests and the algebra's laws).
func (m *MO) Equal(o *MO) bool {
	if !m.schema.Equal(o.schema) || !m.facts.Equal(o.facts) {
		return false
	}
	for _, name := range m.schema.DimensionNames() {
		if !m.dims[name].Equal(o.dims[name]) {
			return false
		}
		if !m.rels[name].Equal(o.rels[name]) {
			return false
		}
	}
	return true
}
