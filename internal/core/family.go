package core

import (
	"fmt"
	"sort"

	"mddm/internal/dimension"
)

// Family is a multidimensional object family: a collection of named MOs,
// possibly with shared subdimensions. Shared dimensions are installed as
// shared *dimension.Dimension pointers, so an update through one MO is seen
// by all — the paper uses shared subdimensions to "join" data from separate
// MOs (drill-across).
type Family struct {
	mos    map[string]*MO
	shared map[string]*dimension.Dimension
}

// NewFamily returns an empty MO family.
func NewFamily() *Family {
	return &Family{mos: map[string]*MO{}, shared: map[string]*dimension.Dimension{}}
}

// Add registers an MO under a name.
func (f *Family) Add(name string, m *MO) error {
	if name == "" {
		return fmt.Errorf("core: empty MO name")
	}
	if _, ok := f.mos[name]; ok {
		return fmt.Errorf("core: duplicate MO %q", name)
	}
	f.mos[name] = m
	return nil
}

// MO returns the named MO, or nil.
func (f *Family) MO(name string) *MO { return f.mos[name] }

// Names returns the sorted MO names.
func (f *Family) Names() []string {
	out := make([]string, 0, len(f.mos))
	for n := range f.mos {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Share registers a dimension instance under a shared name and installs it
// into the given (MO, dimension) slots. All listed MOs afterwards point at
// the same instance.
func (f *Family) Share(sharedName string, d *dimension.Dimension, slots map[string]string) error {
	if _, ok := f.shared[sharedName]; ok {
		return fmt.Errorf("core: duplicate shared dimension %q", sharedName)
	}
	for moName, dimName := range slots {
		m, ok := f.mos[moName]
		if !ok {
			return fmt.Errorf("core: unknown MO %q", moName)
		}
		if err := m.SetDimension(dimName, d); err != nil {
			return err
		}
	}
	f.shared[sharedName] = d
	return nil
}

// Shared returns the shared dimension registered under the given name, or
// nil.
func (f *Family) Shared(name string) *dimension.Dimension { return f.shared[name] }

// SharedNames returns the sorted names of shared dimensions.
func (f *Family) SharedNames() []string {
	out := make([]string, 0, len(f.shared))
	for n := range f.shared {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
