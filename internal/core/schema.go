// Package core implements the central objects of the extended
// multidimensional data model of Pedersen & Jensen (ICDE 1999): fact
// schemas, multidimensional objects (MOs), and MO families with shared
// subdimensions. Everything that characterizes the fact type is dimensional
// — including attributes other models treat as measures — and facts are
// linked to dimension values of any granularity through many-to-many
// fact–dimension relations.
package core

import (
	"fmt"
	"sort"

	"mddm/internal/dimension"
)

// Schema is an n-dimensional fact schema S = (F, D): a fact type and its
// corresponding dimension types, addressable by name.
type Schema struct {
	factType string
	dimTypes map[string]*dimension.DimensionType
	order    []string // insertion order of dimension type names
}

// NewSchema creates a fact schema for the given fact type.
func NewSchema(factType string, dims ...*dimension.DimensionType) (*Schema, error) {
	if factType == "" {
		return nil, fmt.Errorf("core: empty fact type name")
	}
	s := &Schema{factType: factType, dimTypes: map[string]*dimension.DimensionType{}}
	for _, d := range dims {
		if err := s.AddDimensionType(d); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error.
func MustSchema(factType string, dims ...*dimension.DimensionType) *Schema {
	s, err := NewSchema(factType, dims...)
	if err != nil {
		panic(err)
	}
	return s
}

// AddDimensionType appends a finalized dimension type to the schema.
func (s *Schema) AddDimensionType(d *dimension.DimensionType) error {
	if !d.Finalized() {
		return fmt.Errorf("core: dimension type %q is not finalized", d.Name())
	}
	if _, ok := s.dimTypes[d.Name()]; ok {
		return fmt.Errorf("core: duplicate dimension type %q", d.Name())
	}
	s.dimTypes[d.Name()] = d
	s.order = append(s.order, d.Name())
	return nil
}

// FactType returns the name of the fact type.
func (s *Schema) FactType() string { return s.factType }

// DimensionNames returns the dimension type names in declaration order.
func (s *Schema) DimensionNames() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// DimensionType returns the named dimension type, or nil.
func (s *Schema) DimensionType(name string) *dimension.DimensionType { return s.dimTypes[name] }

// NumDimensions returns n, the dimensionality of the schema.
func (s *Schema) NumDimensions() int { return len(s.order) }

// Equal reports whether two schemas have the same fact type and identical
// dimension types under the same names (the S1 = S2 precondition of the
// union and difference operators).
func (s *Schema) Equal(o *Schema) bool {
	if s.factType != o.factType || len(s.order) != len(o.order) {
		return false
	}
	for _, name := range s.order {
		od, ok := o.dimTypes[name]
		if !ok || !s.dimTypes[name].Isomorphic(od) {
			return false
		}
	}
	return true
}

// Isomorphic reports whether two schemas have the same structure up to
// renaming of the fact type and dimension types: equal dimension counts and
// pairwise isomorphic dimension types in declaration order. This is the
// precondition of the rename operator.
func (s *Schema) Isomorphic(o *Schema) bool {
	if len(s.order) != len(o.order) {
		return false
	}
	for i, name := range s.order {
		// DimensionType.Isomorphic compares category structure only, so it
		// is already insensitive to the dimension type's own name.
		if !s.dimTypes[name].Isomorphic(o.dimTypes[o.order[i]]) {
			return false
		}
	}
	return true
}

// Project returns a new schema retaining only the named dimension types, in
// the given order (the schema part of the projection operator).
func (s *Schema) Project(names ...string) (*Schema, error) {
	n := &Schema{factType: s.factType, dimTypes: map[string]*dimension.DimensionType{}}
	for _, name := range names {
		d, ok := s.dimTypes[name]
		if !ok {
			return nil, fmt.Errorf("core: projection over unknown dimension %q", name)
		}
		if err := n.AddDimensionType(d); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// SortedDimensionNames returns the dimension names sorted alphabetically
// (used by renderers that want a stable, order-independent layout).
func (s *Schema) SortedDimensionNames() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	sort.Strings(out)
	return out
}
