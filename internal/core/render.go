package core

import (
	"fmt"
	"strings"

	"mddm/internal/temporal"
)

// RenderSchema renders the fact schema in the style of the paper's
// Figure 2: the fact type in the center and every dimension type's category
// lattice, bottom-up.
func (s *Schema) RenderSchema() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fact type: %s\n", s.factType)
	for _, name := range s.DimensionNames() {
		b.WriteString(s.dimTypes[name].RenderType())
	}
	return b.String()
}

// DOTSchema renders the schema as a Graphviz digraph: one cluster per
// dimension type, the fact type connected to each bottom category.
func (s *Schema) DOTSchema() string {
	var b strings.Builder
	b.WriteString("digraph schema {\n  rankdir=BT;\n  node [shape=box];\n")
	fmt.Fprintf(&b, "  %q [shape=ellipse, style=bold];\n", s.factType)
	for _, name := range s.DimensionNames() {
		t := s.dimTypes[name]
		b.WriteString(indent(t.DOTType(true)))
		fmt.Fprintf(&b, "  %q -> %q;\n", s.factType, name+"/"+t.Bottom())
	}
	b.WriteString("}\n")
	return b.String()
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "  " + l
	}
	return strings.Join(lines, "\n") + "\n"
}

// Render renders the MO: schema header, facts, and per-dimension relation
// pairs with annotations — the textual form of the paper's instance
// figures (e.g. Figure 3).
func (m *MO) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "MO (%s): fact type %s, %d facts, %d dimensions\n",
		m.kind, m.schema.FactType(), m.facts.Len(), m.schema.NumDimensions())
	fmt.Fprintf(&b, "F = %s\n", m.facts)
	for _, name := range m.schema.DimensionNames() {
		r := m.rels[name]
		fmt.Fprintf(&b, "R[%s] = {", name)
		parts := make([]string, 0, r.Len())
		for _, p := range r.Pairs() {
			ann := ""
			if !p.Annot.Time.Valid.Equal(alwaysValid) {
				ann = " @" + p.Annot.Time.Valid.String()
			}
			if p.Annot.Prob != 1 {
				ann += fmt.Sprintf(" p=%.2f", p.Annot.Prob)
			}
			parts = append(parts, fmt.Sprintf("(%s, %s)%s", p.FactID, p.ValueID, ann))
		}
		b.WriteString(strings.Join(parts, ", "))
		b.WriteString("}\n")
	}
	return b.String()
}

var alwaysValid = temporal.AlwaysElement()
