// Package qos carries per-query quality-of-service state through the
// query path: cooperative cancellation and resource budgets. It is a leaf
// package so that the hot loops in algebra and storage can consult it
// without import cycles; the serving layer (internal/serve) installs the
// budgets and maps the typed errors to responses.
//
// The design keeps the per-iteration cost near zero: a Guard is created
// once per operation (one context.Value lookup, one Done() call) and its
// Check method polls the context only every checkEvery iterations.
package qos

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"mddm/internal/obs"
)

// Budget-level metrics: exhaustions are counted here at the moment the
// limit trips (a cold path); the cumulative facts spent per query are
// recorded by the serving layer when the query finishes, so the hot
// Facts loop carries no extra atomics.
var mBudgetExhausted = obs.NewCounter("mddm_qos_budget_exhausted_total",
	"Queries stopped because their fact-scan budget ran out.")

// ErrCanceled reports that a query was abandoned before completing —
// because its context was canceled or its deadline expired. It wraps the
// underlying context error, so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) also hold.
var ErrCanceled = errors.New("query canceled")

// ErrResourceExhausted reports that a query exceeded one of its resource
// limits (facts scanned, result rows, …) and was stopped.
var ErrResourceExhausted = errors.New("resource limit exhausted")

// Canceled wraps the context's error as an ErrCanceled.
func Canceled(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrCanceled, context.Cause(ctx))
}

// Budget is a shared, concurrency-safe countdown of facts a query may
// scan. A nil *Budget is unlimited.
type Budget struct {
	remaining atomic.Int64
	spent     atomic.Int64
}

// NewBudget creates a budget of n facts; n <= 0 means unlimited (nil).
func NewBudget(n int64) *Budget {
	if n <= 0 {
		return nil
	}
	b := &Budget{}
	b.remaining.Store(n)
	return b
}

// Spend consumes n units and reports whether the budget still holds.
func (b *Budget) Spend(n int64) bool {
	if b == nil {
		return true
	}
	b.spent.Add(n)
	return b.remaining.Add(-n) >= 0
}

// Spent returns the units consumed so far (0 for a nil budget).
func (b *Budget) Spent() int64 {
	if b == nil {
		return 0
	}
	return b.spent.Load()
}

type budgetKey struct{}

// WithFactBudget installs a scan budget of n facts into the context;
// n <= 0 installs no budget.
func WithFactBudget(ctx context.Context, n int64) context.Context {
	b := NewBudget(n)
	if b == nil {
		return ctx
	}
	return context.WithValue(ctx, budgetKey{}, b)
}

// BudgetFrom returns the context's fact budget, or nil (unlimited).
func BudgetFrom(ctx context.Context) *Budget {
	b, _ := ctx.Value(budgetKey{}).(*Budget)
	return b
}

// checkEvery is how many Check/Facts calls pass between context polls.
// With day-scale work per iteration (bitmap ops, map lookups), 64
// iterations keep cancellation latency far below a millisecond.
const checkEvery = 64

// Guard is the per-operation handle the hot loops use. The zero value and
// the nil pointer are valid and never stop anything, so deep helpers can
// take a *Guard without nil checks at every call site.
type Guard struct {
	ctx    context.Context
	done   <-chan struct{}
	budget *Budget
	calls  uint32
}

// NewGuard captures the context's cancellation channel and fact budget.
func NewGuard(ctx context.Context) *Guard {
	return &Guard{ctx: ctx, done: ctx.Done(), budget: BudgetFrom(ctx)}
}

// Check polls for cancellation (every checkEvery-th call does the real
// poll). It returns an ErrCanceled-wrapped error once the context is done.
func (g *Guard) Check() error {
	if g == nil || g.done == nil {
		return nil
	}
	g.calls++
	if g.calls%checkEvery != 0 {
		return nil
	}
	return g.checkNow()
}

// CheckNow polls for cancellation immediately, bypassing the sampling.
func (g *Guard) CheckNow() error {
	if g == nil || g.done == nil {
		return nil
	}
	return g.checkNow()
}

func (g *Guard) checkNow() error {
	select {
	case <-g.done:
		return Canceled(g.ctx)
	default:
		return nil
	}
}

// Facts accounts for n scanned facts against the budget and piggybacks a
// sampled cancellation poll. It returns ErrResourceExhausted when the
// budget runs out.
func (g *Guard) Facts(n int64) error {
	if g == nil {
		return nil
	}
	if !g.budget.Spend(n) {
		mBudgetExhausted.Inc()
		return fmt.Errorf("%w: scanned more than the allowed facts (limit reached after %d)", ErrResourceExhausted, g.budget.Spent())
	}
	return g.Check()
}
