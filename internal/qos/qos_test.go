package qos

import (
	"context"
	"errors"
	"testing"
)

func TestGuardNilIsUnlimited(t *testing.T) {
	var g *Guard
	for i := 0; i < 1000; i++ {
		if err := g.Check(); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.CheckNow(); err != nil {
		t.Fatal(err)
	}
	if err := g.Facts(1 << 40); err != nil {
		t.Fatal(err)
	}
}

func TestGuardBackgroundNeverStops(t *testing.T) {
	g := NewGuard(context.Background())
	for i := 0; i < 10*checkEvery; i++ {
		if err := g.Facts(1); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGuardCanceledStopsWithinSamplingWindow(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := NewGuard(ctx)
	var err error
	for i := 0; i < checkEvery; i++ {
		if err = g.Check(); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatalf("canceled context not detected within %d calls", checkEvery)
	}
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrCanceled wrapping context.Canceled, got %v", err)
	}
	if g.CheckNow() == nil {
		t.Fatal("CheckNow missed a canceled context")
	}
}

func TestDeadlineMatchesBothSentinels(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	<-ctx.Done()
	err := NewGuard(ctx).CheckNow()
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want ErrCanceled wrapping DeadlineExceeded, got %v", err)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	ctx := WithFactBudget(context.Background(), 100)
	g := NewGuard(ctx)
	var err error
	n := 0
	for i := 0; i < 1000; i++ {
		if err = g.Facts(1); err != nil {
			break
		}
		n++
	}
	if err == nil {
		t.Fatal("budget never exhausted")
	}
	if !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("want ErrResourceExhausted, got %v", err)
	}
	if n != 100 {
		t.Fatalf("want exactly 100 facts admitted, got %d", n)
	}
}

func TestBudgetSharedAcrossGuards(t *testing.T) {
	ctx := WithFactBudget(context.Background(), 10)
	g1, g2 := NewGuard(ctx), NewGuard(ctx)
	for i := 0; i < 5; i++ {
		if err := g1.Facts(1); err != nil {
			t.Fatal(err)
		}
		if err := g2.Facts(1); err != nil {
			t.Fatal(err)
		}
	}
	if err := g1.Facts(1); !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("shared budget not enforced: %v", err)
	}
	if got := BudgetFrom(ctx).Spent(); got != 11 {
		t.Fatalf("want 11 spent, got %d", got)
	}
}

func TestNoBudgetInstalledForNonPositive(t *testing.T) {
	ctx := WithFactBudget(context.Background(), 0)
	if BudgetFrom(ctx) != nil {
		t.Fatal("n<=0 must not install a budget")
	}
}
