package batch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mddm/internal/casestudy"
	"mddm/internal/dimension"
	"mddm/internal/qos"
	"mddm/internal/storage"
	"mddm/internal/temporal"
)

func testEngine(t *testing.T, patients int) *storage.Engine {
	t.Helper()
	cfg := casestudy.DefaultGen()
	cfg.Patients = patients
	m := casestudy.MustGenerate(cfg)
	return storage.NewEngine(m, dimension.CurrentContext(temporal.MaxChronon))
}

// fakeSignals is a settable load view for the adaptive policy.
type fakeSignals struct {
	mu              sync.Mutex
	inflight, limit int
}

func (f *fakeSignals) Load() (int, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.inflight, f.limit
}

func (f *fakeSignals) set(inflight, limit int) {
	f.mu.Lock()
	f.inflight, f.limit = inflight, limit
	f.mu.Unlock()
}

// TestDisabled pins the zero-value contract: a disabled (or nil-config)
// scheduler answers every Do with the solo bypass sentinel.
func TestDisabled(t *testing.T) {
	s := New(Config{}, nil)
	if s.Enabled() {
		t.Fatal("zero config must be disabled")
	}
	r := s.Do(Request{Ctx: context.Background()})
	if r.Outcome != OutcomeSolo || !errors.Is(r.Err, storage.ErrSharedScanUnavailable) {
		t.Fatalf("disabled Do = %+v, want solo + ErrSharedScanUnavailable", r)
	}
	var nilS *Scheduler
	if nilS.Enabled() {
		t.Fatal("nil scheduler must report disabled")
	}
	nilS.Bypass("facts") // must not panic
}

// TestLeaderAndMembers runs a burst of similar queries through one
// scheduler and asserts exactly one leader per batch, correct member
// outputs (differential vs solo AggregateBy), and the stats/savings
// arithmetic. The burst mixes count-only, accumulator, and list members
// so one batch exercises all three scan output modes.
func TestLeaderAndMembers(t *testing.T) {
	e := testEngine(t, 40)
	s := New(Config{Enabled: true, GatherWindow: 50 * time.Millisecond, MaxBatch: 64}, nil)
	const n = 8
	memberShape := func(i int) (argDim string, listArgs bool) {
		switch i % 4 {
		case 1:
			return casestudy.DimAge, false // accumulator mode
		case 3:
			return casestudy.DimAge, true // list mode
		}
		return "", false // count-only
	}
	results := make([]Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			argDim, listArgs := memberShape(i)
			results[i] = s.Do(Request{
				Ctx:      context.Background(),
				Engine:   e,
				Dim:      casestudy.DimDiagnosis,
				Cat:      casestudy.CatLowLevel,
				ArgDim:   argDim,
				ListArgs: listArgs,
			})
		}(i)
	}
	wg.Wait()
	leaders := 0
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("member %d: %v", i, r.Err)
		}
		switch r.Outcome {
		case OutcomeLeader:
			leaders++
		case OutcomeMember:
		default:
			t.Fatalf("member %d: outcome %q", i, r.Outcome)
		}
	}
	if leaders < 1 {
		t.Fatalf("no leader among %d members", n)
	}
	st := s.Stats()
	if st.Members != n {
		t.Fatalf("stats.Members = %d, want %d", st.Members, n)
	}
	if st.Batches != int64(leaders) {
		t.Fatalf("stats.Batches = %d, leaders = %d", st.Batches, leaders)
	}
	if st.ScansSaved != st.Members-st.Batches {
		t.Fatalf("stats.ScansSaved = %d, want members-batches = %d", st.ScansSaved, st.Members-st.Batches)
	}
	// Differential: every member's slice equals its solo fold — argument
	// lists element-for-element for list members, FoldAccs replayed over
	// the solo lists (bitwise) for accumulator members.
	for i, r := range results {
		argDim, listArgs := memberShape(i)
		wantV, wantC, wantA, err := e.AggregateBy(context.Background(), casestudy.DimDiagnosis, casestudy.CatLowLevel, argDim, nil)
		if err != nil {
			t.Fatal(err)
		}
		if argDim != "" {
			if listArgs != (r.Args != nil) || listArgs == (r.Folds != nil) {
				t.Fatalf("member %d (listArgs=%v): args non-nil=%v, folds non-nil=%v",
					i, listArgs, r.Args != nil, r.Folds != nil)
			}
		}
		var gotV []string
		var gotC []int
		var gotA [][]float64
		wi := 0
		for j, v := range r.Values {
			if r.Counts[j] == 0 {
				continue
			}
			gotV = append(gotV, v)
			gotC = append(gotC, int(r.Counts[j]))
			switch {
			case r.Args != nil:
				gotA = append(gotA, r.Args[j])
			case r.Folds != nil:
				var want storage.FoldAcc
				for _, x := range wantA[wi] {
					want.Add(x)
				}
				if r.Folds[j] != want {
					t.Fatalf("member %d value %s: fold %+v, solo replay %+v", i, v, r.Folds[j], want)
				}
				gotA = append(gotA, nil)
				wantA[wi] = nil
			default:
				gotA = append(gotA, nil)
			}
			wi++
		}
		if fmt.Sprint(gotV) != fmt.Sprint(wantV) || fmt.Sprint(gotC) != fmt.Sprint(wantC) || fmt.Sprint(gotA) != fmt.Sprint(wantA) {
			t.Fatalf("member %d diverged from solo", i)
		}
	}
}

// TestMaxBatchLaunchesEarly fills the size cap and asserts the batch
// launches without waiting out an hour-long window.
func TestMaxBatchLaunchesEarly(t *testing.T) {
	e := testEngine(t, 20)
	s := New(Config{Enabled: true, GatherWindow: time.Hour, MaxBatch: 4}, nil)
	done := make(chan Result, 4)
	for i := 0; i < 4; i++ {
		go func() {
			done <- s.Do(Request{
				Ctx:    context.Background(),
				Engine: e,
				Dim:    casestudy.DimDiagnosis,
				Cat:    casestudy.CatLowLevel,
			})
		}()
	}
	deadline := time.After(10 * time.Second)
	for i := 0; i < 4; i++ {
		select {
		case r := <-done:
			if r.Err != nil {
				t.Fatal(r.Err)
			}
		case <-deadline:
			t.Fatal("size-capped batch did not launch early")
		}
	}
	if st := s.Stats(); st.Batches != 1 || st.Members != 4 || st.ScansSaved != 3 {
		t.Fatalf("stats = %+v, want 1 batch of 4", st)
	}
}

// TestSeparateLegsSeparateBatches asserts queries over different
// (dim, cat) legs — and different engines — never share a scan.
func TestSeparateLegsSeparateBatches(t *testing.T) {
	e1, e2 := testEngine(t, 20), testEngine(t, 20)
	s := New(Config{Enabled: true, GatherWindow: 50 * time.Millisecond, MaxBatch: 64}, nil)
	legs := []Request{
		{Ctx: context.Background(), Engine: e1, Dim: casestudy.DimDiagnosis, Cat: casestudy.CatLowLevel},
		{Ctx: context.Background(), Engine: e1, Dim: casestudy.DimDiagnosis, Cat: casestudy.CatFamily},
		{Ctx: context.Background(), Engine: e2, Dim: casestudy.DimDiagnosis, Cat: casestudy.CatLowLevel},
	}
	var wg sync.WaitGroup
	results := make([]Result, len(legs))
	for i, req := range legs {
		wg.Add(1)
		go func(i int, req Request) {
			defer wg.Done()
			results[i] = s.Do(req)
		}(i, req)
	}
	wg.Wait()
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("leg %d: %v", i, r.Err)
		}
		if r.Outcome != OutcomeLeader {
			t.Fatalf("leg %d: outcome %q, want each leg its own leader", i, r.Outcome)
		}
	}
	if st := s.Stats(); st.Batches != 3 || st.ScansSaved != 0 {
		t.Fatalf("stats = %+v, want 3 singleton batches", st)
	}
}

// TestMemberCancellation asserts a canceled member unblocks immediately
// with a qos cancellation while the surviving member still gets its scan.
func TestMemberCancellation(t *testing.T) {
	e := testEngine(t, 20)
	s := New(Config{Enabled: true, GatherWindow: 200 * time.Millisecond, MaxBatch: 64}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	var canceled Result
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		canceled = s.Do(Request{Ctx: ctx, Engine: e, Dim: casestudy.DimDiagnosis, Cat: casestudy.CatLowLevel})
	}()
	var survivor Result
	wg.Add(1)
	go func() {
		defer wg.Done()
		survivor = s.Do(Request{Ctx: context.Background(), Engine: e, Dim: casestudy.DimDiagnosis, Cat: casestudy.CatLowLevel})
	}()
	time.Sleep(20 * time.Millisecond) // let both join the gather window
	cancel()
	wg.Wait()
	if canceled.Err == nil || !errors.Is(canceled.Err, qos.ErrCanceled) {
		t.Fatalf("canceled member err = %v, want qos cancellation", canceled.Err)
	}
	if survivor.Err != nil {
		t.Fatalf("surviving member: %v", survivor.Err)
	}
	if len(survivor.Values) == 0 {
		t.Fatal("surviving member got no scan output")
	}
}

// TestScanUnavailablePropagates asserts the stale-column refusal reaches
// every member as the bypass sentinel.
func TestScanUnavailablePropagates(t *testing.T) {
	e := testEngine(t, 20)
	s := New(Config{Enabled: true, GatherWindow: time.Millisecond, MaxBatch: 64}, nil)
	r := s.Do(Request{Ctx: context.Background(), Engine: e, Dim: "NoSuchDim", Cat: "NoSuchCat"})
	if !errors.Is(r.Err, storage.ErrSharedScanUnavailable) {
		t.Fatalf("err = %v, want ErrSharedScanUnavailable", r.Err)
	}
}

// TestBypassStats asserts bypass accounting, including an unknown reason
// (counted under the other-bucket metric but still in Stats).
func TestBypassStats(t *testing.T) {
	s := New(Config{Enabled: true}, nil)
	s.Bypass("facts")
	s.Bypass("facts")
	s.Bypass("someday-reason")
	st := s.Stats()
	if st.Bypasses["facts"] != 2 || st.Bypasses["someday-reason"] != 1 {
		t.Fatalf("bypasses = %v", st.Bypasses)
	}
	// Stats must deep-copy: mutating the copy must not leak back.
	st.Bypasses["facts"] = 99
	if s.Stats().Bypasses["facts"] != 2 {
		t.Fatal("Stats leaked its internal map")
	}
}

// TestAdaptiveWindow pins the window policy table: nil signals pin the
// configured window; a present limiter shrinks it at low load.
func TestAdaptiveWindow(t *testing.T) {
	w := 8 * time.Millisecond
	sig := &fakeSignals{}
	cases := []struct {
		name            string
		sig             Signals
		inflight, limit int
		want            time.Duration
	}{
		{"nil-signals", nil, 0, 0, w},
		{"no-limit", sig, 5, 0, w / 4},
		{"near-idle", sig, 1, 10, w / 4},
		{"light", sig, 4, 10, w / 2},
		{"loaded", sig, 9, 10, w},
		{"saturated", sig, 10, 10, w},
	}
	for _, tc := range cases {
		sig.set(tc.inflight, tc.limit)
		s := New(Config{Enabled: true, GatherWindow: w}, tc.sig)
		if got := s.window(); got != tc.want {
			t.Errorf("%s: window = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestAdaptiveDegree pins the degree policy: full width with spare
// capacity, narrowing to 1 as the limit fills, never below 1.
func TestAdaptiveDegree(t *testing.T) {
	sig := &fakeSignals{}
	cases := []struct {
		name            string
		sig             Signals
		inflight, limit int
		want            int
	}{
		{"nil-signals", nil, 0, 0, 4},
		{"no-limit", sig, 5, 0, 4},
		{"spare", sig, 2, 16, 4},
		{"tight", sig, 14, 16, 2},
		{"saturated", sig, 16, 16, 1},
		{"over", sig, 20, 16, 1},
	}
	for _, tc := range cases {
		sig.set(tc.inflight, tc.limit)
		s := New(Config{Enabled: true, MaxParallelism: 4}, tc.sig)
		if got := s.degree(); got != tc.want {
			t.Errorf("%s: degree = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestWithDefaults pins the zero-field fill-ins.
func TestWithDefaults(t *testing.T) {
	c := Config{Enabled: true}.withDefaults()
	if c.GatherWindow != DefaultGatherWindow || c.MaxBatch != DefaultMaxBatch || c.MaxParallelism != DefaultMaxParallelism {
		t.Fatalf("defaults = %+v", c)
	}
	c = Config{Enabled: true, GatherWindow: time.Second, MaxBatch: 7, MaxParallelism: 2}.withDefaults()
	if c.GatherWindow != time.Second || c.MaxBatch != 7 || c.MaxParallelism != 2 {
		t.Fatalf("explicit config rewritten: %+v", c)
	}
}

// TestSelectionsStayPrivate asserts two members with different WHERE
// bitmaps in one batch each get their own counts (the fused scan must not
// share selection state across members).
func TestSelectionsStayPrivate(t *testing.T) {
	e := testEngine(t, 40)
	none := storage.NewBitmap(e.NumFacts()) // empty: admits nothing
	s := New(Config{Enabled: true, GatherWindow: 50 * time.Millisecond, MaxBatch: 64}, nil)
	var all, empty Result
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		all = s.Do(Request{Ctx: context.Background(), Engine: e, Dim: casestudy.DimDiagnosis, Cat: casestudy.CatLowLevel})
	}()
	go func() {
		defer wg.Done()
		empty = s.Do(Request{Ctx: context.Background(), Engine: e, Dim: casestudy.DimDiagnosis, Cat: casestudy.CatLowLevel, Sel: none})
	}()
	wg.Wait()
	if all.Err != nil || empty.Err != nil {
		t.Fatal(all.Err, empty.Err)
	}
	sum := int64(0)
	for _, c := range all.Counts {
		sum += c
	}
	if sum == 0 {
		t.Fatal("unfiltered member saw no facts")
	}
	for j, c := range empty.Counts {
		if c != 0 {
			t.Fatalf("empty-selection member counted %d at value %d", c, j)
		}
	}
}
