// Package batch is the shared-scan batch scheduler: it sits between
// admission control and the columnar planner and groups concurrent
// queries whose plans fold over the same (engine, dimension, category)
// leg into one fused pass over the characterization column
// (storage.SharedAggregateBy). The first query to arrive on an idle leg
// becomes the batch leader and opens a short gather window; queries
// landing inside the window join as members; the window closing (or the
// size cap filling) launches a single scan that fills every member's
// full-width per-value partials at once. Identical members (equal ArgDim
// and selection) share one scan slot, and each leg runs at most one scan
// at a time, group-commit style: a flight whose window expires while its
// leg's scan is still running keeps gathering and launches the moment
// the scan completes, so under saturation each batch collects every
// arrival of the previous scan's duration instead of fragmenting into
// many small overlapping scans. Each member then finishes
// independently — its own WHERE selection was already folded into the
// scan, and its budget accounting, HAVING/ORDER/LIMIT, and cache fill run
// solo (plan.Prepared.FinishShared) — so results are bit-identical to
// unbatched execution.
//
// The gather window and the scan's parallelism degree adapt to load
// through the admission limiter's signals: near-idle servers shrink the
// window toward zero (batching would only add latency when no similar
// query is coming) and scan wide; loaded servers hold the full window
// (more members per scan is exactly where sharing pays) and scan narrow
// to leave cores for admitted queries.
package batch

import (
	"context"
	"sync"
	"time"

	"mddm/internal/qos"
	"mddm/internal/storage"
)

// DefaultGatherWindow is the base gather window: long enough that a burst
// of concurrent similar queries lands in one batch, short enough to be
// invisible next to a kernel pass over a non-trivial fact set.
const DefaultGatherWindow = 2 * time.Millisecond

// DefaultMaxBatch caps members per batch; a full batch launches
// immediately instead of waiting out the window.
const DefaultMaxBatch = 32

// DefaultMaxParallelism caps the fused scan's partition degree.
const DefaultMaxParallelism = 4

// Config tunes the scheduler; the zero value (Enabled false) disables
// batching entirely.
type Config struct {
	// Enabled turns shared-scan batching on.
	Enabled bool
	// GatherWindow is the base gather window (DefaultGatherWindow when 0);
	// the adaptive policy only ever shrinks it.
	GatherWindow time.Duration
	// MaxBatch caps members per batch (DefaultMaxBatch when 0).
	MaxBatch int
	// MaxParallelism caps the fused scan degree (DefaultMaxParallelism
	// when 0); the adaptive policy only ever narrows it.
	MaxParallelism int
}

func (c Config) withDefaults() Config {
	if c.GatherWindow <= 0 {
		c.GatherWindow = DefaultGatherWindow
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.MaxParallelism <= 0 {
		c.MaxParallelism = DefaultMaxParallelism
	}
	return c
}

// Signals exposes the admission limiter's load view to the adaptive
// policy. A nil Signals pins the window and degree to their configured
// values.
type Signals interface {
	// Load returns the currently admitted query count and the admission
	// limit (0 limit: unknown — treated as unloaded).
	Load() (inflight, limit int)
}

// Outcome labels how a query moved through the scheduler; it is the
// X-Mddm-Batch header value.
type Outcome string

const (
	// OutcomeSolo: the query bypassed batching (non-batchable shape,
	// scheduler disabled, or the fused scan refused).
	OutcomeSolo Outcome = "solo"
	// OutcomeLeader: the query opened its batch and waited out the window.
	OutcomeLeader Outcome = "leader"
	// OutcomeMember: the query joined a batch another query opened.
	OutcomeMember Outcome = "member"
)

// Request is one query's slice of a prospective batch: the shared leg
// (Engine, Dim, Cat) keys the batch; ArgDim and Sel are private to the
// member.
type Request struct {
	Ctx    context.Context
	Engine *storage.Engine
	Dim    string
	Cat    string
	ArgDim string
	Sel    *storage.Bitmap
	// ListArgs requests per-value argument lists instead of FoldAccs
	// (plan.Prepared.NeedsArgLists: capture consumers and aggregates
	// outside the accumulator-foldable set). List members cost a per-fact
	// decode pass; accumulator members fold bitmap-side for free.
	ListArgs bool
}

// Result is one member's view of its batch's fused scan: the column
// dictionary and this member's full-width per-value counts plus either
// argument lists (ListArgs requests) or constant-size argument folds,
// or the scan's error. Err of storage.ErrSharedScanUnavailable
// means the whole batch bypassed (the caller runs solo and reports
// OutcomeSolo); a member context cancellation surfaces as a qos
// cancellation error.
type Result struct {
	Outcome Outcome
	Values  []string
	Counts  []int64
	Args    [][]float64
	Folds   []storage.FoldAcc
	Err     error
}

// key identifies a shareable leg. The engine pointer scopes batches to
// one engine snapshot: a re-registered MO gets a new engine and therefore
// never shares a scan with queries planned against the old one.
type key struct {
	eng      *storage.Engine
	dim, cat string
}

// legState is one leg's scheduling state: at most one scan runs per leg
// at a time, one flight forms (gathering members), and flights the size
// cap closed while a scan was running queue for the scanner. A forming
// flight whose window expires mid-scan is NOT closed — it keeps
// gathering, marked expired, and launches at scan completion
// (group commit). The serialization is what makes batches fill under
// saturation: while a scan runs, the next flight keeps gathering instead
// of launching a second small scan that would compete for the same
// cores.
type legState struct {
	forming *flight
	queue   []*flight
	running bool
}

// flight is one forming-or-running batch.
type flight struct {
	members []Request
	timer   *time.Timer
	closed  bool
	// expired: the gather window ran out while the leg's scan was busy;
	// the flight keeps gathering and scanDone launches it.
	expired bool
	done    chan struct{}

	// Scan outputs, valid after done closes. slot maps each member index
	// to its row in counts/args: members with identical (ArgDim, Sel) are
	// deduplicated into one fused-scan slot — their outputs are the same
	// by construction, so computing them once per batch is pure savings
	// (concurrent *identical* nocache queries land here; the result
	// cache's single-flight only dedups cacheable ones).
	slot   []int
	values []string
	counts [][]int64
	args   [][][]float64
	folds  [][]storage.FoldAcc
	err    error
}

// Scheduler groups concurrent batchable queries by leg. One scheduler
// serves one server; its lifetime is the server's.
type Scheduler struct {
	cfg Config
	sig Signals

	mu   sync.Mutex
	legs map[key]*legState

	stats Stats
}

// Stats snapshots the scheduler's counters (for tests and selfchecks;
// the mddm_batch_* metrics carry the same numbers to /metrics).
type Stats struct {
	// Batches counts fused scans launched.
	Batches int64
	// Members counts queries answered from a fused scan, leaders included.
	Members int64
	// ScansSaved counts kernel passes avoided: members beyond each
	// batch's leader.
	ScansSaved int64
	// Bypasses counts queries that could not batch, by reason.
	Bypasses map[string]int64
}

// New builds a scheduler; sig may be nil (fixed window and degree).
func New(cfg Config, sig Signals) *Scheduler {
	return &Scheduler{cfg: cfg.withDefaults(), sig: sig, legs: map[key]*legState{}}
}

// Enabled reports whether the scheduler batches at all.
func (s *Scheduler) Enabled() bool { return s != nil && s.cfg.Enabled }

// Bypass records a query that could not join a batch (reason is one of
// the plan.Bypass* constants).
func (s *Scheduler) Bypass(reason string) {
	if s == nil {
		return
	}
	if c := mBypasses[reason]; c != nil {
		c.Inc()
	} else {
		mBypassOther.Inc()
	}
	s.mu.Lock()
	if s.stats.Bypasses == nil {
		s.stats.Bypasses = map[string]int64{}
	}
	s.stats.Bypasses[reason]++
	s.mu.Unlock()
}

// Stats returns a copy of the scheduler's counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	if st.Bypasses != nil {
		cp := make(map[string]int64, len(st.Bypasses))
		for k, v := range st.Bypasses {
			cp[k] = v
		}
		st.Bypasses = cp
	}
	return st
}

// Do routes one batchable query through the scheduler: join or open the
// leg's forming batch, wait for its fused scan, and return this member's
// slice of the outputs. It blocks for at most the gather window plus up
// to two scans (the leg's running scan, group-commit style, then its
// own); req.Ctx cancellation unblocks immediately (the scan keeps
// running for the surviving members).
func (s *Scheduler) Do(req Request) Result {
	if !s.Enabled() {
		return Result{Outcome: OutcomeSolo, Err: storage.ErrSharedScanUnavailable}
	}
	k := key{eng: req.Engine, dim: req.Dim, cat: req.Cat}
	s.mu.Lock()
	ls := s.legs[k]
	if ls == nil {
		ls = &legState{}
		s.legs[k] = ls
	}
	f := ls.forming
	outcome := OutcomeMember
	if f == nil {
		outcome = OutcomeLeader
		f = &flight{done: make(chan struct{})}
		ls.forming = f
		w := s.window()
		f.timer = time.AfterFunc(w, func() { s.windowExpired(k, f) })
	}
	idx := len(f.members)
	f.members = append(f.members, req)
	if len(f.members) >= s.cfg.MaxBatch {
		s.readyLocked(k, f)
	}
	s.mu.Unlock()

	select {
	case <-f.done:
	case <-req.Ctx.Done():
		return Result{Outcome: outcome, Err: qos.Canceled(req.Ctx)}
	}
	if f.err != nil {
		return Result{Outcome: outcome, Err: f.err}
	}
	j := f.slot[idx]
	return Result{Outcome: outcome, Values: f.values, Counts: f.counts[j], Args: f.args[j], Folds: f.folds[j]}
}

// windowExpired closes the flight when its gather window runs out
// (timer path) — unless the leg's scan is still running, in which case
// the flight keeps gathering and scanDone launches it (group commit).
func (s *Scheduler) windowExpired(k key, f *flight) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f.closed {
		return
	}
	if ls := s.legs[k]; ls != nil && ls.running && ls.forming == f {
		f.expired = true
		return
	}
	s.readyLocked(k, f)
}

// readyLocked closes the flight under s.mu: it stops gathering and
// either launches its fused scan now or, when the leg's scanner is
// already busy, queues behind the running scan. Idempotent: the timer
// and the size cap can race.
func (s *Scheduler) readyLocked(k key, f *flight) {
	if f.closed {
		return
	}
	f.closed = true
	if f.timer != nil {
		f.timer.Stop()
	}
	ls := s.legs[k]
	if ls.forming == f {
		ls.forming = nil
	}
	if ls.running {
		ls.queue = append(ls.queue, f)
		return
	}
	ls.running = true
	s.startScanLocked(k, f)
}

// startScanLocked records the batch and starts its scan goroutine; the
// caller holds s.mu and has claimed the leg's scanner slot.
func (s *Scheduler) startScanLocked(k key, f *flight) {
	deg := s.degree()
	n := int64(len(f.members))
	s.stats.Batches++
	s.stats.Members += n
	s.stats.ScansSaved += n - 1
	mBatches.Inc()
	mMembers.Add(n)
	mScansSaved.Add(n - 1)
	mMembersPerBatch.ObserveValue(float64(n))
	go s.runScan(k, f, deg)
}

// scanDone releases the leg's scanner slot and hands it to the next
// flight: a size-cap-closed flight from the queue first, else a forming
// flight whose window already expired (the group-commit launch).
func (s *Scheduler) scanDone(k key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ls := s.legs[k]
	if len(ls.queue) > 0 {
		next := ls.queue[0]
		ls.queue = ls.queue[1:]
		s.startScanLocked(k, next)
		return
	}
	ls.running = false
	if f := ls.forming; f != nil && f.expired {
		s.readyLocked(k, f)
		return
	}
	if ls.forming == nil {
		// Nothing forming, nothing queued, nothing running: drop the leg
		// so re-registered engines do not accumulate dead entries.
		delete(s.legs, k)
	}
}

// runScan executes the fused scan under a context that outlives any one
// member: it cancels only when every member's context is done, so one
// impatient client cannot kill the batch for the others.
func (s *Scheduler) runScan(k key, f *flight, deg int) {
	defer s.scanDone(k)
	defer close(f.done)
	scanCtx, cancel := allMembersCtx(f.members)
	defer cancel()
	// Deduplicate identical members: equal ArgDim, equal output mode, and
	// equal selection content produce equal outputs, so they share one scan
	// slot. The quadratic bitmap comparison is bounded by MaxBatch and
	// costs a few word-compares per fact word — noise next to the scan
	// itself.
	var unique []storage.SharedScanMember
	f.slot = make([]int, len(f.members))
	for i, m := range f.members {
		j := -1
		for u := range unique {
			if unique[u].ArgDim == m.ArgDim && unique[u].ListArgs == m.ListArgs && unique[u].Sel.Equal(m.Sel) {
				j = u
				break
			}
		}
		if j < 0 {
			j = len(unique)
			unique = append(unique, storage.SharedScanMember{ArgDim: m.ArgDim, Sel: m.Sel, ListArgs: m.ListArgs})
		}
		f.slot[i] = j
	}
	f.values, f.counts, f.args, f.folds, f.err = k.eng.SharedAggregateBy(scanCtx, k.dim, k.cat, unique, deg)
}

// allMembersCtx derives a context canceled once ALL member contexts are
// done (and releases its watcher goroutine when the returned cancel runs,
// which the scan does as soon as it finishes).
func allMembersCtx(members []Request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	stop := make(chan struct{})
	go func() {
		for _, m := range members {
			select {
			case <-m.Ctx.Done():
			case <-stop:
				return
			}
		}
		cancel()
	}()
	return ctx, func() { cancel(); close(stop) }
}

// window is the adaptive gather window: near-idle load shrinks it —
// below a quarter of the admission limit in flight, a similar concurrent
// query is unlikely, so waiting mostly adds latency — while loaded
// servers hold the full window to gather bigger batches.
func (s *Scheduler) window() time.Duration {
	w := s.cfg.GatherWindow
	if s.sig == nil {
		return w
	}
	inflight, limit := s.sig.Load()
	if limit <= 0 {
		// No limiter to read load from: assume near-idle.
		return w / 4
	}
	switch load := float64(inflight) / float64(limit); {
	case load < 0.25:
		return w / 4
	case load < 0.5:
		return w / 2
	default:
		return w
	}
}

// degree is the adaptive scan parallelism: full width when the limiter
// has spare capacity, narrowing toward 1 as admitted queries fill the
// limit so the scan does not steal their cores.
func (s *Scheduler) degree() int {
	d := s.cfg.MaxParallelism
	if s.sig == nil {
		return d
	}
	inflight, limit := s.sig.Load()
	if limit <= 0 {
		return d
	}
	if free := limit - inflight; free < d {
		d = free
	}
	if d < 1 {
		d = 1
	}
	return d
}
