package batch

import "mddm/internal/obs"

// Batch-scheduler metrics. The bypass reason label set is closed (the
// plan.Bypass* constants) so every series registers at init and scrape
// output is stable from the first query; an unexpected reason folds into
// the "other" series instead of minting a label at runtime.
var (
	mBatches = obs.NewCounter("mddm_batch_batches_total",
		"Fused shared-scan batches launched.")
	mMembers = obs.NewCounter("mddm_batch_members_total",
		"Queries answered from a fused shared scan (leaders included).")
	mScansSaved = obs.NewCounter("mddm_batch_shared_scan_savings_total",
		"Kernel passes avoided by sharing (members beyond each batch leader).")
	mMembersPerBatch = obs.NewValueHistogram("mddm_batch_members_per_batch",
		"Members per fused batch.", obs.CountBuckets)
	mBypasses = map[string]*obs.Counter{
		"fallback":         newBypassCounter("fallback"),
		"facts":            newBypassCounter("facts"),
		"global":           newBypassCounter("global"),
		"cross":            newBypassCounter("cross"),
		"error":            newBypassCounter("error"),
		"scan-unavailable": newBypassCounter("scan-unavailable"),
	}
	mBypassOther = newBypassCounter("other")
)

func newBypassCounter(reason string) *obs.Counter {
	return obs.NewCounter("mddm_batch_bypass_total",
		"Queries that could not join a fused scan, by reason.",
		obs.Label{Key: "reason", Value: reason})
}
