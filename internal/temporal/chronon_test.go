package temporal

import (
	"errors"
	"testing"
	"time"
)

func TestChrononDateRoundTrip(t *testing.T) {
	cases := []struct {
		y int
		m time.Month
		d int
	}{
		{1970, time.January, 1},
		{1969, time.May, 25},
		{1950, time.March, 20},
		{1980, time.January, 1},
		{1999, time.December, 31},
		{2026, time.July, 4},
		{1900, time.February, 28},
		{2000, time.February, 29},
	}
	for _, c := range cases {
		ch := FromDate(c.y, c.m, c.d)
		y, m, d, err := ch.Date()
		if err != nil {
			t.Fatalf("Date(%v): %v", ch, err)
		}
		if y != c.y || m != c.m || d != c.d {
			t.Errorf("round trip %04d-%02d-%02d: got %04d-%02d-%02d", c.y, c.m, c.d, y, m, d)
		}
	}
}

func TestChrononEpoch(t *testing.T) {
	if got := FromDate(1970, time.January, 1); got != 0 {
		t.Fatalf("epoch chronon = %d, want 0", got)
	}
	if got := FromDate(1970, time.January, 2); got != 1 {
		t.Fatalf("epoch+1 chronon = %d, want 1", got)
	}
	if got := FromDate(1969, time.December, 31); got != -1 {
		t.Fatalf("epoch-1 chronon = %d, want -1", got)
	}
}

func TestNowOrdering(t *testing.T) {
	if !(MaxChronon < Now) {
		t.Error("NOW must be greater than every fixed chronon")
	}
	if !(MinChronon < MaxChronon) {
		t.Error("MinChronon must be below MaxChronon")
	}
	ref := MustDate("04/07/2026")
	if Now.Resolve(ref) != ref {
		t.Error("NOW must resolve to the reference chronon")
	}
	if ref.Resolve(MustDate("01/01/1990")) != ref {
		t.Error("fixed chronons must resolve to themselves")
	}
}

func TestSuccPredChain(t *testing.T) {
	if MaxChronon.Succ() != Now {
		t.Error("Succ(MaxChronon) must be NOW")
	}
	if Now.Succ() != Now {
		t.Error("Succ(NOW) must saturate")
	}
	if Now.PredC() != MaxChronon {
		t.Error("PredC(NOW) must be MaxChronon")
	}
	if MinChronon.PredC() != MinChronon {
		t.Error("PredC(MinChronon) must saturate")
	}
	c := Chronon(100)
	if c.Succ() != 101 || c.PredC() != 99 {
		t.Errorf("Succ/PredC on interior chronon: got %d, %d", c.Succ(), c.PredC())
	}
}

func TestChrononString(t *testing.T) {
	cases := map[Chronon]string{
		Now:                  "NOW",
		MinChronon:           "BEGINNING",
		MaxChronon:           "FOREVER",
		MustDate("25/05/69"): "25/05/1969",
		MustDate("01/01/80"): "01/01/1980",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", c, got, want)
		}
	}
}

func TestMinMaxOf(t *testing.T) {
	a, b := Chronon(1), Chronon(2)
	if MinOf(a, b) != a || MinOf(b, a) != a {
		t.Error("MinOf wrong")
	}
	if MaxOf(a, b) != b || MaxOf(b, a) != b {
		t.Error("MaxOf wrong")
	}
	if MaxOf(a, Now) != Now {
		t.Error("MaxOf with NOW must be NOW")
	}
}

func TestDateErrorsOnNow(t *testing.T) {
	if _, _, _, err := Now.Date(); !errors.Is(err, ErrNowDate) {
		t.Errorf("Date() on NOW: err = %v, want ErrNowDate", err)
	}
}
