package temporal

import "testing"

// FuzzParseDate checks that date parsing never panics and that accepted
// dates round-trip through String.
func FuzzParseDate(f *testing.F) {
	for _, s := range []string{
		"25/05/69", "01/01/1980", "NOW", "now", "BEGINNING", "FOREVER",
		"1999-12-31", "31/02/99", "0/0/0", "////", "¼/½/¾", "99999999-1-1",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		c, err := ParseDate(s)
		if err != nil {
			return
		}
		// Accepted dates render and re-parse to the same chronon.
		back, err := ParseDate(c.String())
		if err != nil {
			t.Fatalf("ParseDate(%q) = %v, but its rendering %q does not re-parse: %v", s, c, c.String(), err)
		}
		if back != c {
			t.Fatalf("round trip %q: %v != %v", s, back, c)
		}
	})
}

// FuzzParseInterval checks interval parsing never panics and accepted
// intervals are well-formed.
func FuzzParseInterval(f *testing.F) {
	for _, s := range []string{
		"[01/01/80 - NOW]", "[23/03/75]", "01/01/70 - 31/12/79", "[x - y]", "[]",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		iv, err := ParseInterval(s)
		if err != nil {
			return
		}
		if iv.Start > iv.End {
			t.Fatalf("ParseInterval(%q) accepted an empty interval %v", s, iv)
		}
	})
}
