package temporal

import "testing"

func TestParseDateFormats(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"25/05/69", "25/05/1969"},
		{"20/03/50", "20/03/1950"},
		{"01/01/29", "01/01/2029"},
		{"01/01/30", "01/01/1930"},
		{"01/01/1980", "01/01/1980"},
		{"1999-12-31", "31/12/1999"},
		{"NOW", "NOW"},
		{"now", "NOW"},
		{" 01/01/80 ", "01/01/1980"},
	}
	for _, c := range cases {
		got, err := ParseDate(c.in)
		if err != nil {
			t.Errorf("ParseDate(%q): %v", c.in, err)
			continue
		}
		if got.String() != c.want {
			t.Errorf("ParseDate(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseDateErrors(t *testing.T) {
	for _, in := range []string{"", "1/2", "a/b/c", "32/01/80", "29/02/1999", "00/01/80", "01/13/80", "1999-13-01", "1999-02-30", "99-1"} {
		if _, err := ParseDate(in); err == nil {
			t.Errorf("ParseDate(%q): expected error", in)
		}
	}
}

func TestParseInterval(t *testing.T) {
	iv, err := ParseInterval("[01/01/80 - NOW]")
	if err != nil {
		t.Fatal(err)
	}
	if iv.Start != MustDate("01/01/80") || iv.End != Now {
		t.Errorf("got %v", iv)
	}
	single, err := ParseInterval("[23/03/75]")
	if err != nil {
		t.Fatal(err)
	}
	if single.Start != single.End || single.Start != MustDate("23/03/75") {
		t.Errorf("got %v", single)
	}
	if _, err := ParseInterval("[01/01/90 - 01/01/80]"); err == nil {
		t.Error("empty interval must be rejected")
	}
	noBrackets, err := ParseInterval("01/01/70 - 31/12/79")
	if err != nil || noBrackets.Duration(ref) != 3652 {
		t.Errorf("bracket-less parse failed: %v %v", noBrackets, err)
	}
}

func TestSpanAndMustElement(t *testing.T) {
	e := Span("01/01/70", "31/12/79")
	if e.NumIntervals() != 1 {
		t.Fatalf("span must be one interval, got %d", e.NumIntervals())
	}
	m := MustElement("[01/01/70 - 31/12/79]", "[01/01/80 - NOW]")
	// Adjacent intervals coalesce into one.
	if m.NumIntervals() != 1 {
		t.Errorf("adjacent spans must coalesce, got %v", m)
	}
}

func TestMustDatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustDate on garbage must panic")
		}
	}()
	MustDate("bogus")
}
