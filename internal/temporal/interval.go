package temporal

import "fmt"

// Interval is a non-empty closed interval of chronons [Start, End]. An
// interval whose End is the NOW marker grows with the current time; it is
// interpreted against a reference chronon when resolved.
type Interval struct {
	Start Chronon
	End   Chronon
}

// NewInterval returns the closed interval [start, end]. It rejects
// start > end (after conceptually placing NOW after all fixed chronons),
// because empty intervals are not representable, and a start of NOW with
// a fixed end, which would shrink as time advances.
func NewInterval(start, end Chronon) (Interval, error) {
	if start > end {
		return Interval{}, fmt.Errorf("temporal: empty interval [%v, %v]", start, end)
	}
	if start == Now && end != Now {
		return Interval{}, fmt.Errorf("temporal: interval starting at NOW must end at NOW")
	}
	return Interval{Start: start, End: end}, nil
}

// MustNewInterval is NewInterval that panics on error; intended for
// literals in tests, examples, and embedded datasets whose validity is a
// programmer-error invariant.
func MustNewInterval(start, end Chronon) Interval {
	iv, err := NewInterval(start, end)
	if err != nil {
		panic(err)
	}
	return iv
}

// At returns the degenerate interval [c, c].
func At(c Chronon) Interval { return Interval{Start: c, End: c} }

// Always is the interval covering the whole time domain including NOW.
func Always() Interval { return Interval{Start: MinChronon, End: Now} }

// Contains reports whether chronon c lies in the interval, resolving NOW
// endpoints against ref.
func (iv Interval) Contains(c, ref Chronon) bool {
	s := iv.Start.Resolve(ref)
	e := iv.End.Resolve(ref)
	cc := c.Resolve(ref)
	return s <= cc && cc <= e
}

// Resolve replaces NOW endpoints with ref. If the resolved interval is empty
// (a [NOW, NOW] row whose ref precedes its start, which cannot occur for
// well-formed data), ok is false.
func (iv Interval) Resolve(ref Chronon) (Interval, bool) {
	s := iv.Start.Resolve(ref)
	e := iv.End.Resolve(ref)
	if s > e {
		return Interval{}, false
	}
	return Interval{Start: s, End: e}, true
}

// Overlaps reports whether the two intervals share at least one chronon
// under the reference time ref.
func (iv Interval) Overlaps(other Interval, ref Chronon) bool {
	a, ok := iv.Resolve(ref)
	if !ok {
		return false
	}
	b, ok := other.Resolve(ref)
	if !ok {
		return false
	}
	return a.Start <= b.End && b.Start <= a.End
}

// Intersect returns the common part of two intervals under ref, and whether
// it is non-empty. NOW endpoints are preserved when both inputs share them
// so that the result keeps growing semantics.
func (iv Interval) Intersect(other Interval, ref Chronon) (Interval, bool) {
	if !iv.Overlaps(other, ref) {
		return Interval{}, false
	}
	start := MaxOf(iv.Start, other.Start)
	// For the end, pick the smaller resolved endpoint but keep NOW when both
	// ends are NOW (the intersection keeps growing).
	end := MinOf(iv.End, other.End)
	if iv.End == Now && other.End == Now {
		end = Now
	} else {
		end = MinOf(iv.End.Resolve(ref), other.End.Resolve(ref))
	}
	if start.Resolve(ref) > end.Resolve(ref) {
		return Interval{}, false
	}
	return Interval{Start: start, End: end}, true
}

// Duration returns the number of chronons in the interval under ref.
func (iv Interval) Duration(ref Chronon) int64 {
	r, ok := iv.Resolve(ref)
	if !ok {
		return 0
	}
	return int64(r.End) - int64(r.Start) + 1
}

// String renders the interval in the paper's bracketed notation, e.g.
// [01/01/80 - NOW].
func (iv Interval) String() string {
	if iv.Start == iv.End {
		return fmt.Sprintf("[%v]", iv.Start)
	}
	return fmt.Sprintf("[%v - %v]", iv.Start, iv.End)
}
