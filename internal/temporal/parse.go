package temporal

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseDate parses the paper's date notation: "dd/mm/yy" (two-digit years
// pivot at 30: 30–99 → 19xx, 00–29 → 20xx), "dd/mm/yyyy", the special
// string "NOW", and ISO "yyyy-mm-dd".
func ParseDate(s string) (Chronon, error) {
	s = strings.TrimSpace(s)
	switch strings.ToUpper(s) {
	case "NOW":
		return Now, nil
	case "BEGINNING":
		return MinChronon, nil
	case "FOREVER":
		return MaxChronon, nil
	}
	if strings.Contains(s, "-") && !strings.Contains(s, "/") {
		parts := strings.Split(s, "-")
		if len(parts) != 3 {
			return 0, fmt.Errorf("temporal: malformed ISO date %q", s)
		}
		y, err1 := strconv.Atoi(parts[0])
		m, err2 := strconv.Atoi(parts[1])
		d, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return 0, fmt.Errorf("temporal: malformed ISO date %q", s)
		}
		return fromYMD(y, m, d, s)
	}
	parts := strings.Split(s, "/")
	if len(parts) != 3 {
		return 0, fmt.Errorf("temporal: malformed date %q (want dd/mm/yy, dd/mm/yyyy, yyyy-mm-dd, or NOW)", s)
	}
	d, err1 := strconv.Atoi(parts[0])
	m, err2 := strconv.Atoi(parts[1])
	y, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil {
		return 0, fmt.Errorf("temporal: malformed date %q", s)
	}
	if len(parts[2]) <= 2 {
		if y >= 30 {
			y += 1900
		} else {
			y += 2000
		}
	}
	return fromYMD(y, m, d, s)
}

func fromYMD(y, m, d int, orig string) (Chronon, error) {
	if m < 1 || m > 12 || d < 1 || d > 31 {
		return 0, fmt.Errorf("temporal: date %q out of range", orig)
	}
	c := FromDate(y, time.Month(m), d)
	// Round-trip to reject days that normalized (e.g. 31/02).
	yy, mm, dd, _ := c.Date() // FromDate never yields NOW
	if yy != y || int(mm) != m || dd != d {
		return 0, fmt.Errorf("temporal: date %q does not exist", orig)
	}
	return c, nil
}

// MustDate is ParseDate that panics on error; intended for literals in
// tests, examples, and embedded datasets.
func MustDate(s string) Chronon {
	c, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return c
}

// ParseInterval parses "[from - to]" or "[at]" using ParseDate for the
// endpoints; the surrounding brackets are optional.
func ParseInterval(s string) (Interval, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "[")
	s = strings.TrimSuffix(s, "]")
	var fromS, toS string
	if i := strings.Index(s, " - "); i >= 0 {
		fromS, toS = s[:i], s[i+3:]
	} else {
		fromS, toS = s, s
	}
	from, err := ParseDate(fromS)
	if err != nil {
		return Interval{}, err
	}
	to, err := ParseDate(toS)
	if err != nil {
		return Interval{}, err
	}
	if from > to {
		return Interval{}, fmt.Errorf("temporal: interval %q is empty", s)
	}
	return NewInterval(from, to)
}

// MustInterval is ParseInterval that panics on error.
func MustInterval(s string) Interval {
	iv, err := ParseInterval(s)
	if err != nil {
		panic(err)
	}
	return iv
}

// MustElement builds an element from interval literals, panicking on parse
// errors: MustElement("[01/01/70 - 31/12/79]", "[01/01/85 - NOW]").
func MustElement(ivs ...string) Element {
	parsed := make([]Interval, len(ivs))
	for i, s := range ivs {
		parsed[i] = MustInterval(s)
	}
	return NewElement(parsed...)
}

// Span is a convenience constructor parsing two date literals into a
// single-interval element; like the other Must helpers it panics on bad
// literals.
func Span(from, to string) Element {
	return NewElement(MustNewInterval(MustDate(from), MustDate(to)))
}
