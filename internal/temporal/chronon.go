// Package temporal implements the time-domain substrate of the extended
// multidimensional data model of Pedersen & Jensen (ICDE 1999), §3.2.
//
// The time domain is discrete and bounded, isomorphic with a bounded subset
// of the natural numbers; its values are called chronons. Following the
// paper's examples, the chronon size is one day. A temporal element is a
// maximal (coalesced) set of chronons represented as sorted, disjoint,
// non-adjacent closed intervals. The special value NOW denotes the
// continuously growing current time (Clifford et al., "On the Semantics of
// 'NOW' in Databases").
package temporal

import (
	"errors"
	"fmt"
	"time"
)

// Chronon is a single day-granule time value, counted in days since
// 1970-01-01 (negative values reach back before the epoch).
type Chronon int32

const (
	// MinChronon is the earliest representable chronon ("beginning").
	MinChronon Chronon = -(1 << 30)
	// MaxChronon is the latest representable fixed chronon ("forever").
	MaxChronon Chronon = 1<<30 - 1
	// Now is the special, continuously growing value denoting the current
	// time. It compares greater than every fixed chronon and is resolved
	// against a reference time by Resolve.
	Now Chronon = 1<<31 - 1
)

// IsNow reports whether c is the special NOW marker.
func (c Chronon) IsNow() bool { return c == Now }

// Resolve replaces the NOW marker by the reference chronon ref and returns
// fixed chronons unchanged.
func (c Chronon) Resolve(ref Chronon) Chronon {
	if c == Now {
		return ref
	}
	return c
}

// Succ returns the successor chronon in the chain
// MinChronon < … < MaxChronon < NOW. NOW is its own successor.
func (c Chronon) Succ() Chronon {
	switch {
	case c == Now:
		return Now
	case c == MaxChronon:
		return Now
	default:
		return c + 1
	}
}

// PredC returns the predecessor chronon in the chain, saturating at
// MinChronon; the predecessor of NOW is MaxChronon. (Named PredC to avoid
// clashing with the dimension-lattice Pred function of the paper.)
func (c Chronon) PredC() Chronon {
	switch {
	case c == Now:
		return MaxChronon
	case c <= MinChronon:
		return c
	default:
		return c - 1
	}
}

// FromDate converts a calendar date to a chronon.
func FromDate(year int, month time.Month, day int) Chronon {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return Chronon(t.Unix() / 86400)
}

// ErrNowDate reports a calendar conversion attempted on the NOW marker,
// which has no fixed calendar date until resolved.
var ErrNowDate = errors.New("temporal: Date called on NOW; call Resolve first")

// Date converts a fixed chronon back to a calendar date. Calling Date on
// the NOW marker returns ErrNowDate; resolve it first.
func (c Chronon) Date() (year int, month time.Month, day int, err error) {
	if c == Now {
		return 0, 0, 0, ErrNowDate
	}
	t := time.Unix(int64(c)*86400, 0).UTC()
	year, month, day = t.Date()
	return year, month, day, nil
}

// String renders the chronon in the paper's dd/mm/yyyy style, or "NOW".
func (c Chronon) String() string {
	switch {
	case c == Now:
		return "NOW"
	case c == MinChronon:
		return "BEGINNING"
	case c == MaxChronon:
		return "FOREVER"
	}
	y, m, d, _ := c.Date() // NOW was handled above; fixed chronons cannot fail
	return fmt.Sprintf("%02d/%02d/%04d", d, int(m), y)
}

// Before reports whether c is strictly earlier than d, treating NOW as later
// than every fixed chronon.
func (c Chronon) Before(d Chronon) bool { return c < d }

// MinOf returns the earlier of two chronons.
func MinOf(a, b Chronon) Chronon {
	if a < b {
		return a
	}
	return b
}

// MaxOf returns the later of two chronons.
func MaxOf(a, b Chronon) Chronon {
	if a > b {
		return a
	}
	return b
}
