package temporal

import "fmt"

// Bitemporal pairs a valid-time element with a transaction-time element,
// representing the set of bitemporal chronons Tt × Tv of the paper (§3.2).
// The addition of transaction time is orthogonal to valid time: either
// component may be the full time line when the corresponding aspect is not
// recorded.
type Bitemporal struct {
	Valid Element // when the statement is true in the modeled reality
	Trans Element // when the statement is current in the database
}

// AlwaysBitemporal returns the bitemporal element covering all of valid time
// and all of transaction time — the annotation of data in a snapshot MO.
func AlwaysBitemporal() Bitemporal {
	return Bitemporal{Valid: AlwaysElement(), Trans: AlwaysElement()}
}

// ValidOnly wraps a valid-time element with an unconstrained transaction
// time.
func ValidOnly(v Element) Bitemporal { return Bitemporal{Valid: v, Trans: AlwaysElement()} }

// TransOnly wraps a transaction-time element with an unconstrained valid
// time.
func TransOnly(t Element) Bitemporal { return Bitemporal{Valid: AlwaysElement(), Trans: t} }

// IsEmpty reports whether the bitemporal region is empty.
func (b Bitemporal) IsEmpty() bool { return b.Valid.IsEmpty() || b.Trans.IsEmpty() }

// Intersect intersects both components.
func (b Bitemporal) Intersect(o Bitemporal) Bitemporal {
	return Bitemporal{Valid: b.Valid.Intersect(o.Valid), Trans: b.Trans.Intersect(o.Trans)}
}

// Union unions both components. Note that the union of two rectangles is a
// rectangle over-approximation; the model only unions annotations of
// identical statements (paper §4.2), where the rectangle set semantics of
// each component is exactly what the union rules prescribe.
func (b Bitemporal) Union(o Bitemporal) Bitemporal {
	return Bitemporal{Valid: b.Valid.Union(o.Valid), Trans: b.Trans.Union(o.Trans)}
}

// String renders the bitemporal element as "tt ⨯ vt".
func (b Bitemporal) String() string {
	return fmt.Sprintf("%v ⨯ %v", b.Trans, b.Valid)
}
