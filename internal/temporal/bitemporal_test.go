package temporal

import "testing"

func TestBitemporalBasics(t *testing.T) {
	b := AlwaysBitemporal()
	if b.IsEmpty() {
		t.Fatal("always bitemporal must be non-empty")
	}
	v := ValidOnly(Span("01/01/80", "31/12/89"))
	if v.IsEmpty() || !v.Trans.Equal(AlwaysElement()) {
		t.Error("ValidOnly must leave transaction time unconstrained")
	}
	tt := TransOnly(Span("01/01/90", "31/12/99"))
	if tt.IsEmpty() || !tt.Valid.Equal(AlwaysElement()) {
		t.Error("TransOnly must leave valid time unconstrained")
	}

	x := v.Intersect(tt)
	if !x.Valid.Equal(v.Valid) || !x.Trans.Equal(tt.Trans) {
		t.Error("intersection must constrain both components")
	}

	empty := v.Intersect(ValidOnly(Span("01/01/10", "31/12/10")))
	if !empty.IsEmpty() {
		t.Error("disjoint valid times must yield empty bitemporal region")
	}
}

func TestBitemporalUnionString(t *testing.T) {
	a := ValidOnly(Span("01/01/80", "31/12/84"))
	b := ValidOnly(Span("01/01/85", "31/12/89"))
	u := a.Union(b)
	if got, want := u.Valid.String(), "[01/01/1980 - 31/12/1989]"; got != want {
		t.Errorf("union valid = %q, want %q", got, want)
	}
	if u.String() == "" {
		t.Error("String must render something")
	}
}
