package temporal

import (
	"sort"
	"strings"
)

// Element is a temporal element: a set of chronons represented canonically
// as sorted, pairwise disjoint, non-adjacent closed intervals. The canonical
// form realizes the paper's coalescing invariant — the chronon set attached
// to a piece of data is the maximal set during which the data is valid, so
// no two value-equivalent annotations can coexist.
//
// The zero value is the empty element. Elements are immutable; all methods
// return new elements.
type Element struct {
	ivs []Interval
}

// Empty returns the empty temporal element.
func Empty() Element { return Element{} }

// AlwaysElement returns the element covering the entire time domain,
// including the growing NOW endpoint.
func AlwaysElement() Element { return Element{ivs: []Interval{Always()}} }

// NewElement builds a canonical element from arbitrary (possibly
// overlapping, unordered, adjacent) intervals.
func NewElement(ivs ...Interval) Element {
	if len(ivs) == 0 {
		return Element{}
	}
	sorted := make([]Interval, len(ivs))
	copy(sorted, ivs)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].End < sorted[j].End
	})
	out := make([]Interval, 0, len(sorted))
	cur := sorted[0]
	for _, iv := range sorted[1:] {
		if iv.Start <= cur.End.Succ() { // overlapping or adjacent: merge
			if iv.End > cur.End {
				cur.End = iv.End
			}
			continue
		}
		out = append(out, cur)
		cur = iv
	}
	out = append(out, cur)
	return Element{ivs: out}
}

// Single returns the element consisting of one interval [start, end]; it
// panics on an invalid pair (a programmer-error invariant — use
// NewInterval plus NewElement to validate data-driven endpoints).
func Single(start, end Chronon) Element { return NewElement(MustNewInterval(start, end)) }

// AtElement returns the element containing exactly chronon c.
func AtElement(c Chronon) Element { return NewElement(At(c)) }

// Intervals returns a copy of the canonical interval list.
func (e Element) Intervals() []Interval {
	out := make([]Interval, len(e.ivs))
	copy(out, e.ivs)
	return out
}

// IsEmpty reports whether the element contains no chronons.
func (e Element) IsEmpty() bool { return len(e.ivs) == 0 }

// NumIntervals returns the number of maximal intervals.
func (e Element) NumIntervals() int { return len(e.ivs) }

// Valid reports whether the representation invariant holds: sorted,
// disjoint, non-adjacent, non-empty intervals.
func (e Element) Valid() bool {
	for i, iv := range e.ivs {
		if iv.Start > iv.End {
			return false
		}
		if i > 0 && e.ivs[i-1].End.Succ() >= iv.Start {
			return false
		}
	}
	return true
}

// Contains reports whether chronon c belongs to the element, with NOW
// endpoints resolved against ref.
func (e Element) Contains(c, ref Chronon) bool {
	// Binary search on the canonical order.
	cc := c.Resolve(ref)
	i := sort.Search(len(e.ivs), func(i int) bool { return e.ivs[i].End.Resolve(ref) >= cc })
	return i < len(e.ivs) && e.ivs[i].Start.Resolve(ref) <= cc
}

// Union returns the set union of two elements.
func (e Element) Union(o Element) Element {
	if e.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return e
	}
	all := make([]Interval, 0, len(e.ivs)+len(o.ivs))
	all = append(all, e.ivs...)
	all = append(all, o.ivs...)
	return NewElement(all...)
}

// Intersect returns the set intersection of two elements. NOW endpoints are
// treated symbolically (NOW is the top of the chronon chain), so
// [1980, NOW] ∩ [1990, NOW] = [1990, NOW].
func (e Element) Intersect(o Element) Element {
	var out []Interval
	i, j := 0, 0
	for i < len(e.ivs) && j < len(o.ivs) {
		a, b := e.ivs[i], o.ivs[j]
		s := MaxOf(a.Start, b.Start)
		t := MinOf(a.End, b.End)
		if s <= t {
			out = append(out, Interval{Start: s, End: t})
		}
		if a.End < b.End {
			i++
		} else {
			j++
		}
	}
	return Element{ivs: out} // pieces of canonical inputs stay canonical
}

// Difference returns the chronons in e that are not in o.
func (e Element) Difference(o Element) Element {
	if e.IsEmpty() || o.IsEmpty() {
		return e
	}
	var out []Interval
	j := 0
	for _, a := range e.ivs {
		start := a.Start
		consumed := false
		for j < len(o.ivs) && o.ivs[j].End < start {
			j++
		}
		k := j
		for k < len(o.ivs) && o.ivs[k].Start <= a.End {
			b := o.ivs[k]
			if b.Start > start {
				out = append(out, Interval{Start: start, End: b.Start.PredC()})
			}
			if b.End >= a.End {
				consumed = true // b reaches the end of a
				break
			}
			start = b.End.Succ()
			k++
		}
		if !consumed && start <= a.End {
			out = append(out, Interval{Start: start, End: a.End})
		}
	}
	return Element{ivs: out}
}

// Overlaps reports whether the two elements share at least one chronon.
func (e Element) Overlaps(o Element) bool { return !e.Intersect(o).IsEmpty() }

// Covers reports whether every chronon of o belongs to e.
func (e Element) Covers(o Element) bool { return o.Difference(e).IsEmpty() }

// Equal reports whether the two elements denote the same chronon set.
func (e Element) Equal(o Element) bool {
	if len(e.ivs) != len(o.ivs) {
		return false
	}
	for i := range e.ivs {
		if e.ivs[i] != o.ivs[i] {
			return false
		}
	}
	return true
}

// Resolve replaces NOW endpoints by ref, dropping interval parts that lie
// beyond ref only when they become empty. The result contains no NOW
// markers.
func (e Element) Resolve(ref Chronon) Element {
	var out []Interval
	for _, iv := range e.ivs {
		if r, ok := iv.Resolve(ref); ok {
			out = append(out, r)
		}
	}
	return NewElement(out...)
}

// Duration returns the total number of chronons under reference time ref.
func (e Element) Duration(ref Chronon) int64 {
	var n int64
	for _, iv := range e.ivs {
		n += iv.Duration(ref)
	}
	return n
}

// Start returns the earliest chronon of the element; ok is false when the
// element is empty.
func (e Element) Start() (Chronon, bool) {
	if e.IsEmpty() {
		return 0, false
	}
	return e.ivs[0].Start, true
}

// End returns the latest chronon of the element (possibly NOW); ok is false
// when the element is empty.
func (e Element) End() (Chronon, bool) {
	if e.IsEmpty() {
		return 0, false
	}
	return e.ivs[len(e.ivs)-1].End, true
}

// String renders the element as a ∪-joined interval list, e.g.
// "[01/01/70 - 31/12/79] ∪ [01/01/85 - NOW]". The empty element renders as
// "∅".
func (e Element) String() string {
	if e.IsEmpty() {
		return "∅"
	}
	parts := make([]string, len(e.ivs))
	for i, iv := range e.ivs {
		parts[i] = iv.String()
	}
	return strings.Join(parts, " ∪ ")
}
