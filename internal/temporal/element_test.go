package temporal

import (
	"math/rand"
	"testing"
	"testing/quick"
)

var ref = MustDate("04/07/2026")

func el(ivs ...string) Element { return MustElement(ivs...) }

func TestNewElementCoalesces(t *testing.T) {
	cases := []struct {
		name string
		in   Element
		want string
	}{
		{"overlap", NewElement(MustNewInterval(0, 10), MustNewInterval(5, 20)), "[01/01/1970 - 21/01/1970]"},
		{"adjacent", NewElement(MustNewInterval(0, 4), MustNewInterval(5, 9)), "[01/01/1970 - 10/01/1970]"},
		{"disjoint", NewElement(MustNewInterval(0, 1), MustNewInterval(5, 6)), "[01/01/1970 - 02/01/1970] ∪ [06/01/1970 - 07/01/1970]"},
		{"contained", NewElement(MustNewInterval(0, 100), MustNewInterval(10, 20)), "[01/01/1970 - 11/04/1970]"},
		{"unordered", NewElement(MustNewInterval(50, 60), MustNewInterval(0, 1)), "[01/01/1970 - 02/01/1970] ∪ [20/02/1970 - 02/03/1970]"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%s: got %q, want %q", c.name, got, c.want)
		}
		if !c.in.Valid() {
			t.Errorf("%s: invariant violated", c.name)
		}
	}
}

func TestElementContains(t *testing.T) {
	e := el("[01/01/70 - 31/12/79]", "[01/01/85 - NOW]")
	for _, c := range []struct {
		d    string
		want bool
	}{
		{"01/01/70", true}, {"31/12/79", true}, {"15/06/75", true},
		{"01/01/80", false}, {"31/12/84", false},
		{"01/01/85", true}, {"04/07/2026", true},
		{"31/12/69", false},
	} {
		if got := e.Contains(MustDate(c.d), ref); got != c.want {
			t.Errorf("Contains(%s) = %v, want %v", c.d, got, c.want)
		}
	}
	if e.Contains(MustDate("01/01/2030"), ref) {
		t.Error("chronon after resolved NOW must not be contained")
	}
}

func TestElementUnionIntersectDifference(t *testing.T) {
	a := el("[01/01/70 - 31/12/79]")
	b := el("[01/01/75 - 31/12/84]")
	if got, want := a.Union(b).String(), "[01/01/1970 - 31/12/1984]"; got != want {
		t.Errorf("union: got %q want %q", got, want)
	}
	if got, want := a.Intersect(b).String(), "[01/01/1975 - 31/12/1979]"; got != want {
		t.Errorf("intersect: got %q want %q", got, want)
	}
	if got, want := a.Difference(b).String(), "[01/01/1970 - 31/12/1974]"; got != want {
		t.Errorf("difference: got %q want %q", got, want)
	}
	if got, want := b.Difference(a).String(), "[01/01/1980 - 31/12/1984]"; got != want {
		t.Errorf("difference rev: got %q want %q", got, want)
	}
}

func TestDifferenceSplitsInterval(t *testing.T) {
	a := el("[01/01/80 - NOW]")
	b := el("[01/01/85 - 31/12/89]")
	got := a.Difference(b).String()
	want := "[01/01/1980 - 31/12/1984] ∪ [01/01/1990 - NOW]"
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestDifferenceWithNowEndpoints(t *testing.T) {
	a := el("[01/01/80 - NOW]")
	b := el("[01/01/85 - NOW]")
	got := a.Difference(b).String()
	want := "[01/01/1980 - 31/12/1984]"
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
	if !a.Difference(a).IsEmpty() {
		t.Error("e \\ e must be empty")
	}
}

func TestIntersectKeepsNow(t *testing.T) {
	a := el("[01/01/80 - NOW]")
	b := el("[01/01/90 - NOW]")
	if got, want := a.Intersect(b).String(), "[01/01/1990 - NOW]"; got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestCoversAndOverlaps(t *testing.T) {
	a := el("[01/01/70 - NOW]")
	b := el("[01/01/80 - 31/12/89]")
	if !a.Covers(b) {
		t.Error("a must cover b")
	}
	if b.Covers(a) {
		t.Error("b must not cover a")
	}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("overlap must hold both ways")
	}
	c := el("[01/01/60 - 31/12/65]")
	if a.Overlaps(c) {
		t.Error("disjoint elements must not overlap")
	}
	if !a.Covers(Empty()) {
		t.Error("everything covers the empty element")
	}
}

func TestResolve(t *testing.T) {
	e := el("[01/01/80 - NOW]")
	r := e.Resolve(ref)
	want := "[01/01/1980 - 04/07/2026]"
	if got := r.String(); got != want {
		t.Errorf("got %q want %q", got, want)
	}
	// Resolving an already-fixed element is the identity.
	if !r.Resolve(ref).Equal(r) {
		t.Error("resolve must be idempotent")
	}
}

func TestDuration(t *testing.T) {
	e := el("[01/01/70 - 10/01/70]")
	if got := e.Duration(ref); got != 10 {
		t.Errorf("duration = %d, want 10", got)
	}
	two := NewElement(At(0), At(5))
	if got := two.Duration(ref); got != 2 {
		t.Errorf("duration = %d, want 2", got)
	}
}

func TestStartEnd(t *testing.T) {
	e := el("[01/01/70 - 31/12/79]", "[01/01/85 - NOW]")
	s, ok := e.Start()
	if !ok || s != MustDate("01/01/70") {
		t.Errorf("Start = %v, %v", s, ok)
	}
	en, ok := e.End()
	if !ok || en != Now {
		t.Errorf("End = %v, %v", en, ok)
	}
	if _, ok := Empty().Start(); ok {
		t.Error("empty element has no start")
	}
}

// randomElement builds a random element from up to n intervals in a small
// chronon universe so set-level cross-checks are cheap.
func randomElement(r *rand.Rand, n int) Element {
	k := r.Intn(n + 1)
	ivs := make([]Interval, 0, k)
	for i := 0; i < k; i++ {
		s := Chronon(r.Intn(64))
		e := s + Chronon(r.Intn(16))
		ivs = append(ivs, MustNewInterval(s, e))
	}
	return NewElement(ivs...)
}

// toSet expands an element over the small universe [0, 128).
func toSet(e Element) map[Chronon]bool {
	m := map[Chronon]bool{}
	for c := Chronon(0); c < 128; c++ {
		if e.Contains(c, ref) {
			m[c] = true
		}
	}
	return m
}

func TestElementSetSemanticsQuick(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		a := randomElement(r, 5)
		b := randomElement(r, 5)
		sa, sb := toSet(a), toSet(b)

		check := func(name string, got Element, pred func(c Chronon) bool) {
			if !got.Valid() {
				t.Fatalf("%s: result not canonical: %v", name, got)
			}
			for c := Chronon(0); c < 128; c++ {
				if got.Contains(c, ref) != pred(c) {
					t.Fatalf("%s: mismatch at %d (a=%v b=%v got=%v)", name, c, a, b, got)
				}
			}
		}
		check("union", a.Union(b), func(c Chronon) bool { return sa[c] || sb[c] })
		check("intersect", a.Intersect(b), func(c Chronon) bool { return sa[c] && sb[c] })
		check("difference", a.Difference(b), func(c Chronon) bool { return sa[c] && !sb[c] })
	}
}

func TestElementAlgebraPropertiesQuick(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	gen := func() Element { return randomElement(r, 4) }
	cfg := &quick.Config{MaxCount: 200}

	// Union commutativity.
	if err := quick.Check(func(seed int64) bool {
		a, b := gen(), gen()
		return a.Union(b).Equal(b.Union(a))
	}, cfg); err != nil {
		t.Error(err)
	}
	// Intersection distributes over union.
	if err := quick.Check(func(seed int64) bool {
		a, b, c := gen(), gen(), gen()
		left := a.Intersect(b.Union(c))
		right := a.Intersect(b).Union(a.Intersect(c))
		return left.Equal(right)
	}, cfg); err != nil {
		t.Error(err)
	}
	// De Morgan within a universe: a \ (b ∪ c) = (a \ b) ∩ (a \ c).
	if err := quick.Check(func(seed int64) bool {
		a, b, c := gen(), gen(), gen()
		left := a.Difference(b.Union(c))
		right := a.Difference(b).Intersect(a.Difference(c))
		return left.Equal(right)
	}, cfg); err != nil {
		t.Error(err)
	}
	// Idempotence and identity laws.
	if err := quick.Check(func(seed int64) bool {
		a := gen()
		return a.Union(a).Equal(a) && a.Intersect(a).Equal(a) &&
			a.Union(Empty()).Equal(a) && a.Intersect(Empty()).IsEmpty() &&
			a.Difference(Empty()).Equal(a) && Empty().Difference(a).IsEmpty()
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestAlwaysElement(t *testing.T) {
	a := AlwaysElement()
	if !a.Contains(MustDate("01/01/1850"), ref) || !a.Contains(ref, ref) {
		t.Error("AlwaysElement must contain every chronon")
	}
	if !a.Covers(el("[01/01/70 - NOW]")) {
		t.Error("AlwaysElement must cover any element")
	}
}
