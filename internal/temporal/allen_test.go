package temporal

import (
	"math/rand"
	"testing"
)

func iv(s, e Chronon) Interval { return MustNewInterval(s, e) }

func TestAllenRelations(t *testing.T) {
	cases := []struct {
		x, y Interval
		want AllenRelation
	}{
		{iv(0, 5), iv(10, 20), Before},
		{iv(10, 20), iv(0, 5), After},
		{iv(0, 9), iv(10, 20), Meets},
		{iv(10, 20), iv(0, 9), MetBy},
		{iv(0, 15), iv(10, 20), OverlapsWith},
		{iv(10, 20), iv(0, 15), OverlappedBy},
		{iv(10, 15), iv(10, 20), Starts},
		{iv(10, 20), iv(10, 15), StartedBy},
		{iv(12, 15), iv(10, 20), During},
		{iv(10, 20), iv(12, 15), Contains},
		{iv(15, 20), iv(10, 20), Finishes},
		{iv(10, 20), iv(15, 20), FinishedBy},
		{iv(10, 20), iv(10, 20), Equals},
	}
	for _, c := range cases {
		if got := Relate(c.x, c.y, MustDate("01/01/2000")); got != c.want {
			t.Errorf("Relate(%v, %v) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestAllenWithNow(t *testing.T) {
	refT := MustDate("04/07/2026")
	open := MustNewInterval(MustDate("01/01/80"), Now)
	past := MustNewInterval(MustDate("01/01/70"), MustDate("31/12/75"))
	if got := Relate(open, past, refT); got != After {
		t.Errorf("open vs past = %v", got)
	}
	if got := Relate(past, open, refT); got != Before {
		t.Errorf("past vs open = %v", got)
	}
	inside := MustNewInterval(MustDate("01/01/90"), MustDate("31/12/95"))
	if got := Relate(inside, open, refT); got != During {
		t.Errorf("inside vs open = %v", got)
	}
}

func TestAllenExhaustive(t *testing.T) {
	// Exactly one relation holds for every pair, and the inverses pair up.
	inverse := map[AllenRelation]AllenRelation{
		Before: After, After: Before, Meets: MetBy, MetBy: Meets,
		OverlapsWith: OverlappedBy, OverlappedBy: OverlapsWith,
		Starts: StartedBy, StartedBy: Starts,
		During: Contains, Contains: During,
		Finishes: FinishedBy, FinishedBy: Finishes,
		Equals: Equals,
	}
	r := rand.New(rand.NewSource(2))
	refT := MustDate("01/01/2000")
	for i := 0; i < 2000; i++ {
		xs := Chronon(r.Intn(30))
		xe := xs + Chronon(r.Intn(10))
		ys := Chronon(r.Intn(30))
		ye := ys + Chronon(r.Intn(10))
		x, y := iv(xs, xe), iv(ys, ye)
		rel := Relate(x, y, refT)
		inv := Relate(y, x, refT)
		if inverse[rel] != inv {
			t.Fatalf("Relate(%v,%v)=%v but Relate(%v,%v)=%v (want inverse %v)",
				x, y, rel, y, x, inv, inverse[rel])
		}
	}
}

func TestAllenStrings(t *testing.T) {
	for r := Before; r <= Equals; r++ {
		if r.String() == "unknown" {
			t.Errorf("relation %d has no name", r)
		}
	}
	if AllenRelation(99).String() != "unknown" {
		t.Error("out-of-range must be unknown")
	}
}
