package temporal

// AllenRelation is one of the thirteen basic relations of Allen's interval
// algebra, useful for temporal predicates over validity intervals.
type AllenRelation int

// The thirteen Allen relations. X <relation> Y reads left to right:
// Before means X ends before Y starts, MetBy means Y meets X, and so on.
const (
	Before AllenRelation = iota
	After
	Meets
	MetBy
	OverlapsWith
	OverlappedBy
	Starts
	StartedBy
	During
	Contains
	Finishes
	FinishedBy
	Equals
)

// String names the relation.
func (r AllenRelation) String() string {
	switch r {
	case Before:
		return "before"
	case After:
		return "after"
	case Meets:
		return "meets"
	case MetBy:
		return "met-by"
	case OverlapsWith:
		return "overlaps"
	case OverlappedBy:
		return "overlapped-by"
	case Starts:
		return "starts"
	case StartedBy:
		return "started-by"
	case During:
		return "during"
	case Contains:
		return "contains"
	case Finishes:
		return "finishes"
	case FinishedBy:
		return "finished-by"
	case Equals:
		return "equals"
	default:
		return "unknown"
	}
}

// Relate classifies the relation of interval x to interval y under the
// reference time ref (resolving NOW endpoints). Exactly one of the
// thirteen relations holds for any two non-empty intervals.
func Relate(x, y Interval, ref Chronon) AllenRelation {
	xs, xe := x.Start.Resolve(ref), x.End.Resolve(ref)
	ys, ye := y.Start.Resolve(ref), y.End.Resolve(ref)
	switch {
	case xe < ys:
		// Disjoint, x earlier: adjacent chronons meet, a gap is before.
		if xe.Succ() == ys {
			return Meets
		}
		return Before
	case ye < xs:
		if ye.Succ() == xs {
			return MetBy
		}
		return After
	case xs == ys && xe == ye:
		return Equals
	case xs == ys && xe < ye:
		return Starts
	case xs == ys && xe > ye:
		return StartedBy
	case xe == ye && xs > ys:
		return Finishes
	case xe == ye && xs < ys:
		return FinishedBy
	case xs > ys && xe < ye:
		return During
	case xs < ys && xe > ye:
		return Contains
	case xs < ys:
		return OverlapsWith
	default:
		return OverlappedBy
	}
}
