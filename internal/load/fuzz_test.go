package load

import (
	"strings"
	"testing"

	"mddm/internal/dimension"
)

// FuzzLoadDimensionCSV feeds arbitrary bytes through the dimension CSV
// loader. Malformed input must produce an error — never a panic — and a
// successfully loaded dimension must answer the basic hierarchy queries
// the rest of the system immediately asks of it.
func FuzzLoadDimensionCSV(f *testing.F) {
	// Seed with the package's doc examples and the known error shapes.
	f.Add(areaCSV)
	f.Add(diagCSV)
	f.Add("low,family\nx,\ny,F\n") // ragged row: non-partitioning, valid
	f.Add("")
	f.Add("a,b\nx,y,z,w")
	f.Add("a,a\nx,y")
	f.Add("low,family\nx,y\ny,x")
	f.Add("\"unterminated")
	f.Add("a,,b\nx,y,z\n")
	f.Add(" a , a \nx,y\n")
	f.Fuzz(func(t *testing.T, src string) {
		d, err := Dimension(DimensionSpec{
			Name:    "D",
			AggType: dimension.Constant,
			Kind:    dimension.KindString,
			R:       strings.NewReader(src),
		})
		if err != nil {
			return // rejected input: that is the contract
		}
		if d == nil {
			t.Fatal("nil dimension without error")
		}
		ctx := dimension.Context{}
		_ = d.IsStrict()
		_ = d.IsPartitioning()
		bottom := d.Type().Bottom()
		for _, v := range d.Category(bottom) {
			_ = d.Ancestors(v, ctx)
		}
	})
}

// FuzzLoadFactCSV feeds arbitrary bytes through the fact-table loader
// against the doc-example dimensions. Malformed input must error, never
// panic; an accepted table must yield a validated MO.
func FuzzLoadFactCSV(f *testing.F) {
	f.Add(factCSV)
	f.Add("Residence\nA1\nA2\n")
	f.Add("Residence\nC1\n") // mixed granularity
	f.Add("")
	f.Add("id,Nope\np1,x\n")
	f.Add("Residence\nA1\n")
	f.Add("id,Residence\n,A1\n")
	f.Add("id,Residence,Residence:from\np1,A1,bogus\n")
	f.Add("id,Residence,Residence:from,Residence:to\np1,A1,01/01/90,01/01/80\n")
	f.Add("id,Residence,Residence:prob\np1,A1,2.5\n")
	f.Add("id,Residence,Diagnosis\np1,A1,L3\n")
	f.Add("\"quote")
	f.Fuzz(func(t *testing.T, src string) {
		dims := map[string]*dimension.Dimension{
			"Residence": mustDim(t, "Residence", areaCSV),
			"Diagnosis": mustDim(t, "Diagnosis", diagCSV),
		}
		m, err := Facts(FactSpec{
			FactType:   "F",
			IDColumn:   "id",
			Dimensions: dims,
			R:          strings.NewReader(src),
		})
		if err != nil {
			return
		}
		if m == nil {
			t.Fatal("nil MO without error")
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("loaded MO fails validation: %v", err)
		}
	})
}

func mustDim(t *testing.T, name, csv string) *dimension.Dimension {
	t.Helper()
	d, err := Dimension(DimensionSpec{Name: name, AggType: dimension.Constant, Kind: dimension.KindString, R: strings.NewReader(csv)})
	if err != nil {
		t.Fatal(err)
	}
	return d
}
