// Package load builds multidimensional objects from CSV files — the
// star-schema ETL path a downstream adopter needs: one fact table plus one
// CSV per dimension describing its hierarchy rows.
//
// A dimension CSV has a header naming the categories bottom-up, e.g.
//
//	area,county,region
//	A1,North Jutland,Jutland
//	A2,Århus County,Jutland
//
// Each row lists one bottom value's ancestors; values are created on first
// sight and the order edges follow the columns left to right. Ragged rows
// (empty cells) end the chain early, producing non-partitioning
// hierarchies; repeated bottom values with different parents produce
// non-strict ones — both are first-class in the model.
//
// The fact table names its dimension columns in the header; each column
// maps to a dimension by name and each cell to a value of that dimension's
// bottom category (or any category — mixed granularity is allowed when the
// cell names a known higher value). Optional valid-time columns
// "<dim>:from" and "<dim>:to" attach intervals to that column's pairs, and
// "<dim>:prob" attaches probabilities.
package load

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mddm/internal/core"
	"mddm/internal/dimension"
	"mddm/internal/fact"
	"mddm/internal/temporal"
)

// DimensionSpec describes one dimension to load.
type DimensionSpec struct {
	// Name is the dimension (and dimension-type) name.
	Name string
	// AggType and Kind apply to the bottom category.
	AggType dimension.AggType
	Kind    dimension.ValueKind
	// R reads the dimension CSV.
	R io.Reader
}

// Dimension loads a dimension from its hierarchy CSV.
func Dimension(spec DimensionSpec) (*dimension.Dimension, error) {
	rows, err := csv.NewReader(spec.R).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("load: dimension %s: %w", spec.Name, err)
	}
	if len(rows) < 1 || len(rows[0]) < 1 {
		return nil, fmt.Errorf("load: dimension %s: missing header", spec.Name)
	}
	cats := rows[0]
	dt := dimension.NewDimensionType(spec.Name)
	for i, c := range cats {
		at := dimension.Constant
		k := dimension.KindString
		if i == 0 {
			at, k = spec.AggType, spec.Kind
		}
		if err := dt.AddCategoryType(strings.TrimSpace(c), at, k); err != nil {
			return nil, fmt.Errorf("load: dimension %s: %w", spec.Name, err)
		}
	}
	for i := 0; i+1 < len(cats); i++ {
		if err := dt.AddOrder(strings.TrimSpace(cats[i]), strings.TrimSpace(cats[i+1])); err != nil {
			return nil, err
		}
	}
	if err := dt.Finalize(); err != nil {
		return nil, err
	}
	d := dimension.New(dt)
	for ln, row := range rows[1:] {
		if len(row) > len(cats) {
			return nil, fmt.Errorf("load: dimension %s row %d: %d cells for %d categories", spec.Name, ln+2, len(row), len(cats))
		}
		prev := ""
		for i, cell := range row {
			v := strings.TrimSpace(cell)
			if v == "" {
				break // ragged row: chain ends here
			}
			cat := strings.TrimSpace(cats[i])
			if !d.Has(v) {
				if err := d.AddValue(cat, v); err != nil {
					return nil, fmt.Errorf("load: dimension %s row %d: %w", spec.Name, ln+2, err)
				}
			} else if got, _ := d.CategoryOf(v); got != cat {
				return nil, fmt.Errorf("load: dimension %s row %d: value %q in categories %q and %q", spec.Name, ln+2, v, got, cat)
			}
			if prev != "" {
				if err := d.AddEdgeAnnot(prev, v, dimension.Always()); err != nil {
					return nil, fmt.Errorf("load: dimension %s row %d: %w", spec.Name, ln+2, err)
				}
			}
			prev = v
		}
	}
	return d, nil
}

// FactSpec describes the fact table to load.
type FactSpec struct {
	// FactType names the fact type; IDColumn names the column holding fact
	// identities ("" auto-generates row ids).
	FactType string
	IDColumn string
	// Dimensions supplies the loaded dimensions by name.
	Dimensions map[string]*dimension.Dimension
	// R reads the fact CSV.
	R io.Reader
}

// Facts loads the fact table and assembles the MO.
func Facts(spec FactSpec) (*core.MO, error) {
	rows, err := csv.NewReader(spec.R).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("load: facts: %w", err)
	}
	if len(rows) < 1 {
		return nil, fmt.Errorf("load: facts: missing header")
	}
	header := rows[0]

	type colInfo struct {
		dim      string
		from, to int // column indexes of :from/:to, -1 when absent
		prob     int
		valueCol int
	}
	var cols []colInfo
	idCol := -1
	index := map[string]int{}
	for i, h := range header {
		index[strings.TrimSpace(h)] = i
	}
	hasTime := false
	for i, h := range header {
		name := strings.TrimSpace(h)
		if name == spec.IDColumn && spec.IDColumn != "" {
			idCol = i
			continue
		}
		if strings.Contains(name, ":") {
			continue // qualifier column, resolved from its base column
		}
		d, ok := spec.Dimensions[name]
		if !ok {
			return nil, fmt.Errorf("load: facts: column %q matches no dimension (have %v)", name, dimNames(spec.Dimensions))
		}
		_ = d
		ci := colInfo{dim: name, valueCol: i, from: -1, to: -1, prob: -1}
		if j, ok := index[name+":from"]; ok {
			ci.from = j
			hasTime = true
		}
		if j, ok := index[name+":to"]; ok {
			ci.to = j
			hasTime = true
		}
		if j, ok := index[name+":prob"]; ok {
			ci.prob = j
		}
		cols = append(cols, ci)
	}
	if spec.IDColumn != "" && idCol < 0 {
		return nil, fmt.Errorf("load: facts: id column %q not in header", spec.IDColumn)
	}

	var types []*dimension.DimensionType
	for _, ci := range cols {
		types = append(types, spec.Dimensions[ci.dim].Type())
	}
	s, err := core.NewSchema(spec.FactType, types...)
	if err != nil {
		return nil, err
	}
	m := core.NewMO(s)
	for _, ci := range cols {
		if err := m.SetDimension(ci.dim, spec.Dimensions[ci.dim]); err != nil {
			return nil, err
		}
	}
	if hasTime {
		m.SetKind(core.ValidTime)
	}

	for ln, row := range rows[1:] {
		id := fmt.Sprintf("%s#%d", spec.FactType, ln+1)
		if idCol >= 0 {
			id = strings.TrimSpace(row[idCol])
			if id == "" {
				return nil, fmt.Errorf("load: facts row %d: empty id", ln+2)
			}
		}
		for _, ci := range cols {
			cell := strings.TrimSpace(row[ci.valueCol])
			if cell == "" {
				continue // unknown characterization: EnsureTotal adds (f,⊤)
			}
			d := spec.Dimensions[ci.dim]
			if !d.Has(cell) {
				return nil, fmt.Errorf("load: facts row %d: dimension %s has no value %q", ln+2, ci.dim, cell)
			}
			a := dimension.Always()
			if ci.from >= 0 || ci.to >= 0 {
				fromS, toS := "BEGINNING", "NOW"
				if ci.from >= 0 && strings.TrimSpace(row[ci.from]) != "" {
					fromS = strings.TrimSpace(row[ci.from])
				}
				if ci.to >= 0 && strings.TrimSpace(row[ci.to]) != "" {
					toS = strings.TrimSpace(row[ci.to])
				}
				from, err := temporal.ParseDate(fromS)
				if err != nil {
					return nil, fmt.Errorf("load: facts row %d: %w", ln+2, err)
				}
				to, err := temporal.ParseDate(toS)
				if err != nil {
					return nil, fmt.Errorf("load: facts row %d: %w", ln+2, err)
				}
				if from > to {
					return nil, fmt.Errorf("load: facts row %d: empty interval %s-%s", ln+2, fromS, toS)
				}
				iv, err := temporal.NewInterval(from, to)
				if err != nil {
					return nil, fmt.Errorf("load: facts row %d: %w", ln+2, err)
				}
				a = dimension.ValidDuring(temporal.NewElement(iv))
			}
			if ci.prob >= 0 && strings.TrimSpace(row[ci.prob]) != "" {
				p, err := strconv.ParseFloat(strings.TrimSpace(row[ci.prob]), 64)
				if err != nil || p < 0 || p > 1 {
					return nil, fmt.Errorf("load: facts row %d: bad probability %q", ln+2, row[ci.prob])
				}
				a = a.WithProb(p)
			}
			if err := m.RelateAnnot(ci.dim, id, cell, a); err != nil {
				return nil, fmt.Errorf("load: facts row %d: %w", ln+2, err)
			}
		}
		if !m.Facts().Has(id) {
			// A row with all-empty dimension cells still contributes a fact.
			m.AddFact(factOf(id))
		}
	}
	m.EnsureTotal()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

func dimNames(ds map[string]*dimension.Dimension) []string {
	out := make([]string, 0, len(ds))
	for n := range ds {
		out = append(out, n)
	}
	return out
}

func factOf(id string) fact.Fact { return fact.NewFact(id) }
