package load

import (
	"strings"
	"testing"

	"mddm/internal/agg"
	"mddm/internal/algebra"
	"mddm/internal/dimension"
	"mddm/internal/temporal"
)

const areaCSV = `area,county,region
A1,C1,R1
A2,C1,R1
A3,C2,R1
A4,C3,R2
`

const diagCSV = `low,family,group
L1,F1,G1
L2,F1,G1
L3,F2,G1
L3,F1,G1
`

func loadDim(t *testing.T, name, csv string, at dimension.AggType, k dimension.ValueKind) *dimension.Dimension {
	t.Helper()
	d, err := Dimension(DimensionSpec{Name: name, AggType: at, Kind: k, R: strings.NewReader(csv)})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestLoadDimension(t *testing.T) {
	d := loadDim(t, "Residence", areaCSV, dimension.Constant, dimension.KindString)
	if d.Type().Bottom() != "area" {
		t.Errorf("bottom = %q", d.Type().Bottom())
	}
	if got := d.Category("area"); len(got) != 4 {
		t.Errorf("areas = %v", got)
	}
	ctx := dimension.Context{}
	if got := d.AncestorsIn("region", "A1", ctx); len(got) != 1 || got[0] != "R1" {
		t.Errorf("ancestors = %v", got)
	}
	if !d.IsStrict() || !d.IsPartitioning() {
		t.Error("loaded residence must be strict and partitioning")
	}

	// The diagnosis CSV repeats L3 under two families: non-strict.
	nd := loadDim(t, "Diagnosis", diagCSV, dimension.Constant, dimension.KindString)
	if nd.IsStrict() {
		t.Error("repeated bottom values must yield a non-strict hierarchy")
	}
	if got := nd.AncestorsIn("family", "L3", ctx); len(got) != 2 {
		t.Errorf("L3 families = %v", got)
	}
}

func TestLoadDimensionErrors(t *testing.T) {
	cases := []string{
		"",                     // no header
		"a,b\nx,y,z,w",         // too many cells (csv lib errors first)
		"a,a\nx,y",             // duplicate category
		"low,family\nx,y\ny,x", // value in two categories
	}
	for _, src := range cases {
		if _, err := Dimension(DimensionSpec{Name: "D", R: strings.NewReader(src)}); err == nil {
			t.Errorf("Dimension(%q): expected error", src)
		}
	}
	// Ragged rows are fine (non-partitioning).
	d, err := Dimension(DimensionSpec{Name: "D", R: strings.NewReader("low,family\nx,\ny,F\n")})
	if err != nil {
		t.Fatal(err)
	}
	if d.IsPartitioning() {
		t.Error("ragged hierarchy must be non-partitioning")
	}
}

const factCSV = `id,Residence,Diagnosis,Diagnosis:from,Diagnosis:to,Diagnosis:prob
p1,A1,L1,01/01/80,NOW,
p2,A2,L3,01/01/85,31/12/90,0.9
p3,A4,,,,
`

func TestLoadFacts(t *testing.T) {
	dims := map[string]*dimension.Dimension{
		"Residence": loadDim(t, "Residence", areaCSV, dimension.Constant, dimension.KindString),
		"Diagnosis": loadDim(t, "Diagnosis", diagCSV, dimension.Constant, dimension.KindString),
	}
	m, err := Facts(FactSpec{FactType: "Patient", IDColumn: "id", Dimensions: dims, R: strings.NewReader(factCSV)})
	if err != nil {
		t.Fatal(err)
	}
	if m.Facts().Len() != 3 {
		t.Fatalf("facts = %v", m.Facts().IDs())
	}
	// Time and probability columns are honored.
	a, ok := m.Relation("Diagnosis").Annot("p2", "L3")
	if !ok {
		t.Fatal("pair missing")
	}
	if want := "[01/01/1985 - 31/12/1990]"; a.Time.Valid.String() != want {
		t.Errorf("time = %v", a.Time.Valid)
	}
	if a.Prob != 0.9 {
		t.Errorf("prob = %v", a.Prob)
	}
	// p3 has no diagnosis: characterized by ⊤.
	if got := m.Relation("Diagnosis").ValuesOf("p3"); len(got) != 1 || got[0] != dimension.TopValue {
		t.Errorf("p3 diagnoses = %v", got)
	}
	// The loaded MO is queryable through the algebra.
	ctx := dimension.CurrentContext(temporal.MustDate("01/01/2000"))
	res, err := algebra.Aggregate(m, algebra.AggSpec{
		ResultDim: "N",
		Func:      agg.MustLookup("SETCOUNT"),
		GroupBy:   map[string]string{"Residence": "region"},
	}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	n := res.MO.Relation("N")
	if !n.Has("{p1,p2}", "2") || !n.Has("{p3}", "1") {
		t.Errorf("region counts = %v", n.Pairs())
	}
}

func TestLoadFactsErrors(t *testing.T) {
	dims := map[string]*dimension.Dimension{
		"Residence": loadDim(t, "Residence", areaCSV, dimension.Constant, dimension.KindString),
	}
	cases := []struct {
		name, csv string
		idCol     string
	}{
		{"empty", "", ""},
		{"unknown column", "id,Nope\np1,x\n", "id"},
		{"missing id column", "Residence\nA1\n", "id"},
		{"empty id", "id,Residence\n,A1\n", "id"},
		{"unknown value", "id,Residence\np1,Atlantis\n", "id"},
		{"bad from", "id,Residence,Residence:from\np1,A1,bogus\n", "id"},
		{"bad to", "id,Residence,Residence:to\np1,A1,bogus\n", "id"},
		{"inverted interval", "id,Residence,Residence:from,Residence:to\np1,A1,01/01/90,01/01/80\n", "id"},
		{"bad prob", "id,Residence,Residence:prob\np1,A1,2.5\n", "id"},
	}
	for _, c := range cases {
		_, err := Facts(FactSpec{FactType: "F", IDColumn: c.idCol, Dimensions: dims, R: strings.NewReader(c.csv)})
		if err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// Auto-generated ids.
	m, err := Facts(FactSpec{FactType: "F", Dimensions: dims, R: strings.NewReader("Residence\nA1\nA2\n")})
	if err != nil {
		t.Fatal(err)
	}
	if m.Facts().Len() != 2 || !m.Facts().Has("F#1") {
		t.Errorf("auto ids = %v", m.Facts().IDs())
	}
	// Mixed granularity: a fact related directly to a county.
	m2, err := Facts(FactSpec{FactType: "F", Dimensions: dims, R: strings.NewReader("Residence\nC1\n")})
	if err != nil {
		t.Fatal(err)
	}
	if !m2.Relation("Residence").Has("F#1", "C1") {
		t.Error("mixed-granularity cell must relate to the county value")
	}
}

// TestLoadTable1Parity rebuilds the paper's diagnosis analysis from CSV
// text generated out of the embedded Table 1 and checks it agrees with the
// hand-built case-study MO on the Figure 3 query.
func TestLoadTable1Parity(t *testing.T) {
	// Dimension CSV: one row per low-level diagnosis chain of Table 1's
	// WHO hierarchy (3⊑7 has no group; use a ragged row).
	diagCSV := strings.Join([]string{
		"Low-level Diagnosis,Diagnosis Family,Diagnosis Group",
		"3,7,",   // 1970s chain ends at the family level
		"3,8,11", // user-defined family + Example 10's change link
		"5,4,12",
		"5,9,11",
		"6,4,12",
		"6,10,11",
	}, "\n")
	factsCSV := strings.Join([]string{
		"id,Diagnosis",
		"1,9",
		"2,3",
		"2,8",
		"2,5",
		"2,9",
	}, "\n")
	d, err := Dimension(DimensionSpec{Name: "Diagnosis", R: strings.NewReader(diagCSV)})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Facts(FactSpec{FactType: "Patient", IDColumn: "id",
		Dimensions: map[string]*dimension.Dimension{"Diagnosis": d},
		R:          strings.NewReader(factsCSV)})
	if err != nil {
		t.Fatal(err)
	}
	ctx := dimension.CurrentContext(temporal.MustDate("01/01/1999"))
	res, err := algebra.Aggregate(m, algebra.AggSpec{
		ResultDim: "Count",
		Func:      agg.MustLookup("SETCOUNT"),
		GroupBy:   map[string]string{"Diagnosis": "Diagnosis Group"},
	}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 3: group 11 → {1,2}, group 12 → {2}.
	cnt := res.MO.Relation("Count")
	if !cnt.Has("{1,2}", "2") || !cnt.Has("{2}", "1") {
		t.Errorf("loaded Figure 3 = %v", cnt.Pairs())
	}
}
