package segment

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"mddm/internal/core"
	"mddm/internal/dimension"
	"mddm/internal/fact"
	"mddm/internal/storage"
)

// An engine snapshot is the O(facts) cold-start artifact: the store's
// entire materialized state — the dense fact order plus every
// fact–dimension pair of every relation — written at fold time so the
// next open can reconstruct the MO relations and the engine's direct
// bitmaps without replaying history record by record or re-scanning the
// pair space. Like the column checkpoint it is derived acceleration, not
// a source of truth: any validation failure rejects it with a counter
// and recovery falls back to the replay path, whose input (segments +
// WAL) the snapshot never replaces. Unlike the checkpoint it carries no
// context fingerprint — pairs are context-independent facts of the
// model, and the direct bitmaps are re-derived at decode time under the
// opening context's Admits filter, exactly as BuildEngine would.
//
// The fact list doubles as the verified positional order for the column
// checkpoint: codes in an .mcol file are positional over the fold-time
// engine order, which is NOT the sorted order a from-scratch rebuild
// produces once appended ids sort before existing ones. Only a recovery
// that restored this snapshot may install the checkpoint.
//
//	"MSNP" | version u32 | baseFP u64 | seq u64
//	facts:  u32 n, n × str                  (engine dense order)
//	dims:   u32 nd, per schema dimension (schema order):
//	        name str
//	        dict:   u32 nv, nv × str        (value ids, first-seen order)
//	        groups: u32 ng, ng × (factIdx u32 | u32 nvals |
//	                nvals × (valIdx u32 | annot))
//	crc32c u32 over everything above
//
// Groups cover only facts with at least one pair in the dimension, each
// fact at most once.

const snapMagic = "MSNP"

// snapImage is a decoded, fully validated snapshot, ready to install:
// nothing in it aliases the store's live state, so a caller that rejects
// it leaves the MO untouched.
type snapImage struct {
	seq      uint64
	facts    []string                              // engine dense order
	appended []string                              // facts not in the base MO, in dense order
	rels     map[string]*fact.Relation             // per dimension: every pair
	direct   map[string]map[string]*storage.Bitmap // per dimension: admitted-pair bitmaps
}

// encodeSnapshot serializes the store's materialized state at seq: the
// engine's dense fact order and, per schema dimension, the relation's
// pairs in a dictionary-interned group form.
func encodeSnapshot(baseFP, seq uint64, m *core.MO, eng *storage.Engine) []byte {
	facts := eng.ExportFacts()
	e := &enc{}
	e.b = append(e.b, snapMagic...)
	e.u32(formatVersion)
	e.u64(baseFP)
	e.u64(seq)
	e.u32(uint32(len(facts)))
	for _, f := range facts {
		e.str(f)
	}
	names := m.Schema().DimensionNames()
	e.u32(uint32(len(names)))
	for _, name := range names {
		e.str(name)
		r := m.Relation(name)
		vals := newDict()
		groups := &enc{}
		ng := 0
		if r != nil {
			for i, f := range facts {
				nv := r.ValuesLen(f)
				if nv == 0 {
					continue
				}
				ng++
				groups.u32(uint32(i))
				groups.u32(uint32(nv))
				r.RangeValues(f, func(v string, a dimension.Annot) bool {
					vals.add(v)
					groups.u32(vals.id[v])
					groups.annot(a)
					return true
				})
			}
		}
		e.u32(uint32(len(vals.order)))
		for _, v := range vals.order {
			e.str(v)
		}
		e.u32(uint32(ng))
		e.b = append(e.b, groups.b...)
	}
	e.u32(crc32.Checksum(e.b, castagnoli))
	return e.b
}

// decodeSnapshot validates and parses a snapshot image against the live
// base MO and the opening context, building the direct bitmaps a restore
// would install and deferred relations whose maps materialize on first
// access. Every failure is a typed error and
// leaves m untouched — validation is complete before the caller applies
// anything. Checks beyond the envelope (magic, version, fingerprint,
// CRC-32C): the dimension sections must name the schema's dimensions in
// schema order, every dictionary value must exist in its dimension, the
// fact list must extend the base's facts by exactly seq new ids with no
// duplicates, and every group and pair reference must be in range with
// no fact or value repeated.
func decodeSnapshot(b []byte, baseFP uint64, m *core.MO, ectx dimension.Context) (*snapImage, error) {
	if len(b) < 4+4+8+8+4+4+4 {
		return nil, fmt.Errorf("%w: snapshot truncated at %d bytes", ErrCorrupt, len(b))
	}
	if string(b[:4]) != snapMagic {
		return nil, fmt.Errorf("%w: bad snapshot magic %q", ErrCorrupt, b[:4])
	}
	body, sum := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if err := checksumOK(body, sum); err != nil {
		return nil, fmt.Errorf("snapshot file: %w", err)
	}
	d := &dec{b: body, off: 4}
	ver, err := d.u32()
	if err != nil {
		return nil, err
	}
	if ver != formatVersion {
		return nil, fmt.Errorf("%w: snapshot format version %d, want %d", ErrCorrupt, ver, formatVersion)
	}
	fp, err := d.u64()
	if err != nil {
		return nil, err
	}
	if fp != baseFP {
		return nil, fmt.Errorf("%w: snapshot fingerprint %016x, base is %016x", ErrBaseMismatch, fp, baseFP)
	}
	img := &snapImage{
		rels:   map[string]*fact.Relation{},
		direct: map[string]map[string]*storage.Bitmap{},
	}
	if img.seq, err = d.u64(); err != nil {
		return nil, err
	}
	nf, err := d.count(1<<30, "snapshot fact")
	if err != nil {
		return nil, err
	}
	if nf*4 > d.remaining() {
		return nil, fmt.Errorf("%w: snapshot fact count %d exceeds remaining bytes", ErrCorrupt, nf)
	}
	baseLen := m.Facts().Len()
	if uint64(nf) != uint64(baseLen)+img.seq {
		return nil, fmt.Errorf("%w: snapshot holds %d facts, base %d + seq %d demand %d",
			ErrCorrupt, nf, baseLen, img.seq, uint64(baseLen)+img.seq)
	}
	img.facts = make([]string, nf)
	seen := make(map[string]struct{}, nf)
	for i := range img.facts {
		f, err := d.str()
		if err != nil {
			return nil, err
		}
		if f == "" {
			return nil, fmt.Errorf("%w: snapshot fact %d has empty id", ErrCorrupt, i)
		}
		if _, dup := seen[f]; dup {
			return nil, fmt.Errorf("%w: snapshot repeats fact %q", ErrCorrupt, f)
		}
		seen[f] = struct{}{}
		img.facts[i] = f
		if !m.Facts().Has(f) {
			img.appended = append(img.appended, f)
		}
	}
	if uint64(len(img.appended)) != img.seq {
		// Equivalently: some base fact is missing (the counts above fix the
		// total, so extra appended ids means absent base ids).
		return nil, fmt.Errorf("%w: snapshot covers %d appended facts, seq is %d — base coverage broken",
			ErrCorrupt, len(img.appended), img.seq)
	}
	names := m.Schema().DimensionNames()
	nd, err := d.count(1<<16, "snapshot dimension")
	if err != nil {
		return nil, err
	}
	if nd != len(names) {
		return nil, fmt.Errorf("%w: snapshot has %d dimensions, schema has %d", ErrCorrupt, nd, len(names))
	}
	for k := 0; k < nd; k++ {
		name, err := d.str()
		if err != nil {
			return nil, err
		}
		if name != names[k] {
			return nil, fmt.Errorf("%w: snapshot dimension %d is %q, schema says %q", ErrCorrupt, k, name, names[k])
		}
		dim := m.Dimension(name)
		if dim == nil {
			return nil, fmt.Errorf("%w: schema dimension %q has no instance", ErrCorrupt, name)
		}
		nv, err := d.count(1<<24, "snapshot value")
		if err != nil {
			return nil, err
		}
		if nv*4 > d.remaining() {
			return nil, fmt.Errorf("%w: snapshot value count %d exceeds remaining bytes", ErrCorrupt, nv)
		}
		vals := make([]string, nv)
		for vi := range vals {
			v, err := d.str()
			if err != nil {
				return nil, err
			}
			if !dim.Has(v) {
				return nil, fmt.Errorf("%w: snapshot dimension %q has no value %q", ErrCorrupt, name, v)
			}
			vals[vi] = v
		}
		ng, err := d.count(1<<30, "snapshot group")
		if err != nil {
			return nil, err
		}
		if ng > nf {
			return nil, fmt.Errorf("%w: snapshot dimension %q has %d groups over %d facts", ErrCorrupt, name, ng, nf)
		}
		// The groups decode into flat columnar slices, fully validated —
		// and the relation's per-fact maps build lazily from them on first
		// access. The bitmaps the engine serves from are derived eagerly
		// here, so a restore that never touches the relation never builds
		// its maps at all.
		grouped := make([]bool, nf)
		valSeen := make([]uint32, nv) // per-value marker: group index + 1
		bms := map[string]*storage.Bitmap{}
		gFact := make([]uint32, ng)
		gLen := make([]uint32, ng)
		pVal := make([]uint32, 0, 2*ng)
		pAnn := make([]dimension.Annot, 0, 2*ng)
		for g := 0; g < ng; g++ {
			fi, err := d.u32()
			if err != nil {
				return nil, err
			}
			if int(fi) >= nf {
				return nil, fmt.Errorf("%w: snapshot group references fact %d of %d", ErrCorrupt, fi, nf)
			}
			if grouped[fi] {
				return nil, fmt.Errorf("%w: snapshot dimension %q repeats fact %q", ErrCorrupt, name, img.facts[fi])
			}
			grouped[fi] = true
			gFact[g] = fi
			nvals, err := d.count(maxPairs, "snapshot pair")
			if err != nil {
				return nil, err
			}
			if nvals == 0 {
				return nil, fmt.Errorf("%w: snapshot group for fact %q has no pairs", ErrCorrupt, img.facts[fi])
			}
			gLen[g] = uint32(nvals)
			for j := 0; j < nvals; j++ {
				vi, err := d.u32()
				if err != nil {
					return nil, err
				}
				if int(vi) >= nv {
					return nil, fmt.Errorf("%w: snapshot pair references value %d of %d", ErrCorrupt, vi, nv)
				}
				if valSeen[vi] == uint32(g+1) {
					return nil, fmt.Errorf("%w: snapshot group for fact %q repeats value %q",
						ErrCorrupt, img.facts[fi], vals[vi])
				}
				valSeen[vi] = uint32(g + 1)
				a, err := d.annot()
				if err != nil {
					return nil, err
				}
				pVal = append(pVal, vi)
				pAnn = append(pAnn, a)
				// The direct bitmaps admit exactly what BuildEngine admits.
				if ectx.Admits(a) {
					v := vals[vi]
					bm := bms[v]
					if bm == nil {
						bm = storage.NewBitmap(nf)
						bms[v] = bm
					}
					bm.Set(int(fi))
				}
			}
		}
		facts := img.facts
		img.rels[name] = fact.NewRelationDeferred(len(gFact), func(r *fact.Relation) {
			p := 0
			for g, fi := range gFact {
				vs := make(map[string]dimension.Annot, gLen[g])
				for j := uint32(0); j < gLen[g]; j++ {
					vs[vals[pVal[p]]] = pAnn[p]
					p++
				}
				r.AdoptPairs(facts[fi], vs)
			}
		})
		img.direct[name] = bms
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after snapshot dimensions", ErrCorrupt, d.remaining())
	}
	return img, nil
}
