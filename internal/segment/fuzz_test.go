package segment

import (
	"context"
	"testing"

	"mddm/internal/dimension"
	"mddm/internal/storage"
)

// FuzzSegmentDecode throws arbitrary bytes at every persisted-artifact
// decoder. The contract under fuzz is the package's untrusted-bytes
// contract: a typed error or a successful parse — never a panic, never
// an unbounded allocation. The seed corpus is real encoded artifacts
// (record, WAL image, segment, checkpoint) so the fuzzer starts on the
// interesting side of the format instead of bouncing off the magic
// numbers.
func FuzzSegmentDecode(f *testing.F) {
	rec := FactAppend{Seq: 3, FactID: "pat-f", Pairs: []Pair{
		{Dim: "Diagnosis", Value: "d1", Annot: dimension.Always()},
		{Dim: "Residence", Value: "a1", Annot: dimension.Annot{Time: dimension.Always().Time, Prob: 0.5}},
	}}
	f.Add(encodeRecord(rec))

	m := base(f)
	recs := testRecords(f, m, 5)
	for i := range recs {
		recs[i].Seq = uint64(i)
	}
	f.Add(encodeSegment(testFP, 0, uint64(len(recs)), recs))

	wal := encodeWALHeader(walHeader{baseFP: testFP, startSeq: 0})
	for _, r := range recs {
		wal = append(wal, encodeFrame(encodeRecord(r))...)
	}
	f.Add(wal)

	eng, err := storage.BuildEngine(context.Background(), m, testCtx())
	if err != nil {
		f.Fatal(err)
	}
	if err := eng.WarmColumns(context.Background(), 2); err != nil {
		f.Fatal(err)
	}
	f.Add(encodeCheckpoint(testFP, testFP+1, uint64(len(recs)), eng))

	fp := fingerprintMO(m)
	f.Add(encodeSnapshot(fp, 0, m, eng))

	f.Fuzz(func(t *testing.T, b []byte) {
		if _, err := decodeRecord(b); err == nil {
			// A successful parse must re-encode decodably (canonical
			// annotations make this a fixpoint, not an identity).
			rec, _ := decodeRecord(b)
			if _, err := decodeRecord(encodeRecord(rec)); err != nil {
				t.Fatalf("decoded record does not re-encode: %v", err)
			}
		}
		_, _, _, _ = decodeSegment(b, testFP)
		_, _, _, _ = decodeCheckpoint(b, testFP, testFP+1, false)
		_, _, _, _ = decodeCheckpoint(b, testFP, testFP+1, true)
		if img, err := decodeSnapshot(b, fp, m, testCtx()); err == nil {
			// A successful parse promises a complete, validated image:
			// materializing every deferred relation must not panic, and the
			// pair counts must agree with the groups decoded.
			for _, r := range img.rels {
				_ = r.Len()
			}
		}
		if s, err := scanWAL(b, testFP); err == nil {
			// Intact frames must carry contiguous seqs from the header.
			for i, r := range s.recs {
				if r.Seq != s.header.startSeq+uint64(i) {
					t.Fatalf("scan returned out-of-sequence record %d at %d", r.Seq, i)
				}
			}
		}
	})
}
