//go:build unix

package segment

import (
	"os"
	"syscall"
)

// mmapFile maps the file read-only. The mapping aliases the page cache:
// kernels scan it without the file's bytes ever being copied into the
// heap. Callers own the returned mapping and release it with munmap —
// but only once no engine can still hold column views into it.
func mmapFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() == 0 {
		return nil, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmap(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	return syscall.Munmap(b)
}
