package segment

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// The manifest is the store's commit record: which artifacts are live
// and how far the WAL has been folded. It is replaced atomically (temp
// file, fsync, rename, directory fsync), so a reader always sees either
// the old commit or the new one — never a mix. A segment or checkpoint
// file not named by the manifest is an orphan from a crashed fold; it is
// deleted at open, and its records are still safe because the WAL only
// rotates after the manifest naming their segment is durable.

const (
	manifestName = "MANIFEST"
	walName      = "wal.log"
)

type manifest struct {
	Version   int        `json:"version"`
	BaseFP    string     `json:"base_fp"` // %016x of fingerprintMO
	BaseFacts int        `json:"base_facts"`
	FoldedSeq uint64     `json:"folded_seq"` // seqs < this live in segments
	Segments  []segEntry `json:"segments"`
	Columns   *ckEntry   `json:"columns,omitempty"`
	Snapshot  *ckEntry   `json:"snapshot,omitempty"`
}

type segEntry struct {
	File string `json:"file"`
	From uint64 `json:"from"`
	To   uint64 `json:"to"`
}

type ckEntry struct {
	File  string `json:"file"`
	Facts int    `json:"facts"`
	Seq   uint64 `json:"seq"`
}

// loadManifest reads and validates the manifest; ok is false when none
// exists (a fresh directory).
func loadManifest(dir string) (*manifest, bool, error) {
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	var m manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, false, fmt.Errorf("%w: manifest: %v", ErrCorrupt, err)
	}
	if m.Version != formatVersion {
		return nil, false, fmt.Errorf("%w: manifest version %d, want %d", ErrCorrupt, m.Version, formatVersion)
	}
	// Segments must tile [0, FoldedSeq) contiguously — a gap means a
	// committed range of history has no durable home.
	var at uint64
	for _, s := range m.Segments {
		if s.From != at || s.To < s.From {
			return nil, false, fmt.Errorf("%w: manifest segment %s covers [%d, %d), expected to start at %d",
				ErrCorrupt, s.File, s.From, s.To, at)
		}
		at = s.To
	}
	if at != m.FoldedSeq {
		return nil, false, fmt.Errorf("%w: manifest segments end at seq %d, folded_seq is %d", ErrCorrupt, at, m.FoldedSeq)
	}
	return &m, true, nil
}

// saveManifest atomically replaces the manifest.
func saveManifest(dir string, m *manifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return atomicWrite(dir, manifestName, append(b, '\n'))
}

// atomicWrite publishes name in dir via temp file + fsync + rename +
// directory fsync: after it returns the content is durable under its
// final name, and a crash at any point leaves either the old file or the
// new one plus at worst an orphaned *.tmp.
func atomicWrite(dir, name string, b []byte) error {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs the directory so a rename survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Some filesystems refuse directory fsync; the rename is still
	// ordered on the journal there, so a refusal is not fatal.
	_ = d.Sync()
	return nil
}
