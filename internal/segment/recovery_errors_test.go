package segment

import (
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"mddm/internal/casestudy"
	"mddm/internal/dimension"
	"mddm/internal/faultinject"
	"mddm/internal/temporal"
)

// TestDecodeTruncationSweep restamps every proper prefix of each
// artifact body with a valid CRC, so the structural decoders — not the
// checksum — must catch the damage. Every prefix must produce a typed
// error.
func TestDecodeTruncationSweep(t *testing.T) {
	seg := segBody(nil)
	for l := 0; l < len(seg); l++ {
		if _, _, _, err := decodeSegment(stamp(seg[:l]), testFP); err == nil {
			t.Fatalf("segment truncated to %d bytes decoded successfully", l)
		} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBaseMismatch) {
			t.Fatalf("segment truncated to %d: untyped error %v", l, err)
		}
	}

	ck := ckBody(1, func(e *enc) {
		e.str("D")
		e.str("C")
		e.u32(1)
		e.str("a")
		e.u32(2) // overflow
		e.u32(0)
		e.u32(0)
		e.u32(0)
		e.u32(1)
		e.u32(3) // codes
		e.pad8()
		e.u32(0)
		e.u32(0)
		e.u32(0)
	})
	for l := 0; l < len(ck); l++ {
		if _, _, _, err := decodeCheckpoint(stamp(ck[:l]), testFP, testFP+1, false); err == nil {
			t.Fatalf("checkpoint truncated to %d bytes decoded successfully", l)
		}
	}

	rec := encodeRecord(FactAppend{Seq: 1, FactID: "f", Pairs: []Pair{
		{Dim: "D", Value: "v", Annot: dimension.Annot{
			Time: temporal.Bitemporal{
				Valid: temporal.NewElement(temporal.Interval{Start: 1, End: 5}),
				Trans: temporal.AlwaysElement(),
			},
			Prob: 0.5,
		}},
	}})
	for l := 0; l < len(rec); l++ {
		if _, err := decodeRecord(rec[:l]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("record truncated to %d: err = %v, want ErrCorrupt", l, err)
		}
	}
}

func TestDictCountOverCap(t *testing.T) {
	img := stamp(segBody(func(e *enc) {
		e.u32(1<<24 + 1) // dimension dict count over the hard cap
	}))
	if _, _, _, err := decodeSegment(img, testFP); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(t.TempDir(), nil, Options{}); err == nil {
		t.Error("open with nil base accepted")
	}
	file := filepath.Join(t.TempDir(), "plainfile")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(filepath.Join(file, "sub"), base(t), Options{}); err == nil {
		t.Error("open under a plain file accepted")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, base(t), Options{}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("open over broken manifest: %v", err)
	}
}

// TestOpenCorruptWALHeader damages the header — the one part of the log
// with no intact prefix to fall back on — and expects a hard error.
func TestOpenCorruptWALHeader(t *testing.T) {
	dir := t.TempDir()
	st, _ := openRecovered(t, dir, Options{})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walName), []byte("garbage header"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, base(t), Options{}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("open over corrupt WAL header: %v", err)
	}
}

// TestOpenWALMissingRange rejects a WAL whose startSeq jumps past the
// folded prefix — a committed range of history has no durable home.
func TestOpenWALMissingRange(t *testing.T) {
	dir := t.TempDir()
	st, _ := openRecovered(t, dir, Options{})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	fp := fingerprintMO(base(t))
	hdr := encodeWALHeader(walHeader{baseFP: fp, startSeq: 5})
	if err := os.WriteFile(filepath.Join(dir, walName), hdr, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, base(t), Options{}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("open with a seq gap: %v", err)
	}
}

// TestOpenStaleWALAfterRotationCrash simulates a crash between the
// manifest commit of a fold and the WAL rotation: the surviving log is
// entirely pre-fold, every record in it already lives in a segment, and
// replay must dedup by sequence number.
func TestOpenStaleWALAfterRotationCrash(t *testing.T) {
	dir := t.TempDir()
	st, _ := openRecovered(t, dir, Options{})
	recs := testRecords(t, st.mo, 6)
	for _, rec := range recs {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil { // folds all 6 into a segment
		t.Fatal(err)
	}
	// Resurrect the pre-rotation log holding the first two records.
	fp := fingerprintMO(base(t))
	stale := encodeWALHeader(walHeader{baseFP: fp, startSeq: 0})
	for i, rec := range recs[:2] {
		rec.Seq = uint64(i)
		stale = append(stale, encodeFrame(encodeRecord(rec))...)
	}
	if err := os.WriteFile(filepath.Join(dir, walName), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, got := openRecovered(t, dir, Options{})
	if st2.Seq() != 6 {
		t.Fatalf("seq after stale-WAL open = %d, want 6", st2.Seq())
	}
	assertEngineEqual(t, got, rebuildReference(t, recs))
}

// walWithRecord writes a store whose log tail holds one hand-crafted
// record, bypassing Append's validation — the shape a corrupted or
// tampered log would present.
func walWithRecord(t *testing.T, dir string, rec FactAppend) {
	t.Helper()
	st, _ := openRecovered(t, dir, Options{})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(encodeFrame(encodeRecord(rec))); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverRejectsUnreplayableRecords(t *testing.T) {
	t.Run("duplicate-base-fact", func(t *testing.T) {
		dir := t.TempDir()
		m := base(t)
		existing := m.Facts().IDs()[0]
		lows := m.Dimension(casestudy.DimDiagnosis).CategoryAt(casestudy.CatLowLevel, testCtx())
		walWithRecord(t, dir, FactAppend{Seq: 0, FactID: existing, Pairs: []Pair{
			{Dim: casestudy.DimDiagnosis, Value: lows[0]},
		}})
		st, err := Open(dir, base(t), Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		if _, err := st.Recover(context.Background(), testCtx()); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("recover over re-appended fact: %v", err)
		}
	})
	t.Run("unknown-dimension", func(t *testing.T) {
		dir := t.TempDir()
		walWithRecord(t, dir, FactAppend{Seq: 0, FactID: "ghost", Pairs: []Pair{
			{Dim: "NoSuchDim", Value: "v"},
		}})
		st, err := Open(dir, base(t), Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		if _, err := st.Recover(context.Background(), testCtx()); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("recover over unknown dimension: %v", err)
		}
	})
}

// TestRecoverMissingSegment deletes a committed segment file: its range
// is unrecoverable and Recover must fail rather than skip it.
func TestRecoverMissingSegment(t *testing.T) {
	dir := t.TempDir()
	writeFoldedStoreWithColumns(t, dir)
	segs, _ := filepath.Glob(filepath.Join(dir, "*.mseg"))
	if len(segs) != 1 {
		t.Fatalf("segments: %v", segs)
	}
	if err := os.Remove(segs[0]); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, base(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Recover(context.Background(), testCtx()); err == nil {
		t.Fatal("recover with a missing committed segment succeeded")
	}
}

// TestRecoverSegmentManifestDisagreement swaps the file names of two
// committed segments in the manifest: each file's self-described range
// then contradicts the manifest and Recover must refuse.
func TestRecoverSegmentManifestDisagreement(t *testing.T) {
	dir := t.TempDir()
	st, _ := openRecovered(t, dir, Options{})
	recs := testRecords(t, st.mo, 10)
	for i, rec := range recs {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
		if i == 4 {
			if err := st.Fold(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	man, ok, err := loadManifest(dir)
	if err != nil || !ok || len(man.Segments) != 2 {
		t.Fatalf("expected two segments: %v ok=%v err=%v", man, ok, err)
	}
	man.Segments[0].File, man.Segments[1].File = man.Segments[1].File, man.Segments[0].File
	if err := saveManifest(dir, man); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, base(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, err := st2.Recover(context.Background(), testCtx()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("recover over swapped segments: %v", err)
	}
}

// TestCheckpointMissingFileSoft deletes the committed checkpoint file:
// a derived cache, so recovery proceeds without it. Exercised under both
// the heap and the mmap open paths.
func TestCheckpointMissingFileSoft(t *testing.T) {
	for _, opts := range []Options{{}, {MMap: true}} {
		dir := t.TempDir()
		recs := writeFoldedStoreWithColumns(t, dir)
		cols, _ := filepath.Glob(filepath.Join(dir, "*.mcol"))
		if len(cols) != 1 {
			t.Fatalf("checkpoints: %v", cols)
		}
		if err := os.Remove(cols[0]); err != nil {
			t.Fatal(err)
		}
		before := mCheckpointRejects.Value()
		_, got := openRecovered(t, dir, opts)
		if mCheckpointRejects.Value() == before {
			t.Error("reject counter did not advance")
		}
		assertEngineEqual(t, got, rebuildReference(t, recs))
	}
}

// TestCheckpointEmptyFileSoft truncates the checkpoint to zero bytes —
// the mmap path returns an empty mapping and the decoder rejects it.
func TestCheckpointEmptyFileSoft(t *testing.T) {
	dir := t.TempDir()
	recs := writeFoldedStoreWithColumns(t, dir)
	cols, _ := filepath.Glob(filepath.Join(dir, "*.mcol"))
	if err := os.Truncate(cols[0], 0); err != nil {
		t.Fatal(err)
	}
	before := mCheckpointRejects.Value()
	_, got := openRecovered(t, dir, Options{MMap: true})
	if mCheckpointRejects.Value() == before {
		t.Error("reject counter did not advance")
	}
	assertEngineEqual(t, got, rebuildReference(t, recs))
}

// TestCheckpointPerColumnRejects hand-writes a checkpoint whose columns
// are individually bad — a code array shorter than the fact prefix, and
// a dictionary the engine rejects — while the envelope (checksum, both
// fingerprints) is valid. Each bad column is skipped; recovery holds.
func TestCheckpointPerColumnRejects(t *testing.T) {
	dir := t.TempDir()
	recs := writeFoldedStoreWithColumns(t, dir)
	man, ok, err := loadManifest(dir)
	if err != nil || !ok || man.Columns == nil {
		t.Fatalf("manifest: %v ok=%v err=%v", err, ok, err)
	}
	facts := man.Columns.Facts
	fp := fingerprintMO(base(t))
	ctxFP := fingerprintCtx(testCtx())

	e := &enc{}
	e.b = append(e.b, ckMagic...)
	e.u32(formatVersion)
	e.u64(fp)
	e.u64(ctxFP)
	e.u64(uint64(facts))
	e.u64(man.Columns.Seq)
	e.u32(2)
	// Column 1: codes shorter than the fact prefix.
	e.str(casestudy.DimDiagnosis)
	e.str(casestudy.CatLowLevel)
	e.u32(1)
	e.str("x")
	e.u32(0) // overflow
	e.u32(1) // codes: just one
	e.pad8()
	e.u32(0)
	// Column 2: right length, but a dictionary the engine will reject.
	e.str(casestudy.DimDiagnosis)
	e.str(casestudy.CatGroup)
	e.u32(1)
	e.str("not-a-real-group")
	e.u32(0)
	e.u32(uint32(facts))
	e.pad8()
	for i := 0; i < facts; i++ {
		e.u32(0)
	}
	img := append(e.b, 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(img[len(img)-4:], crc32.Checksum(img[:len(img)-4], castagnoli))
	if err := os.WriteFile(filepath.Join(dir, man.Columns.File), img, 0o644); err != nil {
		t.Fatal(err)
	}

	before := mCheckpointRejects.Value()
	_, got := openRecovered(t, dir, Options{})
	if mCheckpointRejects.Value() < before+2 {
		t.Errorf("expected two per-column rejects, counter advanced by %d", mCheckpointRejects.Value()-before)
	}
	if got.HasColumn(casestudy.DimDiagnosis, casestudy.CatLowLevel) ||
		got.HasColumn(casestudy.DimDiagnosis, casestudy.CatGroup) {
		t.Error("a rejected column was installed")
	}
	assertEngineEqual(t, got, rebuildReference(t, recs))
}

// TestFoldErrors drives Fold against a poisoned store and against live
// WAL damage.
func TestFoldErrors(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	t.Run("poisoned", func(t *testing.T) {
		dir := t.TempDir()
		st, _ := openRecovered(t, dir, Options{})
		recs := testRecords(t, st.mo, 3)
		for _, rec := range recs[:2] {
			if err := st.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		faultinject.Enable(faultinject.WALTear, nil)
		_ = st.Append(recs[2])
		faultinject.Reset()
		if err := st.Fold(); err == nil {
			t.Error("fold on a poisoned store succeeded")
		}
	})
	t.Run("torn-live-wal", func(t *testing.T) {
		dir := t.TempDir()
		st, _ := openRecovered(t, dir, Options{})
		for _, rec := range testRecords(t, st.mo, 3) {
			if err := st.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		path := filepath.Join(dir, walName)
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(path, info.Size()-2); err != nil {
			t.Fatal(err)
		}
		if err := st.Fold(); !errors.Is(err, ErrCorrupt) {
			t.Errorf("fold over torn live WAL: %v", err)
		}
	})
	t.Run("wal-missing-records", func(t *testing.T) {
		dir := t.TempDir()
		st, _ := openRecovered(t, dir, Options{})
		for _, rec := range testRecords(t, st.mo, 3) {
			if err := st.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		fp := fingerprintMO(base(t))
		if err := os.WriteFile(filepath.Join(dir, walName),
			encodeWALHeader(walHeader{baseFP: fp, startSeq: 0}), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := st.Fold(); !errors.Is(err, ErrCorrupt) {
			t.Errorf("fold over emptied WAL: %v", err)
		}
	})
}
