package segment

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// A fact segment is the immutable fold of a half-open append-sequence
// range [from, to): the records the WAL acknowledged, re-encoded in a
// compact dictionary form (dimension and value names are interned once
// per segment instead of once per pair, the Kimball-style trick that
// makes append history cheap to keep forever). Segments are written to a
// temp file, fsynced, and renamed into place; after that they are never
// modified, so a whole-file CRC-32C trailer is enough to detect any
// corruption. A segment that fails its checksum is a hard error — unlike
// the column checkpoint it is the durable source of truth for its range.
//
//	"MSEG" | version u32 | baseFP u64 | from u64 | to u64
//	dims:   u32 n, n strings      (dictionary of dimension names)
//	vals:   u32 n, n strings      (dictionary of value ids)
//	recs:   per seq in [from,to): factID str | u32 npairs |
//	        npairs × (dim u32 | val u32 | annot)
//	crc32c u32 over everything above

const segMagic = "MSEG"

// encodeSegment folds recs — which must carry contiguous seqs
// [from, to) in order — into a segment image.
func encodeSegment(baseFP, from, to uint64, recs []FactAppend) []byte {
	dims := newDict()
	vals := newDict()
	for _, rec := range recs {
		for _, p := range rec.Pairs {
			dims.add(p.Dim)
			vals.add(p.Value)
		}
	}
	e := &enc{}
	e.b = append(e.b, segMagic...)
	e.u32(formatVersion)
	e.u64(baseFP)
	e.u64(from)
	e.u64(to)
	e.u32(uint32(len(dims.order)))
	for _, s := range dims.order {
		e.str(s)
	}
	e.u32(uint32(len(vals.order)))
	for _, s := range vals.order {
		e.str(s)
	}
	for _, rec := range recs {
		e.str(rec.FactID)
		e.u32(uint32(len(rec.Pairs)))
		for _, p := range rec.Pairs {
			e.u32(dims.id[p.Dim])
			e.u32(vals.id[p.Value])
			e.annot(p.Annot)
		}
	}
	e.u32(crc32.Checksum(e.b, castagnoli))
	return e.b
}

// dict interns strings in first-seen order.
type dict struct {
	id    map[string]uint32
	order []string
}

func newDict() *dict { return &dict{id: map[string]uint32{}} }

func (d *dict) add(s string) {
	if _, ok := d.id[s]; !ok {
		d.id[s] = uint32(len(d.order))
		d.order = append(d.order, s)
	}
}

// decodeSegment validates and parses a segment image, reconstructing the
// records with their sequence numbers (from+i). Every failure is an
// ErrCorrupt (or ErrBaseMismatch) — arbitrary bytes cannot panic this.
func decodeSegment(b []byte, baseFP uint64) (from, to uint64, recs []FactAppend, err error) {
	if len(b) < 4+4+8+8+8+4 {
		return 0, 0, nil, fmt.Errorf("%w: segment truncated at %d bytes", ErrCorrupt, len(b))
	}
	if string(b[:4]) != segMagic {
		return 0, 0, nil, fmt.Errorf("%w: bad segment magic %q", ErrCorrupt, b[:4])
	}
	body, sum := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if err := checksumOK(body, sum); err != nil {
		return 0, 0, nil, fmt.Errorf("segment file: %w", err)
	}
	d := &dec{b: body, off: 4}
	ver, err := d.u32()
	if err != nil {
		return 0, 0, nil, err
	}
	if ver != formatVersion {
		return 0, 0, nil, fmt.Errorf("%w: segment format version %d, want %d", ErrCorrupt, ver, formatVersion)
	}
	fp, err := d.u64()
	if err != nil {
		return 0, 0, nil, err
	}
	if fp != baseFP {
		return 0, 0, nil, fmt.Errorf("%w: segment fingerprint %016x, base is %016x", ErrBaseMismatch, fp, baseFP)
	}
	if from, err = d.u64(); err != nil {
		return 0, 0, nil, err
	}
	if to, err = d.u64(); err != nil {
		return 0, 0, nil, err
	}
	if to < from || to-from > 1<<32 {
		return 0, 0, nil, fmt.Errorf("%w: segment range [%d, %d) invalid", ErrCorrupt, from, to)
	}
	dims, err := d.dictStrings("dimension")
	if err != nil {
		return 0, 0, nil, err
	}
	vals, err := d.dictStrings("value")
	if err != nil {
		return 0, 0, nil, err
	}
	recs = make([]FactAppend, 0, to-from)
	for seq := from; seq < to; seq++ {
		var rec FactAppend
		rec.Seq = seq
		if rec.FactID, err = d.str(); err != nil {
			return 0, 0, nil, err
		}
		if rec.FactID == "" {
			return 0, 0, nil, fmt.Errorf("%w: segment record %d with empty fact id", ErrCorrupt, seq)
		}
		n, err := d.count(maxPairs, "pair")
		if err != nil {
			return 0, 0, nil, err
		}
		if n == 0 {
			return 0, 0, nil, fmt.Errorf("%w: segment record %q with no pairs", ErrCorrupt, rec.FactID)
		}
		rec.Pairs = make([]Pair, n)
		for i := range rec.Pairs {
			di, err := d.u32()
			if err != nil {
				return 0, 0, nil, err
			}
			vi, err := d.u32()
			if err != nil {
				return 0, 0, nil, err
			}
			if int(di) >= len(dims) || int(vi) >= len(vals) {
				return 0, 0, nil, fmt.Errorf("%w: segment dictionary reference (%d, %d) out of range", ErrCorrupt, di, vi)
			}
			rec.Pairs[i].Dim = dims[di]
			rec.Pairs[i].Value = vals[vi]
			if rec.Pairs[i].Annot, err = d.annot(); err != nil {
				return 0, 0, nil, err
			}
		}
		recs = append(recs, rec)
	}
	if d.remaining() != 0 {
		return 0, 0, nil, fmt.Errorf("%w: %d trailing bytes after segment records", ErrCorrupt, d.remaining())
	}
	return from, to, recs, nil
}

func (d *dec) dictStrings(what string) ([]string, error) {
	n, err := d.count(1<<24, what)
	if err != nil {
		return nil, err
	}
	// Each entry costs at least a length prefix; reject counts the
	// remaining bytes cannot possibly hold before allocating.
	if n*4 > d.remaining() {
		return nil, fmt.Errorf("%w: %s dictionary count %d exceeds remaining bytes", ErrCorrupt, what, n)
	}
	out := make([]string, n)
	for i := range out {
		if out[i], err = d.str(); err != nil {
			return nil, err
		}
	}
	return out, nil
}
