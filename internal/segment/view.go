package segment

import "unsafe"

// viewUint32 reinterprets raw little-endian code bytes as a []uint32
// without copying — the zero-copy path kernels take over an mmap'd
// checkpoint. Callers guard with nativeLittle and aligned4; the file
// format 8-byte-aligns every codes array so the guard holds on any
// page-aligned mapping.
func viewUint32(raw []byte, n int) []uint32 {
	return unsafe.Slice((*uint32)(unsafe.Pointer(&raw[0])), n)
}

// aligned4 reports whether the slice's backing data is 4-byte aligned,
// the requirement for viewing it as []uint32.
func aligned4(b []byte) bool {
	return len(b) > 0 && uintptr(unsafe.Pointer(&b[0]))%4 == 0
}
