package segment

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"mddm/internal/core"
	"mddm/internal/dimension"
	"mddm/internal/fact"
	"mddm/internal/faultinject"
	"mddm/internal/storage"
)

// Options configures a Store.
type Options struct {
	// Sync fsyncs the WAL after every append. Off, durability of the
	// newest appends rides on the OS page cache (a machine crash may lose
	// the tail; a process crash cannot), which is the right trade for
	// bulk loads and benchmarks.
	Sync bool
	// MMap serves the column checkpoint via a read-only memory mapping
	// instead of copying it onto the heap: kernels then scan the page
	// cache directly. Mappings live until ReleaseMaps (or process exit) —
	// see that method for the lifetime contract.
	MMap bool
	// FoldEvery folds the log into a new segment in the background once
	// this many unfolded appends accumulate (0 = fold only on Close or
	// explicit Fold calls).
	FoldEvery int
}

// Store persists the append history of one MO on top of a deterministic
// base. All methods are safe for concurrent use; Append serializes
// writers while readers keep querying the engine lock-free.
type Store struct {
	dir    string
	opts   Options
	baseFP uint64

	mu        sync.Mutex
	man       *manifest
	wal       *os.File
	seq       uint64 // next append ordinal
	tail      []FactAppend
	mo        *core.MO
	eng       *storage.Engine
	ectx      dimension.Context
	recovered bool
	poisoned  bool // an injected or real mid-write fault; disk needs re-open recovery
	closed    bool
	maps      [][]byte

	foldC chan struct{}
	stopC chan struct{}
	wg    sync.WaitGroup
}

var errClosed = errors.New("segment: store closed")

// Open opens (or initializes) the store in dir for the given base MO.
// The base must be exactly the data the store was created over — it is
// fingerprinted (schema dimension names + sorted base fact ids) and a
// mismatch is ErrBaseMismatch before anything is applied. Open repairs
// crash damage that is repairable (torn WAL tail → truncate, orphaned
// temp and unreferenced artifact files → delete) and rejects damage that
// is not (corrupt manifest or WAL header, missing committed segments).
// The returned store holds base and will mutate it during Recover and
// Append; the caller must not mutate it independently.
func Open(dir string, base *core.MO, opts Options) (*Store, error) {
	if base == nil {
		return nil, errors.New("segment: open: nil base MO")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:    dir,
		opts:   opts,
		baseFP: fingerprintMO(base),
		mo:     base,
		foldC:  make(chan struct{}, 1),
		stopC:  make(chan struct{}),
	}
	man, ok, err := loadManifest(dir)
	if err != nil {
		return nil, err
	}
	if !ok {
		// A WAL without a manifest means the manifest was lost, not that
		// the store is fresh — initializing would silently discard history.
		if _, err := os.Stat(filepath.Join(dir, walName)); err == nil {
			return nil, fmt.Errorf("%w: %s has a WAL but no manifest", ErrCorrupt, dir)
		}
		man = &manifest{
			Version:   formatVersion,
			BaseFP:    fmt.Sprintf("%016x", s.baseFP),
			BaseFacts: base.Facts().Len(),
		}
		if err := saveManifest(dir, man); err != nil {
			return nil, err
		}
	} else if man.BaseFP != fmt.Sprintf("%016x", s.baseFP) || man.BaseFacts != base.Facts().Len() {
		return nil, fmt.Errorf("%w: store holds history of base %s (%d facts), caller provided %016x (%d facts)",
			ErrBaseMismatch, man.BaseFP, man.BaseFacts, s.baseFP, base.Facts().Len())
	}
	s.man = man
	if err := cleanOrphans(dir, man); err != nil {
		return nil, err
	}
	if err := s.openWAL(); err != nil {
		return nil, err
	}
	if opts.FoldEvery > 0 {
		s.wg.Add(1)
		go s.folder()
	}
	return s, nil
}

// cleanOrphans deletes temp files and segment/checkpoint files the
// manifest does not name — leftovers of a crash mid-fold. Their records
// are safe: the WAL only rotates after the manifest naming a segment is
// durable, so an unnamed segment's range is still in the log.
func cleanOrphans(dir string, man *manifest) error {
	live := map[string]bool{manifestName: true, walName: true}
	for _, se := range man.Segments {
		live[se.File] = true
	}
	if man.Columns != nil {
		live[man.Columns.File] = true
	}
	if man.Snapshot != nil {
		live[man.Snapshot.File] = true
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || live[name] {
			continue
		}
		if strings.HasSuffix(name, ".tmp") || strings.HasSuffix(name, ".mseg") ||
			strings.HasSuffix(name, ".mcol") || strings.HasSuffix(name, ".msnp") {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// openWAL reads, validates, and repairs the log, leaving the handle
// positioned for appends and the unfolded tail records staged for
// Recover.
func (s *Store) openWAL() error {
	path := filepath.Join(s.dir, walName)
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		b = encodeWALHeader(walHeader{baseFP: s.baseFP, startSeq: s.man.FoldedSeq})
		if err := atomicWrite(s.dir, walName, b); err != nil {
			return err
		}
	} else if err != nil {
		return err
	}
	scan, err := scanWAL(b, s.baseFP)
	if err != nil {
		return err
	}
	if scan.header.startSeq > s.man.FoldedSeq {
		return fmt.Errorf("%w: WAL starts at seq %d but only %d are folded — a log range is missing",
			ErrCorrupt, scan.header.startSeq, s.man.FoldedSeq)
	}
	if scan.torn {
		if err := os.Truncate(path, scan.good); err != nil {
			return err
		}
		mRecoveryTruncations.Inc()
	}
	end := scan.header.startSeq + uint64(len(scan.recs))
	if end < s.man.FoldedSeq {
		// Rotation-crash remnant: every surviving record is already folded
		// into a committed segment; the log contributes nothing.
		end = s.man.FoldedSeq
	}
	s.seq = end
	for _, rec := range scan.recs {
		if rec.Seq >= s.man.FoldedSeq {
			s.tail = append(s.tail, rec)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return err
	}
	s.wal = f
	return nil
}

// Recover reconstructs the engine from disk. The fast path restores the
// engine snapshot — the base MO absorbs every persisted pair in one
// validated bulk load and the engine comes back with its fact order and
// direct bitmaps intact, O(facts) instead of O(history replay) — then
// applies only the records the snapshot postdates. Snapshot-covered
// segments are still integrity-checked (magic, checksum, fingerprint,
// range) without being decoded: they remain the source of truth, the
// snapshot is acceleration. Without a usable snapshot (none written yet,
// or rejected with a counter) recovery falls back to full replay: every
// persisted record is applied through the same RelateAnnot path live
// appends use and the engine is built over the result. The column
// checkpoint installs only on the snapshot path — its codes are
// positional over the fold-time engine order, which the snapshot carries
// and verifies; BuildEngine's sorted order offers no such guarantee once
// appended ids sort before base ids, so the fallback counts the
// checkpoint rejected and rebuilds columns lazily. Idempotent: a second
// call returns the same engine.
func (s *Store) Recover(ctx context.Context, ectx dimension.Context) (*storage.Engine, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errClosed
	}
	if s.recovered {
		return s.eng, nil
	}
	var (
		eng     *storage.Engine
		snapSeq uint64
	)
	if img := s.loadSnapshot(ectx); img != nil {
		e, err := s.applySnapshot(img, ectx)
		if err != nil {
			return nil, err
		}
		eng, snapSeq = e, img.seq
		mSnapshotRestores.Inc()
	}
	for _, se := range s.man.Segments {
		if eng != nil && se.To <= snapSeq {
			if err := verifySegmentShallow(filepath.Join(s.dir, se.File), s.baseFP, se); err != nil {
				return nil, err
			}
			continue
		}
		b, err := os.ReadFile(filepath.Join(s.dir, se.File))
		if err != nil {
			return nil, err
		}
		from, to, recs, err := decodeSegment(b, s.baseFP)
		if err != nil {
			return nil, fmt.Errorf("segment %s: %w", se.File, err)
		}
		if from != se.From || to != se.To {
			return nil, fmt.Errorf("%w: segment %s covers [%d, %d), manifest says [%d, %d)",
				ErrCorrupt, se.File, from, to, se.From, se.To)
		}
		for _, rec := range recs {
			if err := s.replayRecord(eng, rec, snapSeq); err != nil {
				return nil, fmt.Errorf("replaying segment %s: %w", se.File, err)
			}
		}
	}
	for _, rec := range s.tail {
		if err := s.replayRecord(eng, rec, snapSeq); err != nil {
			return nil, fmt.Errorf("replaying log: %w", err)
		}
	}
	if eng == nil {
		e, err := storage.BuildEngine(ctx, s.mo, ectx)
		if err != nil {
			return nil, err
		}
		eng = e
		if s.man.Columns != nil {
			// See the doc comment: without the snapshot's verified fact
			// order the checkpoint's positional codes cannot be trusted.
			mCheckpointRejects.Inc()
		}
	} else {
		s.installCheckpoint(eng, ectx)
	}
	s.eng, s.ectx = eng, ectx
	s.recovered = true
	s.tail = nil
	mSegmentsOpen.Add(int64(len(s.man.Segments)))
	s.updateBytes()
	return eng, nil
}

// replayRecord applies one persisted record during recovery, skipping
// records the snapshot already covers (their pairs and index entries
// arrived with the restore). On the snapshot path the engine exists and
// is maintained incrementally, the exact path live appends take.
func (s *Store) replayRecord(eng *storage.Engine, rec FactAppend, snapSeq uint64) error {
	if eng != nil && rec.Seq < snapSeq {
		return nil
	}
	if err := applyPairs(s.mo, rec); err != nil {
		return err
	}
	if eng != nil {
		if err := eng.AppendFact(rec.FactID); err != nil {
			return fmt.Errorf("%w: record %d: %v", ErrCorrupt, rec.Seq, err)
		}
	}
	return nil
}

// loadSnapshot reads and fully validates the manifest's engine snapshot.
// Every failure here is soft — counted, and recovery falls back to
// replaying the history the snapshot merely accelerates. A nil return
// with no counter just means no snapshot has been written yet.
func (s *Store) loadSnapshot(ectx dimension.Context) *snapImage {
	sn := s.man.Snapshot
	if sn == nil {
		return nil
	}
	b, err := os.ReadFile(filepath.Join(s.dir, sn.File))
	if err != nil {
		mSnapshotRejects.Inc()
		return nil
	}
	img, err := decodeSnapshot(b, s.baseFP, s.mo, ectx)
	if err != nil {
		mSnapshotRejects.Inc()
		return nil
	}
	if img.seq != sn.Seq || len(img.facts) != sn.Facts || img.seq > s.man.FoldedSeq {
		// The file disagrees with the commit record that named it, or
		// claims records no segment holds.
		mSnapshotRejects.Inc()
		return nil
	}
	return img
}

// applySnapshot installs a validated snapshot: the relations replace the
// base MO's wholesale (the base pairs are a subset of the snapshot's by
// the decoder's coverage check), the appended facts join the fact set,
// and the engine is restored over the persisted order and bitmaps.
// decodeSnapshot validated everything against the live MO already, so a
// failure here means the model mutated underneath us mid-recovery — and
// since the MO is no longer the pristine base the replay fallback
// requires, it is a hard ErrCorrupt, not a soft reject.
func (s *Store) applySnapshot(img *snapImage, ectx dimension.Context) (*storage.Engine, error) {
	s.mo.Facts().Grow(len(img.facts))
	for _, f := range img.appended {
		s.mo.AddFact(fact.NewFact(f))
	}
	for name, rel := range img.rels {
		if err := s.mo.SetRelation(name, rel); err != nil {
			return nil, fmt.Errorf("%w: snapshot relation %q: %v", ErrCorrupt, name, err)
		}
	}
	eng, err := storage.RestoreEngine(s.mo, ectx, img.facts, img.direct)
	if err != nil {
		return nil, fmt.Errorf("%w: snapshot restore: %v", ErrCorrupt, err)
	}
	return eng, nil
}

// verifySegmentShallow integrity-checks a segment whose records the
// snapshot already covers: magic, whole-file CRC-32C, format version,
// base fingerprint, and the manifest's claimed range against the fixed
// header offsets — everything but the record decode. Corruption of
// committed history is a hard error even when its records are redundant;
// the segments stay the durable source of truth the snapshot is audited
// against.
func verifySegmentShallow(path string, baseFP uint64, se segEntry) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(b) < 4+4+8+8+8+4 {
		return fmt.Errorf("%w: segment %s truncated at %d bytes", ErrCorrupt, se.File, len(b))
	}
	if string(b[:4]) != segMagic {
		return fmt.Errorf("%w: bad segment magic %q in %s", ErrCorrupt, b[:4], se.File)
	}
	body, sum := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.Checksum(body, castagnoli) != sum {
		return fmt.Errorf("%w: segment %s checksum mismatch", ErrCorrupt, se.File)
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != formatVersion {
		return fmt.Errorf("%w: segment %s format version %d, want %d", ErrCorrupt, se.File, v, formatVersion)
	}
	if fp := binary.LittleEndian.Uint64(b[8:]); fp != baseFP {
		return fmt.Errorf("%w: segment %s fingerprint %016x, base is %016x", ErrBaseMismatch, se.File, fp, baseFP)
	}
	from := binary.LittleEndian.Uint64(b[16:])
	to := binary.LittleEndian.Uint64(b[24:])
	if from != se.From || to != se.To {
		return fmt.Errorf("%w: segment %s covers [%d, %d), manifest says [%d, %d)",
			ErrCorrupt, se.File, from, to, se.From, se.To)
	}
	return nil
}

// applyPairs replays one record into the MO — the identical path
// Append takes after logging, which is what makes load-after-crash
// equivalent to rebuild-from-scratch by construction.
func applyPairs(m *core.MO, rec FactAppend) error {
	if m.Facts().Has(rec.FactID) {
		return fmt.Errorf("%w: record %d re-appends fact %q", ErrCorrupt, rec.Seq, rec.FactID)
	}
	for _, p := range rec.Pairs {
		if err := m.RelateAnnot(p.Dim, rec.FactID, p.Value, p.Annot); err != nil {
			return fmt.Errorf("%w: record %d: %v", ErrCorrupt, rec.Seq, err)
		}
	}
	return nil
}

// installCheckpoint best-effort installs the persisted columns into a
// freshly built engine. Any failure — unreadable file, checksum, base or
// context fingerprint drift, a column the engine rejects — counts a
// rejection and leaves that column to be rebuilt from bitmaps.
func (s *Store) installCheckpoint(eng *storage.Engine, ectx dimension.Context) {
	ck := s.man.Columns
	if ck == nil {
		return
	}
	path := filepath.Join(s.dir, ck.File)
	var b []byte
	mapped := false
	if s.opts.MMap {
		if mb, err := mmapFile(path); err == nil && mb != nil {
			b, mapped = mb, true
		}
	}
	if b == nil {
		rb, err := os.ReadFile(path)
		if err != nil {
			mCheckpointRejects.Inc()
			return
		}
		b = rb
	}
	facts, _, cols, err := decodeCheckpoint(b, s.baseFP, fingerprintCtx(ectx), mapped)
	if err != nil || facts > eng.NumFacts() {
		mCheckpointRejects.Inc()
		if mapped {
			_ = munmap(b)
		}
		return
	}
	viewInstalled := false
	for _, c := range cols {
		if len(c.codes) != facts {
			mCheckpointRejects.Inc()
			continue
		}
		if err := eng.InstallColumn(c.dim, c.cat, c.vals, c.codes, c.over); err != nil {
			mCheckpointRejects.Inc()
			continue
		}
		viewInstalled = viewInstalled || mapped
	}
	if mapped && !viewInstalled {
		_ = munmap(b)
		mapped = false
	}
	if mapped {
		s.maps = append(s.maps, b)
	}
}

// Append durably logs one new fact and then applies it: validate first
// (so a logged record can always replay), frame into the WAL, fsync when
// Options.Sync, then mutate the MO and the engine. A crash after the
// write and before the apply is exactly what recovery replays. The
// record's Seq is assigned by the store; the caller's value is ignored.
func (s *Store) Append(rec FactAppend) error {
	_, err := s.AppendSeq(rec)
	return err
}

// AppendSeq is Append returning the sequence number the record was
// logged under — the durable acknowledgment an API can hand back to a
// client.
func (s *Store) AppendSeq(rec FactAppend) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, errClosed
	}
	if s.poisoned {
		return 0, errors.New("segment: store poisoned by a write fault; re-open to recover")
	}
	if !s.recovered {
		return 0, errors.New("segment: store not recovered; call Recover before Append")
	}
	if err := s.validate(rec); err != nil {
		return 0, err
	}
	rec.Seq = s.seq
	frame := encodeFrame(encodeRecord(rec))
	if err := faultinject.Check(faultinject.WALTear); err != nil {
		// Simulate a crash mid-append: half a frame reaches the disk and
		// this process stops. In-memory state is untouched — the record
		// was never acknowledged.
		_, _ = s.wal.Write(frame[:len(frame)/2])
		_ = s.wal.Sync()
		s.poisoned = true
		return 0, fmt.Errorf("segment: wal append: %w", err)
	}
	if _, err := s.wal.Write(frame); err != nil {
		s.poisoned = true
		return 0, fmt.Errorf("segment: wal append: %w", err)
	}
	if s.opts.Sync {
		if err := s.wal.Sync(); err != nil {
			s.poisoned = true
			return 0, fmt.Errorf("segment: wal fsync: %w", err)
		}
		mWALFsyncs.Inc()
	}
	mWALAppends.Inc()
	mBytesWAL.Add(int64(len(frame)))
	// The record is durable; the apply cannot fail validation again, so
	// in-memory state and the log stay in lockstep.
	if err := applyPairs(s.mo, rec); err != nil {
		return 0, fmt.Errorf("segment: apply after log: %w", err)
	}
	if err := s.eng.AppendFact(rec.FactID); err != nil {
		return 0, fmt.Errorf("segment: index after log: %w", err)
	}
	s.seq++
	if s.opts.FoldEvery > 0 && s.seq-s.man.FoldedSeq >= uint64(s.opts.FoldEvery) {
		select {
		case s.foldC <- struct{}{}:
		default:
		}
	}
	return rec.Seq, nil
}

// validate rejects a record the replay path could not apply — the check
// runs before the WAL write so the log never holds an unreplayable
// record.
func (s *Store) validate(rec FactAppend) error {
	if rec.FactID == "" {
		return errors.New("segment: append: empty fact id")
	}
	if s.mo.Facts().Has(rec.FactID) {
		return fmt.Errorf("segment: append: fact %q already exists", rec.FactID)
	}
	if len(rec.Pairs) == 0 {
		return fmt.Errorf("segment: append: fact %q has no characterizations", rec.FactID)
	}
	for _, p := range rec.Pairs {
		d := s.mo.Dimension(p.Dim)
		if d == nil {
			return fmt.Errorf("segment: append: unknown dimension %q", p.Dim)
		}
		if !d.Has(p.Value) {
			return fmt.Errorf("segment: append: dimension %q has no value %q", p.Dim, p.Value)
		}
	}
	return nil
}

// Fold compacts the unfolded log tail into a new immutable segment,
// snapshots the engine's columns into a fresh checkpoint, commits both
// through the manifest, and rotates the WAL. Crash-safe at every step:
// until the manifest rename lands the old commit is intact, and after it
// lands a lost WAL rotation only leaves already-folded records that
// replay dedups by sequence number.
func (s *Store) Fold() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	return s.foldLocked()
}

func (s *Store) foldLocked() error {
	if s.poisoned {
		return errors.New("segment: store poisoned by a write fault; re-open to recover")
	}
	if !s.recovered {
		return errors.New("segment: store not recovered; call Recover before Fold")
	}
	from, to := s.man.FoldedSeq, s.seq
	if from == to {
		return nil
	}
	// Fold what is durable, not what is resident: re-reading the log is
	// the cheap way to guarantee segments never contain a record the WAL
	// would not have replayed.
	b, err := os.ReadFile(filepath.Join(s.dir, walName))
	if err != nil {
		return err
	}
	scan, err := scanWAL(b, s.baseFP)
	if err != nil {
		return err
	}
	if scan.torn {
		return fmt.Errorf("%w: live WAL has a torn tail", ErrCorrupt)
	}
	recs := make([]FactAppend, 0, to-from)
	for _, rec := range scan.recs {
		if rec.Seq >= from {
			recs = append(recs, rec)
		}
	}
	if uint64(len(recs)) != to-from {
		return fmt.Errorf("%w: WAL holds %d unfolded records, store expects %d", ErrCorrupt, len(recs), to-from)
	}
	segName := fmt.Sprintf("seg-%012d-%012d.mseg", from, to)
	if err := s.writeArtifact(segName, encodeSegment(s.baseFP, from, to, recs)); err != nil {
		return err
	}
	man2 := *s.man
	man2.Segments = append(append([]segEntry(nil), s.man.Segments...), segEntry{File: segName, From: from, To: to})
	man2.FoldedSeq = to
	// The checkpoint and the engine snapshot refresh together or not at
	// all — the checkpoint's positional codes are only installable against
	// the fact order the paired snapshot carries, so the two must always
	// come from the same fold. Skipping the refresh while the unfolded
	// tail stays under a tenth of the engine keeps steady-state folds
	// O(tail) instead of O(facts); the final flush always refreshes so a
	// graceful shutdown leaves the fastest possible next open.
	refresh := s.closed || s.man.Snapshot == nil || s.man.Columns == nil ||
		(to-s.man.Snapshot.Seq)*10 >= uint64(s.eng.NumFacts())
	var oldCol, oldSnap *ckEntry
	if refresh {
		ckName := fmt.Sprintf("col-%012d.mcol", to)
		if err := s.writeArtifact(ckName, encodeCheckpoint(s.baseFP, fingerprintCtx(s.ectx), to, s.eng)); err != nil {
			return err
		}
		snapName := fmt.Sprintf("snap-%012d.msnp", to)
		if err := s.writeArtifact(snapName, encodeSnapshot(s.baseFP, to, s.mo, s.eng)); err != nil {
			return err
		}
		man2.Columns = &ckEntry{File: ckName, Facts: s.eng.NumFacts(), Seq: to}
		man2.Snapshot = &ckEntry{File: snapName, Facts: s.eng.NumFacts(), Seq: to}
		oldCol, oldSnap = s.man.Columns, s.man.Snapshot
	}
	if err := saveManifest(s.dir, &man2); err != nil {
		return err
	}
	s.man = &man2
	if oldCol != nil && oldCol.File != man2.Columns.File {
		_ = os.Remove(filepath.Join(s.dir, oldCol.File))
	}
	if oldSnap != nil && oldSnap.File != man2.Snapshot.File {
		_ = os.Remove(filepath.Join(s.dir, oldSnap.File))
	}
	if err := s.rotateWAL(to); err != nil {
		return err
	}
	mFolds.Inc()
	mSegmentsOpen.Add(1)
	s.updateBytes()
	return nil
}

// writeArtifact atomically publishes an immutable artifact; the
// SegmentWrite faultinject point instead leaves the partial temp file a
// crash mid-fold would.
func (s *Store) writeArtifact(name string, b []byte) error {
	if err := faultinject.Check(faultinject.SegmentWrite); err != nil {
		_ = os.WriteFile(filepath.Join(s.dir, name+".tmp"), b[:len(b)/2], 0o644)
		s.poisoned = true
		return fmt.Errorf("segment: writing %s: %w", name, err)
	}
	return atomicWrite(s.dir, name, b)
}

// rotateWAL replaces the log with an empty one starting at startSeq.
// Losing this step to a crash is harmless: the stale log's records all
// carry seqs below the committed folded_seq and replay skips them.
func (s *Store) rotateWAL(startSeq uint64) error {
	if err := atomicWrite(s.dir, walName, encodeWALHeader(walHeader{baseFP: s.baseFP, startSeq: startSeq})); err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(s.dir, walName), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return err
	}
	old := s.wal
	s.wal = f
	return old.Close()
}

// folder is the background compaction loop; Append signals it when the
// unfolded tail reaches Options.FoldEvery.
func (s *Store) folder() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopC:
			return
		case <-s.foldC:
			// A fold error is not actionable here; a poisoned store
			// refuses further work and Close reports the final flush.
			_ = s.Fold()
		}
	}
}

// Close stops the background folder, folds the remaining tail (the
// graceful-shutdown flush), fsyncs, and closes the log. The recovered
// engine stays valid — it owns only heap state plus any retained
// mappings (see ReleaseMaps).
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stopC)
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.recovered && !s.poisoned {
		err = s.foldLocked()
	}
	if s.wal != nil {
		if serr := s.wal.Sync(); err == nil && serr != nil {
			err = serr
		}
		if cerr := s.wal.Close(); err == nil && cerr != nil {
			err = cerr
		}
		s.wal = nil
	}
	if s.recovered {
		mSegmentsOpen.Add(-int64(len(s.man.Segments)))
	}
	return err
}

// ReleaseMaps unmaps any mmap'd checkpoint the store retained. Column
// views installed into the recovered engine alias these mappings, so
// this must only be called once that engine is unreachable; a live
// server simply never calls it and lets the mappings die with the
// process.
func (s *Store) ReleaseMaps() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range s.maps {
		_ = munmap(m)
	}
	s.maps = nil
}

// Seq returns the next append ordinal (equivalently: how many records
// the store has ever acknowledged).
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Engine returns the recovered engine (nil before Recover).
func (s *Store) Engine() *storage.Engine {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng
}

// MO returns the recovered model — the base plus every replayed and
// appended record. It is owned by the store: mutate it only through
// Append, or replay determinism is gone.
func (s *Store) MO() *core.MO {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mo
}

// updateBytes refreshes the size gauges from the live artifact set.
func (s *Store) updateBytes() {
	var segB, colB, snapB, walB int64
	for _, se := range s.man.Segments {
		if st, err := os.Stat(filepath.Join(s.dir, se.File)); err == nil {
			segB += st.Size()
		}
	}
	if s.man.Columns != nil {
		if st, err := os.Stat(filepath.Join(s.dir, s.man.Columns.File)); err == nil {
			colB = st.Size()
		}
	}
	if s.man.Snapshot != nil {
		if st, err := os.Stat(filepath.Join(s.dir, s.man.Snapshot.File)); err == nil {
			snapB = st.Size()
		}
	}
	if st, err := os.Stat(filepath.Join(s.dir, walName)); err == nil {
		walB = st.Size()
	}
	mBytesSegments.Set(segB)
	mBytesColumns.Set(colB)
	mBytesSnapshot.Set(snapB)
	mBytesWAL.Set(walB)
}
