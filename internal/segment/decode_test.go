package segment

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"testing"

	"mddm/internal/dimension"
	"mddm/internal/storage"
	"mddm/internal/temporal"
)

// stamp appends the CRC-32C trailer, turning a hand-built body into a
// checksum-valid artifact so the structural validation branches behind
// the checksum are reachable.
func stamp(b []byte) []byte {
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, castagnoli))
}

const testFP = uint64(0xdeadbeefcafe1234)

// segBody builds a minimal valid segment body (one record, one pair)
// up to but not including the trailer, then lets mutate rewrite it.
func segBody(mutate func(e *enc)) []byte {
	e := &enc{}
	e.b = append(e.b, segMagic...)
	e.u32(formatVersion)
	e.u64(testFP)
	e.u64(0) // from
	e.u64(1) // to
	if mutate != nil {
		mutate(e)
		return e.b
	}
	e.u32(1)
	e.str("D")
	e.u32(1)
	e.str("v")
	e.str("f1")
	e.u32(1)
	e.u32(0)
	e.u32(0)
	e.byte(annotAlways)
	return e.b
}

func TestDecodeSegmentValidation(t *testing.T) {
	if _, _, _, err := decodeSegment(stamp(segBody(nil)), testFP); err != nil {
		t.Fatalf("minimal valid segment rejected: %v", err)
	}
	cases := []struct {
		name string
		img  []byte
		want error
	}{
		{"truncated", []byte("MSEG"), ErrCorrupt},
		{"bad-magic", stamp(append([]byte("XSEG"), segBody(nil)[4:]...)), ErrCorrupt},
		{"bad-version", stamp(func() []byte {
			b := segBody(nil)
			binary.LittleEndian.PutUint32(b[4:], 9)
			return b
		}()), ErrCorrupt},
		{"fp-mismatch", stamp(func() []byte {
			b := segBody(nil)
			binary.LittleEndian.PutUint64(b[8:], testFP+1)
			return b
		}()), ErrBaseMismatch},
		{"inverted-range", stamp(func() []byte {
			b := segBody(nil)
			binary.LittleEndian.PutUint64(b[16:], 5) // from > to
			return b
		}()), ErrCorrupt},
		{"absurd-range", stamp(func() []byte {
			b := segBody(nil)
			binary.LittleEndian.PutUint64(b[24:], 1<<34)
			return b
		}()), ErrCorrupt},
		{"dict-count-lies", stamp(segBody(func(e *enc) {
			e.u32(1 << 20) // dimension dict claims 1M entries with no bytes
		})), ErrCorrupt},
		{"empty-fact-id", stamp(segBody(func(e *enc) {
			e.u32(1)
			e.str("D")
			e.u32(1)
			e.str("v")
			e.str("") // record with empty id
			e.u32(1)
			e.u32(0)
			e.u32(0)
			e.byte(annotAlways)
		})), ErrCorrupt},
		{"zero-pairs", stamp(segBody(func(e *enc) {
			e.u32(1)
			e.str("D")
			e.u32(1)
			e.str("v")
			e.str("f1")
			e.u32(0)
		})), ErrCorrupt},
		{"pair-count-over-cap", stamp(segBody(func(e *enc) {
			e.u32(1)
			e.str("D")
			e.u32(1)
			e.str("v")
			e.str("f1")
			e.u32(maxPairs + 1)
		})), ErrCorrupt},
		{"dict-ref-out-of-range", stamp(segBody(func(e *enc) {
			e.u32(1)
			e.str("D")
			e.u32(1)
			e.str("v")
			e.str("f1")
			e.u32(1)
			e.u32(7) // dim index 7, dict has 1 entry
			e.u32(0)
			e.byte(annotAlways)
		})), ErrCorrupt},
		{"trailing-bytes", stamp(append(segBody(nil), 0xff)), ErrCorrupt},
		{"flipped-bit", func() []byte {
			b := stamp(segBody(nil))
			b[30] ^= 1
			return b
		}(), ErrCorrupt},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, _, err := decodeSegment(c.img, testFP)
			if !errors.Is(err, c.want) {
				t.Fatalf("err = %v, want %v", err, c.want)
			}
		})
	}
}

// ckBody builds a checkpoint body with no columns, or hands the column
// region to mutate.
func ckBody(ncols uint32, mutate func(e *enc)) []byte {
	e := &enc{}
	e.b = append(e.b, ckMagic...)
	e.u32(formatVersion)
	e.u64(testFP)
	e.u64(testFP + 1) // ctxFP
	e.u64(3)          // facts
	e.u64(7)          // seq
	e.u32(ncols)
	if mutate != nil {
		mutate(e)
	}
	return e.b
}

func TestDecodeCheckpointValidation(t *testing.T) {
	ctxFP := testFP + 1
	facts, seq, cols, err := decodeCheckpoint(stamp(ckBody(0, nil)), testFP, ctxFP, false)
	if err != nil || facts != 3 || seq != 7 || len(cols) != 0 {
		t.Fatalf("empty checkpoint: facts=%d seq=%d cols=%d err=%v", facts, seq, len(cols), err)
	}
	oneCol := func(e *enc) {
		e.str("D")
		e.str("C")
		e.u32(2) // dict
		e.str("a")
		e.str("b")
		e.u32(2) // overflow
		e.u32(0)
		e.u32(0)
		e.u32(0)
		e.u32(1)
		e.u32(3) // codes
		e.pad8()
		e.u32(storage.ColSentinelMulti)
		e.u32(1)
		e.u32(storage.ColSentinelNone)
	}
	for _, view := range []bool{false, true} {
		_, _, cols, err := decodeCheckpoint(stamp(ckBody(1, oneCol)), testFP, ctxFP, view)
		if err != nil || len(cols) != 1 {
			t.Fatalf("one-column checkpoint (view=%v): cols=%d err=%v", view, len(cols), err)
		}
		c := cols[0]
		if c.dim != "D" || c.cat != "C" || len(c.vals) != 2 || len(c.over) != 2 || len(c.codes) != 3 {
			t.Fatalf("decoded column mangled: %+v", c)
		}
		if cap(c.codes) != len(c.codes) {
			t.Fatalf("codes cap %d != len %d: an append could write through the view", cap(c.codes), len(c.codes))
		}
		if c.codes[1] != 1 {
			t.Fatalf("codes round-trip: %v", c.codes)
		}
	}
	cases := []struct {
		name string
		img  []byte
		want error
	}{
		{"truncated", []byte("MCOL"), ErrCorrupt},
		{"bad-magic", stamp(append([]byte("XCOL"), ckBody(0, nil)[4:]...)), ErrCorrupt},
		{"bad-version", stamp(func() []byte {
			b := ckBody(0, nil)
			binary.LittleEndian.PutUint32(b[4:], 2)
			return b
		}()), ErrCorrupt},
		{"fp-mismatch", stamp(func() []byte {
			b := ckBody(0, nil)
			binary.LittleEndian.PutUint64(b[8:], testFP+9)
			return b
		}()), ErrBaseMismatch},
		{"ctx-mismatch", stamp(func() []byte {
			b := ckBody(0, nil)
			binary.LittleEndian.PutUint64(b[16:], testFP+9)
			return b
		}()), ErrCorrupt},
		{"implausible-facts", stamp(func() []byte {
			b := ckBody(0, nil)
			binary.LittleEndian.PutUint64(b[24:], 1<<50)
			return b
		}()), ErrCorrupt},
		{"column-count-over-cap", stamp(ckBody(1<<16+1, nil)), ErrCorrupt},
		{"overflow-count-lies", stamp(ckBody(1, func(e *enc) {
			e.str("D")
			e.str("C")
			e.u32(0)       // dict
			e.u32(1 << 27) // overflow count with no bytes behind it
		})), ErrCorrupt},
		{"code-count-lies", stamp(ckBody(1, func(e *enc) {
			e.str("D")
			e.str("C")
			e.u32(0)       // dict
			e.u32(0)       // overflow
			e.u32(1 << 29) // codes count with no bytes behind it
		})), ErrCorrupt},
		{"trailing-bytes", stamp(append(ckBody(0, nil), 0)), ErrCorrupt},
		{"flipped-bit", func() []byte {
			b := stamp(ckBody(0, nil))
			b[20] ^= 1
			return b
		}(), ErrCorrupt},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, _, err := decodeCheckpoint(c.img, testFP, ctxFP, false)
			if !errors.Is(err, c.want) {
				t.Fatalf("err = %v, want %v", err, c.want)
			}
		})
	}
}

func TestDecodeRecordValidation(t *testing.T) {
	full := FactAppend{Seq: 42, FactID: "f-1", Pairs: []Pair{
		{Dim: "D", Value: "v", Annot: dimension.Annot{
			Time: temporal.Bitemporal{
				Valid: temporal.NewElement(temporal.Interval{Start: 10, End: 20}, temporal.Interval{Start: 30, End: 40}),
				Trans: temporal.AlwaysElement(),
			},
			Prob: 0.25,
		}},
		{Dim: "D2", Value: "v2", Annot: dimension.Always()},
	}}
	got, err := decodeRecord(encodeRecord(full))
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if got.Seq != full.Seq || got.FactID != full.FactID || len(got.Pairs) != 2 {
		t.Fatalf("round trip mangled: %+v", got)
	}
	if got.Pairs[0].Annot.Prob != 0.25 || !got.Pairs[0].Annot.Time.Valid.Equal(full.Pairs[0].Annot.Time.Valid) {
		t.Fatalf("annotation round trip mangled: %+v", got.Pairs[0].Annot)
	}

	rec := func(mutate func(e *enc)) []byte {
		e := &enc{}
		e.u64(1)
		e.str("f")
		mutate(e)
		return e.b
	}
	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"truncated-mid-string", []byte{1, 0, 0, 0, 0, 0, 0, 0, 5, 0, 0, 0, 'f'}},
		{"empty-fact-id", func() []byte {
			e := &enc{}
			e.u64(1)
			e.str("")
			e.u32(1)
			return e.b
		}()},
		{"zero-pairs", rec(func(e *enc) { e.u32(0) })},
		{"pair-cap", rec(func(e *enc) { e.u32(maxPairs + 1) })},
		{"string-cap", rec(func(e *enc) {
			e.u32(1)
			e.u32(maxString + 1) // dim name length over cap
		})},
		{"bad-annot-flag", rec(func(e *enc) {
			e.u32(1)
			e.str("D")
			e.str("v")
			e.byte(7)
		})},
		{"nan-prob", rec(func(e *enc) {
			e.u32(1)
			e.str("D")
			e.str("v")
			e.byte(annotFull)
			e.u64(math.Float64bits(math.NaN()))
		})},
		{"prob-over-one", rec(func(e *enc) {
			e.u32(1)
			e.str("D")
			e.str("v")
			e.byte(annotFull)
			e.u64(math.Float64bits(1.5))
		})},
		{"interval-cap", rec(func(e *enc) {
			e.u32(1)
			e.str("D")
			e.str("v")
			e.byte(annotFull)
			e.u64(math.Float64bits(0.5))
			e.u32(maxIntervals + 1)
		})},
		{"trailing-bytes", append(encodeRecord(full), 0)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := decodeRecord(c.b); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
		})
	}
}

func TestScanWALValidation(t *testing.T) {
	header := encodeWALHeader(walHeader{baseFP: testFP, startSeq: 5})
	recFrame := func(seq uint64) []byte {
		return encodeFrame(encodeRecord(FactAppend{
			Seq: seq, FactID: "f", Pairs: []Pair{{Dim: "D", Value: "v", Annot: dimension.Always()}},
		}))
	}

	t.Run("header-errors", func(t *testing.T) {
		if _, err := decodeWALHeader(header[:10]); !errors.Is(err, ErrCorrupt) {
			t.Errorf("short header: %v", err)
		}
		bad := append([]byte("XWAL"), header[4:]...)
		if _, err := decodeWALHeader(bad); !errors.Is(err, ErrCorrupt) {
			t.Errorf("bad magic: %v", err)
		}
		ver := append([]byte(nil), header...)
		binary.LittleEndian.PutUint32(ver[4:], 3)
		binary.LittleEndian.PutUint32(ver[walHeaderSize-4:], crc32.Checksum(ver[:walHeaderSize-4], castagnoli))
		if _, err := decodeWALHeader(ver); !errors.Is(err, ErrCorrupt) {
			t.Errorf("bad version: %v", err)
		}
		crc := append([]byte(nil), header...)
		crc[walHeaderSize-1] ^= 1
		if _, err := decodeWALHeader(crc); !errors.Is(err, ErrCorrupt) {
			t.Errorf("bad crc: %v", err)
		}
		if _, err := scanWAL(crc, testFP); !errors.Is(err, ErrCorrupt) {
			t.Errorf("scan over bad header: %v", err)
		}
	})
	t.Run("fp-mismatch-hard", func(t *testing.T) {
		if _, err := scanWAL(header, testFP+1); !errors.Is(err, ErrBaseMismatch) {
			t.Errorf("err = %v, want ErrBaseMismatch", err)
		}
	})
	t.Run("clean", func(t *testing.T) {
		img := append(append([]byte(nil), header...), recFrame(5)...)
		img = append(img, recFrame(6)...)
		s, err := scanWAL(img, testFP)
		if err != nil || s.torn || len(s.recs) != 2 || s.good != int64(len(img)) {
			t.Fatalf("clean scan: torn=%v recs=%d good=%d err=%v", s.torn, len(s.recs), s.good, err)
		}
		if s.recs[0].Seq != 5 || s.recs[1].Seq != 6 {
			t.Fatalf("seqs: %d %d", s.recs[0].Seq, s.recs[1].Seq)
		}
	})
	tornCases := []struct {
		name string
		tail []byte
	}{
		{"short-frame-header", []byte{1, 2, 3}},
		{"absurd-length", binary.LittleEndian.AppendUint32(nil, maxRecord+1)},
		{"length-past-eof", []byte{0xff, 0, 0, 0, 1, 2, 3, 4, 9}},
		{"payload-crc", func() []byte {
			f := recFrame(6)
			f[len(f)-1] ^= 1
			return f
		}()},
		{"undecodable-payload", encodeFrame([]byte("not a record"))},
		{"seq-gap", recFrame(9)},
	}
	for _, c := range tornCases {
		t.Run("torn-"+c.name, func(t *testing.T) {
			img := append(append([]byte(nil), header...), recFrame(5)...)
			good := int64(len(img))
			img = append(img, c.tail...)
			s, err := scanWAL(img, testFP)
			if err != nil {
				t.Fatal(err)
			}
			if !s.torn || len(s.recs) != 1 || s.good != good {
				t.Fatalf("torn=%v recs=%d good=%d, want torn with 1 rec at %d", s.torn, len(s.recs), s.good, good)
			}
		})
	}
}

// TestFingerprints pins that the fingerprints react to every input they
// claim to cover.
func TestFingerprints(t *testing.T) {
	m := base(t)
	if fingerprintMO(m) != fingerprintMO(base(t)) {
		t.Error("same base, different fingerprints")
	}
	ref := testRef
	a := fingerprintCtx(dimension.CurrentContext(ref))
	if a != fingerprintCtx(dimension.CurrentContext(ref)) {
		t.Error("same context, different fingerprints")
	}
	variants := []dimension.Context{
		dimension.CurrentContext(ref + 1),
		{Valid: &ref, Ref: ref},
		{Trans: &ref, Ref: ref},
		{Ref: ref, MinProb: 0.5},
	}
	seen := map[uint64]bool{a: true}
	for i, v := range variants {
		fp := fingerprintCtx(v)
		if seen[fp] {
			t.Errorf("context variant %d collides with a previous fingerprint", i)
		}
		seen[fp] = true
	}
}
