// Package segment is the persistence subsystem: immutable, checksummed,
// mmap-friendly on-disk segments plus a write-ahead append log, so a
// process can recover a storage.Engine from disk instead of rebuilding
// it from scratch.
//
// A Store persists the append history of one MO on top of a
// deterministic base (the paper's case study, a seeded generator, or a
// CSV load): the base is re-derived by the caller at open and
// fingerprint-checked, and everything appended through Store.Append is
// durably logged before it mutates in-memory state. A background folder
// compacts the log into immutable segment files and snapshots the
// engine's characterization columns into a checkpoint the next open can
// install without recomputing any rollup closure. See docs/PERSISTENCE.md
// for the format layout, the WAL protocol, and the recovery invariants.
//
// Every decoder in this package treats its input as untrusted bytes: a
// corrupt or truncated artifact yields a typed error (ErrCorrupt,
// ErrBaseMismatch), never a panic and never a half-applied state.
package segment

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"mddm/internal/dimension"
	"mddm/internal/temporal"
)

// ErrCorrupt reports a persisted artifact that failed structural
// validation: a bad magic number, a failed checksum, a truncated or
// over-long field, or an impossible cross-reference. The artifact is
// unusable; whether that is fatal depends on its role (see Recover).
var ErrCorrupt = errors.New("segment: corrupt artifact")

// ErrBaseMismatch reports a store whose persisted base fingerprint does
// not match the base MO the caller provided: the append history on disk
// belongs to different data and applying it would corrupt the engine.
var ErrBaseMismatch = errors.New("segment: base MO mismatch")

// formatVersion versions every on-disk artifact; readers reject versions
// they do not understand rather than guessing.
const formatVersion = 1

// Decoder resource caps: arbitrary bytes must not be able to request an
// absurd allocation before validation catches them.
const (
	maxString    = 1 << 20 // longest id/value/dimension name
	maxPairs     = 1 << 16 // fact–dimension pairs per record
	maxIntervals = 1 << 16 // intervals per temporal element
	maxRecord    = 4 << 20 // WAL frame payload bytes
)

// castagnoli is the CRC-32C polynomial table every artifact checksum
// uses (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Pair is one annotated fact–dimension characterization of an appended
// fact: (dimension, value, annotation), mirroring core.MO.RelateAnnot.
type Pair struct {
	Dim   string
	Value string
	Annot dimension.Annot
}

// FactAppend is one durable append record: a new fact and its
// characterizations. Seq is the store-assigned append ordinal (the
// record's identity for folding and replay dedup); callers leave it
// zero.
type FactAppend struct {
	Seq    uint64
	FactID string
	Pairs  []Pair
}

// enc is an append-only little-endian encoder.
type enc struct{ b []byte }

func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i32(v int32)  { e.u32(uint32(v)) }
func (e *enc) byte(v byte)  { e.b = append(e.b, v) }
func (e *enc) str(s string) { e.u32(uint32(len(s))); e.b = append(e.b, s...) }
func (e *enc) pad8() { // align the next field to 8 bytes
	for len(e.b)%8 != 0 {
		e.b = append(e.b, 0)
	}
}

// dec is a bounds-checked little-endian decoder over untrusted bytes.
// Every read method reports failure through a typed error; none panics.
type dec struct {
	b   []byte
	off int
}

func (d *dec) remaining() int { return len(d.b) - d.off }

func (d *dec) need(n int) error {
	if n < 0 || d.remaining() < n {
		return fmt.Errorf("%w: need %d bytes at offset %d, have %d", ErrCorrupt, n, d.off, d.remaining())
	}
	return nil
}

func (d *dec) u32() (uint32, error) {
	if err := d.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v, nil
}

func (d *dec) u64() (uint64, error) {
	if err := d.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v, nil
}

func (d *dec) i32() (int32, error) {
	v, err := d.u32()
	return int32(v), err
}

func (d *dec) readByte() (byte, error) {
	if err := d.need(1); err != nil {
		return 0, err
	}
	v := d.b[d.off]
	d.off++
	return v, nil
}

func (d *dec) str() (string, error) {
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	if n > maxString {
		return "", fmt.Errorf("%w: string length %d exceeds cap at offset %d", ErrCorrupt, n, d.off)
	}
	if err := d.need(int(n)); err != nil {
		return "", err
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

// count reads a u32 element count capped at max — the cap bounds the
// allocation an adversarial length prefix can request.
func (d *dec) count(max uint32, what string) (int, error) {
	n, err := d.u32()
	if err != nil {
		return 0, err
	}
	if n > max {
		return 0, fmt.Errorf("%w: %s count %d exceeds cap %d", ErrCorrupt, what, n, max)
	}
	return int(n), nil
}

func (d *dec) pad8() error {
	for d.off%8 != 0 {
		if _, err := d.readByte(); err != nil {
			return err
		}
	}
	return nil
}

// annotAlways is the flag byte for the ubiquitous Always() annotation
// (probability 1, bitemporally unconstrained) — one byte instead of a
// serialized pair of elements.
const (
	annotAlways byte = 1
	annotFull   byte = 0
)

// alwaysAnnot is the one shared decode result for annotAlways flags:
// annotations are immutable values, and minting fresh temporal elements
// for every pair of a bulk replay is pure allocator churn.
var alwaysAnnot = dimension.Always()

func (e *enc) annot(a dimension.Annot) {
	if a.Prob == 1 &&
		a.Time.Valid.Equal(temporal.AlwaysElement()) &&
		a.Time.Trans.Equal(temporal.AlwaysElement()) {
		e.byte(annotAlways)
		return
	}
	e.byte(annotFull)
	e.u64(math.Float64bits(a.Prob))
	e.element(a.Time.Valid)
	e.element(a.Time.Trans)
}

func (e *enc) element(el temporal.Element) {
	ivs := el.Intervals()
	e.u32(uint32(len(ivs)))
	for _, iv := range ivs {
		e.i32(int32(iv.Start))
		e.i32(int32(iv.End))
	}
}

func (d *dec) annot() (dimension.Annot, error) {
	flag, err := d.readByte()
	if err != nil {
		return dimension.Annot{}, err
	}
	switch flag {
	case annotAlways:
		return alwaysAnnot, nil
	case annotFull:
		bits, err := d.u64()
		if err != nil {
			return dimension.Annot{}, err
		}
		prob := math.Float64frombits(bits)
		if math.IsNaN(prob) || prob < 0 || prob > 1 {
			return dimension.Annot{}, fmt.Errorf("%w: annotation probability %v out of [0,1]", ErrCorrupt, prob)
		}
		valid, err := d.element()
		if err != nil {
			return dimension.Annot{}, err
		}
		trans, err := d.element()
		if err != nil {
			return dimension.Annot{}, err
		}
		return dimension.Annot{Time: temporal.Bitemporal{Valid: valid, Trans: trans}, Prob: prob}, nil
	default:
		return dimension.Annot{}, fmt.Errorf("%w: unknown annotation flag %d", ErrCorrupt, flag)
	}
}

func (d *dec) element() (temporal.Element, error) {
	n, err := d.count(maxIntervals, "interval")
	if err != nil {
		return temporal.Element{}, err
	}
	ivs := make([]temporal.Interval, n)
	for i := range ivs {
		s, err := d.i32()
		if err != nil {
			return temporal.Element{}, err
		}
		e, err := d.i32()
		if err != nil {
			return temporal.Element{}, err
		}
		ivs[i] = temporal.Interval{Start: temporal.Chronon(s), End: temporal.Chronon(e)}
	}
	// NewElement canonicalizes (sorts, coalesces, drops empties), so no
	// byte sequence can smuggle a non-canonical element into the model.
	return temporal.NewElement(ivs...), nil
}

// encodeRecord serializes one append record as a WAL frame payload.
func encodeRecord(rec FactAppend) []byte {
	e := &enc{}
	e.u64(rec.Seq)
	e.str(rec.FactID)
	e.u32(uint32(len(rec.Pairs)))
	for _, p := range rec.Pairs {
		e.str(p.Dim)
		e.str(p.Value)
		e.annot(p.Annot)
	}
	return e.b
}

// decodeRecord parses a WAL frame payload. The payload must be consumed
// exactly — trailing bytes mean the frame length lied.
func decodeRecord(b []byte) (FactAppend, error) {
	d := &dec{b: b}
	rec, err := d.record()
	if err != nil {
		return FactAppend{}, err
	}
	if d.remaining() != 0 {
		return FactAppend{}, fmt.Errorf("%w: %d trailing bytes after record", ErrCorrupt, d.remaining())
	}
	return rec, nil
}

func (d *dec) record() (FactAppend, error) {
	var rec FactAppend
	var err error
	if rec.Seq, err = d.u64(); err != nil {
		return rec, err
	}
	if rec.FactID, err = d.str(); err != nil {
		return rec, err
	}
	if rec.FactID == "" {
		return rec, fmt.Errorf("%w: record with empty fact id", ErrCorrupt)
	}
	n, err := d.count(maxPairs, "pair")
	if err != nil {
		return rec, err
	}
	if n == 0 {
		return rec, fmt.Errorf("%w: record %q with no pairs", ErrCorrupt, rec.FactID)
	}
	rec.Pairs = make([]Pair, n)
	for i := range rec.Pairs {
		if rec.Pairs[i].Dim, err = d.str(); err != nil {
			return rec, err
		}
		if rec.Pairs[i].Value, err = d.str(); err != nil {
			return rec, err
		}
		if rec.Pairs[i].Annot, err = d.annot(); err != nil {
			return rec, err
		}
	}
	return rec, nil
}
