package segment

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"math"

	"mddm/internal/core"
	"mddm/internal/dimension"
	"mddm/internal/faultinject"
	"mddm/internal/storage"
)

// A column checkpoint snapshots the engine's built characterization
// columns — dictionary, dense []uint32 codes with the colNone/colMulti
// sentinels, sorted overflow side-table — covering the fact prefix
// [0, facts). It is a derived acceleration cache, not a source of truth:
// recovery that cannot use it (checksum failure, fingerprint or context
// drift, dictionary mismatch) rejects it with a counter and rebuilds
// columns from the closure bitmaps instead. The codes arrays are 8-byte
// aligned in the file so an mmap'd checkpoint can serve kernels directly
// from the page cache without copying.
//
//	"MCOL" | version u32 | baseFP u64 | ctxFP u64 | facts u64 | seq u64
//	cols:   u32 n, then per column:
//	        dim str | cat str
//	        dict:     u32 n, n strings
//	        overflow: u32 n, n × (fact u32 | vid u32)
//	        codes:    u32 n | pad to 8 | n × u32 (raw little-endian)
//	crc32c u32 over everything above

const ckMagic = "MCOL"

// ckColumn is one decoded checkpoint column. codes may be a view into
// the checkpoint image (the mmap path) — it is handed to
// storage.InstallColumn with len == cap so the engine's first append
// reallocates instead of writing through the view.
type ckColumn struct {
	dim, cat string
	vals     []string
	over     []storage.OverflowEntry
	codes    []uint32
}

// encodeCheckpoint snapshots every built column of eng.
func encodeCheckpoint(baseFP, ctxFP uint64, seq uint64, eng *storage.Engine) []byte {
	e := &enc{}
	e.b = append(e.b, ckMagic...)
	e.u32(formatVersion)
	e.u64(baseFP)
	e.u64(ctxFP)
	e.u64(uint64(eng.NumFacts()))
	e.u64(seq)
	cols := eng.BuiltColumns()
	e.u32(uint32(len(cols)))
	for _, dc := range cols {
		vals, codes, over, ok := eng.ColumnData(dc[0], dc[1])
		if !ok {
			// BuiltColumns just listed it; a concurrent engine swap would be
			// a caller bug. Encode an empty column rather than panic.
			vals, codes, over = nil, nil, nil
		}
		e.str(dc[0])
		e.str(dc[1])
		e.u32(uint32(len(vals)))
		for _, v := range vals {
			e.str(v)
		}
		e.u32(uint32(len(over)))
		for _, o := range over {
			e.u32(uint32(o.Fact))
			e.u32(o.Vid)
		}
		e.u32(uint32(len(codes)))
		e.pad8()
		for _, c := range codes {
			e.u32(c)
		}
	}
	e.u32(crc32.Checksum(e.b, castagnoli))
	return e.b
}

// decodeCheckpoint validates and parses a checkpoint image. When view is
// true (the mmap path on a little-endian machine with aligned data) the
// returned codes slices alias b; otherwise they are copies.
func decodeCheckpoint(b []byte, baseFP, ctxFP uint64, view bool) (facts int, seq uint64, cols []ckColumn, err error) {
	if len(b) < 4+4+8+8+8+8+4+4 {
		return 0, 0, nil, fmt.Errorf("%w: checkpoint truncated at %d bytes", ErrCorrupt, len(b))
	}
	if string(b[:4]) != ckMagic {
		return 0, 0, nil, fmt.Errorf("%w: bad checkpoint magic %q", ErrCorrupt, b[:4])
	}
	body, sum := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if err := checksumOK(body, sum); err != nil {
		return 0, 0, nil, fmt.Errorf("checkpoint file: %w", err)
	}
	d := &dec{b: body, off: 4}
	ver, err := d.u32()
	if err != nil {
		return 0, 0, nil, err
	}
	if ver != formatVersion {
		return 0, 0, nil, fmt.Errorf("%w: checkpoint format version %d, want %d", ErrCorrupt, ver, formatVersion)
	}
	fp, err := d.u64()
	if err != nil {
		return 0, 0, nil, err
	}
	if fp != baseFP {
		return 0, 0, nil, fmt.Errorf("%w: checkpoint fingerprint %016x, base is %016x", ErrBaseMismatch, fp, baseFP)
	}
	cfp, err := d.u64()
	if err != nil {
		return 0, 0, nil, err
	}
	if cfp != ctxFP {
		return 0, 0, nil, fmt.Errorf("%w: checkpoint context fingerprint %016x, engine context is %016x", ErrCorrupt, cfp, ctxFP)
	}
	nf, err := d.u64()
	if err != nil {
		return 0, 0, nil, err
	}
	if nf > 1<<40 {
		return 0, 0, nil, fmt.Errorf("%w: checkpoint fact count %d implausible", ErrCorrupt, nf)
	}
	if seq, err = d.u64(); err != nil {
		return 0, 0, nil, err
	}
	ncols, err := d.count(1<<16, "column")
	if err != nil {
		return 0, 0, nil, err
	}
	cols = make([]ckColumn, 0, ncols)
	for i := 0; i < ncols; i++ {
		var c ckColumn
		if c.dim, err = d.str(); err != nil {
			return 0, 0, nil, err
		}
		if c.cat, err = d.str(); err != nil {
			return 0, 0, nil, err
		}
		if c.vals, err = d.dictStrings("column value"); err != nil {
			return 0, 0, nil, err
		}
		nover, err := d.count(1<<28, "overflow")
		if err != nil {
			return 0, 0, nil, err
		}
		if nover*8 > d.remaining() {
			return 0, 0, nil, fmt.Errorf("%w: overflow count %d exceeds remaining bytes", ErrCorrupt, nover)
		}
		c.over = make([]storage.OverflowEntry, nover)
		for j := range c.over {
			f, err := d.u32()
			if err != nil {
				return 0, 0, nil, err
			}
			v, err := d.u32()
			if err != nil {
				return 0, 0, nil, err
			}
			c.over[j] = storage.OverflowEntry{Fact: int(f), Vid: v}
		}
		ncodes, err := d.count(1<<30, "code")
		if err != nil {
			return 0, 0, nil, err
		}
		if err := d.pad8(); err != nil {
			return 0, 0, nil, err
		}
		if ncodes*4 > d.remaining() {
			return 0, 0, nil, fmt.Errorf("%w: code count %d exceeds remaining bytes", ErrCorrupt, ncodes)
		}
		raw := d.b[d.off : d.off+ncodes*4]
		d.off += ncodes * 4
		if view && nativeLittle && ncodes > 0 && aligned4(raw) {
			c.codes = viewUint32(raw, ncodes)
		} else {
			c.codes = make([]uint32, ncodes)
			for j := range c.codes {
				c.codes[j] = binary.LittleEndian.Uint32(raw[j*4:])
			}
		}
		// len == cap: the engine's first append must reallocate, never
		// write through a view into read-only pages.
		c.codes = c.codes[:ncodes:ncodes]
		cols = append(cols, c)
	}
	if d.remaining() != 0 {
		return 0, 0, nil, fmt.Errorf("%w: %d trailing bytes after checkpoint columns", ErrCorrupt, d.remaining())
	}
	return int(nf), seq, cols, nil
}

// nativeLittle reports whether the machine's byte order matches the file
// format's little-endian layout; only then may codes be viewed in place.
var nativeLittle = func() bool {
	var x uint32 = 1
	b := make([]byte, 4)
	binary.NativeEndian.PutUint32(b, x)
	return b[0] == 1
}()

// checksumOK verifies a whole-artifact CRC-32C. The ChecksumMismatch
// faultinject point fires first, so corruption handling is testable
// without hand-crafting bit flips.
func checksumOK(body []byte, sum uint32) error {
	if err := faultinject.Check(faultinject.ChecksumMismatch); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if crc32.Checksum(body, castagnoli) != sum {
		return fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return nil
}

// fingerprintMO hashes the identity of the base MO — schema dimension
// names in schema order, the fact count, and every base fact id in
// sorted order. Two runs that derive the same base data agree on it;
// a store opened over different data is rejected with ErrBaseMismatch
// before any record is applied.
func fingerprintMO(m *core.MO) uint64 {
	h := fnv.New64a()
	for _, name := range m.Schema().DimensionNames() {
		h.Write([]byte(name))
		h.Write([]byte{0})
	}
	ids := m.Facts().IDs()
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(ids)))
	h.Write(n[:])
	for _, id := range ids {
		h.Write([]byte(id))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// fingerprintCtx hashes the evaluation context a checkpoint's columns
// were computed under: the same store reopened with a different
// reference date, instant filter, or probability threshold must not
// install columns admitting a different pair set.
func fingerprintCtx(ctx dimension.Context) uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	if ctx.Valid != nil {
		put(1)
		put(uint64(int64(*ctx.Valid)))
	} else {
		put(0)
	}
	if ctx.Trans != nil {
		put(1)
		put(uint64(int64(*ctx.Trans)))
	} else {
		put(0)
	}
	put(uint64(int64(ctx.Ref)))
	put(math.Float64bits(ctx.MinProb))
	return h.Sum64()
}
