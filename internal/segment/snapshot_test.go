package segment

import (
	"context"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mddm/internal/casestudy"
	"mddm/internal/core"
)

// snapHeader starts a snapshot body for base m at seq, up to but not
// including the facts section.
func snapHeader(m *core.MO, seq uint64) *enc {
	e := &enc{}
	e.b = append(e.b, snapMagic...)
	e.u32(formatVersion)
	e.u64(fingerprintMO(m))
	e.u64(seq)
	return e
}

// snapFacts writes the fact section: every base fact plus extras.
func snapFacts(e *enc, m *core.MO, extra ...string) []string {
	ids := append(m.Facts().IDs(), extra...)
	e.u32(uint32(len(ids)))
	for _, f := range ids {
		e.str(f)
	}
	return ids
}

// snapDims writes an empty dimension section per schema dimension.
func snapDims(e *enc, m *core.MO) {
	names := m.Schema().DimensionNames()
	e.u32(uint32(len(names)))
	for _, n := range names {
		e.str(n)
		e.u32(0) // dict
		e.u32(0) // groups
	}
}

// snapValid is the minimal decodable snapshot: all base facts, no
// appended records, every dimension empty.
func snapValid(m *core.MO) []byte {
	e := snapHeader(m, 0)
	snapFacts(e, m)
	snapDims(e, m)
	return e.b
}

func TestDecodeSnapshotValidation(t *testing.T) {
	m := base(t)
	fp := fingerprintMO(m)
	if _, err := decodeSnapshot(stamp(snapValid(m)), fp, m, testCtx()); err != nil {
		t.Fatalf("minimal valid snapshot rejected: %v", err)
	}

	// One dimension populated: the first schema dimension gets one value
	// and one single-pair group for fact index 0.
	names := m.Schema().DimensionNames()
	someVal := func(name string) string {
		vs := m.Dimension(name).Values()
		if len(vs) == 0 {
			t.Fatalf("dimension %q has no values", name)
		}
		return vs[0]
	}
	withGroup := func(mutate func(e *enc, name string)) []byte {
		e := snapHeader(m, 0)
		snapFacts(e, m)
		e.u32(uint32(len(names)))
		for i, n := range names {
			e.str(n)
			if i == 0 {
				mutate(e, n)
				continue
			}
			e.u32(0)
			e.u32(0)
		}
		return e.b
	}
	goodGroup := func(e *enc, name string) {
		e.u32(1)
		e.str(someVal(name))
		e.u32(1) // one group
		e.u32(0) // fact 0
		e.u32(1) // one pair
		e.u32(0) // value 0
		e.byte(annotAlways)
	}
	img, err := decodeSnapshot(stamp(withGroup(goodGroup)), fp, m, testCtx())
	if err != nil {
		t.Fatalf("populated snapshot rejected: %v", err)
	}
	if got := img.rels[names[0]].ValuesOf(img.facts[0]); len(got) != 1 || got[0] != someVal(names[0]) {
		t.Fatalf("decoded relation pairs: %v", got)
	}
	if bm := img.direct[names[0]][someVal(names[0])]; bm == nil || !bm.Has(0) {
		t.Fatal("decoded direct bitmap missing the admitted pair")
	}

	cases := []struct {
		name string
		img  []byte
		want error
	}{
		{"truncated", []byte("MSNP"), ErrCorrupt},
		{"bad-magic", stamp(append([]byte("XSNP"), snapValid(m)[4:]...)), ErrCorrupt},
		{"bad-version", stamp(func() []byte {
			b := snapValid(m)
			binary.LittleEndian.PutUint32(b[4:], 9)
			return b
		}()), ErrCorrupt},
		{"fp-mismatch", stamp(func() []byte {
			b := snapValid(m)
			binary.LittleEndian.PutUint64(b[8:], fp+1)
			return b
		}()), ErrBaseMismatch},
		{"fact-count-vs-seq", stamp(func() []byte {
			// seq 1 demands one appended fact; only the base is present.
			e := snapHeader(m, 1)
			snapFacts(e, m)
			snapDims(e, m)
			return e.b
		}()), ErrCorrupt},
		{"fact-count-lies", stamp(func() []byte {
			e := snapHeader(m, 0)
			e.u32(1 << 29) // facts claimed with no bytes behind them
			return e.b
		}()), ErrCorrupt},
		{"empty-fact-id", stamp(func() []byte {
			e := snapHeader(m, 1)
			ids := m.Facts().IDs()
			e.u32(uint32(len(ids) + 1))
			e.str("")
			for _, f := range ids {
				e.str(f)
			}
			snapDims(e, m)
			return e.b
		}()), ErrCorrupt},
		{"dup-fact", stamp(func() []byte {
			e := snapHeader(m, 1)
			ids := m.Facts().IDs()
			e.u32(uint32(len(ids) + 1))
			for _, f := range ids {
				e.str(f)
			}
			e.str(ids[0])
			snapDims(e, m)
			return e.b
		}()), ErrCorrupt},
		{"base-fact-missing", stamp(func() []byte {
			// Right total, but a base fact was swapped for a second new id:
			// appended coverage no longer matches seq.
			e := snapHeader(m, 1)
			ids := m.Facts().IDs()
			e.u32(uint32(len(ids) + 1))
			e.str("zz-new-a")
			e.str("zz-new-b")
			for _, f := range ids[1:] {
				e.str(f)
			}
			snapDims(e, m)
			return e.b
		}()), ErrCorrupt},
		{"dim-count-mismatch", stamp(func() []byte {
			e := snapHeader(m, 0)
			snapFacts(e, m)
			e.u32(uint32(len(names) + 1))
			return e.b
		}()), ErrCorrupt},
		{"dim-name-mismatch", stamp(func() []byte {
			e := snapHeader(m, 0)
			snapFacts(e, m)
			e.u32(uint32(len(names)))
			e.str("NoSuchDimension")
			e.u32(0)
			e.u32(0)
			return e.b
		}()), ErrCorrupt},
		{"unknown-value", stamp(withGroup(func(e *enc, name string) {
			e.u32(1)
			e.str("no-such-value")
			e.u32(0)
		})), ErrCorrupt},
		{"value-count-lies", stamp(withGroup(func(e *enc, name string) {
			e.u32(1 << 23) // values claimed with no bytes behind them
		})), ErrCorrupt},
		{"groups-over-facts", stamp(withGroup(func(e *enc, name string) {
			e.u32(1)
			e.str(someVal(name))
			e.u32(uint32(m.Facts().Len() + 1))
		})), ErrCorrupt},
		{"group-fact-out-of-range", stamp(withGroup(func(e *enc, name string) {
			e.u32(1)
			e.str(someVal(name))
			e.u32(1)
			e.u32(uint32(m.Facts().Len())) // one past the end
			e.u32(1)
			e.u32(0)
			e.byte(annotAlways)
		})), ErrCorrupt},
		{"dup-group-fact", stamp(withGroup(func(e *enc, name string) {
			e.u32(1)
			e.str(someVal(name))
			e.u32(2)
			for i := 0; i < 2; i++ {
				e.u32(0) // fact 0 twice
				e.u32(1)
				e.u32(0)
				e.byte(annotAlways)
			}
		})), ErrCorrupt},
		{"zero-pair-group", stamp(withGroup(func(e *enc, name string) {
			e.u32(1)
			e.str(someVal(name))
			e.u32(1)
			e.u32(0)
			e.u32(0) // no pairs
		})), ErrCorrupt},
		{"pair-value-out-of-range", stamp(withGroup(func(e *enc, name string) {
			e.u32(1)
			e.str(someVal(name))
			e.u32(1)
			e.u32(0)
			e.u32(1)
			e.u32(7) // value index 7, dict has 1
			e.byte(annotAlways)
		})), ErrCorrupt},
		{"dup-value-in-group", stamp(withGroup(func(e *enc, name string) {
			e.u32(1)
			e.str(someVal(name))
			e.u32(1)
			e.u32(0)
			e.u32(2)
			for i := 0; i < 2; i++ {
				e.u32(0) // value 0 twice
				e.byte(annotAlways)
			}
		})), ErrCorrupt},
		{"trailing-bytes", stamp(append(snapValid(m), 0xbe)), ErrCorrupt},
		{"flipped-bit", func() []byte {
			b := stamp(snapValid(m))
			b[25] ^= 1
			return b
		}(), ErrCorrupt},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := decodeSnapshot(c.img, fp, m, testCtx()); !errors.Is(err, c.want) {
				t.Fatalf("err = %v, want %v", err, c.want)
			}
		})
	}
}

// TestSnapshotRoundTrip encodes a live engine's state and decodes it
// against a fresh base: facts, appended ids, relations, and admitted
// bitmaps must all survive the trip.
func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, eng := openRecovered(t, dir, Options{})
	recs := testRecords(t, st.MO(), 9)
	for _, rec := range recs {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	img := encodeSnapshot(st.baseFP, st.Seq(), st.MO(), eng)

	fresh := base(t)
	dec, err := decodeSnapshot(img, st.baseFP, fresh, testCtx())
	if err != nil {
		t.Fatal(err)
	}
	if dec.seq != uint64(len(recs)) || len(dec.appended) != len(recs) {
		t.Fatalf("seq %d appended %d, want %d", dec.seq, len(dec.appended), len(recs))
	}
	if len(dec.facts) != fresh.Facts().Len()+len(recs) {
		t.Fatalf("facts %d", len(dec.facts))
	}
	for _, name := range fresh.Schema().DimensionNames() {
		if !dec.rels[name].Equal(st.MO().Relation(name)) {
			t.Errorf("relation %q did not round-trip", name)
		}
	}
	// Spot-check a bitmap: the first record's diagnosis pair must be
	// admitted for its fact position.
	pos := -1
	for i, f := range dec.facts {
		if f == recs[0].FactID {
			pos = i
		}
	}
	if pos < 0 {
		t.Fatal("appended fact missing from snapshot order")
	}
	bm := dec.direct[casestudy.DimDiagnosis][recs[0].Pairs[0].Value]
	if bm == nil || !bm.Has(pos) {
		t.Fatal("admitted diagnosis pair missing from direct bitmap")
	}
}

// TestSnapshotRestoreFastPath pins that a reopen of a folded store goes
// through the snapshot (restore counter advances, no checkpoint or
// snapshot rejects) and answers queries identically to a from-scratch
// rebuild.
func TestSnapshotRestoreFastPath(t *testing.T) {
	dir := t.TempDir()
	st, eng := openRecovered(t, dir, Options{})
	if err := eng.WarmColumns(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	recs := testRecords(t, st.MO(), 20)
	for _, rec := range recs {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	restores, rejects, ckRejects := mSnapshotRestores.Value(), mSnapshotRejects.Value(), mCheckpointRejects.Value()
	_, eng2 := openRecovered(t, dir, Options{})
	if mSnapshotRestores.Value() != restores+1 {
		t.Error("recovery did not restore from the snapshot")
	}
	if mSnapshotRejects.Value() != rejects || mCheckpointRejects.Value() != ckRejects {
		t.Error("clean recovery counted a reject")
	}
	assertEngineEqual(t, eng2, rebuildReference(t, recs))
}

// TestSnapshotCorruptionSoft damages the snapshot in every way a disk
// can (corrupt bytes, truncation, deletion) and requires recovery to
// fall back to full replay with a counted reject — bit-identical
// answers, no error surfaced.
func TestSnapshotCorruptionSoft(t *testing.T) {
	damage := []struct {
		name string
		hit  func(t *testing.T, path string)
	}{
		{"byte-flip", func(t *testing.T, path string) { flipByte(t, path, 60) }},
		{"truncated", func(t *testing.T, path string) {
			if err := os.Truncate(path, 40); err != nil {
				t.Fatal(err)
			}
		}},
		{"empty", func(t *testing.T, path string) {
			if err := os.Truncate(path, 0); err != nil {
				t.Fatal(err)
			}
		}},
		{"missing", func(t *testing.T, path string) {
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, d := range damage {
		t.Run(d.name, func(t *testing.T) {
			dir := t.TempDir()
			st, _ := openRecovered(t, dir, Options{})
			recs := testRecords(t, st.MO(), 12)
			for _, rec := range recs {
				if err := st.Append(rec); err != nil {
					t.Fatal(err)
				}
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			man, _, err := loadManifest(dir)
			if err != nil {
				t.Fatal(err)
			}
			if man.Snapshot == nil {
				t.Fatal("close-time fold wrote no snapshot")
			}
			d.hit(t, filepath.Join(dir, man.Snapshot.File))

			rejects := mSnapshotRejects.Value()
			_, eng := openRecovered(t, dir, Options{})
			if mSnapshotRejects.Value() != rejects+1 {
				t.Error("damaged snapshot was not counted rejected")
			}
			assertEngineEqual(t, eng, rebuildReference(t, recs))
		})
	}
}

// TestSnapshotManifestDisagreement rejects a snapshot whose commit-record
// entry disagrees with the decoded file — and falls back to replay.
func TestSnapshotManifestDisagreement(t *testing.T) {
	dir := t.TempDir()
	st, _ := openRecovered(t, dir, Options{})
	recs := testRecords(t, st.MO(), 8)
	for _, rec := range recs {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	man, _, err := loadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	man.Snapshot.Seq++
	if err := saveManifest(dir, man); err != nil {
		t.Fatal(err)
	}

	rejects := mSnapshotRejects.Value()
	_, eng := openRecovered(t, dir, Options{})
	if mSnapshotRejects.Value() != rejects+1 {
		t.Error("disagreeing snapshot was not counted rejected")
	}
	assertEngineEqual(t, eng, rebuildReference(t, recs))
}

// TestSnapshotFactOrderPreserved is the permutation regression: appended
// ids that sort BEFORE every base id make the rebuild order differ from
// the fold-time engine order, which is exactly the case the snapshot's
// persisted order (and the checkpoint install gated on it) must survive.
func TestSnapshotFactOrderPreserved(t *testing.T) {
	dir := t.TempDir()
	st, eng := openRecovered(t, dir, Options{})
	if err := eng.WarmColumns(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	recs := testRecords(t, st.MO(), 10)
	for i := range recs {
		// "AAA..." sorts before every base fact id.
		recs[i].FactID = strings.Replace(recs[i].FactID, "newpat", "AAApat", 1)
		if err := st.Append(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, eng2 := openRecovered(t, dir, Options{})
	// The restored order must be the fold-time order: base facts first,
	// appended after — not the sorted order a rebuild would produce.
	facts := eng2.ExportFacts()
	if facts[0] == recs[0].FactID {
		t.Fatal("restored engine sorted appended facts first: fold-time order lost")
	}
	if got := facts[len(facts)-len(recs)]; got != recs[0].FactID {
		t.Fatalf("appended facts not in append order: %q", got)
	}
	// And the installed columns must agree with a from-scratch reference
	// on every kernel answer.
	if len(eng2.BuiltColumns()) == 0 {
		t.Fatal("checkpoint did not install on the snapshot path")
	}
	assertEngineEqual(t, eng2, rebuildReference(t, recs))
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotOnlyRefreshIsPaired pins the pairing invariant: whenever a
// fold refreshes one derived artifact it refreshes both, and the two
// always carry the same seq — the checkpoint is only installable against
// the snapshot's fact order.
func TestSnapshotOnlyRefreshIsPaired(t *testing.T) {
	dir := t.TempDir()
	st, _ := openRecovered(t, dir, Options{})
	recs := testRecords(t, st.MO(), 30)
	for i, rec := range recs {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
		if i%10 == 9 {
			if err := st.Fold(); err != nil {
				t.Fatal(err)
			}
			man, _, err := loadManifest(dir)
			if err != nil {
				t.Fatal(err)
			}
			if man.Snapshot == nil || man.Columns == nil {
				t.Fatal("fold left a derived artifact missing")
			}
			if man.Snapshot.Seq != man.Columns.Seq {
				t.Fatalf("derived artifacts diverged: snapshot seq %d, columns seq %d",
					man.Snapshot.Seq, man.Columns.Seq)
			}
		}
	}
}

// TestFallbackRejectsCheckpoint pins the order-trust rule directly: a
// recovery that could not use the snapshot must not install the
// checkpoint either, because nothing then vouches for the positional
// fact order its codes assume.
func TestFallbackRejectsCheckpoint(t *testing.T) {
	dir := t.TempDir()
	st, eng := openRecovered(t, dir, Options{})
	if err := eng.WarmColumns(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	recs := testRecords(t, st.MO(), 10)
	for _, rec := range recs {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	man, _, err := loadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, man.Snapshot.File)); err != nil {
		t.Fatal(err)
	}

	ckRejects := mCheckpointRejects.Value()
	_, eng2 := openRecovered(t, dir, Options{})
	if mCheckpointRejects.Value() != ckRejects+1 {
		t.Error("fallback recovery did not count the checkpoint rejected")
	}
	if n := len(eng2.BuiltColumns()); n != 0 {
		t.Fatalf("fallback recovery installed %d checkpoint columns over an unverified fact order", n)
	}
	assertEngineEqual(t, eng2, rebuildReference(t, recs))
}

// TestDeferredRelationMaterializes pins that a restored MO's relations,
// though lazily built, behave identically to eagerly built ones for
// every accessor — including the write paths appends use.
func TestDeferredRelationMaterializes(t *testing.T) {
	dir := t.TempDir()
	st, _ := openRecovered(t, dir, Options{})
	recs := testRecords(t, st.MO(), 6)
	for _, rec := range recs {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, _ := openRecovered(t, dir, Options{})
	want := base(t)
	for _, rec := range recs {
		if err := applyPairs(want, rec); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range want.Schema().DimensionNames() {
		got, ref := st2.MO().Relation(name), want.Relation(name)
		if got.Len() != ref.Len() {
			t.Fatalf("relation %q: %d pairs, want %d", name, got.Len(), ref.Len())
		}
		if !got.Equal(ref) {
			t.Errorf("relation %q diverges from eager build", name)
		}
	}
	// The restored store keeps accepting appends through the same path.
	extra := testRecords(t, st2.MO(), 8)[7]
	if err := st2.Append(extra); err != nil {
		t.Fatal(err)
	}
	if !st2.MO().Relation(casestudy.DimDiagnosis).Has(extra.FactID, extra.Pairs[0].Value) {
		t.Fatal("append after restore missing from relation")
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShallowSegmentVerification pins that snapshot-covered segments are
// still integrity-checked at open: corruption under the snapshot is a
// hard error, not silently skipped.
func TestShallowSegmentVerification(t *testing.T) {
	dir := t.TempDir()
	st, _ := openRecovered(t, dir, Options{})
	recs := testRecords(t, st.MO(), 10)
	for _, rec := range recs {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	man, _, err := loadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Segments) == 0 || man.Snapshot == nil || man.Snapshot.Seq < man.Segments[0].To {
		t.Fatal("test setup: segment not covered by the snapshot")
	}
	flipByte(t, filepath.Join(dir, man.Segments[0].File), 60)

	st2, err := Open(dir, base(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, err := st2.Recover(context.Background(), testCtx()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("recovery over a corrupt covered segment: %v, want ErrCorrupt", err)
	}
}

// TestSnapshotOrphanSweep pins that unreferenced .msnp files are crash
// debris and removed at open.
func TestSnapshotOrphanSweep(t *testing.T) {
	dir := t.TempDir()
	st, _ := openRecovered(t, dir, Options{})
	recs := testRecords(t, st.MO(), 3)
	for _, rec := range recs {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, "snap-999999999999.msnp")
	if err := os.WriteFile(orphan, []byte("debris"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, _ := openRecovered(t, dir, Options{})
	defer st2.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan snapshot survived open: %v", err)
	}
	man, _, err := loadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, man.Snapshot.File)); err != nil {
		t.Fatalf("live snapshot swept: %v", err)
	}
}

// TestAnnotationsSurviveSnapshot pins that non-Always annotations
// (probability, bounded valid time) round-trip the snapshot path: the
// restored engine must answer a context-sensitive query identically to a
// rebuild, which only holds if every annotation decoded exactly.
func TestAnnotationsSurviveSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, _ := openRecovered(t, dir, Options{})
	recs := testRecords(t, st.MO(), 15) // every third record: prob 0.9, bounded valid time
	for _, rec := range recs {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, eng := openRecovered(t, dir, Options{})
	assertEngineEqual(t, eng, rebuildReference(t, recs))
	// Annotation-level check, beyond the aggregate differential: the
	// restored relation must hold the probabilistic bounded-time annotation
	// bit-for-bit.
	m2 := base(t)
	for _, rec := range recs {
		if err := applyPairs(m2, rec); err != nil {
			t.Fatal(err)
		}
	}
	got, ok1 := st2.MO().Relation(casestudy.DimDiagnosis).Annot(recs[1].FactID, recs[1].Pairs[0].Value)
	ref, ok2 := m2.Relation(casestudy.DimDiagnosis).Annot(recs[1].FactID, recs[1].Pairs[0].Value)
	if !ok1 || !ok2 || got.Prob != ref.Prob || !got.Time.Valid.Equal(ref.Time.Valid) || !got.Time.Trans.Equal(ref.Time.Trans) {
		t.Fatalf("annotation did not survive: got %+v ok=%v, want %+v ok=%v", got, ok1, ref, ok2)
	}
}
