package segment

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// The write-ahead log is the durability point of every append: a fixed
// header followed by length-prefixed, CRC-framed record payloads. The
// protocol is strictly append-only — a crash can only ever damage the
// final frame, and the opener detects that torn tail (short frame,
// over-long length, checksum or decode failure, sequence gap) and
// truncates the file back to the last intact frame. Anything before the
// tear was acknowledged durable and is never dropped; anything after it
// was never acknowledged and is never half-applied.
//
//	header:  "MWAL" | version u32 | baseFP u64 | startSeq u64 | crc32c u32
//	frame:   len u32 | crc32c(payload) u32 | payload (encodeRecord)
//
// startSeq is the sequence number of the first frame; frame i carries
// seq startSeq+i, so replay can dedup against the folded prefix after a
// crash between folding and log rotation.

const (
	walMagic      = "MWAL"
	walHeaderSize = 4 + 4 + 8 + 8 + 4
	frameHeader   = 4 + 4
)

type walHeader struct {
	baseFP   uint64
	startSeq uint64
}

func encodeWALHeader(h walHeader) []byte {
	e := &enc{}
	e.b = append(e.b, walMagic...)
	e.u32(formatVersion)
	e.u64(h.baseFP)
	e.u64(h.startSeq)
	e.u32(crc32.Checksum(e.b, castagnoli))
	return e.b
}

func decodeWALHeader(b []byte) (walHeader, error) {
	if len(b) < walHeaderSize {
		return walHeader{}, fmt.Errorf("%w: WAL header truncated at %d bytes", ErrCorrupt, len(b))
	}
	if string(b[:4]) != walMagic {
		return walHeader{}, fmt.Errorf("%w: bad WAL magic %q", ErrCorrupt, b[:4])
	}
	sum := binary.LittleEndian.Uint32(b[walHeaderSize-4:])
	if crc32.Checksum(b[:walHeaderSize-4], castagnoli) != sum {
		return walHeader{}, fmt.Errorf("%w: WAL header checksum mismatch", ErrCorrupt)
	}
	d := &dec{b: b[4:walHeaderSize]}
	ver, _ := d.u32()
	if ver != formatVersion {
		return walHeader{}, fmt.Errorf("%w: WAL format version %d, want %d", ErrCorrupt, ver, formatVersion)
	}
	var h walHeader
	h.baseFP, _ = d.u64()
	h.startSeq, _ = d.u64()
	return h, nil
}

// encodeFrame wraps one record payload in the WAL framing.
func encodeFrame(payload []byte) []byte {
	e := &enc{b: make([]byte, 0, frameHeader+len(payload))}
	e.u32(uint32(len(payload)))
	e.u32(crc32.Checksum(payload, castagnoli))
	e.b = append(e.b, payload...)
	return e.b
}

// walScan is the result of scanning a WAL file: the intact records in
// order, and where the intact prefix ends. torn is true when the file
// holds bytes past good — the signature of a crash mid-append.
type walScan struct {
	header walHeader
	recs   []FactAppend
	good   int64 // byte offset just past the last intact frame
	torn   bool
}

// scanWAL walks the frames of a WAL image. A damaged frame — short,
// over-long, failing its checksum, undecodable, or breaking the
// startSeq+i sequence contract — ends the scan: everything before it is
// intact, everything from it on is a torn tail for the caller to
// truncate. Only a damaged header is a hard error: with the header gone
// there is no intact prefix to stand on.
func scanWAL(b []byte, baseFP uint64) (walScan, error) {
	h, err := decodeWALHeader(b)
	if err != nil {
		return walScan{}, err
	}
	if h.baseFP != baseFP {
		return walScan{}, fmt.Errorf("%w: WAL fingerprint %016x, base is %016x", ErrBaseMismatch, h.baseFP, baseFP)
	}
	s := walScan{header: h, good: walHeaderSize}
	off := int64(walHeaderSize)
	for off < int64(len(b)) {
		rest := b[off:]
		if len(rest) < frameHeader {
			s.torn = true
			break
		}
		n := binary.LittleEndian.Uint32(rest)
		sum := binary.LittleEndian.Uint32(rest[4:])
		if n > maxRecord || int64(len(rest)) < frameHeader+int64(n) {
			s.torn = true
			break
		}
		payload := rest[frameHeader : frameHeader+int(n)]
		if crc32.Checksum(payload, castagnoli) != sum {
			s.torn = true
			break
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			s.torn = true
			break
		}
		if rec.Seq != h.startSeq+uint64(len(s.recs)) {
			s.torn = true
			break
		}
		s.recs = append(s.recs, rec)
		off += frameHeader + int64(n)
		s.good = off
	}
	return s, nil
}
