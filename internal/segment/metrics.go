package segment

import "mddm/internal/obs"

// The mddm_segment_* series; inventoried in docs/OBSERVABILITY.md.
var (
	mSegmentsOpen = obs.NewGauge("mddm_segment_open",
		"Immutable segment files currently open across stores.")
	mBytesSegments = obs.NewGauge("mddm_segment_bytes",
		"Bytes of persisted store artifacts by kind.",
		obs.Label{Key: "kind", Value: "segments"})
	mBytesWAL = obs.NewGauge("mddm_segment_bytes",
		"Bytes of persisted store artifacts by kind.",
		obs.Label{Key: "kind", Value: "wal"})
	mBytesColumns = obs.NewGauge("mddm_segment_bytes",
		"Bytes of persisted store artifacts by kind.",
		obs.Label{Key: "kind", Value: "columns"})
	mBytesSnapshot = obs.NewGauge("mddm_segment_bytes",
		"Bytes of persisted store artifacts by kind.",
		obs.Label{Key: "kind", Value: "snapshot"})
	mWALAppends = obs.NewCounter("mddm_segment_wal_appends_total",
		"Append records durably framed into the write-ahead log.")
	mWALFsyncs = obs.NewCounter("mddm_segment_wal_fsyncs_total",
		"fsync calls issued on the write-ahead log.")
	mFolds = obs.NewCounter("mddm_segment_folds_total",
		"WAL-to-segment compaction folds completed.")
	mRecoveryTruncations = obs.NewCounter("mddm_segment_recovery_truncations_total",
		"Torn WAL tails truncated during recovery.")
	mCheckpointRejects = obs.NewCounter("mddm_segment_checkpoint_rejects_total",
		"Column checkpoints (or single columns) rejected during recovery; recovery proceeded by rebuilding columns.")
	mSnapshotRestores = obs.NewCounter("mddm_segment_snapshot_restores_total",
		"Recoveries that restored the engine from a snapshot instead of replaying history.")
	mSnapshotRejects = obs.NewCounter("mddm_segment_snapshot_rejects_total",
		"Engine snapshots rejected during recovery; recovery proceeded by replaying history.")
)
