//go:build !unix

package segment

import "errors"

// mmapFile is unsupported off unix; Options.MMap falls back to the
// copying read path.
func mmapFile(path string) ([]byte, error) {
	return nil, errors.ErrUnsupported
}

func munmap(b []byte) error { return nil }
