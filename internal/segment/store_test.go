package segment

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"mddm/internal/casestudy"
	"mddm/internal/core"
	"mddm/internal/dimension"
	"mddm/internal/faultinject"
	"mddm/internal/storage"
	"mddm/internal/temporal"
)

var testRef = func() temporal.Chronon {
	c, err := temporal.ParseDate("01/01/1999")
	if err != nil {
		panic(err)
	}
	return c
}()

func testCtx() dimension.Context { return dimension.CurrentContext(testRef) }

// base rebuilds the deterministic base MO every open starts from —
// exactly what a restarted process would re-derive.
func base(t testing.TB) *core.MO {
	t.Helper()
	m, err := casestudy.BuildPatientMO(casestudy.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// testRecords derives n valid append records from the base dimensions:
// a low-level diagnosis, a residence area, and an age per fact, with
// every third record carrying a probabilistic valid-time annotation and
// every other third a second diagnosis (many-to-many → colMulti
// coverage in the columns).
func testRecords(t testing.TB, m *core.MO, n int) []FactAppend {
	t.Helper()
	lows := m.Dimension(casestudy.DimDiagnosis).CategoryAt(casestudy.CatLowLevel, testCtx())
	areas := m.Dimension(casestudy.DimResidence).CategoryAt(casestudy.CatArea, testCtx())
	ages := m.Dimension(casestudy.DimAge).CategoryAt(casestudy.CatAge, testCtx())
	if len(lows) == 0 || len(areas) == 0 || len(ages) == 0 {
		t.Fatalf("base dimensions unexpectedly empty: %d lows, %d areas, %d ages", len(lows), len(areas), len(ages))
	}
	recs := make([]FactAppend, n)
	for i := range recs {
		pairs := []Pair{
			{Dim: casestudy.DimDiagnosis, Value: lows[i%len(lows)], Annot: dimension.Always()},
			{Dim: casestudy.DimResidence, Value: areas[i%len(areas)], Annot: dimension.Always()},
			{Dim: casestudy.DimAge, Value: ages[i%len(ages)], Annot: dimension.Always()},
		}
		switch i % 3 {
		case 1:
			pairs[0].Annot = dimension.Annot{
				Time: temporal.Bitemporal{Valid: temporal.Single(0, 20000), Trans: temporal.AlwaysElement()},
				Prob: 0.9,
			}
		case 2:
			pairs = append(pairs, Pair{
				Dim: casestudy.DimDiagnosis, Value: lows[(i+7)%len(lows)], Annot: dimension.Always(),
			})
		}
		recs[i] = FactAppend{FactID: fmt.Sprintf("newpat%04d", i), Pairs: pairs}
	}
	return recs
}

// rebuildReference is the from-scratch path every recovery must match:
// apply the records to a fresh base, build, warm.
func rebuildReference(t testing.TB, recs []FactAppend) *storage.Engine {
	t.Helper()
	m := base(t)
	for _, rec := range recs {
		if err := applyPairs(m, rec); err != nil {
			t.Fatal(err)
		}
	}
	eng, err := storage.BuildEngine(context.Background(), m, testCtx())
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

var testCats = [][2]string{
	{casestudy.DimDiagnosis, casestudy.CatLowLevel},
	{casestudy.DimDiagnosis, casestudy.CatFamily},
	{casestudy.DimDiagnosis, casestudy.CatGroup},
	{casestudy.DimResidence, casestudy.CatArea},
	{casestudy.DimResidence, casestudy.CatCounty},
	{casestudy.DimResidence, casestudy.CatRegion},
	{casestudy.DimAge, casestudy.CatAge},
}

// assertEngineEqual is the recovery differential: distinct counts over
// every category of the case study plus an age SUM must match the
// rebuilt reference exactly. Ages are integer-valued, so the sums are
// exact regardless of fact order.
func assertEngineEqual(t *testing.T, got, want *storage.Engine) {
	t.Helper()
	if g, w := got.NumFacts(), want.NumFacts(); g != w {
		t.Fatalf("recovered engine has %d facts, reference has %d", g, w)
	}
	ctx := context.Background()
	for _, dc := range testCats {
		g, err := got.CountDistinctByContext(ctx, dc[0], dc[1])
		if err != nil {
			t.Fatalf("recovered count %s/%s: %v", dc[0], dc[1], err)
		}
		w, err := want.CountDistinctByContext(ctx, dc[0], dc[1])
		if err != nil {
			t.Fatalf("reference count %s/%s: %v", dc[0], dc[1], err)
		}
		if !reflect.DeepEqual(g, w) {
			t.Errorf("count %s/%s diverges:\nrecovered %v\nreference %v", dc[0], dc[1], g, w)
		}
	}
	g, err := got.SumByContext(ctx, casestudy.DimDiagnosis, casestudy.CatGroup, casestudy.DimAge)
	if err != nil {
		t.Fatalf("recovered sum: %v", err)
	}
	w, err := want.SumByContext(ctx, casestudy.DimDiagnosis, casestudy.CatGroup, casestudy.DimAge)
	if err != nil {
		t.Fatalf("reference sum: %v", err)
	}
	if !reflect.DeepEqual(g, w) {
		t.Errorf("age sum by diagnosis group diverges:\nrecovered %v\nreference %v", g, w)
	}
}

// openRecovered opens dir over a fresh base and recovers the engine.
func openRecovered(t *testing.T, dir string, opts Options) (*Store, *storage.Engine) {
	t.Helper()
	st, err := Open(dir, base(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	eng, err := st.Recover(context.Background(), testCtx())
	if err != nil {
		t.Fatal(err)
	}
	return st, eng
}

// TestSegmentStoreRecoverEquivalence is the recovery matrix: whatever
// mix of folded segments and unfolded log tail a shutdown (clean or
// crash) leaves behind, load-after-crash must equal
// rebuild-from-scratch.
func TestSegmentStoreRecoverEquivalence(t *testing.T) {
	scenarios := []struct {
		name string
		run  func(t *testing.T, st *Store, recs []FactAppend)
	}{
		{"unfolded-tail", func(t *testing.T, st *Store, recs []FactAppend) {
			for _, rec := range recs {
				if err := st.Append(rec); err != nil {
					t.Fatal(err)
				}
			}
			// No Close: the process "crashes" with everything in the WAL.
		}},
		{"segments-plus-tail", func(t *testing.T, st *Store, recs []FactAppend) {
			for i, rec := range recs {
				if err := st.Append(rec); err != nil {
					t.Fatal(err)
				}
				if i == len(recs)/2 {
					if err := st.Fold(); err != nil {
						t.Fatal(err)
					}
				}
			}
		}},
		{"clean-shutdown", func(t *testing.T, st *Store, recs []FactAppend) {
			for _, rec := range recs {
				if err := st.Append(rec); err != nil {
					t.Fatal(err)
				}
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			dir := t.TempDir()
			st, eng := openRecovered(t, dir, Options{})
			if err := eng.WarmColumns(context.Background(), 2); err != nil {
				t.Fatal(err)
			}
			recs := testRecords(t, st.mo, 40)
			sc.run(t, st, recs)

			_, got := openRecovered(t, dir, Options{})
			assertEngineEqual(t, got, rebuildReference(t, recs))
		})
	}
}

// TestSegmentAppendAfterRecover proves a recovered store keeps
// accepting appends and stays durable through another cycle.
func TestSegmentAppendAfterRecover(t *testing.T) {
	dir := t.TempDir()
	st, _ := openRecovered(t, dir, Options{})
	recs := testRecords(t, st.mo, 30)
	for _, rec := range recs[:20] {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, _ := openRecovered(t, dir, Options{Sync: true})
	if got, want := st2.Seq(), uint64(20); got != want {
		t.Fatalf("recovered seq %d, want %d", got, want)
	}
	for _, rec := range recs[20:] {
		if err := st2.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	_, got := openRecovered(t, dir, Options{})
	assertEngineEqual(t, got, rebuildReference(t, recs))
}

func TestSegmentAppendValidation(t *testing.T) {
	dir := t.TempDir()
	st, _ := openRecovered(t, dir, Options{})
	recs := testRecords(t, st.mo, 2)
	good := recs[0]
	cases := []struct {
		name string
		rec  FactAppend
	}{
		{"empty-id", FactAppend{Pairs: good.Pairs}},
		{"no-pairs", FactAppend{FactID: "lonely"}},
		{"unknown-dim", FactAppend{FactID: "x1", Pairs: []Pair{{Dim: "Nope", Value: "v"}}}},
		{"unknown-value", FactAppend{FactID: "x1", Pairs: []Pair{{Dim: casestudy.DimDiagnosis, Value: "no-such-diagnosis"}}}},
	}
	for _, c := range cases {
		if err := st.Append(c.rec); err == nil {
			t.Errorf("%s: append accepted invalid record", c.name)
		}
	}
	if err := st.Append(good); err != nil {
		t.Fatalf("append after rejections: %v", err)
	}
	if err := st.Append(good); err == nil {
		t.Error("duplicate fact id accepted")
	}
	// Rejections must not have logged anything unreplayable.
	if err := st.Append(recs[1]); err != nil {
		t.Fatal(err)
	}
	_, got := openRecovered(t, dir, Options{})
	assertEngineEqual(t, got, rebuildReference(t, recs))
}

// TestWALTornTailTruncated injures the log the way a crash mid-write
// does — a frame header with only part of its payload — and checks the
// opener truncates exactly back to the acknowledged prefix.
func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	st, _ := openRecovered(t, dir, Options{Sync: true})
	recs := testRecords(t, st.mo, 10)
	for _, rec := range recs {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Simulated crash: a torn frame lands after the 10 good ones.
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := encodeFrame(encodeRecord(FactAppend{Seq: 10, FactID: "torn", Pairs: recs[0].Pairs}))
	if _, err := f.Write(torn[:len(torn)-3]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	before := mRecoveryTruncations.Value()
	_, got := openRecovered(t, dir, Options{})
	if mRecoveryTruncations.Value() != before+1 {
		t.Errorf("truncation counter did not advance")
	}
	assertEngineEqual(t, got, rebuildReference(t, recs))
}

// TestWALTearFaultPoint drives the same scenario through the
// faultinject point: the append reports failure, in-memory state is
// untouched, and a re-open recovers everything acknowledged before the
// tear.
func TestWALTearFaultPoint(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	dir := t.TempDir()
	st, eng := openRecovered(t, dir, Options{})
	recs := testRecords(t, st.mo, 8)
	for _, rec := range recs[:7] {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	faultinject.Enable(faultinject.WALTear, nil)
	if err := st.Append(recs[7]); err == nil {
		t.Fatal("append during WAL tear reported success")
	}
	faultinject.Reset()
	if got, want := eng.NumFacts(), rebuildReference(t, recs[:7]).NumFacts(); got != want {
		t.Fatalf("torn append mutated the engine: %d facts, want %d", got, want)
	}
	if err := st.Append(recs[7]); err == nil {
		t.Fatal("poisoned store accepted another append")
	}

	before := mRecoveryTruncations.Value()
	_, got := openRecovered(t, dir, Options{})
	if mRecoveryTruncations.Value() != before+1 {
		t.Errorf("truncation counter did not advance")
	}
	assertEngineEqual(t, got, rebuildReference(t, recs[:7]))
}

// TestSegmentPartialWriteFaultPoint crashes a fold mid-segment-write:
// the orphaned temp file must be swept at the next open and every
// record must still recover from the log.
func TestSegmentPartialWriteFaultPoint(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	dir := t.TempDir()
	st, _ := openRecovered(t, dir, Options{})
	recs := testRecords(t, st.mo, 12)
	for _, rec := range recs {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	faultinject.Enable(faultinject.SegmentWrite, nil)
	if err := st.Fold(); err == nil {
		t.Fatal("fold during injected segment-write fault reported success")
	}
	faultinject.Reset()
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(tmps) == 0 {
		t.Fatal("injected fold crash left no partial temp file")
	}

	_, got := openRecovered(t, dir, Options{})
	tmps, _ = filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(tmps) != 0 {
		t.Errorf("open left orphan temp files behind: %v", tmps)
	}
	assertEngineEqual(t, got, rebuildReference(t, recs))
}

// TestSegmentChecksumHardError corrupts a committed segment: the source
// of truth for its range is gone, so recovery must refuse loudly rather
// than serve wrong results.
func TestSegmentChecksumHardError(t *testing.T) {
	dir := t.TempDir()
	st, _ := openRecovered(t, dir, Options{})
	for _, rec := range testRecords(t, st.mo, 10) {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "*.mseg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("expected one segment file, got %v (%v)", segs, err)
	}
	flipByte(t, segs[0], 60)

	st2, err := Open(dir, base(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, err := st2.Recover(context.Background(), testCtx()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("recover over corrupt segment: err = %v, want ErrCorrupt", err)
	}
}

// TestChecksumFaultPoint arms the checksum point past the segment read
// so it fires on the checkpoint: recovery must succeed anyway, with the
// columns rebuilt instead of installed.
func TestChecksumFaultPoint(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	dir := t.TempDir()
	recs := writeFoldedStoreWithColumns(t, dir)

	before := mCheckpointRejects.Value()
	faultinject.EnableAfter(faultinject.ChecksumMismatch, nil, 1)
	_, got := openRecovered(t, dir, Options{})
	faultinject.Reset()
	if got.HasColumn(casestudy.DimDiagnosis, casestudy.CatLowLevel) {
		t.Error("checkpoint installed despite checksum fault")
	}
	if mCheckpointRejects.Value() == before {
		t.Error("checkpoint reject counter did not advance")
	}
	assertEngineEqual(t, got, rebuildReference(t, recs))
}

// TestCheckpointCorruptionSoft flips a byte in the column checkpoint:
// unlike a segment this is a derived cache, so recovery proceeds and
// rebuilds columns.
func TestCheckpointCorruptionSoft(t *testing.T) {
	dir := t.TempDir()
	recs := writeFoldedStoreWithColumns(t, dir)
	cols, err := filepath.Glob(filepath.Join(dir, "*.mcol"))
	if err != nil || len(cols) != 1 {
		t.Fatalf("expected one checkpoint file, got %v (%v)", cols, err)
	}
	flipByte(t, cols[0], 200)

	before := mCheckpointRejects.Value()
	_, got := openRecovered(t, dir, Options{})
	if got.HasColumn(casestudy.DimDiagnosis, casestudy.CatLowLevel) {
		t.Error("corrupt checkpoint was installed")
	}
	if mCheckpointRejects.Value() == before {
		t.Error("checkpoint reject counter did not advance")
	}
	assertEngineEqual(t, got, rebuildReference(t, recs))
}

// TestCheckpointContextDrift reopens a folded store under a different
// reference date: the persisted columns were computed under the old
// context and must be rejected, while the replayed records (which are
// context-independent) still recover correctly under the new one.
func TestCheckpointContextDrift(t *testing.T) {
	dir := t.TempDir()
	recs := writeFoldedStoreWithColumns(t, dir)

	drifted := dimension.CurrentContext(testRef + 500)
	st, err := Open(dir, base(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got, err := st.Recover(context.Background(), drifted)
	if err != nil {
		t.Fatal(err)
	}
	if got.HasColumn(casestudy.DimDiagnosis, casestudy.CatLowLevel) {
		t.Error("checkpoint from a different context was installed")
	}

	m := base(t)
	for _, rec := range recs {
		if err := applyPairs(m, rec); err != nil {
			t.Fatal(err)
		}
	}
	want, err := storage.BuildEngine(context.Background(), m, drifted)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, dc := range testCats {
		g, err1 := got.CountDistinctByContext(ctx, dc[0], dc[1])
		w, err2 := want.CountDistinctByContext(ctx, dc[0], dc[1])
		if err1 != nil || err2 != nil {
			t.Fatalf("count %s/%s: %v / %v", dc[0], dc[1], err1, err2)
		}
		if !reflect.DeepEqual(g, w) {
			t.Errorf("count %s/%s diverges under drifted context", dc[0], dc[1])
		}
	}
}

// TestCheckpointInstalledAndMMapParity recovers a folded store twice —
// once copying the checkpoint onto the heap, once mmap'ing it — and
// requires the column kernels to agree with each other, with the
// closure-bitmap path, and to survive an append (the mmap'd views are
// handed over with len == cap, so growth reallocates instead of writing
// the read-only pages).
func TestCheckpointInstalledAndMMapParity(t *testing.T) {
	dir := t.TempDir()
	recs := writeFoldedStoreWithColumns(t, dir)
	ctx := context.Background()

	stRAM, engRAM := openRecovered(t, dir, Options{})
	stMap, engMap := openRecovered(t, dir, Options{MMap: true})
	for _, eng := range []*storage.Engine{engRAM, engMap} {
		if !eng.HasColumn(casestudy.DimDiagnosis, casestudy.CatLowLevel) {
			t.Fatal("checkpoint columns were not installed")
		}
	}
	_ = stRAM
	for _, dc := range testCats {
		ram, err1 := engRAM.CountByColumn(ctx, dc[0], dc[1])
		mm, err2 := engMap.CountByColumn(ctx, dc[0], dc[1])
		if err1 != nil || err2 != nil {
			t.Fatalf("column count %s/%s: %v / %v", dc[0], dc[1], err1, err2)
		}
		if ram != nil && !reflect.DeepEqual(ram, mm) {
			t.Errorf("kernel over mmap diverges from in-RAM at %s/%s", dc[0], dc[1])
		}
	}
	assertEngineEqual(t, engMap, rebuildReference(t, recs))

	// Appending through the mmap-backed engine must reallocate, not
	// write the mapping.
	extra := testRecords(t, stMap.mo, len(recs)+1)[len(recs)]
	if err := stMap.Append(extra); err != nil {
		t.Fatal(err)
	}
	after, err := engMap.CountByColumn(ctx, casestudy.DimDiagnosis, casestudy.CatLowLevel)
	if err != nil {
		t.Fatal(err)
	}
	if after == nil {
		t.Fatal("column vanished after append")
	}
	if err := stMap.Close(); err != nil {
		t.Fatal(err)
	}
	engMap = nil
	stMap.ReleaseMaps()
}

func TestBaseMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	st, _ := openRecovered(t, dir, Options{})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	other := casestudy.MustGenerate(func() casestudy.GenConfig {
		cfg := casestudy.DefaultGen()
		cfg.Patients = 20
		return cfg
	}())
	if _, err := Open(dir, other, Options{}); !errors.Is(err, ErrBaseMismatch) {
		t.Fatalf("open with a different base: err = %v, want ErrBaseMismatch", err)
	}
}

func TestOpenRejectsWALWithoutManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walName), []byte("MWALgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, base(t), Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with orphan WAL: err = %v, want ErrCorrupt", err)
	}
}

// TestSegmentBackgroundFolder exercises the FoldEvery path: appends
// trigger folds without explicit calls, and recovery still matches.
func TestSegmentBackgroundFolder(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, base(t), Options{FoldEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recover(context.Background(), testCtx()); err != nil {
		t.Fatal(err)
	}
	recs := testRecords(t, st.mo, 30)
	for _, rec := range recs {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	man, ok, err := loadManifest(dir)
	if err != nil || !ok {
		t.Fatalf("manifest after folds: %v ok=%v", err, ok)
	}
	if man.FoldedSeq != 30 || len(man.Segments) == 0 {
		t.Fatalf("expected everything folded, got folded_seq=%d segments=%d", man.FoldedSeq, len(man.Segments))
	}
	_, got := openRecovered(t, dir, Options{})
	assertEngineEqual(t, got, rebuildReference(t, recs))
}

// TestSegmentAppendRaceWithQueries races appends (with background
// folding) against queries on the recovered engine — the store-level
// version of the storage package's append/query race tests.
func TestSegmentAppendRaceWithQueries(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, base(t), Options{FoldEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	eng, err := st.Recover(context.Background(), testCtx())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.WarmColumns(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	recs := testRecords(t, st.mo, 40)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, rec := range recs {
			if err := st.Append(rec); err != nil {
				t.Errorf("append: %v", err)
				return
			}
		}
	}()
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < 20; i++ {
				if _, err := eng.CountDistinctByContext(ctx, casestudy.DimDiagnosis, casestudy.CatGroup); err != nil {
					t.Errorf("query during appends: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	_, got := openRecovered(t, dir, Options{})
	assertEngineEqual(t, got, rebuildReference(t, recs))
}

// TestDecodeCorruptionSweep flips every byte of each artifact image in
// turn: the whole-file checksums must catch every flip with a typed
// error — no panic, no silent acceptance.
func TestDecodeCorruptionSweep(t *testing.T) {
	m := base(t)
	recs := testRecords(t, m, 6)
	for i := range recs {
		recs[i].Seq = uint64(i)
	}
	seg := encodeSegment(0xabcd, 0, 6, recs)
	for i := range seg {
		mut := append([]byte(nil), seg...)
		mut[i] ^= 0x40
		if _, _, _, err := decodeSegment(mut, 0xabcd); err == nil {
			t.Fatalf("segment byte flip at %d went undetected", i)
		} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBaseMismatch) {
			t.Fatalf("segment byte flip at %d: untyped error %v", i, err)
		}
	}

	eng, err := storage.BuildEngine(context.Background(), m, testCtx())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.WarmColumns(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	ck := encodeCheckpoint(0xabcd, 0x1234, 0, eng)
	for i := 0; i < len(ck); i += 3 {
		mut := append([]byte(nil), ck...)
		mut[i] ^= 0x40
		if _, _, _, err := decodeCheckpoint(mut, 0xabcd, 0x1234, false); err == nil {
			t.Fatalf("checkpoint byte flip at %d went undetected", i)
		}
	}

	fp := fingerprintMO(m)
	snap := encodeSnapshot(fp, 0, m, eng)
	for i := 0; i < len(snap); i += 3 {
		mut := append([]byte(nil), snap...)
		mut[i] ^= 0x40
		if _, err := decodeSnapshot(mut, fp, m, testCtx()); err == nil {
			t.Fatalf("snapshot byte flip at %d went undetected", i)
		} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBaseMismatch) {
			t.Fatalf("snapshot byte flip at %d: untyped error %v", i, err)
		}
	}

	wal := encodeWALHeader(walHeader{baseFP: 0xabcd, startSeq: 0})
	for _, rec := range recs {
		wal = append(wal, encodeFrame(encodeRecord(rec))...)
	}
	for i := range wal {
		mut := append([]byte(nil), wal...)
		mut[i] ^= 0x40
		scan, err := scanWAL(mut, 0xabcd)
		if i < walHeaderSize {
			if err == nil {
				t.Fatalf("WAL header byte flip at %d went undetected", i)
			}
			continue
		}
		if err != nil {
			t.Fatalf("WAL body byte flip at %d: unexpected hard error %v", i, err)
		}
		if !scan.torn || len(scan.recs) >= len(recs) {
			t.Fatalf("WAL body byte flip at %d: not detected as torn (%d recs)", i, len(scan.recs))
		}
	}
}

// writeFoldedStoreWithColumns builds a store whose single fold produced
// a checkpoint with warmed columns, then closes it cleanly.
func writeFoldedStoreWithColumns(t *testing.T, dir string) []FactAppend {
	t.Helper()
	st, err := Open(dir, base(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := st.Recover(context.Background(), testCtx())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.WarmColumns(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	recs := testRecords(t, st.mo, 15)
	for _, rec := range recs {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return recs
}

func flipByte(t *testing.T, path string, off int) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off >= len(b) {
		off = len(b) / 2
	}
	b[off] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestStoreLifecycleErrors pins the misuse surface: appends and folds
// before Recover, everything after Close, and double Close.
func TestStoreLifecycleErrors(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, base(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(FactAppend{FactID: "x", Pairs: []Pair{{Dim: casestudy.DimDiagnosis, Value: "whatever"}}}); err == nil {
		t.Error("append before Recover accepted")
	}
	if err := st.Fold(); err == nil {
		t.Error("fold before Recover accepted")
	}
	if st.Engine() != nil {
		t.Error("engine non-nil before Recover")
	}
	if _, err := st.Recover(context.Background(), testCtx()); err != nil {
		t.Fatal(err)
	}
	if st.Engine() == nil {
		t.Error("engine nil after Recover")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if err := st.Append(FactAppend{}); !errors.Is(err, errClosed) {
		t.Errorf("append after close: %v", err)
	}
	if _, err := st.Recover(context.Background(), testCtx()); !errors.Is(err, errClosed) {
		t.Errorf("recover after close: %v", err)
	}
	if err := st.Fold(); !errors.Is(err, errClosed) {
		t.Errorf("fold after close: %v", err)
	}
}

// TestManifestValidation rejects gap and version damage in the commit
// record.
func TestManifestValidation(t *testing.T) {
	dir := t.TempDir()
	write := func(s string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(s), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("{not json")
	if _, _, err := loadManifest(dir); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad json: %v", err)
	}
	write(`{"version": 99}`)
	if _, _, err := loadManifest(dir); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad version: %v", err)
	}
	write(`{"version": 1, "folded_seq": 10, "segments": [{"file":"a","from":0,"to":4}]}`)
	if _, _, err := loadManifest(dir); !errors.Is(err, ErrCorrupt) {
		t.Errorf("segment gap: %v", err)
	}
	write(`{"version": 1, "folded_seq": 4, "segments": [{"file":"a","from":0,"to":4}]}`)
	if _, ok, err := loadManifest(dir); err != nil || !ok {
		t.Errorf("valid manifest rejected: %v", err)
	}
	if !strings.Contains(dir, string(os.PathSeparator)) {
		t.Fatal("sanity")
	}
}
