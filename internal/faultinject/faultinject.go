// Package faultinject provides deterministic, named fault-injection
// points for robustness tests. Production code calls Check at an
// injection point; when nothing is armed this costs one atomic load.
// Tests arm points to return errors or panic, optionally only after a
// number of successful passes, which makes degradation scenarios (engine
// rebuild fails, closure expansion blows up mid-query, serialization
// breaks) reproducible without timing games.
//
// The registry is process-global and concurrency-safe. Tests that arm
// points must call Reset (usually via t.Cleanup) so later tests start
// clean.
package faultinject

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Point names an injection point on the query path.
type Point string

// The injection points wired into the engine and serving layer.
const (
	// EngineBuild fires at the start of storage.BuildEngine.
	EngineBuild Point = "engine-build"
	// ClosureExpand fires when a rollup-closure bitmap is expanded.
	ClosureExpand Point = "closure-expand"
	// PreAggLookup fires on pre-aggregate cache lookups.
	PreAggLookup Point = "preagg-lookup"
	// Serialize fires when a query result is serialized for transport.
	Serialize Point = "serialize"
	// QueryExec fires at the start of serve.(*Server).Query, inside the
	// panic-isolation scope.
	QueryExec Point = "query-exec"
	// PlanExec fires in the columnar planner (internal/plan) after a
	// query has been admitted to the planned path, just before the plan
	// executor runs — arming it proves the planner surfaces injected
	// failures instead of silently falling back to the algebra.
	PlanExec Point = "plan-exec"
	// PartitionWorker fires inside every partition worker of the parallel
	// execution engine (internal/exec), once per claimed task — arming it
	// with EnablePanic makes exactly the worker-panic containment path
	// reproducible.
	PartitionWorker Point = "partition-worker"
	// QueueStall fires in the admission controller's wake scan; while
	// armed the queue stops granting slots, so tests can deterministically
	// expire queued requests and prove expired entries never execute.
	QueueStall Point = "queue-stall"
	// QuotaExhausted fires in the admission controller's tenant-quota
	// check; while armed every request is treated as out of quota.
	QuotaExhausted Point = "quota-exhausted"
	// WALTear fires in the segment store's WAL append after a partial
	// frame has been written — the durable state is exactly what a crash
	// mid-write leaves behind, so recovery tests exercise the torn-tail
	// truncation path deterministically.
	WALTear Point = "wal-tear"
	// SegmentWrite fires mid-fold after a partial segment temp file has
	// been written, simulating a crash during compaction: the orphaned
	// temp file must be ignored and cleaned at the next open.
	SegmentWrite Point = "segment-write"
	// ChecksumMismatch fires in the segment store's checksum
	// verification; while armed every verified artifact is treated as
	// corrupt.
	ChecksumMismatch Point = "checksum-mismatch"
)

type rule struct {
	err      error
	panicVal any
	// after is how many Check passes succeed before the fault fires;
	// 0 fires immediately. Counted down under mu.
	after int
	hits  int
}

var (
	// armed counts armed points so the disarmed fast path is one atomic
	// load, no lock.
	armed atomic.Int32

	mu    sync.Mutex
	rules = map[Point]*rule{}
)

// Enable arms the point to fail every pass with err.
func Enable(p Point, err error) { EnableAfter(p, err, 0) }

// EnableAfter arms the point to let the first n passes succeed and fail
// every pass after that with err.
func EnableAfter(p Point, err error, n int) {
	if err == nil {
		err = fmt.Errorf("faultinject: injected fault at %s", p)
	}
	set(p, &rule{err: err, after: n})
}

// EnablePanic arms the point to panic with v on every pass.
func EnablePanic(p Point, v any) {
	if v == nil {
		v = fmt.Sprintf("faultinject: injected panic at %s", p)
	}
	set(p, &rule{panicVal: v})
}

func set(p Point, r *rule) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := rules[p]; !ok {
		armed.Add(1)
	}
	rules[p] = r
}

// Disable disarms the point.
func Disable(p Point) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := rules[p]; ok {
		delete(rules, p)
		armed.Add(-1)
	}
}

// Reset disarms every point.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for p := range rules {
		delete(rules, p)
	}
	armed.Store(0)
}

// Hits reports how many times the point actually fired (errored or
// panicked) since it was armed.
func Hits(p Point) int {
	mu.Lock()
	defer mu.Unlock()
	if r, ok := rules[p]; ok {
		return r.hits
	}
	return 0
}

// Armed lists the armed points, sorted; for diagnostics.
func Armed() []Point {
	mu.Lock()
	defer mu.Unlock()
	out := make([]Point, 0, len(rules))
	for p := range rules {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Check is the production-side hook: it returns the injected error (or
// panics) when the point is armed and due, and nil otherwise. Disarmed
// cost: one atomic load.
func Check(p Point) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	r, ok := rules[p]
	if !ok {
		mu.Unlock()
		return nil
	}
	if r.after > 0 {
		r.after--
		mu.Unlock()
		return nil
	}
	r.hits++
	err, pv := r.err, r.panicVal
	mu.Unlock()
	if pv != nil {
		panic(pv)
	}
	return err
}
