package faultinject

import (
	"errors"
	"testing"
)

func TestDisarmedIsNil(t *testing.T) {
	Reset()
	if err := Check(EngineBuild); err != nil {
		t.Fatal(err)
	}
	if got := Armed(); len(got) != 0 {
		t.Fatalf("armed: %v", got)
	}
}

func TestEnableAndDisable(t *testing.T) {
	t.Cleanup(Reset)
	boom := errors.New("boom")
	Enable(PreAggLookup, boom)
	if err := Check(PreAggLookup); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	// Other points stay clean.
	if err := Check(EngineBuild); err != nil {
		t.Fatal(err)
	}
	if Hits(PreAggLookup) != 1 {
		t.Fatalf("hits = %d", Hits(PreAggLookup))
	}
	Disable(PreAggLookup)
	if err := Check(PreAggLookup); err != nil {
		t.Fatal(err)
	}
}

func TestEnableAfterCountsPasses(t *testing.T) {
	t.Cleanup(Reset)
	EnableAfter(ClosureExpand, nil, 2)
	for i := 0; i < 2; i++ {
		if err := Check(ClosureExpand); err != nil {
			t.Fatalf("pass %d should succeed: %v", i, err)
		}
	}
	if err := Check(ClosureExpand); err == nil {
		t.Fatal("third pass should fail")
	}
	if err := Check(ClosureExpand); err == nil {
		t.Fatal("faults persist once due")
	}
	if Hits(ClosureExpand) != 2 {
		t.Fatalf("hits = %d", Hits(ClosureExpand))
	}
}

func TestEnablePanic(t *testing.T) {
	t.Cleanup(Reset)
	EnablePanic(Serialize, "kaboom")
	defer func() {
		if r := recover(); r != "kaboom" {
			t.Fatalf("recovered %v", r)
		}
	}()
	Check(Serialize)
	t.Fatal("Check should have panicked")
}

func TestResetClearsEverything(t *testing.T) {
	Enable(EngineBuild, nil)
	EnablePanic(Serialize, nil)
	Reset()
	if got := Armed(); len(got) != 0 {
		t.Fatalf("armed after Reset: %v", got)
	}
	if err := Check(EngineBuild); err != nil {
		t.Fatal(err)
	}
}
