package serialize

import (
	"encoding/csv"
	"fmt"
	"io"

	"mddm/internal/query"
)

// WriteResultCSV exports a query result as CSV (header row first).
func WriteResultCSV(w io.Writer, r *query.Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Columns); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadRowsCSV reads CSV back into a header plus rows (the inverse of
// WriteResultCSV for checking round trips and loading external tables).
func ReadRowsCSV(r io.Reader) (header []string, rows [][]string, err error) {
	cr := csv.NewReader(r)
	all, err := cr.ReadAll()
	if err != nil {
		return nil, nil, err
	}
	if len(all) == 0 {
		return nil, nil, fmt.Errorf("serialize: empty CSV")
	}
	return all[0], all[1:], nil
}
