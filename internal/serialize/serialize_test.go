package serialize

import (
	"bytes"
	"strings"
	"testing"

	"mddm/internal/casestudy"
	"mddm/internal/core"
	"mddm/internal/dimension"
	"mddm/internal/fact"
	"mddm/internal/query"
	"mddm/internal/temporal"
)

func TestJSONRoundTripCaseStudy(t *testing.T) {
	m, err := casestudy.BuildPatientMO(casestudy.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(back) {
		t.Error("round trip is not exact")
	}
	if back.Kind() != core.ValidTime {
		t.Errorf("kind = %v", back.Kind())
	}
	// Representations survive.
	code := back.Dimension(casestudy.DimDiagnosis).Representation("Code")
	if code == nil {
		t.Fatal("Code representation lost")
	}
	ctx := dimension.CurrentContext(temporal.MustDate("01/01/1999"))
	if v, ok := code.RepOf("9", ctx); !ok || v != "E10" {
		t.Errorf("Code(9) = %q, %v", v, ok)
	}
}

func TestJSONRoundTripSynthetic(t *testing.T) {
	cfg := casestudy.DefaultGen()
	cfg.Patients = 40
	m := casestudy.MustGenerate(cfg)
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(back) {
		t.Error("synthetic round trip is not exact")
	}
}

func TestJSONRoundTripGroupFacts(t *testing.T) {
	// Aggregate results (set-valued facts, Range categories) survive.
	s := core.MustSchema("F", dimension.MustDimensionType("D", dimension.Constant, dimension.KindString, "B"))
	m := core.NewMO(s)
	if err := m.Dimension("D").AddValue("B", "v"); err != nil {
		t.Fatal(err)
	}
	if err := m.Relate("D", "{1,2}", "v"); err != nil {
		t.Fatal(err)
	}
	// Replace the auto-added base fact with a true group fact.
	m.Facts().Remove("{1,2}")
	m.AddFact(groupFact([]string{"1", "2"}))

	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := back.Facts().Get("{1,2}")
	if !ok || !f.IsGroup() || f.Size() != 2 {
		t.Errorf("group fact lost: %+v (%v)", f, ok)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"format":"other/1"}`,
		`{"format":"mddm/1","factType":"F","kind":"weird","dimensions":[],"facts":[],"relations":{}}`,
		`{"format":"mddm/1","factType":"F","kind":"snapshot","dimensions":[{"type":{"name":"D","categories":[{"name":"B","aggType":"X","kind":"string"}],"order":[]},"values":[],"edges":[]}],"facts":[],"relations":{}}`,
		`{"format":"mddm/1","factType":"F","kind":"snapshot","dimensions":[{"type":{"name":"D","categories":[{"name":"B","aggType":"c","kind":"weird"}],"order":[]},"values":[],"edges":[]}],"facts":[],"relations":{}}`,
	}
	for _, src := range cases {
		if _, err := Decode(strings.NewReader(src)); err == nil {
			t.Errorf("Decode(%q): expected error", src)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	res := &query.Result{
		Columns: []string{"Diagnosis", "Count"},
		Rows:    [][]string{{"11", "2"}, {"12", "1"}},
	}
	var buf bytes.Buffer
	if err := WriteResultCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	header, rows, err := ReadRowsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(header, ",") != "Diagnosis,Count" || len(rows) != 2 || rows[1][1] != "1" {
		t.Errorf("round trip: %v %v", header, rows)
	}
	if _, _, err := ReadRowsCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV must fail")
	}
}

func TestAnnotOmission(t *testing.T) {
	// Always/certain annotations serialize to the empty object.
	ja := annotToJSON(dimension.Always())
	if ja.Valid != nil || ja.Trans != nil || ja.Prob != nil {
		t.Errorf("Always annot = %+v", ja)
	}
	back, err := annotFromJSON(ja)
	if err != nil {
		t.Fatal(err)
	}
	if back.Prob != 1 || !back.Time.Valid.Equal(temporal.AlwaysElement()) {
		t.Errorf("round trip = %+v", back)
	}
	// A probabilistic, valid-time annotation keeps both.
	a := dimension.ValidDuring(temporal.Span("01/01/80", "NOW")).WithProb(0.9)
	ja2 := annotToJSON(a)
	back2, err := annotFromJSON(ja2)
	if err != nil {
		t.Fatal(err)
	}
	if back2.Prob != 0.9 || !back2.Time.Valid.Equal(a.Time.Valid) {
		t.Errorf("round trip = %+v", back2)
	}
}

func groupFact(members []string) fact.Fact { return fact.NewGroup(members) }

func TestJSONRoundTripRandom(t *testing.T) {
	// Randomized MOs (temporal annotations, probabilities, non-strict
	// hierarchies, churned residences) round-trip exactly.
	for seed := int64(0); seed < 8; seed++ {
		cfg := casestudy.DefaultGen()
		cfg.Seed = seed
		cfg.Patients = 25
		m := casestudy.MustGenerate(cfg)
		var buf bytes.Buffer
		if err := Encode(&buf, m); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		back, err := Decode(&buf)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !m.Equal(back) {
			t.Errorf("seed %d: round trip not exact", seed)
		}
	}
}

func TestZeroProbRoundTrip(t *testing.T) {
	// An explicit probability-0 annotation must not decode as certain.
	a := dimension.Always().WithProb(0)
	back, err := annotFromJSON(annotToJSON(a))
	if err != nil {
		t.Fatal(err)
	}
	if back.Prob != 0 {
		t.Errorf("Prob = %v, want 0", back.Prob)
	}
}
