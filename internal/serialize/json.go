// Package serialize persists multidimensional objects: a stable JSON
// format for full MOs (schema, dimensions with annotated orders and
// representations, facts, fact–dimension relations with bitemporal and
// probability annotations) and CSV export for flattened query results.
// The JSON round trip is exact — Decode(Encode(mo)) is Equal to mo — and
// pinned by property tests.
package serialize

import (
	"encoding/json"
	"fmt"
	"io"

	"mddm/internal/core"
	"mddm/internal/dimension"
	"mddm/internal/fact"
	"mddm/internal/temporal"
)

// jsonInterval is one closed interval; NOW is encoded as the string "NOW".
type jsonInterval struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// jsonAnnot carries a statement's bitemporal element and probability.
// Empty interval lists mean "always"; Prob 0 means 1 (the JSON zero value
// maps to the common case).
type jsonAnnot struct {
	Valid []jsonInterval `json:"valid,omitempty"`
	Trans []jsonInterval `json:"trans,omitempty"`
	Prob  *float64       `json:"prob,omitempty"`
}

type jsonCategoryType struct {
	Name    string `json:"name"`
	AggType string `json:"aggType"`
	Kind    string `json:"kind"`
}

type jsonDimensionType struct {
	Name       string             `json:"name"`
	Categories []jsonCategoryType `json:"categories"`
	Order      [][2]string        `json:"order"` // [lower, higher]
}

type jsonValue struct {
	Category string    `json:"category"`
	ID       string    `json:"id"`
	Annot    jsonAnnot `json:"annot"`
}

type jsonEdge struct {
	Child  string    `json:"child"`
	Parent string    `json:"parent"`
	Annot  jsonAnnot `json:"annot"`
}

type jsonRepEntry struct {
	ID    string    `json:"id"`
	Value string    `json:"value"`
	Annot jsonAnnot `json:"annot"`
}

type jsonRepresentation struct {
	Name     string         `json:"name"`
	Category string         `json:"category,omitempty"`
	Entries  []jsonRepEntry `json:"entries"`
}

type jsonDimension struct {
	Type            jsonDimensionType    `json:"type"`
	Values          []jsonValue          `json:"values"`
	Edges           []jsonEdge           `json:"edges"`
	Representations []jsonRepresentation `json:"representations,omitempty"`
}

type jsonFact struct {
	ID      string   `json:"id"`
	Members []string `json:"members,omitempty"`
}

type jsonPair struct {
	Fact  string    `json:"fact"`
	Value string    `json:"value"`
	Annot jsonAnnot `json:"annot"`
}

type jsonMO struct {
	Format    string                `json:"format"`
	FactType  string                `json:"factType"`
	Kind      string                `json:"kind"`
	Dims      []jsonDimension       `json:"dimensions"`
	Facts     []jsonFact            `json:"facts"`
	Relations map[string][]jsonPair `json:"relations"`
}

// FormatVersion identifies the JSON format.
const FormatVersion = "mddm/1"

// Encode writes the MO as JSON.
func Encode(w io.Writer, m *core.MO) error {
	doc, err := toJSON(m)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Decode reads an MO back from JSON.
func Decode(r io.Reader) (*core.MO, error) {
	var doc jsonMO
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("serialize: %w", err)
	}
	return fromJSON(&doc)
}

func toJSON(m *core.MO) (*jsonMO, error) {
	doc := &jsonMO{
		Format:    FormatVersion,
		FactType:  m.Schema().FactType(),
		Kind:      m.Kind().String(),
		Relations: map[string][]jsonPair{},
	}
	for _, name := range m.Schema().DimensionNames() {
		d := m.Dimension(name)
		jd := jsonDimension{Type: typeToJSON(d.Type())}
		for _, id := range d.Values() {
			if id == dimension.TopValue {
				continue
			}
			cat, _ := d.CategoryOf(id)
			a, _ := d.Membership(id)
			jd.Values = append(jd.Values, jsonValue{Category: cat, ID: id, Annot: annotToJSON(a)})
		}
		for _, e := range d.Edges() {
			jd.Edges = append(jd.Edges, jsonEdge{Child: e.Child, Parent: e.Parent, Annot: annotToJSON(e.Annot)})
		}
		for _, rn := range d.Representations() {
			rep := d.Representation(rn)
			jr := jsonRepresentation{Name: rep.Name, Category: rep.Category}
			for _, e := range rep.Entries() {
				jr.Entries = append(jr.Entries, jsonRepEntry{ID: e.ID, Value: e.Val, Annot: annotToJSON(e.Annot)})
			}
			jd.Representations = append(jd.Representations, jr)
		}
		doc.Dims = append(doc.Dims, jd)

		var pairs []jsonPair
		for _, p := range m.Relation(name).Pairs() {
			pairs = append(pairs, jsonPair{Fact: p.FactID, Value: p.ValueID, Annot: annotToJSON(p.Annot)})
		}
		doc.Relations[name] = pairs
	}
	for _, f := range m.Facts().All() {
		doc.Facts = append(doc.Facts, jsonFact{ID: f.ID, Members: f.Members})
	}
	return doc, nil
}

func fromJSON(doc *jsonMO) (*core.MO, error) {
	if doc.Format != FormatVersion {
		return nil, fmt.Errorf("serialize: unknown format %q (want %q)", doc.Format, FormatVersion)
	}
	var types []*dimension.DimensionType
	for _, jd := range doc.Dims {
		t, err := typeFromJSON(jd.Type)
		if err != nil {
			return nil, err
		}
		types = append(types, t)
	}
	s, err := core.NewSchema(doc.FactType, types...)
	if err != nil {
		return nil, err
	}
	m := core.NewMO(s)
	kind, err := kindFromString(doc.Kind)
	if err != nil {
		return nil, err
	}
	m.SetKind(kind)
	for i, jd := range doc.Dims {
		name := types[i].Name()
		d := m.Dimension(name)
		for _, v := range jd.Values {
			a, err := annotFromJSON(v.Annot)
			if err != nil {
				return nil, err
			}
			if err := d.AddValueAnnot(v.Category, v.ID, a); err != nil {
				return nil, err
			}
		}
		for _, e := range jd.Edges {
			a, err := annotFromJSON(e.Annot)
			if err != nil {
				return nil, err
			}
			if err := d.AddEdgeAnnot(e.Child, e.Parent, a); err != nil {
				return nil, err
			}
		}
		for _, jr := range jd.Representations {
			rep, err := d.AddRepresentation(jr.Name, jr.Category)
			if err != nil {
				return nil, err
			}
			for _, e := range jr.Entries {
				a, err := annotFromJSON(e.Annot)
				if err != nil {
					return nil, err
				}
				if err := rep.MapAnnot(e.ID, e.Value, a); err != nil {
					return nil, err
				}
			}
		}
	}
	for _, f := range doc.Facts {
		if f.Members != nil {
			m.AddFact(fact.NewGroup(f.Members))
		} else {
			m.AddFact(fact.NewFact(f.ID))
		}
	}
	for name, pairs := range doc.Relations {
		for _, p := range pairs {
			a, err := annotFromJSON(p.Annot)
			if err != nil {
				return nil, err
			}
			if err := m.RelateAnnot(name, p.Fact, p.Value, a); err != nil {
				return nil, err
			}
		}
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("serialize: decoded MO invalid: %w", err)
	}
	return m, nil
}

func typeToJSON(t *dimension.DimensionType) jsonDimensionType {
	jt := jsonDimensionType{Name: t.Name()}
	for _, c := range t.CategoryTypes() {
		if c == dimension.TopName {
			continue
		}
		ct := t.CategoryType(c)
		jt.Categories = append(jt.Categories, jsonCategoryType{
			Name: ct.Name, AggType: ct.AggType.String(), Kind: ct.Kind.String(),
		})
		for _, p := range t.Pred(c) {
			if p == dimension.TopName {
				continue
			}
			jt.Order = append(jt.Order, [2]string{c, p})
		}
	}
	return jt
}

func typeFromJSON(jt jsonDimensionType) (*dimension.DimensionType, error) {
	t := dimension.NewDimensionType(jt.Name)
	for _, c := range jt.Categories {
		at, err := aggTypeFromString(c.AggType)
		if err != nil {
			return nil, err
		}
		k, err := kindFromStringVK(c.Kind)
		if err != nil {
			return nil, err
		}
		if err := t.AddCategoryType(c.Name, at, k); err != nil {
			return nil, err
		}
	}
	for _, e := range jt.Order {
		if err := t.AddOrder(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	if err := t.Finalize(); err != nil {
		return nil, err
	}
	return t, nil
}

func annotToJSON(a dimension.Annot) jsonAnnot {
	ja := jsonAnnot{}
	if !a.Time.Valid.Equal(temporal.AlwaysElement()) {
		ja.Valid = elementToJSON(a.Time.Valid)
	}
	if !a.Time.Trans.Equal(temporal.AlwaysElement()) {
		ja.Trans = elementToJSON(a.Time.Trans)
	}
	if a.Prob != 1 {
		p := a.Prob
		ja.Prob = &p
	}
	return ja
}

func annotFromJSON(ja jsonAnnot) (dimension.Annot, error) {
	a := dimension.Always()
	if ja.Valid != nil {
		e, err := elementFromJSON(ja.Valid)
		if err != nil {
			return a, err
		}
		a.Time.Valid = e
	}
	if ja.Trans != nil {
		e, err := elementFromJSON(ja.Trans)
		if err != nil {
			return a, err
		}
		a.Time.Trans = e
	}
	if ja.Prob != nil {
		a.Prob = *ja.Prob
	}
	return a, nil
}

func elementToJSON(e temporal.Element) []jsonInterval {
	ivs := e.Intervals()
	out := make([]jsonInterval, len(ivs))
	for i, iv := range ivs {
		out[i] = jsonInterval{From: chrononToString(iv.Start), To: chrononToString(iv.End)}
	}
	if out == nil {
		out = []jsonInterval{}
	}
	return out
}

func elementFromJSON(ivs []jsonInterval) (temporal.Element, error) {
	parsed := make([]temporal.Interval, 0, len(ivs))
	for _, iv := range ivs {
		from, err := temporal.ParseDate(iv.From)
		if err != nil {
			return temporal.Empty(), err
		}
		to, err := temporal.ParseDate(iv.To)
		if err != nil {
			return temporal.Empty(), err
		}
		span, err := temporal.NewInterval(from, to)
		if err != nil {
			return temporal.Empty(), fmt.Errorf("serialize: interval %q-%q: %w", iv.From, iv.To, err)
		}
		parsed = append(parsed, span)
	}
	return temporal.NewElement(parsed...), nil
}

func chrononToString(c temporal.Chronon) string { return c.String() }

func aggTypeFromString(s string) (dimension.AggType, error) {
	switch s {
	case "c":
		return dimension.Constant, nil
	case "φ":
		return dimension.Average, nil
	case "Σ":
		return dimension.Sum, nil
	default:
		return 0, fmt.Errorf("serialize: unknown aggregation type %q", s)
	}
}

func kindFromStringVK(s string) (dimension.ValueKind, error) {
	switch s {
	case "string":
		return dimension.KindString, nil
	case "int":
		return dimension.KindInt, nil
	case "float":
		return dimension.KindFloat, nil
	case "date":
		return dimension.KindDate, nil
	default:
		return 0, fmt.Errorf("serialize: unknown value kind %q", s)
	}
}

func kindFromString(s string) (core.TemporalKind, error) {
	switch s {
	case "snapshot":
		return core.Snapshot, nil
	case "valid-time":
		return core.ValidTime, nil
	case "transaction-time":
		return core.TransactionTime, nil
	case "bitemporal":
		return core.Bitemporal, nil
	default:
		return 0, fmt.Errorf("serialize: unknown temporal kind %q", s)
	}
}
