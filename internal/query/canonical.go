package query

import (
	"strconv"
	"strings"

	"mddm/internal/temporal"
)

// This file renders a parsed query back to one canonical SQL text — the
// result cache's key material (see internal/cache). Two query strings
// that parse to the same semantics (differing in whitespace, keyword
// case, redundant parentheses, quoted vs bare identifiers, number
// spellings, `!=` vs `<>`, or an explicit alias that matches the
// default) render identically; queries with distinct parameters render
// distinctly because every field of the Query struct is emitted in a
// fixed order with unambiguous quoting. The rendering is itself valid
// query syntax, which gives the canonicalizer a machine-checkable
// correctness property, enforced by FuzzCacheKey: Parse(q.Canonical())
// succeeds and reaches the same fixpoint
// (Parse(q.Canonical()).Canonical() == q.Canonical()).
//
// Deliberately NOT part of the canonical form: the parallelism degree,
// tracing, and every other context-carried execution knob — results are
// pinned identical across degrees (docs/EXECUTION.md), so a result
// computed at degree 8 may serve a degree-1 request. Catalog state
// (e.g. a GROUP BY with the category elided resolving to the bottom
// category) is also not folded in: such pairs simply occupy two cache
// slots, which costs duplicate work, never staleness.

// Canonical renders the query in canonical form. The text is stable
// across process runs (no map iteration is involved) and injective on
// the normalized Query value.
func (q *Query) Canonical() string {
	var b strings.Builder
	if q.Describe != "" {
		b.WriteString("DESCRIBE ")
		writeName(&b, q.Describe)
		if q.DescribeDim != "" {
			b.WriteByte(' ')
			writeName(&b, q.DescribeDim)
		}
		return b.String()
	}
	b.WriteString("SELECT ")
	if q.FactsOnly {
		b.WriteString("FACTS")
	} else {
		writeName(&b, q.Agg)
		if q.AggArg == "*" {
			b.WriteString("(*)")
		} else {
			b.WriteByte('(')
			writeName(&b, q.AggArg)
			b.WriteByte(')')
		}
		// The alias defaults to the function name (see RunContext), so an
		// explicit `AS SETCOUNT` on a SETCOUNT query is the same query;
		// rendering the resolved alias makes the two collide.
		alias := q.Alias
		if alias == "" {
			alias = q.Agg
		}
		b.WriteString(" AS ")
		writeName(&b, alias)
	}
	b.WriteString(" FROM ")
	writeName(&b, q.From)
	if q.Where != nil {
		b.WriteString(" WHERE ")
		writePred(&b, q.Where)
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			writeName(&b, g.Dim)
			if g.Cat != "" {
				b.WriteByte('.')
				writeName(&b, g.Cat)
			}
		}
	}
	if q.Having {
		b.WriteString(" HAVING ")
		b.WriteString(canonOp(q.HavingOp))
		b.WriteByte(' ')
		b.WriteString(formatNum(q.HavingVal))
	}
	// The parser keeps only the last ASOF of each kind, so a fixed
	// VALID-then-TRANS order loses nothing (the timeslices commute in
	// RunContext: VALID is always applied first regardless of source
	// order).
	if q.AsofValid != nil {
		b.WriteString(" ASOF VALID ")
		writeChronon(&b, *q.AsofValid)
	}
	if q.AsofTrans != nil {
		b.WriteString(" ASOF TRANS ")
		writeChronon(&b, *q.AsofTrans)
	}
	// PROB >= 0 admits everything, exactly like no PROB clause (the
	// executor always installs MinProb, zero or not), so 0 renders as
	// absent and the two spellings collide.
	if q.MinProb > 0 {
		b.WriteString(" WITH PROB >= ")
		b.WriteString(formatNum(q.MinProb))
	}
	if q.OrderBy != "" {
		b.WriteString(" ORDER BY ")
		writeName(&b, q.OrderBy)
		if q.OrderDesc {
			b.WriteString(" DESC")
		}
	}
	// LIMIT 0 is "no limit" in orderAndLimit, identical to omitting the
	// clause; both render as absent.
	if q.Limit > 0 {
		b.WriteString(" LIMIT ")
		b.WriteString(strconv.Itoa(q.Limit))
	}
	return b.String()
}

// writePred renders a predicate tree. AND/OR nodes carry their own
// parentheses so precedence survives re-parsing; NOT binds tighter and
// needs none of its own.
func writePred(b *strings.Builder, n PredNode) {
	switch x := n.(type) {
	case AndNode:
		b.WriteByte('(')
		for i, k := range x.Kids {
			if i > 0 {
				b.WriteString(" AND ")
			}
			writePred(b, k)
		}
		b.WriteByte(')')
	case OrNode:
		b.WriteByte('(')
		for i, k := range x.Kids {
			if i > 0 {
				b.WriteString(" OR ")
			}
			writePred(b, k)
		}
		b.WriteByte(')')
	case NotNode:
		b.WriteString("NOT ")
		writePred(b, x.Kid)
	case InNode:
		writeName(b, x.Dim)
		if x.Qualifier != "" {
			b.WriteByte('.')
			writeName(b, x.Qualifier)
		}
		if x.Negated {
			b.WriteString(" NOT")
		}
		b.WriteString(" IN (")
		for i, v := range x.Vals {
			if i > 0 {
				b.WriteString(", ")
			}
			writeString(b, v)
		}
		b.WriteByte(')')
	case CondNode:
		writeName(b, x.Dim)
		if x.Qualifier != "" {
			b.WriteByte('.')
			writeName(b, x.Qualifier)
		}
		b.WriteByte(' ')
		b.WriteString(canonOp(x.Op))
		b.WriteByte(' ')
		if x.IsNum {
			b.WriteString(formatNum(x.NumVal))
		} else {
			writeString(b, x.StrVal)
		}
	}
}

// writeName renders an identifier double-quoted (the lexer's tokQIdent
// form), doubling embedded quotes, so any name — keyword-shaped, spaced,
// or empty — re-parses to the identical string.
func writeName(b *strings.Builder, s string) {
	b.WriteByte('"')
	b.WriteString(strings.ReplaceAll(s, `"`, `""`))
	b.WriteByte('"')
}

// writeString renders a string literal single-quoted with doubled-quote
// escaping, mirroring the lexer.
func writeString(b *strings.Builder, s string) {
	b.WriteByte('\'')
	b.WriteString(strings.ReplaceAll(s, `'`, `''`))
	b.WriteByte('\'')
}

// writeChronon renders an ASOF instant in the dd/mm/yyyy form ParseDate
// accepts (NOW/BEGINNING/FOREVER render symbolically).
func writeChronon(b *strings.Builder, c temporal.Chronon) {
	writeString(b, c.String())
}

// canonOp folds the two spellings of "not equal" into one.
func canonOp(op string) string {
	if op == "!=" {
		return "<>"
	}
	return op
}

// formatNum renders a number in plain decimal — 'f' rather than 'g',
// because the lexer accepts only digits and dots (no exponents, no
// signs) and every literal it can produce is finite and non-negative.
// Precision -1 picks the shortest digits that round-trip through
// ParseFloat, so re-parsing recovers the identical float64.
func formatNum(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}
