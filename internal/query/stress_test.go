package query

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"mddm/internal/casestudy"
	"mddm/internal/dimension"
	"mddm/internal/qos"
	"mddm/internal/storage"
	"mddm/internal/temporal"
)

// TestConcurrentExecAndIncrementalUpdates is the serving-path race test:
// many goroutines run queries over a shared catalog while an engine over
// the same MO is incrementally updated. Run under -race this checks the
// concurrency contract end to end. The MO itself is fully prepared
// before the goroutines start (queries read it, appends only mutate the
// engine), mirroring production where a registered MO is immutable.
func TestConcurrentExecAndIncrementalUpdates(t *testing.T) {
	cfg := casestudy.DefaultGen()
	cfg.Patients = 60
	m := casestudy.MustGenerate(cfg)
	ref := temporal.MustDate("01/01/1999")
	e := storage.NewEngine(m, dimension.CurrentContext(ref))
	cache := storage.NewCache(e)

	// Prepare the incremental batch single-threaded.
	diag := m.Dimension(casestudy.DimDiagnosis)
	lows := diag.Category(casestudy.CatLowLevel)
	const extra = 30
	ids := make([]string, extra)
	for i := range ids {
		ids[i] = fmt.Sprintf("new%d", i)
		if err := m.Relate(casestudy.DimDiagnosis, ids[i], lows[i%len(lows)]); err != nil {
			t.Fatal(err)
		}
		if err := m.Relate(casestudy.DimResidence, ids[i], "A0"); err != nil {
			t.Fatal(err)
		}
	}

	cat := Catalog{"patients": m}
	queries := []string{
		`SELECT SETCOUNT(*) FROM patients GROUP BY Diagnosis."Diagnosis Group"`,
		`SELECT SETCOUNT(*) FROM patients GROUP BY Residence."Region"`,
		`SELECT FACTS FROM patients WHERE Residence = 'A0'`,
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: incremental engine maintenance
		defer wg.Done()
		for _, id := range ids {
			if err := e.AppendFact(id); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) { // readers: the full query path
			defer wg.Done()
			for i := 0; i < 25; i++ {
				res, err := ExecContext(context.Background(), queries[(r+i)%len(queries)], cat, ref)
				if err != nil {
					t.Error(err)
					return
				}
				if len(res.Rows) == 0 {
					t.Errorf("reader %d: empty result", r)
					return
				}
			}
		}(r)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() { // readers: the pre-aggregate serving path
			defer wg.Done()
			for i := 0; i < 25; i++ {
				_, err := cache.AggregateContext(context.Background(),
					casestudy.DimDiagnosis, casestudy.CatGroup, storage.KindCount, "")
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestCanceledContextStopsQuery checks that a canceled context stops a
// query before any real work happens.
func TestCanceledContextStopsQuery(t *testing.T) {
	m := casestudy.MustGenerate(casestudy.DefaultGen())
	cat := Catalog{"patients": m}
	ref := temporal.MustDate("01/01/1999")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ExecContext(ctx, `SELECT SETCOUNT(*) FROM patients GROUP BY Residence."Region"`, cat, ref)
	if !errors.Is(err, qos.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}
