package query

import (
	"testing"

	"mddm/internal/casestudy"
	"mddm/internal/temporal"
)

// FuzzParse checks that the parser never panics and that accepted queries
// re-execute deterministically. Under plain `go test` the seed corpus
// runs; `go test -fuzz=FuzzParse` explores further.
func FuzzParse(f *testing.F) {
	// The first block mirrors the Examples section of docs/QUERY.md
	// verbatim, so every documented query shape is in the corpus.
	seeds := []string{
		`SELECT SETCOUNT(*) AS Count FROM patients GROUP BY Diagnosis."Diagnosis Group"`,
		`SELECT SETCOUNT(*) AS N FROM patients GROUP BY Diagnosis."Diagnosis Family" ASOF VALID '15/06/1975'`,
		`SELECT EXPECTED(*) AS N FROM patients WHERE Diagnosis IN ('E10', 'E11') AND Age >= 40 GROUP BY Residence."Region" ORDER BY N DESC LIMIT 10`,
		`SELECT AVG(Age) FROM patients WHERE Residence = 'R1'`,
		`DESCRIBE patients Diagnosis`,
		`SELECT SETCOUNT(*) FROM patients`,
		`SELECT SUM(Age) FROM patients WHERE Residence = 'R1' AND Age > 40`,
		`SELECT FACTS FROM patients WHERE (A = 'x' OR B.Code = 'y') AND NOT C >= 3`,
		`SELECT AVG(Age) FROM patients ASOF VALID '15/06/1975' WITH PROB >= 0.9`,
		`SELECT EXPECTED(*) FROM patients ORDER BY N DESC LIMIT 3`,
		`SELECT MIN(DOB) FROM patients GROUP BY Age."Ten-year Group", Residence`,
		`'unclosed`,
		`SELECT ((((`,
		"SELECT \x00 FROM x",
		`ORDER LIMIT ASOF`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	m, err := casestudy.BuildPatientMO(casestudy.DefaultOptions())
	if err != nil {
		f.Fatal(err)
	}
	cat := Catalog{"patients": m}
	ref := temporal.MustDate("01/01/1999")
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		r1, err1 := Run(q, cat, ref)
		r2, err2 := Run(q, cat, ref)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("non-deterministic error for %q: %v vs %v", src, err1, err2)
		}
		if err1 != nil {
			return
		}
		if len(r1.Rows) != len(r2.Rows) {
			t.Fatalf("non-deterministic result for %q: %d vs %d rows", src, len(r1.Rows), len(r2.Rows))
		}
		for i := range r1.Rows {
			for j := range r1.Rows[i] {
				if r1.Rows[i][j] != r2.Rows[i][j] {
					t.Fatalf("non-deterministic cell for %q", src)
				}
			}
		}
	})
}
