package query

import (
	"strings"
	"testing"

	"mddm/internal/casestudy"
	"mddm/internal/core"
	"mddm/internal/dimension"
	"mddm/internal/temporal"
)

var ref = temporal.MustDate("01/01/1999")

func catalog(t *testing.T) Catalog {
	t.Helper()
	m, err := casestudy.BuildPatientMO(casestudy.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return Catalog{"patients": m}
}

func TestParseBasic(t *testing.T) {
	q, err := Parse(`SELECT SETCOUNT(*) AS Count FROM patients WHERE Age > 40 GROUP BY Diagnosis."Diagnosis Group" ASOF VALID '01/01/1995' WITH PROB >= 0.9`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Agg != "SETCOUNT" || q.AggArg != "*" || q.Alias != "Count" || q.From != "patients" {
		t.Errorf("head = %+v", q)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0].Dim != "Diagnosis" || q.GroupBy[0].Cat != "Diagnosis Group" {
		t.Errorf("group by = %+v", q.GroupBy)
	}
	if q.AsofValid == nil || q.AsofValid.String() != "01/01/1995" {
		t.Errorf("asof = %v", q.AsofValid)
	}
	if q.MinProb != 0.9 {
		t.Errorf("prob = %v", q.MinProb)
	}
	cond, ok := q.Where.(CondNode)
	if !ok || cond.Dim != "Age" || cond.Op != ">" || !cond.IsNum || cond.NumVal != 40 {
		t.Errorf("where = %+v", q.Where)
	}
}

func TestParsePredicates(t *testing.T) {
	q, err := Parse(`SELECT FACTS FROM m WHERE (A = 'x' OR B.Code = 'y') AND NOT C >= 3`)
	if err != nil {
		t.Fatal(err)
	}
	and, ok := q.Where.(AndNode)
	if !ok || len(and.Kids) != 2 {
		t.Fatalf("where = %+v", q.Where)
	}
	or, ok := and.Kids[0].(OrNode)
	if !ok || len(or.Kids) != 2 {
		t.Fatalf("or = %+v", and.Kids[0])
	}
	if c := or.Kids[1].(CondNode); c.Qualifier != "Code" || c.StrVal != "y" {
		t.Errorf("qualified cond = %+v", c)
	}
	if _, ok := and.Kids[1].(NotNode); !ok {
		t.Errorf("not = %+v", and.Kids[1])
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		``,
		`SELECT`,
		`SELECT SETCOUNT(*)`,
		`SELECT SETCOUNT(* FROM m`,
		`SELECT SETCOUNT(*) FROM`,
		`SELECT SETCOUNT(*) FROM m WHERE`,
		`SELECT SETCOUNT(*) FROM m WHERE A`,
		`SELECT SETCOUNT(*) FROM m WHERE A = `,
		`SELECT SETCOUNT(*) FROM m GROUP`,
		`SELECT SETCOUNT(*) FROM m ASOF '01/01/80'`,
		`SELECT SETCOUNT(*) FROM m ASOF VALID 01/01/80`,
		`SELECT SETCOUNT(*) FROM m ASOF VALID 'garbage'`,
		`SELECT SETCOUNT(*) FROM m WITH PROB > 0.9`,
		`SELECT SETCOUNT(*) FROM m WITH PROB >= x`,
		`SELECT SETCOUNT(*) FROM m trailing`,
		`SELECT SETCOUNT(*) FROM m WHERE A < 'str'`,
		`SELECT SETCOUNT(*) FROM m WHERE 'lit' = 'lit'`,
		`SELECT X(*) FROM m WHERE (A = 'x'`,
		`SELECT F( FROM m`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
	// Lexer errors.
	if _, err := Parse(`SELECT SETCOUNT(*) FROM m WHERE A = 'unterminated`); err == nil {
		t.Error("unterminated quote must fail")
	}
	if _, err := Parse("SELECT # FROM m"); err == nil {
		t.Error("bad character must fail")
	}
}

func TestLexerDetails(t *testing.T) {
	toks, err := lex(`a "b c" 'd''e' 0.9 <= <> != ( ) . , *`)
	if err != nil {
		t.Fatal(err)
	}
	texts := make([]string, 0, len(toks))
	for _, tk := range toks {
		if tk.kind == tokEOF {
			break
		}
		texts = append(texts, tk.text)
	}
	want := []string{"a", "b c", "d'e", "0.9", "<=", "<>", "!=", "(", ")", ".", ",", "*"}
	if strings.Join(texts, "|") != strings.Join(want, "|") {
		t.Errorf("tokens = %v, want %v", texts, want)
	}
}

func TestExecFigure3(t *testing.T) {
	res, err := Exec(`SELECT SETCOUNT(*) AS Count FROM patients GROUP BY Diagnosis."Diagnosis Group"`, catalog(t), ref)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(res.Columns, ",") != "Diagnosis,Count" {
		t.Errorf("columns = %v", res.Columns)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0] != "11" || res.Rows[0][1] != "2" || res.Rows[1][0] != "12" || res.Rows[1][1] != "1" {
		t.Errorf("rows = %v", res.Rows)
	}
	if res.Summarizable {
		t.Error("non-strict grouping must be flagged")
	}
	out := RenderResult(res)
	if !strings.Contains(out, "not summarizable") {
		t.Errorf("render must warn:\n%s", out)
	}
}

func TestExecWhere(t *testing.T) {
	// By code representation, unqualified: E10 resolves via the Code rep.
	res, err := Exec(`SELECT FACTS FROM patients WHERE Diagnosis = 'E10'`, catalog(t), ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("rows = %v", res.Rows)
	}
	// Qualified representation.
	res2, err := Exec(`SELECT FACTS FROM patients WHERE Diagnosis.Text = 'Diabetes' AND Age > 40`, catalog(t), ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != 1 || res2.Rows[0][0] != "2" {
		t.Errorf("rows = %v", res2.Rows)
	}
	// By direct value id.
	res3, err := Exec(`SELECT FACTS FROM patients WHERE Diagnosis = '12'`, catalog(t), ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Rows) != 1 || res3.Rows[0][0] != "2" {
		t.Errorf("rows = %v", res3.Rows)
	}
	// Negation.
	res4, err := Exec(`SELECT FACTS FROM patients WHERE Diagnosis <> '12'`, catalog(t), ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(res4.Rows) != 1 || res4.Rows[0][0] != "1" {
		t.Errorf("rows = %v", res4.Rows)
	}
	// A literal that matches nothing.
	res5, err := Exec(`SELECT FACTS FROM patients WHERE Residence = 'Atlantis'`, catalog(t), ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(res5.Rows) != 0 {
		t.Errorf("rows = %v", res5.Rows)
	}
}

func TestExecAsofValid(t *testing.T) {
	// In 1975, no patient is characterized by the 1980 classification.
	res, err := Exec(`SELECT SETCOUNT(*) AS N FROM patients GROUP BY Diagnosis."Diagnosis Family" ASOF VALID '15/06/1975'`, catalog(t), ref)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, r := range res.Rows {
		got[r[0]] = r[1]
	}
	if got["7"] != "1" || got["8"] != "1" || len(got) != 2 {
		t.Errorf("1975 rows = %v", res.Rows)
	}
}

func TestExecAggVariants(t *testing.T) {
	cat := catalog(t)
	avg, err := Exec(`SELECT AVG(Age) FROM patients`, cat, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(avg.Rows) != 1 || avg.Rows[0][0] != "38.5" {
		t.Errorf("avg = %v", avg.Rows)
	}
	sum, err := Exec(`SELECT SUM(Age) AS Total FROM patients GROUP BY Residence."Region"`, cat, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Rows) != 1 || sum.Rows[0][1] != "77" {
		t.Errorf("sum = %v", sum.Rows)
	}
	if !sum.Summarizable {
		t.Errorf("region SUM must be summarizable: %v", sum.Reasons)
	}
	// GROUP BY with defaulted (bottom) category.
	bot, err := Exec(`SELECT SETCOUNT(*) FROM patients GROUP BY Residence`, cat, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(bot.Rows) != 2 { // areas A1 and A2
		t.Errorf("bottom rows = %v", bot.Rows)
	}
}

func TestExecErrors(t *testing.T) {
	cat := catalog(t)
	cases := []string{
		`SELECT SETCOUNT(*) FROM nope`,
		`SELECT SETCOUNT(*) FROM patients GROUP BY Nope`,
		`SELECT SETCOUNT(*) FROM patients GROUP BY Diagnosis."Nope"`,
		`SELECT SETCOUNT(Age) FROM patients`,
		`SELECT SUM(*) FROM patients`,
		`SELECT MODE(Age) FROM patients`,
		`SELECT SUM(Diagnosis) FROM patients`,
		`SELECT FACTS FROM patients WHERE Nope = 'x'`,
		`SELECT FACTS FROM patients WHERE Diagnosis.Nope = 'x'`,
	}
	for _, src := range cases {
		if _, err := Exec(src, cat, ref); err == nil {
			t.Errorf("Exec(%q): expected error", src)
		}
	}
}

// TestExecMedian pins the holistic MEDIAN through the query layer: it is
// a registered function (unlike MODE above) and returns a value.
func TestExecMedian(t *testing.T) {
	res, err := Exec(`SELECT MEDIAN(Age) FROM patients`, catalog(t), ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestExecProbThreshold(t *testing.T) {
	cat := catalog(t)
	m := cat["patients"]
	// Add an uncertain diagnosis for patient 1.
	if err := m.RelateAnnot(casestudy.DimDiagnosis, "1", "12", alwaysWithProb(0.5)); err != nil {
		t.Fatal(err)
	}
	all, err := Exec(`SELECT FACTS FROM patients WHERE Diagnosis = '12'`, cat, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Rows) != 2 {
		t.Errorf("without threshold: %v", all.Rows)
	}
	sure, err := Exec(`SELECT FACTS FROM patients WHERE Diagnosis = '12' WITH PROB >= 0.9`, cat, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(sure.Rows) != 1 || sure.Rows[0][0] != "2" {
		t.Errorf("with threshold: %v", sure.Rows)
	}
}

func TestRunOnEmptyMO(t *testing.T) {
	cat := Catalog{"empty": core.NewMO(casestudy.PatientSchema())}
	res, err := Exec(`SELECT SETCOUNT(*) FROM empty GROUP BY Diagnosis."Diagnosis Group"`, cat, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func alwaysWithProb(p float64) dimension.Annot { return dimension.Always().WithProb(p) }

func TestExecProbabilisticAggregates(t *testing.T) {
	cat := catalog(t)
	m := cat["patients"]
	// An uncertain diagnosis: patient 1 in group 12 with probability 0.4.
	if err := m.RelateAnnot(casestudy.DimDiagnosis, "1", "12", alwaysWithProb(0.4)); err != nil {
		t.Fatal(err)
	}
	exp, err := Exec(`SELECT EXPECTED(*) AS N FROM patients GROUP BY Diagnosis."Diagnosis Group"`, cat, ref)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, r := range exp.Rows {
		got[r[0]] = r[1]
	}
	if got["11"] != "2" || got["12"] != "1.4" {
		t.Errorf("EXPECTED rows = %v", exp.Rows)
	}
	// Probabilistic functions reject argument dimensions in the language
	// too.
	if _, err := Exec(`SELECT EXPECTED(Age) FROM patients`, cat, ref); err == nil {
		t.Error("EXPECTED(Age) must be rejected")
	}
}

func TestDescribe(t *testing.T) {
	cat := catalog(t)
	res, err := Exec(`DESCRIBE patients`, cat, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 4 || res.Columns[0] != "Dimension" {
		t.Errorf("columns = %v", res.Columns)
	}
	// Six dimensions, each with its categories including ⊤.
	found := map[string]bool{}
	for _, r := range res.Rows {
		found[r[0]+"/"+r[1]] = true
	}
	for _, want := range []string{
		"Diagnosis/Low-level Diagnosis", "Diagnosis/⊤", "Age/Five-year Group", "DOB/Week",
	} {
		if !found[want] {
			t.Errorf("describe missing %s", want)
		}
	}
	// Single dimension.
	one, err := Exec(`DESCRIBE patients Diagnosis`, cat, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Rows) != 4 {
		t.Errorf("diagnosis rows = %v", one.Rows)
	}
	// The aggregation type column shows the paper's symbols.
	if one.Rows[0][2] != "c" {
		t.Errorf("aggtype = %q", one.Rows[0][2])
	}
	// Errors.
	if _, err := Exec(`DESCRIBE nope`, cat, ref); err == nil {
		t.Error("unknown MO must fail")
	}
	if _, err := Exec(`DESCRIBE patients Nope`, cat, ref); err == nil {
		t.Error("unknown dimension must fail")
	}
	if _, err := Exec(`DESCRIBE`, cat, ref); err == nil {
		t.Error("missing name must fail")
	}
}

func TestOrderByLimit(t *testing.T) {
	cat := catalog(t)
	// Order by the count descending: group 11 (2 patients) first.
	res, err := Exec(`SELECT SETCOUNT(*) AS N FROM patients GROUP BY Diagnosis."Diagnosis Group" ORDER BY N DESC`, cat, ref)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "11" || res.Rows[1][0] != "12" {
		t.Errorf("desc rows = %v", res.Rows)
	}
	asc, err := Exec(`SELECT SETCOUNT(*) AS N FROM patients GROUP BY Diagnosis."Diagnosis Group" ORDER BY N ASC`, cat, ref)
	if err != nil {
		t.Fatal(err)
	}
	if asc.Rows[0][0] != "12" {
		t.Errorf("asc rows = %v", asc.Rows)
	}
	// LIMIT caps output.
	one, err := Exec(`SELECT SETCOUNT(*) AS N FROM patients GROUP BY Diagnosis."Diagnosis Group" ORDER BY N DESC LIMIT 1`, cat, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Rows) != 1 || one.Rows[0][0] != "11" {
		t.Errorf("limited rows = %v", one.Rows)
	}
	// Ordering by a grouping column sorts lexically/numerically.
	byDim, err := Exec(`SELECT SETCOUNT(*) AS N FROM patients GROUP BY Diagnosis."Diagnosis Group" ORDER BY Diagnosis DESC`, cat, ref)
	if err != nil {
		t.Fatal(err)
	}
	if byDim.Rows[0][0] != "12" {
		t.Errorf("by-dim rows = %v", byDim.Rows)
	}
	// Errors.
	if _, err := Exec(`SELECT SETCOUNT(*) AS N FROM patients GROUP BY Diagnosis ORDER BY Nope`, cat, ref); err == nil {
		t.Error("unknown ORDER BY column must fail")
	}
	if _, err := Exec(`SELECT SETCOUNT(*) FROM patients LIMIT x`, cat, ref); err == nil {
		t.Error("bad LIMIT must fail")
	}
	if _, err := Exec(`SELECT SETCOUNT(*) FROM patients ORDER N`, cat, ref); err == nil {
		t.Error("ORDER without BY must fail")
	}
}

func TestHaving(t *testing.T) {
	cat := catalog(t)
	res, err := Exec(`SELECT SETCOUNT(*) AS N FROM patients GROUP BY Diagnosis."Diagnosis Group" HAVING > 1`, cat, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "11" {
		t.Errorf("HAVING rows = %v", res.Rows)
	}
	all, err := Exec(`SELECT SETCOUNT(*) AS N FROM patients GROUP BY Diagnosis."Diagnosis Group" HAVING >= 1`, cat, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Rows) != 2 {
		t.Errorf("HAVING >= 1 rows = %v", all.Rows)
	}
	// HAVING composes with ORDER BY and LIMIT.
	combo, err := Exec(`SELECT SETCOUNT(*) AS N FROM patients GROUP BY Diagnosis."Diagnosis Group" HAVING >= 1 ORDER BY N DESC LIMIT 1`, cat, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(combo.Rows) != 1 || combo.Rows[0][1] != "2" {
		t.Errorf("combo rows = %v", combo.Rows)
	}
	// Errors.
	if _, err := Exec(`SELECT SETCOUNT(*) FROM patients HAVING 1`, cat, ref); err == nil {
		t.Error("HAVING without operator must fail")
	}
	if _, err := Exec(`SELECT SETCOUNT(*) FROM patients HAVING > x`, cat, ref); err == nil {
		t.Error("HAVING without number must fail")
	}
}

func TestInList(t *testing.T) {
	cat := catalog(t)
	res, err := Exec(`SELECT FACTS FROM patients WHERE Diagnosis IN ('E10', 'O2')`, cat, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("IN rows = %v", res.Rows)
	}
	only12, err := Exec(`SELECT FACTS FROM patients WHERE Diagnosis IN ('12')`, cat, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(only12.Rows) != 1 || only12.Rows[0][0] != "2" {
		t.Errorf("IN('12') rows = %v", only12.Rows)
	}
	neg, err := Exec(`SELECT FACTS FROM patients WHERE Diagnosis NOT IN ('12')`, cat, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(neg.Rows) != 1 || neg.Rows[0][0] != "1" {
		t.Errorf("NOT IN rows = %v", neg.Rows)
	}
	qual, err := Exec(`SELECT FACTS FROM patients WHERE Diagnosis.Code IN ('E10', 'E11')`, cat, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(qual.Rows) != 2 {
		t.Errorf("qualified IN rows = %v", qual.Rows)
	}
	// Errors.
	for _, src := range []string{
		`SELECT FACTS FROM patients WHERE Diagnosis IN ()`,
		`SELECT FACTS FROM patients WHERE Diagnosis IN ('a'`,
		`SELECT FACTS FROM patients WHERE Diagnosis IN ('a', 3)`,
		`SELECT FACTS FROM patients WHERE Diagnosis NOT = 'x'`,
		`SELECT FACTS FROM patients WHERE Nope IN ('a')`,
	} {
		if _, err := Exec(src, cat, ref); err == nil {
			t.Errorf("Exec(%q): expected error", src)
		}
	}
}

func TestExecAsofTrans(t *testing.T) {
	// A bitemporal MO: a diagnosis valid from 1982 but only entered into
	// the database in 1990.
	cat := catalog(t)
	m := cat["patients"]
	m.SetKind(core.Bitemporal)
	a := dimension.Annot{
		Time: temporal.Bitemporal{
			Valid: temporal.Span("01/01/82", "NOW"),
			Trans: temporal.Span("01/01/90", "NOW"),
		},
		Prob: 1,
	}
	if err := m.RelateAnnot(casestudy.DimDiagnosis, "1", "10", a); err != nil {
		t.Fatal(err)
	}
	before, err := Exec(`SELECT FACTS FROM patients WHERE Diagnosis = '10' ASOF TRANS '01/01/1985'`, cat, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Rows) != 0 {
		t.Errorf("1985 database state = %v", before.Rows)
	}
	after, err := Exec(`SELECT FACTS FROM patients WHERE Diagnosis = '10' ASOF TRANS '01/01/1995'`, cat, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Rows) != 1 || after.Rows[0][0] != "1" {
		t.Errorf("1995 database state = %v", after.Rows)
	}
	// Both slices together: database of 1995, world of 1983.
	both, err := Exec(`SELECT FACTS FROM patients WHERE Diagnosis = '10' ASOF VALID '01/01/1983' ASOF TRANS '01/01/1995'`, cat, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(both.Rows) != 1 {
		t.Errorf("bitemporal rows = %v", both.Rows)
	}
}
