package query

import (
	"fmt"
	"strconv"
	"strings"

	"mddm/internal/temporal"
)

// Query is the parsed form of a query.
type Query struct {
	// Describe names an MO whose schema should be rendered (DESCRIBE mo
	// [dimension]); when set, all other fields except DescribeDim are
	// unused.
	Describe    string
	DescribeDim string
	// FactsOnly is SELECT FACTS: list qualifying facts, no aggregation.
	FactsOnly bool
	// Agg is the aggregate function name (when not FactsOnly).
	Agg string
	// AggArg is the argument dimension, or "*" for SETCOUNT/COUNT(*).
	AggArg string
	// Alias names the result dimension (AS alias; defaults to the function
	// name).
	Alias string
	// From names the MO in the catalog.
	From string
	// Where is the predicate tree, or nil.
	Where PredNode
	// GroupBy lists dimension/category pairs.
	GroupBy []GroupItem
	// AsofValid / AsofTrans are the timeslice instants, if given.
	AsofValid *temporal.Chronon
	AsofTrans *temporal.Chronon
	// MinProb is the WITH PROB >= threshold (0 if absent).
	MinProb float64
	// OrderBy names an output column to sort by ("" keeps the canonical
	// group order); OrderDesc reverses.
	OrderBy   string
	OrderDesc bool
	// Limit caps the number of output rows (0: no limit).
	Limit int
	// Having filters aggregation rows by the aggregate value (the column
	// named by Alias/Agg); HavingOp is one of the comparison operators.
	Having    bool
	HavingOp  string
	HavingVal float64
}

// GroupItem is one GROUP BY entry: a dimension and a category of it.
type GroupItem struct {
	Dim string
	Cat string
}

// PredNode is a node of the WHERE tree.
type PredNode interface{ isPred() }

// CondNode is a comparison: Dim [.Qualifier] op literal. Qualifier names a
// representation (for string comparisons) and is empty for direct value or
// numeric comparisons.
type CondNode struct {
	Dim       string
	Qualifier string
	Op        string // = <> != < <= > >=
	StrVal    string
	NumVal    float64
	IsNum     bool
}

// InNode is a membership test: Dim [.Qualifier] IN ('a', 'b', …) —
// shorthand for a disjunction of equalities.
type InNode struct {
	Dim       string
	Qualifier string
	Vals      []string
	Negated   bool // NOT IN
}

// AndNode conjoins children.
type AndNode struct{ Kids []PredNode }

// OrNode disjoins children.
type OrNode struct{ Kids []PredNode }

// NotNode negates its child.
type NotNode struct{ Kid PredNode }

func (CondNode) isPred() {}
func (InNode) isPred()   {}
func (AndNode) isPred()  {}
func (OrNode) isPred()   {}
func (NotNode) isPred()  {}

type parser struct {
	toks []token
	pos  int
}

// Parse parses a query string.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("query: unexpected %q after end of query", p.peek().text)
	}
	return q, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

// kw reports whether the next token is the given keyword
// (case-insensitive) and consumes it when it is.
func (p *parser) kw(word string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, word) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(word string) error {
	if !p.kw(word) {
		return fmt.Errorf("query: expected %s, got %q", word, p.peek().text)
	}
	return nil
}

func (p *parser) expectSym(sym string) error {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.pos++
		return nil
	}
	return fmt.Errorf("query: expected %q, got %q", sym, t.text)
}

// name accepts an identifier or a double-quoted identifier.
func (p *parser) name() (string, error) {
	t := p.peek()
	if t.kind == tokIdent || t.kind == tokQIdent {
		p.pos++
		return t.text, nil
	}
	return "", fmt.Errorf("query: expected a name, got %q", t.text)
}

func (p *parser) query() (*Query, error) {
	q := &Query{}
	// DESCRIBE <mo> [<dimension>] shows the schema's category lattices —
	// the paper's future-work idea of using the lattice structures
	// directly in the OLAP tool's interface.
	if p.kw("DESCRIBE") {
		name, err := p.name()
		if err != nil {
			return nil, err
		}
		q.Describe = name
		if p.peek().kind == tokIdent || p.peek().kind == tokQIdent {
			dim, err := p.name()
			if err != nil {
				return nil, err
			}
			q.DescribeDim = dim
		}
		return q, nil
	}
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	if p.kw("FACTS") {
		q.FactsOnly = true
	} else {
		fn, err := p.name()
		if err != nil {
			return nil, err
		}
		q.Agg = strings.ToUpper(fn)
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		if p.peek().kind == tokSymbol && p.peek().text == "*" {
			p.pos++
			q.AggArg = "*"
		} else {
			arg, err := p.name()
			if err != nil {
				return nil, err
			}
			q.AggArg = arg
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		if p.kw("AS") {
			alias, err := p.name()
			if err != nil {
				return nil, err
			}
			q.Alias = alias
		}
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	from, err := p.name()
	if err != nil {
		return nil, err
	}
	q.From = from

	if p.kw("WHERE") {
		w, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		q.Where = w
	}
	if p.kw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			dim, err := p.name()
			if err != nil {
				return nil, err
			}
			item := GroupItem{Dim: dim}
			if p.peek().kind == tokSymbol && p.peek().text == "." {
				p.pos++
				cat, err := p.name()
				if err != nil {
					return nil, err
				}
				item.Cat = cat
			}
			q.GroupBy = append(q.GroupBy, item)
			if p.peek().kind == tokSymbol && p.peek().text == "," {
				p.pos++
				continue
			}
			break
		}
	}
	if p.kw("HAVING") {
		// HAVING <op> <number> compares the aggregate column.
		op := p.peek()
		if op.kind != tokSymbol || !isCmp(op.text) {
			return nil, fmt.Errorf("query: expected a comparison after HAVING, got %q", op.text)
		}
		p.pos++
		t := p.peek()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("query: expected a number after HAVING %s, got %q", op.text, t.text)
		}
		p.pos++
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, err
		}
		q.Having = true
		q.HavingOp = op.text
		q.HavingVal = v
	}
	for p.kw("ASOF") {
		which := ""
		switch {
		case p.kw("VALID"):
			which = "valid"
		case p.kw("TRANS"), p.kw("TRANSACTION"):
			which = "trans"
		default:
			return nil, fmt.Errorf("query: expected VALID or TRANS after ASOF")
		}
		t := p.peek()
		if t.kind != tokString {
			return nil, fmt.Errorf("query: expected a quoted date after ASOF, got %q", t.text)
		}
		p.pos++
		c, err := temporal.ParseDate(t.text)
		if err != nil {
			return nil, fmt.Errorf("query: bad ASOF date: %w", err)
		}
		if which == "valid" {
			q.AsofValid = &c
		} else {
			q.AsofTrans = &c
		}
	}
	if p.kw("WITH") {
		if err := p.expectKw("PROB"); err != nil {
			return nil, err
		}
		if err := p.expectSym(">="); err != nil {
			return nil, err
		}
		t := p.peek()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("query: expected a number after PROB >=, got %q", t.text)
		}
		p.pos++
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("query: bad PROB threshold %q: %w", t.text, err)
		}
		q.MinProb = v
	}
	if p.kw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		col, err := p.name()
		if err != nil {
			return nil, err
		}
		q.OrderBy = col
		switch {
		case p.kw("DESC"):
			q.OrderDesc = true
		case p.kw("ASC"):
		}
	}
	if p.kw("LIMIT") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("query: expected a number after LIMIT, got %q", t.text)
		}
		p.pos++
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("query: bad LIMIT %q", t.text)
		}
		q.Limit = n
	}
	return q, nil
}

func (p *parser) orExpr() (PredNode, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	kids := []PredNode{left}
	for p.kw("OR") {
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return OrNode{Kids: kids}, nil
}

func (p *parser) andExpr() (PredNode, error) {
	left, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	kids := []PredNode{left}
	for p.kw("AND") {
		right, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return AndNode{Kids: kids}, nil
}

func (p *parser) notExpr() (PredNode, error) {
	if p.kw("NOT") {
		kid, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return NotNode{Kid: kid}, nil
	}
	if p.peek().kind == tokSymbol && p.peek().text == "(" {
		p.pos++
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.cond()
}

func (p *parser) cond() (PredNode, error) {
	dim, err := p.name()
	if err != nil {
		return nil, err
	}
	c := CondNode{Dim: dim}
	if p.peek().kind == tokSymbol && p.peek().text == "." {
		p.pos++
		qual, err := p.name()
		if err != nil {
			return nil, err
		}
		c.Qualifier = qual
	}
	negated := false
	if p.kw("NOT") {
		negated = true
		if !kwPeekIn(p) {
			return nil, fmt.Errorf("query: expected IN after NOT in a condition")
		}
	}
	if p.kw("IN") {
		in := InNode{Dim: c.Dim, Qualifier: c.Qualifier, Negated: negated}
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		for {
			t := p.peek()
			if t.kind != tokString {
				return nil, fmt.Errorf("query: expected a quoted value in IN list, got %q", t.text)
			}
			p.pos++
			in.Vals = append(in.Vals, t.text)
			if p.peek().kind == tokSymbol && p.peek().text == "," {
				p.pos++
				continue
			}
			break
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return in, nil
	}
	op := p.peek()
	if op.kind != tokSymbol || !isCmp(op.text) {
		return nil, fmt.Errorf("query: expected a comparison operator, got %q", op.text)
	}
	p.pos++
	c.Op = op.text
	lit := p.peek()
	switch lit.kind {
	case tokString:
		c.StrVal = lit.text
	case tokNumber:
		v, err := strconv.ParseFloat(lit.text, 64)
		if err != nil {
			return nil, fmt.Errorf("query: bad numeric literal %q: %w", lit.text, err)
		}
		c.NumVal = v
		c.IsNum = true
	default:
		return nil, fmt.Errorf("query: expected a literal, got %q", lit.text)
	}
	p.pos++
	if !c.IsNum && c.Op != "=" && c.Op != "<>" && c.Op != "!=" {
		return nil, fmt.Errorf("query: operator %q requires a numeric literal", c.Op)
	}
	return c, nil
}

func isCmp(s string) bool {
	switch s {
	case "=", "<>", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

// kwPeekIn reports whether the next token is the IN keyword without
// consuming it.
func kwPeekIn(p *parser) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, "IN")
}
