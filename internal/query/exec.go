package query

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"mddm/internal/agg"
	"mddm/internal/algebra"
	"mddm/internal/core"
	"mddm/internal/dimension"
	"mddm/internal/obs"
	"mddm/internal/qos"
	"mddm/internal/temporal"
)

// Parse timing joins the operator family the algebra layer populates, so
// one histogram answers "where does query time go" across the whole path.
var mOpParse = obs.NewHistogram("mddm_operator_seconds",
	"Latency of one operator invocation, by operator.",
	obs.DurationBuckets, obs.Label{Key: "op", Value: "parse"})

// Catalog names the MOs a query may address.
type Catalog map[string]*core.MO

// Result is a query's outcome: either fact identities (SELECT FACTS) or
// aggregation rows, plus the summarizability bookkeeping.
type Result struct {
	// Columns names the output columns (grouping dimensions, then the
	// aggregate).
	Columns []string
	// Rows are the output rows (fact ids for SELECT FACTS).
	Rows [][]string
	// Summarizable and Reasons report the aggregation-type rule's input.
	Summarizable bool
	Reasons      []string
	// Warnings lists non-fatal issues.
	Warnings []string
}

// Exec parses and executes a query against the catalog. NOW resolves to
// ref.
func Exec(src string, cat Catalog, ref temporal.Chronon) (*Result, error) {
	return ExecContext(context.Background(), src, cat, ref)
}

// ExecContext is Exec with cooperative cancellation: the context is
// threaded through selection, aggregate formation, and the row loops, so
// canceling it (or letting its deadline expire) aborts the query promptly
// with a qos.ErrCanceled-wrapped error. A fact budget installed with
// qos.WithFactBudget bounds the number of facts the query may scan. The
// context also carries the per-query parallelism degree
// (exec.WithParallelism): aggregate formation evaluates
// partition-parallel when the degree exceeds 1, with results and budget
// accounting identical to the sequential path (see docs/EXECUTION.md).
func ExecContext(cctx context.Context, src string, cat Catalog, ref temporal.Chronon) (*Result, error) {
	start := time.Now()
	sp := obs.StartSpan(cctx, "query.parse")
	q, err := Parse(src)
	mOpParse.Observe(time.Since(start))
	sp.End()
	if err != nil {
		return nil, err
	}
	return RunContext(cctx, q, cat, ref)
}

// Run executes a parsed query: timeslices first (changing the MO's
// temporal type), then selection, then aggregate formation, rendered as
// rows.
func Run(q *Query, cat Catalog, ref temporal.Chronon) (*Result, error) {
	return RunContext(context.Background(), q, cat, ref)
}

// RunContext is Run with cooperative cancellation; see ExecContext.
func RunContext(cctx context.Context, q *Query, cat Catalog, ref temporal.Chronon) (*Result, error) {
	guard := qos.NewGuard(cctx)
	if err := guard.CheckNow(); err != nil {
		return nil, fmt.Errorf("query: %w", err)
	}
	if q.Describe != "" {
		return describe(q, cat)
	}
	m, ok := cat[q.From]
	if !ok {
		return nil, fmt.Errorf("query: unknown MO %q (catalog has %v)", q.From, CatalogNames(cat))
	}
	ctx := dimension.CurrentContext(ref).WithMinProb(q.MinProb)

	if q.AsofValid != nil {
		var err error
		m, err = algebra.ValidTimeslice(m, *q.AsofValid, ref)
		if err != nil {
			return nil, fmt.Errorf("query: valid timeslice: %w", err)
		}
	}
	if q.AsofTrans != nil {
		var err error
		m, err = algebra.TransactionTimeslice(m, *q.AsofTrans, ref)
		if err != nil {
			return nil, fmt.Errorf("query: transaction timeslice: %w", err)
		}
	}

	if q.Where != nil {
		pred, err := compilePred(q.Where, m)
		if err != nil {
			return nil, err
		}
		m, err = algebra.SelectContext(cctx, m, pred, ctx)
		if err != nil {
			return nil, fmt.Errorf("query: %w", err)
		}
	}

	if q.FactsOnly {
		res := &Result{Columns: []string{m.Schema().FactType()}, Summarizable: true}
		for _, f := range m.Facts().IDs() {
			if err := guard.Facts(1); err != nil {
				return nil, fmt.Errorf("query: %w", err)
			}
			res.Rows = append(res.Rows, []string{f})
		}
		return res, nil
	}

	fn, err := agg.Lookup(q.Agg)
	if err != nil {
		return nil, fmt.Errorf("query: %w", err)
	}
	spec := algebra.AggSpec{
		ResultDim: q.Alias,
		Func:      fn,
		GroupBy:   map[string]string{},
	}
	if spec.ResultDim == "" {
		spec.ResultDim = q.Agg
	}
	if fn.NeedsArg {
		if q.AggArg == "*" {
			return nil, fmt.Errorf("query: %s needs an argument dimension", q.Agg)
		}
		spec.ArgDims = []string{q.AggArg}
	} else if q.AggArg != "*" {
		return nil, fmt.Errorf("query: %s takes no argument dimension (use %s(*))", q.Agg, q.Agg)
	}
	var shownDims []string
	for _, g := range q.GroupBy {
		dt := m.Schema().DimensionType(g.Dim)
		if dt == nil {
			return nil, fmt.Errorf("query: unknown dimension %q", g.Dim)
		}
		cat := g.Cat
		if cat == "" {
			cat = dt.Bottom()
		}
		if !dt.Has(cat) {
			return nil, fmt.Errorf("query: dimension %q has no category %q (has %v)", g.Dim, cat, dt.CategoryTypes())
		}
		spec.GroupBy[g.Dim] = cat
		shownDims = append(shownDims, g.Dim)
	}

	rows, aggRes, err := algebra.SQLAggregateContext(cctx, m, spec, ctx)
	if err != nil {
		return nil, fmt.Errorf("query: %w", err)
	}
	res := &Result{
		Columns:      append(append([]string{}, shownDims...), spec.ResultDim),
		Summarizable: aggRes.Report.Summarizable,
		Reasons:      aggRes.Report.Reasons,
		Warnings:     aggRes.Warnings,
	}
	for _, r := range rows {
		res.Rows = append(res.Rows, append(append([]string{}, r.Group...), r.Value))
	}
	if err := ApplyHaving(q, res); err != nil {
		return nil, err
	}
	if err := OrderAndLimit(q, res); err != nil {
		return nil, err
	}
	return res, nil
}

// ApplyHaving filters the flattened rows by the HAVING clause, comparing
// the last (aggregate) column numerically; rows whose aggregate does not
// parse as a number are dropped. Exported so the planned execution path
// post-processes rows exactly like the algebra path.
func ApplyHaving(q *Query, res *Result) error {
	if !q.Having {
		return nil
	}
	op, err := CmpOp(q.HavingOp)
	if err != nil {
		return err
	}
	col := len(res.Columns) - 1
	kept := res.Rows[:0]
	for _, row := range res.Rows {
		v, err := strconv.ParseFloat(row[col], 64)
		if err == nil && op.Holds(v, q.HavingVal) {
			kept = append(kept, row)
		}
	}
	res.Rows = kept
	return nil
}

// OrderAndLimit applies ORDER BY and LIMIT to the flattened rows. Values
// that parse as numbers sort numerically, others lexicographically (the
// aggregate column is almost always numeric). Exported for the planned
// execution path.
func OrderAndLimit(q *Query, res *Result) error {
	if q.OrderBy != "" {
		col := -1
		for i, c := range res.Columns {
			if c == q.OrderBy {
				col = i
				break
			}
		}
		if col < 0 {
			return fmt.Errorf("query: ORDER BY %q is not an output column (have %v)", q.OrderBy, res.Columns)
		}
		sort.SliceStable(res.Rows, func(i, j int) bool {
			less := cellLess(res.Rows[i][col], res.Rows[j][col])
			if q.OrderDesc {
				return cellLess(res.Rows[j][col], res.Rows[i][col])
			}
			return less
		})
	}
	if q.Limit > 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
	return nil
}

func cellLess(a, b string) bool {
	av, aerr := strconv.ParseFloat(a, 64)
	bv, berr := strconv.ParseFloat(b, 64)
	if aerr == nil && berr == nil {
		return av < bv
	}
	return a < b
}

// compilePred lowers the WHERE tree to an algebra predicate, resolving
// names against the MO: a qualifier names a representation; an unqualified
// string literal is resolved first as a value id, then through every
// representation of the dimension.
func compilePred(n PredNode, m *core.MO) (algebra.Predicate, error) {
	switch x := n.(type) {
	case AndNode:
		kids, err := compileKids(x.Kids, m)
		if err != nil {
			return nil, err
		}
		return algebra.And(kids...), nil
	case OrNode:
		kids, err := compileKids(x.Kids, m)
		if err != nil {
			return nil, err
		}
		return algebra.Or(kids...), nil
	case NotNode:
		kid, err := compilePred(x.Kid, m)
		if err != nil {
			return nil, err
		}
		return algebra.Not(kid), nil
	case CondNode:
		return compileCond(x, m)
	case InNode:
		d := m.Dimension(x.Dim)
		if d == nil {
			return nil, fmt.Errorf("query: unknown dimension %q", x.Dim)
		}
		alts := make([]algebra.Predicate, 0, len(x.Vals))
		for _, v := range x.Vals {
			p, err := resolveValuePred(CondNode{Dim: x.Dim, Qualifier: x.Qualifier, Op: "=", StrVal: v}, d)
			if err != nil {
				return nil, err
			}
			alts = append(alts, p)
		}
		pred := algebra.Or(alts...)
		if x.Negated {
			pred = algebra.Not(pred)
		}
		return pred, nil
	default:
		return nil, fmt.Errorf("query: unknown predicate node %T", n)
	}
}

func compileKids(kids []PredNode, m *core.MO) ([]algebra.Predicate, error) {
	out := make([]algebra.Predicate, len(kids))
	for i, k := range kids {
		p, err := compilePred(k, m)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

func compileCond(c CondNode, m *core.MO) (algebra.Predicate, error) {
	d := m.Dimension(c.Dim)
	if d == nil {
		return nil, fmt.Errorf("query: unknown dimension %q", c.Dim)
	}
	if c.IsNum {
		op, err := CmpOp(c.Op)
		if err != nil {
			return nil, err
		}
		return algebra.NumericCmp(c.Dim, op, c.NumVal), nil
	}
	base, err := resolveValuePred(c, d)
	if err != nil {
		return nil, err
	}
	if c.Op == "<>" || c.Op == "!=" {
		return algebra.Not(base), nil
	}
	return base, nil
}

func resolveValuePred(c CondNode, d *dimension.Dimension) (algebra.Predicate, error) {
	if c.Qualifier != "" {
		if d.Representation(c.Qualifier) == nil {
			return nil, fmt.Errorf("query: dimension %q has no representation %q (has %v)", c.Dim, c.Qualifier, d.Representations())
		}
		return algebra.CharacterizedRep(c.Dim, c.Qualifier, c.StrVal), nil
	}
	if d.Has(c.StrVal) {
		return algebra.Characterized(c.Dim, c.StrVal), nil
	}
	// Fall back to any representation that knows the literal at execution
	// time.
	reps := d.Representations()
	preds := make([]algebra.Predicate, 0, len(reps))
	for _, r := range reps {
		preds = append(preds, algebra.CharacterizedRep(c.Dim, r, c.StrVal))
	}
	if len(preds) == 0 {
		// No such value and no representations: matches nothing.
		return func(*core.MO, string, dimension.Context) bool { return false }, nil
	}
	return algebra.Or(preds...), nil
}

// CmpOp resolves a comparison operator literal to its algebra CmpOp;
// exported so the planner compiles WHERE/HAVING operators identically.
func CmpOp(s string) (algebra.CmpOp, error) {
	switch s {
	case "=":
		return algebra.EQ, nil
	case "<>", "!=":
		return algebra.NE, nil
	case "<":
		return algebra.LT, nil
	case "<=":
		return algebra.LE, nil
	case ">":
		return algebra.GT, nil
	case ">=":
		return algebra.GE, nil
	default:
		return 0, fmt.Errorf("query: unknown operator %q", s)
	}
}

// describe renders an MO's schema lattices (or one dimension's) as rows of
// (category, aggregation type, immediate containments).
func describe(q *Query, cat Catalog) (*Result, error) {
	m, ok := cat[q.Describe]
	if !ok {
		return nil, fmt.Errorf("query: unknown MO %q (catalog has %v)", q.Describe, CatalogNames(cat))
	}
	res := &Result{Columns: []string{"Dimension", "Category", "AggType", "ContainedIn"}, Summarizable: true}
	dims := m.Schema().DimensionNames()
	if q.DescribeDim != "" {
		if m.Schema().DimensionType(q.DescribeDim) == nil {
			return nil, fmt.Errorf("query: unknown dimension %q", q.DescribeDim)
		}
		dims = []string{q.DescribeDim}
	}
	for _, name := range dims {
		dt := m.Schema().DimensionType(name)
		for _, c := range dt.CategoryTypes() {
			res.Rows = append(res.Rows, []string{
				name, c, dt.AggTypeOf(c).String(), strings.Join(dt.Pred(c), ", "),
			})
		}
	}
	return res, nil
}

// CatalogNames returns the catalog's MO names, sorted; exported so the
// planner's unknown-MO error lists the same names in the same order.
func CatalogNames(cat Catalog) []string {
	out := make([]string, 0, len(cat))
	for n := range cat {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RenderResult renders a result as a fixed-width text table with a
// summarizability footnote — the warning the paper wants shown when a
// result is "unsafe".
func RenderResult(r *Result) string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteString("\n")
	}
	line(r.Columns)
	for _, row := range r.Rows {
		line(row)
	}
	if !r.Summarizable && len(r.Reasons) > 0 {
		fmt.Fprintf(&b, "-- not summarizable: %s\n", strings.Join(r.Reasons, "; "))
	}
	for _, w := range r.Warnings {
		fmt.Fprintf(&b, "-- warning: %s\n", w)
	}
	return b.String()
}
