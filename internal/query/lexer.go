// Package query implements a small OLAP query language over
// multidimensional objects — the user-facing layer the paper's future work
// calls for ("the lattice structures of the schema … used directly in the
// user interface of an OLAP tool"). Queries compile to the algebra of
// package algebra:
//
//	SELECT SETCOUNT(*) FROM patients
//	  WHERE Residence = 'R1' AND Age > 40
//	  GROUP BY Diagnosis."Diagnosis Group"
//	  ASOF VALID '15/06/1975'
//	  WITH PROB >= 0.9
//
// Aggregate functions are the registry of package agg (SETCOUNT(*),
// COUNT(d), SUM(d), AVG(d), MIN(d), MAX(d)); SELECT FACTS lists the
// qualifying facts without aggregation.
package query

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokString // 'single quoted'
	tokQIdent // "double quoted"
	tokNumber
	tokSymbol // ( ) . , * and comparison operators
)

type token struct {
	kind tokKind
	text string
	pos  int
}

// lexer tokenizes a query string.
type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "")
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case c == '\'':
			if err := l.quoted('\'', tokString); err != nil {
				return nil, err
			}
		case c == '"':
			if err := l.quoted('"', tokQIdent); err != nil {
				return nil, err
			}
		case isIdentStart(rune(c)):
			l.ident()
		case c >= '0' && c <= '9':
			l.number()
		case strings.ContainsRune("().,*", rune(c)):
			l.emit(tokSymbol, string(c))
			l.pos++
		case c == '=', c == '<', c == '>', c == '!':
			l.cmp()
		default:
			return nil, fmt.Errorf("query: unexpected character %q at %d", c, l.pos)
		}
	}
}

func (l *lexer) emit(k tokKind, text string) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: l.pos})
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func (l *lexer) quoted(q byte, kind tokKind) error {
	start := l.pos
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == q {
			// Doubled quote escapes itself.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == q {
				b.WriteByte(q)
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(kind, b.String())
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("query: unterminated quote starting at %d", start)
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_' || r == '⊤'
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '⊤'
}

func (l *lexer) ident() {
	start := l.pos
	for l.pos < len(l.src) && isIdentRune(rune(l.src[l.pos])) {
		l.pos++
	}
	l.emit(tokIdent, l.src[start:l.pos])
}

func (l *lexer) number() {
	start := l.pos
	for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
		// A trailing '.' followed by a non-digit belongs to the grammar
		// (qualified names never start with a digit, so this is safe here
		// only for numbers like "0.9"; "12." is read as 12 + symbol '.').
		if l.src[l.pos] == '.' && (l.pos+1 >= len(l.src) || l.src[l.pos+1] < '0' || l.src[l.pos+1] > '9') {
			break
		}
		l.pos++
	}
	l.emit(tokNumber, l.src[start:l.pos])
}

func (l *lexer) cmp() {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		l.emit(tokSymbol, two)
		l.pos += 2
		return
	}
	l.emit(tokSymbol, string(l.src[l.pos]))
	l.pos++
}
