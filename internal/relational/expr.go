package relational

import (
	"fmt"
	"strings"
)

// Expr is a relational-algebra-with-aggregation expression over a database
// — the language of Klug's algebra that Theorem 2 measures the
// multidimensional algebra against. Expressions are introspectable structs
// so the compiler in compile.go can translate them to MO-algebra pipelines.
type Expr interface {
	// Eval evaluates the expression directly over the relational engine.
	Eval(db Database) (*Relation, error)
}

// Base references a database relation by name.
type Base struct{ Name string }

// Eval implements Expr.
func (e Base) Eval(db Database) (*Relation, error) {
	r, ok := db[e.Name]
	if !ok {
		return nil, fmt.Errorf("relational: unknown relation %q", e.Name)
	}
	return r, nil
}

// SelectE is σ[Pred](In).
type SelectE struct {
	In   Expr
	Pred Pred
}

// Eval implements Expr.
func (e SelectE) Eval(db Database) (*Relation, error) {
	in, err := e.In.Eval(db)
	if err != nil {
		return nil, err
	}
	return Select(in, e.Pred.Holds)
}

// ProjectE is π[Attrs](In).
type ProjectE struct {
	In    Expr
	Attrs []string
}

// Eval implements Expr.
func (e ProjectE) Eval(db Database) (*Relation, error) {
	in, err := e.In.Eval(db)
	if err != nil {
		return nil, err
	}
	return Project(in, e.Attrs...)
}

// UnionE is L ∪ R.
type UnionE struct{ L, R Expr }

// Eval implements Expr.
func (e UnionE) Eval(db Database) (*Relation, error) {
	l, err := e.L.Eval(db)
	if err != nil {
		return nil, err
	}
	r, err := e.R.Eval(db)
	if err != nil {
		return nil, err
	}
	return Union(l, r)
}

// DiffE is L \ R.
type DiffE struct{ L, R Expr }

// Eval implements Expr.
func (e DiffE) Eval(db Database) (*Relation, error) {
	l, err := e.L.Eval(db)
	if err != nil {
		return nil, err
	}
	r, err := e.R.Eval(db)
	if err != nil {
		return nil, err
	}
	return Difference(l, r)
}

// ProductE is L × R (attribute names must be disjoint).
type ProductE struct{ L, R Expr }

// Eval implements Expr.
func (e ProductE) Eval(db Database) (*Relation, error) {
	l, err := e.L.Eval(db)
	if err != nil {
		return nil, err
	}
	r, err := e.R.Eval(db)
	if err != nil {
		return nil, err
	}
	return Product(l, r)
}

// AggregateE is Klug's aggregate formation ⟨GroupBy, Fn(Arg) → Out⟩(In).
type AggregateE struct {
	In      Expr
	GroupBy []string
	Fn      AggFunc
	Arg     string // "" for COUNT(*)
	Out     string
}

// Eval implements Expr.
func (e AggregateE) Eval(db Database) (*Relation, error) {
	in, err := e.In.Eval(db)
	if err != nil {
		return nil, err
	}
	return Aggregate(in, e.GroupBy, e.Fn, e.Arg, e.Out)
}

// Op is a comparison operator on data.
type Op int

// Comparison operators.
const (
	OpEQ Op = iota
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
)

// Holds applies the operator.
func (op Op) Holds(a, b Datum) bool {
	switch op {
	case OpEQ:
		return a.Equal(b)
	case OpNE:
		return !a.Equal(b)
	case OpLT:
		return a.Less(b)
	case OpLE:
		return a.Less(b) || a.Equal(b)
	case OpGT:
		return b.Less(a)
	case OpGE:
		return b.Less(a) || a.Equal(b)
	default:
		return false
	}
}

// Pred is a selection predicate (introspectable for compilation).
type Pred interface {
	Holds(s Schema, t Tuple) bool
}

// AttrConst compares an attribute with a constant.
type AttrConst struct {
	Attr string
	Op   Op
	Val  Datum
}

// Holds implements Pred.
func (p AttrConst) Holds(s Schema, t Tuple) bool {
	i := s.Index(p.Attr)
	return i >= 0 && p.Op.Holds(t[i], p.Val)
}

// AttrAttr compares two attributes.
type AttrAttr struct {
	A, B string
	Op   Op
}

// Holds implements Pred.
func (p AttrAttr) Holds(s Schema, t Tuple) bool {
	i, j := s.Index(p.A), s.Index(p.B)
	return i >= 0 && j >= 0 && p.Op.Holds(t[i], t[j])
}

// AndP conjoins predicates.
type AndP []Pred

// Holds implements Pred.
func (p AndP) Holds(s Schema, t Tuple) bool {
	for _, q := range p {
		if !q.Holds(s, t) {
			return false
		}
	}
	return true
}

// OrP disjoins predicates.
type OrP []Pred

// Holds implements Pred.
func (p OrP) Holds(s Schema, t Tuple) bool {
	for _, q := range p {
		if q.Holds(s, t) {
			return true
		}
	}
	return false
}

// NotP negates a predicate.
type NotP struct{ P Pred }

// Holds implements Pred.
func (p NotP) Holds(s Schema, t Tuple) bool { return !p.P.Holds(s, t) }

// OutSchema computes the schema an expression produces without evaluating
// data (needed by the compiler to decode MOs positionally).
func OutSchema(e Expr, db Database) (Schema, error) {
	switch x := e.(type) {
	case Base:
		r, ok := db[x.Name]
		if !ok {
			return nil, fmt.Errorf("relational: unknown relation %q", x.Name)
		}
		return r.Schema, nil
	case SelectE:
		return OutSchema(x.In, db)
	case ProjectE:
		in, err := OutSchema(x.In, db)
		if err != nil {
			return nil, err
		}
		out := make(Schema, 0, len(x.Attrs))
		for _, a := range x.Attrs {
			i := in.Index(a)
			if i < 0 {
				return nil, fmt.Errorf("relational: unknown attribute %q", a)
			}
			out = append(out, in[i])
		}
		return out, nil
	case UnionE:
		return OutSchema(x.L, db)
	case DiffE:
		return OutSchema(x.L, db)
	case ProductE:
		l, err := OutSchema(x.L, db)
		if err != nil {
			return nil, err
		}
		r, err := OutSchema(x.R, db)
		if err != nil {
			return nil, err
		}
		return append(append(Schema{}, l...), r...), nil
	case AggregateE:
		in, err := OutSchema(x.In, db)
		if err != nil {
			return nil, err
		}
		out := make(Schema, 0, len(x.GroupBy)+1)
		for _, a := range x.GroupBy {
			i := in.Index(a)
			if i < 0 {
				return nil, fmt.Errorf("relational: unknown attribute %q", a)
			}
			out = append(out, in[i])
		}
		return append(out, Attr{Name: x.Out, Type: TFloat}), nil
	case RenameE:
		in, err := OutSchema(x.In, db)
		if err != nil {
			return nil, err
		}
		if len(x.Attrs) != len(in) {
			return nil, fmt.Errorf("relational: rename arity mismatch")
		}
		out := make(Schema, len(in))
		for i, a := range in {
			out[i] = Attr{Name: x.Attrs[i], Type: a.Type}
		}
		return out, nil
	case JoinE:
		l, err := OutSchema(x.L, db)
		if err != nil {
			return nil, err
		}
		r, err := OutSchema(x.R, db)
		if err != nil {
			return nil, err
		}
		out := append(Schema{}, l...)
		for _, a := range r {
			if l.Index(a.Name) < 0 {
				out = append(out, a)
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("relational: unknown expression %T", e)
	}
}

// RenameE is ρ: the input relation under a new name with positionally
// renamed attributes.
type RenameE struct {
	In    Expr
	Name  string
	Attrs []string
}

// Eval implements Expr.
func (e RenameE) Eval(db Database) (*Relation, error) {
	in, err := e.In.Eval(db)
	if err != nil {
		return nil, err
	}
	return Rename(in, e.Name, e.Attrs)
}

// JoinE is the natural join L ⋈ R on all shared attribute names. It is a
// derived operator: the compiler desugars it into rename, product,
// selection and projection.
type JoinE struct{ L, R Expr }

// Eval implements Expr (using the native natural-join implementation; the
// compiler's desugaring is checked equivalent by the property tests).
func (e JoinE) Eval(db Database) (*Relation, error) {
	l, err := e.L.Eval(db)
	if err != nil {
		return nil, err
	}
	r, err := e.R.Eval(db)
	if err != nil {
		return nil, err
	}
	return NaturalJoin(l, r)
}

// Desugar rewrites the natural join into fundamental operators:
// π[L ∪ (R \ shared)](σ[l.s = r.s′ ∀ shared s](L × ρ(R))).
func (e JoinE) Desugar(db Database) (Expr, error) {
	ls, err := OutSchema(e.L, db)
	if err != nil {
		return nil, err
	}
	rs, err := OutSchema(e.R, db)
	if err != nil {
		return nil, err
	}
	const suffix = "′"
	var shared []string
	renamed := make([]string, len(rs))
	for i, a := range rs {
		renamed[i] = a.Name
		if ls.Index(a.Name) >= 0 {
			shared = append(shared, a.Name)
			renamed[i] = a.Name + suffix
		}
	}
	if len(shared) == 0 {
		return ProductE{L: e.L, R: e.R}, nil
	}
	right := Expr(RenameE{In: e.R, Name: "R" + suffix, Attrs: renamed})
	var conds AndP
	for _, s := range shared {
		conds = append(conds, AttrAttr{A: s, B: s + suffix, Op: OpEQ})
	}
	sel := SelectE{In: ProductE{L: e.L, R: right}, Pred: conds}
	keep := append([]string{}, ls.Names()...)
	for i, a := range rs {
		if ls.Index(a.Name) < 0 {
			keep = append(keep, renamed[i])
		}
	}
	// Keep duplicates out (natural join has set semantics like every
	// relational operator here) and restore the right-side attribute names.
	proj := ProjectE{In: sel, Attrs: keep}
	restored := make([]string, len(keep))
	copy(restored, keep)
	for i := range restored {
		restored[i] = strings.TrimSuffix(restored[i], suffix)
	}
	return RenameE{In: proj, Name: "join", Attrs: restored}, nil
}
