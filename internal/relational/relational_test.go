package relational

import (
	"strings"
	"testing"
)

// sampleDB builds a small clinical database mirroring the case study:
// patients and diagnoses-per-patient.
func sampleDB() Database {
	patients := MustRelation("P", Schema{
		{Name: "pid", Type: TInt},
		{Name: "name", Type: TString},
		{Name: "age", Type: TInt},
	})
	patients.MustInsert(Int(1), Str("John Doe"), Int(29))
	patients.MustInsert(Int(2), Str("Jane Doe"), Int(48))
	patients.MustInsert(Int(3), Str("Jim Roe"), Int(48))

	has := MustRelation("H", Schema{
		{Name: "hpid", Type: TInt},
		{Name: "diag", Type: TString},
	})
	has.MustInsert(Int(1), Str("E10"))
	has.MustInsert(Int(2), Str("E10"))
	has.MustInsert(Int(2), Str("O24.0"))
	has.MustInsert(Int(3), Str("E11"))

	db := Database{}
	db.Add(patients)
	db.Add(has)
	return db
}

func TestRelationSetSemantics(t *testing.T) {
	r := MustRelation("R", Schema{{Name: "a", Type: TInt}})
	r.MustInsert(Int(1))
	r.MustInsert(Int(1))
	if r.Len() != 1 {
		t.Errorf("duplicates must collapse, len = %d", r.Len())
	}
	if err := r.Insert(Tuple{Str("x")}); err == nil {
		t.Error("type mismatch must be rejected")
	}
	if err := r.Insert(Tuple{Int(1), Int(2)}); err == nil {
		t.Error("arity mismatch must be rejected")
	}
	if _, err := NewRelation("X", Schema{{Name: "a", Type: TInt}, {Name: "a", Type: TInt}}); err == nil {
		t.Error("duplicate attribute must be rejected")
	}
	if _, err := NewRelation("X", Schema{{Name: "", Type: TInt}}); err == nil {
		t.Error("empty attribute must be rejected")
	}
}

func TestDatum(t *testing.T) {
	if !Int(2).Equal(Float(2)) {
		t.Error("numeric equality must cross int/float")
	}
	if Int(2).Equal(Str("2")) {
		t.Error("numbers and strings must differ")
	}
	if !Int(1).Less(Float(1.5)) || !Float(1.5).Less(Str("a")) || Str("b").Less(Str("a")) {
		t.Error("ordering wrong")
	}
	if Float(2.5).String() != "2.5" || Float(2).String() != "2" || Int(7).String() != "7" {
		t.Error("formatting wrong")
	}
	if d, err := ParseDatum(TInt, "42"); err != nil || d.I != 42 {
		t.Error("int parse failed")
	}
	if _, err := ParseDatum(TInt, "x"); err == nil {
		t.Error("bad int must fail")
	}
	if d, err := ParseDatum(TFloat, "2.5"); err != nil || d.F != 2.5 {
		t.Error("float parse failed")
	}
	if _, err := ParseDatum(TFloat, "x"); err == nil {
		t.Error("bad float must fail")
	}
	if d, _ := ParseDatum(TString, "s"); d.S != "s" {
		t.Error("string parse failed")
	}
}

func TestSelectProject(t *testing.T) {
	db := sampleDB()
	sel, err := Select(db["P"], AttrConst{Attr: "age", Op: OpEQ, Val: Int(48)}.Holds)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Len() != 2 {
		t.Errorf("selected %d, want 2", sel.Len())
	}
	p, err := Project(sel, "age")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 1 {
		t.Errorf("projection must dedup, len = %d", p.Len())
	}
	if _, err := Project(sel, "nope"); err == nil {
		t.Error("unknown attribute must be rejected")
	}
}

func TestUnionDifferenceProduct(t *testing.T) {
	db := sampleDB()
	young, err := Select(db["P"], AttrConst{Attr: "age", Op: OpLT, Val: Int(40)}.Holds)
	if err != nil {
		t.Fatal(err)
	}
	old, err := Select(db["P"], AttrConst{Attr: "age", Op: OpGE, Val: Int(40)}.Holds)
	if err != nil {
		t.Fatal(err)
	}
	u, err := Union(young, old)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Equal(db["P"]) {
		t.Error("partition union must restore the relation")
	}
	d, err := Difference(db["P"], young)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(old) {
		t.Error("difference wrong")
	}
	prod, err := Product(db["P"], db["H"])
	if err != nil {
		t.Fatal(err)
	}
	if prod.Len() != 12 {
		t.Errorf("product len = %d", prod.Len())
	}
	if _, err := Product(db["P"], db["P"]); err == nil {
		t.Error("product with shared attributes must fail")
	}
	bad := MustRelation("B", Schema{{Name: "x", Type: TString}})
	if _, err := Union(db["P"], bad); err == nil {
		t.Error("incompatible union must fail")
	}
}

func TestNaturalJoin(t *testing.T) {
	db := sampleDB()
	// Rename H's hpid to pid so the join connects.
	h, err := Rename(db["H"], "H2", []string{"pid", "diag"})
	if err != nil {
		t.Fatal(err)
	}
	j, err := NaturalJoin(db["P"], h)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 4 {
		t.Errorf("join len = %d, want 4", j.Len())
	}
	if j.Schema.Index("diag") < 0 || j.Schema.Index("name") < 0 {
		t.Errorf("join schema = %v", j.Schema.Names())
	}
	// Disjoint attributes fall back to product.
	pj, err := NaturalJoin(db["P"], db["H"])
	if err != nil {
		t.Fatal(err)
	}
	if pj.Len() != 12 {
		t.Errorf("disjoint natural join len = %d", pj.Len())
	}
}

func TestAggregateRelational(t *testing.T) {
	db := sampleDB()
	// Count patients per age.
	byAge, err := Aggregate(db["P"], []string{"age"}, COUNT, "", "n")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"29": 1, "48": 2}
	for _, tp := range byAge.Tuples() {
		if want[tp[0].String()] != tp[1].F {
			t.Errorf("count(%s) = %v", tp[0], tp[1])
		}
	}
	// Average age overall.
	avg, err := Aggregate(db["P"], nil, AVG, "age", "avgAge")
	if err != nil {
		t.Fatal(err)
	}
	if ts := avg.Tuples(); len(ts) != 1 || ts[0][0].F != (29.0+48+48)/3 {
		t.Errorf("avg = %v", ts)
	}
	// SUM / MIN / MAX.
	for fn, want := range map[AggFunc]float64{SUM: 125, MIN: 29, MAX: 48} {
		r, err := Aggregate(db["P"], nil, fn, "age", "v")
		if err != nil {
			t.Fatal(err)
		}
		if r.Tuples()[0][0].F != want {
			t.Errorf("%s = %v, want %v", fn, r.Tuples()[0][0].F, want)
		}
	}
	// Errors.
	if _, err := Aggregate(db["P"], []string{"nope"}, COUNT, "", "n"); err == nil {
		t.Error("unknown grouping attribute must fail")
	}
	if _, err := Aggregate(db["P"], nil, SUM, "nope", "n"); err == nil {
		t.Error("unknown argument attribute must fail")
	}
	if _, err := Aggregate(db["P"], nil, SUM, "", "n"); err == nil {
		t.Error("SUM without argument must fail")
	}
	if _, err := Aggregate(db["P"], nil, AggFunc("MEDIAN"), "age", "n"); err == nil {
		t.Error("unknown function must fail")
	}
}

func TestExprEval(t *testing.T) {
	db := sampleDB()
	// π[name](σ[age ≥ 40](P))
	e := ProjectE{In: SelectE{In: Base{Name: "P"}, Pred: AttrConst{Attr: "age", Op: OpGE, Val: Int(40)}}, Attrs: []string{"name"}}
	r, err := e.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Errorf("len = %d", r.Len())
	}
	// Predicate combinators.
	combo := SelectE{In: Base{Name: "P"}, Pred: AndP{
		OrP{AttrConst{Attr: "age", Op: OpEQ, Val: Int(29)}, AttrConst{Attr: "age", Op: OpEQ, Val: Int(48)}},
		NotP{P: AttrConst{Attr: "name", Op: OpEQ, Val: Str("Jim Roe")}},
		AttrAttr{A: "age", B: "age", Op: OpLE},
	}}
	r2, err := combo.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 2 {
		t.Errorf("combo len = %d", r2.Len())
	}
	// Unknown base.
	if _, err := (Base{Name: "X"}).Eval(db); err != nil {
		// expected
	} else {
		t.Error("unknown base must fail")
	}
	// OutSchema agreement.
	s, err := OutSchema(e, db)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(r.Schema) {
		t.Errorf("OutSchema = %v, eval schema = %v", s.Names(), r.Schema.Names())
	}
}

func TestRelationRender(t *testing.T) {
	db := sampleDB()
	out := db["P"].String()
	if !strings.Contains(out, "P(pid, name, age): 3 tuples") || !strings.Contains(out, "Jane Doe") {
		t.Errorf("render:\n%s", out)
	}
}
