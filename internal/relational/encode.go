package relational

import (
	"fmt"

	"mddm/internal/core"
	"mddm/internal/dimension"
)

// This file encodes relations as multidimensional objects — the embedding
// underlying Theorem 2: every tuple becomes a fact with separate identity,
// every attribute becomes a simple dimension (⊥ = the attribute's value
// category < ⊤), and the fact–dimension relations record the tuple's
// values. Numeric attributes get aggregation type Σ, strings c, so the
// paper's legality guard coincides with what is meaningful relationally.

// emptyMarker stands in for the empty string, which cannot be a dimension
// value id. The "Value" representation maps every id back to the original
// text.
const emptyMarker = "(empty)"

func encodeText(s string) string {
	if s == "" {
		return emptyMarker
	}
	return s
}

// AttrDimensionType builds the simple dimension type of an attribute.
func AttrDimensionType(a Attr) *dimension.DimensionType {
	aggType := dimension.Constant
	kind := dimension.KindString
	switch a.Type {
	case TInt:
		aggType, kind = dimension.Sum, dimension.KindInt
	case TFloat:
		aggType, kind = dimension.Sum, dimension.KindFloat
	}
	return dimension.MustDimensionType(a.Name, aggType, kind, a.Name)
}

// EncodeRelation builds the MO encoding of a relation: one fact per tuple
// (identity "<rel>#<row>"), one dimension per attribute.
func EncodeRelation(r *Relation) (*core.MO, error) {
	types := make([]*dimension.DimensionType, len(r.Schema))
	for i, a := range r.Schema {
		types[i] = AttrDimensionType(a)
	}
	s, err := core.NewSchema(r.Name, types...)
	if err != nil {
		return nil, err
	}
	m := core.NewMO(s)
	// A "Value" representation recovers the original text (also for the
	// empty-string marker).
	reps := make([]*dimension.Representation, len(r.Schema))
	for i, a := range r.Schema {
		rep, err := m.Dimension(a.Name).AddRepresentation("Value", a.Name)
		if err != nil {
			return nil, err
		}
		reps[i] = rep
	}
	for row, t := range r.Tuples() {
		fid := fmt.Sprintf("%s#%d", r.Name, row)
		for i, a := range r.Schema {
			id := encodeText(t[i].String())
			d := m.Dimension(a.Name)
			if !d.Has(id) {
				if err := d.AddValue(a.Name, id); err != nil {
					return nil, err
				}
				if err := reps[i].Map(id, t[i].String()); err != nil {
					return nil, err
				}
			}
			if err := m.Relate(a.Name, fid, id); err != nil {
				return nil, err
			}
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeMO extracts a relation from an MO whose dimensions encode
// attributes: for every fact, its non-⊤ values in each attribute dimension
// (one tuple per combination — a group fact participating in several
// grouping combos yields several tuples, exactly as SQL emits one row per
// group). Facts lacking a value in some attribute dimension are skipped.
func DecodeMO(m *core.MO, schema Schema, ctx dimension.Context) (*Relation, error) {
	out, err := NewRelation(m.Schema().FactType(), schema)
	if err != nil {
		return nil, err
	}
	for _, f := range m.Facts().IDs() {
		perAttr := make([][]Datum, len(schema))
		ok := true
		for i, a := range schema {
			d := m.Dimension(a.Name)
			r := m.Relation(a.Name)
			if d == nil || r == nil {
				return nil, fmt.Errorf("relational: decode: MO has no dimension %q", a.Name)
			}
			var ds []Datum
			for _, v := range r.ValuesOf(f) {
				if v == dimension.TopValue {
					continue
				}
				text := v
				if rep := d.Representation("Value"); rep != nil {
					if s, okr := rep.RepOf(v, ctx); okr {
						text = s
					}
				}
				dat, err := ParseDatum(a.Type, text)
				if err != nil {
					return nil, fmt.Errorf("relational: decode %s: %w", a.Name, err)
				}
				ds = append(ds, dat)
			}
			if len(ds) == 0 {
				ok = false
				break
			}
			perAttr[i] = ds
		}
		if !ok {
			continue
		}
		if err := emitCombos(out, perAttr); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func emitCombos(out *Relation, perAttr [][]Datum) error {
	t := make(Tuple, len(perAttr))
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(perAttr) {
			return out.Insert(t)
		}
		for _, d := range perAttr[i] {
			t[i] = d
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0)
}
