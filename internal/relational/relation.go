package relational

import (
	"fmt"
	"sort"
	"strings"
)

// Attr is one attribute of a relation schema.
type Attr struct {
	Name string
	Type Type
}

// Schema is an ordered list of attributes with unique names.
type Schema []Attr

// Index returns the position of the named attribute, or -1.
func (s Schema) Index(name string) int {
	for i, a := range s {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Equal reports whether two schemas have the same attributes in the same
// order.
func (s Schema) Equal(o Schema) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Names returns the attribute names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, a := range s {
		out[i] = a.Name
	}
	return out
}

// Tuple is one row; its length and types match the schema positionally.
type Tuple []Datum

// key returns the canonical identity of the tuple (set semantics).
func (t Tuple) key() string {
	parts := make([]string, len(t))
	for i, d := range t {
		parts[i] = fmt.Sprintf("%d:%s", d.Kind, d.String())
	}
	return strings.Join(parts, "\x00")
}

// Equal compares tuples value-wise.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Relation is a named relation with set semantics: inserting a duplicate
// tuple is a no-op.
type Relation struct {
	Name   string
	Schema Schema
	tuples []Tuple
	index  map[string]bool
}

// NewRelation creates an empty relation. Attribute names must be unique.
func NewRelation(name string, schema Schema) (*Relation, error) {
	seen := map[string]bool{}
	for _, a := range schema {
		if a.Name == "" {
			return nil, fmt.Errorf("relational: empty attribute name in %s", name)
		}
		if seen[a.Name] {
			return nil, fmt.Errorf("relational: duplicate attribute %q in %s", a.Name, name)
		}
		seen[a.Name] = true
	}
	return &Relation{Name: name, Schema: schema, index: map[string]bool{}}, nil
}

// MustRelation is NewRelation that panics on error.
func MustRelation(name string, schema Schema) *Relation {
	r, err := NewRelation(name, schema)
	if err != nil {
		panic(err)
	}
	return r
}

// Insert adds a tuple (set semantics; type-checked against the schema).
func (r *Relation) Insert(t Tuple) error {
	if len(t) != len(r.Schema) {
		return fmt.Errorf("relational: tuple arity %d, schema arity %d", len(t), len(r.Schema))
	}
	for i, d := range t {
		if d.Kind != r.Schema[i].Type {
			return fmt.Errorf("relational: attribute %s: got %v, want %v", r.Schema[i].Name, d.Kind, r.Schema[i].Type)
		}
	}
	k := t.key()
	if r.index[k] {
		return nil
	}
	r.index[k] = true
	cp := make(Tuple, len(t))
	copy(cp, t)
	r.tuples = append(r.tuples, cp)
	return nil
}

// MustInsert is Insert that panics on error.
func (r *Relation) MustInsert(data ...Datum) {
	if err := r.Insert(Tuple(data)); err != nil {
		panic(err)
	}
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuples returns the tuples in canonical (sorted-by-key) order.
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, len(r.tuples))
	copy(out, r.tuples)
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}

// Has reports whether an equal tuple is present.
func (r *Relation) Has(t Tuple) bool { return r.index[t.key()] }

// Equal reports whether two relations hold the same tuple sets (names are
// ignored; schemas must match).
func (r *Relation) Equal(o *Relation) bool {
	if !r.Schema.Equal(o.Schema) || r.Len() != o.Len() {
		return false
	}
	for k := range r.index {
		if !o.index[k] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy under the same name. It copies the tuple
// store and index directly rather than re-running Insert's validation:
// the source relation's tuples are valid by construction, so no error
// (and no panic) is possible here.
func (r *Relation) Clone() *Relation {
	n := &Relation{
		Name:   r.Name,
		Schema: append(Schema(nil), r.Schema...),
		tuples: make([]Tuple, len(r.tuples)),
		index:  make(map[string]bool, len(r.index)),
	}
	for i, t := range r.tuples {
		cp := make(Tuple, len(t))
		copy(cp, t)
		n.tuples[i] = cp
	}
	for k := range r.index {
		n.index[k] = true
	}
	return n
}

// String renders the relation as a fixed-width table.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s): %d tuples\n", r.Name, strings.Join(r.Schema.Names(), ", "), r.Len())
	for _, t := range r.Tuples() {
		parts := make([]string, len(t))
		for i, d := range t {
			parts[i] = d.String()
		}
		fmt.Fprintf(&b, "  (%s)\n", strings.Join(parts, ", "))
	}
	return b.String()
}

// Database is a named collection of relations.
type Database map[string]*Relation

// Add registers a relation under its name.
func (db Database) Add(r *Relation) { db[r.Name] = r }
