package relational

import (
	"fmt"
	"math/rand"
	"testing"

	"mddm/internal/dimension"
	"mddm/internal/temporal"
)

// Theorem 2: the MO algebra is at least as powerful as Klug's relational
// algebra with aggregation. The compiler in compile.go is the constructive
// witness; these tests check that compiled pipelines compute exactly what
// the relational engine computes — on the fixed sample database for each
// operator, and on randomized databases and expressions.

var tctx = dimension.CurrentContext(temporal.MustDate("01/01/2000"))

// checkEquiv evaluates e both ways and compares.
func checkEquiv(t *testing.T, db Database, e Expr, label string) {
	t.Helper()
	want, err := e.Eval(db)
	if err != nil {
		t.Fatalf("%s: relational eval: %v", label, err)
	}
	mo, err := Compile(e, db, tctx)
	if err != nil {
		t.Fatalf("%s: compile: %v", label, err)
	}
	schema, err := OutSchema(e, db)
	if err != nil {
		t.Fatalf("%s: schema: %v", label, err)
	}
	got, err := DecodeMO(mo, schema, tctx)
	if err != nil {
		t.Fatalf("%s: decode: %v", label, err)
	}
	if !got.Equal(want) {
		t.Errorf("%s mismatch:\nrelational:\n%v\nMO algebra:\n%v", label, want, got)
	}
}

func TestTheorem2PerOperator(t *testing.T) {
	db := sampleDB()
	checkEquiv(t, db, Base{Name: "P"}, "base")
	checkEquiv(t, db, SelectE{In: Base{Name: "P"}, Pred: AttrConst{Attr: "age", Op: OpGE, Val: Int(40)}}, "select")
	checkEquiv(t, db, SelectE{In: Base{Name: "P"}, Pred: AttrConst{Attr: "name", Op: OpEQ, Val: Str("Jane Doe")}}, "select-string")
	checkEquiv(t, db, ProjectE{In: Base{Name: "P"}, Attrs: []string{"age"}}, "project-dedup")
	checkEquiv(t, db, ProjectE{In: Base{Name: "P"}, Attrs: []string{"name", "age"}}, "project")
	checkEquiv(t, db, UnionE{
		L: SelectE{In: Base{Name: "P"}, Pred: AttrConst{Attr: "age", Op: OpLT, Val: Int(40)}},
		R: SelectE{In: Base{Name: "P"}, Pred: AttrConst{Attr: "age", Op: OpGE, Val: Int(40)}},
	}, "union-partition")
	checkEquiv(t, db, UnionE{L: Base{Name: "P"}, R: Base{Name: "P"}}, "union-self")
	checkEquiv(t, db, DiffE{
		L: Base{Name: "P"},
		R: SelectE{In: Base{Name: "P"}, Pred: AttrConst{Attr: "age", Op: OpLT, Val: Int(40)}},
	}, "difference")
	checkEquiv(t, db, DiffE{L: Base{Name: "P"}, R: Base{Name: "P"}}, "difference-self")
	checkEquiv(t, db, ProductE{L: Base{Name: "P"}, R: Base{Name: "H"}}, "product")
	checkEquiv(t, db, AggregateE{In: Base{Name: "P"}, GroupBy: []string{"age"}, Fn: COUNT, Arg: "", Out: "n"}, "count-star")
	checkEquiv(t, db, AggregateE{In: Base{Name: "P"}, GroupBy: nil, Fn: SUM, Arg: "age", Out: "s"}, "sum")
	checkEquiv(t, db, AggregateE{In: Base{Name: "P"}, GroupBy: []string{"name"}, Fn: MAX, Arg: "age", Out: "m"}, "max-by-name")
	checkEquiv(t, db, AggregateE{In: Base{Name: "P"}, GroupBy: nil, Fn: AVG, Arg: "age", Out: "a"}, "avg")
}

func TestTheorem2Composed(t *testing.T) {
	db := sampleDB()
	// Join patients with diagnoses, then count diagnoses per patient name:
	// ⟨name, COUNT(*)⟩(σ[pid = hpid](P × H)).
	e := AggregateE{
		In: SelectE{
			In:   ProductE{L: Base{Name: "P"}, R: Base{Name: "H"}},
			Pred: AttrAttr{A: "pid", B: "hpid", Op: OpEQ},
		},
		GroupBy: []string{"name"},
		Fn:      COUNT, Arg: "", Out: "nDiag",
	}
	checkEquiv(t, db, e, "join-count")

	// Nested aggregation: max per-name diagnosis count.
	e2 := AggregateE{In: e, GroupBy: nil, Fn: MAX, Arg: "nDiag", Out: "worst"}
	checkEquiv(t, db, e2, "nested-agg")

	// Difference of projections.
	e3 := DiffE{
		L: ProjectE{In: Base{Name: "P"}, Attrs: []string{"pid"}},
		R: ProjectE{In: SelectE{In: Base{Name: "H"}, Pred: AttrConst{Attr: "diag", Op: OpEQ, Val: Str("E10")}},
			Attrs: []string{"hpid"}},
	}
	// Schemas of L and R differ in attribute name; make them comparable by
	// renaming through projection of the same attribute names: use pid-only
	// database expressions instead.
	_ = e3
	e4 := DiffE{
		L: ProjectE{In: Base{Name: "P"}, Attrs: []string{"age"}},
		R: ProjectE{In: SelectE{In: Base{Name: "P"}, Pred: AttrConst{Attr: "name", Op: OpEQ, Val: Str("John Doe")}},
			Attrs: []string{"age"}},
	}
	checkEquiv(t, db, e4, "diff-projections")
}

// randDB builds a random database with two relations over small domains so
// joins and differences hit collisions.
func randDB(r *rand.Rand) Database {
	a := MustRelation("A", Schema{
		{Name: "x", Type: TInt},
		{Name: "y", Type: TString},
		{Name: "z", Type: TInt},
	})
	for i := 0; i < 3+r.Intn(10); i++ {
		a.MustInsert(Int(int64(r.Intn(5))), Str(fmt.Sprintf("s%d", r.Intn(4))), Int(int64(r.Intn(20))))
	}
	b := MustRelation("B", Schema{
		{Name: "u", Type: TInt},
		{Name: "v", Type: TString},
	})
	for i := 0; i < 2+r.Intn(8); i++ {
		b.MustInsert(Int(int64(r.Intn(5))), Str(fmt.Sprintf("s%d", r.Intn(4))))
	}
	db := Database{}
	db.Add(a)
	db.Add(b)
	return db
}

// randExpr builds a random expression over A (keeping schema bookkeeping
// simple: unary chains over A plus an optional product with B and a final
// aggregation).
func randExpr(r *rand.Rand) Expr {
	var e Expr = Base{Name: "A"}
	for i := 0; i < r.Intn(3); i++ {
		switch r.Intn(4) {
		case 0:
			e = SelectE{In: e, Pred: AttrConst{Attr: "x", Op: Op(r.Intn(6)), Val: Int(int64(r.Intn(5)))}}
		case 1:
			e = SelectE{In: e, Pred: OrP{
				AttrConst{Attr: "y", Op: OpEQ, Val: Str(fmt.Sprintf("s%d", r.Intn(4)))},
				AttrConst{Attr: "z", Op: OpGT, Val: Int(int64(r.Intn(20)))},
			}}
		case 2:
			e = UnionE{L: e, R: SelectE{In: Base{Name: "A"}, Pred: AttrConst{Attr: "x", Op: OpLE, Val: Int(int64(r.Intn(5)))}}}
		case 3:
			e = DiffE{L: e, R: SelectE{In: Base{Name: "A"}, Pred: AttrConst{Attr: "x", Op: OpEQ, Val: Int(int64(r.Intn(5)))}}}
		}
	}
	switch r.Intn(4) {
	case 0:
		e = ProjectE{In: e, Attrs: []string{"x", "y"}}
	case 1:
		e = ProductE{L: e, R: Base{Name: "B"}}
	case 2:
		fns := []AggFunc{COUNT, SUM, MIN, MAX, AVG}
		fn := fns[r.Intn(len(fns))]
		arg := "z"
		if fn == COUNT && r.Intn(2) == 0 {
			arg = ""
		}
		e = AggregateE{In: e, GroupBy: []string{"y"}, Fn: fn, Arg: arg, Out: "res"}
	}
	return e
}

func TestTheorem2Equivalence(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for iter := 0; iter < 60; iter++ {
		db := randDB(r)
		e := randExpr(r)
		checkEquiv(t, db, e, fmt.Sprintf("random-%d", iter))
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	db := sampleDB()
	for name, rel := range db {
		mo, err := EncodeRelation(rel)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := DecodeMO(mo, rel.Schema, tctx)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !back.Equal(rel) {
			t.Errorf("%s: round trip broken:\n%v\n%v", name, rel, back)
		}
	}
	// Empty strings survive via the marker + Value representation.
	r := MustRelation("E", Schema{{Name: "s", Type: TString}})
	r.MustInsert(Str(""))
	r.MustInsert(Str("x"))
	mo, err := EncodeRelation(r)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeMO(mo, r.Schema, tctx)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(r) {
		t.Errorf("empty-string round trip broken:\n%v\n%v", r, back)
	}
}

func TestTheorem2JoinAndRename(t *testing.T) {
	db := sampleDB()
	// Rename H(hpid,diag) to H2(pid,diag) and natural-join with P on pid.
	renamed := RenameE{In: Base{Name: "H"}, Name: "H2", Attrs: []string{"pid", "diag"}}
	checkEquiv(t, db, renamed, "rename")
	join := JoinE{L: Base{Name: "P"}, R: renamed}
	checkEquiv(t, db, join, "natural-join")
	// Join with no shared attributes degenerates to the product.
	checkEquiv(t, db, JoinE{L: Base{Name: "P"}, R: Base{Name: "H"}}, "join-disjoint")
	// Aggregation over a join: diagnoses per patient name.
	checkEquiv(t, db, AggregateE{
		In: join, GroupBy: []string{"name"}, Fn: COUNT, Arg: "", Out: "n",
	}, "agg-over-join")
	// The desugaring itself evaluates to the same relation as the native
	// natural join.
	native, err := join.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	sugar, err := join.Desugar(db)
	if err != nil {
		t.Fatal(err)
	}
	viaSugar, err := sugar.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	// Schemas differ in attribute order guarantees? Desugar preserves
	// L-then-extras order, same as NaturalJoin.
	if !viaSugar.Equal(native) {
		t.Errorf("desugared join differs:\n%v\n%v", native, viaSugar)
	}
}

func TestTheorem2RandomJoins(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for iter := 0; iter < 20; iter++ {
		db := randDB(r)
		// Rename B(u,v) so u aligns with A's x, then join and aggregate.
		join := JoinE{
			L: Base{Name: "A"},
			R: RenameE{In: Base{Name: "B"}, Name: "B2", Attrs: []string{"x", "v"}},
		}
		checkEquiv(t, db, join, fmt.Sprintf("rand-join-%d", iter))
		checkEquiv(t, db, AggregateE{
			In: join, GroupBy: []string{"v"}, Fn: SUM, Arg: "z", Out: "s",
		}, fmt.Sprintf("rand-join-agg-%d", iter))
	}
}
