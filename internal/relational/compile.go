package relational

import (
	"fmt"

	"mddm/internal/agg"
	"mddm/internal/algebra"
	"mddm/internal/core"
	"mddm/internal/dimension"
)

// Compile translates a relational-algebra-with-aggregation expression to a
// pipeline of MO-algebra operators over the MO encodings of the base
// relations — the constructive content of Theorem 2. The resulting MO
// decodes (DecodeMO) to the same relation the relational engine computes;
// the property test TestTheorem2Equivalence checks this on randomized
// databases and expressions.
//
// The operator mapping:
//
//	base       → EncodeRelation
//	σ[p]       → algebra.Select with p lifted to the characterizing values
//	π[A…]      → algebra.Project + DuplicateRemoval (set semantics)
//	∪          → algebra.Union + DuplicateRemoval (identity vs value sets)
//	\          → algebra.Select with an anti-join predicate on value combos
//	×          → algebra.Join with the true predicate
//	⟨G,g(a)⟩   → algebra.Aggregate grouped at the bottom categories of G
func Compile(e Expr, db Database, ctx dimension.Context) (*core.MO, error) {
	switch x := e.(type) {
	case Base:
		r, ok := db[x.Name]
		if !ok {
			return nil, fmt.Errorf("relational: unknown relation %q", x.Name)
		}
		return EncodeRelation(r)

	case SelectE:
		in, err := Compile(x.In, db, ctx)
		if err != nil {
			return nil, err
		}
		schema, err := OutSchema(x.In, db)
		if err != nil {
			return nil, err
		}
		return algebra.Select(in, liftPred(x.Pred, schema), ctx), nil

	case ProjectE:
		in, err := Compile(x.In, db, ctx)
		if err != nil {
			return nil, err
		}
		p, err := algebra.Project(in, x.Attrs...)
		if err != nil {
			return nil, err
		}
		return algebra.DuplicateRemoval(p, ctx)

	case UnionE:
		l, err := Compile(x.L, db, ctx)
		if err != nil {
			return nil, err
		}
		r, err := Compile(x.R, db, ctx)
		if err != nil {
			return nil, err
		}
		// The encodings carry distinct fact identities; align the schemas
		// (attribute names may coincide, fact type names may differ) by
		// rename, union, then collapse value-equal facts.
		r2, err := alignSchemas(l, r)
		if err != nil {
			return nil, err
		}
		u, err := algebra.Union(l, r2)
		if err != nil {
			return nil, err
		}
		return algebra.DuplicateRemoval(u, ctx)

	case DiffE:
		l, err := Compile(x.L, db, ctx)
		if err != nil {
			return nil, err
		}
		r, err := Compile(x.R, db, ctx)
		if err != nil {
			return nil, err
		}
		schema, err := OutSchema(x.L, db)
		if err != nil {
			return nil, err
		}
		rRel, err := DecodeMO(r, schema, ctx)
		if err != nil {
			return nil, err
		}
		// Anti-join: keep the facts of L whose value combination is absent
		// from R (value-based difference via selection).
		pred := func(m *core.MO, f string, c dimension.Context) bool {
			ts, err := factTuples(m, schema, f, c)
			if err != nil || len(ts) == 0 {
				return false
			}
			for _, t := range ts {
				if rRel.Has(t) {
					return false
				}
			}
			return true
		}
		return algebra.Select(l, pred, ctx), nil

	case ProductE:
		l, err := Compile(x.L, db, ctx)
		if err != nil {
			return nil, err
		}
		r, err := Compile(x.R, db, ctx)
		if err != nil {
			return nil, err
		}
		return algebra.Join(l, r, algebra.CrossJoin)

	case AggregateE:
		in, err := Compile(x.In, db, ctx)
		if err != nil {
			return nil, err
		}
		fn, err := mapAggFunc(x.Fn, x.Arg)
		if err != nil {
			return nil, err
		}
		spec := algebra.AggSpec{
			ResultDim: x.Out,
			Func:      fn,
			GroupBy:   map[string]string{},
			Warn:      true, // relational semantics has no legality guard
		}
		if fn.NeedsArg {
			spec.ArgDims = []string{x.Arg}
		}
		for _, a := range x.GroupBy {
			dt := in.Schema().DimensionType(a)
			if dt == nil {
				return nil, fmt.Errorf("relational: compile: unknown grouping attribute %q", a)
			}
			spec.GroupBy[a] = dt.Bottom()
		}
		res, err := algebra.Aggregate(in, spec, ctx)
		if err != nil {
			return nil, err
		}
		return res.MO, nil

	case RenameE:
		in, err := Compile(x.In, db, ctx)
		if err != nil {
			return nil, err
		}
		if len(x.Attrs) != in.Schema().NumDimensions() {
			return nil, fmt.Errorf("relational: compile: rename arity mismatch")
		}
		s, err := core.NewSchema(x.Name)
		if err != nil {
			return nil, err
		}
		for i, old := range in.Schema().DimensionNames() {
			if err := s.AddDimensionType(in.Schema().DimensionType(old).Clone(x.Attrs[i])); err != nil {
				return nil, err
			}
		}
		return algebra.Rename(in, s)

	case JoinE:
		// The natural join is derived: desugar into rename, product,
		// selection and projection, then compile the desugared expression —
		// exactly how the paper defines derived operators in terms of the
		// fundamental ones.
		desugared, err := x.Desugar(db)
		if err != nil {
			return nil, err
		}
		return Compile(desugared, db, ctx)

	default:
		return nil, fmt.Errorf("relational: compile: unknown expression %T", e)
	}
}

// mapAggFunc maps a relational aggregation function to the MO registry.
// COUNT(*) becomes SETCOUNT (a group holds exactly the facts of the SQL
// group, and set semantics makes |group| = COUNT(*)).
func mapAggFunc(fn AggFunc, arg string) (*agg.Func, error) {
	if fn == COUNT && arg == "" {
		return agg.Lookup("SETCOUNT")
	}
	return agg.Lookup(string(fn))
}

// liftPred lifts a relational predicate to an MO predicate over the values
// characterizing a fact — the paper's σ with p ranging over (e1,…,en).
func liftPred(p Pred, schema Schema) algebra.Predicate {
	return func(m *core.MO, f string, ctx dimension.Context) bool {
		ts, err := factTuples(m, schema, f, ctx)
		if err != nil {
			return false
		}
		for _, t := range ts {
			if p.Holds(schema, t) {
				return true
			}
		}
		return false
	}
}

// factTuples decodes the value combinations characterizing a single fact.
func factTuples(m *core.MO, schema Schema, f string, ctx dimension.Context) ([]Tuple, error) {
	tmp, err := NewRelation("tmp", schema)
	if err != nil {
		return nil, err
	}
	perAttr := make([][]Datum, len(schema))
	for i, a := range schema {
		d := m.Dimension(a.Name)
		r := m.Relation(a.Name)
		if d == nil || r == nil {
			return nil, fmt.Errorf("relational: no dimension %q", a.Name)
		}
		for _, v := range r.ValuesOf(f) {
			if v == dimension.TopValue {
				continue
			}
			text := v
			if rep := d.Representation("Value"); rep != nil {
				if s, ok := rep.RepOf(v, ctx); ok {
					text = s
				}
			}
			dat, err := ParseDatum(a.Type, text)
			if err != nil {
				return nil, err
			}
			perAttr[i] = append(perAttr[i], dat)
		}
		if len(perAttr[i]) == 0 {
			return nil, nil
		}
	}
	if err := emitCombos(tmp, perAttr); err != nil {
		return nil, err
	}
	return tmp.Tuples(), nil
}

// alignSchemas renames r's schema to l's when they are isomorphic but not
// equal (same attributes, different fact-type name).
func alignSchemas(l, r *core.MO) (*core.MO, error) {
	if l.Schema().Equal(r.Schema()) {
		return r, nil
	}
	if !l.Schema().Isomorphic(r.Schema()) {
		return nil, fmt.Errorf("relational: union operands have incompatible schemas")
	}
	return algebra.Rename(r, l.Schema())
}
