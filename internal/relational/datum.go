// Package relational implements a Klug-style relational algebra with
// aggregation functions and uses it to reproduce Theorem 2 of Pedersen &
// Jensen (ICDE 1999): the multidimensional algebra is at least as powerful
// as relational algebra with aggregation. The demonstration is
// constructive — every relational expression is compiled to a pipeline of
// MO-algebra operators over an MO encoding of the database, and the results
// are checked equal (see compile.go and the property tests).
package relational

import (
	"fmt"
	"strconv"
)

// Type is the type of an attribute.
type Type int

const (
	// TString attributes hold text.
	TString Type = iota
	// TInt attributes hold 64-bit integers.
	TInt
	// TFloat attributes hold 64-bit floats.
	TFloat
)

// String names the type.
func (t Type) String() string {
	switch t {
	case TString:
		return "string"
	case TInt:
		return "int"
	case TFloat:
		return "float"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Datum is one attribute value. The zero value is the empty string.
type Datum struct {
	Kind Type
	S    string
	I    int64
	F    float64
}

// S returns a string datum.
func Str(s string) Datum { return Datum{Kind: TString, S: s} }

// Int returns an integer datum.
func Int(i int64) Datum { return Datum{Kind: TInt, I: i} }

// Float returns a float datum.
func Float(f float64) Datum { return Datum{Kind: TFloat, F: f} }

// String renders the datum as text (the canonical encoding used when data
// moves into dimension values).
func (d Datum) String() string {
	switch d.Kind {
	case TInt:
		return strconv.FormatInt(d.I, 10)
	case TFloat:
		if d.F == float64(int64(d.F)) {
			return strconv.FormatInt(int64(d.F), 10)
		}
		return strconv.FormatFloat(d.F, 'g', -1, 64)
	default:
		return d.S
	}
}

// Num returns the numeric interpretation of the datum; ok is false for
// strings.
func (d Datum) Num() (float64, bool) {
	switch d.Kind {
	case TInt:
		return float64(d.I), true
	case TFloat:
		return d.F, true
	default:
		return 0, false
	}
}

// Equal compares two data; numeric data compare by value across int/float.
func (d Datum) Equal(o Datum) bool {
	dn, dok := d.Num()
	on, ook := o.Num()
	if dok && ook {
		return dn == on
	}
	if dok != ook {
		return false
	}
	return d.S == o.S
}

// Less orders two data: numerics by value, strings lexicographically;
// numerics sort before strings.
func (d Datum) Less(o Datum) bool {
	dn, dok := d.Num()
	on, ook := o.Num()
	switch {
	case dok && ook:
		return dn < on
	case dok:
		return true
	case ook:
		return false
	default:
		return d.S < o.S
	}
}

// ParseDatum converts text back into a datum of the given type.
func ParseDatum(t Type, s string) (Datum, error) {
	switch t {
	case TInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Datum{}, fmt.Errorf("relational: %q is not an int", s)
		}
		return Int(i), nil
	case TFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Datum{}, fmt.Errorf("relational: %q is not a float", s)
		}
		return Float(f), nil
	default:
		return Str(s), nil
	}
}
