package relational

import (
	"fmt"
	"sort"
)

// Select returns the tuples satisfying the predicate.
func Select(r *Relation, pred func(Schema, Tuple) bool) (*Relation, error) {
	out, err := NewRelation(r.Name, r.Schema)
	if err != nil {
		return nil, err
	}
	for _, t := range r.tuples {
		if pred(r.Schema, t) {
			if err := out.Insert(t); err != nil {
				return nil, fmt.Errorf("relational: select: %w", err)
			}
		}
	}
	return out, nil
}

// Project returns the relation restricted to the named attributes, with
// duplicate tuples removed (set semantics).
func Project(r *Relation, attrs ...string) (*Relation, error) {
	idx := make([]int, len(attrs))
	schema := make(Schema, len(attrs))
	for i, a := range attrs {
		j := r.Schema.Index(a)
		if j < 0 {
			return nil, fmt.Errorf("relational: project: unknown attribute %q", a)
		}
		idx[i] = j
		schema[i] = r.Schema[j]
	}
	out, err := NewRelation(r.Name, schema)
	if err != nil {
		return nil, err
	}
	for _, t := range r.tuples {
		nt := make(Tuple, len(idx))
		for i, j := range idx {
			nt[i] = t[j]
		}
		if err := out.Insert(nt); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Rename returns the relation with attributes renamed positionally.
func Rename(r *Relation, newName string, attrNames []string) (*Relation, error) {
	if len(attrNames) != len(r.Schema) {
		return nil, fmt.Errorf("relational: rename: %d names for %d attributes", len(attrNames), len(r.Schema))
	}
	schema := make(Schema, len(r.Schema))
	for i, a := range r.Schema {
		schema[i] = Attr{Name: attrNames[i], Type: a.Type}
	}
	out, err := NewRelation(newName, schema)
	if err != nil {
		return nil, err
	}
	for _, t := range r.tuples {
		if err := out.Insert(t); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Union returns r ∪ o (schemas must be compatible: same types positionally).
func Union(r, o *Relation) (*Relation, error) {
	if err := compatible(r, o); err != nil {
		return nil, err
	}
	out := r.Clone()
	for _, t := range o.tuples {
		if err := out.Insert(t); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Difference returns r \ o.
func Difference(r, o *Relation) (*Relation, error) {
	if err := compatible(r, o); err != nil {
		return nil, err
	}
	out := MustRelation(r.Name, r.Schema)
	for _, t := range r.tuples {
		if !o.index[t.key()] {
			if err := out.Insert(t); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func compatible(r, o *Relation) error {
	if len(r.Schema) != len(o.Schema) {
		return fmt.Errorf("relational: arity mismatch %d vs %d", len(r.Schema), len(o.Schema))
	}
	for i := range r.Schema {
		if r.Schema[i].Type != o.Schema[i].Type {
			return fmt.Errorf("relational: attribute %d type mismatch", i)
		}
	}
	return nil
}

// Product returns the Cartesian product; attribute names must be disjoint.
func Product(r, o *Relation) (*Relation, error) {
	for _, a := range o.Schema {
		if r.Schema.Index(a.Name) >= 0 {
			return nil, fmt.Errorf("relational: product: attribute %q occurs in both relations", a.Name)
		}
	}
	schema := append(append(Schema{}, r.Schema...), o.Schema...)
	out, err := NewRelation(r.Name+"×"+o.Name, schema)
	if err != nil {
		return nil, err
	}
	for _, t1 := range r.tuples {
		for _, t2 := range o.tuples {
			nt := append(append(Tuple{}, t1...), t2...)
			if err := out.Insert(nt); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// NaturalJoin joins on all shared attribute names.
func NaturalJoin(r, o *Relation) (*Relation, error) {
	var shared []string
	for _, a := range o.Schema {
		if r.Schema.Index(a.Name) >= 0 {
			shared = append(shared, a.Name)
		}
	}
	if len(shared) == 0 {
		return Product(r, o)
	}
	var extra Schema
	var extraIdx []int
	for i, a := range o.Schema {
		if r.Schema.Index(a.Name) < 0 {
			extra = append(extra, a)
			extraIdx = append(extraIdx, i)
		}
	}
	schema := append(append(Schema{}, r.Schema...), extra...)
	out, err := NewRelation(r.Name+"⋈"+o.Name, schema)
	if err != nil {
		return nil, err
	}
	for _, t1 := range r.tuples {
		for _, t2 := range o.tuples {
			match := true
			for _, s := range shared {
				if !t1[r.Schema.Index(s)].Equal(t2[o.Schema.Index(s)]) {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			nt := append(Tuple{}, t1...)
			for _, j := range extraIdx {
				nt = append(nt, t2[j])
			}
			if err := out.Insert(nt); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// AggFunc names a relational aggregation function.
type AggFunc string

// The standard SQL aggregation functions of Klug's algebra.
const (
	SUM   AggFunc = "SUM"
	COUNT AggFunc = "COUNT"
	AVG   AggFunc = "AVG"
	MIN   AggFunc = "MIN"
	MAX   AggFunc = "MAX"
)

// Aggregate implements Klug-style aggregate formation: group by the listed
// attributes and compute fn over the argument attribute of each group. The
// result schema is the grouping attributes followed by a float attribute
// named out. COUNT admits arg == "" (count tuples).
func Aggregate(r *Relation, groupBy []string, fn AggFunc, arg, out string) (*Relation, error) {
	gIdx := make([]int, len(groupBy))
	schema := make(Schema, 0, len(groupBy)+1)
	for i, a := range groupBy {
		j := r.Schema.Index(a)
		if j < 0 {
			return nil, fmt.Errorf("relational: aggregate: unknown grouping attribute %q", a)
		}
		gIdx[i] = j
		schema = append(schema, r.Schema[j])
	}
	aIdx := -1
	if arg != "" {
		aIdx = r.Schema.Index(arg)
		if aIdx < 0 {
			return nil, fmt.Errorf("relational: aggregate: unknown argument attribute %q", arg)
		}
	}
	if fn != COUNT && aIdx < 0 {
		return nil, fmt.Errorf("relational: aggregate: %s needs an argument attribute", fn)
	}
	schema = append(schema, Attr{Name: out, Type: TFloat})

	type group struct {
		key  Tuple
		vals []float64
		n    int
	}
	groups := map[string]*group{}
	var order []string
	for _, t := range r.tuples {
		key := make(Tuple, len(gIdx))
		for i, j := range gIdx {
			key[i] = t[j]
		}
		k := key.key()
		g, ok := groups[k]
		if !ok {
			g = &group{key: key}
			groups[k] = g
			order = append(order, k)
		}
		g.n++
		if aIdx >= 0 {
			if v, ok := t[aIdx].Num(); ok {
				g.vals = append(g.vals, v)
			}
		}
	}
	sort.Strings(order)

	res, err := NewRelation(r.Name+"/agg", schema)
	if err != nil {
		return nil, err
	}
	for _, k := range order {
		g := groups[k]
		var v float64
		switch fn {
		case COUNT:
			if aIdx >= 0 {
				v = float64(len(g.vals))
			} else {
				v = float64(g.n)
			}
		case SUM:
			for _, x := range g.vals {
				v += x
			}
		case AVG:
			if len(g.vals) == 0 {
				continue
			}
			for _, x := range g.vals {
				v += x
			}
			v /= float64(len(g.vals))
		case MIN:
			if len(g.vals) == 0 {
				continue
			}
			v = g.vals[0]
			for _, x := range g.vals[1:] {
				if x < v {
					v = x
				}
			}
		case MAX:
			if len(g.vals) == 0 {
				continue
			}
			v = g.vals[0]
			for _, x := range g.vals[1:] {
				if x > v {
					v = x
				}
			}
		default:
			return nil, fmt.Errorf("relational: aggregate: unknown function %q", fn)
		}
		nt := append(append(Tuple{}, g.key...), Float(v))
		if err := res.Insert(nt); err != nil {
			return nil, err
		}
	}
	return res, nil
}
