package storage

import (
	"context"
	"fmt"
	"sort"

	"mddm/internal/exec"
	"mddm/internal/obs"
	"mddm/internal/qos"
)

// This file implements characterization columns: a dictionary-encoded
// columnar layout of the characterization relation, built per (dimension,
// category) on top of the memoized closure bitmaps, and single-pass
// group-by kernels over it. The bitmap paths cost
// O(|values(category)| × facts/64) — one closure scan per category value —
// while a column kernel reads the dense fact→value-id codes once and
// accumulates into flat arrays indexed by value-id: O(facts) regardless of
// category cardinality, and cache-friendly. The paper's hard cases map to
// two sentinels: a fact attached above the category (mixed granularity)
// characterizes no value of it and encodes colNone; a many-to-many fact
// carrying several values of the category encodes colMulti and stores its
// value-ids in a compact overflow side-table sorted by (fact, value-id).
//
// Every kernel is bit-identical to the bitmap path it replaces, at every
// parallelism degree, and charges the same qos fact budget: per category
// value, in CategoryAt order, Check then Facts(|facts of value|) — exactly
// the bitmap paths' accounting. Sequential float sums fold per value in
// ascending fact order (the same order Bitmap.Iterate visits); parallel
// sums split on the same exec.Partitions ranges as the bitmap parallel
// path and merge per-partition partials in ascending partition order, so
// the float association is identical too.
//
// Concurrency: columns live behind the engine's RWMutex. Builds take the
// write lock; kernels snapshot the codes and overflow slice headers under
// the read lock and then run lock-free — AppendFact only ever appends to
// these slices (never mutates existing elements), so a snapshot of the
// first n facts stays immutable.

// Kernel-selection and column-maintenance metrics. The kernel counters
// count aggregation calls (one per CountDistinctByContext /
// SumByContext / CrossCountContext), so the ratio is the heuristic's
// hit rate.
var (
	mKernelColumn = obs.NewCounter("mddm_storage_kernel_total",
		"Aggregation calls answered by kernel kind.", obs.Label{Key: "kind", Value: "column"})
	mKernelBitmap = obs.NewCounter("mddm_storage_kernel_total",
		"Aggregation calls answered by kernel kind.", obs.Label{Key: "kind", Value: "bitmap"})
	mColumnBuilds = obs.NewCounter("mddm_storage_column_builds_total",
		"Characterization columns built (one per dimension-category pair).")
)

const (
	// colNone marks a fact characterized by no value of the column's
	// category — including the mixed-granularity facts attached above it.
	colNone = ^uint32(0)
	// colMulti marks a many-to-many fact whose several value-ids live in
	// the overflow side-table.
	colMulti = ^uint32(0) - 1
)

// DefaultColumnMinValues is the kernel-selection threshold: a built column
// is preferred over per-value bitmap scans when its category has at least
// this many values. Below it, the bitmap path's few popcount scans beat
// the full-column read.
const DefaultColumnMinValues = 16

// maxCrossColumnCells caps the flat accumulator the cross-count column
// kernel allocates (|values1| × |values2| int64 cells ≈ 32 MiB at the
// cap); larger matrices fall back to bitmap intersection.
const maxCrossColumnCells = 1 << 22

// overPair is one overflow entry: fact (dense index) carries value-id vid.
// The side-table is sorted by (fact, vid); appends keep the order because
// new facts get the largest dense index.
type overPair struct {
	fact int
	vid  uint32
}

// column is one characterization column for a (dimension, category) pair.
type column struct {
	dim, cat string
	vals     []string          // dictionary: value-id → value, in CategoryAt order
	vid      map[string]uint32 // reverse dictionary
	codes    []uint32          // fact index → value-id, colNone, or colMulti
	over     []overPair        // overflow side-table, sorted by (fact, vid)
}

func colKey(dim, cat string) string { return dim + "\x00" + cat }

// SetColumnMinValues overrides the kernel-selection threshold (0 restores
// DefaultColumnMinValues). It applies to selection and to EnsureColumn's
// build decision.
func (e *Engine) SetColumnMinValues(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.colMin = n
}

func (e *Engine) columnMinValuesLocked() int {
	if e.colMin > 0 {
		return e.colMin
	}
	return DefaultColumnMinValues
}

// columnFor returns the built column for (dim, cat) when the cost
// heuristic prefers it: the column exists and its category cardinality
// meets the threshold. Nil means the bitmap path answers.
func (e *Engine) columnFor(dim, cat string) *column {
	e.mu.RLock()
	defer e.mu.RUnlock()
	col := e.cols[colKey(dim, cat)]
	if col == nil || len(col.vals) < e.columnMinValuesLocked() {
		return nil
	}
	return col
}

// HasColumn reports whether a characterization column is built for
// (dim, cat).
func (e *Engine) HasColumn(dim, cat string) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.cols[colKey(dim, cat)] != nil
}

// BuildColumn materializes the characterization column of (dim, cat) from
// the closure bitmaps (building any missing ones first). It is idempotent
// and charges no fact budget — like closure memoization, it is
// infrastructure work, so queries cost the same whether they build or
// reuse. Unknown dimensions or categories build an empty column.
func (e *Engine) BuildColumn(ctx context.Context, dim, cat string) error {
	e.mu.RLock()
	built := e.cols[colKey(dim, cat)] != nil
	e.mu.RUnlock()
	if built {
		return nil
	}
	d := e.mo.Dimension(dim)
	if d == nil {
		return nil
	}
	vals := d.CategoryAt(cat, e.ctx)
	if uint64(len(vals)) >= uint64(colMulti) {
		return fmt.Errorf("storage: column %s/%s: %d values exceed the uint32 dictionary", dim, cat, len(vals))
	}
	g := qos.NewGuard(ctx)
	if err := e.ensureClosures(g, dim, vals); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cols == nil {
		e.cols = map[string]*column{}
	}
	if e.cols[colKey(dim, cat)] != nil {
		return nil
	}
	col := &column{
		dim:   dim,
		cat:   cat,
		vals:  vals,
		vid:   make(map[string]uint32, len(vals)),
		codes: make([]uint32, len(e.facts)),
	}
	for j, v := range vals {
		col.vid[v] = uint32(j)
	}
	for i := range col.codes {
		col.codes[i] = colNone
	}
	di := e.dims[dim]
	for j, v := range vals {
		if err := g.Check(); err != nil {
			return fmt.Errorf("storage: column %s/%s: %w", dim, cat, err)
		}
		var bm *Bitmap
		if di != nil {
			bm = di.closure[v]
		}
		if bm == nil {
			continue
		}
		vid := uint32(j)
		bm.Iterate(func(i int) bool {
			switch col.codes[i] {
			case colNone:
				col.codes[i] = vid
			case colMulti:
				col.over = append(col.over, overPair{fact: i, vid: vid})
			default:
				col.over = append(col.over,
					overPair{fact: i, vid: col.codes[i]},
					overPair{fact: i, vid: vid})
				col.codes[i] = colMulti
			}
			return true
		})
	}
	sort.Slice(col.over, func(a, b int) bool {
		if col.over[a].fact != col.over[b].fact {
			return col.over[a].fact < col.over[b].fact
		}
		return col.over[a].vid < col.over[b].vid
	})
	e.cols[colKey(dim, cat)] = col
	mColumnBuilds.Inc()
	return nil
}

// EnsureColumn builds the column of (dim, cat) when the cost heuristic
// would select it — the category has at least ColumnMinValues values — and
// is a no-op otherwise. Pre-aggregation and the serving layer call it
// before aggregating, so the threshold decides both build and use.
func (e *Engine) EnsureColumn(ctx context.Context, dim, cat string) error {
	d := e.mo.Dimension(dim)
	if d == nil {
		return nil
	}
	e.mu.RLock()
	built := e.cols[colKey(dim, cat)] != nil
	min := e.columnMinValuesLocked()
	e.mu.RUnlock()
	if built || len(d.CategoryAt(cat, e.ctx)) < min {
		return nil
	}
	return e.BuildColumn(ctx, dim, cat)
}

// WarmColumns builds every column the heuristic would select, across all
// dimensions and categories of the schema (threshold override via
// minValues when positive). The serving layer calls it at engine-build
// time so the first query already runs the column kernels.
func (e *Engine) WarmColumns(ctx context.Context, minValues int) error {
	if minValues > 0 {
		e.SetColumnMinValues(minValues)
	}
	for _, dim := range e.mo.Schema().DimensionNames() {
		d := e.mo.Dimension(dim)
		if d == nil {
			continue
		}
		for _, cat := range d.Type().CategoryTypes() {
			if err := e.EnsureColumn(ctx, dim, cat); err != nil {
				return err
			}
		}
	}
	return nil
}

// snapshot captures the column's slice headers under the read lock; the
// slices are append-only, so the first len(codes) facts stay immutable
// while a kernel runs lock-free against them.
func (e *Engine) snapshotColumn(col *column) (codes []uint32, over []overPair) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return col.codes, col.over
}

// overStart positions an overflow cursor at the first entry with
// fact ≥ lo.
func overStart(over []overPair, lo int) int {
	return sort.Search(len(over), func(k int) bool { return over[k].fact >= lo })
}

// checkStride is how often the sequential single-pass kernels poll the
// guard: cancellation granularity of a few µs without per-fact overhead.
const checkStride = 1 << 14

// countColumnRange tallies facts-per-value over codes[lo:hi) into counts.
// Integer tallies are order-free, so it runs two tight passes — the dense
// codes, then the overflow entries of the range directly — instead of the
// per-fact cursor synchronization the float-sum kernel needs for its
// addition order. Both sentinels sit at the top of the uint32 range, so
// `c < colMulti` admits exactly the real value-ids.
func countColumnRange(codes []uint32, over []overPair, lo, hi int, counts []int64) {
	for _, c := range codes[lo:hi] {
		if c < colMulti {
			counts[c]++
		}
	}
	for k, ke := overStart(over, lo), overStart(over, hi); k < ke; k++ {
		counts[over[k].vid]++
	}
}

// countByColumn is the single-pass CountDistinctBy kernel: one read of the
// codes column accumulating into a flat []int64 indexed by value-id. A
// context-carried degree above 1 gives each exec partition its own
// accumulator array, merged by integer addition in ascending partition
// order — the same partition ranges as the bitmap parallel path, and
// integer merges are always exact. The budget loop then mirrors the
// bitmap paths: per value in dictionary (CategoryAt) order, Check then
// Facts(count).
func (e *Engine) countByColumn(ctx context.Context, g *qos.Guard, col *column) (map[string]int, error) {
	codes, over := e.snapshotColumn(col)
	n := len(codes)
	counts := make([]int64, len(col.vals))
	if deg := exec.DegreeFrom(ctx); deg > 1 {
		parts := exec.Partitions(n, deg)
		partial := make([][]int64, len(parts))
		if err := exec.Run(ctx, nil, deg, len(parts), func(p int) error {
			pc := make([]int64, len(col.vals))
			countColumnRange(codes, over, parts[p].Lo, parts[p].Hi, pc)
			partial[p] = pc
			return nil
		}); err != nil {
			return nil, err
		}
		for p := range parts {
			for j, c := range partial[p] {
				counts[j] += c
			}
		}
	} else {
		for lo := 0; lo < n; lo += checkStride {
			if err := g.Check(); err != nil {
				return nil, err
			}
			hi := lo + checkStride
			if hi > n {
				hi = n
			}
			countColumnRange(codes, over, lo, hi, counts)
		}
	}
	out := make(map[string]int, len(col.vals))
	for j, v := range col.vals {
		if err := g.Check(); err != nil {
			return nil, err
		}
		if err := g.Facts(counts[j]); err != nil {
			return nil, fmt.Errorf("storage: count-distinct %s/%s: %w", col.dim, col.cat, err)
		}
		if counts[j] > 0 {
			out[v] = int(counts[j])
		}
	}
	return out, nil
}

// sumColumnRange folds codes[lo:hi) into per-value sums: sums[vid]
// accumulates the argument values of every fact carrying vid, counts[vid]
// the facts (for budget parity with Facts(bitmap count)), adds[vid] the
// argument contributions (a value appears in the result only when a fact
// contributed an argument value — the bitmap path's `any` flag /
// SUM-state n). Facts are visited in ascending index order, so per-value
// float addition order equals Bitmap.Iterate's.
func sumColumnRange(codes []uint32, over []overPair, argVals [][]float64, lo, hi int,
	sums []float64, counts, adds []int64) {
	addFact := func(vid uint32, i int) {
		counts[vid]++
		for _, x := range argVals[i] {
			sums[vid] += x
			adds[vid]++
		}
	}
	oc := overStart(over, lo)
	for i := lo; i < hi; i++ {
		switch c := codes[i]; c {
		case colNone:
		case colMulti:
			for oc < len(over) && over[oc].fact < i {
				oc++
			}
			for oc < len(over) && over[oc].fact == i {
				addFact(over[oc].vid, i)
				oc++
			}
		default:
			addFact(c, i)
		}
	}
}

// sumByColumn is the single-pass SumBy kernel. Sequentially it folds every
// fact in ascending order, which for any one value is the exact addition
// order of the bitmap path's Iterate — bit-identical floats. At degree
// above 1 it uses the same exec.Partitions ranges as sumByParallel and
// merges per-partition (sum, adds) partials in ascending partition order,
// the same association as the agg.State merge of the bitmap parallel path.
func (e *Engine) sumByColumn(ctx context.Context, g *qos.Guard, col *column, argDim string) (map[string]float64, error) {
	e.ensureArgValues(argDim)
	e.mu.RLock()
	codes, over := col.codes, col.over
	argVals := e.argCols[argDim]
	e.mu.RUnlock()
	n := len(codes)
	nv := len(col.vals)
	sums := make([]float64, nv)
	counts := make([]int64, nv)
	adds := make([]int64, nv)
	if deg := exec.DegreeFrom(ctx); deg > 1 {
		parts := exec.Partitions(n, deg)
		pSums := make([][]float64, len(parts))
		pCounts := make([][]int64, len(parts))
		pAdds := make([][]int64, len(parts))
		if err := exec.Run(ctx, nil, deg, len(parts), func(p int) error {
			s := make([]float64, nv)
			c := make([]int64, nv)
			a := make([]int64, nv)
			sumColumnRange(codes, over, argVals, parts[p].Lo, parts[p].Hi, s, c, a)
			pSums[p], pCounts[p], pAdds[p] = s, c, a
			return nil
		}); err != nil {
			return nil, err
		}
		for p := range parts {
			for j := 0; j < nv; j++ {
				sums[j] += pSums[p][j]
				counts[j] += pCounts[p][j]
				adds[j] += pAdds[p][j]
			}
		}
	} else {
		for lo := 0; lo < n; lo += checkStride {
			if err := g.Check(); err != nil {
				return nil, err
			}
			hi := lo + checkStride
			if hi > n {
				hi = n
			}
			sumColumnRange(codes, over, argVals, lo, hi, sums, counts, adds)
		}
	}
	out := make(map[string]float64, len(col.vals))
	for j, v := range col.vals {
		if err := g.Check(); err != nil {
			return nil, err
		}
		if err := g.Facts(counts[j]); err != nil {
			return nil, fmt.Errorf("storage: sum %s/%s: %w", col.dim, col.cat, err)
		}
		if adds[j] > 0 {
			out[v] = sums[j]
		}
	}
	return out, nil
}

// colVids appends the value-ids of fact i to dst (reusing its backing
// array) given its code and an overflow cursor, advancing the cursor.
func colVids(codes []uint32, over []overPair, i int, oc *int, dst []uint32) []uint32 {
	dst = dst[:0]
	switch c := codes[i]; c {
	case colNone:
	case colMulti:
		for *oc < len(over) && over[*oc].fact < i {
			*oc++
		}
		for *oc < len(over) && over[*oc].fact == i {
			dst = append(dst, over[*oc].vid)
			*oc++
		}
	default:
		dst = append(dst, c)
	}
	return dst
}

// crossColumnRange tallies the flat cell matrix (row-major, nv2 columns)
// and the per-row fact counts over codes[lo:hi) of both columns.
func crossColumnRange(codes1 []uint32, over1 []overPair, codes2 []uint32, over2 []overPair,
	nv2, lo, hi int, cells, rowFacts []int64) {
	oc1, oc2 := overStart(over1, lo), overStart(over2, lo)
	var buf1, buf2 [8]uint32
	v1s, v2s := buf1[:0], buf2[:0]
	for i := lo; i < hi; i++ {
		v1s = colVids(codes1, over1, i, &oc1, v1s)
		if len(v1s) == 0 {
			continue
		}
		for _, a := range v1s {
			rowFacts[a]++
		}
		v2s = colVids(codes2, over2, i, &oc2, v2s)
		for _, a := range v1s {
			row := int64(a) * int64(nv2)
			for _, b := range v2s {
				cells[row+int64(b)]++
			}
		}
	}
}

// crossCountByColumn is the single-pass cross-tab kernel: one read of both
// code columns accumulating into a flat |values1|×|values2| cell matrix
// (the caller caps its size via maxCrossColumnCells). Cell counts are
// integers, so partition merges are exact at any degree. Budget parity
// with crossCountSeq: per row value in dictionary order, Check always,
// then Facts(row fact count) for non-empty rows only.
func (e *Engine) crossCountByColumn(ctx context.Context, g *qos.Guard, c1, c2 *column) ([]CrossCell, error) {
	e.mu.RLock()
	codes1, over1 := c1.codes, c1.over
	codes2, over2 := c2.codes, c2.over
	e.mu.RUnlock()
	n := len(codes1)
	if m := len(codes2); m < n {
		n = m
	}
	nv1, nv2 := len(c1.vals), len(c2.vals)
	cells := make([]int64, nv1*nv2)
	rowFacts := make([]int64, nv1)
	if deg := exec.DegreeFrom(ctx); deg > 1 {
		parts := exec.Partitions(n, deg)
		pCells := make([][]int64, len(parts))
		pRows := make([][]int64, len(parts))
		if err := exec.Run(ctx, nil, deg, len(parts), func(p int) error {
			pc := make([]int64, nv1*nv2)
			pr := make([]int64, nv1)
			crossColumnRange(codes1, over1, codes2, over2, nv2, parts[p].Lo, parts[p].Hi, pc, pr)
			pCells[p], pRows[p] = pc, pr
			return nil
		}); err != nil {
			return nil, err
		}
		for p := range parts {
			for k, c := range pCells[p] {
				cells[k] += c
			}
			for j, c := range pRows[p] {
				rowFacts[j] += c
			}
		}
	} else {
		for lo := 0; lo < n; lo += checkStride {
			if err := g.Check(); err != nil {
				return nil, err
			}
			hi := lo + checkStride
			if hi > n {
				hi = n
			}
			crossColumnRange(codes1, over1, codes2, over2, nv2, lo, hi, cells, rowFacts)
		}
	}
	var out []CrossCell
	for j1, v1 := range c1.vals {
		if err := g.Check(); err != nil {
			return nil, err
		}
		if rowFacts[j1] == 0 {
			continue
		}
		if err := g.Facts(rowFacts[j1]); err != nil {
			return nil, fmt.Errorf("storage: cross-count %s/%s: %w", c1.dim, c1.cat, err)
		}
		row := j1 * nv2
		for j2, v2 := range c2.vals {
			if c := cells[row+j2]; c > 0 {
				out = append(out, CrossCell{V1: v1, V2: v2, Count: int(c)})
			}
		}
	}
	sortCells(out)
	return out, nil
}

// CountByColumn answers CountDistinctBy through the column kernel,
// building the column first if needed — the exported entry point for
// callers that want the columnar path regardless of the heuristic.
func (e *Engine) CountByColumn(ctx context.Context, dim, cat string) (map[string]int, error) {
	if err := e.BuildColumn(ctx, dim, cat); err != nil {
		return nil, err
	}
	e.mu.RLock()
	col := e.cols[colKey(dim, cat)]
	e.mu.RUnlock()
	if col == nil {
		return map[string]int{}, nil
	}
	mKernelColumn.Inc()
	return e.countByColumn(ctx, qos.NewGuard(ctx), col)
}

// SumByColumn answers SumBy through the column kernel, building the
// column first if needed.
func (e *Engine) SumByColumn(ctx context.Context, dim, cat, argDim string) (map[string]float64, error) {
	if err := e.BuildColumn(ctx, dim, cat); err != nil {
		return nil, err
	}
	e.mu.RLock()
	col := e.cols[colKey(dim, cat)]
	e.mu.RUnlock()
	if col == nil {
		return map[string]float64{}, nil
	}
	mKernelColumn.Inc()
	return e.sumByColumn(ctx, qos.NewGuard(ctx), col, argDim)
}

// CrossCountByColumn answers CrossCount through the column kernel,
// building both columns first if needed. It refuses matrices above
// maxCrossColumnCells (the automatic selection also enforces the cap).
func (e *Engine) CrossCountByColumn(ctx context.Context, dim1, cat1, dim2, cat2 string) ([]CrossCell, error) {
	if err := e.BuildColumn(ctx, dim1, cat1); err != nil {
		return nil, err
	}
	if err := e.BuildColumn(ctx, dim2, cat2); err != nil {
		return nil, err
	}
	e.mu.RLock()
	c1 := e.cols[colKey(dim1, cat1)]
	c2 := e.cols[colKey(dim2, cat2)]
	e.mu.RUnlock()
	if c1 == nil || c2 == nil {
		return nil, nil
	}
	if len(c1.vals)*len(c2.vals) > maxCrossColumnCells {
		return nil, fmt.Errorf("storage: cross-count %s/%s × %s/%s: %d×%d cell matrix exceeds the column-kernel cap",
			dim1, cat1, dim2, cat2, len(c1.vals), len(c2.vals))
	}
	mKernelColumn.Inc()
	return e.crossCountByColumn(ctx, qos.NewGuard(ctx), c1, c2)
}

// appendToColumn maintains one built column for a newly appended fact i:
// the fact's admitted value-ids in the column's category are the direct
// values that are in the dictionary plus the dictionary ancestors of every
// admitted direct value — mirroring the closure propagation AppendFact
// does for the bitmaps. The caller holds the write lock.
func (e *Engine) appendToColumn(col *column, factID string, i int) {
	for len(col.codes) < i {
		col.codes = append(col.codes, colNone)
	}
	d := e.mo.Dimension(col.dim)
	r := e.mo.Relation(col.dim)
	var vids []uint32
	seen := map[uint32]bool{}
	add := func(v string) {
		if id, ok := col.vid[v]; ok && !seen[id] {
			seen[id] = true
			vids = append(vids, id)
		}
	}
	for _, v := range r.ValuesOf(factID) {
		a, _ := r.Annot(factID, v)
		if !e.ctx.Admits(a) {
			continue
		}
		add(v)
		for _, anc := range d.Ancestors(v, e.ctx) {
			add(anc)
		}
		add(dimTopValue)
	}
	switch len(vids) {
	case 0:
		col.codes = append(col.codes, colNone)
	case 1:
		col.codes = append(col.codes, vids[0])
	default:
		sort.Slice(vids, func(a, b int) bool { return vids[a] < vids[b] })
		col.codes = append(col.codes, colMulti)
		for _, id := range vids {
			col.over = append(col.over, overPair{fact: i, vid: id})
		}
	}
}
