package storage

import (
	"context"
	"fmt"
	"testing"

	"mddm/internal/casestudy"
	"mddm/internal/dimension"
	"mddm/internal/exec"
	"mddm/internal/qos"
)

// allDegrees includes degree 1: the column kernels have a dedicated
// sequential pass, so the differential tests pin it explicitly alongside
// the partitioned ones.
var allDegrees = []int{1, 2, 4, 8}

func degreeCtx(deg int) context.Context {
	if deg > 1 {
		return exec.WithParallelism(context.Background(), deg)
	}
	return context.Background()
}

// columnDims is the differential corpus of (dim, cat) pairs: the
// high-cardinality bottom category (many-to-many via several diagnoses per
// patient, mixed granularity via family-level attachments), its rollups,
// and the second dimension for cross-tabs.
var columnDims = [][2]string{
	{casestudy.DimDiagnosis, casestudy.CatLowLevel},
	{casestudy.DimDiagnosis, casestudy.CatFamily},
	{casestudy.DimDiagnosis, casestudy.CatGroup},
	{casestudy.DimResidence, casestudy.CatArea},
}

// TestColumnDifferentialCount asserts CountByColumn ≡ the bitmap path ≡
// the model-layer CountDistinctScan, for every corpus engine, corpus
// (dim, cat), and parallelism degree. The bitmap result is taken before
// the column is built, so the automatic kernel selection cannot mask a
// divergence.
func TestColumnDifferentialCount(t *testing.T) {
	for name, e := range genVariants(t) {
		for _, dc := range columnDims {
			dim, cat := dc[0], dc[1]
			want, err := e.CountDistinctByContext(context.Background(), dim, cat)
			if err != nil {
				t.Fatal(err)
			}
			scan := e.CountDistinctScan(dim, cat)
			if fmt.Sprint(scan) != fmt.Sprint(want) {
				t.Fatalf("%s %s/%s: bitmap %v, scan %v", name, dim, cat, want, scan)
			}
			for _, deg := range allDegrees {
				got, err := e.CountByColumn(degreeCtx(deg), dim, cat)
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Errorf("%s %s/%s deg=%d: column %v, want %v", name, dim, cat, deg, got, want)
				}
			}
		}
	}
}

// TestColumnDifferentialSum asserts SumByColumn ≡ the bitmap SumBy at
// every degree. Ages are integer-valued, so even the re-associated
// parallel sums must be bit-identical.
func TestColumnDifferentialSum(t *testing.T) {
	for name, e := range genVariants(t) {
		for _, dc := range columnDims {
			dim, cat := dc[0], dc[1]
			want, err := e.SumByContext(context.Background(), dim, cat, casestudy.DimAge)
			if err != nil {
				t.Fatal(err)
			}
			for _, deg := range allDegrees {
				got, err := e.SumByColumn(degreeCtx(deg), dim, cat, casestudy.DimAge)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s %s/%s deg=%d: %d sums, want %d", name, dim, cat, deg, len(got), len(want))
				}
				for v, w := range want {
					if got[v] != w {
						t.Errorf("%s %s/%s deg=%d %s: column %v, want %v", name, dim, cat, deg, v, got[v], w)
					}
				}
			}
		}
	}
}

// TestColumnDifferentialCrossCount asserts CrossCountByColumn ≡ the bitmap
// cross-tab ≡ the model-layer CrossCountScan at every degree.
func TestColumnDifferentialCrossCount(t *testing.T) {
	for name, e := range genVariants(t) {
		want := e.CrossCount(casestudy.DimDiagnosis, casestudy.CatFamily, casestudy.DimResidence, casestudy.CatArea)
		scan := e.CrossCountScan(casestudy.DimDiagnosis, casestudy.CatFamily, casestudy.DimResidence, casestudy.CatArea)
		if fmt.Sprint(scan) != fmt.Sprint(want) {
			t.Fatalf("%s: bitmap %v, scan %v", name, want, scan)
		}
		for _, deg := range allDegrees {
			got, err := e.CrossCountByColumn(degreeCtx(deg), casestudy.DimDiagnosis, casestudy.CatFamily, casestudy.DimResidence, casestudy.CatArea)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("%s deg=%d: column %v, want %v", name, deg, got, want)
			}
		}
	}
}

// TestColumnTable1Shapes pins the paper's hard cases on the Table 1 case
// study itself: diagnosis 9 attaches at Family level (mixed granularity —
// colNone at the Low-level category) and patient 2 lives in two counties
// (many-to-many — the overflow side-table). The column kernels must agree
// with the model layer on the exact figures.
func TestColumnTable1Shapes(t *testing.T) {
	e := patientEngine(t)
	e.SetColumnMinValues(1) // tiny dimension; force column eligibility
	for _, dc := range [][2]string{
		{casestudy.DimDiagnosis, casestudy.CatLowLevel},
		{casestudy.DimDiagnosis, casestudy.CatFamily},
		{casestudy.DimResidence, casestudy.CatCounty},
	} {
		dim, cat := dc[0], dc[1]
		want := e.CountDistinctScan(dim, cat)
		for _, deg := range allDegrees {
			got, err := e.CountByColumn(degreeCtx(deg), dim, cat)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("%s/%s deg=%d: column %v, scan %v", dim, cat, deg, got, want)
			}
		}
	}
	// Figure 3's exact counts through the column kernel.
	counts, err := e.CountByColumn(context.Background(), casestudy.DimDiagnosis, casestudy.CatGroup)
	if err != nil {
		t.Fatal(err)
	}
	if counts["11"] != 2 || counts["12"] != 1 {
		t.Errorf("counts = %v, want 11→2, 12→1", counts)
	}
}

// TestColumnKernelSelection pins the cost heuristic: below the threshold
// EnsureColumn is a no-op and the bitmap kernel answers; at or above it
// the column is built and automatically selected, observable through the
// kernel counters.
func TestColumnKernelSelection(t *testing.T) {
	cfg := casestudy.DefaultGen()
	cfg.Patients = 120
	m := casestudy.MustGenerate(cfg)
	e := NewEngine(m, dimension.CurrentContext(ref))

	// CatGroup has few values — below DefaultColumnMinValues.
	if err := e.EnsureColumn(context.Background(), casestudy.DimDiagnosis, casestudy.CatGroup); err != nil {
		t.Fatal(err)
	}
	if e.HasColumn(casestudy.DimDiagnosis, casestudy.CatGroup) {
		t.Error("EnsureColumn must not build below the threshold")
	}
	// CatLowLevel has 40 values — above it.
	if err := e.EnsureColumn(context.Background(), casestudy.DimDiagnosis, casestudy.CatLowLevel); err != nil {
		t.Fatal(err)
	}
	if !e.HasColumn(casestudy.DimDiagnosis, casestudy.CatLowLevel) {
		t.Fatal("EnsureColumn must build above the threshold")
	}

	before := mKernelColumn.Value()
	if _, err := e.CountDistinctByContext(context.Background(), casestudy.DimDiagnosis, casestudy.CatLowLevel); err != nil {
		t.Fatal(err)
	}
	if mKernelColumn.Value() <= before {
		t.Error("built column above threshold must be auto-selected")
	}
	beforeBitmap := mKernelBitmap.Value()
	if _, err := e.CountDistinctByContext(context.Background(), casestudy.DimDiagnosis, casestudy.CatGroup); err != nil {
		t.Fatal(err)
	}
	if mKernelBitmap.Value() <= beforeBitmap {
		t.Error("unbuilt column must route to the bitmap kernel")
	}

	// Raising the threshold above the cardinality deselects a built column.
	e.SetColumnMinValues(1 << 20)
	if e.columnFor(casestudy.DimDiagnosis, casestudy.CatLowLevel) != nil {
		t.Error("threshold raise must deselect the column")
	}
	e.SetColumnMinValues(0)
	if e.columnFor(casestudy.DimDiagnosis, casestudy.CatLowLevel) == nil {
		t.Error("default threshold must select the 40-value column")
	}

	// WarmColumns builds every eligible column.
	e2 := NewEngine(m, dimension.CurrentContext(ref))
	if err := e2.WarmColumns(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	if !e2.HasColumn(casestudy.DimDiagnosis, casestudy.CatLowLevel) {
		t.Error("WarmColumns must build the low-level column")
	}
	if !e2.HasColumn(casestudy.DimResidence, casestudy.CatArea) {
		t.Error("WarmColumns must build the area column")
	}
}

// TestColumnBudgetParity pins that the column kernels charge exactly the
// fact budget of the bitmap paths — per category value, the value's fact
// count — at every degree, and that exhaustion surfaces identically.
func TestColumnBudgetParity(t *testing.T) {
	cfg := casestudy.DefaultGen()
	cfg.Patients = 150
	m := casestudy.MustGenerate(cfg)
	bitmapEng := NewEngine(m, dimension.CurrentContext(ref))
	colEng := NewEngine(m, dimension.CurrentContext(ref))
	if err := colEng.WarmColumns(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	spend := func(e *Engine, deg int) int64 {
		ctx := qos.WithFactBudget(context.Background(), 1<<40)
		if deg > 1 {
			ctx = exec.WithParallelism(ctx, deg)
		}
		if _, err := e.CountDistinctByContext(ctx, casestudy.DimDiagnosis, casestudy.CatLowLevel); err != nil {
			t.Fatal(err)
		}
		if _, err := e.SumByContext(ctx, casestudy.DimDiagnosis, casestudy.CatFamily, casestudy.DimAge); err != nil {
			t.Fatal(err)
		}
		if _, err := e.CrossCountContext(ctx, casestudy.DimDiagnosis, casestudy.CatFamily, casestudy.DimResidence, casestudy.CatArea); err != nil {
			t.Fatal(err)
		}
		return qos.BudgetFrom(ctx).Spent()
	}
	want := spend(bitmapEng, 1)
	if want == 0 {
		t.Fatal("bitmap run spent no budget")
	}
	for _, deg := range allDegrees {
		if got := spend(colEng, deg); got != want {
			t.Errorf("column deg=%d spent %d facts, bitmap spent %d", deg, got, want)
		}
	}
	for _, deg := range []int{1, 4} {
		ctx := qos.WithFactBudget(degreeCtx(deg), 3)
		if _, err := colEng.CountDistinctByContext(ctx, casestudy.DimDiagnosis, casestudy.CatLowLevel); err == nil {
			t.Errorf("deg=%d: tight budget must exhaust through the column kernel", deg)
		}
	}
}

// TestColumnAppendFactMaintains pins incremental maintenance: appending
// facts to an engine with built columns must keep the column kernels in
// agreement with a bitmap engine rebuilt from scratch.
func TestColumnAppendFactMaintains(t *testing.T) {
	cfg := casestudy.DefaultGen()
	cfg.Patients = 60
	m := casestudy.MustGenerate(cfg)
	e := NewEngine(m, dimension.CurrentContext(ref))
	if err := e.WarmColumns(context.Background(), 1); err != nil {
		t.Fatal(err)
	}

	diag := m.Dimension(casestudy.DimDiagnosis)
	lows := diag.Category(casestudy.CatLowLevel)
	fams := diag.Category(casestudy.CatFamily)
	for i := 0; i < 25; i++ {
		id := fmt.Sprintf("pcol%d", i)
		// Mix the shapes: two low-level diagnoses (many-to-many), and every
		// fifth fact attached at family level (mixed granularity).
		if i%5 == 0 {
			if err := m.Relate(casestudy.DimDiagnosis, id, fams[i%len(fams)]); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := m.Relate(casestudy.DimDiagnosis, id, lows[i%len(lows)]); err != nil {
				t.Fatal(err)
			}
			if err := m.Relate(casestudy.DimDiagnosis, id, lows[(i*7+3)%len(lows)]); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Relate(casestudy.DimResidence, id, "A0"); err != nil {
			t.Fatal(err)
		}
		if err := e.AppendFact(id); err != nil {
			t.Fatal(err)
		}
	}

	fresh := NewEngine(m, dimension.CurrentContext(ref))
	for _, dc := range columnDims {
		dim, cat := dc[0], dc[1]
		want, err := fresh.CountDistinctByContext(context.Background(), dim, cat)
		if err != nil {
			t.Fatal(err)
		}
		for _, deg := range allDegrees {
			got, err := e.CountByColumn(degreeCtx(deg), dim, cat)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("%s/%s deg=%d after appends: column %v, want %v", dim, cat, deg, got, want)
			}
		}
	}
	wantSum, err := fresh.SumByContext(context.Background(), casestudy.DimDiagnosis, casestudy.CatFamily, casestudy.DimAge)
	if err != nil {
		t.Fatal(err)
	}
	gotSum, err := e.SumByColumn(context.Background(), casestudy.DimDiagnosis, casestudy.CatFamily, casestudy.DimAge)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(gotSum) != fmt.Sprint(wantSum) {
		t.Errorf("sums after appends: column %v, want %v", gotSum, wantSum)
	}
}

// TestColumnCancellation pins cooperative cancellation through the column
// kernels at sequential and parallel degrees.
func TestColumnCancellation(t *testing.T) {
	m := casestudy.MustGenerate(casestudy.DefaultGen())
	e := NewEngine(m, dimension.CurrentContext(ref))
	if err := e.WarmColumns(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.CountByColumn(ctx, casestudy.DimDiagnosis, casestudy.CatLowLevel); err == nil {
		t.Error("canceled sequential column count must fail")
	}
	pctx := exec.WithParallelism(ctx, 4)
	if _, err := e.CountByColumn(pctx, casestudy.DimDiagnosis, casestudy.CatLowLevel); err == nil {
		t.Error("canceled parallel column count must fail")
	}
	if _, err := e.SumByColumn(ctx, casestudy.DimDiagnosis, casestudy.CatLowLevel, casestudy.DimAge); err == nil {
		t.Error("canceled column sum must fail")
	}
}
