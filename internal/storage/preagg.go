package storage

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements the summarizability-guarded pre-aggregate cache:
// the flexible reuse of pre-computed aggregates that §3.4 identifies as the
// payoff of summarizability. A materialized lower-level result is combined
// into a higher-level result only when the guard holds (distributive
// function, strict mapping, covering rollup between the two categories);
// otherwise the engine recomputes from the base bitmaps — by Lenz &
// Shoshani, combining would double-count or drop data.

// AggKind is the cached aggregate's function (the distributive subset that
// pre-aggregation supports).
type AggKind string

// Cacheable aggregate kinds.
const (
	KindCount AggKind = "COUNT" // distinct facts per value
	KindSum   AggKind = "SUM"   // sum of an argument dimension per value
)

// Materialization is one cached aggregate: fn per value of (dim, cat).
type Materialization struct {
	Dim  string
	Cat  string
	Kind AggKind
	Arg  string // argument dimension for SUM
	Rows map[string]float64
}

// Cache holds materializations keyed by (dim, cat, kind, arg).
type Cache struct {
	engine *Engine
	mats   map[string]*Materialization
	guards map[string]error // memoized ReuseGuard verdicts
	// Hits and Misses count reuse outcomes, for observability and tests.
	Hits, Misses int
}

// NewCache creates an empty pre-aggregate cache over an engine.
func NewCache(e *Engine) *Cache {
	return &Cache{engine: e, mats: map[string]*Materialization{}, guards: map[string]error{}}
}

func key(dim, cat string, kind AggKind, arg string) string {
	return strings.Join([]string{dim, cat, string(kind), arg}, "\x00")
}

// Materialize computes and caches the aggregate at (dim, cat).
func (c *Cache) Materialize(dim, cat string, kind AggKind, arg string) (*Materialization, error) {
	var rows map[string]float64
	switch kind {
	case KindCount:
		counts := c.engine.CountDistinctBy(dim, cat)
		rows = make(map[string]float64, len(counts))
		for v, n := range counts {
			rows[v] = float64(n)
		}
	case KindSum:
		if arg == "" {
			return nil, fmt.Errorf("storage: SUM materialization needs an argument dimension")
		}
		rows = c.engine.SumBy(dim, cat, arg)
	default:
		return nil, fmt.Errorf("storage: unsupported aggregate kind %q", kind)
	}
	m := &Materialization{Dim: dim, Cat: cat, Kind: kind, Arg: arg, Rows: rows}
	c.mats[key(dim, cat, kind, arg)] = m
	return m, nil
}

// Lookup returns the cached materialization, if any.
func (c *Cache) Lookup(dim, cat string, kind AggKind, arg string) (*Materialization, bool) {
	m, ok := c.mats[key(dim, cat, kind, arg)]
	return m, ok
}

// ReuseGuard checks whether a materialization at fromCat may be combined
// into results at toCat: toCat must be strictly above fromCat in the
// dimension's category order, the value mapping fromCat → toCat must be
// strict (no value of fromCat under two values of toCat — combining would
// double-count), and every contributing value must roll up (covering — a
// gap would silently drop facts). COUNT additionally requires the paths
// from the facts to fromCat to be strict, because distinct counts only add
// up when the fact sets being combined are disjoint.
func (c *Cache) ReuseGuard(dim, fromCat, toCat string, kind AggKind) error {
	d := c.engine.mo.Dimension(dim)
	dt := d.Type()
	if !dt.LessEq(fromCat, toCat) || fromCat == toCat {
		return fmt.Errorf("storage: %q is not above %q in dimension %s", toCat, fromCat, dim)
	}
	ctx := c.engine.ctx
	if !d.IsStrictBetween(fromCat, toCat, ctx) {
		return fmt.Errorf("storage: mapping %s→%s is non-strict; combining would double-count", fromCat, toCat)
	}
	if !d.Covering(fromCat, toCat, ctx) {
		return fmt.Errorf("storage: mapping %s→%s has gaps; combining would drop facts", fromCat, toCat)
	}
	if kind == KindCount {
		// Distinct counts combine only when the underlying fact sets are
		// disjoint: a fact must not be characterized by two values of
		// fromCat.
		for _, v1 := range d.CategoryAt(fromCat, ctx) {
			for _, v2 := range d.CategoryAt(fromCat, ctx) {
				if v1 >= v2 {
					continue
				}
				if c.engine.Characterizing(dim, v1).Clone().And(c.engine.Characterizing(dim, v2)).Count() > 0 {
					return fmt.Errorf("storage: values %s and %s of %s share facts; distinct counts cannot be added", v1, v2, fromCat)
				}
			}
		}
	}
	return nil
}

// guardCached memoizes ReuseGuard per (dim, fromCat, toCat, kind): the
// engine is an immutable snapshot, so a hierarchy's verdict cannot change
// and a production system validates it once, not per query.
func (c *Cache) guardCached(dim, fromCat, toCat string, kind AggKind) error {
	k := strings.Join([]string{dim, fromCat, toCat, string(kind)}, "\x00")
	if err, ok := c.guards[k]; ok {
		return err
	}
	err := c.ReuseGuard(dim, fromCat, toCat, kind)
	c.guards[k] = err
	return err
}

// RollupFrom combines a cached materialization at fromCat into the
// aggregate at toCat, after checking the (memoized) reuse guard. On guard
// failure it recomputes from base data (and reports the fallback through
// Misses).
func (c *Cache) RollupFrom(dim, fromCat, toCat string, kind AggKind, arg string) (map[string]float64, error) {
	m, ok := c.Lookup(dim, fromCat, kind, arg)
	if !ok {
		var err error
		m, err = c.Materialize(dim, fromCat, kind, arg)
		if err != nil {
			return nil, err
		}
	}
	if err := c.guardCached(dim, fromCat, toCat, kind); err != nil {
		c.Misses++
		return c.computeBase(dim, toCat, kind, arg)
	}
	c.Hits++
	d := c.engine.mo.Dimension(dim)
	out := map[string]float64{}
	for v1, x := range m.Rows {
		for _, v2 := range d.AncestorsIn(toCat, v1, c.engine.ctx) {
			out[v2] += x
		}
	}
	return out, nil
}

// computeBase answers at toCat directly from the bitmap indexes.
func (c *Cache) computeBase(dim, toCat string, kind AggKind, arg string) (map[string]float64, error) {
	switch kind {
	case KindCount:
		counts := c.engine.CountDistinctBy(dim, toCat)
		out := make(map[string]float64, len(counts))
		for v, n := range counts {
			out[v] = float64(n)
		}
		return out, nil
	case KindSum:
		return c.engine.SumBy(dim, toCat, arg), nil
	default:
		return nil, fmt.Errorf("storage: unsupported aggregate kind %q", kind)
	}
}

// Materialized lists the cached materialization keys, sorted.
func (c *Cache) Materialized() []string {
	out := make([]string, 0, len(c.mats))
	for k := range c.mats {
		out = append(out, strings.ReplaceAll(k, "\x00", "/"))
	}
	sort.Strings(out)
	return out
}
