package storage

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"mddm/internal/faultinject"
	"mddm/internal/obs"
)

// Pre-aggregate reuse outcomes, the process-wide view of the per-cache
// Hits/Misses fields: "hit" is a cache answer or a guard-approved rollup,
// "miss" is a materialize-on-demand, and "fallback" is the
// summarizability guard rejecting reuse and forcing a base-cube recompute
// — the paper's §3.4 safety rule firing in production.
var (
	mPreaggHits = obs.NewCounter("mddm_storage_preagg_total",
		"Pre-aggregate reuse decisions by outcome.", obs.Label{Key: "outcome", Value: "hit"})
	mPreaggMisses = obs.NewCounter("mddm_storage_preagg_total",
		"Pre-aggregate reuse decisions by outcome.", obs.Label{Key: "outcome", Value: "miss"})
	mPreaggFallbacks = obs.NewCounter("mddm_storage_preagg_total",
		"Pre-aggregate reuse decisions by outcome.", obs.Label{Key: "outcome", Value: "fallback"})
)

// Delta-maintenance outcomes for the pre-aggregate layer (the result
// cache registers the same family with layer="result-cache" in
// internal/serve): an upgrade keeps a materialization warm by folding
// only the appended facts; a fallback is the gate refusing the merge
// and reverting to invalidation, labeled by why.
var (
	mDeltaPreaggUpgrades = obs.NewCounter("mddm_delta_upgrades_total",
		"Cached aggregates upgraded in place by a delta merge instead of invalidated.",
		obs.Label{Key: "layer", Value: "preagg"})
	mDeltaPreaggFolds = obs.NewCounter("mddm_delta_folds_total",
		"Delta folds run over appended fact ranges.",
		obs.Label{Key: "layer", Value: "preagg"})
	mDeltaPreaggFallbackNonStrict = obs.NewCounter("mddm_delta_fallbacks_total",
		"Delta upgrades abandoned for invalidation, by reason.",
		obs.Label{Key: "layer", Value: "preagg"}, obs.Label{Key: "reason", Value: "non-strict"})
	mDeltaPreaggFallbackWindow = obs.NewCounter("mddm_delta_fallbacks_total",
		"Delta upgrades abandoned for invalidation, by reason.",
		obs.Label{Key: "layer", Value: "preagg"}, obs.Label{Key: "reason", Value: "window-unknown"})
)

// This file implements the summarizability-guarded pre-aggregate cache:
// the flexible reuse of pre-computed aggregates that §3.4 identifies as the
// payoff of summarizability. A materialized lower-level result is combined
// into a higher-level result only when the guard holds (distributive
// function, strict mapping, covering rollup between the two categories);
// otherwise the engine recomputes from the base bitmaps — by Lenz &
// Shoshani, combining would double-count or drop data.

// AggKind is the cached aggregate's function (the distributive subset that
// pre-aggregation supports).
type AggKind string

// Cacheable aggregate kinds.
const (
	KindCount AggKind = "COUNT" // distinct facts per value
	KindSum   AggKind = "SUM"   // sum of an argument dimension per value
)

// Materialization is one cached aggregate: fn per value of (dim, cat).
type Materialization struct {
	Dim  string
	Cat  string
	Kind AggKind
	Arg  string // argument dimension for SUM
	Rows map[string]float64
}

// Cache holds materializations keyed by (dim, cat, kind, arg). It is
// safe for concurrent use; the underlying engine carries its own lock
// (lock order: Cache.mu, then the engine's — never the reverse).
type Cache struct {
	engine *Engine
	mu     sync.Mutex // guards mats, guards, epoch, Hits, Misses, Upgrades, Fallbacks
	mats   map[string]*Materialization
	guards map[string]error // memoized ReuseGuard verdicts
	// epoch is the engine epoch every cached materialization (and guard
	// verdict) reflects; refresh folds the appended delta when it lags.
	epoch uint64
	// Hits and Misses count reuse outcomes; Upgrades and Fallbacks count
	// delta-refresh outcomes (materializations kept warm by a delta merge
	// vs dropped back to invalidation). For observability and tests —
	// read them only after concurrent work has quiesced.
	Hits, Misses        int
	Upgrades, Fallbacks int
}

// NewCache creates an empty pre-aggregate cache over an engine.
func NewCache(e *Engine) *Cache {
	return &Cache{engine: e, mats: map[string]*Materialization{}, guards: map[string]error{}, epoch: e.Epoch()}
}

func key(dim, cat string, kind AggKind, arg string) string {
	return strings.Join([]string{dim, cat, string(kind), arg}, "\x00")
}

// Materialize computes and caches the aggregate at (dim, cat).
func (c *Cache) Materialize(dim, cat string, kind AggKind, arg string) (*Materialization, error) {
	return c.MaterializeContext(context.Background(), dim, cat, kind, arg)
}

// MaterializeContext is Materialize with cooperative cancellation.
func (c *Cache) MaterializeContext(ctx context.Context, dim, cat string, kind AggKind, arg string) (*Materialization, error) {
	if err := c.refresh(ctx); err != nil {
		return nil, err
	}
	e0, _ := c.engine.EpochFacts()
	rows, err := c.computeBaseContext(ctx, dim, cat, kind, arg)
	if err != nil {
		return nil, err
	}
	m := &Materialization{Dim: dim, Cat: cat, Kind: kind, Arg: arg, Rows: rows}
	c.mu.Lock()
	// Store only when no append raced the compute (the rows would cover
	// facts beyond the cache's epoch, and a later delta fold would count
	// them twice). The caller still gets the answer; the cache just skips
	// an entry it could not tag coherently.
	if post, _ := c.engine.EpochFacts(); post == e0 && c.epoch == e0 {
		c.mats[key(dim, cat, kind, arg)] = m
	}
	c.mu.Unlock()
	return m, nil
}

// Lookup returns the cached materialization, if any. It does not
// refresh: callers outside the AggregateContext/RollupFromContext entry
// points see the rows as of the cache's last refresh epoch.
func (c *Cache) Lookup(dim, cat string, kind AggKind, arg string) (*Materialization, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.mats[key(dim, cat, kind, arg)]
	return m, ok
}

// refresh brings every materialization and memoized guard verdict up to
// the engine's current epoch. For each materialization the delta gate
// runs ReuseGuard's partitioning check on just the appended range: when
// the delta keeps the category strict (no new many-to-many attachment),
// the per-value delta fold is merged into the rows in place — an
// upgrade; otherwise the materialization is invalidated, exactly the
// pre-delta behaviour. Guard verdicts are always dropped on an epoch
// move: an appended fact can flip the fact-level disjointness and
// coverage checks, so a memoized verdict must be re-proven against the
// new fact population.
func (c *Cache) refresh(ctx context.Context) error {
	if c.engine.Epoch() == c.loadEpoch() {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.engine.Epoch() == c.epoch {
		return nil // raced with another refresher
	}
	// Whatever happens below, the memoized verdicts are stale.
	c.guards = map[string]error{}
	lo, hi, cur, ok := c.engine.DeltaRange(c.epoch)
	if !ok {
		// The cache's epoch is not in the engine's journal (it predates the
		// journal window, or the engine was swapped): no sound delta exists.
		// Today's invalidation — drop everything.
		if n := len(c.mats); n > 0 {
			c.Fallbacks += n
			mDeltaPreaggFallbackWindow.Add(int64(n))
			c.mats = map[string]*Materialization{}
		}
		c.epoch = c.engine.Epoch()
		return nil
	}
	for k, m := range c.mats {
		if c.engine.MultiValuedRange(m.Dim, m.Cat, nil, lo, hi) {
			// The delta attached a fact to two values of the category: the
			// strict/partitioning premise behind reusing this materialization
			// (ReuseGuard's Σ|B_v| = |∪B_v| check) no longer holds, so the
			// gate refuses the merge and falls back to invalidation.
			delete(c.mats, k)
			c.Fallbacks++
			mDeltaPreaggFallbackNonStrict.Inc()
			continue
		}
		values, counts, args, err := c.engine.AggregateByRange(ctx, m.Dim, m.Cat, m.Arg, nil, lo, hi)
		if err != nil {
			// Cancellation mid-refresh: leave the epoch unmoved so the next
			// entry retries; already-merged materializations were tagged by
			// the same fold and stay coherent once the epoch does move.
			return err
		}
		mDeltaPreaggFolds.Inc()
		for j, v := range values {
			switch m.Kind {
			case KindSum:
				// Continue the fold value by value in ascending fact order —
				// the exact association a from-scratch sequential recompute
				// would use, so the merged float is bit-identical to it.
				acc := m.Rows[v]
				for _, x := range args[j] {
					acc += x
				}
				m.Rows[v] = acc
			default:
				m.Rows[v] += float64(counts[j])
			}
		}
		c.Upgrades++
		mDeltaPreaggUpgrades.Inc()
	}
	c.epoch = cur
	return nil
}

func (c *Cache) loadEpoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// AggregateContext answers (dim, cat, kind, arg) from the cache,
// materializing on a miss — the serving layer's entry point. The
// faultinject.PreAggLookup point fires before the lookup, so robustness
// tests can fail or panic this path deterministically.
func (c *Cache) AggregateContext(ctx context.Context, dim, cat string, kind AggKind, arg string) (map[string]float64, error) {
	if err := faultinject.Check(faultinject.PreAggLookup); err != nil {
		return nil, fmt.Errorf("storage: pre-agg lookup: %w", err)
	}
	if err := c.refresh(ctx); err != nil {
		return nil, err
	}
	if m, ok := c.Lookup(dim, cat, kind, arg); ok {
		c.mu.Lock()
		c.Hits++
		c.mu.Unlock()
		mPreaggHits.Inc()
		return m.Rows, nil
	}
	c.mu.Lock()
	c.Misses++
	c.mu.Unlock()
	mPreaggMisses.Inc()
	m, err := c.MaterializeContext(ctx, dim, cat, kind, arg)
	if err != nil {
		return nil, err
	}
	return m.Rows, nil
}

// ReuseGuard checks whether a materialization at fromCat may be combined
// into results at toCat: toCat must be strictly above fromCat in the
// dimension's category order, the value mapping fromCat → toCat must be
// strict (no value of fromCat under two values of toCat — combining would
// double-count), and every contributing value must roll up (covering — a
// gap would silently drop facts). Beyond the value-level checks, the fact
// sets behind fromCat must be pairwise disjoint and must cover every fact
// visible at toCat — see the inline comments for the Table 1 scenarios
// that make both fact-level checks necessary.
func (c *Cache) ReuseGuard(dim, fromCat, toCat string, kind AggKind) error {
	d := c.engine.mo.Dimension(dim)
	dt := d.Type()
	if !dt.LessEq(fromCat, toCat) || fromCat == toCat {
		return fmt.Errorf("storage: %q is not above %q in dimension %s", toCat, fromCat, dim)
	}
	ctx := c.engine.ctx
	if !d.IsStrictBetween(fromCat, toCat, ctx) {
		return fmt.Errorf("storage: mapping %s→%s is non-strict; combining would double-count", fromCat, toCat)
	}
	if !d.Covering(fromCat, toCat, ctx) {
		return fmt.Errorf("storage: mapping %s→%s has gaps; combining would drop facts", fromCat, toCat)
	}
	// Value-level strictness and covering do not see how facts attach to
	// the hierarchy. Two fact-level holes matter, and both occur in the
	// paper's Table 1:
	//
	//   - many-to-many relations: a fact under two values of fromCat
	//     (patient 2 lived in two counties) appears once per value in the
	//     materialization but once in a direct computation at toCat —
	//     combining would double-count it, for SUM as well as for COUNT.
	//     Disjointness is checked as Σ|B_v| = |∪B_v| over fromCat's
	//     closure bitmaps.
	//
	//   - mixed granularity: a fact related directly to a value above
	//     fromCat (diagnosis 9, a Family, attaches straight to both
	//     patients) never enters a materialization at fromCat — combining
	//     would silently drop it. Coverage is checked as
	//     ∪B_v(toCat) ⊆ ∪B_v(fromCat).
	fromUnion := NewBitmap(c.engine.NumFacts())
	total := 0
	for _, v := range d.CategoryAt(fromCat, ctx) {
		bm := c.engine.Characterizing(dim, v)
		total += bm.Count()
		fromUnion.Or(bm)
	}
	if shared := total - fromUnion.Count(); shared > 0 {
		return fmt.Errorf("storage: %d fact characterization(s) shared between values of %s (many-to-many relation); combining would double-count", shared, fromCat)
	}
	for _, v := range d.CategoryAt(toCat, ctx) {
		if missing := c.engine.Characterizing(dim, v).AndNot(fromUnion); !missing.IsEmpty() {
			return fmt.Errorf("storage: %d fact(s) characterized by %s of %s do not roll up from %s (mixed-granularity attachment); combining would drop them",
				missing.Count(), v, toCat, fromCat)
		}
	}
	return nil
}

// guardCached memoizes ReuseGuard per (dim, fromCat, toCat, kind): a
// verdict is stable between mutations, so a production system validates
// it once per epoch, not per query. The memo is dropped wholesale by
// refresh on every epoch move — an appended fact can flip the
// fact-level disjointness/coverage checks in either direction.
func (c *Cache) guardCached(dim, fromCat, toCat string, kind AggKind) error {
	k := strings.Join([]string{dim, fromCat, toCat, string(kind)}, "\x00")
	c.mu.Lock()
	if err, ok := c.guards[k]; ok {
		c.mu.Unlock()
		return err
	}
	c.mu.Unlock()
	// Compute outside the lock: ReuseGuard walks the engine, which takes
	// its own lock. Two racers may both compute; the verdict is
	// deterministic, so the duplicate write is harmless.
	err := c.ReuseGuard(dim, fromCat, toCat, kind)
	c.mu.Lock()
	c.guards[k] = err
	c.mu.Unlock()
	return err
}

// RollupFrom combines a cached materialization at fromCat into the
// aggregate at toCat, after checking the (memoized) reuse guard. On guard
// failure it recomputes from base data (and reports the fallback through
// Misses).
func (c *Cache) RollupFrom(dim, fromCat, toCat string, kind AggKind, arg string) (map[string]float64, error) {
	return c.RollupFromContext(context.Background(), dim, fromCat, toCat, kind, arg)
}

// RollupFromContext is RollupFrom with cooperative cancellation.
func (c *Cache) RollupFromContext(ctx context.Context, dim, fromCat, toCat string, kind AggKind, arg string) (map[string]float64, error) {
	if err := c.refresh(ctx); err != nil {
		return nil, err
	}
	m, ok := c.Lookup(dim, fromCat, kind, arg)
	if !ok {
		var err error
		m, err = c.MaterializeContext(ctx, dim, fromCat, kind, arg)
		if err != nil {
			return nil, err
		}
	}
	if err := c.guardCached(dim, fromCat, toCat, kind); err != nil {
		c.mu.Lock()
		c.Misses++
		c.mu.Unlock()
		mPreaggFallbacks.Inc()
		return c.computeBaseContext(ctx, dim, toCat, kind, arg)
	}
	c.mu.Lock()
	c.Hits++
	c.mu.Unlock()
	mPreaggHits.Inc()
	d := c.engine.mo.Dimension(dim)
	out := map[string]float64{}
	for v1, x := range m.Rows {
		for _, v2 := range d.AncestorsIn(toCat, v1, c.engine.Context()) {
			out[v2] += x
		}
	}
	return out, nil
}

// computeBase answers at toCat directly from the bitmap indexes.
func (c *Cache) computeBase(dim, toCat string, kind AggKind, arg string) (map[string]float64, error) {
	return c.computeBaseContext(context.Background(), dim, toCat, kind, arg)
}

func (c *Cache) computeBaseContext(ctx context.Context, dim, toCat string, kind AggKind, arg string) (map[string]float64, error) {
	// Route through the kernel path: build the characterization column when
	// the cost heuristic would select it, so repeated base recomputes (the
	// guard-fallback case) run the single-pass kernel instead of per-value
	// bitmap scans. EnsureColumn is a no-op below the threshold.
	if err := c.engine.EnsureColumn(ctx, dim, toCat); err != nil {
		return nil, err
	}
	switch kind {
	case KindCount:
		counts, err := c.engine.CountDistinctByContext(ctx, dim, toCat)
		if err != nil {
			return nil, err
		}
		out := make(map[string]float64, len(counts))
		for v, n := range counts {
			out[v] = float64(n)
		}
		return out, nil
	case KindSum:
		if arg == "" {
			return nil, fmt.Errorf("storage: SUM materialization needs an argument dimension")
		}
		return c.engine.SumByContext(ctx, dim, toCat, arg)
	default:
		return nil, fmt.Errorf("storage: unsupported aggregate kind %q", kind)
	}
}

// Materialized lists the cached materialization keys, sorted.
func (c *Cache) Materialized() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.mats))
	for k := range c.mats {
		out = append(out, strings.ReplaceAll(k, "\x00", "/"))
	}
	sort.Strings(out)
	return out
}
