package storage

import (
	"context"
	"fmt"

	"mddm/internal/exec"
	"mddm/internal/qos"
)

// This file holds the late-materialization read primitives the columnar
// query planner (internal/plan) folds over. They follow the same locking
// discipline as the aggregation kernels: materialize missing closures and
// argument columns first (write lock on the cold path only), then read
// under the read lock, so one call observes one consistent snapshot of
// the index even while AppendFact runs concurrently.

// ArgValues returns the memoized measure column of the argument
// dimension: dense fact index → the fact's admitted numeric values, in
// the sorted value order the algebra's argument extraction uses. The
// returned slices are shared with the engine and must be treated as
// read-only; indices beyond the returned length belong to facts appended
// after the call.
func (e *Engine) ArgValues(argDim string) [][]float64 {
	e.ensureArgValues(argDim)
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.argCols[argDim]
}

// SelectedFactIDs returns the fact identities marked in sel in ascending
// dense-index order, or every fact when sel is nil. One read-lock
// acquisition for the whole extraction.
func (e *Engine) SelectedFactIDs(sel *Bitmap) []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if sel == nil {
		return append([]string(nil), e.facts...)
	}
	out := make([]string, 0, sel.Count())
	sel.Iterate(func(i int) bool {
		if i < len(e.facts) {
			out = append(out, e.facts[i])
		}
		return true
	})
	return out
}

// MultiValued reports whether any selected fact (every fact when sel is
// nil) is characterized by two or more distinct values of the category —
// the selection-masked strict-path probe of the summarizability check.
// Like the algebra's StrictPath it charges no fact budget: it is a
// metadata probe, not an aggregation scan.
func (e *Engine) MultiValued(dim, cat string, sel *Bitmap) bool {
	d := e.mo.Dimension(dim)
	vals := d.CategoryAt(cat, e.ctx)
	_ = e.ensureClosures(nil, dim, vals) // nil guard: cannot fail
	e.mu.RLock()
	defer e.mu.RUnlock()
	di := e.dims[dim]
	if di == nil {
		return false
	}
	n := len(e.facts)
	seen := NewBitmap(n)
	dup := NewBitmap(n)
	scratch := NewBitmap(n)
	for _, v := range vals {
		bm := di.closure[v]
		if bm == nil {
			continue
		}
		scratch.AndInto(seen, bm)
		dup.Or(scratch)
		seen.Or(bm)
	}
	if sel != nil {
		dup.And(sel)
	}
	return !dup.IsEmpty()
}

// AggregateBy is the planner's grouped fold: for every value of the
// category (in CategoryAt order) it returns the value, the number of
// selected facts it characterizes, and — when argDim is non-empty — the
// facts' argument values concatenated in ascending dense-index order
// (the algebra's extraction order, so float folds stay bit-identical).
// Values characterizing no selected fact are omitted. The fact budget is
// charged exactly like countDistinctBy: one Check plus Facts(count) per
// category value, selection itself costing nothing. A context-carried
// parallelism degree above 1 evaluates value partitions in parallel with
// in-order compaction, so results and budget totals are identical at any
// degree.
func (e *Engine) AggregateBy(ctx context.Context, dim, cat, argDim string, sel *Bitmap) (values []string, counts []int, args [][]float64, err error) {
	g := qos.NewGuard(ctx)
	d := e.mo.Dimension(dim)
	vals := d.CategoryAt(cat, e.ctx)
	if err := e.ensureClosures(g, dim, vals); err != nil {
		return nil, nil, nil, err
	}
	if argDim != "" {
		e.ensureArgValues(argDim)
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	di := e.dims[dim]
	var av [][]float64
	if argDim != "" {
		av = e.argCols[argDim]
	}
	n := len(e.facts)
	kcounts := make([]int, len(vals))
	kargs := make([][]float64, len(vals))
	keep := make([]bool, len(vals))
	evalOne := func(g *qos.Guard, j int, scratch *Bitmap) error {
		if err := g.Check(); err != nil {
			return err
		}
		var members *Bitmap
		if di != nil {
			if bm := di.closure[vals[j]]; bm != nil {
				members = bm
				if sel != nil {
					members = scratch.AndInto(bm, sel)
				}
			}
		}
		c := 0
		if members != nil {
			c = members.Count()
		}
		if err := g.Facts(int64(c)); err != nil {
			return fmt.Errorf("storage: aggregate %s/%s: %w", dim, cat, err)
		}
		if c == 0 {
			return nil
		}
		keep[j] = true
		kcounts[j] = c
		if av != nil {
			list := make([]float64, 0, c)
			members.Iterate(func(i int) bool {
				if i < len(av) {
					list = append(list, av[i]...)
				}
				return true
			})
			kargs[j] = list
		}
		return nil
	}
	deg := exec.DegreeFrom(ctx)
	parts := exec.Partitions(len(vals), deg)
	if deg > 1 && len(parts) > 1 {
		err = exec.Run(ctx, nil, deg, len(parts), func(p int) error {
			wg := qos.NewGuard(ctx)
			scratch := NewBitmap(n)
			for j := parts[p].Lo; j < parts[p].Hi && j < len(vals); j++ {
				if err := evalOne(wg, j, scratch); err != nil {
					return err
				}
			}
			return nil
		})
	} else {
		scratch := NewBitmap(n)
		for j := range vals {
			if err = evalOne(g, j, scratch); err != nil {
				break
			}
		}
	}
	if err != nil {
		return nil, nil, nil, err
	}
	scanned := int64(0)
	for j, v := range vals {
		if !keep[j] {
			continue
		}
		scanned++
		values = append(values, v)
		counts = append(counts, kcounts[j])
		args = append(args, kargs[j])
	}
	mBitmapScans.Add(scanned)
	return values, counts, args, nil
}

// ValueLists returns, per dense fact index, the category values that
// characterize the fact (facts outside sel get nil when sel is non-nil).
// Values appear in CategoryAt order, which is sorted — the same order the
// algebra's per-fact ancestor lists use, so combo expansion over these
// lists reproduces the algebra's group keys. Budget: one Check per
// category value; the per-fact appends are materialization the caller
// charges when it folds the groups.
func (e *Engine) ValueLists(ctx context.Context, dim, cat string, sel *Bitmap) ([][]string, error) {
	g := qos.NewGuard(ctx)
	d := e.mo.Dimension(dim)
	vals := d.CategoryAt(cat, e.ctx)
	if err := e.ensureClosures(g, dim, vals); err != nil {
		return nil, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	di := e.dims[dim]
	out := make([][]string, len(e.facts))
	if di == nil {
		return out, nil
	}
	scanned := int64(0)
	for _, v := range vals {
		if err := g.Check(); err != nil {
			return nil, fmt.Errorf("storage: value-lists %s/%s: %w", dim, cat, err)
		}
		bm := di.closure[v]
		if bm == nil {
			continue
		}
		scanned++
		v := v
		bm.Iterate(func(i int) bool {
			if sel == nil || sel.Has(i) {
				out[i] = append(out[i], v)
			}
			return true
		})
	}
	mBitmapScans.Add(scanned)
	return out, nil
}
