package storage

import (
	"fmt"

	"mddm/internal/dimension"
)

// dimTopValue aliases the ⊤ value id.
const dimTopValue = dimension.TopValue

// This file implements incremental index maintenance: appending facts to a
// built engine without rebuilding it. New facts extend the dense index
// space; their direct pairs are folded into the affected direct bitmaps
// and propagated into the memoized closure bitmaps of every ancestor, so
// warm closures stay warm. Removals and dimension-hierarchy edits are out
// of scope — those invalidate closures wholesale and a rebuild is the
// honest answer.

// grow extends the bitmap universe to n bits.
func (b *Bitmap) grow(n int) {
	if n <= b.n {
		return
	}
	words := (n + 63) / 64
	if words > len(b.words) {
		nw := make([]uint64, words)
		copy(nw, b.words)
		b.words = nw
	}
	b.n = n
}

// AppendFact indexes one new fact of the underlying MO: the fact must
// already exist in the MO with its fact–dimension pairs recorded. Pairs
// not admitted by the engine's context are skipped, mirroring NewEngine.
func (e *Engine) AppendFact(factID string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.idx[factID]; ok {
		return fmt.Errorf("storage: fact %q already indexed", factID)
	}
	if !e.mo.Facts().Has(factID) {
		return fmt.Errorf("storage: fact %q not in the MO", factID)
	}
	i := len(e.facts)
	e.facts = append(e.facts, factID)
	e.idx[factID] = i
	n := len(e.facts)

	for _, name := range e.mo.Schema().DimensionNames() {
		di := e.dims[name]
		if di == nil {
			continue
		}
		d := e.mo.Dimension(name)
		r := e.mo.Relation(name)
		for _, v := range r.ValuesOf(factID) {
			a, _ := r.Annot(factID, v)
			if !e.ctx.Admits(a) {
				continue
			}
			bm, ok := di.direct[v]
			if !ok {
				bm = NewBitmap(n)
				di.direct[v] = bm
			} else {
				bm.grow(n)
			}
			bm.Set(i)
			// Propagate into the memoized closures of the value itself and
			// of its ancestors (walked once; only existing closures are
			// touched). A cold dimension — no closure memoized yet, the
			// normal state during segment replay at startup — skips the
			// ancestor walk entirely.
			if len(di.closure) == 0 {
				continue
			}
			if cbm, ok := di.closure[v]; ok {
				cbm.grow(n)
				cbm.Set(i)
			}
			for _, anc := range d.Ancestors(v, e.ctx) {
				if cbm, ok := di.closure[anc]; ok {
					cbm.grow(n)
					cbm.Set(i)
				}
			}
			if cbm, ok := di.closure[dimTopValue]; ok {
				cbm.grow(n)
				cbm.Set(i)
			}
		}
	}
	// Maintain the built characterization columns: append the new fact's
	// code (and overflow entries, for many-to-many facts). Appends never
	// mutate existing elements, so kernels running against a snapshot of
	// the first i facts are unaffected.
	for _, col := range e.cols {
		e.appendToColumn(col, factID, i)
	}
	// Maintain the memoized measure columns: append the new fact's admitted
	// numeric values in each cached argument dimension, in the same
	// relation order argValues uses, so an incrementally maintained column
	// is element-for-element identical to a fresh one.
	for argDim, vals := range e.argCols {
		d := e.mo.Dimension(argDim)
		r := e.mo.Relation(argDim)
		var xs []float64
		for _, v := range r.ValuesOf(factID) {
			a, _ := r.Annot(factID, v)
			if !e.ctx.Admits(a) {
				continue
			}
			if x, ok := d.Numeric(v, e.ctx); ok {
				xs = append(xs, x)
			}
		}
		e.argCols[argDim] = append(vals, xs)
	}
	// The append succeeded: move to a fresh mutation epoch so versioned
	// readers (the result cache) see every entry filled before this write
	// as stale. Failed appends above return without bumping — they did
	// not change what a query would observe.
	e.bumpEpoch()
	return nil
}
