package storage

import (
	"context"
	"testing"

	"mddm/internal/casestudy"
)

// TestRangeFoldEdges pins the range folds' boundary behavior: ranges are
// clamped rather than trusted (a caller holding a slightly-stale hi must
// not read past the universe, and a negative lo must not panic), an
// unknown dimension is an empty answer rather than a nil-map crash, and
// cancellation surfaces as an error on both the grouped and global
// paths.
func TestRangeFoldEdges(t *testing.T) {
	e, grow := growEngine(t, 30)
	grow(10)
	n := e.NumFacts()
	ctx := context.Background()

	// hi past the end clamps to the universe; lo < 0 clamps to 0.
	vals, counts, _, err := e.AggregateByRange(ctx, casestudy.DimDiagnosis, casestudy.CatGroup, "", nil, 0, n+100)
	if err != nil {
		t.Fatal(err)
	}
	full, fullCounts, _, err := e.AggregateByRange(ctx, casestudy.DimDiagnosis, casestudy.CatGroup, "", nil, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != len(full) {
		t.Fatalf("clamped fold diverged: %v vs %v", vals, full)
	}
	for i := range counts {
		if counts[i] != fullCounts[i] {
			t.Fatalf("clamped counts diverged: %v vs %v", counts, fullCounts)
		}
	}
	cnt, _, err := e.GlobalRange(ctx, "", nil, -5, n+100)
	if err != nil {
		t.Fatal(err)
	}
	if cnt != n {
		t.Fatalf("clamped global count = %d, want %d", cnt, n)
	}
	if e.MultiValuedRange(casestudy.DimDiagnosis, casestudy.CatGroup, nil, -5, n+100) !=
		e.MultiValuedRange(casestudy.DimDiagnosis, casestudy.CatGroup, nil, 0, n) {
		t.Fatal("clamped multi-valued probe diverged from the exact range")
	}

	// Empty range and unknown dimension: empty answers, no error.
	if v, c, a, err := e.AggregateByRange(ctx, casestudy.DimDiagnosis, casestudy.CatGroup, "", nil, n, n); err != nil || v != nil || c != nil || a != nil {
		t.Fatalf("empty range = %v %v %v %v", v, c, a, err)
	}
	if v, _, _, err := e.AggregateByRange(ctx, "Nope", "Nada", "", nil, 0, n); err != nil || v != nil {
		t.Fatalf("unknown dimension = %v %v", v, err)
	}
	if e.MultiValuedRange(casestudy.DimDiagnosis, casestudy.CatGroup, nil, n, n) {
		t.Fatal("empty range reported multi-valued")
	}

	// A selection restricts the probe exactly as it restricts the fold: an
	// empty selection can never see two values for one fact.
	if e.MultiValuedRange(casestudy.DimDiagnosis, casestudy.CatGroup, NewBitmap(n), 0, n) {
		t.Fatal("empty selection reported multi-valued")
	}

	// Cancellation is honored on both fold paths.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, _, err := e.AggregateByRange(canceled, casestudy.DimDiagnosis, casestudy.CatGroup, "", nil, 0, n); err == nil {
		t.Fatal("canceled grouped fold did not error")
	}
	if _, _, err := e.GlobalRange(canceled, "", nil, 0, n); err == nil {
		t.Fatal("canceled global fold did not error")
	}
}
