package storage

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"mddm/internal/casestudy"
	"mddm/internal/dimension"
	"mddm/internal/exec"
	"mddm/internal/qos"
)

// degrees exercises even splits, a prime degree, and oversubscription
// beyond the universe's partition count.
var degrees = []int{2, 3, 4, 8}

func randomBitmap(r *rand.Rand, n int, density float64) *Bitmap {
	bm := NewBitmap(n)
	for i := 0; i < n; i++ {
		if r.Float64() < density {
			bm.Set(i)
		}
	}
	return bm
}

func TestBitmapRangeOps(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 63, 64, 65, 200, 1000} {
		a := randomBitmap(r, n, 0.3)
		b := randomBitmap(r, n, 0.6)
		// Ranges deliberately cross word boundaries and the universe edge.
		ranges := [][2]int{{0, n}, {-5, n + 7}, {1, 63}, {63, 65}, {7, 130}, {n / 2, n}, {n, n}, {5, 5}}
		for _, lh := range ranges {
			lo, hi := lh[0], lh[1]
			wantCount, wantAnd := 0, 0
			var wantIdx []int
			for i := 0; i < n; i++ {
				if i < lo || i >= hi || !a.Has(i) {
					continue
				}
				wantCount++
				wantIdx = append(wantIdx, i)
				if b.Has(i) {
					wantAnd++
				}
			}
			if got := a.CountRange(lo, hi); got != wantCount {
				t.Errorf("n=%d CountRange(%d,%d) = %d, want %d", n, lo, hi, got, wantCount)
			}
			if got := a.AndCountRange(b, lo, hi); got != wantAnd {
				t.Errorf("n=%d AndCountRange(%d,%d) = %d, want %d", n, lo, hi, got, wantAnd)
			}
			var gotIdx []int
			a.IterateRange(lo, hi, func(i int) bool {
				gotIdx = append(gotIdx, i)
				return true
			})
			if fmt.Sprint(gotIdx) != fmt.Sprint(wantIdx) {
				t.Errorf("n=%d IterateRange(%d,%d) = %v, want %v", n, lo, hi, gotIdx, wantIdx)
			}
		}
		// Partition counts must tile the full popcount.
		total := 0
		for lo := 0; lo < n; lo += 64 {
			hi := lo + 64
			if hi > n {
				hi = n
			}
			total += a.CountRange(lo, hi)
		}
		if total != a.Count() {
			t.Errorf("n=%d tiled CountRange = %d, want %d", n, total, a.Count())
		}
	}
}

func TestBitmapAndInto(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	scratch := NewBitmap(0)
	for _, n := range []int{0, 64, 130, 500} {
		a := randomBitmap(r, n, 0.4)
		b := randomBitmap(r, n, 0.4)
		aw, bw := a.Count(), b.Count()
		want := a.Clone().And(b)
		got := scratch.AndInto(a, b)
		if got != scratch {
			t.Fatal("AndInto must return its receiver")
		}
		if got.Len() != want.Len() || got.Count() != want.Count() {
			t.Fatalf("n=%d AndInto count = %d, want %d", n, got.Count(), want.Count())
		}
		for i := 0; i < n; i++ {
			if got.Has(i) != want.Has(i) {
				t.Fatalf("n=%d AndInto bit %d = %v, want %v", n, i, got.Has(i), want.Has(i))
			}
		}
		if a.Count() != aw || b.Count() != bw {
			t.Fatal("AndInto mutated an operand")
		}
	}
	// A wide result after a narrow one must not keep stale high words.
	wide := NewBitmap(256)
	wide.Set(200)
	scratch.AndInto(wide, wide)
	scratch.AndInto(NewBitmap(64), NewBitmap(64))
	if scratch.Count() != 0 || scratch.Len() != 64 {
		t.Errorf("scratch reuse leaked: count=%d len=%d", scratch.Count(), scratch.Len())
	}
}

// genVariants returns the differential-test corpus: the fully featured
// generator output (non-strict hierarchy, churn, probabilistic pairs), a
// strict/certain variant, and a larger universe that forces many
// partitions.
func genVariants(t *testing.T) map[string]*Engine {
	t.Helper()
	out := map[string]*Engine{}
	full := casestudy.DefaultGen()
	full.Patients = 150
	strict := casestudy.DefaultGen()
	strict.Patients = 150
	strict.NonStrict = false
	strict.Churn = false
	strict.UncertainFrac = 0
	big := casestudy.DefaultGen()
	big.Patients = 700
	for name, cfg := range map[string]casestudy.GenConfig{"full": full, "strict": strict, "big": big} {
		m, err := casestudy.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = NewEngine(m, dimension.CurrentContext(ref))
	}
	return out
}

func TestParallelCountDistinctMatchesSequential(t *testing.T) {
	for name, e := range genVariants(t) {
		for _, dimCat := range [][2]string{
			{casestudy.DimDiagnosis, casestudy.CatGroup},
			{casestudy.DimDiagnosis, casestudy.CatFamily},
			{casestudy.DimResidence, casestudy.CatCounty},
			{casestudy.DimAge, casestudy.CatTenYear},
		} {
			want, err := e.CountDistinctByContext(context.Background(), dimCat[0], dimCat[1])
			if err != nil {
				t.Fatal(err)
			}
			for _, deg := range degrees {
				ctx := exec.WithParallelism(context.Background(), deg)
				got, err := e.CountDistinctByContext(ctx, dimCat[0], dimCat[1])
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Errorf("%s %s/%s deg=%d: %v, want %v", name, dimCat[0], dimCat[1], deg, got, want)
				}
			}
		}
	}
}

func TestParallelSumByMatchesSequential(t *testing.T) {
	for name, e := range genVariants(t) {
		for _, dimCat := range [][2]string{
			{casestudy.DimDiagnosis, casestudy.CatGroup},
			{casestudy.DimResidence, casestudy.CatRegion},
			{casestudy.DimAge, casestudy.CatTenYear},
		} {
			want, err := e.SumByContext(context.Background(), dimCat[0], dimCat[1], casestudy.DimAge)
			if err != nil {
				t.Fatal(err)
			}
			for _, deg := range degrees {
				ctx := exec.WithParallelism(context.Background(), deg)
				got, err := e.SumByContext(ctx, dimCat[0], dimCat[1], casestudy.DimAge)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s %s/%s deg=%d: %d sums, want %d", name, dimCat[0], dimCat[1], deg, len(got), len(want))
				}
				for v, w := range want {
					// Ages are integers, so the re-associated partition sums
					// must be bit-identical to the sequential fold.
					if got[v] != w {
						t.Errorf("%s %s/%s deg=%d %s: %v, want %v", name, dimCat[0], dimCat[1], deg, v, got[v], w)
					}
				}
			}
		}
	}
}

func TestParallelCrossCountMatchesSequential(t *testing.T) {
	for name, e := range genVariants(t) {
		want := e.CrossCount(casestudy.DimDiagnosis, casestudy.CatGroup, casestudy.DimResidence, casestudy.CatCounty)
		seq, err := e.CrossCountContext(context.Background(), casestudy.DimDiagnosis, casestudy.CatGroup, casestudy.DimResidence, casestudy.CatCounty)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(seq) != fmt.Sprint(want) {
			t.Errorf("%s: sequential context path diverged: %v, want %v", name, seq, want)
		}
		for _, deg := range degrees {
			ctx := exec.WithParallelism(context.Background(), deg)
			got, err := e.CrossCountContext(ctx, casestudy.DimDiagnosis, casestudy.CatGroup, casestudy.DimResidence, casestudy.CatCounty)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("%s deg=%d: %v, want %v", name, deg, got, want)
			}
		}
	}
}

// TestParallelBudgetParity pins that a query charges the same fact budget
// at every degree: the same total spend, and the same exhaustion verdict
// under a tight budget.
func TestParallelBudgetParity(t *testing.T) {
	m := casestudy.MustGenerate(casestudy.DefaultGen())
	e := NewEngine(m, dimension.CurrentContext(ref))
	spend := func(deg int) int64 {
		ctx := qos.WithFactBudget(context.Background(), 1<<40)
		if deg > 1 {
			ctx = exec.WithParallelism(ctx, deg)
		}
		if _, err := e.CountDistinctByContext(ctx, casestudy.DimDiagnosis, casestudy.CatGroup); err != nil {
			t.Fatal(err)
		}
		if _, err := e.SumByContext(ctx, casestudy.DimAge, casestudy.CatTenYear, casestudy.DimAge); err != nil {
			t.Fatal(err)
		}
		if _, err := e.CrossCountContext(ctx, casestudy.DimDiagnosis, casestudy.CatGroup, casestudy.DimResidence, casestudy.CatCounty); err != nil {
			t.Fatal(err)
		}
		return qos.BudgetFrom(ctx).Spent()
	}
	want := spend(1)
	if want == 0 {
		t.Fatal("sequential run spent no budget")
	}
	for _, deg := range degrees {
		if got := spend(deg); got != want {
			t.Errorf("deg=%d spent %d facts, want %d", deg, got, want)
		}
	}
	// Exhaustion must surface at any degree.
	for _, deg := range []int{1, 4} {
		ctx := qos.WithFactBudget(context.Background(), 3)
		ctx = exec.WithParallelism(ctx, deg)
		if _, err := e.CountDistinctByContext(ctx, casestudy.DimDiagnosis, casestudy.CatGroup); err == nil {
			t.Errorf("deg=%d: tight budget must exhaust", deg)
		}
	}
}

// TestParallelQueryCancellation pins prompt cooperative cancellation: a
// canceled context stops all partitions and returns qos.ErrCanceled.
func TestParallelQueryCancellation(t *testing.T) {
	m := casestudy.MustGenerate(casestudy.DefaultGen())
	e := NewEngine(m, dimension.CurrentContext(ref))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ctx = exec.WithParallelism(ctx, 4)
	if _, err := e.CountDistinctByContext(ctx, casestudy.DimDiagnosis, casestudy.CatGroup); err == nil {
		t.Error("canceled parallel count must fail")
	}
	if _, err := e.CrossCountContext(ctx, casestudy.DimDiagnosis, casestudy.CatGroup, casestudy.DimResidence, casestudy.CatCounty); err == nil {
		t.Error("canceled parallel cross-count must fail")
	}
}

// TestParallelQueriesRaceWithAppends is the stress mix the race detector
// watches: parallel readers at several degrees interleaved with
// incremental appends. The MO is fully prepared single-threaded (the MO
// itself is read-only once goroutines start); the engine is the only
// shared mutable state. Counts are checked to never go below the base
// population — the frozen views must be consistent snapshots.
func TestParallelQueriesRaceWithAppends(t *testing.T) {
	cfg := casestudy.DefaultGen()
	cfg.Patients = 80
	m := casestudy.MustGenerate(cfg)
	e := NewEngine(m, dimension.CurrentContext(ref))
	e.CountDistinctBy(casestudy.DimDiagnosis, casestudy.CatGroup) // warm closures

	diag := m.Dimension(casestudy.DimDiagnosis)
	lows := diag.Category(casestudy.CatLowLevel)
	const extra = 40
	ids := make([]string, extra)
	for i := range ids {
		ids[i] = fmt.Sprintf("pnew%d", i)
		if err := m.Relate(casestudy.DimDiagnosis, ids[i], lows[i%len(lows)]); err != nil {
			t.Fatal(err)
		}
		if err := m.Relate(casestudy.DimResidence, ids[i], "A0"); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, id := range ids {
			if err := e.AppendFact(id); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		deg := []int{2, 4, 8}[r]
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := exec.WithParallelism(context.Background(), deg)
			for i := 0; i < 30; i++ {
				counts, err := e.CountDistinctByContext(ctx, casestudy.DimDiagnosis, casestudy.CatGroup)
				if err != nil {
					t.Error(err)
					return
				}
				total := 0
				for _, n := range counts {
					total += n
				}
				if total < cfg.Patients {
					t.Errorf("lost facts: %d < %d", total, cfg.Patients)
					return
				}
				if _, err := e.CrossCountContext(ctx, casestudy.DimDiagnosis, casestudy.CatGroup, casestudy.DimResidence, casestudy.CatCounty); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// After the dust settles every degree agrees with sequential again.
	want, _ := e.CountDistinctByContext(context.Background(), casestudy.DimDiagnosis, casestudy.CatGroup)
	for _, deg := range degrees {
		got, err := e.CountDistinctByContext(exec.WithParallelism(context.Background(), deg), casestudy.DimDiagnosis, casestudy.CatGroup)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("post-append deg=%d: %v, want %v", deg, got, want)
		}
	}
}
