package storage

import (
	"fmt"
	"testing"

	"mddm/internal/agg"
	"mddm/internal/algebra"
	"mddm/internal/casestudy"
	"mddm/internal/core"
	"mddm/internal/dimension"
	"mddm/internal/temporal"
)

var ref = temporal.MustDate("01/01/1999")

func ctx() dimension.Context { return dimension.CurrentContext(ref) }

func patientEngine(t *testing.T) *Engine {
	t.Helper()
	m, err := casestudy.BuildPatientMO(casestudy.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(m, ctx())
}

func TestBitmapOps(t *testing.T) {
	a := NewBitmap(130)
	b := NewBitmap(130)
	for _, i := range []int{0, 63, 64, 127, 129} {
		a.Set(i)
	}
	for _, i := range []int{63, 64, 65} {
		b.Set(i)
	}
	if a.Count() != 5 || b.Count() != 3 {
		t.Fatalf("counts %d %d", a.Count(), b.Count())
	}
	if !a.Has(63) || a.Has(62) {
		t.Error("Has wrong")
	}
	and := a.Clone().And(b)
	if and.Count() != 2 || !and.Has(63) || !and.Has(64) {
		t.Errorf("and = %v", and.Indices())
	}
	or := a.Clone().Or(b)
	if or.Count() != 6 {
		t.Errorf("or = %v", or.Indices())
	}
	diff := a.Clone().AndNot(b)
	if diff.Count() != 3 || diff.Has(63) {
		t.Errorf("andnot = %v", diff.Indices())
	}
	if NewBitmap(10).IsEmpty() == false {
		t.Error("fresh bitmap must be empty")
	}
	// Out-of-range sets are ignored.
	a.Set(-1)
	a.Set(1000)
	if a.Count() != 5 {
		t.Error("out-of-range set must be ignored")
	}
	// Iterate stops when fn returns false.
	n := 0
	a.Iterate(func(i int) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("iterate visits = %d", n)
	}
}

func TestEngineCharacterizing(t *testing.T) {
	e := patientEngine(t)
	// f ⤳ 11 holds for both patients (Figure 3).
	bm := e.Characterizing(casestudy.DimDiagnosis, "11")
	if bm.Count() != 2 {
		t.Errorf("count(11) = %d, want 2", bm.Count())
	}
	// f ⤳ 12 only for patient 2.
	if got := e.Characterizing(casestudy.DimDiagnosis, "12").Count(); got != 1 {
		t.Errorf("count(12) = %d, want 1", got)
	}
	// ⊤ characterizes everything.
	if got := e.Characterizing(casestudy.DimDiagnosis, dimension.TopValue).Count(); got != 2 {
		t.Errorf("count(⊤) = %d", got)
	}
	// Unknown dimension yields an empty bitmap.
	if !e.Characterizing("Nope", "x").IsEmpty() {
		t.Error("unknown dimension must be empty")
	}
}

func TestEngineMatchesModelLayer(t *testing.T) {
	// The bitmap fast path and the model-layer scan must agree — on the
	// case study and on synthetic data.
	e := patientEngine(t)
	for _, cat := range []string{casestudy.CatLowLevel, casestudy.CatFamily, casestudy.CatGroup} {
		fast := e.CountDistinctBy(casestudy.DimDiagnosis, cat)
		slow := e.CountDistinctScan(casestudy.DimDiagnosis, cat)
		if len(fast) != len(slow) {
			t.Fatalf("%s: %v vs %v", cat, fast, slow)
		}
		for v, n := range fast {
			if slow[v] != n {
				t.Errorf("%s/%s: fast %d, scan %d", cat, v, n, slow[v])
			}
		}
	}

	cfg := casestudy.DefaultGen()
	cfg.Patients = 60
	m := casestudy.MustGenerate(cfg)
	ge := NewEngine(m, dimension.CurrentContext(temporal.MustDate("01/01/2026")))
	for _, cat := range []string{casestudy.CatFamily, casestudy.CatGroup, casestudy.CatRegion} {
		dim := casestudy.DimDiagnosis
		if cat == casestudy.CatRegion {
			dim = casestudy.DimResidence
		}
		fast := ge.CountDistinctBy(dim, cat)
		slow := ge.CountDistinctScan(dim, cat)
		if len(fast) != len(slow) {
			t.Fatalf("%s: size %d vs %d", cat, len(fast), len(slow))
		}
		for v, n := range fast {
			if slow[v] != n {
				t.Errorf("%s/%s: fast %d, scan %d", cat, v, n, slow[v])
			}
		}
	}
}

func TestFigure3ViaEngine(t *testing.T) {
	e := patientEngine(t)
	counts := e.CountDistinctBy(casestudy.DimDiagnosis, casestudy.CatGroup)
	if counts["11"] != 2 || counts["12"] != 1 {
		t.Errorf("counts = %v, want 11→2, 12→1", counts)
	}
}

func TestSumBy(t *testing.T) {
	e := patientEngine(t)
	sums := e.SumBy(casestudy.DimResidence, casestudy.CatRegion, casestudy.DimAge)
	// Ages 29 + 48 = 77 in region R1.
	if sums["R1"] != 77 {
		t.Errorf("sum = %v", sums)
	}
}

func TestPreAggReuseStrictHierarchy(t *testing.T) {
	// Residence is strict and covering: county counts combine into region
	// counts — but COUNT of *distinct patients* combines only if no
	// patient lives in two counties. Patient 2 has lived in two areas of
	// different counties (churn), so the guard must reject the reuse and
	// fall back to base.
	e := patientEngine(t)
	c := NewCache(e)
	if _, err := c.Materialize(casestudy.DimResidence, casestudy.CatCounty, KindCount, ""); err != nil {
		t.Fatal(err)
	}
	rows, err := c.RollupFrom(casestudy.DimResidence, casestudy.CatCounty, casestudy.CatRegion, KindCount, "")
	if err != nil {
		t.Fatal(err)
	}
	// Distinct patients in R1 is 2, not 3 (patient 2 lived in both
	// counties but is one patient).
	if rows["R1"] != 2 {
		t.Errorf("region rollup = %v, want R1→2 (distinct)", rows)
	}
	if c.Misses != 1 || c.Hits != 0 {
		t.Errorf("expected base fallback, hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestPreAggReuseOnSyntheticStrict(t *testing.T) {
	// Without churn and without the non-strict hierarchy, county counts
	// combine into region counts through the cache.
	cfg := casestudy.DefaultGen()
	cfg.NonStrict = false
	cfg.Churn = false
	cfg.Patients = 50
	m := casestudy.MustGenerate(cfg)
	e := NewEngine(m, dimension.CurrentContext(ref))
	c := NewCache(e)
	rows, err := c.RollupFrom(casestudy.DimResidence, casestudy.CatCounty, casestudy.CatRegion, KindCount, "")
	if err != nil {
		t.Fatal(err)
	}
	if c.Hits != 1 || c.Misses != 0 {
		t.Fatalf("expected cache hit, hits=%d misses=%d", c.Hits, c.Misses)
	}
	base, err := c.RollupFrom(casestudy.DimResidence, "", casestudy.CatRegion, KindCount, "")
	if err == nil {
		_ = base
	}
	// Cross-check against direct computation.
	direct := e.CountDistinctBy(casestudy.DimResidence, casestudy.CatRegion)
	for v, n := range direct {
		if rows[v] != float64(n) {
			t.Errorf("region %s: cache %v, direct %d", v, rows[v], n)
		}
	}
}

func TestPreAggGuardRejectsNonStrict(t *testing.T) {
	// The non-strict diagnosis hierarchy must never combine family counts
	// into group counts.
	cfg := casestudy.DefaultGen()
	cfg.Patients = 50
	m := casestudy.MustGenerate(cfg)
	e := NewEngine(m, dimension.CurrentContext(ref))
	c := NewCache(e)
	if err := c.ReuseGuard(casestudy.DimDiagnosis, casestudy.CatFamily, casestudy.CatGroup, KindCount); err == nil {
		t.Fatal("non-strict mapping must fail the reuse guard")
	}
	rows, err := c.RollupFrom(casestudy.DimDiagnosis, casestudy.CatFamily, casestudy.CatGroup, KindCount, "")
	if err != nil {
		t.Fatal(err)
	}
	if c.Misses != 1 {
		t.Errorf("expected fallback, misses=%d", c.Misses)
	}
	// The fallback result is the correct distinct count.
	direct := e.CountDistinctBy(casestudy.DimDiagnosis, casestudy.CatGroup)
	for v, n := range direct {
		if rows[v] != float64(n) {
			t.Errorf("group %s: cache %v, direct %d", v, rows[v], n)
		}
	}
}

func TestPreAggSumReuse(t *testing.T) {
	cfg := casestudy.DefaultGen()
	cfg.NonStrict = false
	cfg.Churn = false
	cfg.Patients = 40
	m := casestudy.MustGenerate(cfg)
	e := NewEngine(m, dimension.CurrentContext(ref))
	c := NewCache(e)
	rows, err := c.RollupFrom(casestudy.DimResidence, casestudy.CatCounty, casestudy.CatRegion, KindSum, casestudy.DimAge)
	if err != nil {
		t.Fatal(err)
	}
	direct := e.SumBy(casestudy.DimResidence, casestudy.CatRegion, casestudy.DimAge)
	for v, x := range direct {
		if rows[v] != x {
			t.Errorf("region %s: cache %v, direct %v", v, rows[v], x)
		}
	}
	if c.Hits != 1 {
		t.Errorf("expected hit, got hits=%d misses=%d", c.Hits, c.Misses)
	}
	// SUM materialization without an argument dimension is rejected.
	if _, err := c.Materialize(casestudy.DimResidence, casestudy.CatCounty, KindSum, ""); err == nil {
		t.Error("SUM without argument must fail")
	}
	if _, err := c.Materialize(casestudy.DimResidence, casestudy.CatCounty, AggKind("MEDIAN"), ""); err == nil {
		t.Error("unsupported kind must fail")
	}
	if got := c.Materialized(); len(got) == 0 {
		t.Error("materializations must be listed")
	}
}

func TestEngineAtInstant(t *testing.T) {
	// At a 1975 instant only patient 2 has diagnoses.
	m, err := casestudy.BuildPatientMO(casestudy.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(m, ctx().AtValid(temporal.MustDate("15/06/75")))
	counts := e.CountDistinctBy(casestudy.DimDiagnosis, casestudy.CatFamily)
	if counts["7"] != 1 || counts["8"] != 1 {
		t.Errorf("1975 family counts = %v", counts)
	}
	if len(counts) != 2 {
		t.Errorf("1975 families = %v", counts)
	}
}

func TestEngineString(t *testing.T) {
	e := patientEngine(t)
	if e.String() == "" || e.NumFacts() != 2 || e.MO() == nil {
		t.Error("accessors wrong")
	}
	if e.FactID(0) != "1" {
		t.Errorf("FactID(0) = %q", e.FactID(0))
	}
	if e.Context().Ref != ref {
		t.Error("context wrong")
	}
	vals := e.Values(casestudy.DimDiagnosis, casestudy.CatGroup)
	if len(vals) != 2 {
		t.Errorf("values = %v", vals)
	}
}

func TestEngineOnAggregateResult(t *testing.T) {
	// The engine also indexes set-valued facts (closure of the model).
	m, err := casestudy.BuildPatientMO(casestudy.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_ = m
	s := core.MustSchema("F", casestudy.DiagnosisType())
	mo := core.NewMO(s)
	if err := mo.Dimension(casestudy.DimDiagnosis).AddValue(casestudy.CatGroup, "G"); err != nil {
		t.Fatal(err)
	}
	if err := mo.Relate(casestudy.DimDiagnosis, "{1,2}", "G"); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(mo, ctx())
	if e.Characterizing(casestudy.DimDiagnosis, "G").Count() != 1 {
		t.Error("set-valued fact must be indexed")
	}
}

func TestCrossCount(t *testing.T) {
	// Case study: diagnosis group × region.
	e := patientEngine(t)
	cells := e.CrossCount(casestudy.DimDiagnosis, casestudy.CatGroup, casestudy.DimResidence, casestudy.CatRegion)
	// Both patients are in group 11 and region R1; patient 2 also in 12.
	want := map[string]int{"11/R1": 2, "12/R1": 1}
	if len(cells) != len(want) {
		t.Fatalf("cells = %v", cells)
	}
	for _, c := range cells {
		if want[c.V1+"/"+c.V2] != c.Count {
			t.Errorf("cell %s/%s = %d, want %d", c.V1, c.V2, c.Count, want[c.V1+"/"+c.V2])
		}
	}
	// The scan path agrees on synthetic data too.
	cfg := casestudy.DefaultGen()
	cfg.Patients = 50
	m := casestudy.MustGenerate(cfg)
	ge := NewEngine(m, dimension.CurrentContext(temporal.MustDate("01/01/2026")))
	fast := ge.CrossCount(casestudy.DimDiagnosis, casestudy.CatGroup, casestudy.DimResidence, casestudy.CatRegion)
	slow := ge.CrossCountScan(casestudy.DimDiagnosis, casestudy.CatGroup, casestudy.DimResidence, casestudy.CatRegion)
	if len(fast) != len(slow) {
		t.Fatalf("sizes differ: %d vs %d", len(fast), len(slow))
	}
	for i := range fast {
		if fast[i] != slow[i] {
			t.Errorf("cell %d: fast %+v, scan %+v", i, fast[i], slow[i])
		}
	}
	// Unknown dimensions yield nil.
	if e.CrossCount("Nope", "X", casestudy.DimResidence, casestudy.CatRegion) != nil {
		t.Error("unknown dimension must yield nil")
	}
	if e.CrossCountScan("Nope", "X", casestudy.DimResidence, casestudy.CatRegion) != nil {
		t.Error("unknown dimension must yield nil (scan)")
	}
}

func TestEngineParallelReads(t *testing.T) {
	// The engine is a read snapshot; concurrent queries after a warm-up
	// (which memoizes closures single-threaded) must be safe. The warm-up
	// requirement is part of the documented contract: memoization writes
	// closure entries, so first-touch per value must not race.
	cfg := casestudy.DefaultGen()
	cfg.Patients = 200
	m := casestudy.MustGenerate(cfg)
	e := NewEngine(m, dimension.CurrentContext(ref))
	// Warm every closure bitmap.
	for _, dim := range []string{casestudy.DimDiagnosis, casestudy.DimResidence} {
		for _, v := range m.Dimension(dim).Values() {
			e.Characterizing(dim, v)
		}
	}
	want := e.CountDistinctBy(casestudy.DimDiagnosis, casestudy.CatGroup)
	done := make(chan map[string]int, 8)
	for i := 0; i < 8; i++ {
		go func() {
			done <- e.CountDistinctBy(casestudy.DimDiagnosis, casestudy.CatGroup)
		}()
	}
	for i := 0; i < 8; i++ {
		got := <-done
		for v, n := range want {
			if got[v] != n {
				t.Errorf("parallel read diverged at %s: %d vs %d", v, got[v], n)
			}
		}
	}
}

func TestAlgebraEngineAgreement(t *testing.T) {
	// The algebra's aggregate formation and the engine's bitmap counting
	// are independent implementations of the same semantics; they must
	// agree on random data, non-strict hierarchies included.
	for seed := int64(0); seed < 6; seed++ {
		cfg := casestudy.DefaultGen()
		cfg.Seed = seed
		cfg.Patients = 40
		cfg.Churn = false
		m := casestudy.MustGenerate(cfg)
		c := dimension.CurrentContext(ref)
		e := NewEngine(m, c)

		rows, _, err := algebra.SQLAggregate(m, algebra.AggSpec{
			ResultDim: "N",
			Func:      agg.MustLookup("SETCOUNT"),
			GroupBy:   map[string]string{casestudy.DimDiagnosis: casestudy.CatGroup},
		}, c)
		if err != nil {
			t.Fatal(err)
		}
		viaAlgebra := map[string]string{}
		for _, r := range rows {
			viaAlgebra[r.Group[0]] = r.Value
		}
		viaEngine := e.CountDistinctBy(casestudy.DimDiagnosis, casestudy.CatGroup)
		if len(viaAlgebra) != len(viaEngine) {
			t.Fatalf("seed %d: %d vs %d groups", seed, len(viaAlgebra), len(viaEngine))
		}
		for v, n := range viaEngine {
			if viaAlgebra[v] != fmt.Sprintf("%d", n) {
				t.Errorf("seed %d group %s: algebra %s, engine %d", seed, v, viaAlgebra[v], n)
			}
		}
	}
}
