package storage

import (
	"context"
	"errors"

	"mddm/internal/exec"
	"mddm/internal/obs"
	"mddm/internal/qos"
)

// This file implements the fused shared-scan kernel behind the batch
// scheduler (internal/batch): one pass that fills the per-group partials
// of several concurrent queries at once. Members split into three classes
// with different cost shapes:
//
//   - Count-only members (no argument dimension) are answered from the
//     closure bitmaps with word-parallel population counts — the exact
//     primitives the solo kernels use (AggregateBy counts |closure ∧ sel|
//     per value). The column build guarantees codes and closures encode
//     the same characterization, so the bitmap counts equal what a decode
//     of the codes array would tally, at a fraction of the work: popcount
//     over n/64 words per value instead of a branch per fact per member.
//
//   - Accumulator members (an argument dimension, ListArgs false) fold
//     their argument values into constant-size per-value FoldAccs with
//     the solo kernel's own iteration: per dictionary value, closure ∧
//     selection, then Bitmap.Iterate in ascending dense-index order. The
//     running sum replays the exact float addition sequence AggregateBy's
//     argument lists would be folded in, so SUM and AVG finalize
//     bit-identically — without materializing a full-width argument list
//     per member per scan, which is what dominated the batched path's
//     profile with allocator and GC work.
//
//   - List members (ListArgs true: delta-capture consumers and aggregates
//     outside the registered accumulator set) still get per-value
//     argument lists in ascending dense-index order, filled by a per-fact
//     pass over the codes array that decodes each fact once and fans it
//     out to the list members only.
//
// Bit-identity with solo execution follows from the shared orders: both
// the accumulator fold and the per-fact pass visit facts in ascending
// dense-index order, so each member's per-value fold or argument list
// matches exactly what Bitmap.Iterate (bitmap kernels) and
// sumColumnRange (column kernels) produce; parallel partitions of the
// list pass merge in ascending partition order, concatenating argument
// sublists so even the float addition order downstream is unchanged.
// Counts and bitmaps are snapshotted under one reader lock, so every
// member of a batch sees one consistent fact universe.
//
// The scan itself charges no fact budget: like closure memoization and
// column builds it is infrastructure work. Every member replays the solo
// budget sequence against its own guard afterwards, so a batched query
// spends exactly what its solo execution would have.

// mSharedScans counts fused shared-scan kernel passes (one per batch).
var mSharedScans = obs.NewCounter("mddm_storage_shared_scans_total",
	"Fused shared-scan kernel passes (one per query batch).")

// ErrSharedScanUnavailable reports that the fused kernel cannot answer
// bit-identically right now — the column is missing or its dictionary is
// stale against the dimension (a value was added after the build). The
// caller runs each member solo instead; this is a bypass, not a failure.
var ErrSharedScanUnavailable = errors.New("storage: shared scan unavailable")

// SharedScanMember is one query's slice of a fused scan.
type SharedScanMember struct {
	// ArgDim is the member's argument dimension; "" extracts no arguments.
	ArgDim string
	// Sel is the member's WHERE selection; nil admits every fact.
	Sel *Bitmap
	// ListArgs materializes per-value argument lists for this member
	// instead of FoldAccs — required by consumers that need the values
	// themselves (delta-capture partials, aggregates outside the
	// accumulator-foldable set). Ignored when ArgDim is empty.
	ListArgs bool
}

// FoldAcc is the constant-size argument fold the shared scan keeps per
// (member, dictionary value): every argument value is folded in the same
// ascending dense-index order the solo kernels' argument lists are built
// in, so Sum replays agg's Eval addition sequence bit-for-bit and
// Min/Max replay its exact comparison ladder (first value seeds, later
// values compare — NaN semantics included).
type FoldAcc struct {
	// N counts argument values folded (len(args) in list terms).
	N int64
	// Sum is the running sum in ascending fold order.
	Sum float64
	// Min and Max are the running extrema; meaningful only when Seen.
	Min, Max float64
	// Seen reports at least one value was folded.
	Seen bool
}

// Add folds one argument value, replaying Eval's arithmetic: the first
// value seeds the extrema (m := vals[0]), later values compare with the
// same strict < / > Eval uses, and the sum accumulates left to right.
func (a *FoldAcc) Add(x float64) {
	a.N++
	a.Sum += x
	if !a.Seen {
		a.Seen, a.Min, a.Max = true, x, x
		return
	}
	if x < a.Min {
		a.Min = x
	}
	if x > a.Max {
		a.Max = x
	}
}

// SharedAggregateBy runs one fused pass for every member at once over the
// characterization of (dim, cat). It returns the value dictionary
// (CategoryAt order, shared — treat as read-only) and, per member,
// full-width per-value fact counts plus either argument lists (ListArgs
// members, indexed by the dictionary) or FoldAccs (accumulator members).
// deg above 1 splits the fact range of the list pass into exec partitions
// merged in ascending order; count and accumulator members are evaluated
// per dictionary value either way, so their outputs are deg-independent
// by construction. The column is built on first use; a column whose
// dictionary went stale (the dimension gained values since the build)
// yields ErrSharedScanUnavailable so members fall back to solo kernels,
// which read the live dictionary.
func (e *Engine) SharedAggregateBy(ctx context.Context, dim, cat string, members []SharedScanMember, deg int) (values []string, counts [][]int64, args [][][]float64, folds [][]FoldAcc, err error) {
	if err := e.BuildColumn(ctx, dim, cat); err != nil {
		return nil, nil, nil, nil, err
	}
	d := e.mo.Dimension(dim)
	if d == nil {
		return nil, nil, nil, nil, ErrSharedScanUnavailable
	}
	catVals := d.CategoryAt(cat, e.ctx)
	g := qos.NewGuard(ctx)
	if err := e.ensureClosures(g, dim, catVals); err != nil {
		return nil, nil, nil, nil, err
	}
	for _, m := range members {
		if m.ArgDim != "" {
			e.ensureArgValues(m.ArgDim)
		}
	}

	// One consistent snapshot: codes, argument columns, and closure bitmap
	// clones all under the same reader lock, so count members (bitmaps) and
	// argument members (codes) tally the same fact universe.
	e.mu.RLock()
	col := e.cols[colKey(dim, cat)]
	if col == nil {
		e.mu.RUnlock()
		return nil, nil, nil, nil, ErrSharedScanUnavailable
	}
	if len(col.vals) != len(catVals) {
		// appendToColumn only admits dictionary values, so a column whose
		// category grew since the build under-codes the newer facts; the
		// solo kernels would see the live value set.
		e.mu.RUnlock()
		return nil, nil, nil, nil, ErrSharedScanUnavailable
	}
	codes, over := col.codes, col.over
	argVals := make([][][]float64, len(members))
	var listMI, accMI []int // argument members by class
	for mi, m := range members {
		if m.ArgDim != "" {
			argVals[mi] = e.argCols[m.ArgDim]
			if m.ListArgs {
				listMI = append(listMI, mi)
			} else {
				accMI = append(accMI, mi)
			}
		}
	}
	di := e.dims[dim]
	bms := make([]*Bitmap, len(col.vals))
	for j, v := range col.vals {
		bm := NewBitmap(len(e.facts))
		if di != nil {
			if c := di.closure[v]; c != nil {
				bm = c.Clone()
			}
		}
		bms[j] = bm
	}
	e.mu.RUnlock()

	n := len(codes)
	nv := len(col.vals)
	counts = make([][]int64, len(members))
	args = make([][][]float64, len(members))
	folds = make([][]FoldAcc, len(members))
	for mi := range members {
		counts[mi] = make([]int64, nv)
	}

	// Count-only members: word-parallel popcounts per dictionary value,
	// bounded to the codes snapshot's universe.
	for mi, m := range members {
		if m.ArgDim != "" {
			continue
		}
		if err := g.Check(); err != nil {
			return nil, nil, nil, nil, err
		}
		for j, bm := range bms {
			if m.Sel != nil {
				counts[mi][j] = int64(bm.AndCountRange(m.Sel, 0, n))
			} else {
				counts[mi][j] = int64(bm.CountRange(0, n))
			}
		}
	}

	// Accumulator members: the solo kernel's own per-value iteration —
	// closure ∧ selection, then an ascending Iterate folding the argument
	// column into the constant-size accumulator. No per-member argument
	// list, no per-fact decode; the fold order is AggregateBy's exactly.
	if len(accMI) > 0 {
		scratch := NewBitmap(n)
		for _, mi := range accMI {
			m := members[mi]
			folds[mi] = make([]FoldAcc, nv)
			av := argVals[mi]
			for j, bm := range bms {
				if err := g.Check(); err != nil {
					return nil, nil, nil, nil, err
				}
				mem := bm
				if m.Sel != nil {
					mem = scratch.AndInto(bm, m.Sel)
				}
				c := mem.CountRange(0, n)
				counts[mi][j] = int64(c)
				if c == 0 {
					continue
				}
				acc := &folds[mi][j]
				mem.IterateRange(0, n, func(i int) bool {
					if i < len(av) {
						for _, x := range av[i] {
							acc.Add(x)
						}
					}
					return true
				})
			}
		}
	}
	if len(listMI) == 0 {
		mSharedScans.Inc()
		return col.vals, counts, args, folds, nil
	}

	// List members: the per-fact pass, restricted to just these members.
	// Filtered views alias the member slots so sharedScanRange writes
	// straight into the right outputs.
	sMembers := make([]SharedScanMember, len(listMI))
	sArgVals := make([][][]float64, len(listMI))
	for k, mi := range listMI {
		sMembers[k] = members[mi]
		sArgVals[k] = argVals[mi]
		args[mi] = make([][]float64, nv)
	}
	// Pre-size every argument list from the bitmap counts so the scan
	// appends without regrowing — append-grown lists thrash the allocator.
	// The count is exact for single-valued argument dimensions and a lower
	// bound otherwise (append still grows past it correctly).
	argCap := func(sel *Bitmap, bm *Bitmap, lo, hi int) int {
		if sel != nil {
			return bm.AndCountRange(sel, lo, hi)
		}
		return bm.CountRange(lo, hi)
	}
	if deg > 1 {
		parts := exec.Partitions(n, deg)
		pCounts := make([][][]int64, len(parts))
		pArgs := make([][][][]float64, len(parts))
		if err := exec.Run(ctx, nil, deg, len(parts), func(p int) error {
			pc := make([][]int64, len(listMI))
			pa := make([][][]float64, len(listMI))
			for k := range listMI {
				pc[k] = make([]int64, nv)
				pa[k] = make([][]float64, nv)
				for j, bm := range bms {
					if c := argCap(sMembers[k].Sel, bm, parts[p].Lo, parts[p].Hi); c > 0 {
						pa[k][j] = make([]float64, 0, c)
					}
				}
			}
			sharedScanRange(codes, over, sMembers, sArgVals, parts[p].Lo, parts[p].Hi, pc, pa)
			pCounts[p], pArgs[p] = pc, pa
			return nil
		}); err != nil {
			return nil, nil, nil, nil, err
		}
		for k, mi := range listMI {
			for j, bm := range bms {
				if c := argCap(sMembers[k].Sel, bm, 0, n); c > 0 {
					args[mi][j] = make([]float64, 0, c)
				}
			}
		}
		for p := range parts {
			for k, mi := range listMI {
				for j := 0; j < nv; j++ {
					counts[mi][j] += pCounts[p][k][j]
					if len(pArgs[p][k][j]) > 0 {
						args[mi][j] = append(args[mi][j], pArgs[p][k][j]...)
					}
				}
			}
		}
	} else {
		sCounts := make([][]int64, len(listMI))
		sArgs := make([][][]float64, len(listMI))
		for k, mi := range listMI {
			sCounts[k] = counts[mi]
			sArgs[k] = args[mi]
			for j, bm := range bms {
				if c := argCap(sMembers[k].Sel, bm, 0, n); c > 0 {
					args[mi][j] = make([]float64, 0, c)
				}
			}
		}
		for lo := 0; lo < n; lo += checkStride {
			if err := g.Check(); err != nil {
				return nil, nil, nil, nil, err
			}
			hi := lo + checkStride
			if hi > n {
				hi = n
			}
			sharedScanRange(codes, over, sMembers, sArgVals, lo, hi, sCounts, sArgs)
		}
	}
	mSharedScans.Inc()
	return col.vals, counts, args, folds, nil
}

// sharedScanRange folds codes[lo:hi) into every list member's
// accumulators: one vid decode per fact, then per member a selection test
// and per-vid count/argument appends. Facts run in ascending index order
// so each member's per-value argument list lands in Bitmap.Iterate order.
func sharedScanRange(codes []uint32, over []overPair, members []SharedScanMember,
	argVals [][][]float64, lo, hi int, counts [][]int64, args [][][]float64) {
	oc := overStart(over, lo)
	var buf [8]uint32
	vids := buf[:0]
	for i := lo; i < hi; i++ {
		vids = colVids(codes, over, i, &oc, vids)
		if len(vids) == 0 {
			continue
		}
		for mi := range members {
			if members[mi].Sel != nil && !members[mi].Sel.Has(i) {
				continue
			}
			for _, vid := range vids {
				counts[mi][vid]++
				if av := argVals[mi]; av != nil && i < len(av) {
					for _, x := range av[i] {
						args[mi][vid] = append(args[mi][vid], x)
					}
				}
			}
		}
	}
}
