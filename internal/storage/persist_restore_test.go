package storage

import (
	"context"
	"reflect"
	"testing"

	"mddm/internal/casestudy"
	"mddm/internal/core"
)

func patientMO(t *testing.T) *core.MO {
	t.Helper()
	m, err := casestudy.BuildPatientMO(casestudy.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestRestoreEngineEquivalence pins the restore contract: an engine
// rebuilt from an export of a built engine's fact order and direct
// bitmaps answers every aggregate identically.
func TestRestoreEngineEquivalence(t *testing.T) {
	m := patientMO(t)
	built, err := BuildEngine(context.Background(), m, ctx())
	if err != nil {
		t.Fatal(err)
	}
	facts := built.ExportFacts()
	perDim := map[string]map[string]*Bitmap{}
	for _, name := range m.Schema().DimensionNames() {
		perDim[name] = map[string]*Bitmap{}
		r := m.Relation(name)
		if r == nil {
			continue
		}
		for _, p := range r.Pairs() {
			if !ctx().Admits(p.Annot) {
				continue
			}
			bm := perDim[name][p.ValueID]
			if bm == nil {
				bm = NewBitmap(len(facts))
				perDim[name][p.ValueID] = bm
			}
			for i, f := range facts {
				if f == p.FactID {
					bm.Set(i)
				}
			}
		}
	}
	restored, err := RestoreEngine(m, ctx(), facts, perDim)
	if err != nil {
		t.Fatal(err)
	}
	if restored.NumFacts() != built.NumFacts() {
		t.Fatalf("facts %d vs %d", restored.NumFacts(), built.NumFacts())
	}
	for _, dc := range [][2]string{
		{casestudy.DimDiagnosis, casestudy.CatGroup},
		{casestudy.DimResidence, casestudy.CatCounty},
		{casestudy.DimAge, casestudy.CatAge},
	} {
		g, err := restored.CountDistinctByContext(context.Background(), dc[0], dc[1])
		if err != nil {
			t.Fatal(err)
		}
		w, err := built.CountDistinctByContext(context.Background(), dc[0], dc[1])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(g, w) {
			t.Errorf("%s/%s: restored %v, built %v", dc[0], dc[1], g, w)
		}
	}
}

// TestRestoreEngineRejects pins every validation error: wrong count,
// duplicate fact, unknown fact, unknown dimension.
func TestRestoreEngineRejects(t *testing.T) {
	m := patientMO(t)
	built, err := BuildEngine(context.Background(), m, ctx())
	if err != nil {
		t.Fatal(err)
	}
	facts := built.ExportFacts()

	if _, err := RestoreEngine(m, ctx(), facts[:len(facts)-1], nil); err == nil {
		t.Error("short fact list accepted")
	}
	dup := append([]string(nil), facts...)
	dup[1] = dup[0]
	if _, err := RestoreEngine(m, ctx(), dup, nil); err == nil {
		t.Error("duplicate fact accepted")
	}
	alien := append([]string(nil), facts...)
	alien[0] = "no-such-fact"
	if _, err := RestoreEngine(m, ctx(), alien, nil); err == nil {
		t.Error("fact outside the MO accepted")
	}
	if _, err := RestoreEngine(m, ctx(), facts,
		map[string]map[string]*Bitmap{"NoSuchDim": {}}); err == nil {
		t.Error("bitmaps for unknown dimension accepted")
	}

	// The happy path with nil bitmaps still builds: every schema dimension
	// gets an empty direct index.
	e, err := RestoreEngine(m, ctx(), facts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.NumFacts() != len(facts) {
		t.Fatal("nil-bitmap restore lost facts")
	}
}
