package storage

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"mddm/internal/casestudy"
	"mddm/internal/dimension"
)

// growEngine builds a synthetic engine and returns it with its MO and a
// helper that relates-and-appends n new facts (each with a Diagnosis and
// an Age, so argument folds have values to extend).
func growEngine(t *testing.T, patients int) (*Engine, func(n int)) {
	t.Helper()
	cfg := casestudy.DefaultGen()
	cfg.Patients = patients
	m := casestudy.MustGenerate(cfg)
	e := NewEngine(m, dimension.CurrentContext(ref))
	lows := m.Dimension(casestudy.DimDiagnosis).Category(casestudy.CatLowLevel)
	appended := 0
	return e, func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("delta%d", appended)
			appended++
			if err := m.Relate(casestudy.DimDiagnosis, id, lows[appended%len(lows)]); err != nil {
				t.Fatal(err)
			}
			ageID, err := casestudy.AddAge(m.Dimension(casestudy.DimAge), 20+appended%60)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Relate(casestudy.DimAge, id, ageID); err != nil {
				t.Fatal(err)
			}
			if err := e.AppendFact(id); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestEpochJournal pins the journal contract delta maintenance stands
// on: FactsAt resolves exactly the epochs this engine issued, DeltaRange
// returns the appended dense range as one consistent observation, and a
// foreign engine's epoch is unknown (ok=false), never misresolved.
func TestEpochJournal(t *testing.T) {
	e, grow := growEngine(t, 20)
	e0, n0 := e.EpochFacts()
	if got, ok := e.FactsAt(e0); !ok || got != n0 {
		t.Fatalf("FactsAt(current) = %d,%v want %d,true", got, ok, n0)
	}
	if lo, hi, cur, ok := e.DeltaRange(e0); !ok || lo != n0 || hi != n0 || cur != e0 {
		t.Fatalf("DeltaRange(current) = [%d,%d)@%d,%v want empty range at %d", lo, hi, cur, ok, e0)
	}

	grow(3)
	e1, n1 := e.EpochFacts()
	if n1 != n0+3 || e1 == e0 {
		t.Fatalf("after 3 appends: epoch %d→%d facts %d→%d", e0, e1, n0, n1)
	}
	lo, hi, cur, ok := e.DeltaRange(e0)
	if !ok || lo != n0 || hi != n1 || cur != e1 {
		t.Fatalf("DeltaRange(old) = [%d,%d)@%d,%v want [%d,%d)@%d", lo, hi, cur, ok, n0, n1, e1)
	}
	// Intermediate epochs resolve too: each append journaled one window.
	if got, ok := e.FactsAt(e1); !ok || got != n1 {
		t.Fatalf("FactsAt(e1) = %d,%v", got, ok)
	}

	// An epoch this engine never issued — e.g. another engine's — must be
	// unknown, not approximated: a wrong lo would double-count or drop.
	other := patientEngine(t)
	if _, ok := e.FactsAt(other.Epoch()); ok {
		t.Fatal("foreign epoch resolved in this engine's journal")
	}
	if _, _, _, ok := e.DeltaRange(other.Epoch()); ok {
		t.Fatal("DeltaRange resolved a foreign epoch")
	}
	if _, _, _, ok := e.DeltaRange(0); ok {
		t.Fatal("DeltaRange resolved epoch 0 (the no-engine sentinel)")
	}
}

// TestEpochJournalTrim: the journal is bounded; epochs that fell out of
// the window report unknown (the caller falls back to invalidation,
// which is always sound), while recent epochs keep resolving.
func TestEpochJournalTrim(t *testing.T) {
	if testing.Short() {
		t.Skip("appends >maxEpochWindows facts")
	}
	e, grow := growEngine(t, 5)
	first, _ := e.EpochFacts()
	grow(maxEpochWindows + 10)
	if _, ok := e.FactsAt(first); ok {
		t.Fatal("trimmed epoch still resolves")
	}
	recent, n := e.EpochFacts()
	if got, ok := e.FactsAt(recent); !ok || got != n {
		t.Fatalf("recent epoch lost by trim: %d,%v", got, ok)
	}
	e.mu.RLock()
	w := len(e.windows)
	e.mu.RUnlock()
	if w > maxEpochWindows {
		t.Fatalf("journal grew past the bound: %d windows", w)
	}
}

// TestAggregateByRangeComposition pins the decomposition the delta fold
// relies on: the fold over [0, n) equals AggregateBy, and splitting at
// any lo reproduces it value for value, count for count, and argument
// value for argument value in the same order — the bit-identity
// precondition for continuing a cached fold.
func TestAggregateByRangeComposition(t *testing.T) {
	e, grow := growEngine(t, 40)
	_, lo := e.EpochFacts()
	grow(15)
	_, n := e.EpochFacts()
	ctx := context.Background()

	for _, q := range []struct{ dim, cat, arg string }{
		{casestudy.DimDiagnosis, casestudy.CatGroup, casestudy.DimAge},
		{casestudy.DimDiagnosis, casestudy.CatFamily, ""},
		{casestudy.DimResidence, casestudy.CatRegion, casestudy.DimAge},
	} {
		label := q.dim + "/" + q.cat
		fullV, fullC, fullA, err := e.AggregateBy(ctx, q.dim, q.cat, q.arg, nil)
		if err != nil {
			t.Fatal(err)
		}
		rangeV, rangeC, rangeA, err := e.AggregateByRange(ctx, q.dim, q.cat, q.arg, nil, 0, n)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fullV, rangeV) || !reflect.DeepEqual(fullC, rangeC) || !reflect.DeepEqual(fullA, rangeA) {
			t.Fatalf("%s: AggregateByRange(0,n) != AggregateBy", label)
		}

		preV, preC, preA, err := e.AggregateByRange(ctx, q.dim, q.cat, q.arg, nil, 0, lo)
		if err != nil {
			t.Fatal(err)
		}
		dV, dC, dA, err := e.AggregateByRange(ctx, q.dim, q.cat, q.arg, nil, lo, n)
		if err != nil {
			t.Fatal(err)
		}
		// Stitch prefix + delta per value and compare to the full fold.
		counts := map[string]int{}
		args := map[string][]float64{}
		for j, v := range preV {
			counts[v] += preC[j]
			args[v] = append(args[v], preA[j]...)
		}
		for j, v := range dV {
			counts[v] += dC[j]
			args[v] = append(args[v], dA[j]...)
		}
		for j, v := range fullV {
			if counts[v] != fullC[j] {
				t.Fatalf("%s %s: stitched count %d != full %d", label, v, counts[v], fullC[j])
			}
			if !reflect.DeepEqual(args[v], fullA[j]) && !(len(args[v]) == 0 && len(fullA[j]) == 0) {
				t.Fatalf("%s %s: stitched args %v != full %v", label, v, args[v], fullA[j])
			}
			delete(counts, v)
		}
		if len(counts) != 0 {
			t.Fatalf("%s: stitched values not in the full fold: %v", label, counts)
		}
	}
}

// TestGlobalRangeComposition: same decomposition for the ungrouped fold.
func TestGlobalRangeComposition(t *testing.T) {
	e, grow := growEngine(t, 30)
	_, lo := e.EpochFacts()
	grow(12)
	_, n := e.EpochFacts()
	ctx := context.Background()

	fullC, fullA, err := e.GlobalRange(ctx, casestudy.DimAge, nil, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	if fullC != n {
		t.Fatalf("GlobalRange(0,n) count = %d want %d", fullC, n)
	}
	preC, preA, err := e.GlobalRange(ctx, casestudy.DimAge, nil, 0, lo)
	if err != nil {
		t.Fatal(err)
	}
	dC, dA, err := e.GlobalRange(ctx, casestudy.DimAge, nil, lo, n)
	if err != nil {
		t.Fatal(err)
	}
	if preC+dC != fullC {
		t.Fatalf("counts: %d + %d != %d", preC, dC, fullC)
	}
	if !reflect.DeepEqual(append(preA, dA...), fullA) {
		t.Fatal("prefix+delta argument stream != full stream")
	}

	// Selection restricts the count, and a clamp past the end is safe.
	sel := NewBitmap(n)
	sel.Set(0)
	sel.Set(n - 1)
	c, _, err := e.GlobalRange(ctx, "", sel, 0, n+1000)
	if err != nil {
		t.Fatal(err)
	}
	if c != 2 {
		t.Fatalf("selected count = %d want 2", c)
	}
}

// TestMultiValuedRangeIdentity pins the strictness-continuation
// identity: MultiValued(all) == MultiValued([0,lo)) || delta probe.
// The generator's MixedGranularity plants facts with multiple admitted
// ancestors at Family, so both verdict polarities occur.
func TestMultiValuedRangeIdentity(t *testing.T) {
	cfg := casestudy.DefaultGen()
	cfg.Patients = 50
	cfg.DiagnosesPerPatient = 3
	m := casestudy.MustGenerate(cfg)
	e := NewEngine(m, dimension.CurrentContext(ref))
	n := e.NumFacts()

	for _, q := range []struct{ dim, cat string }{
		{casestudy.DimDiagnosis, casestudy.CatFamily},
		{casestudy.DimDiagnosis, casestudy.CatGroup},
		{casestudy.DimResidence, casestudy.CatRegion},
	} {
		full := e.MultiValued(q.dim, q.cat, nil)
		for _, lo := range []int{0, n / 3, n / 2, n} {
			split := e.MultiValuedRange(q.dim, q.cat, nil, 0, lo) || e.MultiValuedRange(q.dim, q.cat, nil, lo, n)
			if split != full {
				t.Fatalf("%s/%s split at %d: %v != full %v", q.dim, q.cat, lo, split, full)
			}
		}
	}
	if e.MultiValuedRange(casestudy.DimDiagnosis, casestudy.CatFamily, nil, n, n) {
		t.Fatal("empty range reported multi-valued")
	}
}

// TestPreaggDeltaRefresh drives the pre-aggregate cache through the
// append schedule the delta gate exists for: a materialization is
// upgraded in place when the appended range keeps the category strict,
// its refreshed rows are bit-identical to a from-scratch recompute, and
// the upgrade/fallback accounting states which happened. CatLowLevel is
// the category where strictness is deterministic — each appended fact
// is related to exactly one low-level diagnosis (at CatGroup a single
// low-level value can roll up to several groups, making the delta
// legitimately multi-valued).
func TestPreaggDeltaRefresh(t *testing.T) {
	e, grow := growEngine(t, 40)
	c := NewCache(e)
	ctx := context.Background()

	for _, mt := range []struct {
		kind AggKind
		arg  string
	}{{KindCount, ""}, {KindSum, casestudy.DimAge}} {
		if _, err := c.MaterializeContext(ctx, casestudy.DimDiagnosis, casestudy.CatLowLevel, mt.kind, mt.arg); err != nil {
			t.Fatal(err)
		}
	}

	for round := 0; round < 3; round++ {
		grow(5)
		for _, mt := range []struct {
			kind AggKind
			arg  string
		}{{KindCount, ""}, {KindSum, casestudy.DimAge}} {
			rows, err := c.AggregateContext(ctx, casestudy.DimDiagnosis, casestudy.CatLowLevel, mt.kind, mt.arg)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := NewCache(e).AggregateContext(ctx, casestudy.DimDiagnosis, casestudy.CatLowLevel, mt.kind, mt.arg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rows, fresh) {
				t.Fatalf("round %d %s: upgraded rows != fresh recompute\n%v\n%v", round, mt.kind, rows, fresh)
			}
		}
	}
	c.mu.Lock()
	ups, fbs := c.Upgrades, c.Fallbacks
	c.mu.Unlock()
	// 3 rounds × 2 materializations, all strict deltas: every refresh is
	// an upgrade, none a fallback.
	if ups != 6 || fbs != 0 {
		t.Fatalf("upgrades=%d fallbacks=%d, want 6/0", ups, fbs)
	}
}

// TestPreaggDeltaNonStrictFallback: a delta that attaches one fact to
// two values of the materialized category flips the partitioning
// premise; the gate must refuse the merge and invalidate, and the next
// lookup recomputes the correct rows from base data.
func TestPreaggDeltaNonStrictFallback(t *testing.T) {
	cfg := casestudy.DefaultGen()
	cfg.Patients = 30
	m := casestudy.MustGenerate(cfg)
	e := NewEngine(m, dimension.CurrentContext(ref))
	c := NewCache(e)
	ctx := context.Background()

	if _, err := c.MaterializeContext(ctx, casestudy.DimDiagnosis, casestudy.CatLowLevel, KindCount, ""); err != nil {
		t.Fatal(err)
	}

	// A fact under two low-level diagnoses: multi-valued at CatLowLevel.
	lows := m.Dimension(casestudy.DimDiagnosis).Category(casestudy.CatLowLevel)
	if err := m.Relate(casestudy.DimDiagnosis, "twofold", lows[0]); err != nil {
		t.Fatal(err)
	}
	if err := m.Relate(casestudy.DimDiagnosis, "twofold", lows[1]); err != nil {
		t.Fatal(err)
	}
	if err := e.AppendFact("twofold"); err != nil {
		t.Fatal(err)
	}

	rows, err := c.AggregateContext(ctx, casestudy.DimDiagnosis, casestudy.CatLowLevel, KindCount, "")
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewCache(e).AggregateContext(ctx, casestudy.DimDiagnosis, casestudy.CatLowLevel, KindCount, "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, fresh) {
		t.Fatalf("post-fallback rows != fresh recompute\n%v\n%v", rows, fresh)
	}
	c.mu.Lock()
	ups, fbs := c.Upgrades, c.Fallbacks
	c.mu.Unlock()
	if ups != 0 || fbs != 1 {
		t.Fatalf("upgrades=%d fallbacks=%d, want 0/1 (non-strict delta must invalidate)", ups, fbs)
	}
}

// TestPreaggFreshAfterAppend is the regression pin for the staleness
// hole delta maintenance closed: before the refresh hook, a cache built
// before an append would serve the old rows forever. Lookup (the
// non-refreshing read) still returning the pre-append rows proves the
// refresh is what moves the data, not a silent recompute.
func TestPreaggFreshAfterAppend(t *testing.T) {
	e, grow := growEngine(t, 25)
	c := NewCache(e)
	ctx := context.Background()

	before, err := c.AggregateContext(ctx, casestudy.DimDiagnosis, casestudy.CatLowLevel, KindCount, "")
	if err != nil {
		t.Fatal(err)
	}
	var totalBefore float64
	for _, v := range before {
		totalBefore += v
	}

	grow(7)
	after, err := c.AggregateContext(ctx, casestudy.DimDiagnosis, casestudy.CatLowLevel, KindCount, "")
	if err != nil {
		t.Fatal(err)
	}
	var totalAfter float64
	for _, v := range after {
		totalAfter += v
	}
	if totalAfter != totalBefore+7 {
		t.Fatalf("refreshed total = %v, want %v (stale pre-aggregate served?)", totalAfter, totalBefore+7)
	}
}
