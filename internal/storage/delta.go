package storage

import (
	"context"
	"fmt"

	"mddm/internal/qos"
)

// This file holds the delta-fold read primitives of incremental
// maintenance: the same closure-bitmap walks the aggregation kernels
// run, restricted to the appended fact range [lo, hi) an epoch-window
// lookup resolved (see epoch.go). Because AppendFact only ever adds
// facts at new dense indices — it never rewrites an existing fact's
// characterizations — the facts in [lo, hi) are exactly the difference
// between the engine at the old epoch and now, and folding just that
// range continues a cached fold where it stopped.
//
// Delta folds charge no fact budget: they are maintenance work bounded
// by the append volume, priced like a cache hit rather than a query
// (the computation they extend already paid once). Cancellation is
// still honored per category value.

// AggregateByRange is AggregateBy restricted to the dense fact range
// [lo, hi): for every category value (in CategoryAt order) it returns
// the value, the number of selected in-range facts it characterizes,
// and — when argDim is non-empty — those facts' argument values
// concatenated in ascending dense-index order. Values with no in-range
// selected facts are omitted. Appending the returned argument lists to
// a fold over [0, lo) reproduces, element for element, the fold
// AggregateBy would produce over [0, hi).
func (e *Engine) AggregateByRange(ctx context.Context, dim, cat, argDim string, sel *Bitmap, lo, hi int) (values []string, counts []int, args [][]float64, err error) {
	g := qos.NewGuard(ctx)
	d := e.mo.Dimension(dim)
	if d == nil {
		return nil, nil, nil, nil
	}
	vals := d.CategoryAt(cat, e.ctx)
	if err := e.ensureClosures(g, dim, vals); err != nil {
		return nil, nil, nil, err
	}
	if argDim != "" {
		e.ensureArgValues(argDim)
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if hi > len(e.facts) {
		hi = len(e.facts)
	}
	di := e.dims[dim]
	if di == nil || lo >= hi {
		return nil, nil, nil, nil
	}
	var av [][]float64
	if argDim != "" {
		av = e.argCols[argDim]
	}
	scanned := int64(0)
	for _, v := range vals {
		// CheckNow, not the sampled Check: a delta fold visits few values,
		// so sampling could skip the poll entirely and outlive its caller.
		if err := g.CheckNow(); err != nil {
			return nil, nil, nil, fmt.Errorf("storage: delta aggregate %s/%s: %w", dim, cat, err)
		}
		bm := di.closure[v]
		if bm == nil {
			continue
		}
		scanned++
		c := 0
		var list []float64
		bm.IterateRange(lo, hi, func(i int) bool {
			if sel != nil && !sel.Has(i) {
				return true
			}
			c++
			if av != nil && i < len(av) {
				list = append(list, av[i]...)
			}
			return true
		})
		if c == 0 {
			continue
		}
		values = append(values, v)
		counts = append(counts, c)
		args = append(args, list)
	}
	mBitmapScans.Add(scanned)
	return values, counts, args, nil
}

// GlobalRange is the ungrouped delta fold: the number of selected facts
// in [lo, hi) and — when argDim is non-empty — their argument values
// concatenated in ascending dense-index order, matching the extraction
// order of the planner's global shape.
func (e *Engine) GlobalRange(ctx context.Context, argDim string, sel *Bitmap, lo, hi int) (int, []float64, error) {
	g := qos.NewGuard(ctx)
	if err := g.CheckNow(); err != nil {
		return 0, nil, fmt.Errorf("storage: delta global fold: %w", err)
	}
	if argDim != "" {
		e.ensureArgValues(argDim)
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if hi > len(e.facts) {
		hi = len(e.facts)
	}
	if lo < 0 {
		lo = 0
	}
	var av [][]float64
	if argDim != "" {
		av = e.argCols[argDim]
	}
	count := 0
	var list []float64
	for i := lo; i < hi; i++ {
		if sel != nil && !sel.Has(i) {
			continue
		}
		count++
		if av != nil && i < len(av) {
			list = append(list, av[i]...)
		}
	}
	return count, list, nil
}

// MultiValuedRange is MultiValued restricted to the dense fact range
// [lo, hi): it reports whether any selected fact in the range is
// characterized by two or more distinct values of the category. Old
// facts' characterizations are append-invariant, so
//
//	MultiValued(all) == MultiValued(old) || MultiValuedRange(delta)
//
// — which is how a cached strictness verdict is upgraded without
// rescanning history. Like MultiValued it is a metadata probe and
// charges no fact budget.
func (e *Engine) MultiValuedRange(dim, cat string, sel *Bitmap, lo, hi int) bool {
	d := e.mo.Dimension(dim)
	if d == nil {
		return false
	}
	vals := d.CategoryAt(cat, e.ctx)
	_ = e.ensureClosures(nil, dim, vals) // nil guard: cannot fail
	e.mu.RLock()
	defer e.mu.RUnlock()
	if hi > len(e.facts) {
		hi = len(e.facts)
	}
	if lo < 0 {
		lo = 0
	}
	di := e.dims[dim]
	if di == nil || lo >= hi {
		return false
	}
	// seen is indexed relative to lo so the probe allocates proportional
	// to the delta, not to history.
	seen := NewBitmap(hi - lo)
	found := false
	for _, v := range vals {
		bm := di.closure[v]
		if bm == nil {
			continue
		}
		bm.IterateRange(lo, hi, func(i int) bool {
			if sel != nil && !sel.Has(i) {
				return true
			}
			if seen.Has(i - lo) {
				found = true
				return false
			}
			seen.Set(i - lo)
			return true
		})
		if found {
			return true
		}
	}
	return false
}
