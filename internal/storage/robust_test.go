package storage

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"mddm/internal/casestudy"
	"mddm/internal/dimension"
	"mddm/internal/qos"
)

// TestBuildEngineRejectsUnknownFact covers the silent-corruption bug the
// robustness pass fixed: a fact–dimension pair naming a fact absent from
// the MO's fact set used to be indexed at position 0 (the zero value of
// the index map), polluting the first fact's bitmaps. BuildEngine must
// reject it with a typed error instead.
func TestBuildEngineRejectsUnknownFact(t *testing.T) {
	m, err := casestudy.BuildPatientMO(casestudy.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Smuggle a pair for a fact the MO does not contain, bypassing the
	// MO-level validation the same way a corrupt load would.
	r := m.Relation(casestudy.DimDiagnosis)
	pairs := r.Pairs()
	if len(pairs) == 0 {
		t.Fatal("no pairs")
	}
	r.AddAnnot("ghost", pairs[0].ValueID, pairs[0].Annot)

	_, err = BuildEngine(context.Background(), m, dimension.CurrentContext(ref))
	if err == nil {
		t.Fatal("unknown fact must be rejected")
	}
	if !errors.Is(err, ErrUnknownFact) {
		t.Fatalf("want ErrUnknownFact, got %v", err)
	}
	var ue *UnknownFactError
	if !errors.As(err, &ue) {
		t.Fatalf("want *UnknownFactError, got %T", err)
	}
	if ue.FactID != "ghost" || ue.Dim != casestudy.DimDiagnosis {
		t.Fatalf("error fields: %+v", ue)
	}
}

// TestBuildEngineCanceled checks that engine construction itself honors
// cancellation.
func TestBuildEngineCanceled(t *testing.T) {
	m := casestudy.MustGenerate(casestudy.DefaultGen())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := BuildEngine(ctx, m, dimension.CurrentContext(ref))
	if !errors.Is(err, qos.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

// TestConcurrentAppendAndRead mixes incremental appends with concurrent
// readers on one engine; run under -race this is the engine's
// concurrency contract. The MO itself is fully prepared up front (the
// appended facts' relations included), so the only shared mutable state
// is the engine.
func TestConcurrentAppendAndRead(t *testing.T) {
	cfg := casestudy.DefaultGen()
	cfg.Patients = 80
	m := casestudy.MustGenerate(cfg)
	c := dimension.CurrentContext(ref)
	e := NewEngine(m, c)
	// Warm closures so appends propagate into memoized bitmaps while
	// readers clone them.
	e.CountDistinctBy(casestudy.DimDiagnosis, casestudy.CatGroup)

	// Prepare the extra facts single-threaded: once the goroutines start,
	// the MO is read-only.
	diag := m.Dimension(casestudy.DimDiagnosis)
	lows := diag.Category(casestudy.CatLowLevel)
	const extra = 40
	ids := make([]string, extra)
	for i := range ids {
		ids[i] = fmt.Sprintf("new%d", i)
		if err := m.Relate(casestudy.DimDiagnosis, ids[i], lows[i%len(lows)]); err != nil {
			t.Fatal(err)
		}
		if err := m.Relate(casestudy.DimResidence, ids[i], "A0"); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, id := range ids {
			if err := e.AppendFact(id); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				counts := e.CountDistinctBy(casestudy.DimDiagnosis, casestudy.CatGroup)
				total := 0
				for _, n := range counts {
					total += n
				}
				if total < cfg.Patients {
					t.Errorf("lost facts: %d < %d", total, cfg.Patients)
					return
				}
				bm := e.Characterizing(casestudy.DimResidence, "A0")
				if bm != nil {
					_ = bm.Count()
				}
			}
		}()
	}
	wg.Wait()

	// Quiesced: the engine must answer exactly like a fresh rebuild.
	fresh := NewEngine(m, c)
	inc := e.CountDistinctBy(casestudy.DimDiagnosis, casestudy.CatGroup)
	reb := fresh.CountDistinctBy(casestudy.DimDiagnosis, casestudy.CatGroup)
	if len(inc) != len(reb) {
		t.Fatalf("%v vs %v", inc, reb)
	}
	for v, n := range reb {
		if inc[v] != n {
			t.Errorf("%s: incremental %d, rebuild %d", v, inc[v], n)
		}
	}
}

// TestAggregateContextBudget checks the storage-level scan budget: a
// fact budget smaller than the dataset stops the base computation with
// the typed error.
func TestAggregateContextBudget(t *testing.T) {
	cfg := casestudy.DefaultGen()
	cfg.Patients = 200
	m := casestudy.MustGenerate(cfg)
	e := NewEngine(m, dimension.CurrentContext(ref))
	cache := NewCache(e)
	ctx := qos.WithFactBudget(context.Background(), 10)
	_, err := cache.AggregateContext(ctx, casestudy.DimDiagnosis, casestudy.CatGroup, KindCount, "")
	if !errors.Is(err, qos.ErrResourceExhausted) {
		t.Fatalf("want ErrResourceExhausted, got %v", err)
	}
}
