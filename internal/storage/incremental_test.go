package storage

import (
	"fmt"
	"testing"

	"mddm/internal/casestudy"
	"mddm/internal/dimension"
)

func TestAppendFactMatchesRebuild(t *testing.T) {
	cfg := casestudy.DefaultGen()
	cfg.Patients = 60
	m := casestudy.MustGenerate(cfg)
	c := dimension.CurrentContext(ref)
	e := NewEngine(m, c)
	// Warm some closures before appending, so propagation is exercised.
	e.CountDistinctBy(casestudy.DimDiagnosis, casestudy.CatGroup)
	e.CountDistinctBy(casestudy.DimResidence, casestudy.CatRegion)

	// Add 10 new patients to the MO and append them to the engine.
	diag := m.Dimension(casestudy.DimDiagnosis)
	lows := diag.Category(casestudy.CatLowLevel)
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("new%d", i)
		if err := m.Relate(casestudy.DimDiagnosis, id, lows[i%len(lows)]); err != nil {
			t.Fatal(err)
		}
		if err := m.Relate(casestudy.DimResidence, id, "A0"); err != nil {
			t.Fatal(err)
		}
		ageID, err := casestudy.AddAge(m.Dimension(casestudy.DimAge), 30+i)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Relate(casestudy.DimAge, id, ageID); err != nil {
			t.Fatal(err)
		}
		if err := e.AppendFact(id); err != nil {
			t.Fatal(err)
		}
	}

	// The incrementally maintained engine must answer exactly like a fresh
	// rebuild, for warm and cold closures alike.
	fresh := NewEngine(m, c)
	for _, q := range []struct{ dim, cat string }{
		{casestudy.DimDiagnosis, casestudy.CatGroup},
		{casestudy.DimDiagnosis, casestudy.CatFamily},
		{casestudy.DimResidence, casestudy.CatRegion},
		{casestudy.DimResidence, casestudy.CatArea},
	} {
		inc := e.CountDistinctBy(q.dim, q.cat)
		reb := fresh.CountDistinctBy(q.dim, q.cat)
		if len(inc) != len(reb) {
			t.Fatalf("%s/%s: %v vs %v", q.dim, q.cat, inc, reb)
		}
		for v, n := range reb {
			if inc[v] != n {
				t.Errorf("%s/%s/%s: incremental %d, rebuild %d", q.dim, q.cat, v, inc[v], n)
			}
		}
	}
	if e.NumFacts() != 70 {
		t.Errorf("NumFacts = %d", e.NumFacts())
	}
}

func TestAppendFactErrors(t *testing.T) {
	e := patientEngine(t)
	if err := e.AppendFact("1"); err == nil {
		t.Error("re-appending an indexed fact must fail")
	}
	if err := e.AppendFact("ghost"); err == nil {
		t.Error("appending a fact absent from the MO must fail")
	}
}

func TestBitmapGrow(t *testing.T) {
	b := NewBitmap(10)
	b.Set(3)
	b.grow(200)
	if !b.Has(3) || b.Has(150) {
		t.Error("grow must preserve bits")
	}
	b.Set(150)
	if !b.Has(150) || b.Count() != 2 {
		t.Error("bits beyond the old universe must work after grow")
	}
	b.grow(5) // shrink is a no-op
	if b.Len() != 200 {
		t.Errorf("Len = %d", b.Len())
	}
}
