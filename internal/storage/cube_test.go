package storage

import (
	"strings"
	"testing"

	"mddm/internal/casestudy"
	"mddm/internal/dimension"
)

func TestPlanCubeStrictHierarchy(t *testing.T) {
	cfg := casestudy.DefaultGen()
	cfg.NonStrict = false
	cfg.Churn = false
	cfg.Patients = 60
	m := casestudy.MustGenerate(cfg)
	e := NewEngine(m, dimension.CurrentContext(ref))
	c := NewCache(e)

	plan, err := c.PlanCube(casestudy.DimResidence, KindCount, "")
	if err != nil {
		t.Fatal(err)
	}
	// Area from base; County derives from Area; Region derives from County.
	verdicts := map[string]string{}
	for _, en := range plan.Entries {
		verdicts[en.Cat] = en.DeriveFrom
	}
	if verdicts[casestudy.CatArea] != "" {
		t.Errorf("Area must come from base, got %q", verdicts[casestudy.CatArea])
	}
	if verdicts[casestudy.CatCounty] != casestudy.CatArea {
		t.Errorf("County must derive from Area, got %q", verdicts[casestudy.CatCounty])
	}
	if verdicts[casestudy.CatRegion] != casestudy.CatCounty {
		t.Errorf("Region must derive from County, got %q", verdicts[casestudy.CatRegion])
	}
	if got := plan.DerivableCategories(); len(got) != 2 {
		t.Errorf("derivable = %v", got)
	}

	cube, err := c.BuildCube(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Every level of the built cube equals the direct computation.
	for _, cat := range []string{casestudy.CatArea, casestudy.CatCounty, casestudy.CatRegion} {
		direct := e.CountDistinctBy(casestudy.DimResidence, cat)
		for v, n := range direct {
			if cube[cat][v] != float64(n) {
				t.Errorf("%s/%s: cube %v, direct %d", cat, v, cube[cat][v], n)
			}
		}
		if len(cube[cat]) != len(direct) {
			t.Errorf("%s: cube has %d rows, direct %d", cat, len(cube[cat]), len(direct))
		}
	}
	out := plan.String()
	if !strings.Contains(out, "derive from") || !strings.Contains(out, "from base") {
		t.Errorf("plan render:\n%s", out)
	}
}

func TestPlanCubeNonStrictFallsBack(t *testing.T) {
	cfg := casestudy.DefaultGen()
	cfg.Patients = 60
	cfg.Churn = false
	m := casestudy.MustGenerate(cfg)
	e := NewEngine(m, dimension.CurrentContext(ref))
	c := NewCache(e)

	plan, err := c.PlanCube(casestudy.DimDiagnosis, KindCount, "")
	if err != nil {
		t.Fatal(err)
	}
	// The non-strict hierarchy forces every level from base.
	for _, en := range plan.Entries {
		if en.DeriveFrom != "" {
			t.Errorf("%s must come from base on the non-strict hierarchy, derives from %q", en.Cat, en.DeriveFrom)
		}
	}
	// And the built cube still returns correct distinct counts.
	cube, err := c.BuildCube(plan)
	if err != nil {
		t.Fatal(err)
	}
	direct := e.CountDistinctBy(casestudy.DimDiagnosis, casestudy.CatGroup)
	for v, n := range direct {
		if cube[casestudy.CatGroup][v] != float64(n) {
			t.Errorf("group %s: cube %v, direct %d", v, cube[casestudy.CatGroup][v], n)
		}
	}
}

func TestPlanCubeSum(t *testing.T) {
	cfg := casestudy.DefaultGen()
	cfg.NonStrict = false
	cfg.Churn = false
	cfg.Patients = 50
	m := casestudy.MustGenerate(cfg)
	e := NewEngine(m, dimension.CurrentContext(ref))
	c := NewCache(e)
	plan, err := c.PlanCube(casestudy.DimResidence, KindSum, casestudy.DimAge)
	if err != nil {
		t.Fatal(err)
	}
	cube, err := c.BuildCube(plan)
	if err != nil {
		t.Fatal(err)
	}
	direct := e.SumBy(casestudy.DimResidence, casestudy.CatRegion, casestudy.DimAge)
	for v, x := range direct {
		if cube[casestudy.CatRegion][v] != x {
			t.Errorf("region %s: cube %v, direct %v", v, cube[casestudy.CatRegion][v], x)
		}
	}
}

func TestPlanCubeErrors(t *testing.T) {
	m := casestudy.MustGenerate(casestudy.DefaultGen())
	c := NewCache(NewEngine(m, dimension.CurrentContext(ref)))
	if _, err := c.PlanCube("Nope", KindCount, ""); err == nil {
		t.Error("unknown dimension must fail")
	}
	if _, err := c.BuildCube(&CubePlan{Dim: casestudy.DimResidence, Kind: KindCount,
		Entries: []CubePlanEntry{{Cat: casestudy.CatRegion, DeriveFrom: casestudy.CatCounty}}}); err == nil {
		t.Error("deriving from an unbuilt category must fail")
	}
}
