package storage

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"mddm/internal/casestudy"
	"mddm/internal/dimension"
)

// compactShared reduces one member's full-width shared-scan outputs to
// the solo AggregateBy view: zero-count values dropped, survivors in
// dictionary order.
func compactShared(values []string, counts []int64, args [][]float64) (vs []string, cs []int, as [][]float64) {
	for j, v := range values {
		if counts[j] == 0 {
			continue
		}
		vs = append(vs, v)
		cs = append(cs, int(counts[j]))
		if args != nil {
			as = append(as, args[j])
		} else {
			as = append(as, nil)
		}
	}
	return vs, cs, as
}

// foldOf replays FoldAcc.Add over a solo argument list — the reference
// for what an accumulator member's fold must equal, bit for bit.
func foldOf(list []float64) FoldAcc {
	var a FoldAcc
	for _, x := range list {
		a.Add(x)
	}
	return a
}

// foldEqual compares FoldAccs bitwise: Sum must be the exact float the
// ascending left fold produces, not merely approximately equal.
func foldEqual(a, b FoldAcc) bool {
	return a.N == b.N && a.Seen == b.Seen &&
		math.Float64bits(a.Sum) == math.Float64bits(b.Sum) &&
		math.Float64bits(a.Min) == math.Float64bits(b.Min) &&
		math.Float64bits(a.Max) == math.Float64bits(b.Max)
}

// sharedMembers is the mixed member corpus: every combination of
// {selection, no selection} × {no argument, accumulator argument, list
// argument}, so one fused pass exercises count-only, accumulator, and
// per-fact list folds at once.
func sharedMembers(e *Engine) []SharedScanMember {
	sel := NewBitmap(e.NumFacts())
	for i := 0; i < e.NumFacts(); i += 2 {
		sel.Set(i)
	}
	return []SharedScanMember{
		{},
		{ArgDim: casestudy.DimAge},
		{ArgDim: casestudy.DimAge, ListArgs: true},
		{Sel: sel},
		{Sel: sel, ArgDim: casestudy.DimAge},
		{Sel: sel, ArgDim: casestudy.DimAge, ListArgs: true},
	}
}

// checkSharedMember asserts one member's fused outputs against its own
// solo AggregateBy: counts always, argument lists element-for-element for
// list members, and bitwise-equal FoldAccs (replayed over the solo lists)
// for accumulator members.
func checkSharedMember(t *testing.T, tag string, e *Engine, dim, cat string, m SharedScanMember,
	values []string, counts []int64, args [][]float64, folds []FoldAcc) {
	t.Helper()
	gotV, gotC, gotA := compactShared(values, counts, args)
	wantV, wantC, wantA, err := e.AggregateBy(context.Background(), dim, cat, m.ArgDim, m.Sel)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(gotV) != fmt.Sprint(wantV) || fmt.Sprint(gotC) != fmt.Sprint(wantC) {
		t.Fatalf("%s: shared %v %v, solo %v %v", tag, gotV, gotC, wantV, wantC)
	}
	switch {
	case m.ArgDim == "":
	case m.ListArgs:
		if fmt.Sprint(gotA) != fmt.Sprint(wantA) {
			t.Fatalf("%s: shared args %v, solo %v", tag, gotA, wantA)
		}
	default:
		// Accumulator member: the scan's FoldAcc per value must be the
		// bitwise replay of folding the solo argument list in order.
		if folds == nil {
			t.Fatalf("%s: accumulator member got no folds", tag)
		}
		wi := 0
		for j, v := range values {
			if counts[j] == 0 {
				if folds[j].N != 0 || folds[j].Seen {
					t.Fatalf("%s: value %s has zero count but non-zero fold %+v", tag, v, folds[j])
				}
				continue
			}
			if want := foldOf(wantA[wi]); !foldEqual(folds[j], want) {
				t.Fatalf("%s: value %s fold %+v, solo replay %+v", tag, v, folds[j], want)
			}
			wi++
		}
	}
}

// TestSharedScanDifferential asserts that every member of a fused shared
// scan gets bit-identical outputs to its own solo AggregateBy — for every
// corpus engine, corpus (dim, cat), and parallelism degree. List members'
// argument lists are compared element-for-element (the fused scan must
// append in the same ascending dense-index order the solo kernels
// iterate); accumulator members' FoldAccs are compared bitwise against a
// replay over the solo lists.
func TestSharedScanDifferential(t *testing.T) {
	for name, e := range genVariants(t) {
		members := sharedMembers(e)
		for _, dc := range columnDims {
			dim, cat := dc[0], dc[1]
			for _, deg := range allDegrees {
				values, counts, args, folds, err := e.SharedAggregateBy(context.Background(), dim, cat, members, deg)
				if err != nil {
					t.Fatalf("%s %s/%s deg=%d: %v", name, dim, cat, deg, err)
				}
				for mi, m := range members {
					tag := fmt.Sprintf("%s %s/%s deg=%d member=%d", name, dim, cat, deg, mi)
					checkSharedMember(t, tag, e, dim, cat, m, values, counts[mi], args[mi], folds[mi])
				}
			}
		}
	}
}

// TestSharedScanFullWidth pins the full-width contract the batch budget
// replay depends on: per member one count per dictionary value — zeros
// included — argument-list slots only for list members, and FoldAcc slots
// only for accumulator members.
func TestSharedScanFullWidth(t *testing.T) {
	e, _ := growEngine(t, 30)
	members := sharedMembers(e)
	dim, cat := casestudy.DimDiagnosis, casestudy.CatLowLevel
	values, counts, args, folds, err := e.SharedAggregateBy(context.Background(), dim, cat, members, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := len(e.mo.Dimension(dim).CategoryAt(cat, e.ctx))
	if len(values) != want {
		t.Fatalf("dictionary width %d, category has %d values", len(values), want)
	}
	for mi, m := range members {
		if len(counts[mi]) != want {
			t.Fatalf("member %d: %d counts, want %d", mi, len(counts[mi]), want)
		}
		if wantArgs := m.ArgDim != "" && m.ListArgs; (args[mi] != nil) != wantArgs {
			t.Fatalf("member %d: args non-nil=%v, want %v (ArgDim=%q ListArgs=%v)",
				mi, args[mi] != nil, wantArgs, m.ArgDim, m.ListArgs)
		}
		if wantFolds := m.ArgDim != "" && !m.ListArgs; (folds[mi] != nil) != wantFolds {
			t.Fatalf("member %d: folds non-nil=%v, want %v (ArgDim=%q ListArgs=%v)",
				mi, folds[mi] != nil, wantFolds, m.ArgDim, m.ListArgs)
		}
		if folds[mi] != nil && len(folds[mi]) != want {
			t.Fatalf("member %d: %d folds, want %d", mi, len(folds[mi]), want)
		}
	}
}

// TestSharedScanStaleDictionary asserts the freshness refusal: growing a
// category after the column build makes the fused kernel step aside with
// ErrSharedScanUnavailable (the solo kernels read the live dictionary;
// the stale column would silently under-code the newer facts).
func TestSharedScanStaleDictionary(t *testing.T) {
	e, grow := growEngine(t, 30)
	dim, cat := casestudy.DimAge, casestudy.CatTenYear
	if _, _, _, _, err := e.SharedAggregateBy(context.Background(), dim, cat, []SharedScanMember{{}}, 1); err != nil {
		t.Fatalf("fresh column: %v", err)
	}
	// grow appends facts with ages in [20, 80); age 200 adds a ten-year
	// group the built column has never seen.
	if _, err := casestudy.AddAge(e.mo.Dimension(casestudy.DimAge), 200); err != nil {
		t.Fatal(err)
	}
	_, _, _, _, err := e.SharedAggregateBy(context.Background(), dim, cat, []SharedScanMember{{}}, 1)
	if !errors.Is(err, ErrSharedScanUnavailable) {
		t.Fatalf("stale dictionary: got %v, want ErrSharedScanUnavailable", err)
	}
	grow(1) // facts keep appending; the refusal persists until a rebuild
	_, _, _, _, err = e.SharedAggregateBy(context.Background(), dim, cat, []SharedScanMember{{}}, 1)
	if !errors.Is(err, ErrSharedScanUnavailable) {
		t.Fatalf("stale dictionary after append: got %v, want ErrSharedScanUnavailable", err)
	}
}

// TestSharedScanUnknownDim asserts the kernel refuses (rather than
// panics) for a dimension the schema does not have.
func TestSharedScanUnknownDim(t *testing.T) {
	cfg := casestudy.DefaultGen()
	cfg.Patients = 10
	m := casestudy.MustGenerate(cfg)
	e := NewEngine(m, dimension.CurrentContext(ref))
	_, _, _, _, err := e.SharedAggregateBy(context.Background(), "NoSuchDim", "NoSuchCat", []SharedScanMember{{}}, 1)
	if err == nil {
		t.Fatal("unknown dimension: expected an error")
	}
}

// TestSharedScanGrownFacts asserts the fused kernel stays differential
// with solo after appends that do NOT grow the dictionary — the codes
// array and argument columns extend and both paths see the same facts.
func TestSharedScanGrownFacts(t *testing.T) {
	e, grow := growEngine(t, 30)
	dim, cat := casestudy.DimDiagnosis, casestudy.CatLowLevel
	if _, _, _, _, err := e.SharedAggregateBy(context.Background(), dim, cat, []SharedScanMember{{}}, 1); err != nil {
		t.Fatal(err)
	}
	grow(7)
	members := sharedMembers(e)
	values, counts, args, folds, err := e.SharedAggregateBy(context.Background(), dim, cat, members, 2)
	if errors.Is(err, ErrSharedScanUnavailable) {
		t.Skip("append grew the dictionary; covered by TestSharedScanStaleDictionary")
	}
	if err != nil {
		t.Fatal(err)
	}
	for mi, m := range members {
		tag := fmt.Sprintf("member %d after append", mi)
		checkSharedMember(t, tag, e, dim, cat, m, values, counts[mi], args[mi], folds[mi])
	}
}
