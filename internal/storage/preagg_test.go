package storage

import (
	"testing"

	"mddm/internal/casestudy"
	"mddm/internal/core"
	"mddm/internal/dimension"
	"mddm/internal/fact"
	"mddm/internal/temporal"
)

// patientEngineAt builds the Table 1 case study evaluated at ref, with the
// user-defined grouping rows included or not.
func patientEngineAt(t *testing.T, refS string, userHierarchy bool) *Engine {
	t.Helper()
	opt := casestudy.DefaultOptions()
	opt.Ref = temporal.MustDate(refS)
	opt.UserHierarchy = userHierarchy
	m, err := casestudy.BuildPatientMO(opt)
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(m, dimension.CurrentContext(opt.Ref))
}

// TestReuseGuardTable1 drives the reuse guard through the fact mappings of
// the paper's Has table: diagnoses attached at mixed granularities
// (diagnosis 9 sits at the Family level, above the Low-level category) and
// the many-to-many fact–dimension relation (patient 2 carries diagnoses 5
// and 9 simultaneously in 1982). In every rejecting case the rollup must
// fall back to base and agree with the direct computation.
func TestReuseGuardTable1(t *testing.T) {
	cases := []struct {
		name          string
		ref           string
		userHierarchy bool
		dim           string
		from, to      string
		kind          AggKind
		arg           string
		wantReject    bool
	}{
		{
			// At 01/01/1999 only the diagnosis-9 rows of Has are current:
			// both patients are characterized directly at the Family level,
			// so a Low-level materialization sees no facts at all. Without
			// the user-defined rows the Low→Family value mapping is strict
			// and covering — only the fact-level check can catch the hole.
			name: "mixed granularity COUNT Low→Family", ref: "01/01/1999",
			userHierarchy: false, dim: casestudy.DimDiagnosis,
			from: casestudy.CatLowLevel, to: casestudy.CatFamily,
			kind: KindCount, wantReject: true,
		},
		{
			// Same hole, SUM path: SUM never had a fact-level check, so
			// before the fact-coverage rule this combined to an empty
			// result instead of the patients' summed ages.
			name: "mixed granularity SUM Low→Family", ref: "01/01/1999",
			userHierarchy: false, dim: casestudy.DimDiagnosis,
			from: casestudy.CatLowLevel, to: casestudy.CatFamily,
			kind: KindSum, arg: casestudy.DimAge, wantReject: true,
		},
		{
			// Mid-1982, full hierarchy: diagnosis 5 sits under Family 4
			// (WHO) and Family 9 (user-defined) — the non-strict mapping of
			// Table 1's Grouping table. Combining would count patient 2
			// under both families.
			name: "non-strict COUNT Low→Family", ref: "01/06/1982",
			userHierarchy: true, dim: casestudy.DimDiagnosis,
			from: casestudy.CatLowLevel, to: casestudy.CatFamily,
			kind: KindCount, wantReject: true,
		},
		{
			// Mid-1982: the Has relation is many-to-many — patient 2 holds
			// diagnoses 5 and 9 at once, so Families 4 and 9 share a fact
			// and their distinct counts cannot be added into Groups.
			name: "many-to-many COUNT Family→Group", ref: "01/06/1982",
			userHierarchy: true, dim: casestudy.DimDiagnosis,
			from: casestudy.CatFamily, to: casestudy.CatGroup,
			kind: KindCount, wantReject: true,
		},
		{
			// Patient 2's residence churn puts one fact under two counties.
			// County SUMs carry the age twice (125) where the Region
			// computation carries it once (77) — many-to-many relations
			// break SUM reuse exactly like COUNT reuse.
			name: "many-to-many SUM County→Region", ref: "01/01/1999",
			userHierarchy: true, dim: casestudy.DimResidence,
			from: casestudy.CatCounty, to: casestudy.CatRegion,
			kind: KindSum, arg: casestudy.DimAge, wantReject: true,
		},
		{
			// The birth-date hierarchy is clean — one day per patient,
			// strict calendar rollup, every fact at the bottom — so the
			// guard must keep approving it: the fact-level checks may not
			// turn the cache into a pure fallback machine.
			name: "strict COUNT Day→Year", ref: "01/01/1999",
			userHierarchy: true, dim: casestudy.DimDOB,
			from: casestudy.CatDay, to: casestudy.CatYear,
			kind: KindCount, wantReject: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := patientEngineAt(t, tc.ref, tc.userHierarchy)
			dim := tc.dim
			c := NewCache(e)
			err := c.ReuseGuard(dim, tc.from, tc.to, tc.kind)
			if tc.wantReject && err == nil {
				t.Fatalf("ReuseGuard(%s, %s→%s, %s) = nil, want rejection", dim, tc.from, tc.to, tc.kind)
			}
			if !tc.wantReject && err != nil {
				t.Fatalf("ReuseGuard(%s, %s→%s, %s) = %v, want pass", dim, tc.from, tc.to, tc.kind, err)
			}
			rows, err := c.RollupFrom(dim, tc.from, tc.to, tc.kind, tc.arg)
			if err != nil {
				t.Fatal(err)
			}
			// Whether reused or recomputed, the answer must match base.
			var direct map[string]float64
			switch tc.kind {
			case KindCount:
				counts := e.CountDistinctBy(dim, tc.to)
				direct = make(map[string]float64, len(counts))
				for v, n := range counts {
					direct[v] = float64(n)
				}
			case KindSum:
				direct = e.SumBy(dim, tc.to, tc.arg)
			}
			if len(rows) != len(direct) {
				t.Fatalf("rollup %v, direct %v", rows, direct)
			}
			for v, x := range direct {
				if rows[v] != x {
					t.Errorf("%s: rollup %v, direct %v", v, rows[v], x)
				}
			}
			// A rejection shows up as one fallback miss; an approval as
			// one reuse hit.
			wantHits, wantMisses := 1, 0
			if tc.wantReject {
				wantHits, wantMisses = 0, 1
			}
			if c.Hits != wantHits || c.Misses != wantMisses {
				t.Errorf("hits=%d misses=%d, want hits=%d misses=%d", c.Hits, c.Misses, wantHits, wantMisses)
			}
		})
	}
}

// TestReuseGuardMixedGranularityIsolated pins the fact-coverage rule on a
// minimal hierarchy where everything else is clean: two Low values rolling
// strictly and coveringly into two Families, plus one fact attached
// directly at a Family. Value-level checks all pass; only fact-level
// coverage can see that f3 never reaches a Low materialization.
func TestReuseGuardMixedGranularityIsolated(t *testing.T) {
	const dimName = "D"
	dt := dimension.MustDimensionType(dimName, dimension.Constant, dimension.KindString, "Low", "Family")
	m := core.NewMO(core.MustSchema("F", dt))
	d := m.Dimension(dimName)
	for _, v := range []struct{ cat, id string }{
		{"Low", "L1"}, {"Low", "L2"}, {"Family", "F1"}, {"Family", "F2"},
	} {
		if err := d.AddValue(v.cat, v.id); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]string{{"L1", "F1"}, {"L2", "F2"}} {
		if err := d.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range [][2]string{{"f1", "L1"}, {"f2", "L2"}, {"f3", "F1"}} {
		if err := m.Relate(dimName, r[0], r[1]); err != nil {
			t.Fatal(err)
		}
	}
	e := NewEngine(m, dimension.CurrentContext(temporal.MustDate("01/01/1999")))
	c := NewCache(e)

	if err := c.ReuseGuard(dimName, "Low", "Family", KindCount); err == nil {
		t.Fatal("fact attached at Family must fail the Low→Family reuse guard")
	}
	rows, err := c.RollupFrom(dimName, "Low", "Family", KindCount, "")
	if err != nil {
		t.Fatal(err)
	}
	// F1 counts f1 (via L1) and f3 (direct); a Low-level combine would
	// have answered F1→1.
	if rows["F1"] != 2 || rows["F2"] != 1 {
		t.Errorf("rollup = %v, want F1→2 F2→1", rows)
	}

	// Detach the mixed-granularity fact and the same hierarchy is
	// reusable again: the rule keys on facts, not on shapes.
	m2 := core.NewMO(core.MustSchema("F", dt))
	if err := m2.SetDimension(dimName, d); err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]string{{"f1", "L1"}, {"f2", "L2"}} {
		if err := m2.Relate(dimName, r[0], r[1]); err != nil {
			t.Fatal(err)
		}
	}
	m2.AddFact(fact.NewFact("f3")) // present but uncharacterized in D
	c2 := NewCache(NewEngine(m2, dimension.CurrentContext(temporal.MustDate("01/01/1999"))))
	if err := c2.ReuseGuard(dimName, "Low", "Family", KindCount); err != nil {
		t.Fatalf("clean hierarchy must pass the guard: %v", err)
	}
	rows2, err := c2.RollupFrom(dimName, "Low", "Family", KindCount, "")
	if err != nil {
		t.Fatal(err)
	}
	if rows2["F1"] != 1 || rows2["F2"] != 1 {
		t.Errorf("rollup = %v, want F1→1 F2→1", rows2)
	}
	if c2.Hits != 1 {
		t.Errorf("expected reuse hit, hits=%d misses=%d", c2.Hits, c2.Misses)
	}
}
