package storage

import (
	"context"
	"fmt"
	"sort"

	"mddm/internal/exec"
	"mddm/internal/qos"
)

// CrossCell is one cell of a two-dimensional cross tabulation.
type CrossCell struct {
	V1, V2 string
	Count  int
}

// CrossCount computes the distinct-fact count for every pair of values of
// (dim1 at cat1) × (dim2 at cat2) by intersecting closure bitmaps — the
// bitmap-index acceleration of the star-join/cross-tab query ("diagnosis
// group × area") the case study motivates. Cells with zero facts are
// omitted; the result is sorted by (V1, V2).
func (e *Engine) CrossCount(dim1, cat1, dim2, cat2 string) []CrossCell {
	out, _ := e.crossCountSeq(nil, dim1, cat1, dim2, cat2) // nil guard: cannot fail
	return out
}

// CrossCountContext is CrossCount with cooperative cancellation and
// fact-budget accounting (every non-empty row charges its fact count).
// When both axes have built characterization columns and the cell matrix
// is small enough for flat accumulators, the single-pass column kernel
// answers; otherwise closure bitmaps are intersected. A context-carried
// parallelism degree above 1 evaluates per partition and merges the
// integer counts — identical cells either way.
func (e *Engine) CrossCountContext(ctx context.Context, dim1, cat1, dim2, cat2 string) ([]CrossCell, error) {
	if c1, c2 := e.columnFor(dim1, cat1), e.columnFor(dim2, cat2); c1 != nil && c2 != nil &&
		len(c1.vals)*len(c2.vals) <= maxCrossColumnCells {
		mKernelColumn.Inc()
		return e.crossCountByColumn(ctx, qos.NewGuard(ctx), c1, c2)
	}
	mKernelBitmap.Inc()
	if deg := exec.DegreeFrom(ctx); deg > 1 {
		return e.crossCountParallel(ctx, dim1, cat1, dim2, cat2, deg)
	}
	return e.crossCountSeq(qos.NewGuard(ctx), dim1, cat1, dim2, cat2)
}

// crossCountSeq is the sequential cross-tab: one scratch bitmap reused via
// AndInto across every cell pair instead of a Clone allocation per cell.
// The whole pass runs under the read lock over the shared memoized
// closures, so concurrent cross-tabs proceed in parallel.
func (e *Engine) crossCountSeq(g *qos.Guard, dim1, cat1, dim2, cat2 string) ([]CrossCell, error) {
	d1 := e.mo.Dimension(dim1)
	d2 := e.mo.Dimension(dim2)
	if d1 == nil || d2 == nil {
		return nil, nil
	}
	vals1 := d1.CategoryAt(cat1, e.ctx)
	vals2 := d2.CategoryAt(cat2, e.ctx)
	if err := e.ensureClosures(g, dim1, vals1); err != nil {
		return nil, err
	}
	if err := e.ensureClosures(g, dim2, vals2); err != nil {
		return nil, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	empty := NewBitmap(0)
	closureOf := func(dim, v string) *Bitmap {
		if di := e.dims[dim]; di != nil {
			if bm := di.closure[v]; bm != nil {
				return bm
			}
		}
		return empty
	}
	bms2 := make([]*Bitmap, len(vals2))
	for j, v2 := range vals2 {
		bms2[j] = closureOf(dim2, v2)
	}
	var out []CrossCell
	scratch := NewBitmap(0)
	for _, v1 := range vals1 {
		if err := g.Check(); err != nil {
			return nil, err
		}
		bm1 := closureOf(dim1, v1)
		if bm1.IsEmpty() {
			continue
		}
		if err := g.Facts(int64(bm1.Count())); err != nil {
			return nil, fmt.Errorf("storage: cross-count %s/%s: %w", dim1, cat1, err)
		}
		for j, v2 := range vals2 {
			if n := scratch.AndInto(bm1, bms2[j]).Count(); n > 0 {
				out = append(out, CrossCell{V1: v1, V2: v2, Count: n})
			}
		}
	}
	sortCells(out)
	return out, nil
}

// crossCountParallel freezes both axes' bitmaps, then each partition
// computes AndCountRange for every cell pair of the non-empty rows; the
// per-partition counts merge by integer addition. Budget accounting
// matches the sequential path: each non-empty row charges its fact count.
func (e *Engine) crossCountParallel(ctx context.Context, dim1, cat1, dim2, cat2 string, degree int) ([]CrossCell, error) {
	if e.mo.Dimension(dim1) == nil || e.mo.Dimension(dim2) == nil {
		return nil, nil
	}
	g := qos.NewGuard(ctx)
	vals1, bms1, n, err := e.frozenValueBitmaps(g, dim1, cat1)
	if err != nil {
		return nil, err
	}
	vals2, bms2, _, err := e.frozenValueBitmaps(g, dim2, cat2)
	if err != nil {
		return nil, err
	}
	// Drop empty rows up front (the sequential path skips them before
	// charging the budget).
	keptVals := vals1[:0]
	keptBms := bms1[:0]
	for i, bm := range bms1 {
		if bm.IsEmpty() {
			continue
		}
		if err := g.Facts(int64(bm.Count())); err != nil {
			return nil, fmt.Errorf("storage: cross-count %s/%s: %w", dim1, cat1, err)
		}
		keptVals = append(keptVals, vals1[i])
		keptBms = append(keptBms, bm)
	}
	cols := len(vals2)
	parts := exec.Partitions(n, degree)
	partial := make([][]int, len(parts))
	if err := exec.Run(ctx, nil, degree, len(parts), func(p int) error {
		counts := make([]int, len(keptBms)*cols)
		r := parts[p]
		for i, bm1 := range keptBms {
			for j, bm2 := range bms2 {
				counts[i*cols+j] = bm1.AndCountRange(bm2, r.Lo, r.Hi)
			}
		}
		partial[p] = counts
		return nil
	}); err != nil {
		return nil, err
	}
	var out []CrossCell
	for i, v1 := range keptVals {
		for j, v2 := range vals2 {
			c := 0
			for p := range parts {
				c += partial[p][i*cols+j]
			}
			if c > 0 {
				out = append(out, CrossCell{V1: v1, V2: v2, Count: c})
			}
		}
	}
	sortCells(out)
	return out, nil
}

func sortCells(out []CrossCell) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].V1 != out[j].V1 {
			return out[i].V1 < out[j].V1
		}
		return out[i].V2 < out[j].V2
	})
}

// CrossCountScan answers the same query through the model layer, for
// cross-checking and benchmarking.
func (e *Engine) CrossCountScan(dim1, cat1, dim2, cat2 string) []CrossCell {
	d1 := e.mo.Dimension(dim1)
	d2 := e.mo.Dimension(dim2)
	if d1 == nil || d2 == nil {
		return nil
	}
	var out []CrossCell
	for _, v1 := range d1.CategoryAt(cat1, e.ctx) {
		for _, v2 := range d2.CategoryAt(cat2, e.ctx) {
			n := 0
			for _, f := range e.facts {
				ok1, _ := e.mo.CharacterizedBy(dim1, f, v1, e.ctx)
				if !ok1 {
					continue
				}
				ok2, _ := e.mo.CharacterizedBy(dim2, f, v2, e.ctx)
				if ok2 {
					n++
				}
			}
			if n > 0 {
				out = append(out, CrossCell{V1: v1, V2: v2, Count: n})
			}
		}
	}
	sortCells(out)
	return out
}
