package storage

import "sort"

// CrossCell is one cell of a two-dimensional cross tabulation.
type CrossCell struct {
	V1, V2 string
	Count  int
}

// CrossCount computes the distinct-fact count for every pair of values of
// (dim1 at cat1) × (dim2 at cat2) by intersecting closure bitmaps — the
// bitmap-index acceleration of the star-join/cross-tab query ("diagnosis
// group × area") the case study motivates. Cells with zero facts are
// omitted; the result is sorted by (V1, V2).
func (e *Engine) CrossCount(dim1, cat1, dim2, cat2 string) []CrossCell {
	d1 := e.mo.Dimension(dim1)
	d2 := e.mo.Dimension(dim2)
	if d1 == nil || d2 == nil {
		return nil
	}
	var out []CrossCell
	vals2 := d2.CategoryAt(cat2, e.ctx)
	bms2 := make([]*Bitmap, len(vals2))
	for j, v2 := range vals2 {
		bms2[j] = e.Characterizing(dim2, v2)
	}
	for _, v1 := range d1.CategoryAt(cat1, e.ctx) {
		bm1 := e.Characterizing(dim1, v1)
		if bm1.IsEmpty() {
			continue
		}
		for j, v2 := range vals2 {
			if n := bm1.Clone().And(bms2[j]).Count(); n > 0 {
				out = append(out, CrossCell{V1: v1, V2: v2, Count: n})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].V1 != out[j].V1 {
			return out[i].V1 < out[j].V1
		}
		return out[i].V2 < out[j].V2
	})
	return out
}

// CrossCountScan answers the same query through the model layer, for
// cross-checking and benchmarking.
func (e *Engine) CrossCountScan(dim1, cat1, dim2, cat2 string) []CrossCell {
	d1 := e.mo.Dimension(dim1)
	d2 := e.mo.Dimension(dim2)
	if d1 == nil || d2 == nil {
		return nil
	}
	var out []CrossCell
	for _, v1 := range d1.CategoryAt(cat1, e.ctx) {
		for _, v2 := range d2.CategoryAt(cat2, e.ctx) {
			n := 0
			for _, f := range e.facts {
				ok1, _ := e.mo.CharacterizedBy(dim1, f, v1, e.ctx)
				if !ok1 {
					continue
				}
				ok2, _ := e.mo.CharacterizedBy(dim2, f, v2, e.ctx)
				if ok2 {
					n++
				}
			}
			if n > 0 {
				out = append(out, CrossCell{V1: v1, V2: v2, Count: n})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].V1 != out[j].V1 {
			return out[i].V1 < out[j].V1
		}
		return out[i].V2 < out[j].V2
	})
	return out
}
