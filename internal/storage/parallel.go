package storage

import (
	"context"
	"fmt"

	"mddm/internal/agg"
	"mddm/internal/exec"
	"mddm/internal/qos"
)

// This file holds the partition-parallel evaluation paths of the engine.
// The shape is always the same: freeze a view of the closure bitmaps (one
// lock acquisition, defensive clones — so a concurrent AppendFact cannot
// race with partition workers), split the dense fact universe with
// exec.Partitions, evaluate each partition lock-free on the shared worker
// pool, and merge the partials in ascending partition order. Counts merge
// by integer addition (always exact); sums merge through the mergeable
// partial-aggregate states of internal/agg, which is exact for
// integer-valued measures and differs by at most float re-association
// otherwise. Budget accounting (qos.Guard.Facts) charges the same totals
// as the sequential paths, so a query costs the same no matter its degree.

// frozenValueBitmaps resolves and clones the closure bitmap of every value
// of (dim, cat) — the frozen view partition workers evaluate without
// further locking (so a concurrent AppendFact cannot race with them). It
// returns the values, their bitmaps, and the universe size at freeze time.
func (e *Engine) frozenValueBitmaps(g *qos.Guard, dim, cat string) (vals []string, bms []*Bitmap, n int, err error) {
	d := e.mo.Dimension(dim)
	catVals := d.CategoryAt(cat, e.ctx)
	if err := e.ensureClosures(g, dim, catVals); err != nil {
		return nil, nil, 0, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	di := e.dims[dim]
	n = len(e.facts)
	for _, v := range catVals {
		if err := g.Check(); err != nil {
			return nil, nil, 0, err
		}
		bm := NewBitmap(n)
		if di != nil {
			if c := di.closure[v]; c != nil {
				bm = c.Clone()
			}
		}
		vals = append(vals, v)
		bms = append(bms, bm)
	}
	return vals, bms, n, nil
}

// countDistinctByParallel is the partition-parallel CountDistinctBy: each
// partition popcounts its index range of every value bitmap, and the
// per-partition counts merge by integer addition — the degenerate (always
// exact) merge, so the result is identical to the sequential fold.
func (e *Engine) countDistinctByParallel(ctx context.Context, dim, cat string, degree int) (map[string]int, error) {
	g := qos.NewGuard(ctx)
	vals, bms, n, err := e.frozenValueBitmaps(g, dim, cat)
	if err != nil {
		return nil, err
	}
	mBitmapScans.Add(int64(len(bms)))
	parts := exec.Partitions(n, degree)
	partial := make([][]int, len(parts))
	if err := exec.Run(ctx, nil, degree, len(parts), func(p int) error {
		counts := make([]int, len(bms))
		r := parts[p]
		for j, bm := range bms {
			counts[j] = bm.CountRange(r.Lo, r.Hi)
		}
		partial[p] = counts
		return nil
	}); err != nil {
		return nil, err
	}
	out := map[string]int{}
	for j, v := range vals {
		c := 0
		for p := range parts {
			c += partial[p][j]
		}
		if err := g.Facts(int64(c)); err != nil {
			return nil, fmt.Errorf("storage: count-distinct %s/%s: %w", dim, cat, err)
		}
		if c > 0 {
			out[v] = c
		}
	}
	return out, nil
}

// sumByParallel is the partition-parallel SumBy: the frozen view also
// precomputes the argument values per dense index, each partition folds
// its range into a mergeable SUM state, and partials merge in ascending
// partition order.
func (e *Engine) sumByParallel(ctx context.Context, dim, cat, argDim string, degree int) (map[string]float64, error) {
	g := qos.NewGuard(ctx)
	d := e.mo.Dimension(dim)
	catVals := d.CategoryAt(cat, e.ctx)
	if err := e.ensureClosures(g, dim, catVals); err != nil {
		return nil, err
	}
	e.ensureArgValues(argDim)
	e.mu.RLock()
	di := e.dims[dim]
	n := len(e.facts)
	argVals := e.argCols[argDim]
	var vals []string
	var bms []*Bitmap
	for _, v := range catVals {
		if err := g.Check(); err != nil {
			e.mu.RUnlock()
			return nil, err
		}
		bm := NewBitmap(n)
		if di != nil {
			if c := di.closure[v]; c != nil {
				bm = c.Clone()
			}
		}
		vals = append(vals, v)
		bms = append(bms, bm)
	}
	e.mu.RUnlock()

	mBitmapScans.Add(int64(len(bms)))
	sum := agg.MustLookup("SUM")
	parts := exec.Partitions(n, degree)
	partial := make([][]agg.State, len(parts))
	if err := exec.Run(ctx, nil, degree, len(parts), func(p int) error {
		row := make([]agg.State, len(bms))
		r := parts[p]
		for j, bm := range bms {
			s := sum.State()
			bm.IterateRange(r.Lo, r.Hi, func(i int) bool {
				for _, x := range argVals[i] {
					s.Add(x)
				}
				return true
			})
			row[j] = s
		}
		partial[p] = row
		return nil
	}); err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for j, v := range vals {
		if err := g.Facts(int64(bms[j].Count())); err != nil {
			return nil, fmt.Errorf("storage: sum %s/%s: %w", dim, cat, err)
		}
		acc := sum.State()
		for p := range parts {
			acc.Merge(partial[p][j])
		}
		if x, ok := acc.Finalize(); ok {
			out[v] = x
		}
	}
	return out, nil
}
