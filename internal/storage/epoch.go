package storage

import (
	"sort"
	"sync/atomic"
)

// epochSource issues mutation epochs process-wide. Drawing every
// engine's epochs from one monotone source — rather than a per-engine
// counter — means a rebuilt engine can never reuse an epoch its
// predecessor handed out: a cache entry versioned against the old
// engine stays invalid against the new one even if both have seen the
// same number of mutations.
var epochSource atomic.Uint64

// nextEpoch returns a fresh, never-before-issued epoch (always > 0, so
// callers can use 0 as the "no engine" sentinel).
func nextEpoch() uint64 { return epochSource.Add(1) }

// maxEpochWindows bounds the per-engine epoch journal. 4096 windows is
// hours of sustained appends between two lookups of the same cache
// entry; an entry older than that falls back to invalidation, which is
// always sound.
const maxEpochWindows = 4096

// epochWindow records that when the engine's epoch was `epoch`, exactly
// the first `facts` dense indices existed. Because the only mutation an
// engine survives is AppendFact — builds and restores create fresh
// engines — the fact range [w.facts, len(e.facts)) is precisely what was
// appended after epoch w.epoch: the delta a mergeable cached result
// needs to fold to become current.
type epochWindow struct {
	epoch uint64
	facts int
}

// Epoch returns the engine's current mutation epoch. The epoch moves to
// a fresh process-unique value when the engine is built and after every
// successful AppendFact; readers comparing epochs across those events
// (the result cache's append-driven invalidation) therefore observe a
// change for every mutation, with no ordering assumptions beyond
// equality.
func (e *Engine) Epoch() uint64 { return e.epoch.Load() }

// EpochFacts returns the current epoch and fact count as one consistent
// observation (a lock-free Epoch() then NumFacts() could straddle an
// append). Delta folds bound their range with the `facts` value and tag
// the merged result with the matching `epoch`.
func (e *Engine) EpochFacts() (epoch uint64, facts int) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.epoch.Load(), len(e.facts)
}

// bumpEpoch moves the engine to a fresh epoch and journals the window;
// called with the write lock held at the end of each successful
// mutation.
func (e *Engine) bumpEpoch() {
	e.epoch.Store(nextEpoch())
	e.windows = append(e.windows, epochWindow{epoch: e.epoch.Load(), facts: len(e.facts)})
	if len(e.windows) > maxEpochWindows {
		// Trim in bulk so sustained appends amortize the copy.
		keep := maxEpochWindows / 2
		e.windows = append(e.windows[:0], e.windows[len(e.windows)-keep:]...)
	}
}

// FactsAt reports how many facts the engine held when `epoch` was its
// current epoch, or ok=false when the epoch is not in this engine's
// journal (it belonged to another engine, predates a restart, or was
// trimmed). Epochs in the journal are strictly increasing, so the
// lookup is a binary search.
func (e *Engine) FactsAt(epoch uint64) (int, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.factsAtLocked(epoch)
}

func (e *Engine) factsAtLocked(epoch uint64) (int, bool) {
	i := sort.Search(len(e.windows), func(i int) bool { return e.windows[i].epoch >= epoch })
	if i < len(e.windows) && e.windows[i].epoch == epoch {
		return e.windows[i].facts, true
	}
	return 0, false
}

// DeltaRange resolves the append-only gap between oldEpoch and the
// engine's current state: the dense fact range [lo, hi) appended since
// oldEpoch, plus the epoch that exactly covers [0, hi). ok=false means
// oldEpoch is unknown to this engine and no sound delta exists — the
// caller must fall back to invalidation. The three values are one
// consistent observation under the read lock.
func (e *Engine) DeltaRange(oldEpoch uint64) (lo, hi int, cur uint64, ok bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	lo, ok = e.factsAtLocked(oldEpoch)
	if !ok {
		return 0, 0, 0, false
	}
	return lo, len(e.facts), e.epoch.Load(), true
}
