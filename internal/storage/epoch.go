package storage

import "sync/atomic"

// epochSource issues mutation epochs process-wide. Drawing every
// engine's epochs from one monotone source — rather than a per-engine
// counter — means a rebuilt engine can never reuse an epoch its
// predecessor handed out: a cache entry versioned against the old
// engine stays invalid against the new one even if both have seen the
// same number of mutations.
var epochSource atomic.Uint64

// nextEpoch returns a fresh, never-before-issued epoch (always > 0, so
// callers can use 0 as the "no engine" sentinel).
func nextEpoch() uint64 { return epochSource.Add(1) }

// Epoch returns the engine's current mutation epoch. The epoch moves to
// a fresh process-unique value when the engine is built and after every
// successful AppendFact; readers comparing epochs across those events
// (the result cache's append-driven invalidation) therefore observe a
// change for every mutation, with no ordering assumptions beyond
// equality.
func (e *Engine) Epoch() uint64 { return e.epoch.Load() }

// bumpEpoch moves the engine to a fresh epoch; called with the write
// lock held at the end of each successful mutation.
func (e *Engine) bumpEpoch() { e.epoch.Store(nextEpoch()) }
