package storage

import (
	"fmt"
	"sort"

	"mddm/internal/core"
	"mddm/internal/dimension"
)

// Engine is a read-optimized snapshot of an MO evaluated under a fixed
// context: dense fact indices, per-dimension bitmap indexes of the direct
// fact–dimension pairs, and lazily memoized rollup closures giving, for any
// dimension value e, the bitmap of facts with f ⤳ e. Distinct-count
// aggregation (requirement 4's "count the same patient once per group") is
// a population count on the closure bitmap.
type Engine struct {
	mo    *core.MO
	ctx   dimension.Context
	facts []string
	idx   map[string]int
	dims  map[string]*dimIndex
}

type dimIndex struct {
	direct  map[string]*Bitmap
	closure map[string]*Bitmap
}

// NewEngine builds the indexes for an MO under the given evaluation
// context (time instants and probability thresholds are baked in).
func NewEngine(m *core.MO, ctx dimension.Context) *Engine {
	e := &Engine{
		mo:    m,
		ctx:   ctx,
		facts: m.Facts().IDs(),
		idx:   map[string]int{},
		dims:  map[string]*dimIndex{},
	}
	for i, f := range e.facts {
		e.idx[f] = i
	}
	n := len(e.facts)
	for _, name := range m.Schema().DimensionNames() {
		di := &dimIndex{direct: map[string]*Bitmap{}, closure: map[string]*Bitmap{}}
		r := m.Relation(name)
		for _, p := range r.Pairs() {
			if !ctx.Admits(p.Annot) {
				continue
			}
			bm, ok := di.direct[p.ValueID]
			if !ok {
				bm = NewBitmap(n)
				di.direct[p.ValueID] = bm
			}
			bm.Set(e.idx[p.FactID])
		}
		e.dims[name] = di
	}
	return e
}

// NumFacts returns the number of indexed facts.
func (e *Engine) NumFacts() int { return len(e.facts) }

// FactID returns the fact identity of a dense index.
func (e *Engine) FactID(i int) string { return e.facts[i] }

// Characterizing returns the bitmap of facts with f ⤳ value in the named
// dimension: the direct bitmap unioned with the closures of all direct
// children (memoized; the dimension order is a DAG, so the recursion
// terminates).
func (e *Engine) Characterizing(dim, value string) *Bitmap {
	di, ok := e.dims[dim]
	if !ok {
		return NewBitmap(len(e.facts))
	}
	return e.closure(dim, di, value, map[string]bool{})
}

func (e *Engine) closure(dim string, di *dimIndex, value string, onPath map[string]bool) *Bitmap {
	if bm, ok := di.closure[value]; ok {
		return bm
	}
	if onPath[value] {
		// Defensive: the dimension order is acyclic by construction.
		return NewBitmap(len(e.facts))
	}
	onPath[value] = true
	bm := NewBitmap(len(e.facts))
	if d := di.direct[value]; d != nil {
		bm.Or(d)
	}
	d := e.mo.Dimension(dim)
	if value == dimension.TopValue {
		// ⊤ logically contains every value: union every direct bitmap.
		for _, dbm := range di.direct {
			bm.Or(dbm)
		}
	} else {
		for _, child := range d.Children(value) {
			a, _ := d.EdgeAnnot(child, value)
			if !e.ctx.Admits(a) {
				continue
			}
			bm.Or(e.closure(dim, di, child, onPath))
		}
	}
	delete(onPath, value)
	di.closure[value] = bm
	return bm
}

// CountDistinctBy returns, for every value of the category, the number of
// distinct facts characterized by it — the bitmap-index fast path of
// Example 12's set-count.
func (e *Engine) CountDistinctBy(dim, cat string) map[string]int {
	d := e.mo.Dimension(dim)
	out := map[string]int{}
	for _, v := range d.CategoryAt(cat, e.ctx) {
		if c := e.Characterizing(dim, v).Count(); c > 0 {
			out[v] = c
		}
	}
	return out
}

// CountDistinctScan is the index-free comparator: it answers the same
// query by testing f ⤳ e for every (fact, value) pair through the model
// layer. Benchmarks contrast it with CountDistinctBy.
func (e *Engine) CountDistinctScan(dim, cat string) map[string]int {
	d := e.mo.Dimension(dim)
	out := map[string]int{}
	for _, v := range d.CategoryAt(cat, e.ctx) {
		c := 0
		for _, f := range e.facts {
			if ok, _ := e.mo.CharacterizedBy(dim, f, v, e.ctx); ok {
				c++
			}
		}
		if c > 0 {
			out[v] = c
		}
	}
	return out
}

// SumBy computes SUM of the argument dimension's values per category value
// of the grouping dimension, using the closure bitmaps. Facts with several
// argument values contribute all of them.
func (e *Engine) SumBy(dim, cat, argDim string) map[string]float64 {
	d := e.mo.Dimension(dim)
	vals := e.argValues(argDim)
	out := map[string]float64{}
	for _, v := range d.CategoryAt(cat, e.ctx) {
		sum := 0.0
		any := false
		e.Characterizing(dim, v).Iterate(func(i int) bool {
			for _, x := range vals[i] {
				sum += x
				any = true
			}
			return true
		})
		if any {
			out[v] = sum
		}
	}
	return out
}

// argValues precomputes, per dense fact index, the numeric values of the
// fact in the argument dimension.
func (e *Engine) argValues(argDim string) [][]float64 {
	d := e.mo.Dimension(argDim)
	r := e.mo.Relation(argDim)
	out := make([][]float64, len(e.facts))
	for i, f := range e.facts {
		for _, v := range r.ValuesOf(f) {
			a, _ := r.Annot(f, v)
			if !e.ctx.Admits(a) {
				continue
			}
			if x, ok := d.Numeric(v, e.ctx); ok {
				out[i] = append(out[i], x)
			}
		}
	}
	return out
}

// Values returns the sorted values of a category that characterize at
// least one fact.
func (e *Engine) Values(dim, cat string) []string {
	d := e.mo.Dimension(dim)
	var out []string
	for _, v := range d.CategoryAt(cat, e.ctx) {
		if !e.Characterizing(dim, v).IsEmpty() {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// MO returns the engine's underlying MO.
func (e *Engine) MO() *core.MO { return e.mo }

// Context returns the engine's evaluation context.
func (e *Engine) Context() dimension.Context { return e.ctx }

// String summarizes the engine.
func (e *Engine) String() string {
	return fmt.Sprintf("storage.Engine{%d facts, %d dimensions}", len(e.facts), len(e.dims))
}
