package storage

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mddm/internal/core"
	"mddm/internal/dimension"
	"mddm/internal/exec"
	"mddm/internal/faultinject"
	"mddm/internal/obs"
	"mddm/internal/qos"
)

// Storage metrics. Bitmap scans are counted once per aggregation call
// (folding a local tally), not per fact, so the hot popcount loops stay
// atomic-free; closure expansions count only the memoization cold path —
// after warmup the counter goes quiet, which is itself the signal.
var (
	mEngineBuilds = obs.NewCounter("mddm_storage_engine_builds_total",
		"Engine snapshots built (index construction runs).")
	mClosureExpansions = obs.NewCounter("mddm_storage_closure_expansions_total",
		"Rollup closure bitmaps computed and memoized (cold-path work).")
	mBitmapScans = obs.NewCounter("mddm_storage_bitmap_scans_total",
		"Closure bitmaps scanned (popcounted or iterated) by aggregation paths.")
)

// Engine is a read-optimized snapshot of an MO evaluated under a fixed
// context: dense fact indices, per-dimension bitmap indexes of the direct
// fact–dimension pairs, and lazily memoized rollup closures giving, for any
// dimension value e, the bitmap of facts with f ⤳ e. Distinct-count
// aggregation (requirement 4's "count the same patient once per group") is
// a population count on the closure bitmap.
//
// An Engine is safe for concurrent use: an RWMutex separates the writers
// (index construction, closure memoization, AppendFact, column builds)
// from the readers (every aggregation path), so concurrent queries share
// the lock instead of serializing. Query paths first materialize any
// missing closure bitmaps under the write lock (ensureClosures), then
// aggregate under the read lock over the shared memoized bitmaps; bitmaps
// returned by exported methods are defensive copies, so a caller holding
// a bitmap never races with a concurrent AppendFact.
type Engine struct {
	mo    *core.MO
	ctx   dimension.Context
	mu    sync.RWMutex // guards facts, idx, dims (direct + closure bitmaps), cols, argCols
	facts []string
	idx   map[string]int
	dims  map[string]*dimIndex
	// cols holds the built characterization columns, keyed by
	// (dimension, category); see column.go.
	cols map[string]*column
	// argCols memoizes, per argument dimension, the measure column: dense
	// fact index → the fact's admitted numeric values. Computed once,
	// maintained by AppendFact, shared by every SUM path.
	argCols map[string][][]float64
	// colMin overrides DefaultColumnMinValues when positive: the minimum
	// category cardinality at which a built column is preferred over the
	// per-value bitmap scans.
	colMin int
	// epoch is the engine's mutation epoch (see epoch.go): a fresh
	// process-unique value at build time and after every AppendFact.
	// Atomic so Epoch() never takes the engine lock.
	epoch atomic.Uint64
	// windows journals (epoch, fact count) pairs so delta maintenance can
	// resolve "what was appended since epoch E" (see epoch.go); guarded
	// by mu, appended by bumpEpoch.
	windows []epochWindow
}

type dimIndex struct {
	direct  map[string]*Bitmap
	closure map[string]*Bitmap
}

// ErrUnknownFact reports a fact–dimension pair whose fact identity is not
// in the MO's fact set. Before this validation existed, such a pair was
// silently attributed to dense index 0, corrupting the first fact's
// bitmaps.
var ErrUnknownFact = errors.New("storage: fact-dimension pair references unknown fact")

// UnknownFactError carries the offending pair; errors.Is(err,
// ErrUnknownFact) holds.
type UnknownFactError struct {
	Dim     string
	FactID  string
	ValueID string
}

// Error implements error.
func (e *UnknownFactError) Error() string {
	return fmt.Sprintf("storage: dimension %q relates unknown fact %q to value %q", e.Dim, e.FactID, e.ValueID)
}

// Is reports target == ErrUnknownFact.
func (e *UnknownFactError) Is(target error) bool { return target == ErrUnknownFact }

// BuildEngine builds the indexes for an MO under the given evaluation
// context (time instants and probability thresholds are baked in). It is
// the cancellation-aware, validating constructor: the pair scan checks
// ctx cooperatively, every fact–dimension pair must reference a known
// fact identity (returning an UnknownFactError otherwise), and the
// faultinject.EngineBuild point is honored for robustness tests.
func BuildEngine(ctx context.Context, m *core.MO, ectx dimension.Context) (*Engine, error) {
	if err := faultinject.Check(faultinject.EngineBuild); err != nil {
		return nil, fmt.Errorf("storage: engine build: %w", err)
	}
	g := qos.NewGuard(ctx)
	if err := g.CheckNow(); err != nil {
		return nil, fmt.Errorf("storage: engine build: %w", err)
	}
	e := &Engine{
		mo:    m,
		ctx:   ectx,
		facts: m.Facts().IDs(),
		idx:   map[string]int{},
		dims:  map[string]*dimIndex{},
	}
	for i, f := range e.facts {
		e.idx[f] = i
	}
	n := len(e.facts)
	for _, name := range m.Schema().DimensionNames() {
		di := &dimIndex{direct: map[string]*Bitmap{}, closure: map[string]*Bitmap{}}
		r := m.Relation(name)
		for _, p := range r.Pairs() {
			if err := g.Facts(1); err != nil {
				return nil, fmt.Errorf("storage: engine build: %w", err)
			}
			i, known := e.idx[p.FactID]
			if !known {
				return nil, &UnknownFactError{Dim: name, FactID: p.FactID, ValueID: p.ValueID}
			}
			if !ectx.Admits(p.Annot) {
				continue
			}
			bm, ok := di.direct[p.ValueID]
			if !ok {
				bm = NewBitmap(n)
				di.direct[p.ValueID] = bm
			}
			bm.Set(i)
		}
		e.dims[name] = di
	}
	e.bumpEpoch()
	mEngineBuilds.Inc()
	return e, nil
}

// NewEngine is BuildEngine without cancellation, for embedded datasets and
// tests whose MOs are valid by construction; it panics on the validation
// errors BuildEngine reports (a programmer-error invariant at this call
// site — serving paths use BuildEngine and handle the error).
func NewEngine(m *core.MO, ectx dimension.Context) *Engine {
	e, err := BuildEngine(context.Background(), m, ectx)
	if err != nil {
		panic(err)
	}
	return e
}

// NumFacts returns the number of indexed facts.
func (e *Engine) NumFacts() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.facts)
}

// FactID returns the fact identity of a dense index.
func (e *Engine) FactID(i int) string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.facts[i]
}

// Characterizing returns the bitmap of facts with f ⤳ value in the named
// dimension: the direct bitmap unioned with the closures of all direct
// children (memoized; the dimension order is a DAG, so the recursion
// terminates). The returned bitmap is a copy owned by the caller.
func (e *Engine) Characterizing(dim, value string) *Bitmap {
	bm, _ := e.characterizingClone(nil, dim, value) // nil guard: cannot fail
	return bm
}

// CharacterizingContext is Characterizing with cooperative cancellation
// and the faultinject.ClosureExpand robustness hook.
func (e *Engine) CharacterizingContext(ctx context.Context, dim, value string) (*Bitmap, error) {
	if err := faultinject.Check(faultinject.ClosureExpand); err != nil {
		return nil, fmt.Errorf("storage: closure expand: %w", err)
	}
	return e.characterizingClone(qos.NewGuard(ctx), dim, value)
}

// characterizingClone materializes one closure bitmap (write-locking only
// on a cold miss) and returns a caller-owned clone taken under the read
// lock.
func (e *Engine) characterizingClone(g *qos.Guard, dim, value string) (*Bitmap, error) {
	if err := e.ensureClosures(g, dim, []string{value}); err != nil {
		return nil, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if di := e.dims[dim]; di != nil {
		if bm := di.closure[value]; bm != nil {
			return bm.Clone(), nil
		}
	}
	return NewBitmap(len(e.facts)), nil
}

// ensureClosures materializes the closure bitmaps of the given values so
// the aggregation paths can run entirely under the read lock. The common
// case — every closure already memoized — takes only an RLock; a cold
// miss upgrades to the write lock and computes every missing closure.
// Nothing evicts memoized closures, so after this returns nil the read
// paths can rely on di.closure[v] being present for every v.
func (e *Engine) ensureClosures(g *qos.Guard, dim string, vals []string) error {
	e.mu.RLock()
	di := e.dims[dim]
	missing := false
	if di != nil {
		for _, v := range vals {
			if _, ok := di.closure[v]; !ok {
				missing = true
				break
			}
		}
	}
	e.mu.RUnlock()
	if di == nil || !missing {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, v := range vals {
		if _, ok := di.closure[v]; ok {
			continue
		}
		if _, err := e.closure(g, dim, di, v, map[string]bool{}); err != nil {
			return err
		}
	}
	return nil
}

// closure resolves and memoizes one closure bitmap; the caller holds the
// write lock (memoization mutates di.closure). The returned bitmap is the
// shared memoized instance.
func (e *Engine) closure(g *qos.Guard, dim string, di *dimIndex, value string, onPath map[string]bool) (*Bitmap, error) {
	if bm, ok := di.closure[value]; ok {
		return bm, nil
	}
	if err := g.Check(); err != nil {
		return nil, fmt.Errorf("storage: closure expand: %w", err)
	}
	if onPath[value] {
		// Defensive: the dimension order is acyclic by construction.
		return NewBitmap(len(e.facts)), nil
	}
	onPath[value] = true
	bm := NewBitmap(len(e.facts))
	if d := di.direct[value]; d != nil {
		bm.Or(d)
	}
	d := e.mo.Dimension(dim)
	if value == dimension.TopValue {
		// ⊤ logically contains every value: union every direct bitmap.
		for _, dbm := range di.direct {
			bm.Or(dbm)
		}
	} else {
		for _, child := range d.Children(value) {
			a, _ := d.EdgeAnnot(child, value)
			if !e.ctx.Admits(a) {
				continue
			}
			cbm, err := e.closure(g, dim, di, child, onPath)
			if err != nil {
				return nil, err
			}
			bm.Or(cbm)
		}
	}
	delete(onPath, value)
	di.closure[value] = bm
	mClosureExpansions.Inc()
	return bm, nil
}

// CountDistinctBy returns, for every value of the category, the number of
// distinct facts characterized by it — the bitmap-index fast path of
// Example 12's set-count.
func (e *Engine) CountDistinctBy(dim, cat string) map[string]int {
	out, _ := e.CountDistinctByContext(context.Background(), dim, cat) // background ctx: cannot fail
	return out
}

// CountDistinctByContext is CountDistinctBy with cooperative cancellation
// and fact-budget accounting. The kernel is selected by the cost
// heuristic: a built characterization column with at least
// ColumnMinValues values answers in one O(facts) pass (CountByColumn);
// otherwise the per-value closure bitmaps are scanned. When the context
// carries a parallelism degree above 1 (exec.WithParallelism), either
// kernel evaluates partition-parallel; the result and the budget charged
// are identical across kernels and degrees.
func (e *Engine) CountDistinctByContext(ctx context.Context, dim, cat string) (map[string]int, error) {
	if col := e.columnFor(dim, cat); col != nil {
		mKernelColumn.Inc()
		return e.countByColumn(ctx, qos.NewGuard(ctx), col)
	}
	mKernelBitmap.Inc()
	if deg := exec.DegreeFrom(ctx); deg > 1 {
		return e.countDistinctByParallel(ctx, dim, cat, deg)
	}
	return e.countDistinctBy(qos.NewGuard(ctx), dim, cat)
}

func (e *Engine) countDistinctBy(g *qos.Guard, dim, cat string) (map[string]int, error) {
	d := e.mo.Dimension(dim)
	vals := d.CategoryAt(cat, e.ctx)
	if err := e.ensureClosures(g, dim, vals); err != nil {
		return nil, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	di := e.dims[dim]
	out := make(map[string]int, len(vals))
	scanned := int64(0)
	for _, v := range vals {
		if err := g.Check(); err != nil {
			return nil, err
		}
		c := 0
		if di != nil {
			if bm := di.closure[v]; bm != nil {
				scanned++
				c = bm.Count()
			}
		}
		if err := g.Facts(int64(c)); err != nil {
			return nil, fmt.Errorf("storage: count-distinct %s/%s: %w", dim, cat, err)
		}
		if c > 0 {
			out[v] = c
		}
	}
	mBitmapScans.Add(scanned)
	return out, nil
}

// CountDistinctScan is the index-free comparator: it answers the same
// query by testing f ⤳ e for every (fact, value) pair through the model
// layer. Benchmarks contrast it with CountDistinctBy.
func (e *Engine) CountDistinctScan(dim, cat string) map[string]int {
	d := e.mo.Dimension(dim)
	e.mu.RLock()
	facts := append([]string(nil), e.facts...)
	e.mu.RUnlock()
	out := map[string]int{}
	for _, v := range d.CategoryAt(cat, e.ctx) {
		c := 0
		for _, f := range facts {
			if ok, _ := e.mo.CharacterizedBy(dim, f, v, e.ctx); ok {
				c++
			}
		}
		if c > 0 {
			out[v] = c
		}
	}
	return out
}

// SumBy computes SUM of the argument dimension's values per category value
// of the grouping dimension, using the closure bitmaps. Facts with several
// argument values contribute all of them.
func (e *Engine) SumBy(dim, cat, argDim string) map[string]float64 {
	out, _ := e.SumByContext(context.Background(), dim, cat, argDim) // background ctx: cannot fail
	return out
}

// SumByContext is SumBy with cooperative cancellation. The kernel is
// selected like CountDistinctByContext's (column single-pass when a
// large-enough column is built, per-value bitmap scans otherwise). A
// context-carried parallelism degree above 1 evaluates
// partition-parallel, merging per-partition sums in ascending partition
// order — exact for integer-valued measures, identical across kernels.
func (e *Engine) SumByContext(ctx context.Context, dim, cat, argDim string) (map[string]float64, error) {
	if col := e.columnFor(dim, cat); col != nil {
		mKernelColumn.Inc()
		return e.sumByColumn(ctx, qos.NewGuard(ctx), col, argDim)
	}
	mKernelBitmap.Inc()
	if deg := exec.DegreeFrom(ctx); deg > 1 {
		return e.sumByParallel(ctx, dim, cat, argDim, deg)
	}
	return e.sumBy(qos.NewGuard(ctx), dim, cat, argDim)
}

func (e *Engine) sumBy(g *qos.Guard, dim, cat, argDim string) (map[string]float64, error) {
	d := e.mo.Dimension(dim)
	catVals := d.CategoryAt(cat, e.ctx)
	if err := e.ensureClosures(g, dim, catVals); err != nil {
		return nil, err
	}
	e.ensureArgValues(argDim)
	e.mu.RLock()
	defer e.mu.RUnlock()
	di := e.dims[dim]
	vals := e.argCols[argDim]
	out := make(map[string]float64, len(catVals))
	scanned := int64(0)
	empty := NewBitmap(0)
	for _, v := range catVals {
		if err := g.Check(); err != nil {
			return nil, err
		}
		bm := empty
		if di != nil {
			if c := di.closure[v]; c != nil {
				bm = c
			}
		}
		if err := g.Facts(int64(bm.Count())); err != nil {
			return nil, fmt.Errorf("storage: sum %s/%s: %w", dim, cat, err)
		}
		scanned++
		sum := 0.0
		any := false
		bm.Iterate(func(i int) bool {
			for _, x := range vals[i] {
				sum += x
				any = true
			}
			return true
		})
		if any {
			out[v] = sum
		}
	}
	mBitmapScans.Add(scanned)
	return out, nil
}

// ensureArgValues memoizes the measure column of argDim so the SUM paths
// read a prebuilt dense array instead of re-walking the fact–dimension
// relation per query. Like closure memoization this is infrastructure
// work: computed once under the write lock, extended by AppendFact, and
// charged to no query's fact budget. The caller must not hold e.mu; the
// column is then read from e.argCols under the read lock, so it stays
// consistent with the closure bitmaps and characterization columns
// captured in the same critical section.
func (e *Engine) ensureArgValues(argDim string) {
	e.mu.RLock()
	_, ok := e.argCols[argDim]
	e.mu.RUnlock()
	if ok {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.argCols[argDim]; ok {
		return
	}
	if e.argCols == nil {
		e.argCols = map[string][][]float64{}
	}
	e.argCols[argDim] = e.argValues(argDim)
}

// argValues computes, per dense fact index, the numeric values of the
// fact in the argument dimension — the memoization cold path of
// ensureArgValues. The caller holds e.mu (read or write).
func (e *Engine) argValues(argDim string) [][]float64 {
	d := e.mo.Dimension(argDim)
	r := e.mo.Relation(argDim)
	out := make([][]float64, len(e.facts))
	for i, f := range e.facts {
		for _, v := range r.ValuesOf(f) {
			a, _ := r.Annot(f, v)
			if !e.ctx.Admits(a) {
				continue
			}
			if x, ok := d.Numeric(v, e.ctx); ok {
				out[i] = append(out[i], x)
			}
		}
	}
	return out
}

// Values returns the sorted values of a category that characterize at
// least one fact.
func (e *Engine) Values(dim, cat string) []string {
	d := e.mo.Dimension(dim)
	vals := d.CategoryAt(cat, e.ctx)
	_ = e.ensureClosures(nil, dim, vals) // nil guard: cannot fail
	e.mu.RLock()
	defer e.mu.RUnlock()
	di := e.dims[dim]
	var out []string
	for _, v := range vals {
		if di == nil {
			break
		}
		if bm := di.closure[v]; bm != nil && !bm.IsEmpty() {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// MO returns the engine's underlying MO.
func (e *Engine) MO() *core.MO { return e.mo }

// Context returns the engine's evaluation context.
func (e *Engine) Context() dimension.Context { return e.ctx }

// String summarizes the engine.
func (e *Engine) String() string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return fmt.Sprintf("storage.Engine{%d facts, %d dimensions}", len(e.facts), len(e.dims))
}
