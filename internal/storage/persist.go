package storage

import (
	"errors"
	"fmt"
	"sort"

	"mddm/internal/core"
	"mddm/internal/dimension"
)

// This file is the persistence seam of the engine: it exports the built
// characterization columns in a stable, validated interchange form and
// installs persisted columns back into a freshly loaded engine. The
// on-disk format itself lives in internal/segment; storage only promises
// that ColumnData → InstallColumn round-trips to an engine whose kernels
// answer bit-identically to one that built its columns from the closure
// bitmaps. Installation is defensive — persisted artifacts are untrusted
// input (a checksum match does not prove semantic fit against the live
// MO), so every invariant the kernels rely on is re-checked and a
// mismatch is a typed rejection, never a panic or a silently wrong
// column.

// OverflowEntry is one (fact, value-id) overflow pair of a persisted
// characterization column: Fact is the dense fact index, Vid the
// dictionary index. The overflow table is sorted by (Fact, Vid).
type OverflowEntry struct {
	Fact int
	Vid  uint32
}

// ErrBadColumn reports persisted column data that does not fit the live
// engine (dictionary drift, out-of-range codes, unsorted or dangling
// overflow entries). Callers treat the artifact as invalid and fall back
// to building columns from the closure bitmaps.
var ErrBadColumn = errors.New("storage: persisted column rejected")

// ColSentinelNone and ColSentinelMulti are the persisted code sentinels,
// re-exported so the on-disk format and its fuzzers can name them.
const (
	ColSentinelNone  = colNone
	ColSentinelMulti = colMulti
)

// ExportFacts returns a copy of the engine's dense fact order — the
// positional frame of reference every persisted column and bitmap uses.
func (e *Engine) ExportFacts() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]string(nil), e.facts...)
}

// RestoreEngine builds an engine from a persisted dense fact order and
// per-dimension direct bitmaps, skipping BuildEngine's full pair scan.
// The caller (the segment package's snapshot restore) guarantees the
// bitmaps were derived by admitting each persisted pair under ectx —
// exactly the filter BuildEngine applies — so a restored engine answers
// every query identically to a rebuilt one. What restore re-checks here
// is positional integrity: facts must exactly cover the MO's fact set
// with no duplicates (a permuted or partial order would silently
// misattribute every bitmap bit), and every bitmap dimension must exist
// in the schema. facts and dims are retained; the caller must not
// mutate them afterwards.
func RestoreEngine(m *core.MO, ectx dimension.Context, facts []string, perDim map[string]map[string]*Bitmap) (*Engine, error) {
	if m.Facts().Len() != len(facts) {
		return nil, fmt.Errorf("storage: restore: %d facts provided, MO holds %d", len(facts), m.Facts().Len())
	}
	e := &Engine{
		mo:    m,
		ctx:   ectx,
		facts: facts,
		idx:   make(map[string]int, len(facts)),
		dims:  map[string]*dimIndex{},
	}
	for i, f := range facts {
		if _, dup := e.idx[f]; dup {
			return nil, fmt.Errorf("storage: restore: duplicate fact %q", f)
		}
		if !m.Facts().Has(f) {
			return nil, fmt.Errorf("storage: restore: fact %q not in the MO", f)
		}
		e.idx[f] = i
	}
	names := m.Schema().DimensionNames()
	known := make(map[string]bool, len(names))
	for _, name := range names {
		known[name] = true
	}
	for name := range perDim {
		if !known[name] {
			return nil, fmt.Errorf("storage: restore: bitmaps for unknown dimension %q", name)
		}
	}
	for _, name := range names {
		direct := perDim[name]
		if direct == nil {
			direct = map[string]*Bitmap{}
		}
		e.dims[name] = &dimIndex{direct: direct, closure: map[string]*Bitmap{}}
	}
	e.bumpEpoch()
	mEngineBuilds.Inc()
	return e, nil
}

// BuiltColumns lists the (dimension, category) pairs with a built
// characterization column, sorted, regardless of the selection threshold.
func (e *Engine) BuiltColumns() [][2]string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([][2]string, 0, len(e.cols))
	for _, col := range e.cols {
		out = append(out, [2]string{col.dim, col.cat})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// ColumnData exports the built column of (dim, cat) in interchange form:
// the dictionary in CategoryAt order, the dense codes (including the
// colNone/colMulti sentinels), and the sorted overflow side-table. The
// returned slices are copies owned by the caller. ok is false when no
// column is built.
func (e *Engine) ColumnData(dim, cat string) (vals []string, codes []uint32, over []OverflowEntry, ok bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	col := e.cols[colKey(dim, cat)]
	if col == nil {
		return nil, nil, nil, false
	}
	vals = append([]string(nil), col.vals...)
	codes = append([]uint32(nil), col.codes...)
	over = make([]OverflowEntry, len(col.over))
	for i, p := range col.over {
		over[i] = OverflowEntry{Fact: p.fact, Vid: p.vid}
	}
	return vals, codes, over, true
}

// InstallColumn installs a persisted characterization column, validating
// it against the live engine first: the dictionary must be exactly the
// category's CategoryAt order (dictionary drift would silently relabel
// every group), codes must be in-range or sentinels, and the overflow
// table must be sorted by (fact, vid) with every entry belonging to a
// colMulti fact and every colMulti fact owning at least two entries —
// the invariants the single-pass kernels assume. codes may cover a
// prefix of the engine's facts (a checkpoint older than the log tail);
// the remaining facts are appended through the same maintenance path
// AppendFact uses, so an installed column is element-for-element
// identical to a rebuilt one. Installing over an already built column is
// a no-op (the built one is already correct). Violations return
// ErrBadColumn-wrapped errors and leave the engine untouched.
//
// codes and over are retained by the engine; callers must not mutate
// them afterwards. They may be views over read-only storage (an mmap'd
// segment): the engine only ever appends to them, and an append copies
// to fresh memory because the views are handed over with len == cap.
func (e *Engine) InstallColumn(dim, cat string, vals []string, codes []uint32, over []OverflowEntry) error {
	d := e.mo.Dimension(dim)
	if d == nil {
		return fmt.Errorf("%w: unknown dimension %q", ErrBadColumn, dim)
	}
	want := d.CategoryAt(cat, e.ctx)
	if len(want) != len(vals) {
		return fmt.Errorf("%w: %s/%s dictionary has %d values, category has %d",
			ErrBadColumn, dim, cat, len(vals), len(want))
	}
	for i, v := range want {
		if vals[i] != v {
			return fmt.Errorf("%w: %s/%s dictionary drift at %d: %q != %q",
				ErrBadColumn, dim, cat, i, vals[i], v)
		}
	}
	if uint64(len(vals)) >= uint64(colMulti) {
		return fmt.Errorf("%w: %s/%s: %d values exceed the uint32 dictionary", ErrBadColumn, dim, cat, len(vals))
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(codes) > len(e.facts) {
		return fmt.Errorf("%w: %s/%s covers %d facts, engine has %d",
			ErrBadColumn, dim, cat, len(codes), len(e.facts))
	}
	nv := uint32(len(vals))
	oc := 0
	for i, c := range codes {
		switch {
		case c == colNone:
		case c == colMulti:
			// Every colMulti fact must own a sorted run of ≥2 in-range
			// overflow entries; the cursor walk also rejects entries for
			// non-multi facts (they would be skipped here and caught below).
			run := 0
			var prev uint32
			for oc < len(over) && over[oc].Fact == i {
				en := over[oc]
				if en.Vid >= nv {
					return fmt.Errorf("%w: %s/%s overflow vid %d out of range at fact %d",
						ErrBadColumn, dim, cat, en.Vid, i)
				}
				if run > 0 && en.Vid <= prev {
					return fmt.Errorf("%w: %s/%s overflow not sorted at fact %d", ErrBadColumn, dim, cat, i)
				}
				prev = en.Vid
				run++
				oc++
			}
			if run < 2 {
				return fmt.Errorf("%w: %s/%s fact %d is colMulti with %d overflow entries",
					ErrBadColumn, dim, cat, i, run)
			}
		case c >= nv:
			return fmt.Errorf("%w: %s/%s code %d out of range at fact %d", ErrBadColumn, dim, cat, c, i)
		}
		if oc < len(over) && over[oc].Fact <= i {
			return fmt.Errorf("%w: %s/%s overflow entry for non-multi or out-of-order fact %d",
				ErrBadColumn, dim, cat, over[oc].Fact)
		}
	}
	if oc != len(over) {
		return fmt.Errorf("%w: %s/%s has %d dangling overflow entries", ErrBadColumn, dim, cat, len(over)-oc)
	}
	if e.cols == nil {
		e.cols = map[string]*column{}
	}
	if e.cols[colKey(dim, cat)] != nil {
		return nil
	}
	col := &column{
		dim:   dim,
		cat:   cat,
		vals:  append([]string(nil), vals...),
		vid:   make(map[string]uint32, len(vals)),
		codes: codes[:len(codes):len(codes)],
	}
	for j, v := range col.vals {
		col.vid[v] = uint32(j)
	}
	col.over = make([]overPair, len(over))
	for i, p := range over {
		col.over[i] = overPair{fact: p.Fact, vid: p.Vid}
	}
	// Extend to the engine's current facts through the same maintenance
	// path AppendFact uses, so a checkpoint older than the log tail still
	// yields a column identical to a rebuilt one.
	for i := len(codes); i < len(e.facts); i++ {
		e.appendToColumn(col, e.facts[i], i)
	}
	e.cols[colKey(dim, cat)] = col
	mColumnBuilds.Inc()
	return nil
}
