package storage

import (
	"fmt"
	"sort"
	"strings"

	"mddm/internal/dimension"
)

// This file implements cube materialization over one dimension's category
// lattice: the §3.4 payoff of summarizability is that only a subset of the
// possible aggregates needs precomputing — every category whose mapping
// from a materialized lower category passes the reuse guard can be derived
// on the fly, while "unsafe" categories must be computed from base data.
// The advisor classifies each category; Build materializes accordingly.

// CubePlanEntry is the advisor's verdict for one category.
type CubePlanEntry struct {
	Cat string
	// DeriveFrom is the lower materialized category this category can be
	// safely combined from; empty when it must be computed from base.
	DeriveFrom string
	// Reason explains a from-base verdict (guard failure description).
	Reason string
}

// CubePlan is the materialization plan for one dimension and aggregate
// kind: categories in bottom-up order with their derivation verdicts.
type CubePlan struct {
	Dim     string
	Kind    AggKind
	Arg     string
	Entries []CubePlanEntry
}

// PlanCube classifies every category of the dimension (bottom-up,
// excluding ⊤): the bottom is always computed from base; each higher
// category derives from the highest already-planned category below it that
// passes the reuse guard, otherwise from base.
func (c *Cache) PlanCube(dim string, kind AggKind, arg string) (*CubePlan, error) {
	d := c.engine.mo.Dimension(dim)
	if d == nil {
		return nil, fmt.Errorf("storage: unknown dimension %q", dim)
	}
	dt := d.Type()
	plan := &CubePlan{Dim: dim, Kind: kind, Arg: arg}
	cats := dt.CategoryTypes()
	var planned []string
	for _, cat := range cats {
		if cat == dimension.TopName {
			continue
		}
		entry := CubePlanEntry{Cat: cat}
		if cat != dt.Bottom() {
			// Candidates: already planned categories strictly below cat,
			// most specific (closest) first.
			var best string
			var reason string
			for i := len(planned) - 1; i >= 0; i-- {
				lower := planned[i]
				if !dt.LessEq(lower, cat) || lower == cat {
					continue
				}
				if err := c.guardCached(dim, lower, cat, kind); err != nil {
					reason = err.Error()
					continue
				}
				best = lower
				break
			}
			entry.DeriveFrom = best
			if best == "" {
				entry.Reason = reason
				if reason == "" {
					entry.Reason = "no materialized category below"
				}
			}
		}
		plan.Entries = append(plan.Entries, entry)
		planned = append(planned, cat)
	}
	return plan, nil
}

// BuildCube executes a plan: base categories are materialized directly;
// derivable categories are combined from their source materialization. The
// result maps category → value → aggregate.
func (c *Cache) BuildCube(plan *CubePlan) (map[string]map[string]float64, error) {
	out := map[string]map[string]float64{}
	d := c.engine.mo.Dimension(plan.Dim)
	for _, e := range plan.Entries {
		if e.DeriveFrom == "" {
			m, err := c.Materialize(plan.Dim, e.Cat, plan.Kind, plan.Arg)
			if err != nil {
				return nil, err
			}
			out[e.Cat] = m.Rows
			continue
		}
		src, ok := out[e.DeriveFrom]
		if !ok {
			return nil, fmt.Errorf("storage: plan derives %s from unbuilt %s", e.Cat, e.DeriveFrom)
		}
		rows := map[string]float64{}
		for v, x := range src {
			for _, up := range d.AncestorsIn(e.Cat, v, c.engine.ctx) {
				rows[up] += x
			}
		}
		out[e.Cat] = rows
		c.mu.Lock()
		c.mats[key(plan.Dim, e.Cat, plan.Kind, plan.Arg)] = &Materialization{
			Dim: plan.Dim, Cat: e.Cat, Kind: plan.Kind, Arg: plan.Arg, Rows: rows,
		}
		c.Hits++
		c.mu.Unlock()
	}
	return out, nil
}

// String renders the plan.
func (p *CubePlan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cube plan for %s (%s", p.Dim, p.Kind)
	if p.Arg != "" {
		fmt.Fprintf(&b, " of %s", p.Arg)
	}
	b.WriteString("):\n")
	for _, e := range p.Entries {
		switch {
		case e.DeriveFrom != "":
			fmt.Fprintf(&b, "  %-24s derive from %s\n", e.Cat, e.DeriveFrom)
		case e.Reason != "":
			fmt.Fprintf(&b, "  %-24s from base (%s)\n", e.Cat, e.Reason)
		default:
			fmt.Fprintf(&b, "  %-24s from base\n", e.Cat)
		}
	}
	return b.String()
}

// DerivableCategories returns the sorted categories the plan derives
// rather than recomputes — the "relevant selection of the possible
// aggregates" of §3.4.
func (p *CubePlan) DerivableCategories() []string {
	var out []string
	for _, e := range p.Entries {
		if e.DeriveFrom != "" {
			out = append(out, e.Cat)
		}
	}
	sort.Strings(out)
	return out
}
