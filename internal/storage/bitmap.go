// Package storage implements the special-purpose data structures the paper
// defers to future work ("how the model can be efficiently implemented
// using special-purpose algorithms and data structures"): dense fact and
// value dictionaries, bitmap indexes over the characterization relation
// f ⤳ e, memoized rollup closures over the dimension lattices, and a
// pre-aggregate cache guarded by the summarizability conditions of §3.4 —
// the guard decides whether a cached lower-level aggregate may be combined
// into a higher-level one or the engine must recompute from base data.
package storage

import (
	"math/bits"
)

// Bitmap is an uncompressed bitmap over dense fact indices.
type Bitmap struct {
	words []uint64
	n     int // universe size in bits
}

// NewBitmap returns an empty bitmap over a universe of n facts.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the universe size.
func (b *Bitmap) Len() int { return b.n }

// Set marks fact i.
func (b *Bitmap) Set(i int) {
	if i < 0 || i >= b.n {
		return
	}
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// Has reports whether fact i is marked.
func (b *Bitmap) Has(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of marked facts (population count).
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// CountRange returns the population count within the half-open index
// range [lo, hi) — the per-partition evaluation primitive of the parallel
// execution engine. Out-of-universe bounds are clamped.
func (b *Bitmap) CountRange(lo, hi int) int {
	lo, hi = b.clamp(lo, hi)
	if lo >= hi {
		return 0
	}
	c := 0
	lw, hw := lo>>6, (hi-1)>>6
	for wi := lw; wi <= hw; wi++ {
		w := b.words[wi]
		if wi == lw {
			w &= ^uint64(0) << (uint(lo) & 63)
		}
		if wi == hw && hi&63 != 0 {
			w &= ^uint64(0) >> (64 - uint(hi)&63)
		}
		c += bits.OnesCount64(w)
	}
	return c
}

// AndCountRange returns |b ∧ o| within [lo, hi) without materializing the
// intersection — the zero-allocation cross-tab cell primitive.
func (b *Bitmap) AndCountRange(o *Bitmap, lo, hi int) int {
	lo, hi = b.clamp(lo, hi)
	if lo >= hi {
		return 0
	}
	c := 0
	lw, hw := lo>>6, (hi-1)>>6
	for wi := lw; wi <= hw; wi++ {
		var ow uint64
		if wi < len(o.words) {
			ow = o.words[wi]
		}
		w := b.words[wi] & ow
		if wi == lw {
			w &= ^uint64(0) << (uint(lo) & 63)
		}
		if wi == hw && hi&63 != 0 {
			w &= ^uint64(0) >> (64 - uint(hi)&63)
		}
		c += bits.OnesCount64(w)
	}
	return c
}

// clamp bounds [lo, hi) to the universe.
func (b *Bitmap) clamp(lo, hi int) (int, int) {
	if lo < 0 {
		lo = 0
	}
	if hi > b.n {
		hi = b.n
	}
	return lo, hi
}

// Or folds the other bitmap into this one (in place) and returns the
// receiver.
func (b *Bitmap) Or(o *Bitmap) *Bitmap {
	for i := range b.words {
		if i < len(o.words) {
			b.words[i] |= o.words[i]
		}
	}
	return b
}

// And intersects in place and returns the receiver.
func (b *Bitmap) And(o *Bitmap) *Bitmap {
	for i := range b.words {
		if i < len(o.words) {
			b.words[i] &= o.words[i]
		} else {
			b.words[i] = 0
		}
	}
	return b
}

// AndInto sets the receiver to x ∧ y, reusing the receiver's storage — the
// scratch-bitmap operation the cross-tab hot path uses instead of
// allocating a clone per cell pair. The receiver's universe is resized to
// x's; x and y are not modified (the receiver must not alias either).
func (b *Bitmap) AndInto(x, y *Bitmap) *Bitmap {
	nw := len(x.words)
	if cap(b.words) < nw {
		b.words = make([]uint64, nw)
	}
	b.words = b.words[:nw]
	b.n = x.n
	for i := range b.words {
		var yw uint64
		if i < len(y.words) {
			yw = y.words[i]
		}
		b.words[i] = x.words[i] & yw
	}
	return b
}

// Fill marks every fact in the universe and returns the receiver — the
// complement seed for NOT predicates (full ∧¬ base).
func (b *Bitmap) Fill() *Bitmap {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	if r := uint(b.n) & 63; r != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= ^uint64(0) >> (64 - r)
	}
	return b
}

// AndNot removes o's bits in place and returns the receiver.
func (b *Bitmap) AndNot(o *Bitmap) *Bitmap {
	for i := range b.words {
		if i < len(o.words) {
			b.words[i] &^= o.words[i]
		}
	}
	return b
}

// Equal reports whether b and o mark the same facts over the same
// universe.
func (b *Bitmap) Equal(o *Bitmap) bool {
	if b == nil || o == nil {
		return b == o
	}
	if b.n != o.n {
		return false
	}
	for i, w := range b.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Clone copies the bitmap.
func (b *Bitmap) Clone() *Bitmap {
	c := &Bitmap{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// IsEmpty reports whether no fact is marked.
func (b *Bitmap) IsEmpty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Iterate calls fn for every marked fact index in ascending order; fn
// returning false stops the iteration.
func (b *Bitmap) Iterate(fn func(i int) bool) {
	for wi, w := range b.words {
		base := wi << 6
		for w != 0 {
			if !fn(base + bits.TrailingZeros64(w)) {
				return
			}
			w &= w - 1
		}
	}
}

// IterateRange calls fn for every marked index in [lo, hi) in ascending
// order; fn returning false stops the iteration.
func (b *Bitmap) IterateRange(lo, hi int, fn func(i int) bool) {
	lo, hi = b.clamp(lo, hi)
	if lo >= hi {
		return
	}
	lw, hw := lo>>6, (hi-1)>>6
	for wi := lw; wi <= hw; wi++ {
		w := b.words[wi]
		if wi == lw {
			w &= ^uint64(0) << (uint(lo) & 63)
		}
		if wi == hw && hi&63 != 0 {
			w &= ^uint64(0) >> (64 - uint(hi)&63)
		}
		base := wi << 6
		for w != 0 {
			if !fn(base + bits.TrailingZeros64(w)) {
				return
			}
			w &= w - 1
		}
	}
}

// Indices returns the marked fact indices.
func (b *Bitmap) Indices() []int {
	out := make([]int, 0, b.Count())
	b.Iterate(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}
