package admission

import (
	"sync"

	"mddm/internal/obs"
)

// Admission metrics: the scrapeable view of the front door. Outcome
// counters, the adaptive limit and queue gauges, and the queue-wait
// histogram; docs/OBSERVABILITY.md holds the inventory.
var (
	mAdmitted = obs.NewCounter("mddm_admission_admitted_total",
		"Requests granted an execution slot (immediately or after queueing).")
	mQueued = obs.NewCounter("mddm_admission_queued_total",
		"Requests that waited in the admission queue.")
	mQueueExpired = obs.NewCounter("mddm_admission_queue_expired_total",
		"Queue entries abandoned because their deadline expired while waiting; none of them executed.")
	gLimit = obs.NewGauge("mddm_admission_concurrency_limit",
		"Current adaptive concurrency limit (AIMD between the configured floor and ceiling).")
	gInflight = obs.NewGauge("mddm_admission_inflight",
		"Admitted requests currently holding a slot.")
	gQueueDepth = obs.NewGauge("mddm_admission_queue_depth",
		"Live requests waiting in the admission queue.")
	hQueueWait = obs.NewHistogram("mddm_admission_queue_wait_seconds",
		"Time requests spent in the admission queue (granted, expired, or drained).", obs.DurationBuckets)

	shedHelp = "Requests shed by admission control, by reason."
	mShed    = map[Reason]*obs.Counter{
		ReasonQueueFull: obs.NewCounter("mddm_admission_shed_total", shedHelp, obs.Label{Key: "reason", Value: string(ReasonQueueFull)}),
		ReasonDeadline:  obs.NewCounter("mddm_admission_shed_total", shedHelp, obs.Label{Key: "reason", Value: string(ReasonDeadline)}),
		ReasonQuota:     obs.NewCounter("mddm_admission_shed_total", shedHelp, obs.Label{Key: "reason", Value: string(ReasonQuota)}),
		ReasonDraining:  obs.NewCounter("mddm_admission_shed_total", shedHelp, obs.Label{Key: "reason", Value: string(ReasonDraining)}),
	}
)

// Per-tenant shed counters are registered on demand (tenants are not a
// compile-time set like every other label in the repo), capped so a
// client cycling tenant names cannot grow the registry without bound;
// the overflow folds into tenant="other".
const maxTenantSeries = 32

var tenantShed = struct {
	sync.Mutex
	counters map[string]*obs.Counter
}{counters: map[string]*obs.Counter{}}

// shedTotal records one shed into the per-reason and per-tenant series.
func shedTotal(r Reason, tenant string) {
	if m := mShed[r]; m != nil {
		m.Inc()
	}
	if tenant == "" {
		tenant = "default"
	}
	tenantShed.Lock()
	ctr, ok := tenantShed.counters[tenant]
	if !ok {
		if len(tenantShed.counters) >= maxTenantSeries {
			tenant = "other"
			ctr, ok = tenantShed.counters[tenant]
		}
		if !ok {
			ctr = obs.NewCounter("mddm_admission_tenant_shed_total",
				"Requests shed by admission control, by tenant (beyond a cardinality cap, tenant=\"other\").",
				obs.Label{Key: "tenant", Value: tenant})
			tenantShed.counters[tenant] = ctr
		}
	}
	tenantShed.Unlock()
	ctr.Inc()
}
