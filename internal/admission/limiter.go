package admission

import "time"

// limiter is the adaptive concurrency limit: AIMD steered by observed
// completion latency against a target. The state is guarded by the
// owning Controller's mutex — the limiter itself has none, which keeps
// it trivially unit-testable by feeding synthetic latencies.
//
// The control loop is completion-driven, not timer-driven: every
// adjustment window (half the current limit's worth of completions, so
// the loop reacts roughly once per in-flight "generation") the smoothed
// latency is compared to the target. Above target → multiplicative
// decrease (×decreaseFactor, floored): the server is past the knee and
// more concurrency only adds queueing delay. At or below → additive
// increase (+1, ceilinged): probe for headroom slowly. Completion-driven
// adjustment means an idle server's limit never drifts, and tests are
// deterministic — no wall clock in the control law.
type limiter struct {
	floor, ceiling int
	limit          float64
	target         float64 // seconds
	ewma           float64 // seconds; 0 until the first observation
	sinceAdjust    int
}

// ewmaAlpha weights new latency samples; 0.3 reacts within a few
// completions without chasing single outliers.
const ewmaAlpha = 0.3

// decreaseFactor is the multiplicative cut on a breached target. 0.8
// sheds 20% of concurrency per window — fast enough to exit the
// queueing-collapse regime in a few windows, gentle enough that one
// slow query does not halve capacity.
const decreaseFactor = 0.8

// newLimiter starts at the ceiling: optimism costs a few over-target
// windows at startup, pessimism (slow start) would shed real traffic a
// healthy server could have carried.
func newLimiter(floor, ceiling int, target time.Duration) limiter {
	return limiter{
		floor:   floor,
		ceiling: ceiling,
		limit:   float64(ceiling),
		target:  target.Seconds(),
	}
}

// Limit is the current integral concurrency limit.
func (l *limiter) Limit() int { return int(l.limit) }

// ewmaSeconds is the smoothed completion latency, the queue-wait
// predictor's service-time estimate.
func (l *limiter) ewmaSeconds() float64 { return l.ewma }

// observe records one completion latency and runs the AIMD step when
// the adjustment window closes.
func (l *limiter) observe(latency time.Duration) {
	s := latency.Seconds()
	if l.ewma == 0 {
		l.ewma = s
	} else {
		l.ewma = ewmaAlpha*s + (1-ewmaAlpha)*l.ewma
	}
	l.sinceAdjust++
	if l.sinceAdjust < l.window() {
		return
	}
	l.sinceAdjust = 0
	if l.ewma > l.target {
		l.limit *= decreaseFactor
		if l.limit < float64(l.floor) {
			l.limit = float64(l.floor)
		}
	} else {
		l.limit++
		if l.limit > float64(l.ceiling) {
			l.limit = float64(l.ceiling)
		}
	}
}

// window is how many completions close one adjustment: half the current
// limit (at least one), i.e. the loop adjusts about twice per in-flight
// generation of work.
func (l *limiter) window() int {
	w := int(l.limit) / 2
	if w < 1 {
		w = 1
	}
	return w
}
