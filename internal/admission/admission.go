// Package admission is the serving stack's front door under overload:
// it decides, before any query work happens, whether a request runs now,
// waits briefly, or is shed immediately with a retry hint. Three
// mechanisms compose:
//
//   - An adaptive concurrency limiter (limiter.go) tracks how many
//     queries the hardware actually sustains: AIMD on observed latency
//     against a target, bounded by a configured floor and ceiling, so a
//     traffic spike cannot pile up goroutines past the point where every
//     request misses its deadline.
//   - A bounded, deadline-aware wait queue: requests over the limit wait
//     FIFO, but a request whose remaining deadline is shorter than the
//     predicted queue wait is rejected immediately (it would be doomed
//     work), and a queued request is abandoned the moment its context
//     expires — an expired entry is never granted a slot.
//   - Per-tenant token buckets (tenant.go) so one hot tenant cannot
//     starve the rest; requests without a tenant share a default bucket.
//
// Rejections are typed: *OverloadError matches ErrOverloaded and carries
// the shed reason plus a Retry-After hint derived from the limiter and
// queue state, so the HTTP layer can answer 429/503 with an honest
// backoff. Shedding is a mutex-scoped decision — microseconds — which is
// the point: under overload the server stays answerable even when it
// cannot do the work.
package admission

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"mddm/internal/faultinject"
)

// ErrOverloaded reports a request shed by admission control. Match with
// errors.Is; the concrete *OverloadError carries the reason and a
// Retry-After hint.
var ErrOverloaded = errors.New("admission: overloaded")

// Reason classifies why a request was shed.
type Reason string

const (
	// ReasonQueueFull: the wait queue was at capacity.
	ReasonQueueFull Reason = "queue-full"
	// ReasonDeadline: the request's remaining deadline was shorter than
	// the predicted queue wait — running it would be doomed work.
	ReasonDeadline Reason = "deadline"
	// ReasonQuota: the tenant's token bucket was empty.
	ReasonQuota Reason = "tenant-quota"
	// ReasonDraining: the controller is draining for shutdown.
	ReasonDraining Reason = "draining"
)

// OverloadError is a typed shed: why, for whom, and when to retry.
type OverloadError struct {
	Reason Reason
	// Tenant is the quota bucket the request charged ("" = default).
	Tenant string
	// RetryAfter is the controller's estimate of when capacity (or a
	// quota token) will be available; zero means "immediately, if load
	// subsides".
	RetryAfter time.Duration
}

// Error renders the shed for logs and error envelopes.
func (e *OverloadError) Error() string {
	msg := fmt.Sprintf("admission: overloaded (%s)", e.Reason)
	if e.Tenant != "" {
		msg += fmt.Sprintf(" tenant %q", e.Tenant)
	}
	if e.RetryAfter > 0 {
		msg += fmt.Sprintf(", retry after %s", e.RetryAfter.Round(time.Millisecond))
	}
	return msg
}

// Is makes errors.Is(err, ErrOverloaded) hold for every shed.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// Config bounds the controller; New fills defaults for zero fields.
type Config struct {
	// MaxConcurrency is the concurrency ceiling the adaptive limit can
	// never exceed; 0 means admission control is disabled (the serving
	// layer's gate — New itself requires a positive value).
	MaxConcurrency int
	// MinConcurrency is the floor the adaptive limit can never drop
	// below (default 1): even a melting server keeps making progress.
	MinConcurrency int
	// TargetLatency is the per-query latency the limiter steers admitted
	// work toward: sustained completions above it shrink the limit
	// multiplicatively, completions at or below it grow it additively.
	// Default 100ms.
	TargetLatency time.Duration
	// MaxQueue bounds how many requests may wait for a slot; a request
	// arriving with the queue full is shed immediately. Default
	// 2×MaxConcurrency. Keep it small: a long queue converts overload
	// into latency, which is exactly what deadline-aware serving is
	// trying not to do.
	MaxQueue int
	// TenantRate enables per-tenant token-bucket quotas at this many
	// admissions per second per tenant; 0 disables quotas. Requests
	// without a tenant share the default ("") bucket. A shed does not
	// refund the token: quotas meter demand, not successful work.
	TenantRate float64
	// TenantBurst is each bucket's capacity (default max(1, 2×TenantRate)).
	TenantBurst float64
}

// withDefaults fills the zero fields; MaxConcurrency stays as given (its
// zero means "disabled" and is the caller's gate).
func (c Config) withDefaults() Config {
	if c.MinConcurrency <= 0 {
		c.MinConcurrency = 1
	}
	if c.MinConcurrency > c.MaxConcurrency {
		c.MinConcurrency = c.MaxConcurrency
	}
	if c.TargetLatency <= 0 {
		c.TargetLatency = 100 * time.Millisecond
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * c.MaxConcurrency
	}
	if c.TenantRate > 0 && c.TenantBurst <= 0 {
		c.TenantBurst = 2 * c.TenantRate
		if c.TenantBurst < 1 {
			c.TenantBurst = 1
		}
	}
	return c
}

// Stats is a snapshot of the controller's counters and gauges.
type Stats struct {
	// Admitted counts tickets granted (immediately or after queueing).
	Admitted int64
	// Queued counts requests that waited for a slot before admission.
	Queued int64
	// Sheds by reason.
	ShedQueueFull int64
	ShedDeadline  int64
	ShedQuota     int64
	ShedDraining  int64
	// QueueExpired counts queue entries abandoned because their context
	// expired while waiting. They never executed.
	QueueExpired int64
	// GrantedExpired counts slots granted to a waiter whose context had
	// already expired by the time it woke; the slot is returned untouched
	// and the query never executes. The grant scan checks expiry first,
	// so this stays 0 outside of races between grant and expiry.
	GrantedExpired int64
	// Limit, Inflight, QueueDepth are the current gauges.
	Limit      int
	Inflight   int
	QueueDepth int
}

// waiter states: a queued request is granted by the wake scan or
// abandoned (by its own requester on expiry, or by Drain). All
// transitions happen under the controller mutex; close(ready) publishes
// ticket/err to the requester.
const (
	waiting = iota
	grantedState
	abandonedState
)

// waiter is one queued request.
type waiter struct {
	ready  chan struct{}
	ctx    context.Context
	tenant string
	state  int32   // guarded by Controller.mu
	ticket *Ticket // set before close(ready) when granted
	err    error   // set before close(ready) when shed by Drain
}

// Controller is the admission front door. Construct with New; safe for
// concurrent use.
type Controller struct {
	cfg Config

	mu       sync.Mutex
	lim      limiter
	inflight int
	queue    []*waiter // FIFO; abandoned entries are skipped at wake
	queued   int       // live (non-abandoned) queue entries
	draining bool
	buckets  map[string]*bucket
	stats    Stats
}

// New creates a controller; cfg.MaxConcurrency must be positive (a zero
// config means "no admission control" and should not construct one).
func New(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	if cfg.MaxConcurrency <= 0 {
		panic("admission: non-positive MaxConcurrency")
	}
	c := &Controller{cfg: cfg, buckets: map[string]*bucket{}}
	c.lim = newLimiter(cfg.MinConcurrency, cfg.MaxConcurrency, cfg.TargetLatency)
	gLimit.Set(int64(c.lim.Limit()))
	return c
}

// Ticket is one admitted request's slot. Release returns the slot and
// feeds the observed latency to the adaptive limiter; calling it more
// than once is a no-op.
type Ticket struct {
	c     *Controller
	start time.Time
	once  sync.Once
}

// Release returns the ticket's slot, records the admit-to-release
// latency into the limiter, and grants freed capacity to queued waiters.
func (t *Ticket) Release() {
	t.once.Do(func() { t.c.release(time.Since(t.start)) })
}

// Admit decides the fate of one request: run now (a Ticket), or an
// error — *OverloadError for sheds, a context-derived error for a
// request whose deadline expired while queued (it never executed). The
// tenant is read from the context (WithTenant); requests without one
// share the default quota bucket.
func (c *Controller) Admit(ctx context.Context) (*Ticket, error) {
	tenant := TenantFrom(ctx)
	c.mu.Lock()
	if c.draining {
		c.stats.ShedDraining++
		c.mu.Unlock()
		return nil, c.shed(ReasonDraining, tenant, time.Second)
	}
	if ok, wait := c.takeTokenLocked(tenant); !ok {
		c.stats.ShedQuota++
		c.mu.Unlock()
		return nil, c.shed(ReasonQuota, tenant, wait)
	}
	if c.inflight < c.lim.Limit() {
		t := c.admitLocked()
		c.mu.Unlock()
		return t, nil
	}
	// Over the limit: queue, unless the queue is full or the request is
	// already doomed — a remaining deadline shorter than the predicted
	// wait means the work would expire in line, so shed it now while the
	// answer still costs microseconds.
	if c.queued >= c.cfg.MaxQueue {
		c.stats.ShedQueueFull++
		retry := c.predictWaitLocked()
		c.mu.Unlock()
		return nil, c.shed(ReasonQueueFull, tenant, retry)
	}
	predicted := c.predictWaitLocked()
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) < predicted {
		c.stats.ShedDeadline++
		c.mu.Unlock()
		return nil, c.shed(ReasonDeadline, tenant, predicted)
	}
	w := &waiter{ready: make(chan struct{}), ctx: ctx, tenant: tenant}
	c.queue = append(c.queue, w)
	c.queued++
	c.stats.Queued++
	mQueued.Inc()
	gQueueDepth.Set(int64(c.queued))
	c.mu.Unlock()

	enq := time.Now()
	select {
	case <-w.ready:
		hQueueWait.Observe(time.Since(enq))
		return c.takeGrant(w)
	case <-ctx.Done():
		c.mu.Lock()
		if w.state == waiting {
			// Abandon the entry the moment the context expires: it leaves
			// the live queue now and can never be granted.
			w.state = abandonedState
			c.queued--
			c.stats.QueueExpired++
			gQueueDepth.Set(int64(c.queued))
			c.mu.Unlock()
			hQueueWait.Observe(time.Since(enq))
			mQueueExpired.Inc()
			return nil, fmt.Errorf("admission: deadline expired while queued: %w", context.Cause(ctx))
		}
		// Granted or drained concurrently: consume that outcome instead.
		c.mu.Unlock()
		<-w.ready
		hQueueWait.Observe(time.Since(enq))
		return c.takeGrant(w)
	}
}

// takeGrant resolves a woken waiter: a Drain shed, a slot granted to an
// already-expired request (returned untouched — it never executes), or a
// live ticket.
func (c *Controller) takeGrant(w *waiter) (*Ticket, error) {
	if w.err != nil {
		return nil, w.err
	}
	if w.ctx.Err() != nil {
		c.mu.Lock()
		c.stats.GrantedExpired++
		c.mu.Unlock()
		w.ticket.Release()
		mQueueExpired.Inc()
		return nil, fmt.Errorf("admission: deadline expired while queued: %w", context.Cause(w.ctx))
	}
	return w.ticket, nil
}

// admitLocked accounts one admitted request and returns its ticket; the
// caller holds c.mu and has verified capacity.
func (c *Controller) admitLocked() *Ticket {
	c.inflight++
	c.stats.Admitted++
	gInflight.Set(int64(c.inflight))
	mAdmitted.Inc()
	return &Ticket{c: c, start: time.Now()}
}

// shed records the per-reason/per-tenant metrics and builds the error.
func (c *Controller) shed(r Reason, tenant string, retry time.Duration) error {
	shedTotal(r, tenant)
	return &OverloadError{Reason: r, Tenant: tenant, RetryAfter: retry}
}

// release returns a slot, feeds the limiter, and hands freed capacity to
// queued waiters in FIFO order.
func (c *Controller) release(latency time.Duration) {
	c.mu.Lock()
	c.inflight--
	c.lim.observe(latency)
	gLimit.Set(int64(c.lim.Limit()))
	gInflight.Set(int64(c.inflight))
	c.wakeLocked()
	c.mu.Unlock()
}

// wakeLocked grants slots to queued waiters while capacity lasts,
// skipping entries that were abandoned or whose context has expired (an
// expired entry is never granted — its requester does the abandon
// accounting when it wakes). The faultinject queue-stall point freezes
// granting so tests can deterministically expire queued work.
func (c *Controller) wakeLocked() {
	if faultinject.Check(faultinject.QueueStall) != nil {
		return
	}
	for c.inflight < c.lim.Limit() && len(c.queue) > 0 {
		w := c.queue[0]
		c.queue = c.queue[1:]
		if w.state != waiting {
			continue // abandoned: its requester already left
		}
		if w.ctx.Err() != nil {
			// Expired but its goroutine has not woken yet: leave the state
			// to the requester's Done branch; just never grant it.
			continue
		}
		w.state = grantedState
		w.ticket = c.admitLocked()
		c.queued--
		gQueueDepth.Set(int64(c.queued))
		close(w.ready)
	}
}

// predictWaitLocked estimates how long a request joining the queue now
// would wait: the work ahead of it (live queue entries plus one, each
// costing the smoothed service time) spread over the current limit.
// With no latency samples yet it predicts zero — optimism costs one
// queued request its wait; pessimism would shed traffic a cold server
// could have served.
func (c *Controller) predictWaitLocked() time.Duration {
	service := c.lim.ewmaSeconds()
	if service <= 0 {
		return 0
	}
	lim := c.lim.Limit()
	if lim < 1 {
		lim = 1
	}
	sec := float64(c.queued+1) * service / float64(lim)
	return time.Duration(sec * float64(time.Second))
}

// Drain stops admitting: every later Admit sheds with ReasonDraining,
// and already-queued waiters are woken to fail fast rather than wait
// out a shutdown. In-flight tickets are unaffected — callers drain them
// via http.Server.Shutdown or equivalent.
func (c *Controller) Drain() {
	c.mu.Lock()
	c.draining = true
	for _, w := range c.queue {
		if w.state != waiting {
			continue
		}
		w.state = abandonedState
		w.err = &OverloadError{Reason: ReasonDraining, Tenant: w.tenant, RetryAfter: time.Second}
		c.queued--
		c.stats.ShedDraining++
		shedTotal(ReasonDraining, w.tenant)
		close(w.ready)
	}
	c.queue = nil
	gQueueDepth.Set(int64(c.queued))
	c.mu.Unlock()
}

// Stats snapshots the controller.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	st := c.stats
	st.Limit = c.lim.Limit()
	st.Inflight = c.inflight
	st.QueueDepth = c.queued
	c.mu.Unlock()
	return st
}
