package admission

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mddm/internal/faultinject"
)

func testConfig() Config {
	return Config{MaxConcurrency: 2, MinConcurrency: 1, TargetLatency: 50 * time.Millisecond, MaxQueue: 4}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{MaxConcurrency: 8}.withDefaults()
	if c.MinConcurrency != 1 {
		t.Errorf("MinConcurrency = %d, want 1", c.MinConcurrency)
	}
	if c.TargetLatency != 100*time.Millisecond {
		t.Errorf("TargetLatency = %v, want 100ms", c.TargetLatency)
	}
	if c.MaxQueue != 16 {
		t.Errorf("MaxQueue = %d, want 16", c.MaxQueue)
	}
	if c.TenantBurst != 0 {
		t.Errorf("TenantBurst = %v, want 0 with quotas disabled", c.TenantBurst)
	}
	c = Config{MaxConcurrency: 2, MinConcurrency: 10, TenantRate: 0.25}.withDefaults()
	if c.MinConcurrency != 2 {
		t.Errorf("MinConcurrency = %d, want clamped to 2", c.MinConcurrency)
	}
	if c.TenantBurst != 1 {
		t.Errorf("TenantBurst = %v, want floor 1", c.TenantBurst)
	}
	defer func() {
		if recover() == nil {
			t.Error("New with MaxConcurrency 0 did not panic")
		}
	}()
	New(Config{})
}

func TestAdmitImmediateAndRelease(t *testing.T) {
	c := New(testConfig())
	tk, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Admitted != 1 || st.Inflight != 1 || st.Queued != 0 {
		t.Errorf("stats after admit = %+v", st)
	}
	tk.Release()
	tk.Release() // idempotent
	if st := c.Stats(); st.Inflight != 0 {
		t.Errorf("inflight after release = %d, want 0", st.Inflight)
	}
}

// TestQueueGrantFIFO pins the queue discipline: with one slot occupied,
// later requests wait and are granted in arrival order as slots free.
func TestQueueGrantFIFO(t *testing.T) {
	c := New(Config{MaxConcurrency: 1, MaxQueue: 4})
	blocker, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	order := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		// Serialize enqueue order: wait until the previous waiter is in the
		// queue before launching the next.
		for {
			if st := c.Stats(); st.QueueDepth == i {
				break
			}
			time.Sleep(time.Millisecond)
		}
		go func() {
			defer wg.Done()
			tk, err := c.Admit(context.Background())
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
			tk.Release()
		}()
		for {
			if st := c.Stats(); st.QueueDepth == i+1 {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	blocker.Release()
	wg.Wait()
	close(order)
	want := 0
	for got := range order {
		if got != want {
			t.Fatalf("grant order: got waiter %d before waiter %d", got, want)
		}
		want++
	}
	if st := c.Stats(); st.Queued != n || st.Admitted != n+1 || st.QueueDepth != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestQueueFullSheds(t *testing.T) {
	c := New(Config{MaxConcurrency: 1, MaxQueue: 1})
	blocker, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer blocker.Release()
	queued := make(chan error, 1)
	go func() {
		tk, err := c.Admit(context.Background())
		if tk != nil {
			tk.Release()
		}
		queued <- err
	}()
	for c.Stats().QueueDepth != 1 {
		time.Sleep(time.Millisecond)
	}
	_, err = c.Admit(context.Background())
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != ReasonQueueFull {
		t.Fatalf("third request: err = %v, want queue-full overload", err)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Error("queue-full shed does not match ErrOverloaded")
	}
	blocker.Release()
	if err := <-queued; err != nil {
		t.Fatalf("queued request: %v", err)
	}
	if st := c.Stats(); st.ShedQueueFull != 1 {
		t.Errorf("ShedQueueFull = %d, want 1", st.ShedQueueFull)
	}
}

// TestDeadlineAwareShed pins the doomed-work rejection: when the
// predicted queue wait exceeds the request's remaining deadline, the
// request is shed immediately with the prediction as the retry hint.
func TestDeadlineAwareShed(t *testing.T) {
	c := New(Config{MaxConcurrency: 1, MaxQueue: 8})
	// Prime the service-time estimate white-box: 100ms per query at
	// limit 1 predicts a 100ms wait for the first queue entry.
	c.mu.Lock()
	c.lim.ewma = 0.1
	c.mu.Unlock()
	blocker, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer blocker.Release()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Admit(ctx)
	shedIn := time.Since(start)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != ReasonDeadline {
		t.Fatalf("err = %v, want deadline shed", err)
	}
	if oe.RetryAfter < 50*time.Millisecond {
		t.Errorf("RetryAfter = %v, want ≈ the 100ms predicted wait", oe.RetryAfter)
	}
	// The shed must answer long before the request's own deadline: it is
	// a lock-scoped decision, not a wait.
	if shedIn > 5*time.Millisecond {
		t.Errorf("deadline shed took %v, want microseconds", shedIn)
	}
	if st := c.Stats(); st.ShedDeadline != 1 {
		t.Errorf("ShedDeadline = %d, want 1", st.ShedDeadline)
	}
	// A request with deadline headroom beyond the prediction queues fine.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Minute)
	defer cancel2()
	done := make(chan error, 1)
	go func() {
		tk, err := c.Admit(ctx2)
		if tk != nil {
			tk.Release()
		}
		done <- err
	}()
	for c.Stats().QueueDepth != 1 {
		time.Sleep(time.Millisecond)
	}
	blocker.Release()
	if err := <-done; err != nil {
		t.Fatalf("roomy-deadline request: %v", err)
	}
}

// TestExpiredQueueEntriesNeverExecute is the deterministic queue test:
// with the faultinject queue-stall point armed the queue cannot drain,
// so queued requests sit until their deadlines expire — every one must
// come back with a deadline error, none may be granted a slot, and the
// controller must count them as expired-in-queue.
func TestExpiredQueueEntriesNeverExecute(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	c := New(Config{MaxConcurrency: 1, MaxQueue: 8})
	blocker, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(faultinject.QueueStall, nil)

	const n = 3
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			tk, err := c.Admit(ctx)
			if tk != nil {
				errs <- fmt.Errorf("expired request got a ticket")
				tk.Release()
				return
			}
			errs <- err
		}()
	}
	for c.Stats().QueueDepth != n {
		time.Sleep(time.Millisecond)
	}
	// Free the slot while the wake scan is stalled: capacity exists, but
	// the stall keeps it from being granted, so the deadlines expire.
	blocker.Release()
	for i := 0; i < n; i++ {
		err := <-errs
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("queued request: err = %v, want deadline exceeded", err)
		}
	}
	st := c.Stats()
	if st.QueueExpired != n {
		t.Errorf("QueueExpired = %d, want %d", st.QueueExpired, n)
	}
	if st.GrantedExpired != 0 {
		t.Errorf("GrantedExpired = %d, want 0", st.GrantedExpired)
	}
	if st.Admitted != 1 {
		t.Errorf("Admitted = %d, want only the blocker", st.Admitted)
	}
	if faultinject.Hits(faultinject.QueueStall) == 0 {
		t.Error("queue-stall point never fired")
	}

	// Disarm: the controller recovers — a fresh request admits instantly
	// and the wake scan skips the abandoned corpses still in the slice.
	faultinject.Reset()
	tk, err := c.Admit(context.Background())
	if err != nil {
		t.Fatalf("post-stall admit: %v", err)
	}
	tk.Release()
	if st := c.Stats(); st.QueueDepth != 0 || st.Inflight != 0 {
		t.Errorf("post-recovery stats = %+v", st)
	}
}

// TestGrantToExpiredWaiterReturnsSlot pins the race-window path: a
// waiter granted a slot after its context expired returns the slot
// untouched and reports the expiry — it never executes.
func TestGrantToExpiredWaiterReturnsSlot(t *testing.T) {
	c := New(testConfig())
	ctx, cancel := context.WithCancel(context.Background())
	c.mu.Lock()
	tk := c.admitLocked()
	c.mu.Unlock()
	w := &waiter{ctx: ctx, ticket: tk, state: grantedState}
	cancel()
	if _, err := c.takeGrant(w); !errors.Is(err, context.Canceled) {
		t.Fatalf("takeGrant on expired waiter: err = %v", err)
	}
	st := c.Stats()
	if st.GrantedExpired != 1 || st.Inflight != 0 {
		t.Errorf("stats = %+v, want GrantedExpired 1 and the slot returned", st)
	}
}

func TestTenantQuota(t *testing.T) {
	cfg := testConfig()
	cfg.TenantRate = 0.001 // effectively no refill within the test
	cfg.TenantBurst = 2
	c := New(cfg)
	bg := context.Background()
	hot := WithTenant(bg, "hot")
	for i := 0; i < 2; i++ {
		tk, err := c.Admit(hot)
		if err != nil {
			t.Fatalf("hot admit %d: %v", i, err)
		}
		tk.Release()
	}
	_, err := c.Admit(hot)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != ReasonQuota || oe.Tenant != "hot" {
		t.Fatalf("exhausted tenant: err = %v, want tenant-quota shed", err)
	}
	if oe.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want a positive refill hint", oe.RetryAfter)
	}
	// The hot tenant's exhaustion must not starve others (or the default
	// bucket).
	for _, ctx := range []context.Context{WithTenant(bg, "cold"), bg} {
		tk, err := c.Admit(ctx)
		if err != nil {
			t.Fatalf("other tenant: %v", err)
		}
		tk.Release()
	}
	if st := c.Stats(); st.ShedQuota != 1 {
		t.Errorf("ShedQuota = %d, want 1", st.ShedQuota)
	}
}

func TestTenantBucketCap(t *testing.T) {
	cfg := testConfig()
	cfg.TenantRate = 1000
	cfg.TenantBurst = 1000
	c := New(cfg)
	for i := 0; i < maxTenantBuckets+5; i++ {
		tk, err := c.Admit(WithTenant(context.Background(), fmt.Sprintf("t%d", i)))
		if err != nil {
			t.Fatalf("tenant %d: %v", i, err)
		}
		tk.Release()
	}
	c.mu.Lock()
	n := len(c.buckets)
	c.mu.Unlock()
	// +1: the overflow fold target (the default bucket) is created on
	// demand and rides above the cap.
	if n > maxTenantBuckets+1 {
		t.Errorf("bucket map grew to %d, cap is %d", n, maxTenantBuckets)
	}
}

func TestQuotaFaultinject(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	cfg := testConfig()
	cfg.TenantRate = 1000
	cfg.TenantBurst = 1000
	c := New(cfg)
	faultinject.Enable(faultinject.QuotaExhausted, nil)
	_, err := c.Admit(context.Background())
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != ReasonQuota {
		t.Fatalf("err = %v, want injected quota shed", err)
	}
	faultinject.Reset()
	tk, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tk.Release()
}

func TestDrain(t *testing.T) {
	c := New(Config{MaxConcurrency: 1, MaxQueue: 4})
	blocker, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() {
		tk, err := c.Admit(context.Background())
		if tk != nil {
			tk.Release()
		}
		queued <- err
	}()
	for c.Stats().QueueDepth != 1 {
		time.Sleep(time.Millisecond)
	}
	c.Drain()
	// The queued waiter fails fast with the draining shed instead of
	// waiting out the shutdown.
	var oe *OverloadError
	if err := <-queued; !errors.As(err, &oe) || oe.Reason != ReasonDraining {
		t.Fatalf("queued request during drain: err = %v, want draining shed", err)
	}
	// New arrivals shed immediately, 503-style.
	if _, err := c.Admit(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("post-drain admit: err = %v, want overloaded", err)
	}
	// In-flight work is unaffected and still releases cleanly.
	blocker.Release()
	if st := c.Stats(); st.Inflight != 0 || st.ShedDraining != 2 {
		t.Errorf("stats after drain = %+v", st)
	}
}

func TestOverloadErrorString(t *testing.T) {
	e := &OverloadError{Reason: ReasonQuota, Tenant: "acme", RetryAfter: 1500 * time.Millisecond}
	s := e.Error()
	for _, want := range []string{"tenant-quota", `"acme"`, "1.5s"} {
		if !contains(s, want) {
			t.Errorf("error %q missing %q", s, want)
		}
	}
	if (&OverloadError{Reason: ReasonQueueFull}).Error() == "" {
		t.Error("minimal overload error renders empty")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestLimiterAIMD(t *testing.T) {
	l := newLimiter(2, 16, 10*time.Millisecond)
	if l.Limit() != 16 {
		t.Fatalf("initial limit = %d, want the ceiling", l.Limit())
	}
	// Sustained over-target latency walks the limit down multiplicatively
	// to the floor, never below.
	for i := 0; i < 500; i++ {
		l.observe(50 * time.Millisecond)
	}
	if l.Limit() != 2 {
		t.Errorf("limit after sustained overload = %d, want floor 2", l.Limit())
	}
	// Healthy latency grows it back additively to the ceiling, never above.
	for i := 0; i < 500; i++ {
		l.observe(time.Millisecond)
	}
	if l.Limit() != 16 {
		t.Errorf("limit after recovery = %d, want ceiling 16", l.Limit())
	}
	if l.ewmaSeconds() <= 0 {
		t.Error("ewma not tracking")
	}
}

// TestLimiterDecreaseIsMultiplicative pins the AIMD shape: one window of
// bad latency cuts by the decrease factor, one healthy window adds one.
func TestLimiterDecreaseIsMultiplicative(t *testing.T) {
	l := newLimiter(1, 10, 10*time.Millisecond)
	// window() = limit/2 = 5 observations close the first window.
	for i := 0; i < 5; i++ {
		l.observe(time.Second)
	}
	if l.Limit() != 8 { // 10 × 0.8
		t.Errorf("limit after one bad window = %d, want 8", l.Limit())
	}
	// Flush the EWMA back under target, then check additive +1. The
	// EWMA converges fast (α=0.3), so a few windows of 0-latency bring
	// it under the 10ms target; find the first window that increases.
	prev := l.Limit()
	for rounds := 0; rounds < 50 && l.Limit() <= prev; rounds++ {
		prev = l.Limit()
		for i := 0; i < l.window(); i++ {
			l.observe(time.Microsecond)
		}
	}
	if l.Limit() != prev+1 {
		t.Errorf("healthy window moved limit %d → %d, want +1", prev, l.Limit())
	}
}

func TestPredictWait(t *testing.T) {
	c := New(Config{MaxConcurrency: 4, MaxQueue: 16})
	c.mu.Lock()
	if w := c.predictWaitLocked(); w != 0 {
		t.Errorf("cold predictor = %v, want 0", w)
	}
	c.lim.ewma = 0.2 // 200ms service at limit 4
	c.queued = 7
	want := time.Duration(float64(8) * 0.2 / 4 * float64(time.Second)) // 400ms
	if w := c.predictWaitLocked(); w != want {
		t.Errorf("predictWait = %v, want %v", w, want)
	}
	c.queued = 0
	c.mu.Unlock()
}

func TestWithTenantRoundTrip(t *testing.T) {
	bg := context.Background()
	if got := TenantFrom(bg); got != "" {
		t.Errorf("TenantFrom(bg) = %q", got)
	}
	if got := TenantFrom(WithTenant(bg, "acme")); got != "acme" {
		t.Errorf("TenantFrom = %q, want acme", got)
	}
	if ctx := WithTenant(bg, ""); ctx != bg {
		t.Error("empty tenant should not allocate a context")
	}
}

// TestAdmissionRaceStress hammers the controller from many goroutines —
// admits with and without deadlines, tenants, releases, stats reads, and
// a drain at the end — under the race detector.
func TestAdmissionRaceStress(t *testing.T) {
	c := New(Config{
		MaxConcurrency: 4,
		TargetLatency:  500 * time.Microsecond,
		MaxQueue:       8,
		TenantRate:     10000,
		TenantBurst:    10000,
	})
	var admitted, shed, expired atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				ctx := WithTenant(context.Background(), fmt.Sprintf("t%d", g%3))
				cancel := context.CancelFunc(func() {})
				if rng.Intn(2) == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(3))*time.Millisecond)
				}
				tk, err := c.Admit(ctx)
				switch {
				case err == nil:
					admitted.Add(1)
					if rng.Intn(4) == 0 {
						time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
					}
					tk.Release()
				case errors.Is(err, ErrOverloaded):
					shed.Add(1)
				default:
					expired.Add(1)
				}
				cancel()
				if i%50 == 0 {
					_ = c.Stats()
				}
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Inflight != 0 || st.QueueDepth != 0 {
		t.Errorf("leaked state after stress: %+v", st)
	}
	// Admitted counts tickets granted, including the rare grant-to-expired
	// race where the caller sees an error and the slot bounces back.
	if st.Admitted != admitted.Load()+st.GrantedExpired {
		t.Errorf("Admitted = %d, callers saw %d (+%d granted-expired)",
			st.Admitted, admitted.Load(), st.GrantedExpired)
	}
	if admitted.Load() == 0 {
		t.Error("stress admitted nothing")
	}
	t.Logf("admitted %d, shed %d, expired-in-queue %d, final limit %d",
		admitted.Load(), shed.Load(), expired.Load(), st.Limit)
	c.Drain()
	if _, err := c.Admit(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Error("post-drain admit not shed")
	}
}
