package admission

import (
	"context"
	"time"

	"mddm/internal/faultinject"
)

// tenantKey carries the request's tenant through the context; the HTTP
// layer extracts it from the X-Mddm-Tenant header or ?tenant= param.
type tenantKey struct{}

// WithTenant tags the context with the request's tenant for quota
// accounting. An empty tenant is the default bucket.
func WithTenant(ctx context.Context, tenant string) context.Context {
	if tenant == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantKey{}, tenant)
}

// TenantFrom returns the context's tenant ("" = default bucket).
func TenantFrom(ctx context.Context) string {
	t, _ := ctx.Value(tenantKey{}).(string)
	return t
}

// maxTenantBuckets bounds the quota map: a scraper cycling random
// tenant names must not grow server memory without bound. Tenants past
// the cap share the default bucket — they still get *a* quota, just not
// a private one.
const maxTenantBuckets = 1024

// bucket is one tenant's token bucket. Guarded by Controller.mu.
type bucket struct {
	tokens float64
	last   time.Time
}

// takeTokenLocked charges one token from the tenant's bucket, creating
// it full on first sight. It reports whether a token was available and,
// when not, how long until one refills. Quotas disabled (TenantRate 0)
// always admit. The caller holds c.mu.
func (c *Controller) takeTokenLocked(tenant string) (bool, time.Duration) {
	if c.cfg.TenantRate <= 0 {
		return true, 0
	}
	if err := faultinject.Check(faultinject.QuotaExhausted); err != nil {
		return false, time.Second
	}
	if _, ok := c.buckets[tenant]; !ok && len(c.buckets) >= maxTenantBuckets {
		tenant = ""
	}
	b, ok := c.buckets[tenant]
	now := time.Now()
	if !ok {
		b = &bucket{tokens: c.cfg.TenantBurst, last: now}
		c.buckets[tenant] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * c.cfg.TenantRate
		if b.tokens > c.cfg.TenantBurst {
			b.tokens = c.cfg.TenantBurst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	// Time until the fractional balance reaches one whole token.
	wait := time.Duration((1 - b.tokens) / c.cfg.TenantRate * float64(time.Second))
	return false, wait
}
