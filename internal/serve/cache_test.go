package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"sort"
	"testing"

	"mddm/internal/agg"
	"mddm/internal/casestudy"
	"mddm/internal/exec"
	"mddm/internal/qos"
	"mddm/internal/query"
)

// cacheLimits is the standard result-cache configuration for these
// tests: cache on, no other limits in the way.
var cacheLimits = Limits{ResultCacheBytes: 4 << 20}

// aggQuery builds the differential query for one registered aggregate:
// argument-consuming functions aggregate Age, the rest count the group.
func aggQuery(g *agg.Func) string {
	arg := "*"
	if g.NeedsArg {
		arg = "Age"
	}
	return fmt.Sprintf(`SELECT %s(%s) AS N FROM patients GROUP BY Diagnosis."Diagnosis Group" ORDER BY N DESC`, g.Name, arg)
}

// sameResult is bit-identical equality on the fields the cache returns
// to clients.
func sameResult(t *testing.T, label string, got, want *query.Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Columns, want.Columns) {
		t.Fatalf("%s: columns %v != %v", label, got.Columns, want.Columns)
	}
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Fatalf("%s: rows differ:\n%v\n%v", label, got.Rows, want.Rows)
	}
	if got.Summarizable != want.Summarizable {
		t.Fatalf("%s: summarizable %v != %v", label, got.Summarizable, want.Summarizable)
	}
}

// TestCachedDifferentialAllAggregates pins, for every registered
// aggregate over the Table 1 case-study MO: index-free direct execution
// ≡ uncached serve ≡ cache fill ≡ cache hit, bit-identically, at
// parallelism degrees 1, 2, 4, and 8 — including a hit filled at one
// degree serving requests at every other degree (the key excludes the
// degree on purpose; results are pinned identical across degrees).
func TestCachedDifferentialAllAggregates(t *testing.T) {
	names := agg.Names()
	sort.Strings(names)
	degrees := []int{1, 2, 4, 8}
	for _, name := range names {
		g, err := agg.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			s, cat := newTestServer(t, cacheLimits)
			src := aggQuery(g)

			// The index-free baseline: direct execution against the
			// catalog snapshot, no serving layer, no engine, no cache.
			base, err := query.Exec(src, cat.Snapshot(), testRef)
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}

			// Fill once at degree 8, then demand hits at every degree.
			fillCtx := exec.WithParallelism(context.Background(), 8)
			fill, hit, err := s.QueryCached(fillCtx, src)
			if err != nil {
				t.Fatalf("fill: %v", err)
			}
			if hit {
				t.Fatal("first lookup hit an empty cache")
			}
			sameResult(t, "fill@8 vs baseline", fill, base)

			for _, d := range degrees {
				ctx := exec.WithParallelism(context.Background(), d)
				unc, err := s.Query(ctx, src)
				if err != nil {
					t.Fatalf("uncached@%d: %v", d, err)
				}
				sameResult(t, fmt.Sprintf("uncached@%d vs baseline", d), unc, base)

				res, hit, err := s.QueryCached(ctx, src)
				if err != nil {
					t.Fatalf("cached@%d: %v", d, err)
				}
				if !hit {
					t.Fatalf("repeat lookup at degree %d missed", d)
				}
				sameResult(t, fmt.Sprintf("hit@%d vs baseline", d), res, base)
			}
		})
	}
}

// TestCacheInterleavedAppendInvalidation drives the schedule the
// tentpole exists for: query → hit → append → the very next lookup is a
// miss answered with the fresh result → hit again → second append →
// miss again. The epoch must invalidate exactly when a write lands —
// no stale serve, and no gratuitous misses between writes.
func TestCacheInterleavedAppendInvalidation(t *testing.T) {
	s, _ := newTestServer(t, cacheLimits)
	ctx := context.Background()

	// The engine must exist before the new facts are related: building it
	// later would index them eagerly and reject the AppendFact.
	eng, err := s.EngineFor(ctx, "patients")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := s.cat.Get("patients")
	lows := m.Dimension(casestudy.DimDiagnosis).Category(casestudy.CatLowLevel)

	r1, hit, err := s.QueryCached(ctx, groupQuery)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first lookup hit")
	}
	r2, hit, err := s.QueryCached(ctx, groupQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("repeat lookup before any write missed")
	}
	sameResult(t, "pre-append hit", r2, r1)

	for i := 0; i < 2; i++ {
		id := fmt.Sprintf("cachefact%d", i)
		if err := m.Relate(casestudy.DimDiagnosis, id, lows[i%len(lows)]); err != nil {
			t.Fatal(err)
		}
		if err := eng.AppendFact(id); err != nil {
			t.Fatal(err)
		}

		res, hit, err := s.QueryCached(ctx, groupQuery)
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			t.Fatalf("append %d: lookup after AppendFact hit — stale serve", i)
		}
		fresh, err := query.Exec(groupQuery, s.cat.Snapshot(), testRef)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, fmt.Sprintf("post-append %d miss vs fresh", i), res, fresh)
		if reflect.DeepEqual(res.Rows, r1.Rows) {
			t.Fatalf("append %d: result did not change — the schedule is not observing the write", i)
		}

		again, hit, err := s.QueryCached(ctx, groupQuery)
		if err != nil {
			t.Fatal(err)
		}
		if !hit {
			t.Fatalf("append %d: second lookup after refill missed", i)
		}
		sameResult(t, fmt.Sprintf("post-append %d hit", i), again, res)
	}

	st := s.ResultCacheStats()
	if st.Invalidations != 2 {
		t.Fatalf("invalidations = %d, want exactly 2 (one per append)", st.Invalidations)
	}
}

// TestCacheReregistrationInvalidates pins the other half of the version:
// replacing the catalog entry (new registration generation) invalidates
// even though no engine epoch moved.
func TestCacheReregistrationInvalidates(t *testing.T) {
	s, cat := newTestServer(t, cacheLimits)
	ctx := context.Background()

	r1, _, err := s.QueryCached(ctx, groupQuery)
	if err != nil {
		t.Fatal(err)
	}
	if _, hit, _ := s.QueryCached(ctx, groupQuery); !hit {
		t.Fatal("repeat lookup missed")
	}
	if err := cat.Register("patients", patientMO(t)); err != nil {
		t.Fatal(err)
	}
	res, hit, err := s.QueryCached(ctx, groupQuery)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("lookup after re-registration hit — stale serve")
	}
	// The replacement MO is identical data, so the refilled result matches.
	sameResult(t, "refill after re-register", res, r1)
}

// TestCacheHitBudgetPolicy pins the documented budget policy: a miss
// charges the fact budget for its computation; the hit that replaces the
// identical computation charges zero. (The cheaper-policy option of the
// spec — mirrored in docs/SERVING.md.)
func TestCacheHitBudgetPolicy(t *testing.T) {
	s, _ := newTestServer(t, cacheLimits) // no MaxFactsScanned: caller budget rules
	ctx := qos.WithFactBudget(context.Background(), 1<<30)
	b := qos.BudgetFrom(ctx)
	if b == nil {
		t.Fatal("no budget on context")
	}

	if _, hit, err := s.QueryCached(ctx, groupQuery); err != nil || hit {
		t.Fatalf("fill: hit=%v err=%v", hit, err)
	}
	missSpent := b.Spent()
	if missSpent == 0 {
		t.Fatal("the miss charged no budget — the parity claim would be vacuous")
	}
	if _, hit, err := s.QueryCached(ctx, groupQuery); err != nil || !hit {
		t.Fatalf("hit: hit=%v err=%v", hit, err)
	}
	if got := b.Spent(); got != missSpent {
		t.Fatalf("cache hit charged %d budget, want 0 (pinned policy)", got-missSpent)
	}
	// The uncached path keeps charging, so the zero charge above is the
	// cache's doing, not budget accounting going quiet.
	if _, err := s.Query(ctx, groupQuery); err != nil {
		t.Fatal(err)
	}
	if got := b.Spent(); got <= missSpent {
		t.Fatalf("uncached re-run charged nothing (spent still %d)", got)
	}
}

// TestCacheDisabledFallsThrough: ResultCacheBytes 0 makes QueryCached
// exactly Query — no hits, no cache state, no behavior change.
func TestCacheDisabledFallsThrough(t *testing.T) {
	s, _ := newTestServer(t, Limits{})
	if s.ResultCacheEnabled() {
		t.Fatal("cache enabled without ResultCacheBytes")
	}
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		res, hit, err := s.QueryCached(ctx, groupQuery)
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			t.Fatal("hit reported with the cache disabled")
		}
		if len(res.Rows) == 0 {
			t.Fatal("no rows")
		}
	}
	if st := s.ResultCacheStats(); st.Hits+st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("disabled cache has stats: %+v", st)
	}
}

// TestCacheErrorsNotCached: failing queries are recomputed every time
// and leave nothing behind; once the failure cause is fixed the next
// call succeeds (nothing shadowed it).
func TestCacheErrorsNotCached(t *testing.T) {
	s, cat := newTestServer(t, cacheLimits)
	ctx := context.Background()
	bad := `SELECT SETCOUNT(*) FROM nosuch`
	for i := 0; i < 2; i++ {
		if _, _, err := s.QueryCached(ctx, bad); err == nil {
			t.Fatalf("call %d: no error for unknown MO", i)
		}
	}
	st := s.ResultCacheStats()
	if st.Entries != 0 {
		t.Fatalf("error result was cached: %+v", st)
	}
	if st.Misses != 2 {
		t.Fatalf("misses = %d, want 2 (both error calls consulted the cache)", st.Misses)
	}
	if err := cat.Register("nosuch", patientMO(t)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.QueryCached(ctx, bad); err != nil {
		t.Fatalf("after registering the MO: %v", err)
	}
}

// TestCacheUnparseableFallsThrough: inputs the key encoder rejects take
// the uncached path and report its parse error.
func TestCacheUnparseableFallsThrough(t *testing.T) {
	s, _ := newTestServer(t, cacheLimits)
	if _, hit, err := s.QueryCached(context.Background(), `SELECT ((((`); err == nil || hit {
		t.Fatalf("hit=%v err=%v, want parse error miss", hit, err)
	}
	if st := s.ResultCacheStats(); st.Hits+st.Misses != 0 {
		t.Fatalf("unparseable input consulted the cache: %+v", st)
	}
}

// TestCacheKeyNormalizationSharesEntries: two spellings of the same
// query occupy one entry — the second spelling hits what the first
// filled.
func TestCacheKeyNormalizationSharesEntries(t *testing.T) {
	s, _ := newTestServer(t, cacheLimits)
	ctx := context.Background()
	a := groupQuery
	b := `select   SETCOUNT( * )   as "SETCOUNT"   from "patients" group by "Diagnosis"."Diagnosis Group"`
	ra, hit, err := s.QueryCached(ctx, a)
	if err != nil || hit {
		t.Fatalf("fill: hit=%v err=%v", hit, err)
	}
	rb, hit, err := s.QueryCached(ctx, b)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("normalized spelling missed the filled entry")
	}
	sameResult(t, "normalized hit", rb, ra)
	if st := s.ResultCacheStats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
}

// TestCatalogGen pins the registration-generation contract the version
// depends on: monotone under re-registration, zero when absent, and
// never reused across a deregister/register cycle.
func TestCatalogGen(t *testing.T) {
	cat := NewCatalog()
	if got := cat.Gen("patients"); got != 0 {
		t.Fatalf("gen of unregistered = %d, want 0", got)
	}
	m := patientMO(t)
	if err := cat.Register("patients", m); err != nil {
		t.Fatal(err)
	}
	g1 := cat.Gen("patients")
	if g1 == 0 {
		t.Fatal("gen after register = 0")
	}
	if err := cat.Register("patients", m); err != nil {
		t.Fatal(err)
	}
	g2 := cat.Gen("patients")
	if g2 == g1 {
		t.Fatal("re-registration did not change the generation")
	}
	cat.Deregister("patients")
	if got := cat.Gen("patients"); got != 0 {
		t.Fatalf("gen after deregister = %d, want 0", got)
	}
	if err := cat.Register("patients", m); err != nil {
		t.Fatal(err)
	}
	if g3 := cat.Gen("patients"); g3 == g1 || g3 == g2 {
		t.Fatalf("generation %d reused across deregister/register (had %d, %d)", g3, g1, g2)
	}
}

// cacheHeader issues one /query request and returns the X-Mddm-Cache
// header (with "" meaning absent).
func cacheHeader(t *testing.T, ts *httptest.Server, extra string) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/query?q=" + url.QueryEscape(groupQuery) + extra)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	return resp.Header.Get("X-Mddm-Cache")
}

// TestHTTPCacheHeaderAndBypass pins the HTTP contract: the header
// narrates miss → hit, ?nocache=1 reports bypass and neither reads nor
// fills the cache, and a malformed nocache value is a client error.
func TestHTTPCacheHeaderAndBypass(t *testing.T) {
	s, _ := newTestServer(t, cacheLimits)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// Bypass first: it must not fill, so the next cached request misses.
	if got := cacheHeader(t, ts, "&nocache=1"); got != "bypass" {
		t.Fatalf("nocache header = %q, want bypass", got)
	}
	if got := cacheHeader(t, ts, ""); got != "miss" {
		t.Fatalf("first cached header = %q, want miss (bypass filled the cache?)", got)
	}
	if got := cacheHeader(t, ts, ""); got != "hit" {
		t.Fatalf("second cached header = %q, want hit", got)
	}
	// Bypass does not read either: it recomputes, and the entry stays.
	if got := cacheHeader(t, ts, "&nocache=true"); got != "bypass" {
		t.Fatalf("nocache=true header = %q, want bypass", got)
	}
	if got := cacheHeader(t, ts, ""); got != "hit" {
		t.Fatalf("cached header after bypass = %q, want hit", got)
	}
	if st := s.ResultCacheStats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}

	resp, err := http.Get(ts.URL + "/query?q=" + url.QueryEscape(groupQuery) + "&nocache=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("nocache=banana status = %s, want 400", resp.Status)
	}
}

// TestHTTPCacheHeaderAbsentWhenDisabled: a server without a result
// cache never emits the header — clients can tell the feature is off.
func TestHTTPCacheHeaderAbsentWhenDisabled(t *testing.T) {
	ts := httpServer(t, Limits{})
	for i := 0; i < 2; i++ {
		if got := cacheHeader(t, ts, ""); got != "" {
			t.Fatalf("header = %q on a cache-less server, want absent", got)
		}
	}
}
