package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"mddm/internal/faultinject"
)

func httpServer(t *testing.T, limits Limits) *httptest.Server {
	t.Helper()
	s, _ := newTestServer(t, limits)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestHealthz(t *testing.T) {
	ts := httpServer(t, Limits{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
}

func queryStatus(t *testing.T, ts *httptest.Server, q string) (int, queryResponse, errorResponse) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/query?q=" + url.QueryEscape(q))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ok queryResponse
	var fail errorResponse
	dec := json.NewDecoder(resp.Body)
	if resp.StatusCode == http.StatusOK {
		if err := dec.Decode(&ok); err != nil {
			t.Fatal(err)
		}
	} else if err := dec.Decode(&fail); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, ok, fail
}

func TestQueryEndpointOK(t *testing.T) {
	ts := httpServer(t, Limits{})
	status, res, _ := queryStatus(t, ts, groupQuery)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if len(res.Rows) == 0 || len(res.Columns) == 0 {
		t.Fatalf("empty result: %+v", res)
	}
}

func TestQueryEndpointPOSTBody(t *testing.T) {
	ts := httpServer(t, Limits{})
	resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(groupQuery))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
}

func TestQueryEndpointStatusMapping(t *testing.T) {
	t.Cleanup(faultinject.Reset)

	// Missing and malformed queries: 400.
	ts := httpServer(t, Limits{})
	if status, _, _ := queryStatus(t, ts, ""); status != http.StatusBadRequest {
		t.Fatalf("empty query: %d", status)
	}
	if status, _, fail := queryStatus(t, ts, "NOT A QUERY"); status != http.StatusBadRequest || fail.Error == "" {
		t.Fatalf("parse error: %d %+v", status, fail)
	}

	// Resource exhaustion: 429.
	tsRows := httpServer(t, Limits{MaxResultRows: 1})
	if status, _, _ := queryStatus(t, tsRows, groupQuery); status != http.StatusTooManyRequests {
		t.Fatalf("row limit: %d", status)
	}

	// Deadline: 504.
	tsSlow := httpServer(t, Limits{Timeout: time.Nanosecond})
	if status, _, _ := queryStatus(t, tsSlow, groupQuery); status != http.StatusGatewayTimeout {
		t.Fatalf("deadline: %d", status)
	}

	// Recovered panic: 500.
	faultinject.EnablePanic(faultinject.QueryExec, "boom")
	if status, _, fail := queryStatus(t, ts, groupQuery); status != http.StatusInternalServerError ||
		!strings.Contains(fail.Error, "internal error") {
		t.Fatalf("panic: %d %+v", status, fail)
	}
	faultinject.Reset()

	// Serialization failure: 500 with the injected cause.
	faultinject.Enable(faultinject.Serialize, errors.New("wire snapped"))
	if status, _, fail := queryStatus(t, ts, groupQuery); status != http.StatusInternalServerError ||
		!strings.Contains(fail.Error, "wire snapped") {
		t.Fatalf("serialize: %d %+v", status, fail)
	}
}

func TestStatusForUnknownErrorIs400(t *testing.T) {
	if got := statusFor(errors.New("anything else")); got != http.StatusBadRequest {
		t.Fatalf("got %d", got)
	}
}
