package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"sort"
	"testing"
	"time"

	"mddm/internal/agg"
	"mddm/internal/casestudy"
	"mddm/internal/exec"
	"mddm/internal/faultinject"
	"mddm/internal/query"
	"mddm/internal/segment"
)

// deltaLimits is the standard delta-maintenance configuration: result
// cache + planner + delta, nothing else in the way.
var deltaLimits = Limits{ResultCacheBytes: 4 << 20, Planner: true, DeltaMaintenance: true}

// deltaAppender returns a closure that relates-and-appends n fresh facts
// to the server's "patients" MO — each with one low-level diagnosis and
// an age, so argument-consuming aggregates have values to fold. The
// engine must already exist (EngineFor) before the first call.
func deltaAppender(t *testing.T, s *Server, prefix string) func(n int) {
	t.Helper()
	ctx := context.Background()
	eng, err := s.EngineFor(ctx, "patients")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := s.cat.Get("patients")
	lows := m.Dimension(casestudy.DimDiagnosis).Category(casestudy.CatLowLevel)
	appended := 0
	return func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("%s%04d", prefix, appended)
			appended++
			if err := m.Relate(casestudy.DimDiagnosis, id, lows[appended%len(lows)]); err != nil {
				t.Fatal(err)
			}
			ageID, err := casestudy.AddAge(m.Dimension(casestudy.DimAge), 20+appended%55)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Relate(casestudy.DimAge, id, ageID); err != nil {
				t.Fatal(err)
			}
			if err := eng.AppendFact(id); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestDeltaUpgradeDifferentialAllAggregates is the tentpole's proof
// obligation: for every registered aggregate, under an interleaved
// append schedule at parallelism degrees 1/2/4/8, the delta-merged
// answer is bit-identical (columns, rows, summarizability verdict, and
// reasons) to both a from-scratch recompute through the server and the
// index-free query.Exec baseline. Mergeable, non-probabilistic
// functions must take the upgrade path every round — a silent fallback
// to recompute would pass the equality and inflate nothing, so the
// outcome flag is asserted too. Holistic and probabilistic functions
// must never upgrade (their fills carry no partials) and still answer
// correctly through the recompute path.
func TestDeltaUpgradeDifferentialAllAggregates(t *testing.T) {
	names := agg.Names()
	sort.Strings(names)
	degrees := []int{1, 2, 4, 8}
	for _, name := range names {
		g := agg.MustLookup(name)
		t.Run(name, func(t *testing.T) {
			s, _ := newTestServer(t, deltaLimits)
			grow := deltaAppender(t, s, "delta"+name)
			src := aggQuery(g)
			ctx := context.Background()

			if _, out, err := s.ServeQuery(ctx, src); err != nil {
				t.Fatalf("fill: %v", err)
			} else if out.CacheHit || out.Upgraded {
				t.Fatalf("fill outcome = %+v", out)
			}

			mergeable := g.Mergeable() && !g.NeedsProb
			for round, d := range degrees {
				grow(round + 1)
				dctx := exec.WithParallelism(ctx, d)
				got, out, err := s.ServeQuery(dctx, src)
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				if mergeable && !out.Upgraded {
					t.Fatalf("round %d: outcome %+v, want an upgrade (silent recompute would fake the win)", round, out)
				}
				if !mergeable && out.Upgraded {
					t.Fatalf("round %d: non-mergeable %s upgraded", round, name)
				}

				base, err := query.Exec(src, s.cat.Snapshot(), testRef)
				if err != nil {
					t.Fatalf("round %d baseline: %v", round, err)
				}
				sameResult(t, fmt.Sprintf("round %d vs baseline", round), got, base)
				if !reflect.DeepEqual(got.Reasons, base.Reasons) {
					t.Fatalf("round %d: reasons %v != baseline %v", round, got.Reasons, base.Reasons)
				}
				recomp, err := s.Query(dctx, src)
				if err != nil {
					t.Fatalf("round %d recompute: %v", round, err)
				}
				sameResult(t, fmt.Sprintf("round %d vs recompute", round), got, recomp)
				if !reflect.DeepEqual(got.Reasons, recomp.Reasons) {
					t.Fatalf("round %d: reasons %v != recompute %v", round, got.Reasons, recomp.Reasons)
				}
			}
		})
	}
}

// TestDeltaUpgradeWhereHavingOrderLimit pins that an upgrade reproduces
// the full post-processing pipeline: the cached partials hold all
// groups pre-HAVING/ORDER/LIMIT, the WHERE selection is recompiled over
// the grown fact universe, and the merged result re-applies the
// original query's HAVING, ORDER BY, and LIMIT — bit-identical to a
// recompute, across sustained appends that move groups across the
// HAVING threshold and the LIMIT cutoff.
func TestDeltaUpgradeWhereHavingOrderLimit(t *testing.T) {
	const src = `SELECT SETCOUNT(*) AS N FROM patients WHERE Age >= 40 GROUP BY Diagnosis."Diagnosis Group" HAVING >= 2 ORDER BY N DESC LIMIT 3`
	s, _ := newTestServer(t, deltaLimits)
	grow := deltaAppender(t, s, "dhol")
	ctx := context.Background()

	if _, out, err := s.ServeQuery(ctx, src); err != nil {
		t.Fatalf("fill: %v", err)
	} else if out.CacheHit {
		t.Fatal("fill hit an empty cache")
	}
	for round := 0; round < 4; round++ {
		grow(5) // ages 20..74 cycle: some pass the WHERE, some do not
		got, out, err := s.ServeQuery(ctx, src)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !out.Upgraded {
			t.Fatalf("round %d: outcome %+v, want an upgrade", round, out)
		}
		recomp, err := s.Query(ctx, src)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, fmt.Sprintf("round %d", round), got, recomp)
		if !reflect.DeepEqual(got.Reasons, recomp.Reasons) {
			t.Fatalf("round %d: reasons %v != %v", round, got.Reasons, recomp.Reasons)
		}
	}
}

// TestDeltaUpgradeHTTPHeader: the wire-visible distinction — a repaired
// entry answers with X-Mddm-Cache: hit-upgraded, a fresh repeat with
// hit, and the body matches the recomputed answer.
func TestDeltaUpgradeHTTPHeader(t *testing.T) {
	s, _ := newTestServer(t, deltaLimits)
	grow := deltaAppender(t, s, "dhttp")
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	path := "/query?q=" + url.QueryEscape(groupQuery)

	resp, _ := getWithHeaders(t, ts, path, nil)
	if got := resp.Header.Get("X-Mddm-Cache"); got != "miss" {
		t.Fatalf("fill header = %q, want miss", got)
	}
	grow(2)
	resp, _ = getWithHeaders(t, ts, path, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upgraded status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Mddm-Cache"); got != "hit-upgraded" {
		t.Fatalf("upgraded header = %q, want hit-upgraded", got)
	}
	resp, _ = getWithHeaders(t, ts, path, nil)
	if got := resp.Header.Get("X-Mddm-Cache"); got != "hit" {
		t.Fatalf("repeat header = %q, want hit", got)
	}
}

// TestDeltaGenMovedFallsBack: a catalog re-registration moves the
// generation; the partials describe an MO that is no longer served, so
// the upgrade must refuse (counted under reason gen-moved), demote the
// entry, and let the normal recompute answer.
func TestDeltaGenMovedFallsBack(t *testing.T) {
	s, cat := newTestServer(t, deltaLimits)
	ctx := context.Background()
	if _, err := s.EngineFor(ctx, "patients"); err != nil {
		t.Fatal(err)
	}
	r1, _, err := s.ServeQuery(ctx, groupQuery)
	if err != nil {
		t.Fatal(err)
	}
	genMoved0 := mDeltaFallbackGenMoved.Value()
	upgrades0 := s.ResultCacheStats().Upgrades

	if err := cat.Register("patients", patientMO(t)); err != nil {
		t.Fatal(err)
	}
	res, out, err := s.ServeQuery(ctx, groupQuery)
	if err != nil {
		t.Fatal(err)
	}
	if out.Upgraded || out.CacheHit {
		t.Fatalf("outcome after re-registration = %+v, want a plain miss", out)
	}
	sameResult(t, "refill after gen move", res, r1) // identical data, new MO
	if got := mDeltaFallbackGenMoved.Value() - genMoved0; got != 1 {
		t.Errorf("gen-moved fallbacks = %d, want 1", got)
	}
	if got := s.ResultCacheStats().Upgrades - upgrades0; got != 0 {
		t.Errorf("upgrades counted across a generation move: %d", got)
	}
}

// TestDeltaWindowUnknownFallsBack: when the entry's epoch has been
// trimmed out of the engine's journal, no sound delta range exists —
// the upgrade must refuse (reason window-unknown), demote, and the
// recompute must answer correctly and refill an upgradeable entry that
// resumes upgrading.
func TestDeltaWindowUnknownFallsBack(t *testing.T) {
	if testing.Short() {
		t.Skip("appends past the epoch-journal bound")
	}
	s, _ := newTestServer(t, deltaLimits)
	grow := deltaAppender(t, s, "dtrim")
	ctx := context.Background()

	if _, _, err := s.ServeQuery(ctx, groupQuery); err != nil {
		t.Fatal(err)
	}
	window0 := mDeltaFallbackWindow.Value()
	// Push the fill's epoch out of the journal (storage trims its window
	// ring at 4096 entries; see storage/epoch.go).
	grow(4200)

	res, out, err := s.ServeQuery(ctx, groupQuery)
	if err != nil {
		t.Fatal(err)
	}
	if out.Upgraded {
		t.Fatalf("outcome %+v: upgraded across a trimmed journal window", out)
	}
	fresh, err := query.Exec(groupQuery, s.cat.Snapshot(), testRef)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "recompute after window loss", res, fresh)
	if got := mDeltaFallbackWindow.Value() - window0; got != 1 {
		t.Errorf("window-unknown fallbacks = %d, want 1", got)
	}

	// The refilled entry upgrades again: the journal covers epochs from
	// here on.
	grow(3)
	if _, out, err := s.ServeQuery(ctx, groupQuery); err != nil || !out.Upgraded {
		t.Fatalf("post-refill append: outcome %+v err %v, want an upgrade", out, err)
	}
}

// TestDeltaOverFreshFillStaysPlain pins the over-fresh guard: a fill
// whose version moved during computation (here: the version is read
// while a stale engine is resident after a re-registration, and the
// fill's rebuild moves the epoch) must be stored WITHOUT partials — a
// later delta fold against it would double-count — so the next lookup
// is a plain miss, and only the stable refill starts upgrading. The
// cold-start case is warmed away: ServeQuery builds the engine before
// reading an epoch-0 version, so the very first fill is already
// cacheable and upgradeable.
func TestDeltaOverFreshFillStaysPlain(t *testing.T) {
	s, cat := newTestServer(t, deltaLimits)
	ctx := context.Background()

	// Cold start: the warm-before-version read makes the first fill
	// stable, so its repeat is a plain hit.
	if _, out, err := s.ServeQuery(ctx, groupQuery); err != nil {
		t.Fatal(err)
	} else if out.CacheHit {
		t.Fatal("first fill hit")
	}
	if _, out, err := s.ServeQuery(ctx, groupQuery); err != nil || !out.CacheHit || out.Upgraded {
		t.Fatalf("cold-start fill not served as a plain hit: %+v %v", out, err)
	}

	// Re-register the MO: the next fill reads its version against the
	// stale resident engine, rebuilds mid-computation, and finishes
	// over-fresh for the version it is stored under.
	if err := cat.Register("patients", patientMO(t)); err != nil {
		t.Fatal(err)
	}
	if _, out, err := s.ServeQuery(ctx, groupQuery); err != nil {
		t.Fatal(err)
	} else if out.CacheHit || out.Upgraded {
		t.Fatalf("outcome %+v: fill after re-register served a stale entry", out)
	}
	if _, out, err := s.ServeQuery(ctx, groupQuery); err != nil {
		t.Fatal(err)
	} else if out.CacheHit || out.Upgraded {
		t.Fatalf("outcome %+v: an over-fresh fill must not serve (as hit or via upgrade)", out)
	}
	// The stable refill is hittable and upgradeable.
	if _, out, err := s.ServeQuery(ctx, groupQuery); err != nil || !out.CacheHit {
		t.Fatalf("stable refill not served: %+v %v", out, err)
	}
	grow := deltaAppender(t, s, "dfresh")
	grow(1)
	if _, out, err := s.ServeQuery(ctx, groupQuery); err != nil || !out.Upgraded {
		t.Fatalf("outcome %+v err %v, want an upgrade from the stable refill", out, err)
	}
}

// TestDeltaStaleOnShedInterplay is the staleness-interplay pin: with
// both StaleOnShed and DeltaMaintenance on, an upgradeable entry shed
// under overload must be answered FRESH by the delta merge — never
// degraded-stale — while a plain (partial-less) entry under the same
// overload still takes the degraded path with its warning, and the
// KeepStale-retained plain entry is the one fallback counted under
// no-partials. Stats count the upgrade distinctly from hits.
func TestDeltaStaleOnShedInterplay(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	limits := admissionLimits()
	limits.Admission.TenantRate = 1000
	limits.Admission.TenantBurst = 1000
	limits.StaleOnShed = time.Minute
	limits.Planner = true
	limits.DeltaMaintenance = true
	s, _ := newTestServer(t, limits)
	grow := deltaAppender(t, s, "dshed")
	ctx := context.Background()

	// MEDIAN is holistic: its fill carries no partials, so under
	// overload it can only degrade.
	medianQuery := `SELECT MEDIAN(Age) AS N FROM patients GROUP BY Diagnosis."Diagnosis Group"`
	if _, out, err := s.ServeQuery(ctx, groupQuery); err != nil || out.CacheHit {
		t.Fatalf("fill: %+v %v", out, err)
	}
	if _, out, err := s.ServeQuery(ctx, medianQuery); err != nil || out.CacheHit {
		t.Fatalf("median fill: %+v %v", out, err)
	}
	st0 := s.ResultCacheStats()
	noPartials0 := mDeltaFallbackNoPartials.Value()

	grow(2)
	faultinject.Enable(faultinject.QuotaExhausted, nil)

	// The upgradeable entry answers fresh: never degraded-stale when a
	// delta merge can repair it.
	res, out, err := s.ServeQuery(ctx, groupQuery)
	if err != nil {
		t.Fatalf("shed+upgradeable: %v", err)
	}
	if !out.Upgraded || out.DegradedStale {
		t.Fatalf("outcome %+v, want Upgraded and not DegradedStale", out)
	}
	if len(res.Warnings) != 0 {
		t.Errorf("upgraded answer carries warnings: %v", res.Warnings)
	}
	fresh, err := query.Exec(groupQuery, s.cat.Snapshot(), testRef)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "upgraded under shed vs fresh", res, fresh)

	// The partial-less entry can only degrade — stale answer, warning,
	// and the no-partials fallback accounted.
	mres, out, err := s.ServeQuery(ctx, medianQuery)
	if err != nil {
		t.Fatalf("shed+plain: %v", err)
	}
	if !out.DegradedStale || out.Upgraded {
		t.Fatalf("plain-entry outcome %+v, want DegradedStale", out)
	}
	if len(mres.Warnings) == 0 {
		t.Error("degraded answer carries no warning")
	}
	if got := mDeltaFallbackNoPartials.Value() - noPartials0; got != 1 {
		t.Errorf("no-partials fallbacks = %d, want 1", got)
	}

	st := s.ResultCacheStats()
	if got := st.Upgrades - st0.Upgrades; got != 1 {
		t.Errorf("cache upgrades = %d, want 1", got)
	}
	if st.Hits != st0.Hits {
		t.Errorf("hits moved %d -> %d: upgrades must be counted distinctly from hits", st0.Hits, st.Hits)
	}
}

// TestDeltaOffShedDegradesStale is the control for the interplay: same
// overload, DeltaMaintenance off — the stale entry is served degraded.
func TestDeltaOffShedDegradesStale(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	limits := admissionLimits()
	limits.Admission.TenantRate = 1000
	limits.Admission.TenantBurst = 1000
	limits.StaleOnShed = time.Minute
	limits.Planner = true
	s, _ := newTestServer(t, limits)
	grow := deltaAppender(t, s, "dctrl")
	ctx := context.Background()

	if _, out, err := s.ServeQuery(ctx, groupQuery); err != nil || out.CacheHit {
		t.Fatalf("fill: %+v %v", out, err)
	}
	grow(1)
	faultinject.Enable(faultinject.QuotaExhausted, nil)
	_, out, err := s.ServeQuery(ctx, groupQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !out.DegradedStale || out.Upgraded {
		t.Fatalf("outcome %+v, want DegradedStale with delta off", out)
	}
}

// TestDeltaDurableRestartCoherence: epoch windows must survive a
// durable-store restart in the only sense that is sound — the recovered
// engine starts a fresh journal, and appends made through the store
// AFTER recovery resolve via DeltaRange, so cached results filled on
// the recovered process upgrade across durable appends exactly as they
// do across in-memory ones.
func TestDeltaDurableRestartCoherence(t *testing.T) {
	dir := t.TempDir()
	writer := openStore(t, dir, segment.Options{FoldEvery: 10})
	recs := storeRecords(t, writer, 27)
	for _, rec := range recs[:25] {
		if err := writer.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := writer.Close(); err != nil {
		t.Fatal(err)
	}

	recovered := openStore(t, dir, segment.Options{})
	defer recovered.Close()
	s := attachedServer(t, recovered, deltaLimits)
	ctx := context.Background()

	if _, out, err := s.ServeQuery(ctx, groupQuery); err != nil || out.CacheHit {
		t.Fatalf("fill on recovered store: %+v %v", out, err)
	}
	// Durable appends on the recovered process: WAL-logged, applied to
	// the serving engine, epoch journaled.
	for _, rec := range recs[25:] {
		if _, err := s.Append("patients", rec); err != nil {
			t.Fatal(err)
		}
	}
	res, out, err := s.ServeQuery(ctx, groupQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Upgraded {
		t.Fatalf("outcome %+v, want an upgrade across durable appends after restart", out)
	}
	fresh, err := query.Exec(groupQuery, s.cat.Snapshot(), testRef)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "upgraded vs fresh after restart", res, fresh)
}
