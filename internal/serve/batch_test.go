package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"mddm/internal/agg"
	"mddm/internal/batch"
	"mddm/internal/casestudy"
	"mddm/internal/faultinject"
	"mddm/internal/plan"
	"mddm/internal/query"
)

func batchedLimits(deg int) Limits {
	return Limits{
		Planner:     true,
		Parallelism: deg,
		Batching: batch.Config{
			Enabled:        true,
			GatherWindow:   5 * time.Millisecond,
			MaxParallelism: deg,
		},
	}
}

// TestBatchDifferentialOracle is the serving-layer oracle for shared-scan
// batching: for EVERY registered aggregate function, at scan degrees 1,
// 2, 4, and 8, a batched server must answer bit-identically to a solo
// planner server and to the algebra server — and the batch outcome flag
// must prove which path actually ran: batchable aggregates must report
// leader or member (a silent bypass-to-solo fails the test), while
// probabilistic and holistic aggregates must report solo with the
// fallback bypass reason.
func TestBatchDifferentialOracle(t *testing.T) {
	for _, deg := range []int{1, 2, 4, 8} {
		batched, _ := newTestServer(t, batchedLimits(deg))
		solo, _ := newTestServer(t, Limits{Planner: true, Parallelism: deg})
		algebra, _ := newTestServer(t, Limits{Parallelism: deg})
		for _, name := range agg.Names() {
			fn, err := agg.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			arg := "(*)"
			if fn.NeedsArg {
				arg = "(Age)"
			}
			batchable := !fn.NeedsProb && fn.NewState != nil
			for _, src := range []string{
				fmt.Sprintf(`SELECT %s%s FROM patients GROUP BY Diagnosis."Diagnosis Group"`, name, arg),
				fmt.Sprintf(`SELECT %s%s FROM patients WHERE Age >= 30 GROUP BY Residence."Region"`, name, arg),
			} {
				ctx, bo := WithBatchOutcome(context.Background())
				rb, errB := batched.Query(ctx, src)
				rs, errS := solo.Query(context.Background(), src)
				ra, errA := algebra.Query(context.Background(), src)
				if (errB == nil) != (errS == nil) || (errB == nil) != (errA == nil) {
					t.Fatalf("%s deg=%d: errs batched=%v solo=%v algebra=%v", src, deg, errB, errS, errA)
				}
				if errB != nil {
					if errB.Error() != errS.Error() || errB.Error() != errA.Error() {
						t.Fatalf("%s deg=%d: error text diverged:\n batched: %v\n solo:    %v\n algebra: %v",
							src, deg, errB, errS, errA)
					}
				} else {
					if !reflect.DeepEqual(rb, rs) {
						t.Fatalf("%s deg=%d: batched diverged from solo:\n batched: %+v\n solo:    %+v", src, deg, rb, rs)
					}
					if !reflect.DeepEqual(rb, ra) {
						t.Fatalf("%s deg=%d: batched diverged from algebra:\n batched: %+v\n algebra: %+v", src, deg, rb, ra)
					}
				}
				if batchable {
					if bo.Outcome != batch.OutcomeLeader && bo.Outcome != batch.OutcomeMember {
						t.Fatalf("%s deg=%d: outcome %q (reason %q), want leader or member — silent bypass",
							src, deg, bo.Outcome, bo.Reason)
					}
				} else {
					if bo.Outcome != batch.OutcomeSolo || bo.Reason != plan.BypassFallback {
						t.Fatalf("%s deg=%d: outcome %q reason %q, want solo/fallback", src, deg, bo.Outcome, bo.Reason)
					}
				}
			}
		}
		if st := batched.BatchStats(); st.Batches == 0 || st.Bypasses[plan.BypassFallback] == 0 {
			t.Fatalf("deg=%d: stats %+v, want batches and fallback bypasses", deg, st)
		}
	}
}

// TestBatchMemberFusion drives concurrent similar queries (same grouping
// leg, different WHERE) into one gather window and asserts real fusion:
// at least one member outcome, shared-scan savings, and every member's
// result identical to its own solo execution.
func TestBatchMemberFusion(t *testing.T) {
	limits := batchedLimits(2)
	limits.Batching.GatherWindow = 100 * time.Millisecond
	batched, _ := newTestServer(t, limits)
	solo, _ := newTestServer(t, Limits{Planner: true, Parallelism: 2})

	regions := []string{"R0", "R1", "R2", "R3"}
	srcs := make([]string, 8)
	for i := range srcs {
		srcs[i] = fmt.Sprintf(
			`SELECT SETCOUNT(*) FROM patients WHERE Residence = '%s' GROUP BY Diagnosis."Diagnosis Group"`,
			regions[i%len(regions)])
	}
	outcomes := make([]batch.Outcome, len(srcs))
	results := make([]*query.Result, len(srcs))
	var wg sync.WaitGroup
	for i, src := range srcs {
		wg.Add(1)
		go func(i int, src string) {
			defer wg.Done()
			ctx, bo := WithBatchOutcome(context.Background())
			r, err := batched.Query(ctx, src)
			if err != nil {
				t.Errorf("%s: %v", src, err)
				return
			}
			outcomes[i] = bo.Outcome
			results[i] = r
		}(i, src)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	leaders, members := 0, 0
	for i, o := range outcomes {
		switch o {
		case batch.OutcomeLeader:
			leaders++
		case batch.OutcomeMember:
			members++
		default:
			t.Fatalf("query %d: outcome %q", i, o)
		}
	}
	if leaders == 0 || members == 0 {
		t.Fatalf("outcomes: %d leaders, %d members — no fusion happened", leaders, members)
	}
	if st := batched.BatchStats(); st.ScansSaved == 0 {
		t.Fatalf("stats %+v, want shared-scan savings", st)
	}
	for i, src := range srcs {
		want, err := solo.Query(context.Background(), src)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(results[i], want) {
			t.Fatalf("%s: batched member diverged from solo:\n batched: %+v\n solo:    %+v", src, results[i], want)
		}
	}
}

// TestBatchHeaderPrecedence pins the X-Mddm-Batch / X-Mddm-Cache /
// X-Mddm-Degraded precedence table (docs/TRAFFIC.md): the batch header
// appears exactly when the answer was computed through the batch-enabled
// planner branch — cache hits and degraded stale-on-shed serves carry the
// cache headers alone, ?nocache=1 computes and carries both.
func TestBatchHeaderPrecedence(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	limits := batchedLimits(1)
	limits.ResultCacheBytes = 1 << 20
	limits.StaleOnShed = time.Minute
	limits.Admission = admissionLimits().Admission
	limits.Admission.TenantRate = 1000
	limits.Admission.TenantBurst = 1000
	s, _ := newTestServer(t, limits)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	ctx := context.Background()

	eng, err := s.EngineFor(ctx, "patients")
	if err != nil {
		t.Fatal(err)
	}
	q := "/query?q=" + url.QueryEscape(groupQuery)

	// Miss: computed through the batch branch — batch header present
	// (single query: leader), cache header miss.
	resp, _ := getWithHeaders(t, ts, q, nil)
	if got := resp.Header.Get("X-Mddm-Cache"); got != "miss" {
		t.Fatalf("fill: X-Mddm-Cache = %q, want miss", got)
	}
	if got := resp.Header.Get("X-Mddm-Batch"); got != "leader" {
		t.Fatalf("fill: X-Mddm-Batch = %q, want leader", got)
	}

	// Hit: answered from memory, never reached the planner — no batch
	// header.
	resp, _ = getWithHeaders(t, ts, q, nil)
	if got := resp.Header.Get("X-Mddm-Cache"); got != "hit" {
		t.Fatalf("hit: X-Mddm-Cache = %q, want hit", got)
	}
	if got := resp.Header.Get("X-Mddm-Batch"); got != "" {
		t.Fatalf("hit: X-Mddm-Batch = %q, want absent", got)
	}

	// Bypass: ?nocache=1 computes through the batch branch every time.
	resp, _ = getWithHeaders(t, ts, q+"&nocache=1", nil)
	if got := resp.Header.Get("X-Mddm-Cache"); got != "bypass" {
		t.Fatalf("nocache: X-Mddm-Cache = %q, want bypass", got)
	}
	if got := resp.Header.Get("X-Mddm-Batch"); got != "leader" {
		t.Fatalf("nocache: X-Mddm-Batch = %q, want leader", got)
	}

	// Non-batchable shape: computed, so the batch header appears — as
	// solo, with the planner having counted the bypass.
	facts := "/query?nocache=1&q=" + url.QueryEscape(`SELECT FACTS FROM patients WHERE Residence = 'R1'`)
	resp, _ = getWithHeaders(t, ts, facts, nil)
	if got := resp.Header.Get("X-Mddm-Batch"); got != "solo" {
		t.Fatalf("facts: X-Mddm-Batch = %q, want solo", got)
	}

	// Stale-on-shed: invalidate the cached entry with an append, shed the
	// refill — the degraded serve comes from the stale cache entry and
	// must NOT claim a batch outcome.
	m, _ := s.cat.Get("patients")
	lows := m.Dimension(casestudy.DimDiagnosis).Category(casestudy.CatLowLevel)
	if err := m.Relate(casestudy.DimDiagnosis, "shedfact", lows[0]); err != nil {
		t.Fatal(err)
	}
	if err := eng.AppendFact("shedfact"); err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(faultinject.QuotaExhausted, nil)
	resp, _ = getWithHeaders(t, ts, q, nil)
	faultinject.Reset()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded: status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Mddm-Degraded"); got != "stale-on-shed" {
		t.Fatalf("degraded: X-Mddm-Degraded = %q", got)
	}
	if got := resp.Header.Get("X-Mddm-Cache"); got != "stale" {
		t.Fatalf("degraded: X-Mddm-Cache = %q, want stale", got)
	}
	if got := resp.Header.Get("X-Mddm-Batch"); got != "" {
		t.Fatalf("degraded: X-Mddm-Batch = %q, want absent on a stale serve", got)
	}

	// A server without batching never emits the header, computed or not.
	plain, _ := newTestServer(t, Limits{Planner: true})
	tsp := httptest.NewServer(plain.Handler())
	t.Cleanup(tsp.Close)
	resp, _ = getWithHeaders(t, tsp, q, nil)
	if got := resp.Header.Get("X-Mddm-Batch"); got != "" {
		t.Fatalf("plain server: X-Mddm-Batch = %q, want absent", got)
	}
}

// TestBatchRaceUnderLoad extends the serving race suite to the batch
// scheduler: batched similar queries (nocache), cached delta-upgrade
// traffic, incremental AppendFact on the served engine, catalog
// re-registrations (forcing new engines — and therefore new batch keys)
// and /metrics scrapes all run concurrently. `go test -race` must stay
// silent, and a quiescent differential check proves no torn batch state
// leaked into results.
func TestBatchRaceUnderLoad(t *testing.T) {
	cat := NewCatalog()
	m := patientMO(t)
	if err := cat.Register("patients", m); err != nil {
		t.Fatal(err)
	}
	limits := batchedLimits(2)
	limits.ResultCacheBytes = 1 << 20
	limits.DeltaMaintenance = true
	limits.MaxFactsScanned = 1 << 20
	limits.ColumnMinValues = 8
	s := NewServer(cat, limits, testRef)
	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	mux.Handle("/metrics", s.MetricsHandler())
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	eng, err := s.EngineFor(context.Background(), "patients")
	if err != nil {
		t.Fatal(err)
	}
	const appends = 25
	lows := m.Dimension(casestudy.DimDiagnosis).Category(casestudy.CatLowLevel)
	for i := 0; i < appends; i++ {
		id := fmt.Sprintf("new%d", i)
		if err := m.Relate(casestudy.DimDiagnosis, id, lows[i%len(lows)]); err != nil {
			t.Fatal(err)
		}
	}

	const iters = 25
	var wg sync.WaitGroup
	fail := func(format string, args ...any) {
		t.Errorf(format, args...)
	}

	// Batched queriers: similar queries, cache bypassed so every request
	// runs through the scheduler.
	regions := []string{"R0", "R1", "R2"}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				src := fmt.Sprintf(
					`SELECT SETCOUNT(*) FROM patients WHERE Residence = '%s' GROUP BY Diagnosis."Diagnosis Group"`,
					regions[(g+i)%len(regions)])
				resp, err := http.Get(ts.URL + "/query?nocache=1&q=" + url.QueryEscape(src))
				if err != nil {
					fail("batched query: %v", err)
					return
				}
				var qr queryResponse
				err = json.NewDecoder(resp.Body).Decode(&qr)
				outcome := resp.Header.Get("X-Mddm-Batch")
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					fail("batched query: status %d err %v", resp.StatusCode, err)
					return
				}
				if outcome == "" {
					fail("batched query: no X-Mddm-Batch header on a computed answer")
					return
				}
			}
		}(g)
	}

	// The cached querier exercises fill → hit → delta-upgrade while the
	// appender moves the engine's epoch.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			resp, err := http.Get(ts.URL + "/query?q=" + url.QueryEscape(groupQuery))
			if err != nil {
				fail("cached query: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				fail("cached query: status %d", resp.StatusCode)
				return
			}
		}
	}()

	// The registrar swaps the catalog entry: queries planned against the
	// old engine must never share a scan with queries on the new one.
	wg.Add(1)
	go func() {
		defer wg.Done()
		base := patientMO(t)
		for i := 0; i < iters/5; i++ {
			if err := cat.Register("patients", base.Clone()); err != nil {
				fail("register: %v", err)
				return
			}
		}
	}()

	// The appender grows the originally served engine.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < appends; i++ {
			if err := eng.AppendFact(fmt.Sprintf("new%d", i)); err != nil {
				fail("append: %v", err)
				return
			}
		}
	}()

	// The scraper must always see the batch series.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				fail("scrape: %v", err)
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				fail("scrape: %v", err)
				return
			}
			if !strings.Contains(string(body), "mddm_batch_batches_total") {
				fail("scrape: exposition missing batch counters")
				return
			}
		}
	}()

	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiescent differential check: whatever engine the server now holds,
	// the batched path must equal the algebra over the same snapshot.
	ctx, bo := WithBatchOutcome(context.Background())
	r1, err := s.Query(ctx, groupQuery)
	if err != nil {
		t.Fatal(err)
	}
	if bo.Outcome == "" {
		t.Fatal("post-storm query reported no batch outcome")
	}
	r2, err := query.ExecContext(context.Background(), groupQuery, s.cat.Snapshot(), s.ref)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Rows, r2.Rows) {
		t.Fatalf("post-storm batched rows diverged from algebra:\n batched: %v\n algebra: %v", r1.Rows, r2.Rows)
	}
}

// TestBatchRequiresPlanner pins the wiring guard: Batching without
// Planner is inert — no scheduler, no headers, queries still answered.
func TestBatchRequiresPlanner(t *testing.T) {
	s, _ := newTestServer(t, Limits{Batching: batch.Config{Enabled: true}})
	if s.BatchingEnabled() {
		t.Fatal("batching without the planner must be inert")
	}
	if st := s.BatchStats(); st.Batches != 0 {
		t.Fatalf("inert scheduler stats %+v", st)
	}
	ctx, bo := WithBatchOutcome(context.Background())
	if _, err := s.Query(ctx, groupQuery); err != nil {
		t.Fatal(err)
	}
	if bo.Outcome != "" {
		t.Fatalf("outcome %q on a server without batching", bo.Outcome)
	}
}
