package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strings"
	"sync"
	"testing"

	"mddm/internal/casestudy"
	"mddm/internal/dimension"
	"mddm/internal/exec"
	"mddm/internal/storage"
)

// TestMetricsScrapeUnderLoad is the race test for the observability
// surface: /metrics and /debug/queries are scraped continuously while
// parallel queries (traced and untraced) run through the HTTP API, the
// catalog entry is re-registered to force engine-cache rebuilds, and a
// bitmap engine is maintained by incremental appends. Every one of these
// writes the shared metric registry; `go test -race` must stay silent.
func TestMetricsScrapeUnderLoad(t *testing.T) {
	s, cat := newTestServer(t, Limits{Parallelism: 2, MaxFactsScanned: 1 << 20, ColumnMinValues: 8})
	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	mux.Handle("/metrics", s.MetricsHandler())
	mux.Handle("/debug/queries", s.ActiveQueriesHandler())
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	// The incrementally maintained engine. All new facts are related to
	// the MO up front — the MO is read-only once goroutines start; only
	// AppendFact and the aggregation calls race on the engine itself.
	cfg := casestudy.DefaultGen()
	cfg.Patients = 30
	m := casestudy.MustGenerate(cfg)
	eng := storage.NewEngine(m, dimension.CurrentContext(testRef))
	const appends = 25
	lows := m.Dimension(casestudy.DimDiagnosis).Category(casestudy.CatLowLevel)
	for i := 0; i < appends; i++ {
		id := fmt.Sprintf("new%d", i)
		if err := m.Relate(casestudy.DimDiagnosis, id, lows[i%len(lows)]); err != nil {
			t.Fatal(err)
		}
	}

	const iters = 25
	var wg sync.WaitGroup
	fail := func(format string, args ...any) {
		t.Errorf(format, args...)
	}

	// Two scrapers: the full Prometheus exposition plus the in-flight
	// query inspector, decoded on every pass.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					fail("scrape: %v", err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					fail("scrape: status %d err %v", resp.StatusCode, err)
					return
				}
				if !strings.Contains(string(body), "mddm_serve_queries_total") {
					fail("scrape: exposition missing serve counters")
					return
				}
				dresp, err := http.Get(ts.URL + "/debug/queries")
				if err != nil {
					fail("debug: %v", err)
					return
				}
				var dq struct {
					Queries []ActiveQuery `json:"queries"`
				}
				err = json.NewDecoder(dresp.Body).Decode(&dq)
				dresp.Body.Close()
				if err != nil {
					fail("debug: %v", err)
					return
				}
			}
		}()
	}

	// Two queriers, alternating traced and untraced parallel queries.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				u := ts.URL + "/query?parallelism=2&q=" + url.QueryEscape(groupQuery)
				if (i+g)%2 == 0 {
					u += "&trace=1"
				}
				resp, err := http.Get(u)
				if err != nil {
					fail("query: %v", err)
					return
				}
				var qr queryResponse
				err = json.NewDecoder(resp.Body).Decode(&qr)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					fail("query: status %d err %v", resp.StatusCode, err)
					return
				}
				if (i+g)%2 == 0 && qr.Trace == nil {
					fail("query: traced request returned no trace")
					return
				}
			}
		}(g)
	}

	// The registrar forces engine-cache rebuilds mid-flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		base := patientMO(t)
		for i := 0; i < iters/5; i++ {
			if err := cat.Register("patients", base.Clone()); err != nil {
				fail("register: %v", err)
				return
			}
		}
	}()

	// The appender grows the engine while a reader aggregates from it in
	// parallel mode — incremental maintenance under observation. Columns
	// are warmed first, so the appends also maintain the columnar layer.
	if err := eng.WarmColumns(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx := exec.WithParallelism(context.Background(), 2)
		for i := 0; i < appends; i++ {
			if err := eng.AppendFact(fmt.Sprintf("new%d", i)); err != nil {
				fail("append: %v", err)
				return
			}
			if _, err := eng.CountDistinctByContext(ctx, casestudy.DimDiagnosis, casestudy.CatGroup); err != nil {
				fail("aggregate during append: %v", err)
				return
			}
		}
	}()

	// Concurrent read-path goroutines pin the RWMutex refactor: several
	// readers share the engine lock (bitmap kernels, column kernels, and
	// closure clones) while the appender takes the write lock. Under the
	// old exclusive mutex this mix serialized; under -race it now proves
	// reader-reader sharing is safe.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			if g%2 == 1 {
				ctx = exec.WithParallelism(ctx, 4)
			}
			for i := 0; i < iters; i++ {
				if _, err := eng.CountByColumn(ctx, casestudy.DimDiagnosis, casestudy.CatLowLevel); err != nil {
					fail("column count: %v", err)
					return
				}
				if _, err := eng.SumByColumn(ctx, casestudy.DimDiagnosis, casestudy.CatFamily, casestudy.DimAge); err != nil {
					fail("column sum: %v", err)
					return
				}
				if _, err := eng.CrossCountContext(ctx, casestudy.DimDiagnosis, casestudy.CatFamily, casestudy.DimResidence, casestudy.CatArea); err != nil {
					fail("cross count: %v", err)
					return
				}
				eng.Characterizing(casestudy.DimDiagnosis, lows[i%len(lows)])
			}
		}(g)
	}

	wg.Wait()

	// After the dust settles the registry still renders a consistent
	// exposition and the in-flight registry is empty.
	if got := len(s.ActiveQueries()); got != 0 {
		t.Errorf("%d queries still tracked after completion", got)
	}
}

// TestResultCacheRaceUnderLoad is the race test for the result cache:
// cached and cache-bypassing HTTP queries, single-flight fills, catalog
// re-registrations (generation bumps), and incremental appends through
// the sanctioned EngineFor path (epoch bumps) all run concurrently while
// /metrics is scraped for the mddm_cache_* counters. Two catalog entries
// keep the write mixes honest: "patients" is re-registered under load,
// "growing" is append-maintained — its facts are all related before any
// goroutine starts, so only AppendFact and lookups race on shared state.
func TestResultCacheRaceUnderLoad(t *testing.T) {
	s, cat := newTestServer(t, Limits{Parallelism: 2, ResultCacheBytes: 1 << 20})
	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	mux.Handle("/metrics", s.MetricsHandler())
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	cfg := casestudy.DefaultGen()
	cfg.Patients = 30
	grow := casestudy.MustGenerate(cfg)
	if err := cat.Register("growing", grow); err != nil {
		t.Fatal(err)
	}
	// The serving engine must exist before the new facts are related, and
	// the sanctioned flow gets it from the server so the appends bump the
	// epoch of the very engine that versions cached results.
	eng, err := s.EngineFor(context.Background(), "growing")
	if err != nil {
		t.Fatal(err)
	}
	const appends = 25
	lows := grow.Dimension(casestudy.DimDiagnosis).Category(casestudy.CatLowLevel)
	for i := 0; i < appends; i++ {
		id := fmt.Sprintf("grown%d", i)
		if err := grow.Relate(casestudy.DimDiagnosis, id, lows[i%len(lows)]); err != nil {
			t.Fatal(err)
		}
	}

	growQuery := `SELECT SETCOUNT(*) FROM growing GROUP BY Diagnosis."Diagnosis Group"`
	const iters = 25
	var wg sync.WaitGroup
	fail := func(format string, args ...any) {
		t.Errorf(format, args...)
	}

	// Scraper: the cache counters must render throughout.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				fail("scrape: %v", err)
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				fail("scrape: status %d err %v", resp.StatusCode, err)
				return
			}
			if !strings.Contains(string(body), "mddm_cache_hits_total") {
				fail("scrape: exposition missing cache counters")
				return
			}
		}
	}()

	// HTTP queriers over both catalog entries, mixing cached and nocache
	// requests; every response must carry a coherent cache header.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				src := groupQuery
				if (i+g)%2 == 0 {
					src = growQuery
				}
				u := ts.URL + "/query?q=" + url.QueryEscape(src)
				want := map[string]bool{"hit": true, "miss": true}
				if (i+g)%3 == 0 {
					u += "&nocache=1"
					want = map[string]bool{"bypass": true}
				}
				resp, err := http.Get(u)
				if err != nil {
					fail("query: %v", err)
					return
				}
				hdr := resp.Header.Get("X-Mddm-Cache")
				var qr queryResponse
				err = json.NewDecoder(resp.Body).Decode(&qr)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					fail("query: status %d err %v", resp.StatusCode, err)
					return
				}
				if !want[hdr] {
					fail("query: X-Mddm-Cache = %q, want one of %v", hdr, want)
					return
				}
			}
		}(g)
	}

	// Direct cached callers exercising the single-flight path without HTTP
	// overhead, at mixed parallelism degrees.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := exec.WithParallelism(context.Background(), 1+g)
			for i := 0; i < iters; i++ {
				if _, _, err := s.QueryCached(ctx, growQuery); err != nil {
					fail("cached query: %v", err)
					return
				}
			}
		}(g)
	}

	// The registrar bumps the "patients" generation under load.
	wg.Add(1)
	go func() {
		defer wg.Done()
		base := patientMO(t)
		for i := 0; i < iters/5; i++ {
			if err := cat.Register("patients", base.Clone()); err != nil {
				fail("register: %v", err)
				return
			}
		}
	}()

	// The appender bumps the "growing" epoch, invalidating cached results
	// for the queriers racing against it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < appends; i++ {
			if err := eng.AppendFact(fmt.Sprintf("grown%d", i)); err != nil {
				fail("append: %v", err)
				return
			}
		}
	}()

	wg.Wait()

	st := s.ResultCacheStats()
	if st.Hits+st.Misses == 0 {
		t.Error("the cache was never consulted")
	}
	// Every serve under load must have been correct-by-version: a final
	// quiescent lookup agrees with a fresh uncached computation.
	res, _, err := s.QueryCached(context.Background(), growQuery)
	if err != nil {
		t.Fatal(err)
	}
	unc, err := s.Query(context.Background(), growQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Rows, unc.Rows) {
		t.Errorf("quiescent cached result diverges:\n%v\n%v", res.Rows, unc.Rows)
	}
}
