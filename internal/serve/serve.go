// Package serve is the concurrent serving layer over the query path: a
// copy-on-write catalog of MOs, a single-flight engine/pre-aggregate
// cache with stale-while-revalidate degradation, per-query resource
// limits, and panic isolation. It is what turns the single-shot research
// pipeline (parse → algebra → render) into something that can sit behind
// an HTTP listener and survive bad inputs, slow queries, and rebuild
// failures without taking the process down.
package serve

import (
	"errors"
	"fmt"
	"time"

	"mddm/internal/admission"
	"mddm/internal/batch"
	"mddm/internal/qos"
)

// Typed error sentinels, re-exported from qos and admission so handlers
// can classify failures without importing the internal packages.
var (
	// ErrCanceled reports a query abandoned by cancellation or deadline.
	ErrCanceled = qos.ErrCanceled
	// ErrResourceExhausted reports a query stopped by a resource limit.
	ErrResourceExhausted = qos.ErrResourceExhausted
	// ErrOverloaded reports a query shed by admission control before any
	// work happened; the concrete *admission.OverloadError carries the
	// reason and a Retry-After hint. Maps to HTTP 429 (503 while
	// draining).
	ErrOverloaded = admission.ErrOverloaded
	// ErrInternal reports a panic converted into an error by the serving
	// layer. Match with errors.Is; the concrete *InternalError carries the
	// query text and stack.
	ErrInternal = errors.New("serve: internal error")
)

// InternalError is a recovered panic from query execution: the process
// survives, the offending query is reported, and the stack is preserved
// for the operator.
type InternalError struct {
	Query string // the query text that triggered the panic
	Panic any    // the recovered value
	Stack []byte // the goroutine stack at recovery
}

// Error renders the panic without the stack (which is for logs, not for
// error strings).
func (e *InternalError) Error() string {
	return fmt.Sprintf("serve: internal error executing %q: %v", e.Query, e.Panic)
}

// Is makes errors.Is(err, ErrInternal) hold for recovered panics.
func (e *InternalError) Is(target error) bool { return target == ErrInternal }

// Limits bounds one query's resource use. The zero value imposes no
// limits.
type Limits struct {
	// Timeout bounds wall-clock execution; exceeding it yields an
	// ErrCanceled-wrapped error (which also matches
	// context.DeadlineExceeded).
	Timeout time.Duration
	// MaxResultRows bounds the rows a query may return; exceeding it
	// yields ErrResourceExhausted.
	MaxResultRows int
	// MaxFactsScanned bounds the facts a query may visit across
	// selection, aggregation, and output; exceeding it yields
	// ErrResourceExhausted.
	MaxFactsScanned int64
	// Parallelism is the default per-query parallelism degree installed
	// into the query context (0 or 1 = sequential). A degree already
	// carried by the caller's context — e.g. the HTTP layer's per-query
	// ?parallelism= override — takes precedence. Budgets and results are
	// identical at any degree; only wall-clock changes.
	Parallelism int
	// ColumnMinValues, when positive, warms the characterization columns
	// of every category with at least this many values right after an
	// engine build (storage.Engine.WarmColumns), so the first query
	// already runs the single-pass column kernels. Zero leaves columns
	// cold; queries then use the bitmap kernels (results are identical —
	// only wall-clock changes).
	ColumnMinValues int
	// ResultCacheBytes, when positive, enables the versioned query-result
	// cache (internal/cache) bounded to roughly this many bytes. Cached
	// results are validated at lookup against the MO's registration
	// generation and its engine's mutation epoch, so re-registrations and
	// appended facts invalidate by version comparison — a stale result is
	// never served. Zero disables caching; QueryCached then degrades to
	// Query. A cache hit charges no fact budget (the computation it
	// replaces already charged it once); see docs/SERVING.md.
	ResultCacheBytes int64
	// Admission, when its MaxConcurrency is positive, installs the
	// adaptive admission controller (internal/admission) in front of
	// Query and Aggregate: an AIMD concurrency limit, a bounded
	// deadline-aware wait queue, and optional per-tenant token-bucket
	// quotas. Shed requests fail fast with ErrOverloaded. Result-cache
	// hits bypass admission entirely — answering from memory is cheaper
	// than queueing for permission to. Zero disables admission control.
	Admission admission.Config
	// StaleOnShed, when positive, enables degraded serving: a request
	// shed by admission control is answered from a version-stale
	// result-cache entry — if one exists and is no older than this bound
	// — with a warning attached, instead of a 429. Zero means shed
	// requests always get the overload error. Requires ResultCacheBytes.
	StaleOnShed time.Duration
	// Planner routes queries through the columnar planner
	// (internal/plan): selection, grouping, and aggregation run over the
	// engine's bitmap indexes and kernels without materializing a result
	// MO, and operators needing full MO semantics (probabilistic,
	// timeslice, holistic, probability thresholds) fall back to the
	// algebra path. Results, error texts, and cache keys are identical on
	// either path — only wall-clock and allocations change. See
	// docs/PLANNER.md.
	Planner bool
	// DeltaMaintenance keeps cached results and pre-aggregates warm under
	// sustained appends: result-cache fills through the planner retain
	// mergeable per-group partials, and a lookup that misses only because
	// facts were appended is answered by folding just the appended fact
	// range and merging — work proportional to the append volume, not to
	// history. Requires Planner and ResultCacheBytes (it is inert without
	// them); when an upgrade is not sound (catalog re-registration, epoch
	// outside the engine's journal, non-mergeable shape) the query takes
	// the normal recompute path and the fallback reason is counted in
	// mddm_delta_fallbacks_total. See docs/STORAGE.md "Delta maintenance".
	DeltaMaintenance bool
	// Batching, when Enabled, installs the shared-scan batch scheduler
	// (internal/batch) between admission and the planner: concurrent
	// queries grouping over the same (engine, dimension, category) leg
	// are gathered for a short window and answered from one fused pass
	// over the characterization column, bit-identical to solo execution
	// (budget accounting and fallbacks included). Non-batchable shapes
	// (facts, global, cross, fallbacks) bypass transparently. Requires
	// Planner (inert without it); the gather window and scan degree adapt
	// to the admission controller's load signals when Admission is also
	// configured. See docs/TRAFFIC.md.
	Batching batch.Config
}
