package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mddm/internal/core"
	"mddm/internal/query"
)

// Catalog is a concurrency-safe registry of the MOs the server exposes.
// Registration is copy-on-write: writers build a fresh map under a
// mutex and publish it atomically, so readers (every in-flight query)
// take one atomic load and never block on or observe a half-applied
// update. A snapshot is immutable once published.
type Catalog struct {
	mu   sync.Mutex // serializes writers
	snap atomic.Pointer[map[string]*core.MO]
	// gens tracks a per-name registration generation, published
	// copy-on-write like snap. Every Register draws a fresh value from
	// nextGen, so a name's generation changes on re-registration and is
	// never reused across a Deregister/Register cycle — the result cache
	// versions entries by it (cache.Version.Gen).
	gens    atomic.Pointer[map[string]uint64]
	nextGen uint64 // guarded by mu
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	c := &Catalog{}
	empty := map[string]*core.MO{}
	c.snap.Store(&empty)
	emptyGens := map[string]uint64{}
	c.gens.Store(&emptyGens)
	return c
}

// Register publishes an MO under a name, replacing any previous MO with
// that name. The MO must not be mutated after registration — publish a
// rebuilt MO instead (readers hold snapshots).
func (c *Catalog) Register(name string, m *core.MO) error {
	if name == "" {
		return fmt.Errorf("serve: catalog: empty MO name")
	}
	if m == nil {
		return fmt.Errorf("serve: catalog: nil MO for %q", name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	next := c.copyLocked()
	next[name] = m
	c.snap.Store(&next)
	// The generation is published after the map: a reader that sees the
	// new generation (and versions a cache fill by it) is guaranteed to
	// also see the new MO, so nothing computed from the old MO can be
	// stored under the new generation. The reverse order could serve
	// pre-registration data under the post-registration version.
	c.nextGen++
	ng := c.copyGensLocked()
	ng[name] = c.nextGen
	c.gens.Store(&ng)
	return nil
}

// Deregister removes a name; removing an absent name is a no-op.
func (c *Catalog) Deregister(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := *c.snap.Load()
	if _, ok := cur[name]; !ok {
		return
	}
	next := c.copyLocked()
	delete(next, name)
	c.snap.Store(&next)
	ng := c.copyGensLocked()
	delete(ng, name)
	c.gens.Store(&ng)
}

// copyLocked clones the current snapshot map; callers hold c.mu.
func (c *Catalog) copyLocked() map[string]*core.MO {
	cur := *c.snap.Load()
	next := make(map[string]*core.MO, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	return next
}

// copyGensLocked clones the generation map; callers hold c.mu.
func (c *Catalog) copyGensLocked() map[string]uint64 {
	cur := *c.gens.Load()
	next := make(map[string]uint64, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	return next
}

// Gen returns name's registration generation: 0 when unregistered,
// otherwise a value unique to this registration of the name (it changes
// on every Register, including re-registrations after a Deregister).
func (c *Catalog) Gen(name string) uint64 {
	return (*c.gens.Load())[name]
}

// Snapshot returns the current published catalog as a query.Catalog.
// The returned map is shared and immutable: do not modify it.
func (c *Catalog) Snapshot() query.Catalog {
	return query.Catalog(*c.snap.Load())
}

// Get returns the MO currently published under name.
func (c *Catalog) Get(name string) (*core.MO, bool) {
	m, ok := (*c.snap.Load())[name]
	return m, ok
}

// Names lists the registered MO names, sorted.
func (c *Catalog) Names() []string {
	cur := *c.snap.Load()
	out := make([]string, 0, len(cur))
	for k := range cur {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
