package serve

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"mddm/internal/admission"
	"mddm/internal/exec"
	"mddm/internal/faultinject"
	"mddm/internal/obs"
	"mddm/internal/plan"
	"mddm/internal/query"
)

// maxHTTPParallelism caps the per-query ?parallelism= override: the pool
// degrades gracefully anyway, but a cap keeps one request from asking for
// an absurd goroutine fan-out.
const maxHTTPParallelism = 64

// queryResponse is the JSON shape of a /query answer. Trace is present
// only when the request opted in with ?trace=1.
type queryResponse struct {
	Columns      []string          `json:"columns"`
	Rows         [][]string        `json:"rows"`
	Summarizable bool              `json:"summarizable"`
	Reasons      []string          `json:"reasons,omitempty"`
	Warnings     []string          `json:"warnings,omitempty"`
	Trace        *obs.TraceSummary `json:"trace,omitempty"`
	// Plan is the planner's explain output, present with ?plan=1 on a
	// server running with Limits.Planner.
	Plan *plan.Explain `json:"plan,omitempty"`
}

// errorResponse is the JSON shape of any failure.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the server's HTTP API:
//
//	GET/POST /query?q=…   run a query (POST may carry the query as the body);
//	                      &parallelism=k overrides the server's default
//	                      partition-parallel degree for this query (1 = sequential);
//	                      &trace=1 attaches a per-query trace summary to the response;
//	                      &nocache=1 bypasses the result cache for this query;
//	                      &tenant=… (or the X-Mddm-Tenant header) names the
//	                      quota bucket when per-tenant admission quotas are on.
//	                      When the result cache is enabled the response carries
//	                      X-Mddm-Cache: hit|miss (bypass for &nocache=1;
//	                      hit-upgraded for a stale entry repaired by a delta
//	                      merge under Limits.DeltaMaintenance; stale
//	                      plus X-Mddm-Degraded: stale-on-shed for a degraded
//	                      answer served under overload). With Limits.Batching
//	                      computed answers also carry X-Mddm-Batch:
//	                      solo|leader|member; answers that never reached the
//	                      planner (cache hits, upgrades, degraded serves,
//	                      sheds, single-flight followers) omit it — see
//	                      docs/TRAFFIC.md for the precedence rules.
//	POST     /append       durably append a fact to an MO with an attached
//	                      persistent store (segment.Store): the record is
//	                      WAL-logged before it becomes visible, and the
//	                      response carries its append sequence number
//	GET      /healthz     liveness probe
//
// Every response carries X-Mddm-Request-Id (the client's own id is
// echoed back if it sent one). The observability surface (/metrics,
// /debug/queries) is not mounted here; cmd/mdserve mounts MetricsHandler
// and ActiveQueriesHandler behind its -metrics flag.
//
// Failures map to status codes by kind: malformed requests and query
// errors are 400, resource limits and admission sheds 429 (sheds carry
// Retry-After; 503 while draining for shutdown), cancellation/deadline
// 504, and recovered panics 500 — the process never dies for a bad
// query.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/append", s.handleAppend)
	return withRequestID(mux)
}

// reqSeq numbers requests within the process; reqNonce distinguishes
// processes so ids from a restarted server do not collide in logs.
var (
	reqSeq   atomic.Uint64
	reqNonce = func() uint32 {
		var b [4]byte
		_, _ = crand.Read(b[:])
		return binary.BigEndian.Uint32(b[:])
	}()
)

type requestIDKey struct{}

// withRequestID stamps every response — success or error — with an
// X-Mddm-Request-Id header, honoring an id the client already carries so
// retries correlate across hops. The id's sequence number is also stored
// in the context for the per-query trace (requestSeq).
func withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Mddm-Request-Id")
		seq := reqSeq.Add(1)
		if id == "" {
			id = fmt.Sprintf("%08x-%08x", reqNonce, seq)
		}
		w.Header().Set("X-Mddm-Request-Id", id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey{}, seq)))
	})
}

// requestSeq returns the in-process sequence number withRequestID stored
// (0 when the request did not pass through the middleware).
func requestSeq(ctx context.Context) uint64 {
	seq, _ := ctx.Value(requestIDKey{}).(uint64)
	return seq
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed,
			fmt.Errorf("serve: method %s not allowed on /query (use GET or POST)", r.Method))
		return
	}
	src := r.URL.Query().Get("q")
	if src == "" && r.Method == http.MethodPost {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: reading body: %w", err))
			return
		}
		src = strings.TrimSpace(string(body))
	}
	if src == "" {
		writeError(w, http.StatusBadRequest, errors.New("serve: no query: pass ?q=… or a POST body"))
		return
	}
	ctx := r.Context()
	// Tenant for quota accounting: header first, ?tenant= as the
	// curl-friendly fallback. No tenant = the default quota bucket.
	tenant := r.Header.Get("X-Mddm-Tenant")
	if tenant == "" {
		tenant = r.URL.Query().Get("tenant")
	}
	ctx = admission.WithTenant(ctx, tenant)
	if p := r.URL.Query().Get("parallelism"); p != "" {
		deg, err := strconv.Atoi(p)
		if err != nil || deg < 1 || deg > maxHTTPParallelism {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("serve: invalid parallelism %q: want an integer in [1, %d]", p, maxHTTPParallelism))
			return
		}
		// Degree 1 is an explicit request for the sequential path; it still
		// overrides the server default because WithParallelism stores it.
		ctx = exec.WithParallelism(ctx, deg)
	}
	var tr *obs.Trace
	if t := r.URL.Query().Get("trace"); t != "" {
		on, err := strconv.ParseBool(t)
		if err != nil {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("serve: invalid trace %q: want a boolean (1/0, true/false)", t))
			return
		}
		if on {
			ctx, tr = obs.WithTrace(ctx, src)
			if seq := requestSeq(ctx); seq != 0 {
				tr.SetAttr("request_seq", int64(seq))
			}
		}
	}
	var ex *plan.Explain
	if p := r.URL.Query().Get("plan"); p != "" {
		on, err := strconv.ParseBool(p)
		if err != nil {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("serve: invalid plan %q: want a boolean (1/0, true/false)", p))
			return
		}
		if on {
			ctx, ex = plan.WithExplain(ctx)
		}
	}
	nocache := false
	if nc := r.URL.Query().Get("nocache"); nc != "" {
		on, err := strconv.ParseBool(nc)
		if err != nil {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("serve: invalid nocache %q: want a boolean (1/0, true/false)", nc))
			return
		}
		nocache = on
	}
	// Batch-outcome sink: filled only when the query actually executes
	// through the batch-enabled planner branch, so the X-Mddm-Batch header
	// appears exactly on computed answers. Header precedence is pinned by
	// TestBatchHeaderPrecedence and documented in docs/TRAFFIC.md: answers
	// that never reach the planner — cache hits, delta upgrades,
	// stale-on-shed degraded serves, sheds, and single-flight followers —
	// carry X-Mddm-Cache (and X-Mddm-Degraded) alone, never X-Mddm-Batch.
	var bo *BatchOutcome
	if s.batcher != nil {
		ctx, bo = WithBatchOutcome(ctx)
	}
	var res *query.Result
	var err error
	switch {
	case !s.ResultCacheEnabled():
		// No cache, no header: the response shape is unchanged from
		// servers built without Limits.ResultCacheBytes.
		res, err = s.Query(ctx, src)
	case nocache:
		// ?nocache=1 is the escape hatch: compute uncached and leave the
		// cache contents alone (it neither reads nor fills).
		w.Header().Set("X-Mddm-Cache", "bypass")
		res, err = s.Query(ctx, src)
	default:
		var out QueryOutcome
		res, out, err = s.ServeQuery(ctx, src)
		switch {
		case out.Upgraded:
			// A version-stale entry answered fresh after a delta merge
			// folded the appended facts in (Limits.DeltaMaintenance): a hit
			// for freshness purposes, distinguished so clients can see the
			// maintenance machinery working.
			w.Header().Set("X-Mddm-Cache", "hit-upgraded")
		case out.CacheHit:
			w.Header().Set("X-Mddm-Cache", "hit")
		case out.DegradedStale:
			// Shed under overload but answered from a bounded-staleness
			// cache entry; the body carries the warning, the headers let
			// clients and proxies see the degradation without parsing it.
			w.Header().Set("X-Mddm-Cache", "stale")
			w.Header().Set("X-Mddm-Degraded", "stale-on-shed")
		default:
			w.Header().Set("X-Mddm-Cache", "miss")
		}
	}
	if bo != nil && bo.Outcome != "" {
		// Set before the error check: a member canceled mid-batch still
		// reports how far it got.
		w.Header().Set("X-Mddm-Batch", string(bo.Outcome))
	}
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	if ex != nil && ex.Mode == "" {
		// The planner never ran (cache hit, or the server is not running
		// with Limits.Planner): no plan to report.
		ex = nil
	}
	writeJSON(w, http.StatusOK, queryResponse{
		Columns:      res.Columns,
		Rows:         res.Rows,
		Summarizable: res.Summarizable,
		Reasons:      res.Reasons,
		Warnings:     res.Warnings,
		Trace:        tr.Finish().Summary(),
		Plan:         ex,
	})
}

// statusFor maps the serving layer's typed errors to HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		// Draining is the one shed that is not the client's fault and not
		// transient from this process: the server is going away.
		var oe *admission.OverloadError
		if errors.As(err, &oe) && oe.Reason == admission.ReasonDraining {
			return http.StatusServiceUnavailable
		}
		return http.StatusTooManyRequests
	case errors.Is(err, ErrResourceExhausted):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrCanceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrInternal):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// writeJSON serializes v; the faultinject.Serialize point fires first so
// robustness tests can fail this path deterministically.
func writeJSON(w http.ResponseWriter, status int, v any) {
	if err := faultinject.Check(faultinject.Serialize); err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("serve: serialize: %w", err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func writeError(w http.ResponseWriter, status int, err error) {
	// Sheds carry the controller's capacity estimate as Retry-After
	// (whole seconds, rounded up — "0" would mean "hammer me again").
	var oe *admission.OverloadError
	if errors.As(err, &oe) && oe.RetryAfter > 0 {
		secs := int64((oe.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
}
