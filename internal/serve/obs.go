package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"mddm/internal/obs"
	"mddm/internal/qos"
)

// Serving-layer metrics: the process-wide, scrapeable view of the same
// events the Server's Stats counters report. Everything records at query
// granularity; the per-operator detail lives in the layers below (see
// docs/OBSERVABILITY.md for the full inventory).
var (
	mQueries = obs.NewCounter("mddm_serve_queries_total",
		"Queries received by the serving layer (SQL-ish and aggregate requests).")
	mActive = obs.NewGauge("mddm_serve_active_queries",
		"Queries currently executing.")
	mQuerySeconds = obs.NewHistogram("mddm_serve_query_seconds",
		"End-to-end query latency as seen by the serving layer.", obs.DurationBuckets)
	mPanics = obs.NewCounter("mddm_serve_panics_total",
		"Panics recovered into internal errors by the serving layer.")
	mRowLimitRejections = obs.NewCounter("mddm_serve_row_limit_rejections_total",
		"Results rejected because they exceeded MaxResultRows.")

	errKindHelp    = "Query failures by kind."
	mErrCanceled   = obs.NewCounter("mddm_serve_query_errors_total", errKindHelp, obs.Label{Key: "kind", Value: "canceled"})
	mErrExhausted  = obs.NewCounter("mddm_serve_query_errors_total", errKindHelp, obs.Label{Key: "kind", Value: "exhausted"})
	mErrInternal   = obs.NewCounter("mddm_serve_query_errors_total", errKindHelp, obs.Label{Key: "kind", Value: "internal"})
	mErrBad        = obs.NewCounter("mddm_serve_query_errors_total", errKindHelp, obs.Label{Key: "kind", Value: "bad_request"})
	mErrOverloaded = obs.NewCounter("mddm_serve_query_errors_total", errKindHelp, obs.Label{Key: "kind", Value: "overloaded"})

	// mDegraded counts shed queries answered from a version-stale
	// result-cache entry instead of a 429 (Limits.StaleOnShed).
	mDegraded = obs.NewCounter("mddm_serve_degraded_total",
		"Queries answered degraded under overload, by mode.",
		obs.Label{Key: "mode", Value: "stale-on-shed"})

	cacheHelp    = "Engine-cache outcomes: snapshot reused, rebuild started, or stale snapshot served after a rebuild failure."
	mCacheHit    = obs.NewCounter("mddm_serve_engine_cache_total", cacheHelp, obs.Label{Key: "outcome", Value: "hit"})
	mCacheRebuild = obs.NewCounter("mddm_serve_engine_cache_total", cacheHelp, obs.Label{Key: "outcome", Value: "rebuild"})
	mCacheStale  = obs.NewCounter("mddm_serve_engine_cache_total", cacheHelp, obs.Label{Key: "outcome", Value: "stale"})

	// The counterpart of mddm_qos_budget_exhausted_total: total facts
	// charged against per-query budgets, accumulated once when each query
	// finishes (never inside the scan loops).
	mBudgetSpent = obs.NewCounter("mddm_qos_budget_spent_facts_total",
		"Facts charged against per-query scan budgets, accumulated at query end.")
)

// classifyError buckets a finished query's error into the
// mddm_serve_query_errors_total family; nil errors record nothing.
func classifyError(err error) {
	switch {
	case err == nil:
	case errors.Is(err, ErrOverloaded):
		mErrOverloaded.Inc()
	case errors.Is(err, ErrResourceExhausted):
		mErrExhausted.Inc()
	case errors.Is(err, ErrCanceled):
		mErrCanceled.Inc()
	case errors.Is(err, ErrInternal):
		mErrInternal.Inc()
	default:
		mErrBad.Inc()
	}
}

// activeQueryIDs hands out ids for the in-flight query registry. Distinct
// from trace ids: every query gets one, traced or not.
var activeQueryIDs atomic.Uint64

// activeQuery is one in-flight query as tracked for /debug/queries. The
// trace pointer is nil unless the caller opted into tracing (?trace=1) —
// untraced queries still show up, with just their text and elapsed time.
type activeQuery struct {
	id    uint64
	query string
	start time.Time
	trace *obs.Trace
}

// track registers an in-flight query; untrack removes it when done.
func (s *Server) track(src string, tr *obs.Trace) *activeQuery {
	aq := &activeQuery{id: activeQueryIDs.Add(1), query: src, start: time.Now(), trace: tr}
	s.activeMu.Lock()
	s.active[aq.id] = aq
	s.activeMu.Unlock()
	return aq
}

func (s *Server) untrack(aq *activeQuery) {
	s.activeMu.Lock()
	delete(s.active, aq.id)
	s.activeMu.Unlock()
}

// ActiveQuery is the wire form of one in-flight query.
type ActiveQuery struct {
	ID        uint64            `json:"id"`
	Query     string            `json:"query"`
	ElapsedNs int64             `json:"elapsed_ns"`
	Trace     *obs.TraceSummary `json:"trace,omitempty"`
}

// ActiveQueries snapshots the queries executing right now, oldest first.
// Traced queries include their in-flight trace summary (spans recorded so
// far, elapsed total).
func (s *Server) ActiveQueries() []ActiveQuery {
	s.activeMu.Lock()
	aqs := make([]*activeQuery, 0, len(s.active))
	for _, aq := range s.active {
		aqs = append(aqs, aq)
	}
	s.activeMu.Unlock()
	sort.Slice(aqs, func(i, j int) bool { return aqs[i].id < aqs[j].id })
	out := make([]ActiveQuery, len(aqs))
	for i, aq := range aqs {
		out[i] = ActiveQuery{
			ID:        aq.id,
			Query:     aq.query,
			ElapsedNs: time.Since(aq.start).Nanoseconds(),
			Trace:     aq.trace.Summary(),
		}
	}
	return out
}

// MetricsHandler serves the process-wide metric registry in the
// Prometheus text exposition format. It is not mounted by Handler —
// cmd/mdserve mounts it behind the -metrics flag, so the default serving
// surface stays unchanged.
func (s *Server) MetricsHandler() http.Handler {
	return obs.Default().Handler()
}

// ActiveQueriesHandler serves the in-flight query inspector as JSON.
// Like MetricsHandler, it is mounted only when cmd/mdserve's -metrics
// flag asks for the debug surface.
func (s *Server) ActiveQueriesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			writeError(w, http.StatusMethodNotAllowed, errors.New("serve: method not allowed on /debug/queries"))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_ = json.NewEncoder(w).Encode(struct {
			Queries []ActiveQuery `json:"queries"`
		}{Queries: s.ActiveQueries()})
	})
}

// finishQueryMetrics is the query-end bookkeeping run from Query's
// classification defer: latency, budget accounting, trace attributes, and
// error classification. It must run after the recover defer, so the err
// it classifies reflects panic conversion.
func (s *Server) finishQueryMetrics(ctx context.Context, aq *activeQuery, start time.Time, rows int, haveRes bool, err error) {
	s.untrack(aq)
	mActive.Add(-1)
	mQuerySeconds.Observe(time.Since(start))
	tr := obs.TraceFrom(ctx)
	if b := qos.BudgetFrom(ctx); b != nil {
		spent := b.Spent()
		mBudgetSpent.Add(spent)
		tr.SetAttr("budget_spent_facts", spent)
	}
	if haveRes {
		tr.SetAttr("rows", int64(rows))
	}
	classifyError(err)
}
