package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mddm/internal/admission"
	"mddm/internal/casestudy"
	"mddm/internal/faultinject"
)

// admissionLimits is the baseline config for the admission tests: a
// real controller in front of the query path, cache enabled.
func admissionLimits() Limits {
	return Limits{
		ResultCacheBytes: 1 << 20,
		Admission: admission.Config{
			MaxConcurrency: 2,
			TargetLatency:  time.Second,
			MaxQueue:       4,
		},
	}
}

func getWithHeaders(t *testing.T, ts *httptest.Server, path string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestHTTPStatusByErrorKind pins the HTTP status for every error kind
// the serving layer produces — in particular that an admission shed is
// 429 with Retry-After (503 while draining), never a 500, including
// when the shed propagates through the single-flight result-cache fill.
func TestHTTPStatusByErrorKind(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	limits := admissionLimits()
	limits.Admission.TenantRate = 1000 // quotas on, so QuotaExhausted has a path to fire
	limits.Admission.TenantBurst = 1000
	limits.MaxResultRows = 1000
	s, _ := newTestServer(t, limits)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	q := "/query?q=" + url.QueryEscape(groupQuery)

	// Healthy baseline: 200, and the result cache is filled for later.
	resp, _ := getWithHeaders(t, ts, q, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline: status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Mddm-Request-Id") == "" {
		t.Error("baseline: no X-Mddm-Request-Id header")
	}

	// Admission shed (quota, via faultinject) → 429 + Retry-After, and
	// the error envelope still carries the request id. nocache=1 keeps
	// the warm cache from answering before admission is consulted.
	faultinject.Enable(faultinject.QuotaExhausted, nil)
	resp, body := getWithHeaders(t, ts, q+"&nocache=1", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed: status %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed: no Retry-After header")
	}
	if resp.Header.Get("X-Mddm-Request-Id") == "" {
		t.Error("shed: error response lost X-Mddm-Request-Id")
	}
	var fail errorResponse
	if err := json.Unmarshal(body, &fail); err != nil || !strings.Contains(fail.Error, "overloaded") {
		t.Errorf("shed: body %q does not name the overload", body)
	}

	// The same shed through the single-flight fill path: an uncached
	// query misses, so ServeQuery goes flights.Do → Query → shed, which
	// must surface as ErrOverloaded (429), not be folded into an
	// internal error (500).
	coldQuery := `SELECT SETCOUNT(*) FROM patients GROUP BY Residence."Region"`
	_, _, err := s.ServeQuery(context.Background(), coldQuery)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("single-flight fill: err = %v, want ErrOverloaded", err)
	}
	if got := statusFor(err); got != http.StatusTooManyRequests {
		t.Errorf("single-flight fill: status %d, want 429", got)
	}
	faultinject.Reset()

	// Cache hits bypass admission entirely: with the quota still armed
	// this would shed, so arm it again and hit the warm entry.
	faultinject.Enable(faultinject.QuotaExhausted, nil)
	resp, _ = getWithHeaders(t, ts, q, nil)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Mddm-Cache") != "hit" {
		t.Fatalf("cache hit under shed: status %d cache %q, want 200 hit",
			resp.StatusCode, resp.Header.Get("X-Mddm-Cache"))
	}
	faultinject.Reset()

	// Resource exhaustion stays 429.
	if got := statusFor(fmt.Errorf("x: %w", ErrResourceExhausted)); got != http.StatusTooManyRequests {
		t.Errorf("exhausted: status %d, want 429", got)
	}
	// Cancellation/deadline — including a deadline that expired while
	// queued for admission (wrapped as ErrCanceled by serve.admit) — is
	// 504.
	if got := statusFor(fmt.Errorf("%w: %w", ErrCanceled, context.DeadlineExceeded)); got != http.StatusGatewayTimeout {
		t.Errorf("queue-expired: status %d, want 504", got)
	}
	// Internal errors stay 500, bad requests 400.
	if got := statusFor(&InternalError{Query: "q", Panic: "boom"}); got != http.StatusInternalServerError {
		t.Errorf("internal: status %d, want 500", got)
	}
	if got := statusFor(errors.New("parse error")); got != http.StatusBadRequest {
		t.Errorf("bad request: status %d, want 400", got)
	}

	// Draining → 503 on the wire.
	s.Drain()
	resp, _ = getWithHeaders(t, ts, q+"&nocache=1", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining: no Retry-After header")
	}
}

// TestRequestIDEchoAndUniqueness pins the request-id contract: a
// client-sent id is echoed back, and generated ids differ per request.
func TestRequestIDEchoAndUniqueness(t *testing.T) {
	ts := httpServer(t, Limits{})
	resp, _ := getWithHeaders(t, ts, "/healthz", map[string]string{"X-Mddm-Request-Id": "client-42"})
	if got := resp.Header.Get("X-Mddm-Request-Id"); got != "client-42" {
		t.Errorf("echo: got %q, want client-42", got)
	}
	r1, _ := getWithHeaders(t, ts, "/healthz", nil)
	r2, _ := getWithHeaders(t, ts, "/healthz", nil)
	id1, id2 := r1.Header.Get("X-Mddm-Request-Id"), r2.Header.Get("X-Mddm-Request-Id")
	if id1 == "" || id1 == id2 {
		t.Errorf("generated ids: %q then %q, want distinct non-empty", id1, id2)
	}
}

// TestDegradedStaleOnShed drives graceful degradation end to end: fill
// the cache, invalidate it with an append (version moves), arm the
// quota so the refill is shed — with StaleOnShed the server answers 200
// from the stale entry with a warning and the degraded headers; without
// it the same traffic gets the 429.
func TestDegradedStaleOnShed(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	limits := admissionLimits()
	limits.Admission.TenantRate = 1000
	limits.Admission.TenantBurst = 1000
	limits.StaleOnShed = time.Minute
	s, _ := newTestServer(t, limits)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	ctx := context.Background()

	// Engine first, then fill the cache (the fill happens at the
	// engine's current epoch).
	eng, err := s.EngineFor(ctx, "patients")
	if err != nil {
		t.Fatal(err)
	}
	fresh, out, err := s.ServeQuery(ctx, groupQuery)
	if err != nil {
		t.Fatal(err)
	}
	if out.CacheHit || out.DegradedStale {
		t.Fatalf("first fill outcome = %+v", out)
	}

	// Move the version: relate and append one fact. The cached entry is
	// now version-stale.
	m, _ := s.cat.Get("patients")
	lows := m.Dimension(casestudy.DimDiagnosis).Category(casestudy.CatLowLevel)
	if err := m.Relate(casestudy.DimDiagnosis, "shedfact", lows[0]); err != nil {
		t.Fatal(err)
	}
	if err := eng.AppendFact("shedfact"); err != nil {
		t.Fatal(err)
	}

	// Shed the refill: the degraded path serves the stale entry.
	faultinject.Enable(faultinject.QuotaExhausted, nil)
	res, out, err := s.ServeQuery(ctx, groupQuery)
	if err != nil {
		t.Fatalf("degraded serve: %v", err)
	}
	if !out.DegradedStale || out.CacheHit {
		t.Fatalf("outcome = %+v, want DegradedStale", out)
	}
	if len(res.Warnings) == 0 || !strings.Contains(res.Warnings[len(res.Warnings)-1], "degraded") {
		t.Errorf("degraded result warnings = %v, want a degradation warning", res.Warnings)
	}
	if len(res.Rows) != len(fresh.Rows) {
		t.Errorf("degraded rows = %d, want the stale result's %d", len(res.Rows), len(fresh.Rows))
	}
	// The shared cached entry must not have accumulated the warning.
	if len(fresh.Warnings) != 0 {
		t.Errorf("cached entry mutated: warnings %v", fresh.Warnings)
	}
	if st := s.Stats(); st.DegradedServes != 1 {
		t.Errorf("DegradedServes = %d, want 1", st.DegradedServes)
	}

	// Same thing on the wire: 200 + the degraded headers.
	resp, _ := getWithHeaders(t, ts, "/query?q="+url.QueryEscape(groupQuery), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded HTTP: status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Mddm-Degraded"); got != "stale-on-shed" {
		t.Errorf("X-Mddm-Degraded = %q", got)
	}
	if got := resp.Header.Get("X-Mddm-Cache"); got != "stale" {
		t.Errorf("X-Mddm-Cache = %q, want stale", got)
	}
	faultinject.Reset()

	// Recovered: the next query refills fresh (no degraded markers) and
	// observes the appended fact.
	res2, out, err := s.ServeQuery(ctx, groupQuery)
	if err != nil {
		t.Fatal(err)
	}
	if out.DegradedStale {
		t.Error("recovered query still degraded")
	}
	if len(res2.Warnings) != 0 {
		t.Errorf("recovered result warnings = %v", res2.Warnings)
	}
}

// TestShedWithoutStaleBoundIs429 is the control: identical overload,
// StaleOnShed zero — the stale entry exists but must NOT be served.
func TestShedWithoutStaleBoundIs429(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	limits := admissionLimits()
	limits.Admission.TenantRate = 1000
	limits.Admission.TenantBurst = 1000
	s, _ := newTestServer(t, limits)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	ctx := context.Background()

	eng, err := s.EngineFor(ctx, "patients")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ServeQuery(ctx, groupQuery); err != nil {
		t.Fatal(err)
	}
	m, _ := s.cat.Get("patients")
	lows := m.Dimension(casestudy.DimDiagnosis).Category(casestudy.CatLowLevel)
	if err := m.Relate(casestudy.DimDiagnosis, "shedfact", lows[0]); err != nil {
		t.Fatal(err)
	}
	if err := eng.AppendFact("shedfact"); err != nil {
		t.Fatal(err)
	}

	faultinject.Enable(faultinject.QuotaExhausted, nil)
	resp, _ := getWithHeaders(t, ts, "/query?q="+url.QueryEscape(groupQuery), nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 with no staleness bound", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Mddm-Degraded"); got != "" {
		t.Errorf("X-Mddm-Degraded = %q on a plain shed", got)
	}
	if st := s.Stats(); st.DegradedServes != 0 {
		t.Errorf("DegradedServes = %d, want 0", st.DegradedServes)
	}
}

// TestTenantHeaderReachesQuota pins the HTTP→context tenant plumbing:
// one tenant exhausting its bucket gets 429s naming it while another
// keeps being served, via both the header and the query param.
func TestTenantHeaderReachesQuota(t *testing.T) {
	limits := admissionLimits()
	limits.Admission.TenantRate = 0.001 // no refill within the test
	limits.Admission.TenantBurst = 2
	s, _ := newTestServer(t, limits)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	q := "/query?nocache=1&q=" + url.QueryEscape(groupQuery)

	for i := 0; i < 2; i++ {
		resp, body := getWithHeaders(t, ts, q, map[string]string{"X-Mddm-Tenant": "hog"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("hog %d: status %d (%s)", i, resp.StatusCode, body)
		}
	}
	resp, body := getWithHeaders(t, ts, q, map[string]string{"X-Mddm-Tenant": "hog"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("exhausted hog: status %d (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "hog") {
		t.Errorf("shed body %q does not name the tenant", body)
	}
	// ?tenant= addresses the same bucket as the header.
	resp, _ = getWithHeaders(t, ts, q+"&tenant=hog", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("param-addressed hog: status %d, want 429", resp.StatusCode)
	}
	// Other tenants (and the default bucket) are unaffected.
	resp, _ = getWithHeaders(t, ts, q, map[string]string{"X-Mddm-Tenant": "quiet"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quiet tenant: status %d", resp.StatusCode)
	}
	resp, _ = getWithHeaders(t, ts, q, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default bucket: status %d", resp.StatusCode)
	}
}

// TestAdmissionOverloadRaceUnderLoad is the -race stress for the whole
// overload surface: admitted, queued, shed, and degraded traffic runs
// concurrently with engine appends, catalog re-registrations, and
// /metrics scrapes. Nothing here asserts throughput — it asserts the
// absence of data races, leaked slots, and mis-filed responses.
func TestAdmissionOverloadRaceUnderLoad(t *testing.T) {
	limits := Limits{
		ResultCacheBytes: 1 << 20,
		StaleOnShed:      time.Minute,
		MaxFactsScanned:  1 << 20,
		Admission: admission.Config{
			MaxConcurrency: 2,
			TargetLatency:  500 * time.Microsecond, // aggressive: force the limiter to move
			MaxQueue:       2,
			TenantRate:     50,
			TenantBurst:    10,
		},
	}
	s, cat := newTestServer(t, limits)
	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	mux.Handle("/metrics", s.MetricsHandler())
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	// The append-maintained entry: its facts are related before any
	// goroutine starts, and the engine comes from the sanctioned
	// EngineFor path so appends bump the epoch that versions cached
	// results for the queriers racing against them.
	cfg := casestudy.DefaultGen()
	cfg.Patients = 30
	grow := casestudy.MustGenerate(cfg)
	if err := cat.Register("growing", grow); err != nil {
		t.Fatal(err)
	}
	eng, err := s.EngineFor(context.Background(), "growing")
	if err != nil {
		t.Fatal(err)
	}
	const appends = 24
	lows := grow.Dimension(casestudy.DimDiagnosis).Category(casestudy.CatLowLevel)
	for i := 0; i < appends; i++ {
		if err := grow.Relate(casestudy.DimDiagnosis, fmt.Sprintf("grown%d", i), lows[i%len(lows)]); err != nil {
			t.Fatal(err)
		}
	}
	growQuery := `SELECT SETCOUNT(*) FROM growing GROUP BY Diagnosis."Diagnosis Group"`

	const iters = 40
	var admitted, shed, degraded atomic.Int64
	var wg sync.WaitGroup

	// Queriers: mixed tenants, cached and uncached, some with tight
	// client deadlines. Every response must be one of the understood
	// outcomes — 200 (fresh, hit, or degraded), 429/503 (shed), 504
	// (deadline) — never a 500.
	for g := 0; g < 6; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			for i := 0; i < iters; i++ {
				q := groupQuery
				if (g+i)%4 == 0 {
					q = growQuery
				}
				u := ts.URL + "/query?q=" + url.QueryEscape(q)
				if (g+i)%3 == 0 {
					u += "&nocache=1"
				}
				req, _ := http.NewRequest(http.MethodGet, u, nil)
				req.Header.Set("X-Mddm-Tenant", fmt.Sprintf("t%d", g%3))
				resp, err := client.Do(req)
				if err != nil {
					t.Errorf("querier %d: %v", g, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					if resp.Header.Get("X-Mddm-Degraded") != "" {
						degraded.Add(1)
					} else {
						admitted.Add(1)
					}
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					shed.Add(1)
				case http.StatusGatewayTimeout:
					// queued past the client deadline; acceptable
				default:
					t.Errorf("querier %d: unexpected status %d", g, resp.StatusCode)
					return
				}
			}
		}()
	}

	// Scraper: the admission gauges and counters render continuously.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if !strings.Contains(string(body), "mddm_admission_concurrency_limit") {
				t.Error("scrape: exposition missing admission metrics")
				return
			}
		}
	}()

	// Registrar: re-registrations move the result-cache version under
	// the queriers' feet.
	wg.Add(1)
	go func() {
		defer wg.Done()
		base := patientMO(t)
		for i := 0; i < iters/10; i++ {
			if err := cat.Register("patients", base.Clone()); err != nil {
				t.Errorf("register: %v", err)
				return
			}
		}
	}()

	// Appender: epoch bumps on the "growing" entry invalidate cached
	// results while admitted and degraded reads are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < appends; i++ {
			if err := eng.AppendFact(fmt.Sprintf("grown%d", i)); err != nil {
				t.Errorf("append: %v", err)
				return
			}
		}
	}()

	wg.Wait()
	st := s.AdmissionStats()
	if st.Inflight != 0 || st.QueueDepth != 0 {
		t.Errorf("leaked admission state: %+v", st)
	}
	if admitted.Load() == 0 {
		t.Error("stress admitted nothing")
	}
	t.Logf("admitted %d, shed %d, degraded %d; admission stats %+v",
		admitted.Load(), shed.Load(), degraded.Load(), st)
}
