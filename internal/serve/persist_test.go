package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"mddm/internal/agg"
	"mddm/internal/casestudy"
	"mddm/internal/dimension"
	"mddm/internal/segment"
	"mddm/internal/temporal"
)

// storeRecords derives n valid append records from the base dimensions,
// mirroring the segment package's own test corpus: a low-level
// diagnosis, a residence area, and an age per fact, with every third
// record carrying a probabilistic valid-time annotation and every other
// third a second diagnosis.
func storeRecords(t *testing.T, m *segment.Store, n int) []segment.FactAppend {
	t.Helper()
	ctx := dimension.CurrentContext(testRef)
	mo := m.MO()
	lows := mo.Dimension(casestudy.DimDiagnosis).CategoryAt(casestudy.CatLowLevel, ctx)
	areas := mo.Dimension(casestudy.DimResidence).CategoryAt(casestudy.CatArea, ctx)
	ages := mo.Dimension(casestudy.DimAge).CategoryAt(casestudy.CatAge, ctx)
	if len(lows) == 0 || len(areas) == 0 || len(ages) == 0 {
		t.Fatal("base dimensions unexpectedly empty")
	}
	recs := make([]segment.FactAppend, n)
	for i := range recs {
		pairs := []segment.Pair{
			{Dim: casestudy.DimDiagnosis, Value: lows[i%len(lows)], Annot: dimension.Always()},
			{Dim: casestudy.DimResidence, Value: areas[i%len(areas)], Annot: dimension.Always()},
			{Dim: casestudy.DimAge, Value: ages[i%len(ages)], Annot: dimension.Always()},
		}
		switch i % 3 {
		case 1:
			pairs[0].Annot = dimension.Annot{
				Time: temporal.Bitemporal{Valid: temporal.Single(0, 20000), Trans: temporal.AlwaysElement()},
				Prob: 0.9,
			}
		case 2:
			pairs = append(pairs, segment.Pair{
				Dim: casestudy.DimDiagnosis, Value: lows[(i+7)%len(lows)], Annot: dimension.Always(),
			})
		}
		recs[i] = segment.FactAppend{FactID: fmt.Sprintf("srvpat%04d", i), Pairs: pairs}
	}
	return recs
}

// openStore opens and recovers a store on dir over a fresh base MO.
func openStore(t *testing.T, dir string, opts segment.Options) *segment.Store {
	t.Helper()
	st, err := segment.Open(dir, patientMO(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recover(context.Background(), dimension.CurrentContext(testRef)); err != nil {
		t.Fatal(err)
	}
	return st
}

// attachedServer builds a server whose "patients" MO serves from st.
func attachedServer(t *testing.T, st *segment.Store, limits Limits) *Server {
	t.Helper()
	s := NewServer(NewCatalog(), limits, testRef)
	if err := s.AttachStore("patients", st); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestAttachStoreRecoveryDifferential is the serve-level crash
// equivalence proof: a server attached to a store recovered from disk
// (segments plus WAL tail, across a process "restart") must answer
// every registered aggregate bit-identically to a server whose store
// took the same appends live and never restarted.
func TestAttachStoreRecoveryDifferential(t *testing.T) {
	dir := t.TempDir()

	// Writer lifetime: append 25 records; FoldEvery 10 leaves segments
	// plus an unfolded WAL tail at close time mid-stream, and Close folds
	// the rest — reopen exercises the full recovery path.
	writer := openStore(t, dir, segment.Options{FoldEvery: 10})
	recs := storeRecords(t, writer, 25)
	for _, rec := range recs {
		if err := writer.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := writer.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovered side: fresh process state, state read back from disk.
	recovered := openStore(t, dir, segment.Options{})
	defer recovered.Close()
	recServer := attachedServer(t, recovered, Limits{})

	// Live side: same records through a store that never restarted.
	live := openStore(t, t.TempDir(), segment.Options{})
	defer live.Close()
	liveServer := attachedServer(t, live, Limits{})
	for _, rec := range recs {
		if _, err := liveServer.Append("patients", rec); err != nil {
			t.Fatal(err)
		}
	}

	names := agg.Names()
	sort.Strings(names)
	ctx := context.Background()
	for _, name := range names {
		g, err := agg.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		src := aggQuery(g)
		got, err := recServer.Query(ctx, src)
		if err != nil {
			t.Fatalf("%s: recovered query: %v", name, err)
		}
		want, err := liveServer.Query(ctx, src)
		if err != nil {
			t.Fatalf("%s: live query: %v", name, err)
		}
		sameResult(t, name+": recovered vs live", got, want)
	}
}

// TestServerAppendInvalidatesCache pins that a durable append through
// the attached store carries the same epoch-bump invalidation contract
// as an in-memory append: fill → hit → append → miss with the fresh
// answer.
func TestServerAppendInvalidatesCache(t *testing.T) {
	st := openStore(t, t.TempDir(), segment.Options{})
	defer st.Close()
	s := attachedServer(t, st, cacheLimits)
	recs := storeRecords(t, st, 2)

	src := `SELECT SETCOUNT(*) AS N FROM patients GROUP BY Diagnosis."Diagnosis Group"`
	ctx := context.Background()
	if _, hit, err := s.QueryCached(ctx, src); err != nil || hit {
		t.Fatalf("fill: hit=%v err=%v", hit, err)
	}
	if _, hit, err := s.QueryCached(ctx, src); err != nil || !hit {
		t.Fatalf("warm lookup: hit=%v err=%v", hit, err)
	}
	if _, err := s.Append("patients", recs[0]); err != nil {
		t.Fatal(err)
	}
	res, hit, err := s.QueryCached(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("append did not invalidate the result cache")
	}
	if res == nil || len(res.Rows) == 0 {
		t.Fatal("post-append result empty")
	}
}

// TestServerAppendNoStore pins the read-only contract: appends to MOs
// without an attached store fail with ErrNoStore, and CloseStores
// detaches everything.
func TestServerAppendNoStore(t *testing.T) {
	s, _ := newTestServer(t, Limits{})
	if _, err := s.Append("patients", segment.FactAppend{}); !errors.Is(err, ErrNoStore) {
		t.Fatalf("append without store: %v", err)
	}
	if names := s.StoreNames(); len(names) != 0 {
		t.Fatalf("store names: %v", names)
	}

	st := openStore(t, t.TempDir(), segment.Options{})
	srv := attachedServer(t, st, Limits{})
	if names := srv.StoreNames(); len(names) != 1 || names[0] != "patients" {
		t.Fatalf("store names: %v", names)
	}
	if err := srv.CloseStores(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Append("patients", segment.FactAppend{}); !errors.Is(err, ErrNoStore) {
		t.Fatalf("append after CloseStores: %v", err)
	}
	// Idempotent: a second close has nothing left to do.
	if err := srv.CloseStores(); err != nil {
		t.Fatal(err)
	}
}

// TestAttachStoreUnrecovered rejects a store that was opened but never
// Recovered — there is no engine to serve from.
func TestAttachStoreUnrecovered(t *testing.T) {
	st, err := segment.Open(t.TempDir(), patientMO(t), segment.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := NewServer(NewCatalog(), Limits{}, testRef)
	if err := s.AttachStore("patients", st); err == nil {
		t.Fatal("attach of unrecovered store must fail")
	}
}

// TestHandleAppendHTTP drives POST /append end to end: durable ack with
// a sequence number, visibility to the very next query, and each error
// class on its own status code.
func TestHandleAppendHTTP(t *testing.T) {
	st := openStore(t, t.TempDir(), segment.Options{})
	defer st.Close()
	s := attachedServer(t, st, cacheLimits)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	post := func(body string) (int, string) {
		t.Helper()
		resp, err := http.Post(hs.URL+"/append", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(out)
	}

	rec := storeRecords(t, st, 1)[0]
	body := fmt.Sprintf(`{"mo":"patients","fact":%q,"pairs":[{"dim":%q,"value":%q},{"dim":%q,"value":%q,"prob":0.8,"valid":[[0,20000]]}]}`,
		rec.FactID,
		rec.Pairs[0].Dim, rec.Pairs[0].Value,
		rec.Pairs[1].Dim, rec.Pairs[1].Value)

	// Sequence numbers are zero-based: the first record ever logged in
	// this fresh store is seq 0.
	if code, out := post(body); code != http.StatusOK || !strings.Contains(out, `"seq":0`) {
		t.Fatalf("append: status %d body %s", code, out)
	}
	if seq, err := s.Append("patients", storeRecords(t, st, 3)[2]); err != nil || seq != 1 {
		t.Fatalf("second append: seq %d err %v", seq, err)
	}
	// Visible to the very next query.
	resp, err := http.Get(hs.URL + "/query?q=" + "SELECT+FACTS+FROM+patients&nocache=1")
	if err != nil {
		t.Fatal(err)
	}
	qbody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(qbody), rec.FactID) {
		t.Fatalf("appended fact %s not visible to queries", rec.FactID)
	}

	// Error classes, each on its own status.
	cases := []struct {
		name, body string
		code       int
	}{
		{"duplicate", body, http.StatusBadRequest},
		{"no-store", `{"mo":"ghosts","fact":"g1","pairs":[{"dim":"d","value":"v"}]}`, http.StatusNotFound},
		{"bad-json", `{broken`, http.StatusBadRequest},
		{"missing-fields", `{"mo":"patients"}`, http.StatusBadRequest},
		{"bad-prob", `{"mo":"patients","fact":"p9","pairs":[{"dim":"d","value":"v","prob":1.5}]}`, http.StatusBadRequest},
		{"unknown-dim", `{"mo":"patients","fact":"p9","pairs":[{"dim":"NoSuchDim","value":"v"}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code, out := post(tc.body); code != tc.code {
			t.Errorf("%s: status %d (want %d) body %s", tc.name, code, tc.code, out)
		}
	}

	// Wrong method.
	getResp, err := http.Get(hs.URL + "/append")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /append: status %d", getResp.StatusCode)
	}
}
