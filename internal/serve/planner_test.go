package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strings"
	"sync"
	"testing"

	"mddm/internal/casestudy"
	"mddm/internal/plan"
	"mddm/internal/query"
)

// TestPlannerServerParity runs the same queries through a planner server
// and a plain algebra server and requires identical responses — the
// serving-layer leg of the differential oracle (the package-level legs
// live in internal/plan).
func TestPlannerServerParity(t *testing.T) {
	planned, _ := newTestServer(t, Limits{Planner: true, Parallelism: 2})
	algebra, _ := newTestServer(t, Limits{})
	for _, src := range []string{
		groupQuery,
		`SELECT SETCOUNT(*) FROM patients`,
		`SELECT AVG(Age) FROM patients WHERE Residence = 'R1'`,
		`SELECT SUM(Age) FROM patients GROUP BY Diagnosis."Diagnosis Group", Residence`,
		`SELECT FACTS FROM patients WHERE Diagnosis IN ('E10', 'E11')`,
		`SELECT SETCOUNT(*) AS N FROM patients GROUP BY Diagnosis."Diagnosis Family" ASOF VALID '15/06/1975'`,
		`SELECT MEDIAN(Age) FROM patients`,
		`DESCRIBE patients Diagnosis`,
		`SELECT SETCOUNT(*) FROM nowhere`,
	} {
		r1, err1 := planned.Query(context.Background(), src)
		r2, err2 := algebra.Query(context.Background(), src)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: planner server err %v, algebra server err %v", src, err1, err2)
		}
		if err1 != nil {
			if err1.Error() != err2.Error() {
				t.Fatalf("%s: error text diverged: %q vs %q", src, err1, err2)
			}
			continue
		}
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("%s: results diverged:\n planner: %+v\n algebra: %+v", src, r1, r2)
		}
	}
}

// TestPlannerExplainHTTP pins the ?plan=1 wire format: a planner server
// reports the chosen plan, a fallback query reports its reason, and a
// server without the planner omits the field entirely.
func TestPlannerExplainHTTP(t *testing.T) {
	s, _ := newTestServer(t, Limits{Planner: true})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	get := func(u string) (queryResponse, int) {
		t.Helper()
		resp, err := http.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var qr queryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		return qr, resp.StatusCode
	}

	qr, code := get(ts.URL + "/query?plan=1&q=" + url.QueryEscape(groupQuery))
	if code != http.StatusOK || qr.Plan == nil {
		t.Fatalf("status %d plan %+v, want OK with a plan", code, qr.Plan)
	}
	if qr.Plan.Mode != plan.ModePlanned || qr.Plan.Shape != plan.ShapeKernelCount {
		t.Fatalf("plan %+v, want planned/kernel-count", qr.Plan)
	}

	qr, code = get(ts.URL + "/query?plan=1&q=" + url.QueryEscape(`SELECT MEDIAN(Age) FROM patients`))
	if code != http.StatusOK || qr.Plan == nil {
		t.Fatalf("status %d plan %+v, want OK with a plan", code, qr.Plan)
	}
	if qr.Plan.Mode != plan.ModeFallback || qr.Plan.Reason != plan.ReasonHolistic {
		t.Fatalf("plan %+v, want fallback/holistic", qr.Plan)
	}

	// Without ?plan= the field stays off the wire.
	qr, code = get(ts.URL + "/query?q=" + url.QueryEscape(groupQuery))
	if code != http.StatusOK || qr.Plan != nil {
		t.Fatalf("status %d plan %+v, want OK without a plan", code, qr.Plan)
	}

	// Malformed values are a 400, matching ?trace=.
	if _, code = get(ts.URL + "/query?plan=maybe&q=" + url.QueryEscape(groupQuery)); code != http.StatusBadRequest {
		t.Fatalf("status %d for plan=maybe, want 400", code)
	}

	// A server without the planner accepts ?plan=1 but has nothing to
	// report — the knob degrades gracefully instead of erroring.
	plain, _ := newTestServer(t, Limits{})
	tsp := httptest.NewServer(plain.Handler())
	t.Cleanup(tsp.Close)
	qr, code = get(tsp.URL + "/query?plan=1&q=" + url.QueryEscape(groupQuery))
	if code != http.StatusOK || qr.Plan != nil {
		t.Fatalf("status %d plan %+v, want OK without a plan on a non-planner server", code, qr.Plan)
	}
}

// TestPlannerResultCacheCompatible: planned and algebra execution share
// the canonical cache key, so a planner server's cache entries behave
// exactly like an algebra server's — fill on miss, hit on repeat.
func TestPlannerResultCacheCompatible(t *testing.T) {
	s, _ := newTestServer(t, Limits{Planner: true, ResultCacheBytes: 1 << 20})
	ctx := context.Background()
	// Resolve the engine first: building it during the first fill would
	// move the result version from the "no engine" sentinel (one benign
	// extra miss after every engine build, by the versioning design).
	if _, err := s.EngineFor(ctx, "patients"); err != nil {
		t.Fatal(err)
	}
	fresh, out, err := s.ServeQuery(ctx, groupQuery)
	if err != nil {
		t.Fatal(err)
	}
	if out.CacheHit {
		t.Fatal("first execution reported a cache hit")
	}
	again, out, err := s.ServeQuery(ctx, "  "+groupQuery+"  ")
	if err != nil {
		t.Fatal(err)
	}
	if !out.CacheHit {
		t.Fatal("canonically equal query missed the cache")
	}
	if !reflect.DeepEqual(fresh.Rows, again.Rows) {
		t.Fatalf("cache returned different rows: %v vs %v", fresh.Rows, again.Rows)
	}
}

// TestPlannerRaceUnderLoad extends the serving race suite to the planner
// path: planned queries (HTTP, with and without ?plan=1), catalog
// re-registrations forcing engine rebuilds, incremental AppendFact on the
// served engine, and /metrics scrapes all run concurrently; `go test
// -race` must stay silent and a quiescent differential check afterwards
// proves no torn engine snapshot leaked into results.
func TestPlannerRaceUnderLoad(t *testing.T) {
	cat := NewCatalog()
	m := patientMO(t)
	if err := cat.Register("patients", m); err != nil {
		t.Fatal(err)
	}
	s := NewServer(cat, Limits{Planner: true, Parallelism: 2, MaxFactsScanned: 1 << 20, ColumnMinValues: 8}, testRef)
	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	mux.Handle("/metrics", s.MetricsHandler())
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	// Build the served engine, then relate the facts the appender will
	// index incrementally. The MO is read-only once the storm starts;
	// only AppendFact mutates (engine state, not MO state).
	eng, err := s.EngineFor(context.Background(), "patients")
	if err != nil {
		t.Fatal(err)
	}
	const appends = 25
	lows := m.Dimension(casestudy.DimDiagnosis).Category(casestudy.CatLowLevel)
	for i := 0; i < appends; i++ {
		id := fmt.Sprintf("new%d", i)
		if err := m.Relate(casestudy.DimDiagnosis, id, lows[i%len(lows)]); err != nil {
			t.Fatal(err)
		}
	}

	const iters = 25
	var wg sync.WaitGroup
	fail := func(format string, args ...any) {
		t.Errorf(format, args...)
	}

	// Planned queriers, alternating explain and plain requests.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				u := ts.URL + "/query?parallelism=2&q=" + url.QueryEscape(groupQuery)
				explained := (i+g)%2 == 0
				if explained {
					u += "&plan=1"
				}
				resp, err := http.Get(u)
				if err != nil {
					fail("query: %v", err)
					return
				}
				var qr queryResponse
				err = json.NewDecoder(resp.Body).Decode(&qr)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					fail("query: status %d err %v", resp.StatusCode, err)
					return
				}
				if explained && (qr.Plan == nil || qr.Plan.Mode != plan.ModePlanned) {
					fail("query: explained planned query returned plan %+v", qr.Plan)
					return
				}
			}
		}(g)
	}

	// A fallback querier keeps the algebra path and its counters racing
	// with the planned path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			u := ts.URL + "/query?plan=1&q=" + url.QueryEscape(`SELECT MEDIAN(Age) FROM patients`)
			resp, err := http.Get(u)
			if err != nil {
				fail("fallback query: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	// The metrics scraper must always see the planner series.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				fail("scrape: %v", err)
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				fail("scrape: %v", err)
				return
			}
			if !strings.Contains(string(body), "mddm_plan_queries_total") {
				fail("scrape: exposition missing planner counters")
				return
			}
		}
	}()

	// The registrar swaps the catalog entry, forcing planner queries onto
	// freshly built engines mid-flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		base := patientMO(t)
		for i := 0; i < iters/5; i++ {
			if err := cat.Register("patients", base.Clone()); err != nil {
				fail("register: %v", err)
				return
			}
		}
	}()

	// The appender grows the originally served engine while planner reads
	// share its lock.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < appends; i++ {
			if err := eng.AppendFact(fmt.Sprintf("new%d", i)); err != nil {
				fail("append: %v", err)
				return
			}
		}
	}()

	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiescent differential check: whatever engine the server now holds,
	// planner output must equal the algebra's over the same snapshot.
	r1, err := s.Query(context.Background(), groupQuery)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := query.ExecContext(context.Background(), groupQuery, s.cat.Snapshot(), s.ref)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Rows, r2.Rows) {
		t.Fatalf("post-storm planner rows diverged from algebra:\n planner: %v\n algebra: %v", r1.Rows, r2.Rows)
	}
}
