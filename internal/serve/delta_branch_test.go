package serve

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"mddm/internal/cache"
	"mddm/internal/casestudy"
	"mddm/internal/qos"
	"mddm/internal/query"
)

// These tests drive tryUpgrade directly at the branches the end-to-end
// delta differential cannot reach deterministically: the fresh-race
// short-circuit, an unresolvable engine, a failing fold, and the
// row-limit parity error.

// upgradeableFill serves src once so the result cache holds an
// upgradeable entry, and returns its key and the fill result. The MO's
// engine is warmed first: a fill that builds the engine moves the
// version mid-computation, and the over-fresh guard would store a plain
// entry instead of an upgradeable one.
func upgradeableFill(t *testing.T, s *Server, src string) (string, *query.Result) {
	t.Helper()
	_, mo, kerr := cache.QueryKey(src)
	if kerr != nil {
		t.Fatal(kerr)
	}
	if _, err := s.EngineFor(context.Background(), mo); err != nil {
		t.Fatal(err)
	}
	res, out, err := s.ServeQuery(context.Background(), src)
	if err != nil {
		t.Fatalf("fill: %v", err)
	}
	if out.CacheHit || out.Upgraded {
		t.Fatalf("fill outcome = %+v", out)
	}
	key, _, kerr := cache.QueryKey(src)
	if kerr != nil {
		t.Fatal(kerr)
	}
	return key, res
}

// TestTryUpgradeFreshRace: when a concurrent fill made the entry current
// between the caller's miss and tryUpgrade's inspection, the entry is
// served as the plain hit it is — no fold, no upgrade flag.
func TestTryUpgradeFreshRace(t *testing.T) {
	s, _ := newTestServer(t, deltaLimits)
	src := `SELECT SETCOUNT(*) FROM patients GROUP BY Diagnosis."Diagnosis Group"`
	key, filled := upgradeableFill(t, s, src)

	folds0 := mDeltaFolds.Value()
	res, out, err, handled := s.tryUpgrade(context.Background(), key, "patients", s.resultVersion("patients"))
	if err != nil || !handled {
		t.Fatalf("fresh-race = handled %v, err %v", handled, err)
	}
	if !out.CacheHit || out.Upgraded {
		t.Fatalf("fresh-race outcome = %+v, want plain hit", out)
	}
	if !reflect.DeepEqual(res.Rows, filled.Rows) {
		t.Fatalf("fresh-race rows diverged: %v vs %v", res.Rows, filled.Rows)
	}
	if mDeltaFolds.Value() != folds0 {
		t.Fatal("fresh-race ran a delta fold")
	}
}

// TestTryUpgradeEngineUnavailable: a stale upgradeable entry whose MO
// cannot be resolved to an engine falls back (counted) without being
// demoted — the entry is not at fault and may upgrade later.
func TestTryUpgradeEngineUnavailable(t *testing.T) {
	s, _ := newTestServer(t, deltaLimits)
	src := `SELECT SETCOUNT(*) FROM patients GROUP BY Diagnosis."Diagnosis Group"`
	key, _ := upgradeableFill(t, s, src)
	grow := deltaAppender(t, s, "engun")
	grow(2)

	engine0 := mDeltaFallbackEngine.Value()
	// The stale entry's key with an MO name the catalog does not hold:
	// EngineFor cannot resolve it.
	_, _, err, handled := s.tryUpgrade(context.Background(), key, "no-such-mo", s.resultVersion("patients"))
	if handled || err != nil {
		t.Fatalf("engine-unavailable = handled %v, err %v, want plain fallback", handled, err)
	}
	if got := mDeltaFallbackEngine.Value() - engine0; got != 1 {
		t.Fatalf("engine-unavailable fallbacks = %d, want 1", got)
	}
	// Not demoted: a later attempt with the real MO still upgrades.
	res, out, err, handled := s.tryUpgrade(context.Background(), key, "patients", s.resultVersion("patients"))
	if err != nil || !handled || !out.Upgraded || res == nil {
		t.Fatalf("post-fallback upgrade = %+v handled %v err %v", out, handled, err)
	}
}

// TestTryUpgradeFoldError: a canceled request reaching the fold falls
// back without demoting (transient — a later attempt succeeds) and
// counts under the fold-error reason.
func TestTryUpgradeFoldError(t *testing.T) {
	s, _ := newTestServer(t, deltaLimits)
	src := `SELECT AVG(Age) FROM patients GROUP BY Diagnosis."Diagnosis Group"`
	key, _ := upgradeableFill(t, s, src)
	grow := deltaAppender(t, s, "folderr")
	grow(2)

	fold0 := mDeltaFallbackFold.Value()
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err, handled := s.tryUpgrade(canceled, key, "patients", s.resultVersion("patients"))
	if handled || err != nil {
		t.Fatalf("fold-error = handled %v, err %v, want plain fallback", handled, err)
	}
	if got := mDeltaFallbackFold.Value() - fold0; got != 1 {
		t.Fatalf("fold-error fallbacks = %d, want 1", got)
	}
	res, out, err, handled := s.tryUpgrade(context.Background(), key, "patients", s.resultVersion("patients"))
	if err != nil || !handled || !out.Upgraded || res == nil {
		t.Fatalf("retry after cancellation = %+v handled %v err %v", out, handled, err)
	}
}

// TestTryUpgradeRowLimit: when the merged result outgrows
// Limits.MaxResultRows, the upgrade fails with the same resource-
// exhausted error a recompute would produce — handled, not a silent
// fallback that would recompute and hit the limit anyway.
func TestTryUpgradeRowLimit(t *testing.T) {
	cfg := casestudy.DefaultGen()
	cfg.Patients = 12
	cfg.NonStrict = false
	cfg.Churn = false
	cfg.MixedGranularity = false
	cfg.UncertainFrac = 0
	cfg.DiagnosesPerPatient = 1
	m := casestudy.MustGenerate(cfg)
	src := `SELECT SETCOUNT(*) FROM gen GROUP BY Diagnosis."Low-level Diagnosis"`

	// Size the limit to exactly the filled row count, so one appended
	// group pushes the merged result past it.
	base, err := query.ExecContext(context.Background(), src, query.Catalog{"gen": m}, testRef)
	if err != nil {
		t.Fatal(err)
	}
	limits := deltaLimits
	limits.MaxResultRows = len(base.Rows)

	cat := NewCatalog()
	if err := cat.Register("gen", m); err != nil {
		t.Fatal(err)
	}
	s := NewServer(cat, limits, testRef)
	key, filled := upgradeableFill(t, s, src)
	if len(filled.Rows) != limits.MaxResultRows {
		t.Fatalf("fill rows = %d, want %d", len(filled.Rows), limits.MaxResultRows)
	}

	// Append one fact in a low-level diagnosis no filled row uses.
	eng, err := s.EngineFor(context.Background(), "gen")
	if err != nil {
		t.Fatal(err)
	}
	used := map[string]bool{}
	for _, row := range filled.Rows {
		used[row[0]] = true
	}
	newLow := ""
	for _, low := range m.Dimension(casestudy.DimDiagnosis).Category(casestudy.CatLowLevel) {
		if !used[low] {
			newLow = low
			break
		}
	}
	if newLow == "" {
		t.Fatal("fixture left no unused low-level diagnosis")
	}
	if err := m.Relate(casestudy.DimDiagnosis, "rowlimit0", newLow); err != nil {
		t.Fatal(err)
	}
	if err := eng.AppendFact("rowlimit0"); err != nil {
		t.Fatal(err)
	}

	_, _, uerr, handled := s.tryUpgrade(context.Background(), key, "gen", s.resultVersion("gen"))
	if !handled {
		t.Fatal("row-limit breach not handled by the upgrade path")
	}
	if !errors.Is(uerr, qos.ErrResourceExhausted) {
		t.Fatalf("row-limit error = %v, want resource-exhausted", uerr)
	}
}

// TestPartialsBytesNil pins the nil estimate the fill path relies on
// when a computation captured nothing.
func TestPartialsBytesNil(t *testing.T) {
	if got := partialsBytes(nil); got != 0 {
		t.Fatalf("partialsBytes(nil) = %d", got)
	}
}
